package gpar_test

// Integration tests for the command-line tools: each binary is compiled and
// run through its primary code path. Skipped with -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool invokes `go run ./cmd/<tool> <args...>` in the repository root.
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "graph.txt")
	rulesFile := filepath.Join(dir, "rules.txt")
	minedFile := filepath.Join(dir, "mined.txt")

	// 1. Generate a graph.
	runTool(t, "gpargen", "-kind", "pokec", "-users", "200", "-seed", "3", "-out", graphFile)
	if fi, err := os.Stat(graphFile); err != nil || fi.Size() == 0 {
		t.Fatalf("gpargen produced no graph: %v", err)
	}

	// 2. Generate rules from it.
	runTool(t, "gpargen", "-kind", "rules", "-graph", graphFile,
		"-pred", "user,like_music,music:Disco", "-count", "6", "-out", rulesFile)
	if fi, err := os.Stat(rulesFile); err != nil || fi.Size() == 0 {
		t.Fatalf("gpargen produced no rules: %v", err)
	}

	// 3. Mine diversified GPARs.
	out := runTool(t, "gparmine", "-graph", graphFile,
		"-pred", "user,like_music,music:Disco",
		"-k", "4", "-sigma", "2", "-d", "2", "-n", "2", "-rules", minedFile)
	if !strings.Contains(out, "predicate like_music(user, music:Disco)") {
		t.Errorf("gparmine output unexpected:\n%s", out)
	}

	// 4. Identify entities with the generated rules.
	out = runTool(t, "gparmatch", "-graph", graphFile, "-rules", rulesFile,
		"-eta", "0.5", "-n", "2")
	if !strings.Contains(out, "identified") {
		t.Errorf("gparmatch output unexpected:\n%s", out)
	}

	// 5. Paper fixtures round trip through gpargen too.
	g1File := filepath.Join(dir, "g1.txt")
	runTool(t, "gpargen", "-kind", "g1", "-out", g1File)
	data, err := os.ReadFile(g1File)
	if err != nil || len(data) == 0 {
		t.Fatalf("g1 fixture empty: %v", err)
	}
	if !strings.Contains(string(data), "French restaurant") {
		t.Error("g1 fixture missing expected labels")
	}
}

func TestCLIBenchQuickSelected(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	out := runTool(t, "gparbench", "-quick", "-exp", "case")
	if !strings.Contains(out, "Case study") {
		t.Errorf("gparbench case study output unexpected:\n%s", out)
	}
}
