package match

import (
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// This file implements graph simulation, the alternative matching semantics
// the paper's conclusion names as future work ("extend GPARs ... by allowing
// other matching semantics such as graph simulation"). A simulation relates
// each pattern node to a set of data nodes rather than insisting on an
// injective embedding; it is computable in polynomial time and always at
// least as permissive as subgraph isomorphism.

// SimulationSets returns, for every (expanded) pattern node, the set of data
// nodes in the maximum graph simulation of p in g: the largest relation
// S ⊆ Vp × V such that (u,v) ∈ S implies f(u) = L(v) and, for every pattern
// edge (u,u') (resp. (u”,u)), v has an out-edge (resp. in-edge) with the
// same label to some v' with (u',v') ∈ S. Using both directions is "dual
// simulation", the variant that best approximates subgraph isomorphism.
func SimulationSets(p *pattern.Pattern, g *graph.Graph) []map[graph.NodeID]bool {
	pe := p.Expand()
	n := pe.NumNodes()
	sets := make([]map[graph.NodeID]bool, n)
	for u := 0; u < n; u++ {
		sets[u] = make(map[graph.NodeID]bool)
		for _, v := range g.NodesWithLabel(pe.Label(u)) {
			sets[u][v] = true
		}
	}
	type pedge struct {
		from, to int
		label    graph.Label
	}
	edges := make([]pedge, 0, pe.NumEdges())
	for _, e := range pe.Edges() {
		edges = append(edges, pedge{e.From, e.To, e.Label})
	}
	// Fixpoint refinement: repeatedly drop (u,v) pairs that cannot satisfy
	// some incident pattern edge.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			// Forward: every v in sets[from] needs an out-edge to sets[to].
			for v := range sets[e.from] {
				ok := false
				for _, de := range g.Out(v) {
					if de.Label == e.label && sets[e.to][de.To] {
						ok = true
						break
					}
				}
				if !ok {
					delete(sets[e.from], v)
					changed = true
				}
			}
			// Backward (dual): every v in sets[to] needs a matching in-edge.
			for v := range sets[e.to] {
				ok := false
				for _, de := range g.In(v) {
					if de.Label == e.label && sets[e.from][de.To] {
						ok = true
						break
					}
				}
				if !ok {
					delete(sets[e.to], v)
					changed = true
				}
			}
		}
		// Empty set for any pattern node kills the whole simulation.
		for u := 0; u < n; u++ {
			if len(sets[u]) == 0 {
				for w := 0; w < n; w++ {
					sets[w] = map[graph.NodeID]bool{}
				}
				return sets
			}
		}
	}
	return sets
}

// SimulationSet returns the simulation matches of the designated node x —
// the simulation analogue of MatchSet. Every isomorphism match is also a
// simulation match (simulation is coarser), so this over-approximates
// Q(x,G) in polynomial time.
func SimulationSet(p *pattern.Pattern, g *graph.Graph) []graph.NodeID {
	pe := p.Expand()
	if pe.X == pattern.NoNode {
		return nil
	}
	sets := SimulationSets(p, g)
	out := make([]graph.NodeID, 0, len(sets[pe.X]))
	for _, v := range g.NodesWithLabel(pe.Label(pe.X)) {
		if sets[pe.X][v] {
			out = append(out, v)
		}
	}
	return out
}
