package match

import (
	"math/rand"
	"testing"

	"gpar/internal/graph"
	"gpar/internal/pattern"
	"gpar/internal/sketch"
)

// benchWorkload is a Pokec-shaped social graph (users with friend edges and
// music likes) plus a diamond pattern that forces real backtracking:
//
//	x:user -friend-> f:user -like-> m:music
//	x:user -friend-> f2:user -like-> m
//
// anchored at every user in turn. It is the anchored-match hot loop of
// algorithms Match and DMine, and the per-candidate work unit of gpard's
// /v1/identify.
type benchWorkload struct {
	g     *graph.Graph
	p     *pattern.Pattern
	cands []graph.NodeID
}

func newBenchWorkload() *benchWorkload {
	rng := rand.New(rand.NewSource(42))
	syms := graph.NewSymbols()
	g := graph.New(syms)
	const users, musics = 3000, 200
	us := make([]graph.NodeID, users)
	for i := range us {
		us[i] = g.AddNode("user")
	}
	ms := make([]graph.NodeID, musics)
	for i := range ms {
		ms[i] = g.AddNode("music")
	}
	for _, u := range us {
		for j, nf := 0, 2+rng.Intn(8); j < nf; j++ {
			g.AddEdge(u, us[rng.Intn(users)], "friend")
		}
		for j, nl := 0, 1+rng.Intn(3); j < nl; j++ {
			g.AddEdge(u, ms[rng.Intn(musics)], "like")
		}
	}
	p := pattern.New(syms)
	x := p.AddNode("user")
	p.X = x
	f := p.AddNode("user")
	f2 := p.AddNode("user")
	m := p.AddNode("music")
	p.AddEdge(x, f, "friend")
	p.AddEdge(x, f2, "friend")
	p.AddEdge(f, m, "like")
	p.AddEdge(f2, m, "like")
	g.Freeze()
	return &benchWorkload{g: g, p: p, cands: g.NodesWithLabel(syms.Lookup("user"))}
}

// BenchmarkAnchoredMatch is the acceptance benchmark for the anchored-match
// hot path: one HasMatchAt existence check per iteration, cycling through
// the candidate set. Recorded in BENCH_match.json by `make bench`.
func BenchmarkAnchoredMatch(b *testing.B) {
	w := newBenchWorkload()
	b.Run("unguided", func(b *testing.B) {
		opts := Options{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			HasMatchAt(w.p, w.g, w.cands[i%len(w.cands)], opts)
		}
	})
	b.Run("guided", func(b *testing.B) {
		ix := sketch.NewIndex(w.g, 2)
		opts := Options{Guided: true, Sketches: ix}
		// Warm the sketch cache so the loop measures matching, not sketch
		// construction.
		for _, v := range w.cands {
			ix.Sketch(v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			HasMatchAt(w.p, w.g, w.cands[i%len(w.cands)], opts)
		}
	})
}

// BenchmarkMatchSet measures the whole-candidate-set sweep (Q(x,G) over all
// users), the unit of work one fragment performs per rule evaluation.
func BenchmarkMatchSet(b *testing.B) {
	w := newBenchWorkload()
	opts := Options{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchSet(w.p, w.g, w.cands, opts)
	}
}
