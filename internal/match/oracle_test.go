package match_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/graph"
	. "gpar/internal/match"
	"gpar/internal/pattern"
)

// bruteForceCount enumerates every injective assignment of pattern nodes to
// data nodes and counts the label/edge-preserving ones — an O(n^k) oracle
// for the matcher on tiny inputs.
func bruteForceCount(p *pattern.Pattern, g *graph.Graph) int {
	pe := p.Expand()
	k := pe.NumNodes()
	if k == 0 {
		return 0
	}
	asgn := make([]graph.NodeID, k)
	used := make(map[graph.NodeID]bool)
	count := 0
	var rec func(u int)
	rec = func(u int) {
		if u == k {
			for _, e := range pe.Edges() {
				if !g.HasEdge(asgn[e.From], asgn[e.To], e.Label) {
					return
				}
			}
			count++
			return
		}
		for v := 0; v < g.NumNodes(); v++ {
			dv := graph.NodeID(v)
			if used[dv] || g.Label(dv) != pe.Label(u) {
				continue
			}
			asgn[u] = dv
			used[dv] = true
			rec(u + 1)
			delete(used, dv)
		}
	}
	rec(0)
	return count
}

// TestQuickEnumerateAgainstOracle: the backtracking matcher finds exactly
// the embeddings the brute-force oracle finds, on random tiny instances.
func TestQuickEnumerateAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b"}
		n := 4 + rng.Intn(4)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(2)])
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)),
				[]string{"e", "f"}[rng.Intn(2)])
		}
		p := pattern.New(g.Symbols())
		pn := 2 + rng.Intn(2)
		for i := 0; i < pn; i++ {
			p.AddNode(labels[rng.Intn(2)])
			if i > 0 {
				from, to := rng.Intn(i), i
				if rng.Intn(2) == 0 {
					from, to = to, from
				}
				p.AddEdge(from, to, []string{"e", "f"}[rng.Intn(2)])
			}
		}
		p.X = 0
		want := bruteForceCount(p, g)
		got := Enumerate(p, g, Options{}, nil)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAnchoredAgainstOracle: EnumerateAnchored(v) counts the oracle's
// embeddings with h(x) = v.
func TestQuickAnchoredAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b"}
		n := 4 + rng.Intn(4)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(2)])
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		p := pattern.New(g.Symbols())
		p.AddNode("a")
		p.AddNode(labels[rng.Intn(2)])
		p.AddEdge(0, 1, "e")
		p.X = 0

		total := 0
		for v := 0; v < n; v++ {
			total += EnumerateAnchored(p, g, graph.NodeID(v), Options{}, nil)
		}
		return total == bruteForceCount(p, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
