package match_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gpar/internal/graph"
	. "gpar/internal/match"
	"gpar/internal/pattern"
	"gpar/internal/sketch"
)

// refGraph records the generated graph in a representation independent of
// graph.Graph's CSR machinery, so the oracle below shares no code with the
// engine under test.
type refGraph struct {
	labels []graph.Label
	edges  map[[3]int32]bool // (from, to, label)
}

func (r *refGraph) hasEdge(from, to graph.NodeID, l graph.Label) bool {
	return r.edges[[3]int32{int32(from), int32(to), int32(l)}]
}

// genCase generates one seeded random graph/pattern pair: a graph of 6-14
// nodes over 2-3 node labels and 2-3 edge labels, and a connected-ish
// pattern of 2-4 nodes sampled partly from the graph's own edges (so a good
// fraction of cases have matches).
func genCase(seed int64) (*graph.Graph, *refGraph, *pattern.Pattern) {
	rng := rand.New(rand.NewSource(seed))
	syms := graph.NewSymbols()
	g := graph.New(syms)
	ref := &refGraph{edges: map[[3]int32]bool{}}

	nLabels := 2 + rng.Intn(2)
	eLabels := 2 + rng.Intn(2)
	n := 6 + rng.Intn(9)
	for i := 0; i < n; i++ {
		l := syms.Intern(fmt.Sprintf("N%d", rng.Intn(nLabels)))
		g.AddNodeL(l)
		ref.labels = append(ref.labels, l)
	}
	ne := n + rng.Intn(2*n)
	for i := 0; i < ne; i++ {
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		l := syms.Intern(fmt.Sprintf("e%d", rng.Intn(eLabels)))
		if g.AddEdgeL(from, to, l) {
			ref.edges[[3]int32{int32(from), int32(to), int32(l)}] = true
		}
	}

	p := pattern.New(syms)
	pn := 2 + rng.Intn(3)
	for i := 0; i < pn; i++ {
		p.AddNodeL(syms.Intern(fmt.Sprintf("N%d", rng.Intn(nLabels))))
	}
	p.X = 0
	pe := 1 + rng.Intn(pn+1)
	for i := 0; i < pe; i++ {
		p.AddEdgeL(rng.Intn(pn), rng.Intn(pn), syms.Intern(fmt.Sprintf("e%d", rng.Intn(eLabels))))
	}
	return g, ref, p
}

// oracleCount enumerates every injective label/edge-preserving assignment
// of the expanded pattern into the reference graph, optionally pinning
// pattern node x to anchor. It is a from-scratch implementation sharing no
// code with the matcher.
func oracleCount(ref *refGraph, pe *pattern.Pattern, anchor graph.NodeID) int {
	k := pe.NumNodes()
	if k == 0 {
		return 0
	}
	asgn := make([]graph.NodeID, k)
	used := make([]bool, len(ref.labels))
	count := 0
	var rec func(u int)
	rec = func(u int) {
		if u == k {
			count++
			return
		}
		lo, hi := 0, len(ref.labels)
		if u == pe.X && anchor >= 0 {
			lo, hi = int(anchor), int(anchor)+1
		}
		for v := lo; v < hi; v++ {
			dv := graph.NodeID(v)
			if used[v] || ref.labels[v] != pe.Label(u) {
				continue
			}
			// Check pattern edges whose endpoints are both assigned after
			// this step and that involve u; earlier edges were checked when
			// their later endpoint was placed.
			ok := true
			for _, e := range pe.Edges() {
				if e.From > u || e.To > u || (e.From != u && e.To != u) {
					continue
				}
				a, b := dv, dv
				if e.From != u {
					a = asgn[e.From]
				}
				if e.To != u {
					b = asgn[e.To]
				}
				if !ref.hasEdge(a, b, e.Label) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			asgn[u] = dv
			used[v] = true
			rec(u + 1)
			used[v] = false
		}
	}
	rec(0)
	return count
}

// TestDifferentialOracle is the acceptance test of the CSR matcher rewrite:
// on ≥100 seeded random graph/pattern pairs, the matcher's full enumeration
// count (the DisVF2 behaviour), its anchored counts, its anchored existence
// checks and its match set must all agree with an independent brute-force
// oracle — in both unguided and guided mode.
func TestDifferentialOracle(t *testing.T) {
	const cases = 120
	for seed := int64(0); seed < cases; seed++ {
		g, ref, p := genCase(seed)
		pe := p.Expand()
		want := oracleCount(ref, pe, -1)

		for _, guided := range []bool{false, true} {
			opts := Options{}
			name := "unguided"
			if guided {
				opts = Options{Guided: true, Sketches: sketch.NewIndex(g, 2)}
				name = "guided"
			}
			got := Enumerate(p, g, opts, nil)
			if got != want {
				t.Fatalf("seed %d (%s): Enumerate = %d, oracle = %d\npattern: %v",
					seed, name, got, want, p)
			}
			// Anchored counts and existence per candidate of x's label.
			m := NewMatcher(p, g, opts)
			sum := 0
			var set []graph.NodeID
			for _, v := range g.NodesWithLabel(pe.Label(pe.X)) {
				c := oracleCount(ref, pe, v)
				sum += c
				n := EnumerateAnchored(p, g, v, opts, nil)
				if n != c {
					t.Fatalf("seed %d (%s): EnumerateAnchored(%d) = %d, oracle = %d",
						seed, name, v, n, c)
				}
				if m.HasMatchAt(v) != (c > 0) {
					t.Fatalf("seed %d (%s): HasMatchAt(%d) = %v, oracle count = %d",
						seed, name, v, m.HasMatchAt(v), c)
				}
				if c > 0 {
					set = append(set, v)
				}
			}
			m.Release()
			if sum != want {
				t.Fatalf("seed %d (%s): anchored counts sum %d != total %d", seed, name, sum, want)
			}
			ms := MatchSet(p, g, nil, opts)
			if len(ms) != len(set) {
				t.Fatalf("seed %d (%s): MatchSet = %v, oracle = %v", seed, name, ms, set)
			}
			for i := range ms {
				if ms[i] != set[i] {
					t.Fatalf("seed %d (%s): MatchSet = %v, oracle = %v", seed, name, ms, set)
				}
			}
		}
	}
}

// TestMatcherReuseAcrossBindings: one pooled matcher cycled through many
// (pattern, graph) bindings gives the same answers as fresh ones — the
// epoch-stamp discipline must not leak used-marks between bindings.
func TestMatcherReuseAcrossBindings(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g1, ref1, p1 := genCase(seed)
		g2, ref2, p2 := genCase(seed + 1000)
		for i := 0; i < 3; i++ {
			if got, want := Enumerate(p1, g1, Options{}, nil), oracleCount(ref1, p1.Expand(), -1); got != want {
				t.Fatalf("seed %d iter %d: g1 count %d != %d", seed, i, got, want)
			}
			if got, want := Enumerate(p2, g2, Options{}, nil), oracleCount(ref2, p2.Expand(), -1); got != want {
				t.Fatalf("seed %d iter %d: g2 count %d != %d", seed, i, got, want)
			}
		}
	}
}
