package match_test

import (
	. "gpar/internal/match"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/pattern"
	"gpar/internal/sketch"
)

func ids(vs ...graph.NodeID) []graph.NodeID {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

func sorted(vs []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQ1MatchSetOnG1 pins Example 3 of the paper: Q1(x, G1) includes
// cust1-cust3 and cust5.
func TestQ1MatchSetOnG1(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	r1 := gen.R1(syms)
	got := sorted(MatchSet(r1.Q, f.G, nil, Options{}))
	want := ids(f.Cust[1], f.Cust[2], f.Cust[3], f.Cust[5])
	if !equalIDs(got, want) {
		t.Errorf("Q1(x,G1) = %v want %v", got, want)
	}
}

// TestPR1MatchSetOnG1 pins Example 5: supp(R1,G1) = 3 via matches
// cust1-cust3.
func TestPR1MatchSetOnG1(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	r1 := gen.R1(syms)
	got := sorted(MatchSet(r1.PR(), f.G, nil, Options{}))
	want := ids(f.Cust[1], f.Cust[2], f.Cust[3])
	if !equalIDs(got, want) {
		t.Errorf("PR1(x,G1) = %v want %v", got, want)
	}
}

// TestFig3RuleMatchSets pins Example 8/9: the match sets of R5-R8 on G1.
func TestFig3RuleMatchSets(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cases := []struct {
		name string
		pr   *pattern.Pattern
		want []graph.NodeID
	}{
		{"R5", gen.R5(syms).PR(), ids(f.Cust[1], f.Cust[2], f.Cust[3], f.Cust[4])},
		{"R6", gen.R6(syms).PR(), ids(f.Cust[4], f.Cust[6])},
		{"R7", gen.R7(syms).PR(), ids(f.Cust[1], f.Cust[2], f.Cust[3])},
		{"R8", gen.R8(syms).PR(), ids(f.Cust[6])},
	}
	for _, c := range cases {
		got := sorted(MatchSet(c.pr, f.G, nil, Options{}))
		if !equalIDs(got, c.want) {
			t.Errorf("%s(x,G1) = %v want %v", c.name, got, c.want)
		}
	}
}

// TestQ4OnG2 pins Example 5 for G2: supp(Q4,G2) = supp(R4,G2) = 3 with
// matches acct1-acct3.
func TestQ4OnG2(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G2(syms)
	r4 := gen.R4(syms)
	want := ids(f.Acct[1], f.Acct[2], f.Acct[3])
	if got := sorted(MatchSet(r4.Q, f.G, nil, Options{})); !equalIDs(got, want) {
		t.Errorf("Q4(x,G2) = %v want %v", got, want)
	}
	if got := sorted(MatchSet(r4.PR(), f.G, nil, Options{})); !equalIDs(got, want) {
		t.Errorf("PR4(x,G2) = %v want %v", got, want)
	}
}

func TestHasMatchAtAnchoring(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	r1 := gen.R1(syms)
	if !HasMatchAt(r1.Q, f.G, f.Cust[5], Options{}) {
		t.Error("cust5 should match Q1")
	}
	if HasMatchAt(r1.Q, f.G, f.Cust[4], Options{}) {
		t.Error("cust4 should not match Q1 (no live_in edge)")
	}
	if HasMatchAt(r1.Q, f.G, f.NY, Options{}) {
		t.Error("a city node cannot match x (label mismatch)")
	}
}

func TestGuidedSearchAgreesWithUnguided(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	ix := sketch.NewIndex(f.G, 2)
	for _, r := range []*pattern.Pattern{gen.R1(syms).PR(), gen.R5(syms).PR(), gen.R6(syms).PR(), gen.R7(syms).PR(), gen.R8(syms).PR()} {
		plain := sorted(MatchSet(r, f.G, nil, Options{}))
		guided := sorted(MatchSet(r, f.G, nil, Options{Guided: true, Sketches: ix}))
		if !equalIDs(plain, guided) {
			t.Errorf("guided and unguided disagree: %v vs %v for %s", guided, plain, r)
		}
	}
}

func TestEnumerateCountsAllEmbeddings(t *testing.T) {
	// Triangle of identical labels: pattern a->a has 3 embeddings in a
	// 3-cycle.
	g := graph.New(nil)
	a := g.AddNode("a")
	b := g.AddNode("a")
	c := g.AddNode("a")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(c, a, "e")

	p := pattern.New(g.Symbols())
	u := p.AddNode("a")
	v := p.AddNode("a")
	p.AddEdge(u, v, "e")
	p.X = u

	n := Enumerate(p, g, Options{}, nil)
	if n != 3 {
		t.Errorf("Enumerate = %d embeddings, want 3", n)
	}
	// The full 3-cycle pattern has 3 automorphic embeddings.
	p2 := pattern.New(g.Symbols())
	x := p2.AddNode("a")
	y := p2.AddNode("a")
	z := p2.AddNode("a")
	p2.AddEdge(x, y, "e")
	p2.AddEdge(y, z, "e")
	p2.AddEdge(z, x, "e")
	p2.X = x
	if n := Enumerate(p2, g, Options{}, nil); n != 3 {
		t.Errorf("cycle pattern: %d embeddings, want 3", n)
	}
}

func TestEnumerateMaxMatches(t *testing.T) {
	g := graph.New(nil)
	hub := g.AddNode("h")
	for i := 0; i < 10; i++ {
		leaf := g.AddNode("l")
		g.AddEdge(hub, leaf, "e")
	}
	p := pattern.New(g.Symbols())
	u := p.AddNode("h")
	v := p.AddNode("l")
	p.AddEdge(u, v, "e")
	p.X = u
	if n := Enumerate(p, g, Options{MaxMatches: 4}, nil); n != 4 {
		t.Errorf("MaxMatches: got %d want 4", n)
	}
	if n := Enumerate(p, g, Options{}, nil); n != 10 {
		t.Errorf("unlimited: got %d want 10", n)
	}
}

func TestEnumerateEarlyStopCallback(t *testing.T) {
	g := graph.New(nil)
	hub := g.AddNode("h")
	for i := 0; i < 10; i++ {
		leaf := g.AddNode("l")
		g.AddEdge(hub, leaf, "e")
	}
	p := pattern.New(g.Symbols())
	u := p.AddNode("h")
	v := p.AddNode("l")
	p.AddEdge(u, v, "e")
	seen := 0
	Enumerate(p, g, Options{}, func([]graph.NodeID) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("callback stop: saw %d want 3", seen)
	}
}

func TestInjectivity(t *testing.T) {
	// Pattern wants two distinct 'l' children; data has only one.
	g := graph.New(nil)
	hub := g.AddNode("h")
	leaf := g.AddNode("l")
	g.AddEdge(hub, leaf, "e")

	p := pattern.New(g.Symbols())
	u := p.AddNode("h")
	v1 := p.AddNode("l")
	v2 := p.AddNode("l")
	p.AddEdge(u, v1, "e")
	p.AddEdge(u, v2, "e")
	p.X = u
	if HasMatchAt(p, g, hub, Options{}) {
		t.Error("match found despite injectivity violation")
	}
	leaf2 := g.AddNode("l")
	g.AddEdge(hub, leaf2, "e")
	if !HasMatchAt(p, g, hub, Options{}) {
		t.Error("match not found with two distinct leaves")
	}
	_ = leaf
}

func TestEdgeLabelAndDirectionRespected(t *testing.T) {
	g := graph.New(nil)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, "x")

	p := pattern.New(g.Symbols())
	u := p.AddNode("a")
	v := p.AddNode("b")
	p.AddEdge(u, v, "y") // wrong label
	p.X = u
	if HasMatchAt(p, g, a, Options{}) {
		t.Error("matched with wrong edge label")
	}
	q := pattern.New(g.Symbols())
	w := q.AddNode("a")
	z := q.AddNode("b")
	q.AddEdge(z, w, "x") // wrong direction
	q.X = w
	if HasMatchAt(q, g, a, Options{}) {
		t.Error("matched with reversed edge")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Q with an isolated y component: x matches iff an unused y-labeled
	// node exists anywhere.
	g := graph.New(nil)
	a := g.AddNode("a")
	g.AddNode("b")

	p := pattern.New(g.Symbols())
	u := p.AddNode("a")
	v := p.AddNode("b")
	p.X, p.Y = u, v
	// no edges: v is isolated
	if !HasMatchAt(p, g, a, Options{}) {
		t.Error("isolated y should match any b node")
	}
	// Without any b node, no match.
	g2 := graph.New(nil)
	a2 := g2.AddNode("a")
	p2 := pattern.New(g2.Symbols())
	u2 := p2.AddNode("a")
	v2 := p2.AddNode("b")
	p2.X, p2.Y = u2, v2
	if HasMatchAt(p2, g2, a2, Options{}) {
		t.Error("matched despite missing b node")
	}
}

func TestMultiplicityExpansionInMatching(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	// Pattern: x likes k French restaurants. k=3 matches cust1-3,5,6;
	// k=4 matches nobody.
	for k, wantLen := range map[int]int{3: 5, 4: 0} {
		p := pattern.New(syms)
		x := p.AddNode(gen.LCust)
		fr := p.AddNode(gen.LFrench)
		p.SetMult(fr, k)
		p.AddEdge(x, fr, gen.ELike)
		p.X = x
		got := MatchSet(p, f.G, nil, Options{})
		if len(got) != wantLen {
			t.Errorf("k=%d: %d matches want %d (%v)", k, len(got), wantLen, got)
		}
	}
}

func TestMinImageSupport(t *testing.T) {
	g := graph.New(nil)
	hub := g.AddNode("h")
	for i := 0; i < 5; i++ {
		leaf := g.AddNode("l")
		g.AddEdge(hub, leaf, "e")
	}
	p := pattern.New(g.Symbols())
	u := p.AddNode("h")
	v := p.AddNode("l")
	p.AddEdge(u, v, "e")
	p.X = u
	// 5 embeddings; hub image count 1, leaf image count 5 => min image 1.
	if got := MinImageSupport(p, g, Options{}); got != 1 {
		t.Errorf("MinImageSupport = %d want 1", got)
	}
	sets := ImageSets(p, g, Options{})
	if len(sets[0]) != 1 || len(sets[1]) != 5 {
		t.Errorf("ImageSets = %d,%d want 1,5", len(sets[0]), len(sets[1]))
	}
	// Empty pattern has no image sets.
	if got := MinImageSupport(pattern.New(g.Symbols()), g, Options{}); got != 0 {
		t.Errorf("empty pattern MinImageSupport = %d want 0", got)
	}
}

// TestQuickMatchSetSubsetOfCandidates checks MatchSet only returns
// candidates and HasMatchAt agrees pointwise with membership.
func TestQuickMatchSetConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b", "c"}
		n := 12 + rng.Intn(10)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(3)])
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		p := pattern.New(g.Symbols())
		x := p.AddNode("a")
		y := p.AddNode(labels[rng.Intn(3)])
		z := p.AddNode(labels[rng.Intn(3)])
		p.AddEdge(x, y, "e")
		p.AddEdge(y, z, "e")
		p.X = x

		ms := MatchSet(p, g, nil, Options{})
		inMS := map[graph.NodeID]bool{}
		for _, v := range ms {
			inMS[v] = true
		}
		for _, v := range g.NodesWithLabel(g.Symbols().Lookup("a")) {
			if HasMatchAt(p, g, v, Options{}) != inMS[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGuidedEquivalence: guided search never changes the match set.
func TestQuickGuidedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b", "c"}
		n := 10 + rng.Intn(10)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(3)])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), []string{"e", "f"}[rng.Intn(2)])
		}
		p := pattern.New(g.Symbols())
		x := p.AddNode("a")
		y := p.AddNode(labels[rng.Intn(3)])
		p.AddEdge(x, y, "e")
		z := p.AddNode(labels[rng.Intn(3)])
		p.AddEdge(z, y, "f")
		p.X = x

		ix := sketch.NewIndex(g, 2)
		plain := sorted(MatchSet(p, g, nil, Options{}))
		guided := sorted(MatchSet(p, g, nil, Options{Guided: true, Sketches: ix}))
		return equalIDs(plain, guided)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAntiMonotoneSupport: adding an edge to a pattern never enlarges
// its match set — the anti-monotonicity that Section 3's support measure is
// chosen for.
func TestQuickAntiMonotoneSupport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b"}
		n := 10 + rng.Intn(8)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(2)])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		p := pattern.New(g.Symbols())
		x := p.AddNode("a")
		y := p.AddNode(labels[rng.Intn(2)])
		p.AddEdge(x, y, "e")
		p.X = x
		before := len(MatchSet(p, g, nil, Options{}))
		q := p.Apply(pattern.Extension{
			Src:       rng.Intn(p.NumNodes()),
			Outgoing:  rng.Intn(2) == 0,
			EdgeLabel: g.Symbols().Intern("e"),
			NewLabel:  g.Symbols().Intern(labels[rng.Intn(2)]),
			Close:     pattern.NoNode,
		})
		after := len(MatchSet(q, g, nil, Options{}))
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
