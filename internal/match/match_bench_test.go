package match_test

import (
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
	. "gpar/internal/match"
	"gpar/internal/sketch"
)

// Micro-benchmarks for the matcher's three modes on the paper's G1 fixture
// and on a mid-sized social graph.

func BenchmarkHasMatchAtG1(b *testing.B) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pr := gen.R1(syms).PR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HasMatchAt(pr, f.G, f.Cust[1], Options{})
	}
}

func BenchmarkMatchSetPokec(b *testing.B) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(400, 1))
	rules := gen.Rules(g, gen.PokecPredicates(syms)[0],
		gen.RuleGenParams{Count: 1, VP: 4, EP: 5, Seed: 1})
	if len(rules) == 0 {
		b.Skip("no rule generated")
	}
	pr := rules[0].PR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchSet(pr, g, nil, Options{})
	}
}

func BenchmarkMatchSetPokecGuided(b *testing.B) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(400, 1))
	rules := gen.Rules(g, gen.PokecPredicates(syms)[0],
		gen.RuleGenParams{Count: 1, VP: 4, EP: 5, Seed: 1})
	if len(rules) == 0 {
		b.Skip("no rule generated")
	}
	pr := rules[0].PR()
	ix := sketch.NewIndex(g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchSet(pr, g, nil, Options{Guided: true, Sketches: ix})
	}
}

func BenchmarkEnumerateVsExistence(b *testing.B) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(400, 1))
	rules := gen.Rules(g, gen.PokecPredicates(syms)[0],
		gen.RuleGenParams{Count: 1, VP: 3, EP: 3, Seed: 2})
	if len(rules) == 0 {
		b.Skip("no rule generated")
	}
	q := rules[0].Q
	cands := g.NodesWithLabel(syms.Lookup("user"))[:50]
	b.Run("existence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range cands {
				HasMatchAt(q, g, v, Options{})
			}
		}
	})
	b.Run("full-enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range cands {
				EnumerateAnchored(q, g, v, Options{}, nil)
			}
		}
	})
}
