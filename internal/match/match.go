// Package match implements subgraph isomorphism for graph patterns against
// labeled data graphs, in the semantics of Section 2.1 of "Association Rules
// with Graph Patterns" (PVLDB 2015): a match of pattern Q in graph G is an
// injective mapping h from Q's (expanded) nodes to nodes of G that preserves
// node labels and maps every pattern edge onto a data edge with the same
// label.
//
// Three modes are provided, mirroring the paper's three algorithms:
//
//   - Enumerate: full match enumeration, the behaviour of the disVF2
//     baseline (Section 6);
//   - HasMatchAt: anchored existence check with early termination, the key
//     optimization of algorithm Match (Section 5.2);
//   - guided search: candidate ordering by k-hop sketch scores, the second
//     optimization of algorithm Match.
package match

import (
	"sort"

	"gpar/internal/graph"
	"gpar/internal/pattern"
	"gpar/internal/sketch"
)

// Options tunes a matching run. The zero value is a plain unguided matcher.
type Options struct {
	// Guided enables sketch-based candidate ordering and feasibility
	// pruning. Requires Sketches.
	Guided bool
	// Sketches is the data-graph sketch index used when Guided is set.
	Sketches *sketch.Index
	// MaxMatches caps enumeration (0 = unlimited). Existence checks ignore
	// it.
	MaxMatches int
}

// matcher holds one search's state.
type matcher struct {
	p    *pattern.Pattern // expanded pattern
	g    *graph.Graph
	opts Options

	order   []int // pattern nodes in visit order
	pedges  []pattern.Edge
	padj    [][]phalf // pattern adjacency: per node, incident edges
	pdeg    []int
	asgn    []graph.NodeID // asgn[u] = data node, or -1
	used    map[graph.NodeID]bool
	needSk  []sketch.Sketch // per pattern node, pattern sketch (guided only)
	visitIx []int           // position of each pattern node in order, -1 if later
}

// phalf is one incident pattern edge seen from a node.
type phalf struct {
	other    int
	label    graph.Label
	outgoing bool // true when the edge leaves this node
}

const unassigned = graph.NodeID(-1)

func newMatcher(p *pattern.Pattern, g *graph.Graph, opts Options) *matcher {
	g.Freeze() // O(log degree) HasEdge in the consistency check
	pe := p.Expand()
	m := &matcher{p: pe, g: g, opts: opts}
	n := pe.NumNodes()
	m.pedges = pe.Edges()
	m.padj = make([][]phalf, n)
	m.pdeg = make([]int, n)
	for _, e := range m.pedges {
		m.padj[e.From] = append(m.padj[e.From], phalf{other: e.To, label: e.Label, outgoing: true})
		m.padj[e.To] = append(m.padj[e.To], phalf{other: e.From, label: e.Label, outgoing: false})
		m.pdeg[e.From]++
		m.pdeg[e.To]++
	}
	m.asgn = make([]graph.NodeID, n)
	for i := range m.asgn {
		m.asgn[i] = unassigned
	}
	m.used = make(map[graph.NodeID]bool, n)
	if opts.Guided && opts.Sketches != nil {
		k := opts.Sketches.K()
		m.needSk = make([]sketch.Sketch, n)
		for u := 0; u < n; u++ {
			m.needSk[u] = sketch.OfPattern(pe, u, k)
		}
	}
	return m
}

// buildOrder fixes the visit order: BFS from root (usually x) through its
// component, then BFS from the first unvisited node of each remaining
// component. Anchored components first makes candidate sets small.
func (m *matcher) buildOrder(root int) {
	n := m.p.NumNodes()
	seen := make([]bool, n)
	m.order = m.order[:0]
	bfs := func(start int) {
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			m.order = append(m.order, u)
			for _, h := range m.padj[u] {
				if !seen[h.other] {
					seen[h.other] = true
					queue = append(queue, h.other)
				}
			}
		}
	}
	if root >= 0 && root < n {
		bfs(root)
	}
	for u := 0; u < n; u++ {
		if !seen[u] {
			bfs(u)
		}
	}
	m.visitIx = make([]int, n)
	for i, u := range m.order {
		m.visitIx[u] = i
	}
}

// feasible applies label, degree and (optionally) sketch pruning.
func (m *matcher) feasible(u int, v graph.NodeID) bool {
	if m.g.Label(v) != m.p.Label(u) {
		return false
	}
	if m.g.Degree(v) < m.pdeg[u] {
		return false
	}
	if m.needSk != nil {
		if _, ok := sketch.Score(m.opts.Sketches.Sketch(v), m.needSk[u]); !ok {
			return false
		}
	}
	return true
}

// consistent verifies all pattern edges between u and already-assigned nodes.
func (m *matcher) consistent(u int, v graph.NodeID) bool {
	for _, h := range m.padj[u] {
		w := m.asgn[h.other]
		if w == unassigned {
			continue
		}
		if h.outgoing {
			if !m.g.HasEdge(v, w, h.label) {
				return false
			}
		} else {
			if !m.g.HasEdge(w, v, h.label) {
				return false
			}
		}
	}
	return true
}

// candidates returns the data-node candidates for pattern node u, using a
// mapped neighbor's adjacency when available and the label index otherwise.
// When guided, candidates are ordered by descending sketch score.
func (m *matcher) candidates(u int) []graph.NodeID {
	var cands []graph.NodeID
	// Find the mapped neighbor with the smallest adjacency to expand from.
	best := -1
	bestLen := int(^uint(0) >> 1)
	var bestHalf phalf
	for _, h := range m.padj[u] {
		w := m.asgn[h.other]
		if w == unassigned {
			continue
		}
		var l int
		if h.outgoing {
			l = m.g.InDegree(w) // edge u->other means candidates point at w
		} else {
			l = m.g.OutDegree(w)
		}
		if l < bestLen {
			bestLen = l
			best = h.other
			bestHalf = h
		}
	}
	if best >= 0 {
		w := m.asgn[best]
		if bestHalf.outgoing {
			// pattern edge u -> best: data candidates v with v -> w.
			for _, e := range m.g.In(w) {
				if e.Label == bestHalf.label {
					cands = append(cands, e.To)
				}
			}
		} else {
			for _, e := range m.g.Out(w) {
				if e.Label == bestHalf.label {
					cands = append(cands, e.To)
				}
			}
		}
	} else {
		cands = m.g.NodesWithLabel(m.p.Label(u))
	}
	if m.opts.Guided && m.needSk != nil && len(cands) > 1 {
		type scored struct {
			v graph.NodeID
			s int
		}
		ss := make([]scored, 0, len(cands))
		for _, v := range cands {
			s, ok := sketch.Score(m.opts.Sketches.Sketch(v), m.needSk[u])
			if !ok {
				continue
			}
			ss = append(ss, scored{v, s})
		}
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].s != ss[j].s {
				return ss[i].s > ss[j].s
			}
			return ss[i].v < ss[j].v
		})
		cands = cands[:0]
		for _, sc := range ss {
			cands = append(cands, sc.v)
		}
	}
	return cands
}

// search assigns order[idx..]; fn receives each complete assignment and
// returns false to stop the whole search. search reports whether the search
// was stopped early.
func (m *matcher) search(idx int, fn func(asgn []graph.NodeID) bool) bool {
	if idx == len(m.order) {
		return !fn(m.asgn)
	}
	u := m.order[idx]
	for _, v := range m.candidates(u) {
		if m.used[v] || !m.feasible(u, v) || !m.consistent(u, v) {
			continue
		}
		m.asgn[u] = v
		m.used[v] = true
		stopped := m.search(idx+1, fn)
		m.asgn[u] = unassigned
		delete(m.used, v)
		if stopped {
			return true
		}
	}
	return false
}

// HasMatchAt reports whether p has a match h with h(p.X) = v in g. This is
// the early-terminating membership test of algorithm Match: it stops at the
// first complete embedding.
func HasMatchAt(p *pattern.Pattern, g *graph.Graph, v graph.NodeID, opts Options) bool {
	m := newMatcher(p, g, opts)
	x := m.p.X
	if x == pattern.NoNode {
		x = 0
	}
	if x >= m.p.NumNodes() {
		return false
	}
	if !m.feasible(x, v) {
		return false
	}
	m.buildOrder(x)
	m.asgn[x] = v
	m.used[v] = true
	found := false
	m.search(1, func([]graph.NodeID) bool {
		found = true
		return false
	})
	return found
}

// MatchSet returns Q(x,G) restricted to the candidate set: the distinct data
// nodes v in cands such that some match maps the designated x to v. If cands
// is nil, all nodes with x's label are tried. The result preserves candidate
// order.
func MatchSet(p *pattern.Pattern, g *graph.Graph, cands []graph.NodeID, opts Options) []graph.NodeID {
	pe := p.Expand()
	if pe.X == pattern.NoNode {
		return nil
	}
	if cands == nil {
		cands = g.NodesWithLabel(pe.Label(pe.X))
	}
	var out []graph.NodeID
	for _, v := range cands {
		if HasMatchAt(p, g, v, opts) {
			out = append(out, v)
		}
	}
	return out
}

// Enumerate invokes fn for every complete match of p in g (all embeddings,
// not only distinct x images), the full-enumeration behaviour of the disVF2
// baseline. The slice passed to fn is reused between calls; fn must copy it
// to retain it. fn returns false to stop. Enumerate returns the number of
// matches visited. opts.MaxMatches caps the enumeration.
func Enumerate(p *pattern.Pattern, g *graph.Graph, opts Options, fn func(asgn []graph.NodeID) bool) int {
	m := newMatcher(p, g, opts)
	if m.p.NumNodes() == 0 {
		return 0
	}
	root := m.p.X
	if root == pattern.NoNode {
		root = 0
	}
	m.buildOrder(root)
	count := 0
	m.search(0, func(asgn []graph.NodeID) bool {
		count++
		if fn != nil && !fn(asgn) {
			return false
		}
		return opts.MaxMatches == 0 || count < opts.MaxMatches
	})
	return count
}

// ImageSets returns, for every (expanded) pattern node, the set of distinct
// data nodes it maps to over all matches. It underlies the minimum
// image-based support of Bringmann and Nijssen that the paper evaluates as
// the "Iconf" alternative (Sections 3 and 6). opts.MaxMatches bounds the
// enumeration cost.
func ImageSets(p *pattern.Pattern, g *graph.Graph, opts Options) []map[graph.NodeID]bool {
	pe := p.Expand()
	sets := make([]map[graph.NodeID]bool, pe.NumNodes())
	for i := range sets {
		sets[i] = make(map[graph.NodeID]bool)
	}
	Enumerate(p, g, opts, func(asgn []graph.NodeID) bool {
		for u, v := range asgn {
			sets[u][v] = true
		}
		return true
	})
	return sets
}

// MinImageSupport returns the minimum image-based support of p in g: the
// minimum over pattern nodes of the number of distinct images.
func MinImageSupport(p *pattern.Pattern, g *graph.Graph, opts Options) int {
	sets := ImageSets(p, g, opts)
	if len(sets) == 0 {
		return 0
	}
	minN := -1
	for _, s := range sets {
		if minN < 0 || len(s) < minN {
			minN = len(s)
		}
	}
	return minN
}

// EnumerateAnchored enumerates the matches h of p in g with h(p.X) = v,
// invoking fn for each (same contract as Enumerate). It returns the number
// of matches visited. It powers the extension-discovery step of algorithm
// DMine, which must see whole embeddings rather than just existence.
func EnumerateAnchored(p *pattern.Pattern, g *graph.Graph, v graph.NodeID, opts Options, fn func(asgn []graph.NodeID) bool) int {
	m := newMatcher(p, g, opts)
	if m.p.NumNodes() == 0 {
		return 0
	}
	x := m.p.X
	if x == pattern.NoNode {
		x = 0
	}
	if !m.feasible(x, v) {
		return 0
	}
	m.buildOrder(x)
	m.asgn[x] = v
	m.used[v] = true
	count := 0
	m.search(1, func(asgn []graph.NodeID) bool {
		count++
		if fn != nil && !fn(asgn) {
			return false
		}
		return opts.MaxMatches == 0 || count < opts.MaxMatches
	})
	return count
}
