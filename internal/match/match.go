// Package match implements subgraph isomorphism for graph patterns against
// labeled data graphs, in the semantics of Section 2.1 of "Association Rules
// with Graph Patterns" (PVLDB 2015): a match of pattern Q in graph G is an
// injective mapping h from Q's (expanded) nodes to nodes of G that preserves
// node labels and maps every pattern edge onto a data edge with the same
// label.
//
// Three modes are provided, mirroring the paper's three algorithms:
//
//   - Enumerate: full match enumeration, the behaviour of the disVF2
//     baseline (Section 6);
//   - HasMatchAt: anchored existence check with early termination, the key
//     optimization of algorithm Match (Section 5.2);
//   - guided search: candidate ordering by k-hop sketch scores, the second
//     optimization of algorithm Match.
//
// The engine runs on the frozen CSR representation of the data graph
// (graph.Freeze): candidate generation iterates label-contiguous arena
// ranges instead of scanning whole adjacency lists, the used-set is an
// epoch-stamped array instead of a map, and all search state lives in a
// pooled, rebindable Matcher — so the hot loops of algorithms Match, DMine
// and the gpard serving path allocate nothing in steady state. Callers with
// many anchored probes against one (pattern, graph) pair should obtain a
// Matcher once via NewMatcher and Release it when done; the package-level
// functions are one-shot conveniences over the same pool.
package match

import (
	"cmp"
	"slices"
	"sync"

	"gpar/internal/graph"
	"gpar/internal/pattern"
	"gpar/internal/sketch"
)

// Options tunes a matching run. The zero value is a plain unguided matcher.
type Options struct {
	// Guided enables sketch-based candidate ordering and feasibility
	// pruning. Requires Sketches.
	Guided bool
	// Sketches is the data-graph sketch index used when Guided is set.
	Sketches *sketch.Index
	// MaxMatches caps enumeration (0 = unlimited). Existence checks ignore
	// it.
	MaxMatches int
	// Canonical makes the candidate source at each search level the first
	// (in pattern-edge order) mapped neighbor's CSR range instead of the
	// smallest one. Range lengths depend on which other nodes a fragment
	// happens to contain, so the smallest-first heuristic makes the
	// *enumeration order* of matches fragment-layout-dependent even though
	// the match set never is. With Canonical set — and data graphs whose
	// local IDs ascend in a globally consistent order, which
	// partition.Partition guarantees — anchored enumeration visits matches
	// in an order that is a pure function of the pattern and the global
	// node IDs. The mining loop relies on this to make Options.EmbedCap
	// truncation identical for every fragment layout / worker count.
	// Existence checks gain nothing from it and keep the faster heuristic.
	Canonical bool
}

// phalf is one incident pattern edge seen from a node.
type phalf struct {
	other    int
	label    graph.Label
	outgoing bool // true when the edge leaves this node
}

// scoredCand is one guided candidate with its sketch slack score.
type scoredCand struct {
	v graph.NodeID
	s int
}

const unassigned = graph.NodeID(-1)

// Matcher is a reusable compiled matcher for one (pattern, graph, options)
// binding. All slices are retained across bindings and grown only when a
// larger pattern or graph arrives, so a pooled Matcher performing repeated
// anchored probes allocates nothing. A Matcher is not safe for concurrent
// use; obtain one per goroutine. The bound graph must stay frozen and
// unmutated for the Matcher's lifetime: binding sizes the used-set to the
// graph's node count, so growing the graph mid-lifetime is out of
// contract (edge checks degrade safely to scans, node growth does not).
type Matcher struct {
	p    *pattern.Pattern // expanded pattern
	g    *graph.Graph
	opts Options

	// Pattern-side compiled state, rebuilt per binding reusing capacity.
	phalfs []phalf // flat incident-edge arena
	poff   []int32 // len n+1; node u's halves are phalfs[poff[u]:poff[u+1]]
	pcur   []int32 // fill cursor scratch
	pdeg   []int
	order  []int  // pattern nodes in visit order (BFS from x)
	seen   []bool // buildOrder scratch

	// Per-search state.
	asgn []graph.NodeID
	// used is the epoch-stamped used-set over data nodes: used[v] == epoch
	// means v is on the current search path. Rebinding bumps the epoch
	// instead of clearing, so switching graphs or patterns is O(1).
	used  []uint32
	epoch uint32

	// Guided state.
	needSk []sketch.Sketch
	cbufs  [][]scoredCand // per-depth candidate buffers, reused across calls
}

var matcherPool = sync.Pool{New: func() any { return new(Matcher) }}

// NewMatcher returns a pooled Matcher bound to (p, g, opts). It freezes g
// (a no-op when already frozen) and precomputes the pattern adjacency and
// visit order rooted at p's designated x. Call Release when done to return
// the Matcher — and its grown buffers — to the pool.
func NewMatcher(p *pattern.Pattern, g *graph.Graph, opts Options) *Matcher {
	m := matcherPool.Get().(*Matcher)
	m.bind(p, g, opts)
	return m
}

// Release returns the Matcher to the pool. The Matcher must not be used
// afterwards.
func (m *Matcher) Release() {
	m.p, m.g = nil, nil
	m.opts = Options{}
	m.needSk = nil
	matcherPool.Put(m)
}

func (m *Matcher) bind(p *pattern.Pattern, g *graph.Graph, opts Options) {
	g.Freeze() // no-op (atomic load) when already frozen
	pe := p.Expand()
	m.p, m.g, m.opts = pe, g, opts

	n := pe.NumNodes()
	edges := pe.Edges()
	m.pdeg = grow(m.pdeg, n)
	for i := range m.pdeg {
		m.pdeg[i] = 0
	}
	for _, e := range edges {
		m.pdeg[e.From]++
		m.pdeg[e.To]++
	}
	m.poff = grow(m.poff, n+1)
	m.poff[0] = 0
	for u := 0; u < n; u++ {
		m.poff[u+1] = m.poff[u] + int32(m.pdeg[u])
	}
	m.phalfs = grow(m.phalfs, 2*len(edges))
	m.pcur = grow(m.pcur, n)
	copy(m.pcur, m.poff[:n])
	for _, e := range edges {
		m.phalfs[m.pcur[e.From]] = phalf{other: e.To, label: e.Label, outgoing: true}
		m.pcur[e.From]++
		m.phalfs[m.pcur[e.To]] = phalf{other: e.From, label: e.Label, outgoing: false}
		m.pcur[e.To]++
	}

	m.asgn = grow(m.asgn, n)
	for i := range m.asgn {
		m.asgn[i] = unassigned
	}
	nn := g.NumNodes()
	if cap(m.used) < nn {
		m.used = make([]uint32, nn)
		m.epoch = 0
	}
	m.used = m.used[:nn]
	m.epoch++
	if m.epoch == 0 { // wraparound: stale stamps could alias, clear once
		for i := range m.used {
			m.used[i] = 0
		}
		m.epoch = 1
	}

	m.needSk = nil
	if opts.Guided && opts.Sketches != nil {
		// Cached per pattern identity on the index, so long-lived indexes
		// (one per serving fragment) compute pattern sketches exactly once.
		m.needSk = opts.Sketches.PatternSketches(p)
	}

	if n > 0 {
		root := pe.X
		if root == pattern.NoNode {
			root = 0
		}
		m.buildOrder(root)
	} else {
		m.order = m.order[:0]
	}
}

// grow returns s resized to length n, reallocating only when the retained
// capacity is too small. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// halves returns the incident pattern edges of node u.
func (m *Matcher) halves(u int) []phalf {
	return m.phalfs[m.poff[u]:m.poff[u+1]]
}

// buildOrder fixes the visit order: BFS from root (usually x) through its
// component, then BFS from the first unvisited node of each remaining
// component. Anchored components first makes candidate sets small. The
// order slice doubles as the BFS queue.
func (m *Matcher) buildOrder(root int) {
	n := m.p.NumNodes()
	m.seen = grow(m.seen, n)
	for i := range m.seen {
		m.seen[i] = false
	}
	m.order = m.order[:0]
	scan := 0
	bfs := func(start int) {
		m.seen[start] = true
		m.order = append(m.order, start)
		for scan < len(m.order) {
			u := m.order[scan]
			scan++
			for _, h := range m.halves(u) {
				if !m.seen[h.other] {
					m.seen[h.other] = true
					m.order = append(m.order, h.other)
				}
			}
		}
	}
	if root >= 0 && root < n {
		bfs(root)
	}
	for u := 0; u < n; u++ {
		if !m.seen[u] {
			bfs(u)
		}
	}
}

// feasible applies label, degree and (optionally) sketch pruning.
func (m *Matcher) feasible(u int, v graph.NodeID) bool {
	if m.g.Label(v) != m.p.Label(u) {
		return false
	}
	if m.g.Degree(v) < m.pdeg[u] {
		return false
	}
	if m.needSk != nil {
		if _, ok := sketch.Score(m.opts.Sketches.Sketch(v), m.needSk[u]); !ok {
			return false
		}
	}
	return true
}

// consistent verifies all pattern edges between u and already-assigned
// nodes. The half at arena index skip — the one whose CSR range produced
// the candidate — is satisfied by construction and not re-verified.
func (m *Matcher) consistent(u int, v graph.NodeID, skip int32) bool {
	base := m.poff[u]
	for i, h := range m.halves(u) {
		if base+int32(i) == skip {
			continue
		}
		w := m.asgn[h.other]
		if h.other == u {
			w = v // pattern self-loop: the data node must carry it too
		} else if w == unassigned {
			continue
		}
		if h.outgoing {
			if !m.hasDataEdge(v, w, h.label) {
				return false
			}
		} else {
			if !m.hasDataEdge(w, v, h.label) {
				return false
			}
		}
	}
	return true
}

// hasDataEdge tests from -l-> to against the frozen graph by binary-
// searching only the label-contiguous CSR range, falling to a linear scan
// on the short tail. If the graph was thawed behind the matcher's back
// (a contract violation, but a silent-wrong-answer hazard) it falls back
// to the unfrozen HasEdge scan, which does not assume sorted ranges.
func (m *Matcher) hasDataEdge(from, to graph.NodeID, l graph.Label) bool {
	if !m.g.Frozen() {
		return m.g.HasEdge(from, to, l)
	}
	r := m.g.OutRangeL(from, l) // sorted by To within the label range
	lo, hi := 0, len(r)
	for hi-lo > 8 {
		mid := (lo + hi) / 2
		if r[mid].To < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < hi; lo++ {
		if r[lo].To >= to {
			return r[lo].To == to
		}
	}
	return false
}

// search assigns order[idx..]; fn receives each complete assignment and
// returns false to stop the whole search. search reports whether the search
// was stopped early.
//
// Candidates for order[idx] come from the smallest label-contiguous CSR
// range of a mapped pattern neighbor (binary-searched, not scanned), or
// from the precomputed node-label index when no neighbor is mapped yet.
// Unguided search iterates the range in place; guided search materializes
// it into the per-depth reusable buffer to sort by sketch score.
func (m *Matcher) search(idx int, fn func(asgn []graph.NodeID) bool) bool {
	if idx == len(m.order) {
		return !fn(m.asgn)
	}
	u := m.order[idx]
	var es []graph.Edge   // anchored source: candidates are e.To
	var ns []graph.NodeID // label-index source
	skip := int32(-1)     // arena index of the half that anchored es
	base := m.poff[u]
	for i, h := range m.halves(u) {
		w := m.asgn[h.other]
		if w == unassigned {
			continue
		}
		var r []graph.Edge
		if h.outgoing {
			// Pattern edge u -> other: data candidates v have v -> w, i.e.
			// they appear in w's incoming range for the label.
			r = m.g.InRangeL(w, h.label)
		} else {
			r = m.g.OutRangeL(w, h.label)
		}
		if len(r) == 0 {
			return false // some mapped neighbor admits no extension
		}
		// Canonical mode anchors on the first mapped half; the default picks
		// the smallest range. Either way consistent() verifies the rest.
		if skip < 0 || (!m.opts.Canonical && len(r) < len(es)) {
			es, skip = r, base+int32(i)
		}
	}
	if skip < 0 {
		ns = m.g.NodesWithLabel(m.p.Label(u))
	}
	if m.needSk != nil {
		return m.searchGuided(idx, u, es, ns, skip, fn)
	}
	if skip >= 0 {
		for _, e := range es {
			if m.tryAssign(idx, u, e.To, skip, fn) {
				return true
			}
		}
		return false
	}
	for _, v := range ns {
		if m.tryAssign(idx, u, v, -1, fn) {
			return true
		}
	}
	return false
}

// tryAssign attempts order[idx] = v and recurses. It reports whether the
// search was stopped early.
func (m *Matcher) tryAssign(idx, u int, v graph.NodeID, skip int32, fn func(asgn []graph.NodeID) bool) bool {
	if m.used[v] == m.epoch || !m.feasible(u, v) || !m.consistent(u, v, skip) {
		return false
	}
	m.asgn[u] = v
	m.used[v] = m.epoch
	stopped := m.search(idx+1, fn)
	m.asgn[u] = unassigned
	m.used[v] = 0
	return stopped
}

// searchGuided is the guided variant of one search level: candidates are
// scored against the pattern sketch, infeasible ones dropped, and the rest
// visited in descending slack order ("the larger the difference is, the
// more likely v' matches u'").
func (m *Matcher) searchGuided(idx, u int, es []graph.Edge, ns []graph.NodeID, skip int32, fn func(asgn []graph.NodeID) bool) bool {
	for len(m.cbufs) <= idx {
		m.cbufs = append(m.cbufs, nil)
	}
	buf := m.cbufs[idx][:0]
	want := m.p.Label(u)
	add := func(v graph.NodeID) {
		if m.g.Label(v) != want {
			return
		}
		s, ok := sketch.Score(m.opts.Sketches.Sketch(v), m.needSk[u])
		if !ok {
			return
		}
		buf = append(buf, scoredCand{v, s})
	}
	if skip >= 0 {
		for _, e := range es {
			add(e.To)
		}
	} else {
		for _, v := range ns {
			add(v)
		}
	}
	sortScored(buf)
	m.cbufs[idx] = buf // retain grown capacity
	for _, sc := range buf {
		// Label and sketch feasibility were established by add; only the
		// degree bound, the used-set and edge consistency remain.
		v := sc.v
		if m.used[v] == m.epoch || m.g.Degree(v) < m.pdeg[u] || !m.consistent(u, v, skip) {
			continue
		}
		m.asgn[u] = v
		m.used[v] = m.epoch
		stopped := m.search(idx+1, fn)
		m.asgn[u] = unassigned
		m.used[v] = 0
		if stopped {
			return true
		}
	}
	return false
}

// sortScored orders candidates by descending score, then ascending ID for
// determinism. slices.SortFunc does not allocate, keeping the guided hot
// path allocation-free.
func sortScored(a []scoredCand) {
	slices.SortFunc(a, func(x, y scoredCand) int {
		if x.s != y.s {
			return cmp.Compare(y.s, x.s)
		}
		return cmp.Compare(x.v, y.v)
	})
}

// HasMatchAt reports whether the bound pattern has a match h with h(x) = v.
// This is the early-terminating membership test of algorithm Match: it
// stops at the first complete embedding. It may be called repeatedly with
// different anchors; no state leaks between calls.
func (m *Matcher) HasMatchAt(v graph.NodeID) bool {
	n := m.p.NumNodes()
	if n == 0 {
		return false
	}
	x := m.p.X
	if x == pattern.NoNode {
		x = 0
	}
	// consistent at the anchor is vacuous except for self-loops at x.
	if x >= n || !m.feasible(x, v) || !m.consistent(x, v, -1) {
		return false
	}
	m.asgn[x] = v
	m.used[v] = m.epoch
	found := false
	m.search(1, func([]graph.NodeID) bool {
		found = true
		return false
	})
	m.asgn[x] = unassigned
	m.used[v] = 0
	return found
}

// EnumerateAnchored enumerates the matches h with h(x) = v, invoking fn for
// each (the slice passed to fn is reused; fn must copy it to retain it; fn
// returning false stops the search). It returns the number of matches
// visited, capped by Options.MaxMatches when set.
func (m *Matcher) EnumerateAnchored(v graph.NodeID, fn func(asgn []graph.NodeID) bool) int {
	n := m.p.NumNodes()
	if n == 0 {
		return 0
	}
	x := m.p.X
	if x == pattern.NoNode {
		x = 0
	}
	if x >= n || !m.feasible(x, v) || !m.consistent(x, v, -1) {
		return 0
	}
	m.asgn[x] = v
	m.used[v] = m.epoch
	count := 0
	m.search(1, func(asgn []graph.NodeID) bool {
		count++
		if fn != nil && !fn(asgn) {
			return false
		}
		return m.opts.MaxMatches == 0 || count < m.opts.MaxMatches
	})
	m.asgn[x] = unassigned
	m.used[v] = 0
	return count
}

// Enumerate invokes fn for every complete match in the graph (all
// embeddings, not only distinct x images), the full-enumeration behaviour
// of the disVF2 baseline. Same fn contract as EnumerateAnchored.
func (m *Matcher) Enumerate(fn func(asgn []graph.NodeID) bool) int {
	if m.p.NumNodes() == 0 {
		return 0
	}
	count := 0
	m.search(0, func(asgn []graph.NodeID) bool {
		count++
		if fn != nil && !fn(asgn) {
			return false
		}
		return m.opts.MaxMatches == 0 || count < m.opts.MaxMatches
	})
	return count
}

// HasMatchAt reports whether p has a match h with h(p.X) = v in g. One-shot
// form of Matcher.HasMatchAt; callers probing many anchors should hold a
// Matcher instead.
func HasMatchAt(p *pattern.Pattern, g *graph.Graph, v graph.NodeID, opts Options) bool {
	m := NewMatcher(p, g, opts)
	ok := m.HasMatchAt(v)
	m.Release()
	return ok
}

// MatchSet returns Q(x,G) restricted to the candidate set: the distinct data
// nodes v in cands such that some match maps the designated x to v. If cands
// is nil, all nodes with x's label are tried. The result preserves candidate
// order.
func MatchSet(p *pattern.Pattern, g *graph.Graph, cands []graph.NodeID, opts Options) []graph.NodeID {
	m := NewMatcher(p, g, opts)
	defer m.Release()
	if m.p.X == pattern.NoNode {
		return nil
	}
	if cands == nil {
		cands = g.NodesWithLabel(m.p.Label(m.p.X))
	}
	var out []graph.NodeID
	for _, v := range cands {
		if m.HasMatchAt(v) {
			out = append(out, v)
		}
	}
	return out
}

// Enumerate invokes fn for every complete match of p in g (all embeddings,
// not only distinct x images), the full-enumeration behaviour of the disVF2
// baseline. The slice passed to fn is reused between calls; fn must copy it
// to retain it. fn returns false to stop. Enumerate returns the number of
// matches visited. opts.MaxMatches caps the enumeration.
func Enumerate(p *pattern.Pattern, g *graph.Graph, opts Options, fn func(asgn []graph.NodeID) bool) int {
	m := NewMatcher(p, g, opts)
	n := m.Enumerate(fn)
	m.Release()
	return n
}

// ImageSets returns, for every (expanded) pattern node, the set of distinct
// data nodes it maps to over all matches. It underlies the minimum
// image-based support of Bringmann and Nijssen that the paper evaluates as
// the "Iconf" alternative (Sections 3 and 6). opts.MaxMatches bounds the
// enumeration cost.
func ImageSets(p *pattern.Pattern, g *graph.Graph, opts Options) []map[graph.NodeID]bool {
	pe := p.Expand()
	sets := make([]map[graph.NodeID]bool, pe.NumNodes())
	for i := range sets {
		sets[i] = make(map[graph.NodeID]bool)
	}
	Enumerate(p, g, opts, func(asgn []graph.NodeID) bool {
		for u, v := range asgn {
			sets[u][v] = true
		}
		return true
	})
	return sets
}

// MinImageSupport returns the minimum image-based support of p in g: the
// minimum over pattern nodes of the number of distinct images.
func MinImageSupport(p *pattern.Pattern, g *graph.Graph, opts Options) int {
	sets := ImageSets(p, g, opts)
	if len(sets) == 0 {
		return 0
	}
	minN := -1
	for _, s := range sets {
		if minN < 0 || len(s) < minN {
			minN = len(s)
		}
	}
	return minN
}

// EnumerateAnchored enumerates the matches h of p in g with h(p.X) = v,
// invoking fn for each (same contract as Enumerate). It returns the number
// of matches visited. It powers the extension-discovery step of algorithm
// DMine, which must see whole embeddings rather than just existence.
func EnumerateAnchored(p *pattern.Pattern, g *graph.Graph, v graph.NodeID, opts Options, fn func(asgn []graph.NodeID) bool) int {
	m := NewMatcher(p, g, opts)
	n := m.EnumerateAnchored(v, fn)
	m.Release()
	return n
}
