package match_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/gen"
	"gpar/internal/graph"
	. "gpar/internal/match"
	"gpar/internal/pattern"
)

func TestSimulationOnG1(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	r1 := gen.R1(syms)
	simSet := SimulationSet(r1.Q, f.G)
	isoSet := MatchSet(r1.Q, f.G, nil, Options{})
	inSim := map[graph.NodeID]bool{}
	for _, v := range simSet {
		inSim[v] = true
	}
	for _, v := range isoSet {
		if !inSim[v] {
			t.Errorf("iso match %d missing from simulation set", v)
		}
	}
}

func TestSimulationCoarserThanIsomorphism(t *testing.T) {
	// Simulation cannot count copies: a pattern demanding two distinct
	// children is simulated by a node with one child.
	g := graph.New(nil)
	hub := g.AddNode("h")
	leaf := g.AddNode("l")
	g.AddEdge(hub, leaf, "e")

	p := pattern.New(g.Symbols())
	u := p.AddNode("h")
	v1 := p.AddNode("l")
	v2 := p.AddNode("l")
	p.AddEdge(u, v1, "e")
	p.AddEdge(u, v2, "e")
	p.X = u

	if HasMatchAt(p, g, hub, Options{}) {
		t.Fatal("isomorphism should fail (needs two leaves)")
	}
	sim := SimulationSet(p, g)
	if len(sim) != 1 || sim[0] != hub {
		t.Errorf("simulation set = %v want [hub]", sim)
	}
}

func TestSimulationRespectsEdgeLabelsAndDirection(t *testing.T) {
	g := graph.New(nil)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, "x")

	p := pattern.New(g.Symbols())
	u := p.AddNode("a")
	w := p.AddNode("b")
	p.AddEdge(u, w, "y")
	p.X = u
	if got := SimulationSet(p, g); len(got) != 0 {
		t.Errorf("label-mismatched simulation matched %v", got)
	}
	q := pattern.New(g.Symbols())
	u2 := q.AddNode("a")
	w2 := q.AddNode("b")
	q.AddEdge(w2, u2, "x")
	q.X = u2
	if got := SimulationSet(q, g); len(got) != 0 {
		t.Errorf("direction-reversed simulation matched %v", got)
	}
}

func TestSimulationCycleUnrolling(t *testing.T) {
	// The classic simulation example: a pattern 2-cycle is simulated by any
	// data cycle of the same labels (here a 3-cycle), while isomorphism of
	// the 2-cycle pattern fails.
	g := graph.New(nil)
	n1 := g.AddNode("a")
	n2 := g.AddNode("a")
	n3 := g.AddNode("a")
	g.AddEdge(n1, n2, "e")
	g.AddEdge(n2, n3, "e")
	g.AddEdge(n3, n1, "e")

	p := pattern.New(g.Symbols())
	u := p.AddNode("a")
	v := p.AddNode("a")
	p.AddEdge(u, v, "e")
	p.AddEdge(v, u, "e")
	p.X = u

	if len(MatchSet(p, g, nil, Options{})) != 0 {
		t.Fatal("no 2-cycle exists, isomorphism must fail")
	}
	sim := SimulationSet(p, g)
	if len(sim) != 3 {
		t.Errorf("simulation should relate all three cycle nodes, got %v", sim)
	}
}

func TestSimulationEmptyKillsAll(t *testing.T) {
	// If one pattern node has no candidates, every set empties.
	g := graph.New(nil)
	g.AddNode("a")
	p := pattern.New(g.Symbols())
	x := p.AddNode("a")
	y := p.AddNode("zzz") // label absent from g
	p.AddEdge(x, y, "e")
	p.X = x
	sets := SimulationSets(p, g)
	for u, s := range sets {
		if len(s) != 0 {
			t.Errorf("pattern node %d kept candidates %v", u, s)
		}
	}
	if got := SimulationSet(p, g); len(got) != 0 {
		t.Errorf("SimulationSet = %v want empty", got)
	}
}

// TestQuickSimulationSupersetOfIso: on random graphs, the simulation set of
// x always contains the isomorphism match set.
func TestQuickSimulationSupersetOfIso(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b", "c"}
		n := 10 + rng.Intn(10)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(3)])
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		p := pattern.New(g.Symbols())
		x := p.AddNode("a")
		y := p.AddNode(labels[rng.Intn(3)])
		z := p.AddNode(labels[rng.Intn(3)])
		p.AddEdge(x, y, "e")
		p.AddEdge(y, z, "e")
		p.X = x

		iso := MatchSet(p, g, nil, Options{})
		sim := map[graph.NodeID]bool{}
		for _, v := range SimulationSet(p, g) {
			sim[v] = true
		}
		for _, v := range iso {
			if !sim[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
