package serve

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpar/internal/mine/remote"
)

// startFleet brings up n worker services on loopback listeners and returns
// their addresses. Listeners close on test cleanup, ending each Serve loop.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { l.Close() })
		go remote.Serve(l, remote.ServerOptions{})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// TestMineJobFleet pins the distributed serving path: with MineWorkers
// configured, a mine job is submitted to the fleet, reports Distributed, and
// returns exactly the rule set an in-process job over the same snapshot
// produces.
func TestMineJobFleet(t *testing.T) {
	addrs := startFleet(t, 2)
	fleet, _, _ := newTestServer(t, Config{Workers: 2, MineWorkers: addrs})
	local, _, _ := newTestServer(t, Config{Workers: 2})

	p := mineFixtureParams()
	p.Workers = 0 // inherit the fleet size (2)
	run := func(s *Server) Job {
		job, err := s.StartMine(p)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		done := waitJob(t, s, job.ID)
		if done.Status != JobDone {
			t.Fatalf("job failed: %s", done.Error)
		}
		return done
	}

	remoteJob := run(fleet)
	localJob := run(local)
	if !remoteJob.Distributed {
		t.Fatal("fleet job did not report Distributed")
	}
	if remoteJob.FleetFallback != "" {
		t.Fatalf("fleet job fell back: %s", remoteJob.FleetFallback)
	}
	if localJob.Distributed {
		t.Fatal("in-process job reported Distributed")
	}
	if len(remoteJob.RuleKeys) == 0 || !reflect.DeepEqual(remoteJob.RuleKeys, localJob.RuleKeys) {
		t.Fatalf("distributed rules diverge:\nfleet %v\nlocal %v", remoteJob.RuleKeys, localJob.RuleKeys)
	}
	if got := fleet.nRemoteMine.Load(); got != 1 {
		t.Fatalf("remote mine counter = %d, want 1", got)
	}
	if got := fleet.nFleetFall.Load(); got != 0 {
		t.Fatalf("fallback counter = %d, want 0", got)
	}

	// A second fleet job reuses the cached mine context; the fleet is
	// re-dialed per job, so nothing about the first job's connections leaks.
	again := run(fleet)
	if !again.Distributed || !again.ContextCached {
		t.Fatalf("repeat fleet job: distributed=%v contextCached=%v", again.Distributed, again.ContextCached)
	}
	if !reflect.DeepEqual(again.RuleKeys, localJob.RuleKeys) {
		t.Fatal("repeat fleet job rules diverge")
	}
}

// TestMineJobFleetUnreachableFallsBack pins the dial-phase failure path: an
// unreachable fleet means the job mines in-process, succeeds, and records
// why it fell back.
func TestMineJobFleetUnreachableFallsBack(t *testing.T) {
	// Grab an address nobody is listening on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	s, _, _ := newTestServer(t, Config{Workers: 2, MineWorkers: []string{dead, dead}})
	p := mineFixtureParams()
	p.Workers = 0
	job, err := s.StartMine(p)
	if err != nil {
		t.Fatalf("StartMine: %v", err)
	}
	done := waitJob(t, s, job.ID)
	if done.Status != JobDone {
		t.Fatalf("fallback job failed: %s", done.Error)
	}
	if done.Distributed {
		t.Fatal("unreachable fleet still reported Distributed")
	}
	if done.FleetFallback == "" {
		t.Fatal("fallback reason not recorded")
	}
	if len(done.RuleKeys) == 0 {
		t.Fatal("fallback job produced no rules")
	}
	if got := s.nFleetFall.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	if got := s.nRemoteMine.Load(); got != 0 {
		t.Fatalf("remote mine counter = %d, want 0", got)
	}
}

// TestMineJobFleetWorkerCountMismatch: a request that pins a worker count
// different from the fleet size cannot be distributed (one service per
// fragment); it mines in-process and says why.
func TestMineJobFleetWorkerCountMismatch(t *testing.T) {
	addrs := startFleet(t, 2)
	s, _, _ := newTestServer(t, Config{Workers: 2, MineWorkers: addrs})
	p := mineFixtureParams()
	p.Workers = 3
	job, err := s.StartMine(p)
	if err != nil {
		t.Fatalf("StartMine: %v", err)
	}
	done := waitJob(t, s, job.ID)
	if done.Status != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if done.Distributed || !strings.Contains(done.FleetFallback, "fleet has 2") {
		t.Fatalf("distributed=%v fallback=%q", done.Distributed, done.FleetFallback)
	}
}

// TestMineJobFleetMidJobFailureFailsJob pins the no-fallback rule: once the
// fleet is dialed, a worker that stalls past the step deadline fails the job
// (typed, no install) rather than silently re-mining in-process.
func TestMineJobFleetMidJobFailureFailsJob(t *testing.T) {
	addrs := startFleet(t, 1)
	// The second "worker" accepts and handshakes but never answers a frame.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				c.Read(buf)             // their handshake
				c.Write([]byte("GPWK")) // magic...
				c.Write([]byte{1})      // ...and version
				for {
					if _, err := c.Read(buf); err != nil {
						return // swallow frames, never reply
					}
				}
			}(c)
		}
	}()
	addrs = append(addrs, l.Addr().String())

	s, _, _ := newTestServer(t, Config{
		Workers:         2,
		MineWorkers:     addrs,
		MineStepTimeout: 200 * time.Millisecond,
	})
	p := mineFixtureParams()
	p.Workers = 0
	p.Install = true // must NOT install on failure
	job, err := s.StartMine(p)
	if err != nil {
		t.Fatalf("StartMine: %v", err)
	}
	done := waitJob(t, s, job.ID)
	if done.Status != JobFailed {
		t.Fatalf("stalled-worker job status = %s, want failed", done.Status)
	}
	if !done.Distributed {
		t.Fatal("failed fleet job did not report Distributed")
	}
	if !strings.Contains(done.Error, "worker 1") {
		t.Fatalf("error does not name the worker: %q", done.Error)
	}
	if done.Installed || done.Generation != 0 {
		t.Fatal("failed job installed rules")
	}
	if got := s.Generation(); got != 1 {
		t.Fatalf("generation moved to %d after failed job", got)
	}
}
