package serve

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpar/internal/mine/remote"
)

// startFleet brings up n worker services on loopback listeners and returns
// their addresses. Listeners close on test cleanup, ending each Serve loop.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { l.Close() })
		go remote.Serve(l, remote.ServerOptions{})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// TestMineJobFleet pins the distributed serving path: with MineWorkers
// configured, a mine job is submitted to the fleet, reports Distributed, and
// returns exactly the rule set an in-process job over the same snapshot
// produces.
func TestMineJobFleet(t *testing.T) {
	addrs := startFleet(t, 2)
	fleet, _, _ := newTestServer(t, Config{Workers: 2, MineWorkers: addrs})
	local, _, _ := newTestServer(t, Config{Workers: 2})

	p := mineFixtureParams()
	p.Workers = 0 // inherit the fleet size (2)
	run := func(s *Server) Job {
		job, err := s.StartMine(p)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		done := waitJob(t, s, job.ID)
		if done.Status != JobDone {
			t.Fatalf("job failed: %s", done.Error)
		}
		return done
	}

	remoteJob := run(fleet)
	localJob := run(local)
	if !remoteJob.Distributed {
		t.Fatal("fleet job did not report Distributed")
	}
	if remoteJob.FleetFallback != "" {
		t.Fatalf("fleet job fell back: %s", remoteJob.FleetFallback)
	}
	if localJob.Distributed {
		t.Fatal("in-process job reported Distributed")
	}
	if len(remoteJob.RuleKeys) == 0 || !reflect.DeepEqual(remoteJob.RuleKeys, localJob.RuleKeys) {
		t.Fatalf("distributed rules diverge:\nfleet %v\nlocal %v", remoteJob.RuleKeys, localJob.RuleKeys)
	}
	if got := fleet.nRemoteMine.Load(); got != 1 {
		t.Fatalf("remote mine counter = %d, want 1", got)
	}
	if got := fleet.nFleetFall.Load(); got != 0 {
		t.Fatalf("fallback counter = %d, want 0", got)
	}

	// A second fleet job reuses the cached mine context; the fleet is
	// re-dialed per job, so nothing about the first job's connections leaks.
	again := run(fleet)
	if !again.Distributed || !again.ContextCached {
		t.Fatalf("repeat fleet job: distributed=%v contextCached=%v", again.Distributed, again.ContextCached)
	}
	if !reflect.DeepEqual(again.RuleKeys, localJob.RuleKeys) {
		t.Fatal("repeat fleet job rules diverge")
	}
}

// TestMineJobFleetUnreachableFallsBack pins the dial-phase failure path: an
// unreachable fleet means the job mines in-process, succeeds, and records
// why it fell back.
func TestMineJobFleetUnreachableFallsBack(t *testing.T) {
	// Grab an address nobody is listening on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	s, _, _ := newTestServer(t, Config{Workers: 2, MineWorkers: []string{dead, dead}})
	p := mineFixtureParams()
	p.Workers = 0
	job, err := s.StartMine(p)
	if err != nil {
		t.Fatalf("StartMine: %v", err)
	}
	done := waitJob(t, s, job.ID)
	if done.Status != JobDone {
		t.Fatalf("fallback job failed: %s", done.Error)
	}
	if done.Distributed {
		t.Fatal("unreachable fleet still reported Distributed")
	}
	if done.FleetFallback == "" {
		t.Fatal("fallback reason not recorded")
	}
	if len(done.RuleKeys) == 0 {
		t.Fatal("fallback job produced no rules")
	}
	if got := s.nFleetFall.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	if got := s.nRemoteMine.Load(); got != 0 {
		t.Fatalf("remote mine counter = %d, want 0", got)
	}
}

// TestMineJobFleetWorkerCountMismatch: a request that pins a worker count
// different from the fleet size cannot be distributed (one service per
// fragment); it mines in-process and says why.
func TestMineJobFleetWorkerCountMismatch(t *testing.T) {
	addrs := startFleet(t, 2)
	s, _, _ := newTestServer(t, Config{Workers: 2, MineWorkers: addrs})
	p := mineFixtureParams()
	p.Workers = 3
	job, err := s.StartMine(p)
	if err != nil {
		t.Fatalf("StartMine: %v", err)
	}
	done := waitJob(t, s, job.ID)
	if done.Status != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if done.Distributed || !strings.Contains(done.FleetFallback, "fleet has 2") {
		t.Fatalf("distributed=%v fallback=%q", done.Distributed, done.FleetFallback)
	}
}

// startStalledWorker brings up a fake worker that handshakes as a v1 peer
// and then swallows every frame without answering — the canonical mid-job
// stall. Returns its address.
func startStalledWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				c.Read(buf)             // their handshake
				c.Write([]byte("GPWK")) // magic...
				c.Write([]byte{1})      // ...and version
				for {
					if _, err := c.Read(buf); err != nil {
						return // swallow frames, never reply
					}
				}
			}(c)
		}
	}()
	return l.Addr().String()
}

// TestMineJobFleetMidJobFailureRetriesThenFallsBack pins the retry +
// recorded-fallback rule: a worker that stalls past the step deadline fails
// each attempt; the coordinator re-dials and retries up to MineRetries, then
// mines in-process, still completing the job — with the fallback reason,
// attempt count, and breaker failure all recorded so the sick fleet is
// never silently masked.
func TestMineJobFleetMidJobFailureRetriesThenFallsBack(t *testing.T) {
	addrs := []string{startFleet(t, 1)[0], startStalledWorker(t)}

	s, _, _ := newTestServer(t, Config{
		Workers:          2,
		MineWorkers:      addrs,
		MineStepTimeout:  200 * time.Millisecond,
		MineRetries:      2,
		MineRetryBackoff: time.Millisecond,
	})
	p := mineFixtureParams()
	p.Workers = 0
	p.Install = true // fallback result is a real result; install proceeds
	job, err := s.StartMine(p)
	if err != nil {
		t.Fatalf("StartMine: %v", err)
	}
	done := waitJob(t, s, job.ID)
	if done.Status != JobDone {
		t.Fatalf("stalled-worker job status = %s (err %q), want done via fallback", done.Status, done.Error)
	}
	if done.Distributed {
		t.Fatal("fallback job reported Distributed")
	}
	if !strings.Contains(done.FleetFallback, "after 2 attempt(s)") ||
		!strings.Contains(done.FleetFallback, "worker 1") {
		t.Fatalf("fallback reason = %q, want attempts + failing worker", done.FleetFallback)
	}
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", done.Attempts)
	}
	if len(done.RuleKeys) == 0 || !done.Installed {
		t.Fatalf("fallback result not served: rules=%d installed=%v", len(done.RuleKeys), done.Installed)
	}
	if got := s.nFleetFall.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	bs, ok := s.BreakerStats()
	if !ok {
		t.Fatal("no breaker on a fleet-configured server")
	}
	if bs.ConsecutiveFailures != 1 || bs.State != BreakerClosed {
		t.Fatalf("breaker after one failed job = %+v, want 1 consecutive failure, closed", bs)
	}
}

// TestMineJobFleetBreakerTripsAndSkips drives the breaker through its whole
// cycle: threshold consecutive fleet failures trip it open, open jobs skip
// the fleet entirely (no dial latency, fallback recorded as breaker-open),
// and after the cooldown a half-open probe against a healed fleet closes it
// again.
func TestMineJobFleetBreakerTripsAndSkips(t *testing.T) {
	healthy := startFleet(t, 2)
	stalled := []string{healthy[0], startStalledWorker(t)}

	s, _, _ := newTestServer(t, Config{
		Workers:               2,
		MineWorkers:           stalled,
		MineStepTimeout:       200 * time.Millisecond,
		MineRetries:           1,
		MineRetryBackoff:      time.Millisecond,
		FleetBreakerThreshold: 2,
		FleetBreakerCooldown:  time.Hour, // only the test clock moves it
	})
	p := mineFixtureParams()
	p.Workers = 0
	run := func() Job {
		t.Helper()
		job, err := s.StartMine(p)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		done := waitJob(t, s, job.ID)
		if done.Status != JobDone {
			t.Fatalf("job status = %s: %s", done.Status, done.Error)
		}
		return done
	}

	// Two failed fleet jobs trip the breaker.
	for i := 0; i < 2; i++ {
		if done := run(); !strings.Contains(done.FleetFallback, "attempt") {
			t.Fatalf("job %d fallback = %q, want fleet failure", i, done.FleetFallback)
		}
	}
	bs, _ := s.BreakerStats()
	if bs.State != BreakerOpen || bs.Trips != 1 {
		t.Fatalf("breaker after threshold failures = %+v, want open with 1 trip", bs)
	}

	// While open, jobs skip the fleet without dialing.
	if done := run(); done.Attempts != 0 || !strings.Contains(done.FleetFallback, "circuit breaker open") {
		t.Fatalf("open-breaker job: attempts=%d fallback=%q", done.Attempts, done.FleetFallback)
	}
	if bs, _ = s.BreakerStats(); bs.Skips != 1 {
		t.Fatalf("skips = %d, want 1", bs.Skips)
	}

	// Heal the fleet, expire the cooldown, and let the half-open probe close
	// the breaker.
	s.cfg.MineWorkers = healthy
	s.breaker.mu.Lock()
	s.breaker.openedAt = s.breaker.openedAt.Add(-2 * time.Hour)
	s.breaker.mu.Unlock()
	done := run()
	if !done.Distributed || done.FleetFallback != "" {
		t.Fatalf("probe job: distributed=%v fallback=%q", done.Distributed, done.FleetFallback)
	}
	if bs, _ = s.BreakerStats(); bs.State != BreakerClosed || bs.ConsecutiveFailures != 0 {
		t.Fatalf("breaker after probe success = %+v, want closed", bs)
	}
}
