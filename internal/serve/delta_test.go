package serve

import (
	"net/http"
	"reflect"
	"testing"
	"time"
)

// deltaJSON posts a delta batch and returns the status code plus response.
func deltaJSON(t *testing.T, url, body string) (int, DeltaResponse) {
	t.Helper()
	var dr DeltaResponse
	code := doJSON(t, "POST", url+"/v1/graph/delta", []byte(body), &dr)
	return code, dr
}

// identify runs a whole-Σ identify and returns the response.
func identify(t *testing.T, url string) IdentifyResponse {
	t.Helper()
	var idr IdentifyResponse
	if code := doJSON(t, "POST", url+"/v1/identify", []byte(`{}`), &idr); code != 200 {
		t.Fatalf("identify: %d", code)
	}
	return idr
}

func TestDeltaEndpointSemantics(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2})

	var st0 StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st0)

	// Fixture node IDs: cust 0-7, bistro 8, diner 9, bar 10; new nodes are
	// assigned densely, so the two addNode ops below become 11 and 12.
	code, dr := deltaJSON(t, ts.URL, `{"ops":[
		{"op":"addNode","label":"island"},
		{"op":"addNode","label":"island"},
		{"op":"addEdge","from":11,"to":12,"label":"bridge"}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("delta: %d", code)
	}
	if dr.Generation != 2 || dr.Ops != 3 || dr.OverlayOps != 3 {
		t.Fatalf("delta response: %+v", dr)
	}
	if dr.Nodes != st0.Graph.Nodes+2 || dr.Edges != st0.Graph.Edges+1 {
		t.Fatalf("delta totals: %+v (base %+v)", dr, st0.Graph)
	}
	if dr.TouchedNodes != 2 || dr.Compacting {
		t.Fatalf("delta maintenance fields: %+v", dr)
	}
	if idr := identify(t, ts.URL); idr.Generation != 2 {
		t.Fatalf("identify generation %d after delta, want 2", idr.Generation)
	}

	// Malformed requests answer 400 without touching the graph.
	for _, bad := range []string{
		`{nope`,
		`{}`,
		`{"ops":[]}`,
		`{"ops":[{"op":"explode"}]}`,
		`{"ops":[{"op":"addNode"}]}`,
		`{"ops":[{"op":"addEdge","from":0,"to":5}]}`,
		`{"ops":[{"op":"setLabel","node":3}]}`,
	} {
		if code, _ := deltaJSON(t, ts.URL, bad); code != http.StatusBadRequest {
			t.Errorf("delta %s: %d, want 400", bad, code)
		}
	}

	// Well-formed batches the graph refuses answer 409 and apply not at all:
	// a batch whose last op fails leaves no trace of its earlier ops.
	for _, conflict := range []string{
		`{"ops":[{"op":"addEdge","from":0,"to":1,"label":"friend"}]}`,
		`{"ops":[{"op":"delEdge","from":0,"to":5,"label":"friend"}]}`,
		`{"ops":[{"op":"delEdge","from":0,"to":1,"label":"unheard-of"}]}`,
		`{"ops":[{"op":"addEdge","from":99,"to":0,"label":"friend"}]}`,
		`{"ops":[{"op":"setLabel","node":99,"label":"cust"}]}`,
		`{"ops":[{"op":"addNode","label":"cust"},{"op":"delEdge","from":0,"to":5,"label":"friend"}]}`,
	} {
		if code, _ := deltaJSON(t, ts.URL, conflict); code != http.StatusConflict {
			t.Errorf("delta %s: %d, want 409", conflict, code)
		}
	}

	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Generation != 2 {
		t.Errorf("generation %d after rejected batches, want 2", st.Generation)
	}
	if st.Graph.Nodes != st0.Graph.Nodes+2 || st.Graph.Edges != st0.Graph.Edges+1 {
		t.Errorf("rejected batches changed the graph: %+v", st.Graph)
	}
	if st.Delta.Batches != 1 || st.Delta.Ops != 3 || st.Delta.Rejected != 13 {
		t.Errorf("delta counters: %+v", st.Delta)
	}
	if !st.Delta.Overlaid || st.Delta.OverlayOps != 3 {
		t.Errorf("overlay state: %+v", st.Delta)
	}
}

// TestDeltaSelectiveInvalidation pins the carry invariant end to end: a
// mutation farther than every rule's radius from any candidate keeps all
// cache entries (hit counters prove it), a mutation within the LCWA
// classification radius drops everything, and one between the two radii
// evicts exactly the rules whose neighborhoods can reach it.
func TestDeltaSelectiveInvalidation(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})
	snap := s.Snapshot()
	if snap.Rules[0].Radius != 2 || snap.Rules[1].Radius != 1 {
		t.Fatalf("fixture radii (%d, %d), want (2, 1)", snap.Rules[0].Radius, snap.Rules[1].Radius)
	}

	base := identify(t, ts.URL) // fills the cache
	warm := identify(t, ts.URL)
	for i := range warm.Rules {
		if !warm.Rules[i].Cached {
			t.Fatalf("rule %d not cached on repeat identify", i)
		}
	}

	// An island disconnected from every candidate: impact -1, both entries
	// carried. The repeat identify hits the carried entries — hits rise by
	// exactly the rule count, misses not at all.
	before := s.cache.Stats()
	code, dr := deltaJSON(t, ts.URL, `{"ops":[
		{"op":"addNode","label":"island"},
		{"op":"addNode","label":"island"}]}`)
	if code != http.StatusAccepted || dr.RulesCarried != 2 || dr.RulesInvalidated != 0 {
		t.Fatalf("island delta: %d %+v", code, dr)
	}
	carried := identify(t, ts.URL)
	for i := range carried.Rules {
		if !carried.Rules[i].Cached {
			t.Errorf("rule %d lost its cache entry across an island delta", i)
		}
	}
	if carried.Generation != 2 || !reflect.DeepEqual(carried.Identified, base.Identified) {
		t.Errorf("carried answer drifted: %+v vs %+v", carried.Identified, base.Identified)
	}
	after := s.cache.Stats()
	if after.Hits != before.Hits+2 || after.Misses != before.Misses {
		t.Errorf("carry changed counters: before %+v after %+v", before, after)
	}

	// Bridging the island to the bar puts a touched node at distance 1 from
	// a cust candidate: the classification radius. Everything is dropped.
	code, dr = deltaJSON(t, ts.URL, `{"ops":[{"op":"addEdge","from":10,"to":11,"label":"bridge"}]}`)
	if code != http.StatusAccepted || dr.RulesCarried != 0 || dr.RulesInvalidated != 2 {
		t.Fatalf("bridge delta: %d %+v", code, dr)
	}
	cold := identify(t, ts.URL)
	for i := range cold.Rules {
		if cold.Rules[i].Cached {
			t.Errorf("rule %d cached after a radius-1 mutation", i)
		}
	}
	identify(t, ts.URL) // refill

	// Extending the island chain one hop out: the touched nodes are now at
	// distances 2 (node 11, via the bar) and 3 (node 12) from the nearest
	// candidate. Impact 2 reaches R1 (radius 2) but not R2 (radius 1).
	code, dr = deltaJSON(t, ts.URL, `{"ops":[{"op":"addEdge","from":11,"to":12,"label":"bridge"}]}`)
	if code != http.StatusAccepted || dr.RulesCarried != 1 || dr.RulesInvalidated != 1 {
		t.Fatalf("chain delta: %d %+v", code, dr)
	}
	split := identify(t, ts.URL)
	if split.Rules[0].Cached {
		t.Errorf("R1 (radius 2) kept its entry through an impact-2 mutation")
	}
	if !split.Rules[1].Cached {
		t.Errorf("R2 (radius 1) lost its entry to an impact-2 mutation")
	}
	if !reflect.DeepEqual(split.Identified, base.Identified) {
		t.Errorf("island chain changed the answer: %+v vs %+v", split.Identified, base.Identified)
	}

	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Delta.RulesCarried != 3 || st.Delta.RulesInvalidated != 3 {
		t.Errorf("cumulative carry counters: %+v", st.Delta)
	}
}

func TestDeltaCompaction(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2, CompactThreshold: 3})

	base := identify(t, ts.URL)
	identify(t, ts.URL) // cache is warm

	code, dr := deltaJSON(t, ts.URL, `{"ops":[
		{"op":"addNode","label":"island"},
		{"op":"addNode","label":"island"}]}`)
	if code != http.StatusAccepted || dr.Compacting {
		t.Fatalf("first delta: %d %+v", code, dr)
	}
	if dr.RulesCarried != 2 {
		t.Fatalf("island delta carried %d, want 2", dr.RulesCarried)
	}
	code, dr = deltaJSON(t, ts.URL, `{"ops":[{"op":"addEdge","from":11,"to":12,"label":"bridge"}]}`)
	if code != http.StatusAccepted || !dr.Compacting {
		t.Fatalf("threshold delta did not trigger compaction: %d %+v", code, dr)
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().G.Overlaid() {
		if time.Now().After(deadline) {
			t.Fatal("compaction never swapped a frozen graph in")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if gen := s.Generation(); gen != 4 {
		t.Errorf("generation %d after two deltas + compaction, want 4", gen)
	}

	// The logical graph is unchanged: the cache survives the compaction
	// swap and the answer is byte-for-byte the pre-delta one.
	post := identify(t, ts.URL)
	for i := range post.Rules {
		if !post.Rules[i].Cached {
			t.Errorf("rule %d lost its cache entry across compaction", i)
		}
	}
	if !reflect.DeepEqual(post.Identified, base.Identified) {
		t.Errorf("compaction changed the answer: %+v vs %+v", post.Identified, base.Identified)
	}

	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Delta.Compactions != 1 || st.Delta.Overlaid || st.Delta.OverlayOps != 0 {
		t.Errorf("post-compaction stats: %+v", st.Delta)
	}

	// Compacting a graph with no overlay is a no-op.
	if gen, did, err := s.Compact(); err != nil || did || gen != 4 {
		t.Errorf("no-op compact: gen %d did %v err %v", gen, did, err)
	}
}

// TestDeltaWarmMineCarry pins the mine-result half of incremental
// maintenance: a completed job's Σ survives mutations outside its reach and
// answers an identical job on the new generation without mining, while a
// mutation inside the reach drops it.
func TestDeltaWarmMineCarry(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})

	waitJob := func(id string) Job {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			var j Job
			doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil, &j)
			if terminal(j.Status) {
				return j
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, j.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	params := MineParams{
		XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
		K: 2, Sigma: 1, D: 2, MaxEdges: 1, Cap: 10,
	}
	start := func() Job {
		t.Helper()
		job, err := s.StartMine(params)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		return waitJob(job.ID)
	}

	j1 := start()
	if j1.Status != JobDone || j1.WarmStarted || j1.ServedGeneration != 1 {
		t.Fatalf("first job: %+v", j1)
	}

	// Island-only batch: beyond the warm reach max(D, MaxEdges)+1 = 3, the
	// result is carried to generation 2.
	code, dr := deltaJSON(t, ts.URL, `{"ops":[
		{"op":"addNode","label":"island"},
		{"op":"addNode","label":"island"},
		{"op":"addEdge","from":11,"to":12,"label":"bridge"}]}`)
	if code != http.StatusAccepted || dr.WarmMineCarried != 1 {
		t.Fatalf("island delta: %d %+v", code, dr)
	}

	j2 := start()
	if j2.Status != JobDone || !j2.WarmStarted || j2.ServedGeneration != 2 {
		t.Fatalf("carried job: %+v", j2)
	}
	if !reflect.DeepEqual(j2.RuleKeys, j1.RuleKeys) || j2.F != j1.F ||
		j2.Rounds != j1.Rounds || j2.Generated != j1.Generated || j2.Kept != j1.Kept {
		t.Errorf("warm-started job drifted from the original:\n%+v\n%+v", j1, j2)
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Delta.WarmMineHits != 1 {
		t.Errorf("warm mine hits %d, want 1", st.Delta.WarmMineHits)
	}

	// A mutation touching a candidate (cust 7 gains a visit edge) lands at
	// impact 0: the carried result is dropped and the next job re-mines.
	code, dr = deltaJSON(t, ts.URL, `{"ops":[{"op":"addEdge","from":7,"to":9,"label":"visit"}]}`)
	if code != http.StatusAccepted || dr.WarmMineCarried != 0 {
		t.Fatalf("near delta: %d %+v", code, dr)
	}
	j3 := start()
	if j3.Status != JobDone || j3.WarmStarted || j3.ServedGeneration != 3 {
		t.Fatalf("post-invalidation job: %+v", j3)
	}
}
