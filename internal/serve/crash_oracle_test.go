// The crash-recovery differential oracle: a server persisting through a
// fault-injecting filesystem, killed at every WAL write with varying torn
// tails — and with random bit flips in the durable log — must recover to a
// state whose identify responses are byte-identical to a never-crashed
// server holding exactly the acknowledged batches, and whose graph mines
// the same Σ. Acknowledged batches are never lost (SyncAlways), unacked or
// mangled tails are truncated with the evidence quarantined — no silent
// loss, no partially applied generation, and restart needs no re-ingest.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gpar/internal/core"
	"gpar/internal/diskfault"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

func TestCrashRecoveryOracle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("%d-workers", n), func(t *testing.T) {
			t.Parallel()
			syms := graph.NewSymbols()
			g := gen.Pokec(syms, gen.DefaultPokec(120, 1))
			var pred core.Predicate
			for _, p := range gen.PokecPredicates(syms) {
				if len(core.Pq(g, p)) > 0 {
					pred = p
					break
				}
			}
			if pred.XLabel == graph.NoLabel {
				t.Fatal("no supported predicate in generated graph")
			}
			rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 3, VP: 3, EP: 3, Seed: 1})
			if len(rules) == 0 {
				t.Fatal("no rules generated")
			}

			// The op vocabulary, read back from the base graph.
			nodeSet, edgeSet := map[string]bool{}, map[string]bool{}
			for v := 0; v < g.NumNodes(); v++ {
				nodeSet[g.LabelName(graph.NodeID(v))] = true
				for _, e := range g.Out(graph.NodeID(v)) {
					edgeSet[syms.Name(e.Label)] = true
				}
			}
			var nodeNames, edgeNames []string
			for name := range nodeSet {
				nodeNames = append(nodeNames, name)
			}
			for name := range edgeSet {
				edgeNames = append(edgeNames, name)
			}

			// One deterministic batch sequence, with the logical graph after
			// every prefix pinned up front.
			const B = 5
			rng := rand.New(rand.NewSource(int64(11 * n)))
			model := newWireModel(g)
			batches := make([][]DeltaOpSpec, B)
			prefixes := make([]*graph.Graph, B+1)
			prefixes[0] = model.rebuild()
			for i := range batches {
				batches[i] = model.randBatch(rng, nodeNames, edgeNames)
				prefixes[i+1] = model.rebuild()
			}

			// refBytes(k) is the identify answer of a never-crashed server
			// holding exactly the first k batches.
			refCache := map[int][]byte{}
			refBytes := func(k int) []byte {
				t.Helper()
				if b, ok := refCache[k]; ok {
					return b
				}
				ref := New(Config{Workers: n})
				if err := ref.LoadSnapshot(prefixes[k], pred, rules); err != nil {
					t.Fatalf("reference LoadSnapshot(%d): %v", k, err)
				}
				b := identifyBytes(t, ref.Handler())
				refCache[k] = b
				return b
			}

			// drive runs a fresh persisted server through the sequence until
			// the filesystem kills it (or to the end), hard-crashes, reboots,
			// recovers, and returns the recovered server + report + how many
			// batches were acknowledged.
			drive := func(fault *diskfault.Fault, corrupt func(m *diskfault.MemFS)) (*Server, *RecoveryReport, int) {
				t.Helper()
				m := diskfault.NewMemFS()
				live := New(Config{Workers: n})
				if err := live.EnablePersistence(PersistOptions{Dir: "d", FS: m}); err != nil {
					t.Fatal(err)
				}
				if err := live.LoadSnapshot(g, pred, rules); err != nil {
					t.Fatal(err)
				}
				if fault != nil {
					m.Inject(*fault)
				}
				acked := 0
				for _, batch := range batches {
					if _, err := live.ApplyDelta(DeltaRequest{Ops: batch}); err != nil {
						if !errors.Is(err, diskfault.ErrCrashed) && !errors.Is(err, diskfault.ErrInjected) {
							t.Fatalf("ApplyDelta died unexpectedly: %v", err)
						}
						break
					}
					acked++
				}
				if !m.Crashed() {
					m.Crash() // the process dies with no warning either way
				}
				m.Reboot()
				if corrupt != nil {
					corrupt(m)
				}
				rec := New(Config{Workers: n})
				if err := rec.EnablePersistence(PersistOptions{Dir: "d", FS: m}); err != nil {
					t.Fatal(err)
				}
				rep, err := rec.Recover()
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				return rec, rep, acked
			}

			// check: the recovered server serves exactly the first k batches.
			check := func(label string, rec *Server, rep *RecoveryReport, k int) {
				t.Helper()
				if !rep.Recovered {
					t.Fatalf("%s: not recovered: %+v", label, rep)
				}
				if rec.Generation() != uint64(1+k) {
					t.Fatalf("%s: generation %d, want %d", label, rec.Generation(), 1+k)
				}
				if got := identifyBytes(t, rec.Handler()); !bytes.Equal(got, refBytes(k)) {
					t.Fatalf("%s: identify diverged from never-crashed server at %d batches", label, k)
				}
			}

			// Kill at every WAL append, with the surviving tail clean, torn
			// mid-frame-header, and torn mid-payload.
			variants := []struct {
				name             string
				short, keep      int
				expectQuarantine bool
			}{
				{"clean-tail", -1, 0, false},
				{"torn-header", 5, 5, true},
				{"torn-payload", 0, 30, true},
			}
			for kill := 0; kill < B; kill++ {
				for _, v := range variants {
					label := fmt.Sprintf("kill@%d/%s", kill, v.name)
					// The fault arms after the load checkpoint (header already
					// written), so Countdown skips exactly the appends of the
					// batches that should be acknowledged.
					rec, rep, acked := drive(&diskfault.Fault{
						Op: diskfault.OpWrite, Path: "wal-", Countdown: kill,
						ShortWrite: v.short, KeepTail: v.keep, Kill: true,
					}, nil)
					if acked != kill {
						t.Fatalf("%s: %d batches acked, want %d", label, acked, kill)
					}
					check(label, rec, rep, kill)
					if v.expectQuarantine && (rep.Truncated < 1 || len(rep.Quarantined) == 0) {
						t.Fatalf("%s: torn tail not surfaced: %+v", label, rep)
					}
					if !v.expectQuarantine && (rep.Truncated != 0 || len(rep.Quarantined) != 0) {
						t.Fatalf("%s: clean tail misreported: %+v", label, rep)
					}
				}
			}

			// The full sequence survives a crash with zero loss, and the
			// recovered graph mines the same Σ as the reference graph.
			rec, rep, acked := drive(nil, nil)
			if acked != B {
				t.Fatalf("full run: %d acked", acked)
			}
			check("full-run", rec, rep, B)
			opts := mine.Options{
				K: 3, Sigma: 1, D: 2, MaxEdges: 2, N: n, MaxCandidatesPerRound: 20,
			}.WithOptimizations()
			snap := rec.Snapshot()
			recSigma := sigmaOf(mine.DMine(snap.G, snap.Pred, opts))
			refSigma := sigmaOf(mine.DMine(prefixes[B], pred, opts))
			if !reflect.DeepEqual(recSigma, refSigma) {
				t.Fatalf("Σ diverged after recovery\nrec: %+v\nref: %+v", recSigma, refSigma)
			}

			// Bit flips in the durable log: recovery serves whatever prefix
			// the checksums accept and quarantines the rest — never panics,
			// never serves a mangled generation.
			walName := "wal-0000000000000001.wal"
			for trial := 0; trial < 3; trial++ {
				var off int64
				rec, rep, _ := drive(nil, func(m *diskfault.MemFS) {
					size := m.DurableLen(filepath.Join("d", walName))
					if size <= walHeaderLen {
						t.Fatalf("wal too small to corrupt: %d", size)
					}
					off = walHeaderLen + rng.Int63n(size-walHeaderLen)
					if !m.CorruptDurable(filepath.Join("d", walName), off) {
						t.Fatal("corrupt failed")
					}
				})
				label := fmt.Sprintf("bitflip@%d", off)
				if rep.Replayed > B {
					t.Fatalf("%s: replayed %d of %d batches", label, rep.Replayed, B)
				}
				check(label, rec, rep, rep.Replayed)
				if rep.Replayed < B {
					if rep.Truncated < 1 || len(rep.Quarantined) == 0 {
						t.Fatalf("%s: corruption not surfaced: %+v", label, rep)
					}
					for _, q := range rep.Quarantined {
						if !strings.HasSuffix(q, ".corrupt") && !strings.Contains(q, ".corrupt.") {
							t.Fatalf("%s: bad quarantine name %q", label, q)
						}
					}
				}
			}
		})
	}
}
