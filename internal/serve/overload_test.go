package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// rawDo issues one request and returns the response with its body drained,
// for tests that need status and headers rather than decoded JSON.
func rawDo(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func TestAdmitterQueueAndShed(t *testing.T) {
	a := newAdmitter(1, 1, 200*time.Millisecond)

	release, err := a.admit(context.Background())
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if a.inUse() != 1 {
		t.Fatalf("inUse = %d, want 1", a.inUse())
	}

	// Fill the one queue slot with a waiter, then the next arrival must be
	// shed instantly with queue-full.
	queued := make(chan error, 1)
	go func() {
		r, err := a.admit(context.Background())
		if err == nil {
			r()
		}
		queued <- err
	}()
	waitFor(t, time.Second, func() bool { return a.depth() == 1 })
	if _, err := a.admit(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("admit with full queue: %v, want errQueueFull", err)
	}

	// Releasing the running slot hands it to the waiter.
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}

	// A waiter whose budget expires is shed with queue-timeout.
	release, err = a.admit(context.Background())
	if err != nil {
		t.Fatalf("re-admit: %v", err)
	}
	if _, err := a.admit(context.Background()); !errors.Is(err, errQueueTimeout) {
		t.Fatalf("admit past the queue budget: %v, want errQueueTimeout", err)
	}

	// A caller whose own context dies while queued gets that context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.admit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit with dead context: %v, want context.Canceled", err)
	}
	release()
	if a.inUse() != 0 || a.depth() != 0 {
		t.Fatalf("admitter not drained: inUse=%d depth=%d", a.inUse(), a.depth())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIdentifySheddingUnderSaturation pins the HTTP half of the overload
// front door: with the single evaluation slot held, a request that waits out
// the queue budget and a request that finds the queue full both answer 429
// with a Retry-After, the counters tell the two apart, and service resumes
// as soon as the slot frees.
func TestIdentifySheddingUnderSaturation(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		Workers: 2, PoolSize: 1, MaxQueue: 1, QueueTimeout: 150 * time.Millisecond,
	})

	release, err := s.admit.admit(context.Background())
	if err != nil {
		t.Fatalf("saturating the admission slot: %v", err)
	}

	// One client queues (it will eventually shed on the queue budget)...
	timedOut := make(chan *http.Response, 1)
	go func() { timedOut <- rawDo(t, "POST", ts.URL+"/v1/identify", []byte(`{}`)) }()
	waitFor(t, 2*time.Second, func() bool { return s.admit.depth() == 1 })

	// ...so the next arrival finds the queue full and sheds instantly.
	start := time.Now()
	resp := rawDo(t, "POST", ts.URL+"/v1/identify", []byte(`{}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full request: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("queue-full 429 carries no Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("queue-full shed took %v, want instant", elapsed)
	}

	resp = <-timedOut
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout request: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("queue-timeout 429 carries no Retry-After")
	}

	// Capacity frees up: the same request is served again.
	release()
	if resp := rawDo(t, "POST", ts.URL+"/v1/identify", []byte(`{}`)); resp.StatusCode != http.StatusOK {
		t.Fatalf("identify after release: %d, want 200", resp.StatusCode)
	}

	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Admission == nil {
		t.Fatal("stats missing admission block")
	}
	if st.Admission.ShedFull < 1 || st.Admission.ShedTimeout < 1 {
		t.Errorf("shed counters full=%d timeout=%d, want both >= 1",
			st.Admission.ShedFull, st.Admission.ShedTimeout)
	}
	if st.Admission.RunningCap != 1 || st.Admission.MaxQueue != 1 {
		t.Errorf("admission config on stats: %+v", st.Admission)
	}
}

// TestIdentifyDeadlineWhileQueued: a request whose server-side deadline
// expires before a slot frees answers 503 (not 429 — the server was not
// refusing it, it just could not serve it in time) and counts as a deadline.
func TestIdentifyDeadlineWhileQueued(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		Workers: 2, PoolSize: 1, MaxQueue: 4,
		QueueTimeout: 5 * time.Second, RequestTimeout: 60 * time.Millisecond,
	})
	release, err := s.admit.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp := rawDo(t, "POST", ts.URL+"/v1/identify", []byte(`{}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-while-queued: %d, want 503", resp.StatusCode)
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Lifecycle.Deadlines < 1 {
		t.Errorf("deadlines = %d, want >= 1", st.Lifecycle.Deadlines)
	}
}

// TestIdentifyClientGoneWhileQueued: a client that hangs up while queued is
// counted and charged nothing else — no 429, no deadline.
func TestIdentifyClientGoneWhileQueued(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		Workers: 2, PoolSize: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second,
	})
	release, err := s.admit.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/identify", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool { return s.admit.depth() == 1 })
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled client request unexpectedly succeeded")
	}
	waitFor(t, 2*time.Second, func() bool { return s.nClientGone.Load() >= 1 })
}

// TestMemWatermarkDegrade drives the heap watermark ladder with a fake
// sampler: soft rejects new mine jobs with 503 + Retry-After, hard
// additionally shrinks the match-set cache while still answering the
// identify that observed it, and dropping back below the watermark restores
// mine admission.
func TestMemWatermarkDegrade(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2, MemLimitBytes: 1 << 30})
	setHeap := func(h uint64) {
		s.mem.mu.Lock()
		s.mem.sample = func() uint64 { return h }
		s.mem.lastAt = time.Time{} // next read re-samples
		s.mem.mu.Unlock()
	}

	mineBody := []byte(`{"xLabel":"cust","edgeLabel":"visit","yLabel":"restaurant",
		"k":2,"sigma":1,"maxEdges":1,"cap":10}`)

	// Soft (≥ 90%): mine jobs are the deferrable workload, so they shed first.
	setHeap(1<<30 - 1<<26) // 960 MiB of a 1 GiB limit ≈ 94%
	resp := rawDo(t, "POST", ts.URL+"/v1/mine", mineBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mine at soft watermark: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("memory-pressure 503 carries no Retry-After")
	}
	// Identify is never memory-shed: its footprint is bounded by the pool.
	if resp := rawDo(t, "POST", ts.URL+"/v1/identify", []byte(`{}`)); resp.StatusCode != http.StatusOK {
		t.Fatalf("identify at soft watermark: %d, want 200", resp.StatusCode)
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Mem == nil || st.Mem.Level != "soft" || st.Mem.MineRejects < 1 {
		t.Fatalf("stats at soft watermark: %+v", st.Mem)
	}

	// Hard (≥ limit): the identify that observes it sheds cache memory but
	// still gets its answer.
	setHeap(1 << 30)
	if resp := rawDo(t, "POST", ts.URL+"/v1/identify", []byte(`{}`)); resp.StatusCode != http.StatusOK {
		t.Fatalf("identify at hard watermark: %d, want 200", resp.StatusCode)
	}
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Mem == nil || st.Mem.Level != "hard" || st.Mem.CacheShrinks < 1 {
		t.Fatalf("stats at hard watermark: %+v", st.Mem)
	}

	// Back under the watermark, mine jobs are admitted again.
	setHeap(1 << 20)
	var job Job
	if code := doJSON(t, "POST", ts.URL+"/v1/mine", mineBody, &job); code != http.StatusAccepted {
		t.Fatalf("mine below watermark: %d, want 202", code)
	}
	waitFor(t, 10*time.Second, func() bool {
		j, ok := s.jobs.Get(job.ID)
		return ok && terminal(j.Status)
	})
}

// TestCacheShrinkKeepsHotHalf pins the degrade primitive itself: Shrink
// evicts the cold (LRU) half and keeps the hot half resident.
func TestCacheShrinkKeepsHotHalf(t *testing.T) {
	c := NewCache(16)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), &RuleEval{})
	}
	// Touch the upper half so it is the hot end.
	for i := 4; i < 8; i++ {
		c.Get(fmt.Sprintf("k%d", i))
	}
	if evicted := c.Shrink(); evicted != 4 {
		t.Fatalf("Shrink evicted %d, want 4", evicted)
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("cold entry k%d survived the shrink", i)
		}
	}
	for i := 4; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("hot entry k%d was evicted", i)
		}
	}
}

// TestPanicRecoveryMiddleware: a panicking handler answers 500 with an
// X-Request-ID instead of resetting the connection, the panic is counted,
// and ordinary responses carry request IDs too.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})

	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d, want 500", rec.Code)
	}
	reqID := rec.Header().Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("panic response carries no X-Request-ID")
	}
	if body := rec.Body.String(); !strings.Contains(body, reqID) || !strings.Contains(body, "boom") {
		t.Errorf("panic body %q does not name the request ID and the panic", body)
	}

	if resp := rawDo(t, "GET", ts.URL+"/healthz", nil); resp.Header.Get("X-Request-ID") == "" {
		t.Error("ordinary response carries no X-Request-ID")
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Lifecycle.Panics != 1 {
		t.Errorf("panics = %d, want 1", st.Lifecycle.Panics)
	}
}
