package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDeltaHandler throws arbitrary bytes at POST /v1/graph/delta. Whatever
// arrives, the handler must answer 202, 400 or 409 — never panic, never
// leave the server unable to identify — and only a 202 may move the
// generation.
func FuzzDeltaHandler(f *testing.F) {
	f.Add([]byte(`{"ops":[{"op":"addNode","label":"island"}]}`))
	f.Add([]byte(`{"ops":[{"op":"addNode","label":"x"},{"op":"addEdge","from":11,"to":0,"label":"friend"}]}`))
	f.Add([]byte(`{"ops":[{"op":"addEdge","from":0,"to":1,"label":"friend"}]}`))
	f.Add([]byte(`{"ops":[{"op":"delEdge","from":0,"to":1,"label":"friend"}]}`))
	f.Add([]byte(`{"ops":[{"op":"setLabel","node":-1,"label":"cust"}]}`))
	f.Add([]byte(`{"ops":[{"op":"addEdge","from":2147483647,"to":-2,"label":""}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`{nope`))

	f.Fuzz(func(t *testing.T, body []byte) {
		g, pred, rules := fixture(t)
		s := New(Config{Workers: 2})
		if err := s.LoadSnapshot(g, pred, rules); err != nil {
			t.Fatalf("LoadSnapshot: %v", err)
		}
		h := s.Handler()

		req := httptest.NewRequest("POST", "/v1/graph/delta", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted:
			if s.Generation() != 2 {
				t.Fatalf("202 but generation %d", s.Generation())
			}
		case http.StatusBadRequest, http.StatusConflict:
			if s.Generation() != 1 {
				t.Fatalf("%d but generation %d", rec.Code, s.Generation())
			}
		default:
			t.Fatalf("delta status %d (%s) for body %q", rec.Code, rec.Body.Bytes(), body)
		}

		// The server must keep serving over whatever state the batch left.
		idReq := httptest.NewRequest("POST", "/v1/identify", strings.NewReader(`{}`))
		idRec := httptest.NewRecorder()
		h.ServeHTTP(idRec, idReq)
		if idRec.Code != 200 {
			t.Fatalf("identify after delta: %d (%s)", idRec.Code, idRec.Body.Bytes())
		}
	})
}
