package serve

import (
	"testing"

	"gpar/internal/graph"
)

// BenchmarkDeltaApply measures turning a frozen Pokec-scale graph into a
// served overlay: one 6-op batch per iteration (two fresh nodes, wiring,
// one relabel), each applied to the pristine base — the steady-state cost
// of a POST /v1/graph/delta minus snapshot derivation. Recorded in
// BENCH_match.json by `make bench` (reported, no gating baseline).
func BenchmarkDeltaApply(b *testing.B) {
	snap, _, _ := benchSnapshot(b)
	g := snap.G
	syms := g.Symbols()
	user := g.Label(0)
	var edge graph.Label
	for v := 0; v < g.NumNodes(); v++ {
		if out := g.Out(graph.NodeID(v)); len(out) > 0 {
			edge = out[0].Label
			break
		}
	}
	island := syms.Intern("bench-island")
	n := graph.NodeID(g.NumNodes())
	ops := []graph.DeltaOp{
		{Kind: graph.DeltaAddNode, Label: user},
		{Kind: graph.DeltaAddNode, Label: user},
		{Kind: graph.DeltaAddEdge, From: n, To: n + 1, Label: edge},
		{Kind: graph.DeltaAddEdge, From: n + 1, To: n, Label: edge},
		{Kind: graph.DeltaAddEdge, From: 0, To: n, Label: edge},
		{Kind: graph.DeltaSetLabel, Node: n + 1, Label: island},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ApplyDelta(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdentifyWithOverlay is BenchmarkIdentify's acceptance twin for
// live graphs: the same uncached EvalRule loop, but over a delta-derived
// snapshot whose overlay holds a small off-to-the-side mutation. Gated by
// benchguard against the frozen identify path's recorded baseline: serving
// through an overlay must stay within the budget the frozen path set.
func BenchmarkIdentifyWithOverlay(b *testing.B) {
	snap, _, pool := benchSnapshot(b)
	syms := snap.G.Symbols()
	n := graph.NodeID(snap.G.NumNodes())
	g2, err := snap.G.ApplyDelta([]graph.DeltaOp{
		{Kind: graph.DeltaAddNode, Label: syms.Intern("bench-island")},
		{Kind: graph.DeltaAddNode, Label: syms.Intern("bench-island")},
		{Kind: graph.DeltaAddEdge, From: n, To: n + 1, Label: syms.Intern("bench-bridge")},
	})
	if err != nil {
		b.Fatal(err)
	}
	delta := DeriveDeltaSnapshot(snap, g2, Config{Workers: 4})
	rules := delta.Rules
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta.EvalRule(rules[i%len(rules)], pool)
	}
}
