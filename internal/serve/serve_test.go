package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// fixture builds the quickstart-style restaurant graph with two rules for
// the predicate visit(cust, restaurant).
func fixture(t *testing.T) (*graph.Graph, core.Predicate, []*core.Rule) {
	t.Helper()
	syms := graph.NewSymbols()
	g := graph.New(syms)
	cust := make([]graph.NodeID, 8)
	for i := range cust {
		cust[i] = g.AddNode("cust")
	}
	bistro := g.AddNode("restaurant")
	diner := g.AddNode("restaurant")
	bar := g.AddNode("bar")

	friends := [][2]int{{0, 1}, {1, 0}, {2, 1}, {3, 2}, {4, 1}, {5, 4}, {6, 5}, {7, 0}}
	for _, e := range friends {
		g.AddEdge(cust[e[0]], cust[e[1]], "friend")
	}
	for _, i := range []int{0, 1, 2, 4} {
		g.AddEdge(cust[i], bistro, "visit")
	}
	g.AddEdge(cust[3], diner, "visit")
	g.AddEdge(cust[5], bar, "visit")

	pred := core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("restaurant"),
	}

	// R1: x -friend-> y1, y1 -visit-> restaurant  ⇒  visit(x, restaurant)
	q1 := pattern.New(syms)
	x := q1.AddNode("cust")
	q1.X = x
	f := q1.AddNode("cust")
	r := q1.AddNode("restaurant")
	q1.AddEdge(x, f, "friend")
	q1.AddEdge(f, r, "visit")
	r1 := &core.Rule{Q: q1, Pred: pred}

	// R2: x -friend-> y1  ⇒  visit(x, restaurant)
	q2 := pattern.New(syms)
	x2 := q2.AddNode("cust")
	q2.X = x2
	f2 := q2.AddNode("cust")
	q2.AddEdge(x2, f2, "friend")
	r2 := &core.Rule{Q: q2, Pred: pred}

	for i, r := range []*core.Rule{r1, r2} {
		if err := r.Validate(); err != nil {
			t.Fatalf("fixture rule %d: %v", i, err)
		}
	}
	return g, pred, []*core.Rule{r1, r2}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, []*core.Rule) {
	t.Helper()
	g, pred, rules := fixture(t)
	s := New(cfg)
	if err := s.LoadSnapshot(g, pred, rules); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, rules
}

func doJSON(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func TestEndpointsRoundTrip(t *testing.T) {
	s, ts, rules := newTestServer(t, Config{Workers: 2})

	var health map[string]any
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz status %v", health["status"])
	}

	var rl RulesResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/rules", nil, &rl); code != 200 {
		t.Fatalf("rules: %d", code)
	}
	if len(rl.Rules) != 2 || rl.Generation != 1 {
		t.Fatalf("rules response: %+v", rl)
	}
	for i, ri := range rl.Rules {
		if ri.Key != rules[i].Key() {
			t.Errorf("rule %d key %q, want %q", i, ri.Key, rules[i].Key())
		}
	}

	var idr IdentifyResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{"eta":1.0,"includeMatches":true}`), &idr); code != 200 {
		t.Fatalf("identify: %d", code)
	}
	if len(idr.Rules) != 2 || idr.Generation != 1 {
		t.Fatalf("identify response: %+v", idr)
	}

	// Oracle: the eip package's algorithm Match on the same inputs.
	g, _, oracleRules := fixture(t)
	want, err := eip.Match(g, oracleRules, eip.Options{N: 2, Eta: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idr.Identified, want.Identified) {
		t.Errorf("identified %v, want %v", idr.Identified, want.Identified)
	}
	for i, pr := range want.PerRule {
		if idr.Rules[i].SuppR != pr.Stats.SuppR || idr.Rules[i].Matches != len(pr.QSet) {
			t.Errorf("rule %d: suppR=%d matches=%d, want suppR=%d matches=%d",
				i, idr.Rules[i].SuppR, idr.Rules[i].Matches, pr.Stats.SuppR, len(pr.QSet))
		}
	}

	// Selecting by key and by index returns the same single-rule answer.
	byKey, byIx := IdentifyResponse{}, IdentifyResponse{}
	doJSON(t, "POST", ts.URL+"/v1/identify", []byte(fmt.Sprintf(`{"rules":[%q]}`, rules[0].Key())), &byKey)
	doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{"indices":[0]}`), &byIx)
	if !reflect.DeepEqual(byKey.Identified, byIx.Identified) || len(byKey.Rules) != 1 {
		t.Errorf("key/index selection mismatch: %+v vs %+v", byKey, byIx)
	}

	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{"rules":["nope"]}`), nil); code != 404 {
		t.Errorf("unknown key: %d, want 404", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{"indices":[9]}`), nil); code != 404 {
		t.Errorf("bad index: %d, want 404", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{bad json`), nil); code != 400 {
		t.Errorf("bad body: %d, want 400", code)
	}
	_ = s
}

func TestCacheHitAndSwapInvalidation(t *testing.T) {
	s, ts, rules := newTestServer(t, Config{Workers: 2})

	var first, second IdentifyResponse
	doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), &first)
	doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), &second)
	for i := range second.Rules {
		if first.Rules[i].Cached {
			t.Errorf("first call rule %d unexpectedly cached", i)
		}
		if !second.Rules[i].Cached {
			t.Errorf("second call rule %d not cached", i)
		}
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Cache.Hits < int64(len(rules)) {
		t.Errorf("cache hits %d, want >= %d", st.Cache.Hits, len(rules))
	}

	// Hot-swap the rule set to just rule 0 via the wire format round-trip.
	var buf bytes.Buffer
	if err := core.WriteRules(&buf, rules[:1]); err != nil {
		t.Fatal(err)
	}
	var swap map[string]any
	if code := doJSON(t, "PUT", ts.URL+"/v1/rules", buf.Bytes(), &swap); code != 200 {
		t.Fatalf("swap: %d (%v)", code, swap)
	}
	if gen := s.Generation(); gen != 2 {
		t.Fatalf("generation %d after swap, want 2", gen)
	}

	var third IdentifyResponse
	doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), &third)
	if len(third.Rules) != 1 {
		t.Fatalf("post-swap rule count %d, want 1", len(third.Rules))
	}
	if third.Rules[0].Cached {
		t.Errorf("post-swap identify served from a stale cache")
	}
	if third.Generation != 2 {
		t.Errorf("post-swap generation %d, want 2", third.Generation)
	}
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Cache.Purges == 0 {
		t.Errorf("swap did not purge the cache: %+v", st.Cache)
	}
}

func TestIdentifyCoalescesConcurrentDuplicates(t *testing.T) {
	// PoolSize is pinned: on a small machine the default pool (and with it
	// the admission cap) can be 1, which serializes the clients before the
	// batcher ever sees a concurrent duplicate.
	_, ts, _ := newTestServer(t, Config{Workers: 2, PoolSize: 8, BatchWindow: 40 * time.Millisecond})

	const clients = 32
	var wg sync.WaitGroup
	responses := make([]IdentifyResponse, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{"indices":[0]}`), &responses[i])
		}(i)
	}
	wg.Wait()

	for i := range responses {
		if codes[i] != 200 {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if !reflect.DeepEqual(responses[i].Identified, responses[0].Identified) {
			t.Fatalf("client %d got a different answer", i)
		}
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	// One rule requested 32 times concurrently within the batch window:
	// every request is accounted for, almost all coalesce onto the leader
	// (a straggler that misses the window cache-hits instead; a leader
	// whose inner re-check hits counts in both executions and hits, so
	// the sum can exceed the client count but never undershoot it).
	if st.Batch.Executions+st.Batch.Coalesced+st.Cache.Hits < clients {
		t.Errorf("executions %d + coalesced %d + hits %d < %d clients",
			st.Batch.Executions, st.Batch.Coalesced, st.Cache.Hits, clients)
	}
	if st.Batch.Coalesced == 0 {
		t.Errorf("no coalescing under %d concurrent identical requests: %+v", clients, st.Batch)
	}
	if st.Batch.Executions >= clients/2 {
		t.Errorf("executions %d, want far fewer than %d clients", st.Batch.Executions, clients)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	_, ts, rules := newTestServer(t, Config{Workers: 3})

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				var idr IdentifyResponse
				body := []byte(fmt.Sprintf(`{"indices":[%d],"eta":1.0}`, i%len(rules)))
				if code := doJSON(t, "POST", ts.URL+"/v1/identify", body, &idr); code != 200 {
					errs <- fmt.Errorf("identify: %d", code)
				}
				if code := doJSON(t, "GET", ts.URL+"/v1/rules", nil, &RulesResponse{}); code != 200 {
					errs <- fmt.Errorf("rules: %d", code)
				}
				if code := doJSON(t, "GET", ts.URL+"/stats", nil, &StatsResponse{}); code != 200 {
					errs <- fmt.Errorf("stats: %d", code)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMineJobAndInstall(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})

	var job Job
	body := []byte(`{"xLabel":"cust","edgeLabel":"visit","yLabel":"restaurant",
		"k":3,"sigma":1,"d":2,"maxEdges":1,"cap":20,"install":true}`)
	if code := doJSON(t, "POST", ts.URL+"/v1/mine", body, &job); code != http.StatusAccepted {
		t.Fatalf("mine: %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st Job
		doJSON(t, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &st)
		if st.Status == JobDone {
			if !st.Installed || st.Generation != 2 {
				t.Fatalf("job not installed: %+v", st)
			}
			break
		}
		if st.Status == JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation %d after install, want 2", s.Generation())
	}
	var rl RulesResponse
	doJSON(t, "GET", ts.URL+"/v1/rules", nil, &rl)
	if len(rl.Rules) == 0 {
		t.Fatal("no rules after installing a mine job")
	}

	// Unknown labels are rejected up front, without starting a job.
	if code := doJSON(t, "POST", ts.URL+"/v1/mine",
		[]byte(`{"xLabel":"cust","edgeLabel":"visit","yLabel":"starship"}`), nil); code != 400 {
		t.Errorf("unknown label: %d, want 400", code)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})

	// Start a job, then shut down: Shutdown must wait for it.
	if _, err := s.StartMine(MineParams{
		XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
		K: 2, Sigma: 1, MaxEdges: 1, Cap: 10,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, job := range s.jobs.List() {
		if job.Status == JobPending || job.Status == JobRunning {
			t.Errorf("job %s still %s after Shutdown", job.ID, job.Status)
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), nil); code != http.StatusServiceUnavailable {
		t.Errorf("identify after shutdown: %d, want 503", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: %d, want 503", code)
	}
}

func TestLoadSnapshotValidation(t *testing.T) {
	g, pred, rules := fixture(t)
	s := New(Config{})
	if err := s.LoadSnapshot(nil, pred, nil); err == nil {
		t.Error("nil graph accepted")
	}
	other := pred
	other.EdgeLabel = g.Symbols().Intern("dislike")
	if err := s.LoadSnapshot(g, other, rules); err == nil {
		t.Error("predicate mismatch accepted")
	}
	if _, err := s.SwapRules(rules); err == nil {
		t.Error("SwapRules before LoadSnapshot accepted")
	}
	if err := s.LoadSnapshot(g, pred, rules); err != nil {
		t.Fatalf("valid LoadSnapshot: %v", err)
	}
	// Empty rule set is allowed (serve-then-mine startup), identify 409s.
	if gen, err := s.SwapRules(nil); err != nil || gen != 2 {
		t.Fatalf("empty SwapRules: gen %d, err %v", gen, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), nil); code != http.StatusConflict {
		t.Errorf("identify with empty Σ: %d, want 409", code)
	}
}

func TestNonFiniteConfidenceMarshals(t *testing.T) {
	// A rule whose antecedent never contradicts the consequent has conf
	// +Inf (the logic-rule trivial case); the response must stay valid JSON.
	for want, v := range map[string]float64{
		`"+Inf"`: math.Inf(1),
		`"-Inf"`: math.Inf(-1),
		`"NaN"`:  math.NaN(),
		`1.5`:    1.5,
	} {
		data, err := json.Marshal(jsonFloat(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		if string(data) != want {
			t.Errorf("marshal %v = %s, want %s", v, data, want)
		}
	}
}
