package serve

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentEvalRuleRace hammers one snapshot with concurrent EvalRule
// calls across all rules — the steady-state shape of gpard under load: a
// shared frozen graph, shared fragment sketch indexes, pooled matchers, and
// the shared worker pool. Every evaluation must produce the same result as
// a quiet single-threaded one. Run with -race (wired into `make race` and
// CI).
func TestConcurrentEvalRuleRace(t *testing.T) {
	g, pred, rules := fixture(t)
	snap, err := BuildSnapshot(g, pred, rules, Config{Workers: 3})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	pool := NewPool(4)

	// Quiet reference evaluations.
	want := make([]*RuleEval, len(snap.Rules))
	for i, sr := range snap.Rules {
		want[i] = snap.EvalRule(sr, pool)
	}

	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ri := (w + i) % len(snap.Rules)
				got := snap.EvalRule(snap.Rules[ri], pool)
				if !reflect.DeepEqual(got.Matches, want[ri].Matches) || got.Stats != want[ri].Stats {
					errs <- "concurrent EvalRule diverged from quiet evaluation"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
