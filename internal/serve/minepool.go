package serve

import (
	"sync"

	"gpar/internal/mine"
)

// minePool recycles mine.Shared accumulators — worker sets with their round
// arenas, memoized extendability probes and interning tables — across the
// mine jobs of one server. A Shared is exclusive to one running job, so the
// pool hands each job its own; a job that finds a parked accumulator for
// its context skips rebuilding worker scratch entirely and mines on arenas
// already grown by previous jobs. Accumulators are parked per *mine.Context
// (they embed fragment bindings), so purging the context cache on a
// snapshot swap also purges the pool — a parked accumulator must never
// outlive its context's generation.
type minePool struct {
	mu   sync.Mutex
	free map[*mine.Context][]*mine.Shared
	// perCtx bounds how many accumulators may park per context; beyond it,
	// finished jobs simply drop theirs. Worker scratch scales with the
	// fragment set, so a small bound keeps the steady state without letting
	// a burst of concurrent jobs pin memory forever.
	perCtx int
	// epoch guards the purge/park race: a job records the epoch at acquire
	// and park drops the accumulator when a purge intervened, so a job that
	// outlives a snapshot swap can never re-insert a worker set whose
	// context (and graph) the swap just retired.
	epoch uint64

	gets   int64 // acquisitions handed out
	reuses int64 // acquisitions served by a parked accumulator
}

// newMinePool returns a pool keeping at most perCtx idle accumulators per
// context (minimum 1).
func newMinePool(perCtx int) *minePool {
	if perCtx < 1 {
		perCtx = 1
	}
	return &minePool{free: make(map[*mine.Context][]*mine.Shared), perCtx: perCtx}
}

// acquire returns an accumulator over ctx, recycling a parked one when
// available, plus the pool epoch to hand back to park.
func (p *minePool) acquire(ctx *mine.Context) (*mine.Shared, uint64) {
	p.mu.Lock()
	p.gets++
	epoch := p.epoch
	if list := p.free[ctx]; len(list) > 0 {
		sh := list[len(list)-1]
		p.free[ctx] = list[:len(list)-1]
		p.reuses++
		p.mu.Unlock()
		return sh, epoch
	}
	p.mu.Unlock()
	return mine.NewShared(ctx), epoch
}

// park returns an accumulator after a job, keeping at most perCtx per
// context. It refuses — dropping the accumulator to the GC instead — when
// a purge ran since the matching acquire (the context's generation is
// retired) or when live reports the context no longer resident (LRU
// eviction): a parked set pins its context's fragments, so only contexts
// that can still be handed out may hold parked sets.
func (p *minePool) park(sh *mine.Shared, epoch uint64, live bool) {
	if !live {
		return
	}
	ctx := sh.Context()
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch != p.epoch {
		return
	}
	if len(p.free[ctx]) < p.perCtx {
		p.free[ctx] = append(p.free[ctx], sh)
	}
}

// purge drops every parked accumulator (snapshot swap) and retires the
// epoch so in-flight jobs cannot park into the new generation.
func (p *minePool) purge() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	clear(p.free)
}

// MinePoolStats is the /stats view of the accumulator pool: how many worker
// sets (with their arenas) are parked, how many acquisitions jobs made, and
// how many of those reused a parked set instead of building fresh scratch.
type MinePoolStats struct {
	Parked int   `json:"parked"`
	Gets   int64 `json:"gets"`
	Reuses int64 `json:"reuses"`
}

// stats returns current counters.
func (p *minePool) stats() MinePoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return MinePoolStats{Parked: n, Gets: p.gets, Reuses: p.reuses}
}
