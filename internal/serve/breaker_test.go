package serve

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks the breaker through closed → open →
// half-open → closed on a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, 30*time.Second)
	b.now = func() time.Time { return clock }

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure()
	}
	if st := b.stats(); st.State != BreakerClosed || st.ConsecutiveFailures != 2 {
		t.Fatalf("pre-threshold stats = %+v", st)
	}

	// Third consecutive failure trips it.
	if !b.allow() {
		t.Fatal("closed breaker refused the tripping attempt")
	}
	b.failure()
	st := b.stats()
	if st.State != BreakerOpen || st.Trips != 1 {
		t.Fatalf("post-threshold stats = %+v, want open with 1 trip", st)
	}
	if st.RetryInSec <= 0 || st.RetryInSec > 30 {
		t.Fatalf("retryInSec = %v, want (0, 30]", st.RetryInSec)
	}

	// Open: everything skips until the cooldown elapses.
	if b.allow() {
		t.Fatal("open breaker admitted a job inside the cooldown")
	}
	if st := b.stats(); st.Skips != 1 {
		t.Fatalf("skips = %d, want 1", st.Skips)
	}

	// Cooldown over: exactly one probe is admitted; the rest keep skipping.
	clock = clock.Add(31 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	if st := b.stats(); st.State != BreakerHalfOpen || st.Skips != 2 {
		t.Fatalf("half-open stats = %+v", st)
	}

	// Probe failure re-opens immediately (no threshold).
	b.failure()
	if st := b.stats(); st.State != BreakerOpen || st.Trips != 2 {
		t.Fatalf("post-probe-failure stats = %+v, want re-opened", st)
	}

	// Next probe succeeds: breaker closes and the failure run resets.
	clock = clock.Add(31 * time.Second)
	if !b.allow() {
		t.Fatal("second cooldown elapsed but no probe admitted")
	}
	b.success()
	if st := b.stats(); st.State != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("post-probe-success stats = %+v, want closed", st)
	}

	// A success mid-run also clears accumulated failures.
	b.failure()
	b.failure()
	b.success()
	b.failure()
	if st := b.stats(); st.State != BreakerClosed || st.ConsecutiveFailures != 1 {
		t.Fatalf("interleaved stats = %+v, want closed with 1 consecutive", st)
	}
}
