package serve

import (
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
)

// benchSnapshot builds the Pokec-like serving fixture used by the identify
// acceptance benchmark: a generated social graph, a handful of mined-shape
// rules, and a snapshot with the default worker layout.
func benchSnapshot(b *testing.B) (*Snapshot, []*ServedRule, *Pool) {
	b.Helper()
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(1500, 1))
	var pred core.Predicate
	for _, p := range gen.PokecPredicates(syms) {
		if len(core.Pq(g, p)) > 0 {
			pred = p
			break
		}
	}
	if pred.XLabel == graph.NoLabel {
		b.Fatal("no supported predicate in generated graph")
	}
	rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 4, VP: 3, EP: 3, Seed: 1})
	if len(rules) == 0 {
		b.Fatal("no rules generated")
	}
	snap, err := BuildSnapshot(g, pred, rules, Config{Workers: 4})
	if err != nil {
		b.Fatalf("BuildSnapshot: %v", err)
	}
	return snap, snap.Rules, NewPool(4)
}

// BenchmarkIdentify is the acceptance benchmark for the steady-state
// /v1/identify path: one uncached EvalRule per iteration over the resident
// snapshot, cycling through the rule set. Recorded in BENCH_match.json by
// `make bench`.
func BenchmarkIdentify(b *testing.B) {
	snap, rules, pool := benchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.EvalRule(rules[i%len(rules)], pool)
	}
}
