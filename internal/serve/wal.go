// The write-ahead log: every accepted POST /v1/graph/delta batch is
// appended as one CRC-framed record *before* the new generation is
// published, so a crash between accept and the next checkpoint replays the
// batch instead of losing it. Records carry the wire-level DeltaRequest
// (label names, not interned IDs) and are replayed through the same
// mapDeltaOps → ApplyDelta path as live traffic, which reproduces symbol
// interning order — and therefore serving state — exactly.
//
// File layout:
//
//	header  16 bytes  magic "GPWL", version u32, base generation u64
//	record  8+n bytes u32 payload length, u32 CRC-32 (IEEE) of payload,
//	                  payload = u64 generation + canonical JSON DeltaRequest
//
// The base generation names the snapshot the log extends: record k carries
// generation base+k. Rotation (at every checkpoint) starts a fresh log
// whose base is the checkpointed generation.

package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"gpar/internal/diskfault"
)

const (
	walMagic     = "GPWL"
	walVersion   = 1
	walHeaderLen = 16
	// walMaxRecord bounds a record a reader will believe; a length prefix
	// beyond it is treated as corruption, not an allocation request.
	walMaxRecord = 64 << 20
)

// WALError is the typed error for a structurally invalid WAL file or
// record. Recovery treats it as a corrupt tail: replay stops, the file is
// quarantined, and the valid prefix wins.
type WALError struct {
	Path string
	Off  int64 // byte offset of the offending record, -1 for the header
	Msg  string
}

// Error implements error.
func (e *WALError) Error() string {
	if e.Off < 0 {
		return fmt.Sprintf("wal %s: %s", e.Path, e.Msg)
	}
	return fmt.Sprintf("wal %s: record at offset %d: %s", e.Path, e.Off, e.Msg)
}

// walRecord is one replayable delta batch.
type walRecord struct {
	Gen uint64
	Req DeltaRequest
}

// encodeWALRecord frames one record.
func encodeWALRecord(gen uint64, req DeltaRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint64(payload, gen)
	copy(payload[8:], body)
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	return rec, nil
}

// walWriter appends records to one log file. Appends are serialized by the
// server's swap lock; mu only coordinates them with the interval-sync
// flusher and Close.
type walWriter struct {
	fs   diskfault.FS
	f    diskfault.File
	path string
}

// createWAL starts a fresh log at path with the given base generation,
// fsyncing the header (and the directory entry via the caller's SyncDir).
func createWAL(fs diskfault.FS, path string, base uint64) (*walWriter, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, walHeaderLen)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{fs: fs, f: f, path: path}, nil
}

// append frames and writes one record, syncing when sync is set.
func (w *walWriter) append(gen uint64, req DeltaRequest, sync bool) error {
	rec, err := encodeWALRecord(gen, req)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if sync {
		return w.f.Sync()
	}
	return nil
}

// sync flushes buffered records to durable storage.
func (w *walWriter) sync() error { return w.f.Sync() }

// close syncs and closes the file.
func (w *walWriter) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// readWAL parses the log at path: its base generation, every record of the
// valid prefix, and — when the file ends in garbage — a *WALError
// describing the first invalid byte range alongside the records before it.
// A clean file returns err == nil.
func readWAL(fs diskfault.FS, path string) (base uint64, recs []walRecord, err error) {
	data, err := diskfault.ReadFile(fs, path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < walHeaderLen || string(data[:4]) != walMagic {
		return 0, nil, &WALError{Path: path, Off: -1, Msg: "missing GPWL header"}
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return 0, nil, &WALError{Path: path, Off: -1, Msg: fmt.Sprintf("unsupported version %d", v)}
	}
	base = binary.LittleEndian.Uint64(data[8:])
	off := int64(walHeaderLen)
	buf := data[walHeaderLen:]
	for len(buf) > 0 {
		if len(buf) < 8 {
			return base, recs, &WALError{Path: path, Off: off, Msg: fmt.Sprintf("torn frame header: %d trailing bytes", len(buf))}
		}
		n := binary.LittleEndian.Uint32(buf)
		crc := binary.LittleEndian.Uint32(buf[4:])
		if n > walMaxRecord {
			return base, recs, &WALError{Path: path, Off: off, Msg: fmt.Sprintf("implausible record length %d", n)}
		}
		if uint32(len(buf)-8) < n {
			return base, recs, &WALError{Path: path, Off: off, Msg: fmt.Sprintf("torn record: %d of %d payload bytes", len(buf)-8, n)}
		}
		payload := buf[8 : 8+n]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return base, recs, &WALError{Path: path, Off: off, Msg: fmt.Sprintf("payload CRC mismatch: computed %08x, stored %08x", got, crc)}
		}
		if n < 8 {
			return base, recs, &WALError{Path: path, Off: off, Msg: "payload shorter than its generation header"}
		}
		var rec walRecord
		rec.Gen = binary.LittleEndian.Uint64(payload)
		if err := json.Unmarshal(payload[8:], &rec.Req); err != nil {
			return base, recs, &WALError{Path: path, Off: off, Msg: fmt.Sprintf("undecodable delta payload: %v", err)}
		}
		recs = append(recs, rec)
		buf = buf[8+n:]
		off += int64(8 + n)
	}
	return base, recs, nil
}
