package serve

import (
	"container/list"
	"sync"
)

// Cache is the bounded LRU match-set cache. Keys are "g<generation>|<rule
// key>", so a snapshot swap implicitly orphans every old entry; Purge on
// swap reclaims them eagerly rather than waiting for LRU pressure.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
	purges    int64
}

type cacheEntry struct {
	key string
	val *RuleEval
}

// CacheStats is a point-in-time counter snapshot for /stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Purges    int64 `json:"purges"`
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// Get returns the cached evaluation for key, if present, marking it most
// recently used.
func (c *Cache) Get(key string) (*RuleEval, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *Cache) Put(key string, val *RuleEval) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Purge drops every entry (snapshot swap) and returns how many were
// dropped.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element)
	if n > 0 {
		c.purges++
	}
	return n
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Purges:    c.purges,
	}
}
