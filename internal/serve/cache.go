package serve

import "sync"

// Cache is the bounded LRU match-set cache. Keys are "g<generation>|<rule
// key>", so a snapshot swap implicitly orphans every old entry; Purge on
// swap reclaims them eagerly rather than waiting for LRU pressure.
type Cache struct {
	mu  sync.Mutex
	lru *lru[string, *RuleEval]
}

// CacheStats is a point-in-time counter snapshot for /stats, shared by the
// match-set cache and the mine-context cache.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Purges    int64 `json:"purges"`
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	return &Cache{lru: newLRU[string, *RuleEval](capacity)}
}

// Get returns the cached evaluation for key, if present, marking it most
// recently used.
func (c *Cache) Get(key string) (*RuleEval, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.get(key)
}

// Put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *Cache) Put(key string, val *RuleEval) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.put(key, val)
}

// Carry renames oldKey's entry to newKey — the delta path's selective
// invalidation: an evaluation provably unaffected by a mutation batch moves
// to the new generation's key instead of being recomputed. Recency and
// hit/miss counters are untouched. It reports whether an entry existed.
func (c *Cache) Carry(oldKey, newKey string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.carry(oldKey, newKey)
}

// Remove drops key's entry if present (counted as an eviction) and reports
// whether one existed.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.remove(key)
}

// Purge drops every entry (snapshot swap) and returns how many were
// dropped.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.purge()
}

// Shrink evicts the least-recently-used half of the cache and returns how
// many entries were dropped. The hard memory watermark calls it to shed
// cache memory while keeping the hot half of the working set.
func (c *Cache) Shrink() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.shrink((c.lru.ll.Len() + 1) / 2)
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.stats()
}
