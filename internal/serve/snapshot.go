package serve

import (
	"fmt"
	"sort"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/partition"
	"gpar/internal/pattern"
	"gpar/internal/sketch"
)

// ServedRule is one rule of the resident set Σ with everything the request
// paths need precomputed (no symbol-table reads after build).
type ServedRule struct {
	Index   int
	Key     string // core.Rule.Key(), the cache identity
	Rule    *core.Rule
	Display string // Rule.String(), rendered at build time
	Radius  int    // r(PR, x), the partition radius contribution
	Size    int    // |Q|

	// pr is Rule.PR() materialized once at build time. Rule.PR() clones per
	// call; a stable pattern identity lets the per-fragment sketch indexes
	// cache the pattern sketches across requests.
	pr *pattern.Pattern
	// degX is the degree of the designated x in the expanded antecedent Q —
	// the cheap per-candidate feasibility bound used to prefilter candidate
	// lists at build time. (A PR match is also a Q match, so Q's bound is a
	// necessary condition for both checks.)
	degX int
}

// Snapshot is one immutable unit of serving state. All fields are read-only
// after BuildSnapshot returns; swapping installs a whole new Snapshot.
type Snapshot struct {
	Gen  uint64
	G    *graph.Graph
	Pred core.Predicate
	// PredDisplay is Pred rendered at build time.
	PredDisplay string
	Rules       []*ServedRule
	byKey       map[string]*ServedRule

	frags []*fragEval
	// fromDelta marks a snapshot derived by DeriveDeltaSnapshot: fragments
	// are identity chunks over a shared overlay graph, not real partition
	// layouts, so mine jobs must not borrow them via fragmentList.
	fromDelta bool
	// D is the partition radius used for the fragments.
	D int
	// SuppQ1 and SuppQbar are supp(q,G) and supp(q̄,G): the LCWA
	// classification of candidates, shared by every rule of the predicate.
	SuppQ1   int
	SuppQbar int
}

// fragEval is one partition fragment prepared for repeated rule evaluation:
// frozen graph, sketch index for guided search, the owned centers
// classified once under the LCWA (as in eip.processFragment), and per-rule
// prefiltered candidate lists so steady-state requests touch only centers
// that can possibly match.
type fragEval struct {
	frag     *partition.Fragment
	sketches *sketch.Index
	pq       []graph.NodeID // owned centers with the consequent edge to a YLabel node
	pqbar    []graph.NodeID // owned centers with the consequent edge elsewhere
	other    []graph.NodeID // unknown cases

	// ruleCands[i] are rule i's candidate lists, prefiltered at build time
	// by the fragment triple summary and the x-degree bound.
	ruleCands []ruleCandSet
}

// ruleCandSet is one rule's prefiltered candidate lists on one fragment.
type ruleCandSet struct {
	// skip: the fragment lacks a triple Q requires, so neither Q nor PR
	// (⊇ Q) can match any center. skipPR: only the PR gate failed (the
	// consequent triple is absent, e.g. a fragment of all-q̄ centers); Q
	// checks still run.
	skip, skipPR     bool
	pq, pqbar, other []graph.NodeID
}

// prefilter returns the members of centers that satisfy the cheap
// per-candidate necessary conditions for matching sr's antecedent. When
// nothing is filtered the input slice is shared, not copied.
func prefilter(g *graph.Graph, centers []graph.NodeID, degX int) []graph.NodeID {
	keepAll := true
	for _, c := range centers {
		if g.Degree(c) < degX {
			keepAll = false
			break
		}
	}
	if keepAll {
		return centers
	}
	out := make([]graph.NodeID, 0, len(centers))
	for _, c := range centers {
		if g.Degree(c) >= degX {
			out = append(out, c)
		}
	}
	return out
}

// RuleEval is one rule's graph-wide evaluation: the match-set cache value.
type RuleEval struct {
	Key     string
	Stats   core.Stats
	Conf    float64
	Matches []graph.NodeID // Q(x,G), sorted global IDs: the potential customers
}

// BuildSnapshot prepares serving state for g, pred and rules. Rules must
// all validate and pertain to pred (the EIP problem statement requires one
// predicate per Σ). The graph is frozen and its label index forced so all
// later access is read-only.
func BuildSnapshot(g *graph.Graph, pred core.Predicate, rules []*core.Rule, cfg Config) (*Snapshot, error) {
	cfg = cfg.defaults()
	if pred.XLabel == graph.NoLabel || pred.EdgeLabel == graph.NoLabel || pred.YLabel == graph.NoLabel {
		return nil, fmt.Errorf("serve: predicate has unset labels")
	}
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("serve: rule %d: %w", i, err)
		}
		if r.Pred != pred {
			return nil, fmt.Errorf("serve: rule %d pertains to a different predicate", i)
		}
	}
	// Freeze compiles the CSR representation, including the node-label
	// candidate index, so every later read is lock-free and mutation-free.
	g.Freeze()

	snap := &Snapshot{
		G:           g,
		Pred:        pred,
		PredDisplay: pred.String(g.Symbols()),
		byKey:       make(map[string]*ServedRule, len(rules)),
		D:           eip.MaxRadius(rules),
	}
	for i, r := range rules {
		qx := r.Q.Expand()
		degX := 0
		for _, e := range qx.Edges() {
			if e.From == qx.X {
				degX++
			}
			if e.To == qx.X {
				degX++
			}
		}
		sr := &ServedRule{
			Index:   i,
			Key:     r.Key(),
			Rule:    r,
			Display: r.String(),
			Radius:  r.Radius(),
			Size:    r.Size(),
			pr:      r.PR(),
			degX:    degX,
		}
		snap.Rules = append(snap.Rules, sr)
		snap.byKey[sr.Key] = sr
	}

	// Per-rule triple requirements depend only on the rule; compute once,
	// not per fragment. Q's triples gate all matching on a fragment; PR's
	// (which add the consequent edge) gate only the PR check.
	needQ := make([][]eip.Triple, len(rules))
	needPR := make([][]eip.Triple, len(rules))
	for i, r := range rules {
		needQ[i] = eip.PatternTriples(r.Q)
		needPR[i] = eip.RuleTriples(r)
	}

	cands := g.NodesWithLabel(pred.XLabel)
	frags := partition.Partition(g, cands, cfg.Workers, snap.D)
	for _, f := range frags {
		f.G.Freeze() // fragments are shared by concurrent requests
		fe := &fragEval{
			frag:     f,
			sketches: sketch.NewIndex(f.G, cfg.SketchK),
		}
		// LCWA classification of owned centers (Section 3), once per swap.
		fe.pq, fe.pqbar, fe.other = eip.ClassifyCenters(f.G, f.Centers, pred)
		snap.SuppQ1 += len(fe.pq)
		snap.SuppQbar += len(fe.pqbar)

		// Per-rule candidate lists, prefiltered once per swap: the fragment
		// triple summary rejects whole rules (multi-query common-subpattern
		// sharing, Section 5.2) and the x-degree bound rejects individual
		// centers, so steady-state identify requests run the matcher only
		// on plausible candidates.
		triples := eip.NewTripleIndex(f.G)
		fe.ruleCands = make([]ruleCandSet, len(rules))
		for i := range rules {
			rc := &fe.ruleCands[i]
			if !triples.Covers(needQ[i]) {
				rc.skip = true
				continue
			}
			rc.skipPR = !triples.Covers(needPR[i])
			degX := snap.Rules[i].degX
			rc.pq = prefilter(f.G, fe.pq, degX)
			rc.pqbar = prefilter(f.G, fe.pqbar, degX)
			rc.other = prefilter(f.G, fe.other, degX)
		}
		snap.frags = append(snap.frags, fe)
	}
	return snap, nil
}

// RuleByKey resolves a rule key to its served rule.
func (s *Snapshot) RuleByKey(key string) (*ServedRule, bool) {
	sr, ok := s.byKey[key]
	return sr, ok
}

// fragmentList returns the snapshot's partition fragments in build order —
// exactly what partition.Partition(G, G.NodesWithLabel(Pred.XLabel),
// len(frags), D) produced, every fragment frozen. A mine job whose
// (xLabel, d, n) coincides with that layout hands this list to
// mine.ContextFromFragments and skips the whole partition + freeze
// preamble; the sharing is sound because both layers call the same
// deterministic partitioner with the same inputs.
func (s *Snapshot) fragmentList() []*partition.Fragment {
	out := make([]*partition.Fragment, len(s.frags))
	for i, fe := range s.frags {
		out[i] = fe.frag
	}
	return out
}

// fragPart is one fragment's partial result for one rule.
type fragPart struct {
	q   []graph.NodeID // Q-matching owned centers, global IDs
	r   []graph.NodeID // PR-matching owned centers, global IDs
	qqb int            // Q matches among the q̄ class
}

// EvalRule computes the rule's match set and statistics over the
// snapshot's fragments, fanning the per-fragment work out through pool.
// This is algorithm Match (Section 5.2) restricted to one rule: guided
// search over the fragment sketch index, early-terminating HasMatchAt, and
// the PR ⇒ Q containment reuse of Example 10.
func (s *Snapshot) EvalRule(sr *ServedRule, pool *Pool) *RuleEval {
	parts := make([]fragPart, len(s.frags))
	tasks := make([]func(), len(s.frags))
	for i, fe := range s.frags {
		tasks[i] = func() { parts[i] = fe.evalRule(sr) }
	}
	pool.Do(tasks...)

	ev := &RuleEval{Key: sr.Key}
	for _, p := range parts {
		ev.Matches = append(ev.Matches, p.q...)
		ev.Stats.SuppR += len(p.r)
		ev.Stats.SuppQqb += p.qqb
	}
	sort.Slice(ev.Matches, func(i, j int) bool { return ev.Matches[i] < ev.Matches[j] })
	ev.Stats.SuppQ = len(ev.Matches)
	ev.Stats.SuppQ1 = s.SuppQ1
	ev.Stats.SuppQbar = s.SuppQbar
	ev.Conf = ev.Stats.Conf()
	return ev
}

// evalRule runs the per-candidate checks for one rule on one fragment,
// over the candidate lists prefiltered at snapshot build. Matchers come
// from the shared pool and are reused across every candidate, so the
// steady-state request path allocates only its result slices.
func (fe *fragEval) evalRule(sr *ServedRule) fragPart {
	var p fragPart
	rc := &fe.ruleCands[sr.Index]
	if rc.skip {
		return p
	}
	opts := match.Options{Guided: true, Sketches: fe.sketches}
	g := fe.frag.G
	qm := match.NewMatcher(sr.Rule.Q, g, opts)
	defer qm.Release()
	var prm *match.Matcher
	if !rc.skipPR {
		prm = match.NewMatcher(sr.pr, g, opts)
		defer prm.Release()
	}
	// Pq members: PR first; a PR match is a Q match (containment reuse).
	for _, c := range rc.pq {
		if prm != nil && prm.HasMatchAt(c) {
			p.r = append(p.r, fe.frag.Global(c))
			p.q = append(p.q, fe.frag.Global(c))
			continue
		}
		if qm.HasMatchAt(c) {
			p.q = append(p.q, fe.frag.Global(c))
		}
	}
	// q̄ members: Q matches count for supp(Qq̄) and as potential customers.
	for _, c := range rc.pqbar {
		if qm.HasMatchAt(c) {
			p.qqb++
			p.q = append(p.q, fe.frag.Global(c))
		}
	}
	// Unknown cases: potential customers when Q matches.
	for _, c := range rc.other {
		if qm.HasMatchAt(c) {
			p.q = append(p.q, fe.frag.Global(c))
		}
	}
	return p
}
