package serve

import (
	"fmt"
	"sync"
	"testing"
)

func ev(key string) *RuleEval { return &RuleEval{Key: key} }

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", ev("a"))
	c.Put("b", ev("b"))
	if _, ok := c.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	c.Put("c", ev("c")) // evicts b, the LRU entry
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats %+v, want 1 eviction, 2 entries", st)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(4)
	c.Put("a", ev("old"))
	c.Put("a", ev("new"))
	got, ok := c.Get("a")
	if !ok || got.Key != "new" {
		t.Fatalf("got %+v, want refreshed value", got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries %d, want 1", st.Entries)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), ev("v"))
	}
	if n := c.Purge(); n != 5 {
		t.Fatalf("purged %d, want 5", n)
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("entry survived purge")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Purges != 1 {
		t.Errorf("stats %+v after purge", st)
	}
	if n := c.Purge(); n != 0 {
		t.Errorf("second purge dropped %d", n)
	}
	if st := c.Stats(); st.Purges != 1 {
		t.Errorf("empty purge counted: %+v", st)
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put("a", ev("a"))
	c.Put("b", ev("b"))
	if _, ok := c.Get("b"); !ok {
		t.Error("latest entry missing from capacity-1 cache")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries %d, want 1", st.Entries)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("k%d", j%32)
				if j%3 == 0 {
					c.Put(k, ev(k))
				} else {
					c.Get(k)
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 16 {
		t.Errorf("entries %d exceed capacity", st.Entries)
	}
}
