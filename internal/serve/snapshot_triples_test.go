package serve

import (
	"testing"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// TestEvalRuleQbarOnlyCenters: a graph whose candidate centers all lack the
// consequent edge to a YLabel node (pure q̄ / unknown classes) must still
// report their Q matches. The build-time triple prefilter gates Q checks on
// Q's own triples, not PR's — PR's include the consequent edge, which such
// a graph legitimately lacks. Regression test for the skip/skipPR split.
func TestEvalRuleQbarOnlyCenters(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	c0 := g.AddNode("cust")
	c1 := g.AddNode("cust")
	c2 := g.AddNode("cust")
	bar := g.AddNode("bar")
	g.AddEdge(c0, c1, "friend")
	g.AddEdge(c1, c2, "friend")
	g.AddEdge(c2, bar, "visit") // a visit edge, but never to a "restaurant"

	pred := core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("restaurant"),
	}
	// Q: x -friend-> f  ⇒  visit(x, restaurant). Matches c0 and c1.
	q := pattern.New(syms)
	x := q.AddNode("cust")
	q.X = x
	f := q.AddNode("cust")
	q.AddEdge(x, f, "friend")
	r := &core.Rule{Q: q, Pred: pred}
	if err := r.Validate(); err != nil {
		t.Fatalf("rule: %v", err)
	}

	snap, err := BuildSnapshot(g, pred, []*core.Rule{r}, Config{Workers: 1})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	if snap.SuppQ1 != 0 {
		t.Fatalf("fixture broken: expected no Pq centers, got %d", snap.SuppQ1)
	}
	ev := snap.EvalRule(snap.Rules[0], NewPool(1))
	want := []graph.NodeID{c0, c1}
	if len(ev.Matches) != len(want) || ev.Matches[0] != want[0] || ev.Matches[1] != want[1] {
		t.Fatalf("EvalRule matches = %v, want %v (q̄-only fragment must not be triple-skipped)", ev.Matches, want)
	}
	// c2 is the lone q̄ center but has no outgoing friend edge, so Q does
	// not match it; c0 and c1 are unknown-class customers.
	if ev.Stats.SuppQqb != 0 || ev.Stats.SuppQbar != 1 {
		t.Fatalf("Stats = %+v, want SuppQqb=0 SuppQbar=1", ev.Stats)
	}
}
