package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// holdGate saturates the server's shared mine gate, parking every mine job
// at its next worker acquire — a deterministic cancellation window that does
// not depend on the job being slow. The returned release frees the gate; it
// is also registered as cleanup so a failing test cannot wedge others.
func holdGate(t *testing.T, s *Server) (release func()) {
	t.Helper()
	n := s.mineGate.Size()
	for i := 0; i < n; i++ {
		s.mineGate.Acquire()
	}
	released := false
	release = func() {
		if released {
			return
		}
		released = true
		for i := 0; i < n; i++ {
			s.mineGate.Release()
		}
	}
	t.Cleanup(release)
	return release
}

func waitJobUntil(t *testing.T, s *Server, id string, timeout time.Duration, cond func(Job) bool) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.jobs.Get(id)
		if ok && cond(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%s)", id, j.Status, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobCancelEndpoint: DELETE /v1/jobs/{id} on a running job answers 202,
// the job reaches the canceled terminal state (the run observes its context
// at the next superstep boundary), a second DELETE answers 409, and an
// unknown id 404.
func TestJobCancelEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})
	holdGate(t, s)

	var job Job
	body := []byte(`{"xLabel":"cust","edgeLabel":"visit","yLabel":"restaurant",
		"k":2,"sigma":1,"maxEdges":1,"cap":10}`)
	if code := doJSON(t, "POST", ts.URL+"/v1/mine", body, &job); code != http.StatusAccepted {
		t.Fatalf("mine: %d", code)
	}
	waitJobUntil(t, s, job.ID, 5*time.Second, func(j Job) bool { return j.Status == JobRunning })

	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel: %d, want 202", code)
	}
	final := waitJobUntil(t, s, job.ID, 5*time.Second, func(j Job) bool { return terminal(j.Status) })
	if final.Status != JobCanceled {
		t.Fatalf("canceled job finished %q (%s), want %q", final.Status, final.Error, JobCanceled)
	}
	if !strings.Contains(final.Error, "canceled") {
		t.Errorf("canceled job error %q does not say so", final.Error)
	}

	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, nil, nil); code != http.StatusConflict {
		t.Errorf("cancel of a terminal job: %d, want 409", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("cancel of an unknown job: %d, want 404", code)
	}

	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Lifecycle.CancelRequests != 1 {
		t.Errorf("cancelRequests = %d, want 1", st.Lifecycle.CancelRequests)
	}
	if st.Jobs[JobCanceled] != 1 {
		t.Errorf("job counts: %v, want one canceled", st.Jobs)
	}
}

// TestJobDeadline: a mine job with timeoutMs finishes in the
// deadline_exceeded terminal state once its budget expires mid-run.
func TestJobDeadline(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})
	holdGate(t, s)

	var job Job
	body := []byte(`{"xLabel":"cust","edgeLabel":"visit","yLabel":"restaurant",
		"k":2,"sigma":1,"maxEdges":1,"cap":10,"timeoutMs":50}`)
	if code := doJSON(t, "POST", ts.URL+"/v1/mine", body, &job); code != http.StatusAccepted {
		t.Fatalf("mine: %d", code)
	}
	final := waitJobUntil(t, s, job.ID, 5*time.Second, func(j Job) bool { return terminal(j.Status) })
	if final.Status != JobDeadline {
		t.Fatalf("timed-out job finished %q (%s), want %q", final.Status, final.Error, JobDeadline)
	}
	var got Job
	doJSON(t, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &got)
	if got.Status != JobDeadline {
		t.Errorf("job status over HTTP: %q", got.Status)
	}
}

// TestJobRunsCleanAfterCanceledJob: a canceled run releases its pooled
// accumulator cleanly — the next job over the same context succeeds and its
// result installs, which would fail if cancellation left partial state.
func TestJobRunsCleanAfterCanceledJob(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})
	release := holdGate(t, s)

	body := []byte(`{"xLabel":"cust","edgeLabel":"visit","yLabel":"restaurant",
		"k":3,"sigma":1,"d":2,"maxEdges":1,"cap":20}`)
	var canceledJob Job
	doJSON(t, "POST", ts.URL+"/v1/mine", body, &canceledJob)
	waitJobUntil(t, s, canceledJob.ID, 5*time.Second, func(j Job) bool { return j.Status == JobRunning })
	doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+canceledJob.ID, nil, nil)
	waitJobUntil(t, s, canceledJob.ID, 5*time.Second, func(j Job) bool { return terminal(j.Status) })
	release()

	var rerun Job
	if code := doJSON(t, "POST", ts.URL+"/v1/mine", body, &rerun); code != http.StatusAccepted {
		t.Fatalf("rerun after cancel: %d", code)
	}
	final := waitJobUntil(t, s, rerun.ID, 10*time.Second, func(j Job) bool { return terminal(j.Status) })
	if final.Status != JobDone {
		t.Fatalf("rerun finished %q (%s), want done", final.Status, final.Error)
	}
	if len(final.RuleKeys) == 0 {
		t.Error("rerun after cancel mined no rules")
	}
	_ = ts
}

// TestShutdownCancelsRunningJobs: the drain is active — Shutdown cancels a
// job parked mid-run through the job-context plumbing and returns promptly,
// rather than waiting out work nobody will read.
func TestShutdownCancelsRunningJobs(t *testing.T) {
	s, _, _ := newTestServer(t, Config{Workers: 2})
	holdGate(t, s)

	job, err := s.StartMine(MineParams{
		XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
		K: 2, Sigma: 1, MaxEdges: 1, Cap: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJobUntil(t, s, job.ID, 5*time.Second, func(j Job) bool { return j.Status == JobRunning })

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with a parked job: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v with the gate saturated; the cancel did not reach the job", elapsed)
	}
	final, _ := s.jobs.Get(job.ID)
	if final.Status != JobCanceled {
		t.Errorf("drained job finished %q (%s), want canceled", final.Status, final.Error)
	}

	// After the drain, new jobs are refused.
	if _, err := s.StartMine(MineParams{
		XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
	}); err == nil {
		t.Error("StartMine accepted a job after Shutdown")
	}
}

// TestNoGoroutineLeakAcrossStartStop: full server lifecycles — snapshot
// load, a mine job run to completion, identify traffic, shutdown — leave no
// goroutines behind.
func TestNoGoroutineLeakAcrossStartStop(t *testing.T) {
	cycle := func() {
		g, pred, rules := fixture(t)
		s := New(Config{Workers: 2})
		if err := s.LoadSnapshot(g, pred, rules); err != nil {
			t.Fatal(err)
		}
		h := s.Handler()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/identify", strings.NewReader(`{}`)))
		if rec.Code != http.StatusOK {
			t.Fatalf("identify: %d", rec.Code)
		}
		job, err := s.StartMine(MineParams{
			XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
			K: 2, Sigma: 1, MaxEdges: 1, Cap: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitJobUntil(t, s, job.ID, 10*time.Second, func(j Job) bool { return terminal(j.Status) })
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm up lazy runtime state (timers, http internals)

	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		cycle()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across start/stop cycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
