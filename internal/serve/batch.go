package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Batcher coalesces concurrent executions that share a key into one: the
// first caller (the leader) runs fn, every caller that arrives while it is
// in flight blocks and receives the leader's result. This turns a stampede
// of identical identify queries into a single match execution. An optional
// window makes the leader wait before executing so near-simultaneous
// duplicates can still join the batch.
type Batcher[V any] struct {
	mu       sync.Mutex
	window   time.Duration
	inflight map[string]*batchCall[V]

	executions atomic.Int64
	coalesced  atomic.Int64
}

type batchCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// BatchStats is a point-in-time counter snapshot for /stats.
type BatchStats struct {
	Executions int64 `json:"executions"`
	Coalesced  int64 `json:"coalesced"`
}

// NewBatcher returns a Batcher with the given coalescing window (0 = pure
// single-flight).
func NewBatcher[V any](window time.Duration) *Batcher[V] {
	return &Batcher[V]{
		window:   window,
		inflight: make(map[string]*batchCall[V]),
	}
}

// Do executes fn under key, coalescing with any in-flight call for the same
// key. shared reports whether this call joined another's execution rather
// than running fn itself.
func (b *Batcher[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	b.mu.Lock()
	if c, ok := b.inflight[key]; ok {
		b.mu.Unlock()
		<-c.done
		b.coalesced.Add(1)
		return c.val, true, c.err
	}
	c := &batchCall[V]{done: make(chan struct{})}
	b.inflight[key] = c
	b.mu.Unlock()

	if b.window > 0 {
		time.Sleep(b.window)
	}
	c.val, c.err = fn()
	b.executions.Add(1)

	b.mu.Lock()
	delete(b.inflight, key)
	b.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Stats returns current counters.
func (b *Batcher[V]) Stats() BatchStats {
	return BatchStats{
		Executions: b.executions.Load(),
		Coalesced:  b.coalesced.Load(),
	}
}
