// Delta ingest and incremental maintenance: POST /v1/graph/delta applies a
// mutation batch to the served graph as a new snapshot generation without
// re-freezing (graph.ApplyDelta builds an overlay over the shared CSR), the
// match-set cache is invalidated selectively — only rules whose d-hop
// neighborhoods can intersect the touched nodes lose their entries — warm
// mine results survive mutations provably outside their reach, and a
// threshold (or the operator's timer) folds the overlay back into a real
// freeze in the background with a hot swap.
//
// The invalidation invariant: a cached evaluation for rule R may be carried
// to the new generation iff no touched node lies within distance R.Radius()
// of any XLabel node in either the old or the new graph — and, because
// cached Stats embed the snapshot-global supp(q,G)/supp(q̄,G), nothing is
// carried at all when any touched node lies within distance 1 of an XLabel
// node (the LCWA classification radius). Warm mine results use the same
// test with radius max(D, MaxEdges)+1, the farthest any DMine probe
// reaches from a candidate center.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/partition"
)

// errBadDelta marks delta requests rejected before they reach the graph:
// the handler answers 400 (versus 409 for a structurally valid batch the
// graph refuses).
var errBadDelta = errors.New("bad delta request")

// DeltaOpSpec is one mutation of a POST /v1/graph/delta batch. Op selects
// the kind; the other fields are read per kind:
//
//	{"op":"addNode","label":"user"}            — Label: node label (ID assigned densely)
//	{"op":"addEdge","from":3,"to":9,"label":"follow"}
//	{"op":"delEdge","from":3,"to":9,"label":"follow"}
//	{"op":"setLabel","node":3,"label":"artist"}
//
// Labels are names; addNode, addEdge and setLabel intern new names, delEdge
// resolves read-only (an unknown label cannot name an existing edge).
type DeltaOpSpec struct {
	Op    string `json:"op"`
	Node  int32  `json:"node,omitempty"`
	From  int32  `json:"from,omitempty"`
	To    int32  `json:"to,omitempty"`
	Label string `json:"label,omitempty"`
}

// DeltaRequest is the body of POST /v1/graph/delta: an atomic batch of
// mutations, applied in order (later ops may reference nodes added earlier
// in the same batch).
type DeltaRequest struct {
	Ops []DeltaOpSpec `json:"ops"`
}

// DeltaResponse reports an applied batch: the new generation, the graph's
// new totals, and what incremental maintenance did with the caches.
type DeltaResponse struct {
	Generation   uint64 `json:"generation"`
	Ops          int    `json:"ops"`
	Nodes        int    `json:"nodes"`
	Edges        int    `json:"edges"`
	TouchedNodes int    `json:"touchedNodes"`
	// OverlayOps is the cumulative op count since the last real freeze —
	// the compaction trigger's input.
	OverlayOps int `json:"overlayOps"`
	// RulesCarried counts match-set cache entries renamed to the new
	// generation because the batch provably cannot affect them;
	// RulesInvalidated counts entries dropped.
	RulesCarried     int `json:"rulesCarried"`
	RulesInvalidated int `json:"rulesInvalidated"`
	// WarmMineCarried counts completed mine results still valid for the new
	// generation (jobs with identical parameters return them without
	// re-mining).
	WarmMineCarried int `json:"warmMineCarried"`
	// Compacting reports that this batch crossed Config.CompactThreshold
	// and background compaction was kicked off.
	Compacting bool `json:"compacting"`
}

// mapDeltaOps translates the wire batch into graph ops. Must run under
// swapMu: addNode/addEdge/setLabel intern label names.
func mapDeltaOps(syms *graph.Symbols, req DeltaRequest) ([]graph.DeltaOp, error) {
	if len(req.Ops) == 0 {
		return nil, fmt.Errorf("%w: empty batch", errBadDelta)
	}
	ops := make([]graph.DeltaOp, 0, len(req.Ops))
	for i, o := range req.Ops {
		switch o.Op {
		case "addNode":
			if o.Label == "" {
				return nil, fmt.Errorf("%w: op %d: addNode requires a label", errBadDelta, i)
			}
			ops = append(ops, graph.DeltaOp{Kind: graph.DeltaAddNode, Label: syms.Intern(o.Label)})
		case "addEdge":
			if o.Label == "" {
				return nil, fmt.Errorf("%w: op %d: addEdge requires a label", errBadDelta, i)
			}
			ops = append(ops, graph.DeltaOp{
				Kind: graph.DeltaAddEdge,
				From: graph.NodeID(o.From), To: graph.NodeID(o.To),
				Label: syms.Intern(o.Label),
			})
		case "delEdge":
			ops = append(ops, graph.DeltaOp{
				Kind: graph.DeltaDelEdge,
				From: graph.NodeID(o.From), To: graph.NodeID(o.To),
				Label: syms.Lookup(o.Label),
			})
		case "setLabel":
			if o.Label == "" {
				return nil, fmt.Errorf("%w: op %d: setLabel requires a label", errBadDelta, i)
			}
			ops = append(ops, graph.DeltaOp{
				Kind: graph.DeltaSetLabel,
				Node: graph.NodeID(o.Node), Label: syms.Intern(o.Label),
			})
		default:
			return nil, fmt.Errorf("%w: op %d: unknown op %q", errBadDelta, i, o.Op)
		}
	}
	return ops, nil
}

// DeriveDeltaSnapshot prepares serving state for an overlay graph without
// the full BuildSnapshot preamble: no partitioning (fragments are identity
// chunks over the shared graph via partition.Split), no sketch indexes
// (matching degrades to unguided — match.Options tolerates nil sketches),
// and no triple prefilters. Rules, renderings and the partition radius are
// inherited from the previous snapshot, whose rule set is unchanged.
// Results are byte-identical to a from-scratch BuildSnapshot over an
// equivalent graph: EvalRule unions and sorts per-fragment matches, and
// classification, degrees and anchored matching read the same logical
// graph either way — pinned by the delta differential oracle.
func DeriveDeltaSnapshot(prev *Snapshot, g *graph.Graph, cfg Config) *Snapshot {
	cfg = cfg.defaults()
	snap := &Snapshot{
		G:           g,
		Pred:        prev.Pred,
		PredDisplay: prev.PredDisplay,
		Rules:       prev.Rules,
		byKey:       prev.byKey,
		D:           prev.D,
		fromDelta:   true,
	}
	cands := g.NodesWithLabel(prev.Pred.XLabel)
	for _, f := range partition.Split(g, cands, cfg.Workers) {
		fe := &fragEval{frag: f} // nil sketches: unguided matching
		fe.pq, fe.pqbar, fe.other = eip.ClassifyCenters(g, f.Centers, prev.Pred)
		snap.SuppQ1 += len(fe.pq)
		snap.SuppQbar += len(fe.pqbar)
		fe.ruleCands = make([]ruleCandSet, len(prev.Rules))
		for i, sr := range prev.Rules {
			rc := &fe.ruleCands[i]
			rc.pq = prefilter(g, fe.pq, sr.degX)
			rc.pqbar = prefilter(g, fe.pqbar, sr.degX)
			rc.other = prefilter(g, fe.other, sr.degX)
		}
		snap.frags = append(snap.frags, fe)
	}
	return snap
}

// deltaImpact returns the smallest distance from any touched node to an
// XLabel node, looking in both the old and the new graph (a deletion's
// effect is visible only in the old one, an addition's only in the new),
// capped at bound; -1 when every touched node is farther than bound. This
// single number drives all carry decisions: rule R is unaffected iff the
// impact exceeds R's radius.
func deltaImpact(old, new *graph.Graph, touched []graph.NodeID, xl graph.Label, bound int) int {
	min := -1
	for _, t := range touched {
		d := new.LabelWithinDistance(t, xl, bound)
		if int(t) < old.NumNodes() {
			if od := old.LabelWithinDistance(t, xl, bound); od != -1 && (d == -1 || od < d) {
				d = od
			}
		}
		if d != -1 && (min == -1 || d < min) {
			min = d
		}
		if min == 0 {
			break
		}
	}
	return min
}

// ApplyDelta applies a mutation batch to the served graph and installs the
// result as a new snapshot generation. The whole operation runs under the
// swap lock (interning, graph derivation, selective cache carry, install);
// identify traffic never blocks on it — in-flight requests finish on the
// snapshot they loaded. Errors wrapping errBadDelta are malformed requests
// (400); *graph.DeltaError means the batch is well-formed but inconsistent
// with the graph (409), applied atomically-or-not-at-all.
func (s *Server) ApplyDelta(req DeltaRequest) (*DeltaResponse, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	return s.applyDeltaLocked(req)
}

// applyDeltaLocked is ApplyDelta with s.swapMu already held; WAL recovery
// replays logged batches through it (with persistence suppressed) so replay
// interns symbols and derives snapshots exactly like live traffic.
func (s *Server) applyDeltaLocked(req DeltaRequest) (*DeltaResponse, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("serve: server is shutting down")
	}
	snap := s.snap.Load()
	if snap == nil {
		return nil, fmt.Errorf("serve: no snapshot loaded")
	}
	ops, err := mapDeltaOps(snap.G.Symbols(), req)
	if err != nil {
		s.nDeltaRejects.Add(1)
		return nil, err
	}
	g2, err := snap.G.ApplyDelta(ops)
	if err != nil {
		s.nDeltaRejects.Add(1)
		return nil, err
	}

	// Decide what survives before anything is installed. One BFS per
	// touched node answers both the per-rule question (bound D) and the
	// warm-mine question (bound max(D, MaxEdges)+1 per entry).
	touched := g2.DeltaTouched()
	bound := snap.D
	if wb := s.warmMaxReach(); wb > bound {
		bound = wb
	}
	impact := deltaImpact(snap.G, g2, touched, snap.Pred.XLabel, bound)

	next := DeriveDeltaSnapshot(snap, g2, s.cfg)
	next.Gen = s.gen.Add(1)
	// Durability barrier: the accepted batch reaches the WAL (per the sync
	// policy) before any publication side effect; on failure the generation
	// rolls back and the client sees the error, so no generation is ever
	// served that recovery could not reproduce.
	if err := s.persistAppend(next.Gen, req); err != nil {
		s.gen.Store(next.Gen - 1)
		return nil, fmt.Errorf("serve: delta not logged: %w", err)
	}
	carried, invalidated := 0, 0
	for _, sr := range snap.Rules {
		oldKey := fmt.Sprintf("g%d|%s", snap.Gen, sr.Key)
		// impact ≤ 1 can change the LCWA classification and with it the
		// snapshot-global supp(q,G)/supp(q̄,G) every cached Stats embeds:
		// nothing may be carried. Otherwise a rule is unaffected iff the
		// impact exceeds its radius.
		if impact != -1 && (impact <= 1 || impact <= sr.Radius) {
			if s.cache.Remove(oldKey) {
				invalidated++
			}
			continue
		}
		if s.cache.Carry(oldKey, fmt.Sprintf("g%d|%s", next.Gen, sr.Key)) {
			carried++
		}
	}
	warmCarried := s.warmCarry(snap.Gen, next.Gen, impact)
	s.snap.Store(next)
	// Mine contexts and parked accumulators are keyed to the old
	// generation's fragments; reclaim them eagerly, as a swap would.
	s.mineCtx.Purge()
	s.minePool.purge()
	s.nSwap.Add(1)
	s.nDeltaBatches.Add(1)
	s.nDeltaOps.Add(int64(len(ops)))
	s.nRuleCarried.Add(int64(carried))
	s.nRuleInvalidated.Add(int64(invalidated))

	resp := &DeltaResponse{
		Generation:       next.Gen,
		Ops:              len(ops),
		Nodes:            g2.NumNodes(),
		Edges:            g2.NumEdges(),
		TouchedNodes:     len(touched),
		OverlayOps:       g2.OverlayOps(),
		RulesCarried:     carried,
		RulesInvalidated: invalidated,
		WarmMineCarried:  warmCarried,
		Compacting:       s.maybeCompactLocked(g2),
	}
	return resp, nil
}

// maybeCompactLocked kicks off background compaction when the overlay has
// crossed Config.CompactThreshold and none is already running. Caller holds
// swapMu; the goroutine blocks on it until the delta installs.
func (s *Server) maybeCompactLocked(g *graph.Graph) bool {
	if s.cfg.CompactThreshold <= 0 || g.OverlayOps() < s.cfg.CompactThreshold {
		return false
	}
	if !s.compactBusy.CompareAndSwap(false, true) {
		return false
	}
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		defer s.compactBusy.Store(false)
		if _, _, err := s.Compact(); err != nil {
			s.nCompactAborts.Add(1)
		}
	}()
	return true
}

// Compact folds the served graph's delta overlay into a freshly frozen
// graph and hot-swaps it in as a new generation. The logical graph is
// unchanged, so every match-set cache entry and warm mine result is carried
// across. The copy itself runs off-lock (the overlay graph is immutable);
// snapshot rebuild and install serialize with other mutations on the swap
// lock, and the install aborts — no error, nothing lost — if a delta or
// swap landed in between (the next trigger retries on the newer overlay).
// It reports the resulting generation and whether a compaction happened;
// a snapshot with no overlay is a no-op.
func (s *Server) Compact() (uint64, bool, error) {
	snap := s.snap.Load()
	if snap == nil || !snap.G.Overlaid() {
		return s.gen.Load(), false, nil
	}
	g := snap.G.CompactCopy()

	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed.Load() || s.snap.Load() != snap {
		s.nCompactAborts.Add(1)
		return s.gen.Load(), false, nil
	}
	rules := make([]*core.Rule, len(snap.Rules))
	for i, sr := range snap.Rules {
		rules[i] = sr.Rule
	}
	next, err := BuildSnapshot(g, snap.Pred, rules, s.cfg)
	if err != nil {
		return s.gen.Load(), false, err
	}
	next.Gen = s.gen.Add(1)
	// A compaction is a swap like any other: checkpoint before publish.
	if err := s.persistCheckpoint(next); err != nil {
		s.gen.Store(next.Gen - 1)
		return s.gen.Load(), false, err
	}
	for _, sr := range snap.Rules {
		s.cache.Carry(
			fmt.Sprintf("g%d|%s", snap.Gen, sr.Key),
			fmt.Sprintf("g%d|%s", next.Gen, sr.Key),
		)
	}
	s.warmCarry(snap.Gen, next.Gen, -1) // logical graph unchanged: carry all
	s.snap.Store(next)
	s.mineCtx.Purge()
	s.minePool.purge()
	s.nSwap.Add(1)
	s.nCompactions.Add(1)
	return next.Gen, true, nil
}

// warmKey identifies a completed mine result by its fully resolved
// parameters. The worker count is deliberately absent: mining results are
// byte-identical across worker counts (pinned by the mine package's parity
// tests), so a result computed under any N answers them all.
type warmKey struct {
	pred     core.Predicate
	k, sigma int
	d        int
	lambda   float64
	maxEdges int
	cap      int
}

// warmEntry is one carried mine result: valid only while gen matches the
// served generation, carried across deltas whose impact stays beyond reach.
// bornGen is the generation the result was mined at; a warm hit requires
// gen != bornGen — the entry must have been carried across at least one
// swap — so same-generation repeat jobs keep exercising the real mining
// path (and its context reuse) exactly as before deltas existed.
type warmEntry struct {
	gen     uint64
	bornGen uint64
	reach   int // max(d, maxEdges) + 1: the farthest probe from a candidate
	res     *mine.Result
}

// maxWarmMine bounds the warm-result map; completed param sets beyond it
// evict arbitrarily (operator-driven mining keeps this tiny in practice).
const maxWarmMine = 16

func warmKeyFor(pred core.Predicate, opts mine.Options) warmKey {
	return warmKey{
		pred: pred, k: opts.K, sigma: opts.Sigma, d: opts.D,
		lambda: opts.Lambda, maxEdges: opts.MaxEdges,
		cap: opts.MaxCandidatesPerRound,
	}
}

// warmGet returns the carried result for these parameters if it is valid
// for generation gen and was mined at an earlier generation.
func (s *Server) warmGet(pred core.Predicate, opts mine.Options, gen uint64) *mine.Result {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if e, ok := s.warm[warmKeyFor(pred, opts)]; ok && e.gen == gen && e.bornGen != gen {
		return e.res
	}
	return nil
}

// warmPut records a completed mine result for generation gen.
func (s *Server) warmPut(pred core.Predicate, opts mine.Options, gen uint64, res *mine.Result) {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warm == nil {
		s.warm = make(map[warmKey]*warmEntry)
	}
	k := warmKeyFor(pred, opts)
	if _, ok := s.warm[k]; !ok && len(s.warm) >= maxWarmMine {
		for victim := range s.warm {
			delete(s.warm, victim)
			break
		}
	}
	reach := opts.D
	if opts.MaxEdges > reach {
		reach = opts.MaxEdges
	}
	s.warm[k] = &warmEntry{gen: gen, bornGen: gen, reach: reach + 1, res: res}
}

// warmMaxReach returns the largest invalidation radius among live warm
// entries (0 when none), so ApplyDelta can size its BFS bound.
func (s *Server) warmMaxReach() int {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	max := 0
	for _, e := range s.warm {
		if e.reach > max {
			max = e.reach
		}
	}
	return max
}

// warmCarry retargets entries from oldGen to newGen when the delta impact
// (−1 = nothing touched within the probed bound) stays strictly beyond
// their reach, and drops the rest. It returns how many were carried.
func (s *Server) warmCarry(oldGen, newGen uint64, impact int) int {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	carried := 0
	for k, e := range s.warm {
		if e.gen != oldGen {
			delete(s.warm, k) // stale generation: unreachable forever
			continue
		}
		if impact != -1 && impact <= e.reach {
			delete(s.warm, k)
			continue
		}
		e.gen = newGen
		carried++
	}
	return carried
}

// warmPurge drops every warm entry (graph replaced wholesale).
func (s *Server) warmPurge() {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	clear(s.warm)
}

// handleDelta is POST /v1/graph/delta. 202: the batch was applied as a new
// snapshot generation (the body reports it). 400: malformed JSON or an op
// the protocol does not know. 409: a well-formed batch the graph refuses —
// unknown node, duplicate edge, missing edge — applied not at all.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if s.ready(w) == nil {
		return
	}
	var req DeltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.nDeltaRejects.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := s.ApplyDelta(req)
	if err != nil {
		var de *graph.DeltaError
		switch {
		case errors.Is(err, errBadDelta):
			httpError(w, http.StatusBadRequest, "%v", err)
		case errors.As(err, &de):
			httpError(w, http.StatusConflict, "%v", err)
		default:
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}
