package serve

import "sync"

// Pool bounds the total matching concurrency of the server. Every request
// fans its per-fragment evaluation tasks through the one shared Pool, so N
// concurrent clients cannot start more than PoolSize fragment matchers.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most n tasks concurrently. n < 1 is
// treated as 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size reports the concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// InUse reports how many tasks hold a slot right now — the /stats
// saturation signal for the identify pool.
func (p *Pool) InUse() int { return len(p.sem) }

// Do runs all tasks, at most Size at a time pool-wide, and waits for them.
// The calling goroutine also executes tasks (it runs the last one inline
// once a slot is free), so Do never deadlocks on an exhausted pool.
func (p *Pool) Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, task := range tasks[:len(tasks)-1] {
		p.sem <- struct{}{}
		wg.Add(1)
		go func(task func()) {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			task()
		}(task)
	}
	// Run the final task on the caller: it charges a slot like the others
	// but keeps the caller productive instead of idle-waiting.
	p.sem <- struct{}{}
	tasks[len(tasks)-1]()
	<-p.sem
	wg.Wait()
}
