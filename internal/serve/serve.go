// Package serve is the GPAR serving subsystem: it keeps a frozen data graph
// and a mined (or loaded) rule set Σ resident in memory and answers
// entity-identification queries concurrently over HTTP — the
// "mine once, match many" shape of the paper's two headline use cases
// (identifying potential customers, Section 1, and EIP, Section 5).
//
// The subsystem is built from these pieces:
//
//   - Snapshot: an immutable unit of serving state — the frozen graph, the
//     rule set with precomputed keys and renderings, the partition fragments
//     (d-neighborhood preserving, Section 4.2/5.1) with per-fragment sketch
//     indexes and LCWA center classification. Snapshots are swapped
//     atomically (LoadSnapshot / SwapRules), so in-flight queries keep the
//     state they started with.
//   - Cache: a bounded LRU of per-rule match-set evaluations keyed by rule
//     Key() + graph generation; a swap bumps the generation and purges.
//   - MineContextCache: a bounded LRU of mine.Context values — the
//     partitioned, frozen fragment preamble of a DMine run — keyed by
//     (generation, xLabel, d, n) with single-flight builds, so repeated
//     mine jobs over one snapshot skip partition.Partition and fragment
//     Freeze() entirely. When a job's (xLabel, d, n) matches the serving
//     snapshot's own layout, the context borrows the snapshot's frozen
//     fragments outright — zero partition work even on a cold cache.
//     Swaps purge it; the generation in the key makes stale entries
//     unreachable regardless.
//   - minePool: parked mine.Shared accumulators (worker sets with their
//     round arenas), recycled across the jobs of one context so a steady
//     stream of mine jobs reuses grown scratch instead of rebuilding it.
//   - Batcher: single-flight coalescing of concurrent identify calls for
//     the same rule into one match execution.
//   - Pool: a bounded worker pool shared by all requests; per-rule
//     evaluation fans out over the snapshot's fragments through it, so
//     total matching concurrency is bounded no matter how many clients
//     connect.
//   - mine.Gate: the mining half of the CPU budget — all mine jobs
//     together run at most ceil(Config.MineShare × GOMAXPROCS) worker
//     goroutines, and the Pool defaults to the remainder, so mining and
//     identify traffic split the machine instead of oversubscribing it.
//
// Concurrency discipline: graph.Graph and graph.Symbols are not safe for
// concurrent mutation, so BuildSnapshot freezes the graph, forces the label
// index, and pre-renders every name (rule keys, display strings) before the
// snapshot is published. Request paths only read labels as integers;
// Symbols.Intern happens solely under the server's swap lock (LoadSnapshot,
// SwapRules, ReadRules on PUT /v1/rules), and mine-job predicates resolve
// label names with Symbols.Lookup, also under the swap lock so they cannot
// race an interning swap.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// Config tunes a Server. The zero value is usable; defaults fill in.
type Config struct {
	// Workers is the number of graph fragments built per snapshot (the n of
	// partition.Partition). Default 4.
	Workers int
	// MineShare splits the machine between mining and serving: all mine
	// jobs collectively run at most ceil(MineShare × GOMAXPROCS) worker
	// goroutines (minimum 1), enforced by a mine.Gate every job shares.
	// Serving keeps the rest (see PoolSize). Must be in (0, 1]; default
	// 0.5. The split bounds CPU occupancy only — mining results are
	// independent of it.
	MineShare float64
	// PoolSize bounds concurrent fragment-evaluation tasks across all
	// requests. Default: GOMAXPROCS minus the mine share (minimum 1), so
	// identify traffic and mine jobs split the machine instead of
	// oversubscribing it.
	PoolSize int
	// SketchK is the k-hop sketch depth for guided matching. Default 2.
	SketchK int
	// CacheCap bounds the number of cached per-rule evaluations. Default 256.
	CacheCap int
	// MineCacheCap bounds the number of cached mine contexts (partitioned,
	// frozen fragment sets reused across mine jobs). Contexts are heavy —
	// each holds the candidates' d-neighborhoods — so the default is 4.
	MineCacheCap int
	// BatchWindow is how long the first (leader) identify call for a rule
	// waits before executing, letting concurrent duplicates coalesce onto
	// it. Default 0: pure single-flight, no added latency.
	BatchWindow time.Duration
	// DefaultEta is the confidence bound η applied when a request omits it.
	// Default 1.0.
	DefaultEta float64
	// MineWorkers, when non-empty, lists the host:port addresses of gparworker
	// services; mine jobs are then submitted to that fleet — one worker
	// service per fragment — instead of mining in-process. The fleet is
	// dialed per job (workers cache fragments by content hash, so repeat
	// dials are cheap) and each job retries the whole fleet cycle up to
	// MineRetries times; a job whose retries are exhausted falls back to
	// in-process mining as a last resort, recorded on the job and counted
	// toward the circuit breaker. Results are byte-identical to in-process
	// mining.
	MineWorkers []string
	// MineStepTimeout bounds each distributed superstep exchange per worker
	// (the stalled-worker guillotine). Zero means the remote package default
	// (2 minutes). Ignored without MineWorkers.
	MineStepTimeout time.Duration
	// MineRetries is the total number of fleet attempts per mine job, the
	// first included (default 3). Each failed attempt closes the fleet,
	// backs off, and re-dials from scratch.
	MineRetries int
	// MineRetryBackoff is the pause after a job's first failed fleet
	// attempt, doubling per failure with bounded jitter (default 50ms).
	MineRetryBackoff time.Duration
	// FleetBreakerThreshold trips the fleet circuit breaker after this many
	// consecutive mine jobs exhausted their fleet retries (default 3;
	// negative disables the breaker). While open, fleet-eligible jobs mine
	// in-process immediately instead of paying the dial+retry latency.
	FleetBreakerThreshold int
	// FleetBreakerCooldown is how long an open breaker waits before
	// admitting one half-open probe job to the fleet (default 30s).
	FleetBreakerCooldown time.Duration

	// RequestTimeout is the server-side deadline stacked on every identify
	// request's own context: evaluation that has not finished by then
	// answers 503 instead of holding resources indefinitely for a client
	// that has likely given up. Default 30s; negative disables.
	RequestTimeout time.Duration
	// MaxQueue bounds how many identify requests may wait for an evaluation
	// slot beyond the PoolSize already running; requests past the bound are
	// shed immediately with 429 + Retry-After. Default 64; negative disables
	// admission control entirely (the no-shedding mode the load harness
	// compares against — under sustained overload it collapses).
	MaxQueue int
	// QueueTimeout is the longest an admitted request may wait in the
	// admission queue before being shed with 429. Default 1s.
	QueueTimeout time.Duration
	// MemLimitBytes arms the memory watermark (0 = off): at ≥ 90% live heap
	// new mine jobs are rejected with 503, and at ≥ 100% the match-set and
	// mine-context caches are shrunk — degrade before dying. The limit
	// should sit under the container/cgroup limit with headroom for
	// transient allocation.
	MemLimitBytes uint64

	// CompactThreshold triggers background compaction once a delta overlay
	// has accumulated this many ops since the last real freeze: the overlay
	// is folded into a fresh frozen graph and hot-swapped in (see
	// Server.Compact). 0 disables threshold-triggered compaction; operators
	// may still compact on a timer via Server.Compact.
	CompactThreshold int
}

func (c Config) defaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MineShare <= 0 || c.MineShare > 1 {
		c.MineShare = 0.5
	}
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0) - c.mineProcs()
		if c.PoolSize < 1 {
			c.PoolSize = 1
		}
	}
	if c.SketchK <= 0 {
		c.SketchK = 2
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 256
	}
	if c.MineCacheCap <= 0 {
		c.MineCacheCap = 4
	}
	if c.DefaultEta <= 0 {
		c.DefaultEta = 1.0
	}
	if c.MineRetries <= 0 {
		c.MineRetries = 3
	}
	if c.MineRetryBackoff <= 0 {
		c.MineRetryBackoff = 50 * time.Millisecond
	}
	if c.FleetBreakerThreshold == 0 {
		c.FleetBreakerThreshold = 3
	}
	if c.FleetBreakerCooldown <= 0 {
		c.FleetBreakerCooldown = 30 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	return c
}

// mineProcs is the mining side of the CPU budget: ceil(MineShare × procs),
// at least 1.
func (c Config) mineProcs() int {
	procs := runtime.GOMAXPROCS(0)
	n := int(c.MineShare * float64(procs))
	if float64(n) < c.MineShare*float64(procs) {
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > procs {
		n = procs
	}
	return n
}

// Server owns the current Snapshot and the shared cache, batcher, pool and
// job registry. Create with New, install state with LoadSnapshot, expose
// with Handler.
type Server struct {
	cfg      Config
	pool     *Pool
	cache    *Cache
	mineCtx  *MineContextCache
	mineGate *mine.Gate // shared CPU budget: all mine jobs together
	minePool *minePool  // parked mine.Shared worker sets (round arenas)
	batch    *Batcher[*RuleEval]
	jobs     *Jobs
	breaker  *breaker // fleet circuit breaker; nil when disabled or no fleet
	admit    *admitter
	mem      *memWatch // heap watermark; nil when MemLimitBytes is 0

	swapMu sync.Mutex // serializes snapshot swaps and symbol interning
	snap   atomic.Pointer[Snapshot]
	gen    atomic.Uint64

	// persist is the durability layer — snapshot checkpoints plus the delta
	// WAL (persist.go) — or nil when persistence is disabled. Installed
	// under swapMu by EnablePersistence; the swap and delta paths consult it
	// before publishing any new generation.
	persist *persister

	start  time.Time
	closed atomic.Bool
	jobWG  sync.WaitGroup
	// baseCtx is the parent of every mine job's context: Shutdown cancels
	// it, so the drain actively stops running jobs instead of waiting them
	// out.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	fleetProbe fleetProbe // cached /healthz fleet reachability

	// warm holds completed mine results carried across generations whose
	// deltas provably cannot affect them (see delta.go); guarded by warmMu,
	// not swapMu, because runMine reads and writes it off the swap lock.
	warmMu      sync.Mutex
	warm        map[warmKey]*warmEntry
	compactBusy atomic.Bool // one background compaction at a time

	nIdentify   atomic.Int64
	nRules      atomic.Int64
	nMine       atomic.Int64
	nSwap       atomic.Int64
	nFragReuse  atomic.Int64 // mine jobs that ran on snapshot fragments
	nRemoteMine atomic.Int64 // mine jobs submitted to the worker fleet
	nFleetFall  atomic.Int64 // fleet jobs that fell back to in-process
	nMineRetry  atomic.Int64 // fleet jobs that needed more than one attempt

	reqSeq       atomic.Uint64 // request IDs for the recovery middleware
	nShedFull    atomic.Int64  // 429s: admission queue full on arrival
	nShedTimeout atomic.Int64  // 429s: queue wait exceeded QueueTimeout
	nDeadline    atomic.Int64  // identify requests past their deadline
	nClientGone  atomic.Int64  // identify requests whose client vanished while queued
	nCancelReq   atomic.Int64  // DELETE /v1/jobs cancellations delivered
	nMemRejects  atomic.Int64  // mine jobs rejected at the soft watermark
	nCacheShrink atomic.Int64  // hard-watermark cache shrink events
	nPanics      atomic.Int64  // handler panics recovered to 500
	nJobPanics   atomic.Int64  // mine-job panics recovered to failed jobs

	nDeltaBatches    atomic.Int64 // delta batches applied
	nDeltaOps        atomic.Int64 // delta ops applied across all batches
	nDeltaRejects    atomic.Int64 // delta batches refused (400 or 409)
	nRuleCarried     atomic.Int64 // match-set cache entries carried across deltas
	nRuleInvalidated atomic.Int64 // match-set cache entries dropped by deltas
	nWarmMineHits    atomic.Int64 // mine jobs answered from a carried result
	nCompactions     atomic.Int64 // overlay compactions installed
	nCompactAborts   atomic.Int64 // compactions abandoned (raced swap or error)
}

// New returns a Server with no snapshot installed; handlers answer 503
// until LoadSnapshot succeeds.
func New(cfg Config) *Server {
	cfg = cfg.defaults()
	s := &Server{
		cfg:      cfg,
		pool:     NewPool(cfg.PoolSize),
		cache:    NewCache(cfg.CacheCap),
		mineCtx:  NewMineContextCache(cfg.MineCacheCap),
		mineGate: mine.NewGate(cfg.mineProcs()),
		minePool: newMinePool(2),
		batch:    NewBatcher[*RuleEval](cfg.BatchWindow),
		jobs:     NewJobs(),
		start:    time.Now(),
	}
	if len(cfg.MineWorkers) > 0 && cfg.FleetBreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.FleetBreakerThreshold, cfg.FleetBreakerCooldown)
	}
	if cfg.MaxQueue >= 0 {
		s.admit = newAdmitter(cfg.PoolSize, cfg.MaxQueue, cfg.QueueTimeout)
	}
	if cfg.MemLimitBytes > 0 {
		s.mem = newMemWatch(cfg.MemLimitBytes)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Snapshot returns the currently served snapshot, or nil before the first
// LoadSnapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Generation returns the current snapshot generation (0 before the first
// load). Each swap increments it, which invalidates all cache keys.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// LoadSnapshot builds and atomically installs serving state for graph g,
// predicate pred and rule set rules (which may be empty). It freezes g,
// partitions it, classifies centers under the LCWA, purges the cache, and
// bumps the generation. In-flight requests finish on the old snapshot.
func (s *Server) LoadSnapshot(g *graph.Graph, pred core.Predicate, rules []*core.Rule) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	_, err := s.loadLocked(g, pred, rules)
	return err
}

// loadLocked is LoadSnapshot with s.swapMu already held. It returns the
// generation it installed, so callers can report their own swap rather
// than whatever generation is current by the time they respond.
func (s *Server) loadLocked(g *graph.Graph, pred core.Predicate, rules []*core.Rule) (uint64, error) {
	if g == nil {
		return 0, fmt.Errorf("serve: nil graph")
	}
	snap, err := BuildSnapshot(g, pred, rules, s.cfg)
	if err != nil {
		return 0, err
	}
	prev := s.snap.Load()
	snap.Gen = s.gen.Add(1)
	// Durability barrier: a full swap (load, rules install, compaction)
	// checkpoints a snapshot file and rotates the WAL before the new
	// generation is published — never after, so no served generation can be
	// lost to a crash.
	if err := s.persistCheckpoint(snap); err != nil {
		s.gen.Store(snap.Gen - 1)
		return 0, err
	}
	s.snap.Store(snap)
	// Warm mine results depend only on the graph and mining parameters, not
	// on the served rule set: a rules-only swap carries them forward, a new
	// graph drops them.
	if prev != nil && prev.G == g {
		s.warmCarry(prev.Gen, snap.Gen, -1)
	} else {
		s.warmPurge()
	}
	s.cache.Purge()
	// Mine contexts are keyed by generation, so old entries could never be
	// served again; purging reclaims their fragment memory eagerly — and
	// the accumulator pool with them, since parked worker sets bind to
	// those contexts' fragments.
	s.mineCtx.Purge()
	s.minePool.purge()
	s.nSwap.Add(1)
	return snap.Gen, nil
}

// SwapRules hot-swaps the rule set, keeping the current graph, and returns
// the installed generation. When rules is non-empty its predicate replaces
// the snapshot's; an empty set keeps the old predicate. Fragments are
// rebuilt (the partition radius depends on the rule set) and the match-set
// cache is invalidated.
func (s *Server) SwapRules(rules []*core.Rule) (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	snap := s.snap.Load()
	if snap == nil {
		return 0, fmt.Errorf("serve: no snapshot loaded")
	}
	pred := snap.Pred
	if len(rules) > 0 {
		pred = rules[0].Pred
	}
	return s.loadLocked(snap.G, pred, rules)
}

// installIfCurrent installs rules for pred only if the served graph is
// still expectG, checked under the swap lock — a mine job must not revert
// a graph that was swapped while it ran. It returns the installed
// generation.
func (s *Server) installIfCurrent(expectG *graph.Graph, pred core.Predicate, rules []*core.Rule) (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.snap.Load()
	if cur == nil || cur.G != expectG {
		return 0, fmt.Errorf("serve: graph swapped during mine; not installing")
	}
	return s.loadLocked(expectG, pred, rules)
}

// Shutdown stops accepting work, cancels every running mine job through
// the job-context plumbing, and waits for them to drain, up to ctx's
// deadline. Canceled jobs finish in the canceled terminal state — the
// drain is active, not a hope that jobs finish on their own. Handlers
// answer 503 after Shutdown begins.
func (s *Server) Shutdown(ctx context.Context) error {
	// closed flips under the swap lock so it serializes with StartMine's
	// closed-check + jobWG.Add: no job can register after the drain begins.
	s.swapMu.Lock()
	s.closed.Store(true)
	s.swapMu.Unlock()
	// Every job context is a child of baseCtx; canceling it reaches each
	// run's per-superstep checks (and unwedges fleet exchanges in flight).
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// With the drain over (or abandoned) no delta can append: flush the WAL
	// tail to durable storage and release the file.
	if p := s.persist; p != nil {
		if cerr := p.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// identifyOne evaluates one rule of the snapshot through the cache and the
// batcher. It reports whether the evaluation was served from cache and
// whether this call coalesced onto a concurrent identical one.
func (s *Server) identifyOne(snap *Snapshot, sr *ServedRule) (ev *RuleEval, cached, coalesced bool, err error) {
	key := fmt.Sprintf("g%d|%s", snap.Gen, sr.Key)
	if ev, ok := s.cache.Get(key); ok {
		return ev, true, false, nil
	}
	ev, coalesced, err = s.batch.Do(key, func() (*RuleEval, error) {
		// Re-check as the leader: a previous leader may have populated the
		// cache between this caller's Get miss and its Do entry.
		if ev, ok := s.cache.Get(key); ok {
			return ev, nil
		}
		ev := snap.EvalRule(sr, s.pool)
		s.cache.Put(key, ev)
		return ev, nil
	})
	return ev, false, coalesced, err
}
