package serve

import (
	"context"
	"errors"
	"runtime/metrics"
	"sync"
	"time"
)

// This file is the server's overload front door: a bounded admission queue
// ahead of the identify pool, and a heap watermark that degrades service
// before the process runs out of memory. The ladder, in order of pressure:
// admit (a running slot is free) → queue (bounded wait for one) → shed
// (429 once the queue is full or the wait exceeds its budget) → degrade
// (above the soft heap watermark new mine jobs are rejected; above the hard
// watermark the match-set and mine-context caches are shrunk). Shedding
// early and cheaply is what keeps the latency of *admitted* requests
// bounded when offered load exceeds capacity — the load harness
// (cmd/gparload -overload) measures exactly that.

// Shed verdicts, distinguished so the handler can phrase the 429 and the
// counters can tell queue-full (instant reject) from queue-timeout (waited,
// then gave up).
var (
	errQueueFull    = errors.New("serve: admission queue full")
	errQueueTimeout = errors.New("serve: admission queue wait exceeded budget")
)

// admitter is the bounded admission queue: at most cap(slots) requests
// evaluate concurrently, at most maxQueue more wait for a slot, and no
// request waits longer than timeout. Everything beyond that is shed
// immediately — a full queue means the server is already running at
// capacity plus a timeout's worth of backlog, so the honest answer is 429
// now, not 200 in ten seconds.
type admitter struct {
	slots    chan struct{}
	queued   int64 // guarded by mu
	mu       sync.Mutex
	maxQueue int
	timeout  time.Duration
}

func newAdmitter(running, maxQueue int, timeout time.Duration) *admitter {
	if running < 1 {
		running = 1
	}
	return &admitter{
		slots:    make(chan struct{}, running),
		maxQueue: maxQueue,
		timeout:  timeout,
	}
}

// admit blocks until a running slot is free, the queue budget is exceeded
// (errQueueFull / errQueueTimeout), or ctx is done (its error). On success
// the caller must invoke release exactly once when its evaluation finishes.
func (a *admitter) admit(ctx context.Context) (release func(), err error) {
	release = func() { <-a.slots }
	select {
	case a.slots <- struct{}{}:
		return release, nil
	default:
	}
	a.mu.Lock()
	if a.queued >= int64(a.maxQueue) {
		a.mu.Unlock()
		return nil, errQueueFull
	}
	a.queued++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return release, nil
	case <-t.C:
		return nil, errQueueTimeout
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// depth is the current queue depth — the saturation signal /stats exposes:
// a persistently non-zero depth means shedding is imminent.
func (a *admitter) depth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// inUse is how many admitted requests are currently evaluating.
func (a *admitter) inUse() int { return len(a.slots) }

// Memory watermark levels. Soft (≥ 90% of the limit) stops admitting new
// mine jobs — mining is the workload whose working set is both large and
// deferrable. Hard (≥ the limit) additionally sheds cache memory: the
// match-set and mine-context caches are shrunk to half on every identify
// that observes the level. Identify traffic itself is never memory-shed —
// its per-request footprint is small and bounded by the pool.
const (
	memOK   = 0
	memSoft = 1
	memHard = 2
)

// heapBytes reads the live heap from runtime/metrics — the allocator's own
// view, no stop-the-world, cheap enough to sample on request paths (and
// cached by memWatch regardless).
func heapBytes() uint64 {
	s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s)
	return s[0].Value.Uint64()
}

// memWatch samples the heap against a configured limit, caching the reading
// briefly so a request burst costs one metrics.Read, not thousands. sample
// is a test hook; production uses heapBytes.
type memWatch struct {
	limit  uint64
	sample func() uint64

	mu     sync.Mutex
	lastAt time.Time
	last   uint64
}

const memSampleEvery = 250 * time.Millisecond

func newMemWatch(limit uint64) *memWatch {
	return &memWatch{limit: limit, sample: heapBytes}
}

// heap returns the (cached) live heap size.
func (m *memWatch) heap() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.lastAt) >= memSampleEvery {
		m.last = m.sample()
		m.lastAt = now
	}
	return m.last
}

// level maps the current heap to the watermark ladder.
func (m *memWatch) level() int {
	h := m.heap()
	switch {
	case h >= m.limit:
		return memHard
	case h*10 >= m.limit*9: // ≥ 90%, in integer arithmetic
		return memSoft
	default:
		return memOK
	}
}

// levelName renders a watermark level for /stats.
func levelName(l int) string {
	switch l {
	case memSoft:
		return "soft"
	case memHard:
		return "hard"
	default:
		return "ok"
	}
}
