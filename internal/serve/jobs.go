package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/mine/remote"
)

// MineParams is the body of POST /v1/mine: a DMine run over the resident
// graph. Label names must already exist in the graph (they are resolved
// with the read-only Symbols.Lookup, never interned).
//
// Workers = 0 inherits mine.Options' default — one worker per core
// (runtime.GOMAXPROCS) — and the server's shared mine.Gate caps how many
// of those workers across all jobs execute at once (Config.MineShare), so
// an unconfigured mine job uses its CPU budget, not the whole machine.
// Mining results are byte-identical across worker counts — including when
// mine.Options.EmbedCap truncates dense neighborhoods, since embeddings
// are enumerated in a canonical global-ID order — so Workers only affects
// the fragment layout's granularity, never the answer.
type MineParams struct {
	XLabel    string  `json:"xLabel"`
	EdgeLabel string  `json:"edgeLabel"`
	YLabel    string  `json:"yLabel"`
	K         int     `json:"k,omitempty"`
	Sigma     int     `json:"sigma,omitempty"`
	D         int     `json:"d,omitempty"`
	Lambda    float64 `json:"lambda,omitempty"`
	MaxEdges  int     `json:"maxEdges,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Cap       int     `json:"cap,omitempty"`
	// Install swaps the mined top-k in as the served rule set on success,
	// bumping the generation and invalidating the match-set cache.
	Install bool `json:"install,omitempty"`
	// TimeoutMs caps the job's wall-clock run time; past it the run is
	// canceled at its next BSP superstep boundary and the job finishes in
	// the deadline_exceeded terminal state. 0 means no deadline.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// JobStatus is the lifecycle of a mine job.
type JobStatus string

const (
	JobPending  JobStatus = "pending"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"          // DELETE /v1/jobs/{id} or shutdown drain
	JobDeadline JobStatus = "deadline_exceeded" // the job's timeoutMs expired mid-run
)

// terminal reports whether a status is final: terminal jobs are evictable
// from the registry and cannot be canceled.
func terminal(st JobStatus) bool {
	switch st {
	case JobDone, JobFailed, JobCanceled, JobDeadline:
		return true
	}
	return false
}

// errMemPressure rejects new mine jobs at the soft memory watermark; the
// handler maps it to 503.
var errMemPressure = errors.New("serve: heap above memory watermark; not accepting mine jobs")

// Job is one asynchronous DMine run. Fields are snapshots; the registry
// returns copies, so readers never observe a job mid-update.
type Job struct {
	ID       string     `json:"id"`
	Status   JobStatus  `json:"status"`
	Params   MineParams `json:"params"`
	Created  time.Time  `json:"created"`
	Started  time.Time  `json:"started,omitzero"`
	Finished time.Time  `json:"finished,omitzero"`
	Error    string     `json:"error,omitempty"`

	Rounds    int      `json:"rounds,omitempty"`
	Generated int      `json:"generated,omitempty"`
	Kept      int      `json:"kept,omitempty"`
	F         float64  `json:"f,omitempty"`
	RuleKeys  []string `json:"ruleKeys,omitempty"`
	Installed bool     `json:"installed,omitempty"`
	// Generation is the snapshot generation after install (0 otherwise).
	Generation uint64 `json:"generation,omitempty"`
	// ContextCached reports whether the job reused a cached mine context
	// (the partitioned, frozen fragments), skipping the partition+freeze
	// preamble. Results are byte-identical either way.
	ContextCached bool `json:"contextCached,omitempty"`
	// FragmentsReused reports whether the job's context shares the serving
	// snapshot's partition fragments outright (the job's (xLabel, d, n)
	// matched the snapshot layout): zero partition and zero Freeze work,
	// even on the first job of a generation. Results are byte-identical
	// either way.
	FragmentsReused bool `json:"fragmentsReused,omitempty"`
	// Distributed reports whether the job mined on the configured worker
	// fleet (Config.MineWorkers) rather than in-process. Results are
	// byte-identical either way.
	Distributed bool `json:"distributed,omitempty"`
	// FleetFallback, when non-empty, is why a configured fleet was not used
	// for this job: a pinned worker count that does not match the fleet
	// size, the fleet circuit breaker open, or the fleet failing every
	// retry attempt. The job then mined in-process — results are
	// byte-identical, but the fallback is always recorded so a sick fleet
	// cannot be masked.
	FleetFallback string `json:"fleetFallback,omitempty"`
	// Attempts is how many fleet attempts (dial + mine) this job made
	// before succeeding or falling back (0 for jobs that never tried the
	// fleet).
	Attempts int `json:"attempts,omitempty"`
	// ServedGeneration is the snapshot generation the job was admitted
	// against — the graph it mined.
	ServedGeneration uint64 `json:"servedGeneration,omitempty"`
	// WarmStarted reports that the job was answered from a carried mine
	// result of an earlier generation whose parameters matched and whose
	// reach no intervening delta touched: no mining ran at all. The result
	// is byte-identical to a fresh run by the carry invariant (delta.go).
	WarmStarted bool `json:"warmStarted,omitempty"`

	// cancel stops the job's run context. It is installed at creation (so a
	// DELETE can never race an unregistered job) and cleared when the job
	// reaches a terminal state.
	cancel context.CancelFunc
}

// maxJobs bounds the registry: when exceeded, the oldest finished jobs are
// evicted (running and pending jobs are never dropped), so a daemon that
// re-mines periodically does not grow without bound.
const maxJobs = 128

// Jobs is the in-memory job registry.
type Jobs struct {
	mu  sync.Mutex
	m   map[string]*Job
	seq int
}

// NewJobs returns an empty registry.
func NewJobs() *Jobs {
	return &Jobs{m: make(map[string]*Job)}
}

func (j *Jobs) create(p MineParams, servedGen uint64, cancel context.CancelFunc) Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	job := &Job{
		ID:               fmt.Sprintf("job-%d", j.seq),
		Status:           JobPending,
		Params:           p,
		Created:          time.Now(),
		ServedGeneration: servedGen,
		cancel:           cancel,
	}
	j.m[job.ID] = job
	for len(j.m) > maxJobs {
		var oldest *Job
		for _, cand := range j.m {
			if !terminal(cand.Status) {
				continue
			}
			if oldest == nil || cand.Created.Before(oldest.Created) {
				oldest = cand
			}
		}
		if oldest == nil {
			break // everything is still in flight; keep them all
		}
		delete(j.m, oldest.ID)
	}
	return *job
}

// cancelJob delivers a cancellation to a live job. It returns the job's
// snapshot, whether the id exists, and whether a cancel was actually
// signaled (false for jobs already in a terminal state). The job does not
// flip to canceled here — the running goroutine observes the context at
// its next superstep boundary and records the terminal state itself, so
// status transitions stay single-writer.
func (j *Jobs) cancelJob(id string) (Job, bool, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.m[id]
	if !ok {
		return Job{}, false, false
	}
	if terminal(job.Status) || job.cancel == nil {
		return *job, true, false
	}
	job.cancel()
	return *job, true, true
}

func (j *Jobs) update(id string, fn func(*Job)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if job, ok := j.m[id]; ok {
		fn(job)
	}
}

// Get returns a copy of the job, if it exists.
func (j *Jobs) Get(id string) (Job, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.m[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// List returns copies of all jobs, newest first.
func (j *Jobs) List() []Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Job, 0, len(j.m))
	for _, job := range j.m {
		out = append(out, *job)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	return out
}

// Counts returns per-status totals for /stats.
func (j *Jobs) Counts() map[JobStatus]int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[JobStatus]int, 4)
	for _, job := range j.m {
		out[job.Status]++
	}
	return out
}

// StartMine validates params against the current snapshot and launches the
// DMine run in the background, returning the pending job. The whole
// admission runs under the swap lock: Symbols.Lookup must not race a
// concurrent Intern (PUT /v1/rules), and the closed-check + jobWG.Add must
// serialize with Shutdown so no job registers after the drain begins. At
// the soft memory watermark new jobs are rejected outright (errMemPressure)
// — mining is the deferrable, large-working-set workload, so it sheds
// first.
func (s *Server) StartMine(p MineParams) (Job, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed.Load() {
		return Job{}, fmt.Errorf("serve: server is shutting down")
	}
	if s.mem != nil && s.mem.level() >= memSoft {
		s.nMemRejects.Add(1)
		return Job{}, errMemPressure
	}
	snap := s.snap.Load()
	if snap == nil {
		return Job{}, fmt.Errorf("serve: no snapshot loaded")
	}
	pred, err := lookupPred(snap.G.Symbols(), p)
	if err != nil {
		return Job{}, err
	}
	// The job context parents on baseCtx (so Shutdown cancels every job) and
	// is registered with the job before the goroutine launches, so a DELETE
	// arriving immediately after the 202 always finds something to cancel.
	var jobCtx context.Context
	var cancel context.CancelFunc
	if p.TimeoutMs > 0 {
		jobCtx, cancel = context.WithTimeout(s.baseCtx, time.Duration(p.TimeoutMs)*time.Millisecond)
	} else {
		jobCtx, cancel = context.WithCancel(s.baseCtx)
	}
	job := s.jobs.create(p, snap.Gen, cancel)
	s.jobWG.Add(1)
	go s.runMine(job.ID, jobCtx, cancel, snap, pred, p)
	return job, nil
}

func (s *Server) runMine(id string, jobCtx context.Context, cancel context.CancelFunc, snap *Snapshot, pred core.Predicate, p MineParams) {
	defer s.jobWG.Done()
	defer cancel()
	defer func() {
		// A panicking mine job must not take the daemon down (or leak its
		// jobWG slot): record it as a failed job and keep serving.
		if r := recover(); r != nil {
			s.nJobPanics.Add(1)
			s.jobs.update(id, func(j *Job) {
				j.Finished = time.Now()
				j.Status = JobFailed
				j.Error = fmt.Sprintf("panic: %v", r)
				j.cancel = nil
			})
		}
	}()
	s.jobs.update(id, func(j *Job) {
		j.Status = JobRunning
		j.Started = time.Now()
	})
	// Defaults are resolved here (not left to DMine) because the resolved
	// (D, N) pair is part of the context-cache key. The shared gate caps
	// how much of the machine this job's workers (and every other job's)
	// may occupy at once.
	opts := mine.Options{
		K: p.K, Sigma: p.Sigma, D: p.D, Lambda: p.Lambda, N: p.Workers,
		MaxEdges: p.MaxEdges, MaxCandidatesPerRound: p.Cap,
	}.WithOptimizations().Defaults()
	opts.Gate = s.mineGate
	opts.Ctx = jobCtx
	if n := len(s.cfg.MineWorkers); n > 0 && p.Workers == 0 {
		// A fleet job runs one worker service per fragment, so the fleet size
		// sets the partition granularity unless the request pinned a count.
		// Results are byte-identical across worker counts either way.
		opts.N = n
	}
	var res *mine.Result
	var mineErr error
	var ctx *mine.Context
	ctxHit := false
	fragsReused := false
	distributed := false
	fleetFallback := ""
	attempts := 0
	warmStarted := false
	if wres := s.warmGet(pred, opts, snap.Gen); wres != nil {
		// A completed result with these exact parameters was carried to this
		// generation — every delta since it ran stayed outside its reach, so
		// re-mining would reproduce it byte for byte. Skip even the context.
		res = wres
		warmStarted = true
		s.nWarmMineHits.Add(1)
	}
	key := MineCtxKey{Gen: snap.Gen, XLabel: pred.XLabel, D: opts.D, N: opts.N}
	if !warmStarted {
		ctx, ctxHit = s.mineCtx.GetOrBuild(key, func() *mine.Context {
			// When the job's (xLabel, d, n) matches the serving snapshot's own
			// partition layout, the snapshot's frozen fragments serve the mine
			// job as-is: no partition, no Freeze, not even on a cold cache.
			// Delta-derived snapshots are excluded: their "fragments" are
			// identity chunks over the shared overlay graph, not the real
			// partition layout ContextFromFragments requires.
			if !snap.fromDelta && pred.XLabel == snap.Pred.XLabel && opts.D == snap.D && opts.N == len(snap.frags) {
				return mine.ContextFromFragments(snap.G, pred.XLabel, opts.D, opts.N, snap.fragmentList())
			}
			return mine.NewContext(snap.G, pred.XLabel, opts)
		})
		if s.gen.Load() != key.Gen {
			// A swap raced the build. Its Purge may have run before this key
			// was inserted, and no future job keys this generation, so the
			// entry would only pin the retired snapshot's fragments. This run
			// still mines on ctx — the snapshot it was admitted against.
			s.mineCtx.Discard(key)
		}
		fragsReused = ctx.Borrowed()
		if fragsReused {
			s.nFragReuse.Add(1)
		}
	}
	if n := len(s.cfg.MineWorkers); n > 0 && !warmStarted {
		switch {
		case opts.N != n:
			fleetFallback = fmt.Sprintf("job pinned %d workers but the fleet has %d", opts.N, n)
		case !s.fleetAllow():
			fleetFallback = "fleet circuit breaker open; mined in-process"
		default:
			// Each attempt re-dials the whole fleet, health-probes every
			// worker, and re-runs the job from scratch; workers hold no
			// cross-job state and Σ only installs on success, so a retried
			// job is byte-identical to a clean one. The stop hook drains the
			// retry loop early on shutdown instead of sleeping out backoffs.
			var rep remote.JobReport
			res, rep, mineErr = remote.MineFleet(
				ctx, pred, opts, s.cfg.MineWorkers,
				remote.DialOptions{StepTimeout: s.cfg.MineStepTimeout},
				s.retryPolicy(),
				func() bool { return s.closed.Load() || jobCtx.Err() != nil },
			)
			attempts = rep.Attempts
			switch {
			case mineErr == nil:
				s.fleetResult(true)
				distributed = true
				s.nRemoteMine.Add(1)
				if rep.Attempts > 1 {
					s.nMineRetry.Add(1)
				}
			case isCanceled(mineErr):
				// The job itself was canceled or timed out — not a fleet
				// failure: no breaker strike, and no in-process fallback
				// (it would only be canceled again).
			default:
				// Every attempt failed (or shutdown abandoned the retry
				// loop). Fall back in-process as a *recorded* last resort:
				// the breaker trips on repeated failures so a sick fleet is
				// skipped — and surfaced — rather than silently re-mined
				// around forever.
				s.fleetResult(false)
				fleetFallback = fmt.Sprintf("fleet failed after %d attempt(s): %v", rep.Attempts, mineErr)
				res, mineErr = nil, nil
			}
		}
		if fleetFallback != "" {
			s.nFleetFall.Add(1)
		}
	}
	if res == nil && mineErr == nil {
		// Mine in-process on a pooled accumulator: a recycled worker set
		// brings its grown round arenas and memoized probes from previous
		// jobs over this context. Parked again afterwards for the next job —
		// unless a swap purged the pool mid-run or the LRU evicted this
		// context, in which case parking would pin a context no future job
		// can be handed. A canceled run parks too: the accumulator resets
		// every per-run structure on its next acquire, byte-identically to a
		// fresh one (pinned by the mine package's parity tests).
		sh, poolEpoch := s.minePool.acquire(ctx)
		res, mineErr = sh.DMine(pred, opts)
		s.minePool.park(sh, poolEpoch, s.mineCtx.Contains(key))
	}
	if mineErr != nil {
		status, msg := JobFailed, mineErr.Error()
		var ce *mine.CanceledError
		if errors.As(mineErr, &ce) {
			if errors.Is(ce.Err, context.DeadlineExceeded) {
				status = JobDeadline
			} else {
				status = JobCanceled
			}
		}
		s.jobs.update(id, func(j *Job) {
			j.Finished = time.Now()
			j.Status = status
			j.Error = msg
			j.ContextCached = ctxHit
			j.FragmentsReused = fragsReused
			j.Distributed = distributed
			j.FleetFallback = fleetFallback
			j.Attempts = attempts
			j.cancel = nil
		})
		return
	}

	if !warmStarted {
		// Record the completed result for warm starts; stored before any
		// install so the install's generation bump retargets it along with
		// every other live entry.
		s.warmPut(pred, opts, snap.Gen, res)
	}
	rules := make([]*core.Rule, 0, len(res.TopK))
	keys := make([]string, 0, len(res.TopK))
	// Rule.Key renders label names; serialize against concurrent interning
	// (PUT /v1/rules) with the swap lock.
	s.swapMu.Lock()
	for _, mm := range res.TopK {
		rules = append(rules, mm.Rule)
		keys = append(keys, mm.Rule.Key())
	}
	s.swapMu.Unlock()
	installed := false
	var gen uint64
	var installErr error
	if p.Install && len(rules) > 0 && !s.closed.Load() {
		// Install against the graph the mine ran on, verified under the
		// swap lock; a concurrent graph swap wins and this install fails.
		gen, installErr = s.installIfCurrent(snap.G, pred, rules)
		installed = installErr == nil
	}
	s.jobs.update(id, func(j *Job) {
		j.Finished = time.Now()
		j.Rounds = res.Rounds
		j.Generated = res.Generated
		j.Kept = res.Kept
		j.F = res.F
		j.RuleKeys = keys
		j.Installed = installed
		j.Generation = gen
		j.ContextCached = ctxHit
		j.FragmentsReused = fragsReused
		j.WarmStarted = warmStarted
		j.Distributed = distributed
		j.FleetFallback = fleetFallback
		j.Attempts = attempts
		if installErr != nil {
			j.Status = JobFailed
			j.Error = installErr.Error()
		} else {
			j.Status = JobDone
		}
		j.cancel = nil
	})
}

// isCanceled reports whether err is (or wraps) a mining cancellation.
func isCanceled(err error) bool {
	var ce *mine.CanceledError
	return errors.As(err, &ce)
}

// lookupPred resolves the mine predicate's label names without interning.
func lookupPred(syms *graph.Symbols, p MineParams) (core.Predicate, error) {
	var pred core.Predicate
	for _, f := range []struct {
		name string
		dst  *graph.Label
	}{
		{p.XLabel, &pred.XLabel},
		{p.EdgeLabel, &pred.EdgeLabel},
		{p.YLabel, &pred.YLabel},
	} {
		if f.name == "" {
			return pred, fmt.Errorf("serve: mine predicate has empty label")
		}
		l := syms.Lookup(f.name)
		if l == graph.NoLabel {
			return pred, fmt.Errorf("serve: label %q does not occur in the graph", f.name)
		}
		*f.dst = l
	}
	return pred, nil
}
