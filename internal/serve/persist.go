// Persistence: the durability layer over snapshot files (internal/snapfile)
// and the delta WAL (wal.go). The invariant is that every generation change
// is durable before it is published: delta batches append a WAL record
// first, and every other swap (LoadSnapshot, SwapRules, a mine job's
// install, Compact) checkpoints a full snapshot file and rotates the WAL —
// all before s.snap.Store, rolling the generation back on failure, so a
// partial generation is never served and never recovered.
//
// On disk, a data directory holds:
//
//	snap-<gen16x>.gpsnap   full serving state at generation <gen>
//	wal-<gen16x>.wal       delta batches extending snapshot <gen>
//	*.corrupt              quarantined files — never deleted automatically
//	*.tmp                  in-flight snapshot writes (crash leftovers)
//
// Recovery (Server.Recover) loads the newest readable snapshot, replays
// the valid prefix of its WAL chain through the normal ApplyDelta path
// (same interning order, byte-identical state), re-checkpoints, and only
// then quarantines corrupt files and prunes obsolete ones — so a crash
// during recovery itself finds the disk no worse than before.

package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpar/internal/core"
	"gpar/internal/diskfault"
	"gpar/internal/snapfile"
)

// SyncPolicy selects when WAL appends reach durable storage.
type SyncPolicy string

// The WAL sync policies: fsync every record (no accepted batch is ever
// lost), fsync on a timer (bounded loss window, much cheaper), or never
// fsync explicitly (the OS decides; crash loss is unbounded but replay is
// still exact up to the torn tail).
const (
	SyncAlways   SyncPolicy = "always"
	SyncInterval SyncPolicy = "interval"
	SyncNone     SyncPolicy = "none"
)

// PersistOptions configures on-disk durability for a Server.
type PersistOptions struct {
	// Dir is the data directory; created if missing.
	Dir string
	// FS is the filesystem to persist through. Nil means the real one;
	// tests inject a diskfault.MemFS.
	FS diskfault.FS
	// Sync is the WAL sync policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval. Default 100ms.
	SyncInterval time.Duration
	// Retain is how many checkpointed snapshots (with their WALs) to keep.
	// Default 2; minimum 1.
	Retain int
}

// RecoveryError is the typed error for a data directory that holds
// snapshots but none of them is readable: the server refuses to start
// fresh over data it cannot read — no silent data loss.
type RecoveryError struct {
	Dir         string
	Quarantined []string
	Msg         string
}

// Error implements error.
func (e *RecoveryError) Error() string {
	return fmt.Sprintf("serve: recovery of %s failed: %s (quarantined: %s)",
		e.Dir, e.Msg, strings.Join(e.Quarantined, ", "))
}

// RecoveryReport describes what Recover did.
type RecoveryReport struct {
	// Recovered is false when the data directory held no snapshot: the
	// caller should load initial state the ordinary way.
	Recovered bool
	// Generation is the recovered serving generation.
	Generation uint64
	// Snapshot is the file name of the snapshot that was loaded.
	Snapshot string
	// Replayed counts WAL records applied on top of the snapshot.
	Replayed int
	// Truncated counts WAL records dropped (corrupt tail or a generation
	// gap behind a quarantined file).
	Truncated int
	// Quarantined lists files renamed to *.corrupt.
	Quarantined []string
}

// PersistenceStats is the /stats view of the durability layer.
type PersistenceStats struct {
	Dir                      string `json:"dir"`
	FsyncPolicy              string `json:"fsyncPolicy"`
	SnapshotLoads            int64  `json:"snapshotLoads"`
	WALRecords               int64  `json:"walRecords"`
	WALReplayed              int64  `json:"walReplayed"`
	WALTruncated             int64  `json:"walTruncated"`
	Quarantines              int64  `json:"quarantines"`
	LastCheckpointGeneration uint64 `json:"lastCheckpointGeneration"`
}

// persister owns the server's durability state.
type persister struct {
	fs       diskfault.FS
	dir      string
	policy   SyncPolicy
	interval time.Duration
	retain   int

	// walMu orders WAL file operations (append under swapMu, rotation
	// under swapMu, timed flushes from the flusher goroutine, close).
	walMu    sync.Mutex
	wal      *walWriter
	walDirty bool

	// suppress, guarded by the server's swapMu, turns checkpoint and
	// append hooks off while Recover replays history through the normal
	// swap paths.
	suppress bool

	stop      chan struct{}
	flusherD  chan struct{}
	closeOnce sync.Once
	closeErr  error

	nSnapLoads    atomic.Int64
	nWalRecords   atomic.Int64
	nWalReplayed  atomic.Int64
	nWalTruncated atomic.Int64
	nQuarantines  atomic.Int64
	lastCkpt      atomic.Uint64
}

func (p *persister) snapName(gen uint64) string { return fmt.Sprintf("snap-%016x.gpsnap", gen) }
func (p *persister) walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.wal", gen) }

// parseGen extracts the generation from a snap-/wal- file name, reporting
// whether name has the given prefix+suffix shape at all.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var gen uint64
	if _, err := fmt.Sscanf(mid, "%016x", &gen); err != nil || len(mid) != 16 {
		return 0, false
	}
	return gen, true
}

// EnablePersistence arms the durability layer: subsequent snapshot swaps
// checkpoint to opts.Dir and delta batches append to the WAL before they
// are published. Call it before LoadSnapshot (the usual boot order is
// EnablePersistence → Recover → LoadSnapshot if nothing was recovered);
// if a snapshot is already installed it is checkpointed immediately.
func (s *Server) EnablePersistence(opts PersistOptions) error {
	if opts.Dir == "" {
		return fmt.Errorf("serve: persistence requires a data directory")
	}
	if opts.FS == nil {
		opts.FS = diskfault.OS()
	}
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	switch opts.Sync {
	case SyncAlways, SyncInterval, SyncNone:
	default:
		return fmt.Errorf("serve: unknown WAL sync policy %q", opts.Sync)
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	if opts.Retain < 1 {
		opts.Retain = 2
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return fmt.Errorf("serve: create data dir: %w", err)
	}
	p := &persister{
		fs:       opts.FS,
		dir:      opts.Dir,
		policy:   opts.Sync,
		interval: opts.SyncInterval,
		retain:   opts.Retain,
		stop:     make(chan struct{}),
		flusherD: make(chan struct{}),
	}

	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.persist != nil {
		return fmt.Errorf("serve: persistence already enabled")
	}
	s.persist = p
	if snap := s.snap.Load(); snap != nil {
		if err := p.checkpoint(snap); err != nil {
			s.persist = nil
			return err
		}
	}
	if p.policy == SyncInterval {
		go p.flusher()
	} else {
		close(p.flusherD)
	}
	return nil
}

// flusher is the SyncInterval background loop: it fsyncs the WAL whenever
// records were appended since the last flush.
func (p *persister) flusher() {
	defer close(p.flusherD)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.walMu.Lock()
			if p.walDirty && p.wal != nil {
				// A failed timed flush leaves walDirty set, so the next
				// tick (or close) retries.
				if p.wal.sync() == nil {
					p.walDirty = false
				}
			}
			p.walMu.Unlock()
		}
	}
}

// close stops the flusher and syncs + closes the WAL. Idempotent.
func (p *persister) close() error {
	p.closeOnce.Do(func() {
		close(p.stop)
		<-p.flusherD
		p.walMu.Lock()
		defer p.walMu.Unlock()
		if p.wal != nil {
			p.closeErr = p.wal.close()
			p.wal = nil
		}
	})
	return p.closeErr
}

// appendDelta makes one accepted delta batch durable per the sync policy.
// Called under swapMu before the new generation is published; an error
// aborts the publish.
func (p *persister) appendDelta(gen uint64, req DeltaRequest) error {
	p.walMu.Lock()
	defer p.walMu.Unlock()
	if p.wal == nil {
		return fmt.Errorf("serve: wal not open (previous checkpoint failed?)")
	}
	if err := p.wal.append(gen, req, p.policy == SyncAlways); err != nil {
		return err
	}
	if p.policy != SyncAlways {
		p.walDirty = true
	}
	p.nWalRecords.Add(1)
	return nil
}

// checkpoint writes the full serving state as a snapshot file and rotates
// the WAL to start from it. Called under swapMu before the snapshot is
// published; an error aborts the publish (and leaves the WAL closed, so
// subsequent deltas fail loudly instead of going un-logged).
func (p *persister) checkpoint(snap *Snapshot) error {
	rules := make([]*core.Rule, len(snap.Rules))
	for i, sr := range snap.Rules {
		rules[i] = sr.Rule
	}
	data := &snapfile.Data{Generation: snap.Gen, Graph: snap.G, Pred: snap.Pred, Rules: rules}
	if err := snapfile.Write(p.fs, filepath.Join(p.dir, p.snapName(snap.Gen)), data); err != nil {
		return err
	}
	p.walMu.Lock()
	defer p.walMu.Unlock()
	if p.wal != nil {
		if err := p.wal.close(); err != nil {
			p.wal = nil
			return err
		}
		p.wal = nil
	}
	w, err := createWAL(p.fs, filepath.Join(p.dir, p.walName(snap.Gen)), snap.Gen)
	if err != nil {
		return err
	}
	if err := p.fs.SyncDir(p.dir); err != nil {
		w.close()
		return err
	}
	p.wal = w
	p.walDirty = false
	p.lastCkpt.Store(snap.Gen)
	p.prune(snap.Gen)
	return nil
}

// prune removes snapshots beyond the retention window, WALs with no
// retained base, and stale temp files. Quarantined *.corrupt files are
// never touched. Best-effort: pruning failures leave garbage, not damage.
func (p *persister) prune(curGen uint64) {
	names, err := p.fs.ReadDir(p.dir)
	if err != nil {
		return
	}
	var snapGens []uint64
	for _, n := range names {
		if g, ok := parseGen(n, "snap-", ".gpsnap"); ok {
			snapGens = append(snapGens, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	keep := snapGens
	if len(keep) > p.retain {
		keep = keep[:p.retain]
	}
	oldest := curGen
	kept := make(map[uint64]bool, len(keep))
	for _, g := range keep {
		kept[g] = true
		if g < oldest {
			oldest = g
		}
	}
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".tmp"):
			p.fs.Remove(filepath.Join(p.dir, n))
		case strings.HasSuffix(n, ".corrupt"):
			// quarantined: operator territory
		default:
			if g, ok := parseGen(n, "snap-", ".gpsnap"); ok && !kept[g] {
				p.fs.Remove(filepath.Join(p.dir, n))
			}
			if g, ok := parseGen(n, "wal-", ".wal"); ok && g < oldest {
				p.fs.Remove(filepath.Join(p.dir, n))
			}
		}
	}
}

// quarantine renames a corrupt file out of the recovery path, preserving
// its bytes for forensics. Never deletes.
func (p *persister) quarantine(name string) string {
	from := filepath.Join(p.dir, name)
	to := from + ".corrupt"
	// A previous quarantine of the same name is itself evidence; keep it.
	for i := 1; ; i++ {
		if _, err := p.fs.OpenFile(to, os.O_RDONLY, 0); err != nil {
			break
		}
		to = fmt.Sprintf("%s.corrupt.%d", from, i)
	}
	if err := p.fs.Rename(from, to); err != nil {
		return ""
	}
	p.nQuarantines.Add(1)
	return filepath.Base(to)
}

// stats snapshots the persistence counters for /stats.
func (p *persister) stats() *PersistenceStats {
	return &PersistenceStats{
		Dir:                      p.dir,
		FsyncPolicy:              string(p.policy),
		SnapshotLoads:            p.nSnapLoads.Load(),
		WALRecords:               p.nWalRecords.Load(),
		WALReplayed:              p.nWalReplayed.Load(),
		WALTruncated:             p.nWalTruncated.Load(),
		Quarantines:              p.nQuarantines.Load(),
		LastCheckpointGeneration: p.lastCkpt.Load(),
	}
}

// persistCheckpoint is the swap-path hook: no-op without persistence or
// during recovery replay. Caller holds swapMu and has already assigned
// snap.Gen but not yet published snap.
func (s *Server) persistCheckpoint(snap *Snapshot) error {
	p := s.persist
	if p == nil || p.suppress {
		return nil
	}
	return p.checkpoint(snap)
}

// persistAppend is the delta-path hook: no-op without persistence or
// during recovery replay. Caller holds swapMu and has not yet published
// the new generation.
func (s *Server) persistAppend(gen uint64, req DeltaRequest) error {
	p := s.persist
	if p == nil || p.suppress {
		return nil
	}
	return p.appendDelta(gen, req)
}

// Recover restores serving state from the data directory: it loads the
// newest readable snapshot, replays the valid prefix of the WAL chain
// through the normal delta path, re-checkpoints the result, and only then
// quarantines corrupt files (renamed to *.corrupt, never deleted) and
// prunes obsolete ones. With no snapshot on disk it reports
// Recovered=false and the caller boots the ordinary way. A directory whose
// snapshots are all unreadable returns a *RecoveryError: the server will
// not silently start empty over data it cannot read.
func (s *Server) Recover() (*RecoveryReport, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	p := s.persist
	if p == nil {
		return nil, fmt.Errorf("serve: persistence not enabled")
	}
	if s.snap.Load() != nil {
		return nil, fmt.Errorf("serve: recover must run before a snapshot is loaded")
	}

	names, err := p.fs.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: list data dir: %w", err)
	}
	type snapCand struct {
		gen  uint64
		name string
	}
	var snaps []snapCand
	walsByBase := map[uint64]string{}
	for _, n := range names {
		if g, ok := parseGen(n, "snap-", ".gpsnap"); ok {
			snaps = append(snaps, snapCand{gen: g, name: n})
		}
		if g, ok := parseGen(n, "wal-", ".wal"); ok {
			walsByBase[g] = n
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].gen > snaps[j].gen })

	rep := &RecoveryReport{}
	var toQuarantine []string

	// Phase 1 (read-only): newest readable snapshot.
	var chosen *snapfile.Data
	for _, cand := range snaps {
		d, err := snapfile.Read(p.fs, filepath.Join(p.dir, cand.name))
		if err == nil {
			chosen = d
			rep.Snapshot = cand.name
			break
		}
		var fe *snapfile.FormatError
		if errors.As(err, &fe) {
			toQuarantine = append(toQuarantine, cand.name)
			continue
		}
		return nil, fmt.Errorf("serve: read snapshot %s: %w", cand.name, err)
	}
	if chosen == nil {
		if len(snaps) == 0 {
			if len(walsByBase) > 0 {
				return nil, &RecoveryError{Dir: p.dir, Msg: "WAL files present but no snapshot to replay them onto"}
			}
			return rep, nil // fresh directory
		}
		// Quarantine eagerly: there is no state to protect, and the typed
		// error should point at the renamed evidence.
		var q []string
		for _, n := range toQuarantine {
			if to := p.quarantine(n); to != "" {
				q = append(q, to)
			}
		}
		return nil, &RecoveryError{Dir: p.dir, Quarantined: q, Msg: fmt.Sprintf("all %d snapshots unreadable", len(snaps))}
	}

	// Phase 1b (read-only): the valid record prefix of the WAL chain.
	var pending []walRecord
	cur := chosen.Generation
	var bases []uint64
	for b := range walsByBase {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, b := range bases {
		if b < chosen.Generation {
			continue // superseded by the snapshot; prune deals with it
		}
		name := walsByBase[b]
		if b > cur {
			// The swap that would bridge this gap (its checkpoint) is gone
			// — likely quarantined above. Anything beyond is unreachable.
			rep.Truncated += countWALRecords(p.fs, filepath.Join(p.dir, name))
			toQuarantine = append(toQuarantine, name)
			continue
		}
		_, recs, werr := readWAL(p.fs, filepath.Join(p.dir, name))
		if werr != nil {
			var we *WALError
			if !errors.As(werr, &we) {
				return nil, fmt.Errorf("serve: read wal %s: %w", name, werr)
			}
		}
		gap := false
		for _, rec := range recs {
			switch {
			case rec.Gen <= cur:
				// Re-logged or pre-checkpoint record; already captured.
			case rec.Gen == cur+1 && !gap:
				pending = append(pending, rec)
				cur = rec.Gen
			default:
				// Generation gap inside one file (or a record beyond one):
				// corrupt bookkeeping, everything from the gap on is dropped.
				gap = true
				rep.Truncated++
			}
		}
		if werr != nil || gap {
			if werr != nil {
				rep.Truncated++ // the torn/corrupt record itself
			}
			toQuarantine = append(toQuarantine, name)
			break // nothing after a corrupt tail or gap can connect
		}
	}

	// Phase 2: install in memory, replaying through the normal swap and
	// delta paths with the persistence hooks suppressed. Generation
	// numbering resumes exactly where the crashed process stopped.
	p.suppress = true
	s.gen.Store(chosen.Generation - 1)
	if _, err := s.loadLocked(chosen.Graph, chosen.Pred, chosen.Rules); err != nil {
		p.suppress = false
		s.gen.Store(0)
		return nil, fmt.Errorf("serve: rebuild snapshot from %s: %w", rep.Snapshot, err)
	}
	for _, rec := range pending {
		if _, err := s.applyDeltaLocked(rec.Req); err != nil {
			p.suppress = false
			return nil, fmt.Errorf("serve: replay wal record for generation %d: %w", rec.Gen, err)
		}
		rep.Replayed++
	}
	p.suppress = false
	p.nSnapLoads.Add(1)
	p.nWalReplayed.Add(int64(rep.Replayed))
	p.nWalTruncated.Add(int64(rep.Truncated))

	// Phase 3: make the recovered state durable before touching any old
	// file, so a crash during recovery leaves the disk no worse. One
	// exception: a quarantine candidate whose name the checkpoint is about
	// to claim (a corrupt snap-G when replay climbed back to G, or a torn
	// WAL that yielded zero records) is renamed first — otherwise the fresh
	// file would overwrite the evidence and phase 4 would rename the fresh
	// file away. Such a candidate contributed nothing to the recovered
	// state, so a crash between its rename and the checkpoint loses nothing.
	ckptSnap, ckptWAL := p.snapName(s.gen.Load()), p.walName(s.gen.Load())
	deferred := toQuarantine[:0]
	for _, n := range toQuarantine {
		if n == ckptSnap || n == ckptWAL {
			if to := p.quarantine(n); to != "" {
				rep.Quarantined = append(rep.Quarantined, to)
			}
		} else {
			deferred = append(deferred, n)
		}
	}
	toQuarantine = deferred
	if err := p.checkpoint(s.snap.Load()); err != nil {
		return nil, fmt.Errorf("serve: post-recovery checkpoint: %w", err)
	}

	// Phase 4: quarantine evidence, prune leftovers.
	for _, n := range toQuarantine {
		if to := p.quarantine(n); to != "" {
			rep.Quarantined = append(rep.Quarantined, to)
		}
	}
	p.prune(s.gen.Load())

	rep.Recovered = true
	rep.Generation = s.gen.Load()
	return rep, nil
}

// countWALRecords reports how many well-formed records a WAL file holds,
// for truncation accounting of files recovery cannot reach.
func countWALRecords(fs diskfault.FS, path string) int {
	_, recs, _ := readWAL(fs, path)
	return len(recs)
}
