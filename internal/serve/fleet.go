package serve

import (
	"sync"
	"time"

	"gpar/internal/mine/remote"
)

// fleetProbeTTL is how long a /healthz fleet-reachability probe result is
// reused before the workers are dialed again — health polling must not
// hammer the fleet.
const fleetProbeTTL = 5 * time.Second

// fleetProbeTimeout bounds each worker's dial + ping during a health probe.
const fleetProbeTimeout = time.Second

// fleetProbe caches the last fleet-reachability probe.
type fleetProbe struct {
	mu        sync.Mutex
	at        time.Time
	reachable int
}

// retryPolicy is the per-job fleet retry policy from config.
func (s *Server) retryPolicy() remote.RetryPolicy {
	return remote.RetryPolicy{
		Attempts:    s.cfg.MineRetries,
		BaseBackoff: s.cfg.MineRetryBackoff,
	}
}

// fleetAllow asks the circuit breaker whether a fleet attempt may proceed
// (always true when the breaker is disabled).
func (s *Server) fleetAllow() bool {
	if s.breaker == nil {
		return true
	}
	return s.breaker.allow()
}

// fleetResult reports a fleet job's outcome to the circuit breaker.
func (s *Server) fleetResult(ok bool) {
	if s.breaker == nil {
		return
	}
	if ok {
		s.breaker.success()
	} else {
		s.breaker.failure()
	}
}

// FleetReachable dials and health-probes every configured worker and
// returns how many answered, caching the result for fleetProbeTTL.
// Concurrent callers serialize on the cache, so at most one probe sweep is
// in flight. Returns (0, 0) with no probing when no fleet is configured.
func (s *Server) FleetReachable() (reachable, total int) {
	total = len(s.cfg.MineWorkers)
	if total == 0 {
		return 0, 0
	}
	fp := &s.fleetProbe
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if !fp.at.IsZero() && time.Since(fp.at) < fleetProbeTTL {
		return fp.reachable, total
	}
	var n int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range s.cfg.MineWorkers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c, err := remote.Dial(addr, remote.DialOptions{
				DialTimeout: fleetProbeTimeout,
				StepTimeout: fleetProbeTimeout,
			})
			if err != nil {
				return
			}
			defer c.Close()
			if c.Ping() == nil {
				mu.Lock()
				n++
				mu.Unlock()
			}
		}(addr)
	}
	wg.Wait()
	fp.reachable = int(n)
	fp.at = time.Now()
	return fp.reachable, total
}

// BreakerStats returns the fleet circuit breaker's current view, or
// (zero, false) when no breaker is active.
func (s *Server) BreakerStats() (BreakerStats, bool) {
	if s.breaker == nil {
		return BreakerStats{}, false
	}
	return s.breaker.stats(), true
}
