package serve

import (
	"sync"

	"gpar/internal/graph"
	"gpar/internal/mine"
)

// MineCtxKey identifies one reusable mining preamble: the snapshot
// generation (a proxy for graph identity — every swap bumps it, so stale
// contexts can never be served), the candidate x-label, and the
// fragmentation parameters (d, n) that fix the partition layout. Two mine
// jobs with equal keys share the exact same partitioned, frozen fragments.
type MineCtxKey struct {
	Gen    uint64
	XLabel graph.Label
	D, N   int
}

// mineCtxEntry is one cached (or in-flight) context build. The sync.Once
// makes GetOrBuild single-flight per key: a job arriving while another job
// is still partitioning the same key blocks on the Once and shares the
// result instead of duplicating the work.
type mineCtxEntry struct {
	once sync.Once
	ctx  *mine.Context
}

// MineContextCache is the bounded LRU of mine.Contexts, the serving-side
// realization of "mine once, match many" for the mining preamble itself:
// repeated POST /v1/mine jobs over the same snapshot skip
// partition.Partition and fragment Freeze() entirely. Contexts hold full
// fragment copies of the candidates' d-neighborhoods, so the default
// capacity is small. A snapshot swap purges the cache (and the generation
// in the key makes any racing stale entry unreachable anyway).
type MineContextCache struct {
	mu  sync.Mutex
	lru *lru[MineCtxKey, *mineCtxEntry]
}

// NewMineContextCache returns a cache bounded to capacity contexts
// (minimum 1).
func NewMineContextCache(capacity int) *MineContextCache {
	return &MineContextCache{lru: newLRU[MineCtxKey, *mineCtxEntry](capacity)}
}

// GetOrBuild returns the context for key, building it with build on a
// miss. hit reports whether an existing entry was reused — including the
// case where this call joined an in-flight build started by a concurrent
// job, which also skips the partition work. Eviction drops the cache's
// reference only; jobs already holding an evicted context finish on it
// (contexts are immutable).
func (c *MineContextCache) GetOrBuild(key MineCtxKey, build func() *mine.Context) (ctx *mine.Context, hit bool) {
	c.mu.Lock()
	if e, ok := c.lru.get(key); ok {
		c.mu.Unlock()
		// If the original builder is still running, this blocks until the
		// context is ready; build only runs here in the pathological case
		// where the inserting goroutine has not reached its own Do yet.
		e.once.Do(func() { e.ctx = build() })
		return e.ctx, true
	}
	e := &mineCtxEntry{}
	c.lru.put(key, e)
	c.mu.Unlock()
	e.once.Do(func() { e.ctx = build() })
	return e.ctx, false
}

// Contains reports whether key's context is still resident, without
// touching recency or the hit/miss counters. The accumulator pool uses it
// as a liveness probe: worker sets are only parked for contexts the cache
// can still hand out.
func (c *MineContextCache) Contains(key MineCtxKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.contains(key)
}

// Discard drops key's entry if present (counted as an eviction). Mine jobs
// call it when a snapshot swap raced their build: the swap's Purge may
// have run before the entry was inserted, and a dead-generation context
// would otherwise pin the retired snapshot's fragments until LRU pressure.
func (c *MineContextCache) Discard(key MineCtxKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.remove(key)
}

// Purge drops every entry (snapshot swap) and returns how many were
// dropped.
func (c *MineContextCache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.purge()
}

// Shrink evicts the least-recently-used half of the cache and returns how
// many contexts were dropped. Called under the hard memory watermark;
// contexts are the server's largest cached objects, so halving here is the
// biggest single lever the degradation ladder has. Jobs already holding an
// evicted context finish on it (contexts are immutable).
func (c *MineContextCache) Shrink() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.shrink((c.lru.ll.Len() + 1) / 2)
}

// Stats returns current counters for /stats.
func (c *MineContextCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.stats()
}
