package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/graph"
)

// jsonFloat marshals NaN and ±Inf — which encoding/json rejects — as
// strings. Rule confidence is legitimately +Inf (the "logic rule" trivial
// case) and NaN (supp(q,G) = 0).
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// IdentifyRequest is the body of POST /v1/identify. Rules selects by key
// and Indices by position; both empty means the whole resident set Σ.
type IdentifyRequest struct {
	Rules   []string `json:"rules,omitempty"`
	Indices []int    `json:"indices,omitempty"`
	// Eta is the confidence bound η; 0 means the server default.
	Eta float64 `json:"eta,omitempty"`
	// IncludeMatches returns each rule's match set, not just its size.
	IncludeMatches bool `json:"includeMatches,omitempty"`
}

// IdentifyRule is one rule's slice of an identify response.
type IdentifyRule struct {
	Index     int            `json:"index"`
	Key       string         `json:"key"`
	Conf      jsonFloat      `json:"conf"`
	SuppR     int            `json:"suppR"`
	SuppQ     int            `json:"suppQ"`
	Matches   int            `json:"matches"`
	Applied   bool           `json:"applied"`
	Cached    bool           `json:"cached"`
	Coalesced bool           `json:"coalesced,omitempty"`
	Nodes     []graph.NodeID `json:"nodes,omitempty"`
}

// IdentifyResponse is Σ(x,G,η) for the selected rules.
type IdentifyResponse struct {
	Generation uint64         `json:"generation"`
	Eta        float64        `json:"eta"`
	Identified []graph.NodeID `json:"identified"`
	Count      int            `json:"count"`
	Rules      []IdentifyRule `json:"rules"`
	ElapsedMs  float64        `json:"elapsedMs"`
}

// RuleInfo is one entry of GET /v1/rules.
type RuleInfo struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Rule   string `json:"rule"`
	Size   int    `json:"size"`
	Radius int    `json:"radius"`
}

// RulesResponse is the body of GET /v1/rules.
type RulesResponse struct {
	Generation uint64     `json:"generation"`
	Pred       string     `json:"pred"`
	Rules      []RuleInfo `json:"rules"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Generation uint64  `json:"generation"`
	UptimeSec  float64 `json:"uptimeSec"`
	Graph      struct {
		Nodes int `json:"nodes"`
		Edges int `json:"edges"`
	} `json:"graph"`
	Pred      string `json:"pred"`
	Rules     int    `json:"rules"`
	Fragments int    `json:"fragments"`
	PoolSize  int    `json:"poolSize"`
	// CPUBudget is the configured GOMAXPROCS split: identify traffic runs
	// on at most PoolSize fragment evaluators while all mine jobs together
	// run at most MineProcs worker goroutines.
	CPUBudget struct {
		Procs     int     `json:"procs"`
		MineShare float64 `json:"mineShare"`
		MineProcs int     `json:"mineProcs"`
		PoolSize  int     `json:"poolSize"`
	} `json:"cpuBudget"`
	Cache CacheStats `json:"cache"`
	// MineCache counts mine-context reuse: hits are mine jobs that skipped
	// the partition+freeze preamble entirely.
	MineCache CacheStats `json:"mineCache"`
	// MinePool counts mine.Shared accumulator reuse: a reuse is a job that
	// mined on a recycled worker set (round arenas already grown).
	MinePool MinePoolStats `json:"minePool"`
	// MineFragReuses counts mine jobs whose context shared the serving
	// snapshot's partition fragments outright (zero partition+freeze).
	MineFragReuses int64 `json:"mineFragReuses"`
	// Fleet reports the distributed-mining configuration and traffic:
	// Workers is len(Config.MineWorkers), RemoteJobs counts jobs that
	// completed on the fleet, RetriedJobs counts fleet jobs that succeeded
	// only after at least one failed attempt, Fallbacks counts fleet-
	// eligible jobs that mined in-process (breaker open, worker-count
	// mismatch, or every retry exhausted), and Breaker — present when the
	// fleet circuit breaker is active — is its current state.
	Fleet struct {
		Workers     int           `json:"workers"`
		RemoteJobs  int64         `json:"remoteJobs"`
		RetriedJobs int64         `json:"retriedJobs"`
		Fallbacks   int64         `json:"fallbacks"`
		Breaker     *BreakerStats `json:"breaker,omitempty"`
	} `json:"fleet"`
	Batch    BatchStats `json:"batch"`
	Requests struct {
		Identify int64 `json:"identify"`
		Rules    int64 `json:"rules"`
		Mine     int64 `json:"mine"`
		Swaps    int64 `json:"swaps"`
	} `json:"requests"`
	Jobs map[JobStatus]int `json:"jobs"`
	// Delta reports live-graph maintenance: applied batches and ops, refused
	// batches, the current snapshot's overlay state, selective match-set
	// invalidation traffic (carried vs dropped entries), warm mine-result
	// hits, and compaction activity.
	Delta struct {
		Batches          int64 `json:"batches"`
		Ops              int64 `json:"ops"`
		Rejected         int64 `json:"rejected"`
		Overlaid         bool  `json:"overlaid"`
		OverlayOps       int   `json:"overlayOps"`
		RulesCarried     int64 `json:"rulesCarried"`
		RulesInvalidated int64 `json:"rulesInvalidated"`
		WarmMineHits     int64 `json:"warmMineHits"`
		Compactions      int64 `json:"compactions"`
		CompactAborts    int64 `json:"compactAborts"`
		CompactThreshold int   `json:"compactThreshold"`
	} `json:"delta"`
	// Persistence reports the durability layer: snapshot loads at recovery,
	// WAL traffic, replayed and truncated records, quarantined files, and the
	// generation of the newest checkpoint. Absent when persistence is off.
	Persistence *PersistenceStats `json:"persistence,omitempty"`
	// Admission reports the overload front door: how many requests are
	// evaluating vs queued, and how many were shed (429) because the queue
	// was full or the wait exceeded its budget. Absent when MaxQueue < 0.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Mem reports the heap watermark ladder. Absent when MemLimitBytes == 0.
	Mem *MemStats `json:"mem,omitempty"`
	// Saturation is the live occupancy of the two CPU pools plus the
	// admission queue depth — the signals to watch before shedding starts.
	Saturation struct {
		PoolInUse     int   `json:"poolInUse"`
		PoolSize      int   `json:"poolSize"`
		QueueDepth    int64 `json:"queueDepth"`
		MineGateInUse int   `json:"mineGateInUse"`
		MineGateSize  int   `json:"mineGateSize"`
	} `json:"saturation"`
	// Lifecycle counts terminal-path events: client-side aborts, explicit
	// DELETE cancels, request deadlines, and recovered panics.
	Lifecycle struct {
		CancelRequests int64 `json:"cancelRequests"`
		Deadlines      int64 `json:"deadlines"`
		ClientGone     int64 `json:"clientGone"`
		Panics         int64 `json:"panics"`
		JobPanics      int64 `json:"jobPanics"`
	} `json:"lifecycle"`
}

// AdmissionStats is the /stats view of the bounded admission queue.
type AdmissionStats struct {
	Running      int    `json:"running"`
	RunningCap   int    `json:"runningCap"`
	Queued       int64  `json:"queued"`
	MaxQueue     int    `json:"maxQueue"`
	ShedFull     int64  `json:"shedFull"`
	ShedTimeout  int64  `json:"shedTimeout"`
	QueueTimeout string `json:"queueTimeout"`
}

// MemStats is the /stats view of the heap watermark ladder.
type MemStats struct {
	LimitBytes   uint64 `json:"limitBytes"`
	HeapBytes    uint64 `json:"heapBytes"`
	Level        string `json:"level"`
	MineRejects  int64  `json:"mineRejects"`
	CacheShrinks int64  `json:"cacheShrinks"`
}

// Handler returns the server's HTTP API, wrapped in the panic-recovery
// middleware: a panicking handler answers 500 with a request ID instead of
// tearing down the connection, and the panic is counted on /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/identify", s.handleIdentify)
	mux.HandleFunc("GET /v1/rules", s.handleRulesGet)
	mux.HandleFunc("PUT /v1/rules", s.handleRulesPut)
	mux.HandleFunc("POST /v1/mine", s.handleMine)
	mux.HandleFunc("POST /v1/graph/delta", s.handleDelta)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return s.recoverPanics(mux)
}

// recoverPanics tags every response with an X-Request-ID and converts
// handler panics into a 500 JSON error naming that ID, so operators can
// correlate a client-reported failure with server logs. If the handler
// already wrote a header before panicking, the body write below is a no-op
// garbage tail on a broken response — acceptable, the alternative is the
// connection reset Go's default panic handling produces.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := fmt.Sprintf("r-%d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", reqID)
		defer func() {
			if rec := recover(); rec != nil {
				s.nPanics.Add(1)
				httpError(w, http.StatusInternalServerError,
					"internal error (request %s): %v", reqID, rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// ready returns the current snapshot or writes the appropriate error.
func (s *Server) ready(w http.ResponseWriter) *Snapshot {
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return nil
	}
	snap := s.snap.Load()
	if snap == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot loaded")
		return nil
	}
	return snap
}

func (s *Server) handleIdentify(w http.ResponseWriter, r *http.Request) {
	s.nIdentify.Add(1)
	snap := s.ready(w)
	if snap == nil {
		return
	}
	var req IdentifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	eta := req.Eta
	if eta == 0 {
		eta = s.cfg.DefaultEta
	}
	var selected []*ServedRule
	switch {
	case len(req.Rules) == 0 && len(req.Indices) == 0:
		selected = snap.Rules
	default:
		seen := make(map[string]bool)
		for _, key := range req.Rules {
			sr, ok := snap.RuleByKey(key)
			if !ok {
				httpError(w, http.StatusNotFound, "unknown rule key %q", key)
				return
			}
			if !seen[sr.Key] {
				seen[sr.Key] = true
				selected = append(selected, sr)
			}
		}
		for _, ix := range req.Indices {
			if ix < 0 || ix >= len(snap.Rules) {
				httpError(w, http.StatusNotFound, "rule index %d out of range [0,%d)", ix, len(snap.Rules))
				return
			}
			sr := snap.Rules[ix]
			if !seen[sr.Key] {
				seen[sr.Key] = true
				selected = append(selected, sr)
			}
		}
	}
	if len(selected) == 0 {
		httpError(w, http.StatusConflict, "no rules loaded; mine (POST /v1/mine) or upload (PUT /v1/rules) first")
		return
	}

	// Deadline propagation: the request carries the client's own context
	// plus the server-side ceiling. Admission happens after the body is
	// decoded (bad requests must not queue) and before any evaluation work.
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancelReq context.CancelFunc
		ctx, cancelReq = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancelReq()
	}
	if s.admit != nil {
		release, err := s.admit.admit(ctx)
		if err != nil {
			s.shedResponse(w, err)
			return
		}
		defer release()
	}
	// Hard memory watermark: shed cache memory before evaluating. The shed
	// is attributed to whichever request observes the level — degradation
	// is a property of the server, not of the victim request, which still
	// gets its answer.
	if s.mem != nil && s.mem.level() >= memHard {
		s.nCacheShrink.Add(1)
		s.cache.Shrink()
		s.mineCtx.Shrink()
	}

	start := time.Now()
	resp := IdentifyResponse{Generation: snap.Gen, Eta: eta}
	// Evaluate the selected rules concurrently; the shared Pool still
	// bounds total matching work, this just overlaps the per-rule chains.
	type outcome struct {
		ev                *RuleEval
		cached, coalesced bool
		err               error
	}
	outcomes := make([]outcome, len(selected))
	var wg sync.WaitGroup
	for i, sr := range selected {
		wg.Add(1)
		go func(i int, sr *ServedRule) {
			defer wg.Done()
			o := &outcomes[i]
			o.ev, o.cached, o.coalesced, o.err = s.identifyOne(snap, sr)
		}(i, sr)
	}
	wg.Wait()
	// Evaluations run to completion once started — partial results must
	// never enter the shared cache — so the deadline is enforced at the
	// boundaries: a request whose deadline passed while it evaluated
	// answers 503 rather than pretending it met its budget.
	if err := ctx.Err(); err != nil {
		s.nDeadline.Add(1)
		httpError(w, http.StatusServiceUnavailable, "deadline exceeded during evaluation: %v", err)
		return
	}
	identified := make(map[graph.NodeID]bool)
	for i, sr := range selected {
		o := outcomes[i]
		if o.err != nil {
			httpError(w, http.StatusInternalServerError, "rule %s: %v", sr.Key, o.err)
			return
		}
		ir := IdentifyRule{
			Index:     sr.Index,
			Key:       sr.Key,
			Conf:      jsonFloat(o.ev.Conf),
			SuppR:     o.ev.Stats.SuppR,
			SuppQ:     o.ev.Stats.SuppQ,
			Matches:   len(o.ev.Matches),
			Applied:   o.ev.Conf >= eta,
			Cached:    o.cached,
			Coalesced: o.coalesced,
		}
		if req.IncludeMatches {
			ir.Nodes = o.ev.Matches
		}
		if ir.Applied {
			for _, v := range o.ev.Matches {
				identified[v] = true
			}
		}
		resp.Rules = append(resp.Rules, ir)
	}
	resp.Identified = sortedIDs(identified)
	resp.Count = len(resp.Identified)
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// shedResponse maps an admission failure to its HTTP verdict: queue-full
// and queue-timeout shed with 429 + Retry-After (one queue-timeout is an
// honest estimate of when capacity frees up), a request-side deadline that
// expired while queued answers 503, and a client that vanished gets
// nothing — writing to it is wasted work, which is the point of shedding.
func (s *Server) shedResponse(w http.ResponseWriter, err error) {
	retryAfter := int(s.cfg.QueueTimeout / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	switch {
	case errors.Is(err, errQueueFull):
		s.nShedFull.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		httpError(w, http.StatusTooManyRequests, "overloaded: admission queue full")
	case errors.Is(err, errQueueTimeout):
		s.nShedTimeout.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		httpError(w, http.StatusTooManyRequests, "overloaded: queued longer than %s", s.cfg.QueueTimeout)
	case errors.Is(err, context.DeadlineExceeded):
		s.nDeadline.Add(1)
		httpError(w, http.StatusServiceUnavailable, "deadline exceeded while queued")
	default: // context.Canceled: the client hung up
		s.nClientGone.Add(1)
	}
}

func (s *Server) handleRulesGet(w http.ResponseWriter, r *http.Request) {
	s.nRules.Add(1)
	snap := s.ready(w)
	if snap == nil {
		return
	}
	resp := RulesResponse{Generation: snap.Gen, Pred: snap.PredDisplay, Rules: []RuleInfo{}}
	for _, sr := range snap.Rules {
		resp.Rules = append(resp.Rules, RuleInfo{
			Index:  sr.Index,
			Key:    sr.Key,
			Rule:   sr.Display,
			Size:   sr.Size,
			Radius: sr.Radius,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRulesPut replaces the served rule set with one in the core rule
// text format (the round-trip of core.WriteRules / core.ReadRules), hot-
// swapping the snapshot.
func (s *Server) handleRulesPut(w http.ResponseWriter, r *http.Request) {
	s.nRules.Add(1)
	snap := s.ready(w)
	if snap == nil {
		return
	}
	// Drain the body before taking any lock: a stalled client must not
	// wedge the swap path (or Shutdown) on a network read.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// ReadRules interns label names into the shared symbol table, which is
	// only safe under the swap lock.
	s.swapMu.Lock()
	rules, err := core.ReadRules(bytes.NewReader(body), snap.G.Symbols())
	s.swapMu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad rule set: %v", err)
		return
	}
	gen, err := s.SwapRules(rules)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "swap failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"rules":      len(rules),
	})
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.nMine.Add(1)
	if s.ready(w) == nil {
		return
	}
	var p MineParams
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.StartMine(p)
	if err != nil {
		if errors.Is(err, errMemPressure) {
			w.Header().Set("Retry-After", "5")
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// handleJobCancel is DELETE /v1/jobs/{id}: it delivers a cancellation to a
// pending or running mine job. 202 means the cancel was signaled — the job
// flips to canceled when its run observes the context at the next superstep
// boundary; poll GET /v1/jobs/{id} for the terminal state. Jobs already
// finished answer 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, found, signaled := s.jobs.cancelJob(id)
	if !found {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !signaled {
		httpError(w, http.StatusConflict, "job %s already %s", id, job.Status)
		return
	}
	s.nCancelReq.Add(1)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() || s.snap.Load() == nil {
		status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	durability := "off"
	if p := s.persist; p != nil {
		durability = string(p.policy)
	}
	body := map[string]any{
		"status":     status,
		"generation": s.gen.Load(),
		"uptimeSec":  time.Since(s.start).Seconds(),
		"durability": durability,
	}
	if total := len(s.cfg.MineWorkers); total > 0 {
		reachable, _ := s.FleetReachable()
		fleet := map[string]any{
			"workers":   total,
			"reachable": reachable,
		}
		if bs, ok := s.BreakerStats(); ok {
			fleet["breaker"] = bs.State
		}
		body["fleet"] = fleet
	}
	writeJSON(w, code, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	resp.Generation = s.gen.Load()
	resp.UptimeSec = time.Since(s.start).Seconds()
	if snap := s.snap.Load(); snap != nil {
		resp.Graph.Nodes = snap.G.NumNodes()
		resp.Graph.Edges = snap.G.NumEdges()
		resp.Pred = snap.PredDisplay
		resp.Rules = len(snap.Rules)
		resp.Fragments = len(snap.frags)
		resp.Delta.Overlaid = snap.G.Overlaid()
		resp.Delta.OverlayOps = snap.G.OverlayOps()
	}
	resp.Delta.Batches = s.nDeltaBatches.Load()
	resp.Delta.Ops = s.nDeltaOps.Load()
	resp.Delta.Rejected = s.nDeltaRejects.Load()
	resp.Delta.RulesCarried = s.nRuleCarried.Load()
	resp.Delta.RulesInvalidated = s.nRuleInvalidated.Load()
	resp.Delta.WarmMineHits = s.nWarmMineHits.Load()
	resp.Delta.Compactions = s.nCompactions.Load()
	resp.Delta.CompactAborts = s.nCompactAborts.Load()
	resp.Delta.CompactThreshold = s.cfg.CompactThreshold
	resp.PoolSize = s.pool.Size()
	resp.CPUBudget.Procs = runtime.GOMAXPROCS(0)
	resp.CPUBudget.MineShare = s.cfg.MineShare
	resp.CPUBudget.MineProcs = s.mineGate.Size()
	resp.CPUBudget.PoolSize = s.pool.Size()
	resp.Cache = s.cache.Stats()
	resp.MineCache = s.mineCtx.Stats()
	resp.MinePool = s.minePool.stats()
	resp.MineFragReuses = s.nFragReuse.Load()
	resp.Fleet.Workers = len(s.cfg.MineWorkers)
	resp.Fleet.RemoteJobs = s.nRemoteMine.Load()
	resp.Fleet.RetriedJobs = s.nMineRetry.Load()
	resp.Fleet.Fallbacks = s.nFleetFall.Load()
	if bs, ok := s.BreakerStats(); ok {
		resp.Fleet.Breaker = &bs
	}
	resp.Batch = s.batch.Stats()
	resp.Requests.Identify = s.nIdentify.Load()
	resp.Requests.Rules = s.nRules.Load()
	resp.Requests.Mine = s.nMine.Load()
	resp.Requests.Swaps = s.nSwap.Load()
	resp.Jobs = s.jobs.Counts()
	if p := s.persist; p != nil {
		resp.Persistence = p.stats()
	}
	if s.admit != nil {
		resp.Admission = &AdmissionStats{
			Running:      s.admit.inUse(),
			RunningCap:   cap(s.admit.slots),
			Queued:       s.admit.depth(),
			MaxQueue:     s.admit.maxQueue,
			ShedFull:     s.nShedFull.Load(),
			ShedTimeout:  s.nShedTimeout.Load(),
			QueueTimeout: s.cfg.QueueTimeout.String(),
		}
		resp.Saturation.QueueDepth = s.admit.depth()
	}
	if s.mem != nil {
		resp.Mem = &MemStats{
			LimitBytes:   s.mem.limit,
			HeapBytes:    s.mem.heap(),
			Level:        levelName(s.mem.level()),
			MineRejects:  s.nMemRejects.Load(),
			CacheShrinks: s.nCacheShrink.Load(),
		}
	}
	resp.Saturation.PoolInUse = s.pool.InUse()
	resp.Saturation.PoolSize = s.pool.Size()
	resp.Saturation.MineGateInUse = s.mineGate.InUse()
	resp.Saturation.MineGateSize = s.mineGate.Size()
	resp.Lifecycle.CancelRequests = s.nCancelReq.Load()
	resp.Lifecycle.Deadlines = s.nDeadline.Load()
	resp.Lifecycle.ClientGone = s.nClientGone.Load()
	resp.Lifecycle.Panics = s.nPanics.Load()
	resp.Lifecycle.JobPanics = s.nJobPanics.Load()
	writeJSON(w, http.StatusOK, resp)
}

func sortedIDs(set map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}
