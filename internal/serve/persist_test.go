// Persistence unit tests: checkpoint/rotation layout, the WAL
// append-before-publish barrier, recovery with corrupt tails and corrupt
// snapshots, quarantine semantics, retention pruning, and the goroutine
// hygiene of the interval flusher across start → deltas → stop → recover.
// The end-to-end crash-recovery differential oracle lives in
// crash_oracle_test.go.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"gpar/internal/diskfault"
)

// doLocal runs one request against a handler in-process.
func doLocal(t *testing.T, h http.Handler, method, path string, body []byte, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, bytes.NewReader(body)))
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.Bytes(), err)
		}
	}
	return rec.Code
}

// newPersistedServer builds a fixture server persisting into dir on m.
func newPersistedServer(t *testing.T, m diskfault.FS, dir string, opts PersistOptions) *Server {
	t.Helper()
	g, pred, rules := fixture(t)
	s := New(Config{Workers: 2})
	opts.Dir = dir
	opts.FS = m
	if err := s.EnablePersistence(opts); err != nil {
		t.Fatalf("EnablePersistence: %v", err)
	}
	if err := s.LoadSnapshot(g, pred, rules); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	return s
}

// recoveredServer starts a fresh server over the same directory and runs
// recovery, expecting it to succeed.
func recoveredServer(t *testing.T, m diskfault.FS, dir string, opts PersistOptions) (*Server, *RecoveryReport) {
	t.Helper()
	s := New(Config{Workers: 2})
	opts.Dir = dir
	opts.FS = m
	if err := s.EnablePersistence(opts); err != nil {
		t.Fatalf("EnablePersistence: %v", err)
	}
	rep, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, rep
}

func dirNames(t *testing.T, m diskfault.FS, dir string) []string {
	t.Helper()
	names, err := m.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	sort.Strings(names)
	return names
}

func applyN(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		req := DeltaRequest{Ops: []DeltaOpSpec{{Op: "addNode", Label: "cust"}}}
		if _, err := s.ApplyDelta(req); err != nil {
			t.Fatalf("ApplyDelta %d: %v", i, err)
		}
	}
}

// Every swap checkpoints before publishing: load writes snap+WAL, a rules
// swap rotates, retention keeps the last two snapshots.
func TestCheckpointOnEverySwap(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	want := []string{"snap-0000000000000001.gpsnap", "wal-0000000000000001.wal"}
	if got := dirNames(t, m, "data"); !reflect.DeepEqual(got, want) {
		t.Fatalf("after load: %v", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.SwapRules(nil); err != nil {
			t.Fatalf("SwapRules: %v", err)
		}
	}
	// Generations 2, 3, 4; retention keeps the newest two snapshots and the
	// WALs that extend them.
	want = []string{
		"snap-0000000000000003.gpsnap", "snap-0000000000000004.gpsnap",
		"wal-0000000000000003.wal", "wal-0000000000000004.wal",
	}
	if got := dirNames(t, m, "data"); !reflect.DeepEqual(got, want) {
		t.Fatalf("after swaps: %v", got)
	}
	if lc := s.persist.lastCkpt.Load(); lc != 4 {
		t.Fatalf("lastCheckpointGeneration %d, want 4", lc)
	}
}

// Delta batches append to the WAL and a crashed server replays them
// byte-identically — the accepted state survives without re-ingest.
func TestRecoverReplaysDeltas(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	applyN(t, s, 3)
	wantBytes := identifyBytes(t, s.Handler())
	wantGen := s.Generation()
	// No Shutdown: the process dies. SyncAlways means nothing is lost.
	m.Crash()
	m.Reboot()

	s2, rep := recoveredServer(t, m, "data", PersistOptions{})
	if !rep.Recovered || rep.Replayed != 3 || rep.Truncated != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if s2.Generation() != wantGen {
		t.Fatalf("generation %d, want %d", s2.Generation(), wantGen)
	}
	if got := identifyBytes(t, s2.Handler()); !bytes.Equal(got, wantBytes) {
		t.Fatalf("identify diverged after recovery\nwant: %s\ngot:  %s", wantBytes, got)
	}
	ps := s2.persist.stats()
	if ps.SnapshotLoads != 1 || ps.WALReplayed != 3 {
		t.Fatalf("stats: %+v", ps)
	}
	// The recovered server keeps extending the same history.
	applyN(t, s2, 1)
	if s2.Generation() != wantGen+1 {
		t.Fatalf("post-recovery generation %d, want %d", s2.Generation(), wantGen+1)
	}
}

// A WAL append failure aborts the delta: the generation rolls back, the
// client sees the error, and nothing partial is ever served.
func TestDeltaAbortsWhenWALFails(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	gen := s.Generation()
	m.Inject(diskfault.Fault{Op: diskfault.OpWrite, Path: "wal-", Err: diskfault.ErrInjected})
	_, err := s.ApplyDelta(DeltaRequest{Ops: []DeltaOpSpec{{Op: "addNode", Label: "cust"}}})
	if !errors.Is(err, diskfault.ErrInjected) {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if s.Generation() != gen {
		t.Fatalf("generation moved to %d on a failed append", s.Generation())
	}
	// The fault is spent; the next batch goes through.
	applyN(t, s, 1)
	if s.Generation() != gen+1 {
		t.Fatalf("generation %d after retry, want %d", s.Generation(), gen+1)
	}
}

// A torn WAL tail (partial record surviving the crash) is truncated and
// the file quarantined; the valid prefix is recovered exactly.
func TestRecoverTruncatesTornTail(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	applyN(t, s, 2)
	wantBytes := identifyBytes(t, s.Handler())
	wantGen := s.Generation()
	// The third batch dies mid-write: 5 bytes (a torn frame header) land
	// durably before the crash.
	m.Inject(diskfault.Fault{Op: diskfault.OpWrite, Path: "wal-", ShortWrite: 5, Kill: true, KeepTail: 5})
	_, err := s.ApplyDelta(DeltaRequest{Ops: []DeltaOpSpec{{Op: "addNode", Label: "cust"}}})
	if !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("ApplyDelta during crash: %v", err)
	}
	m.Reboot()

	s2, rep := recoveredServer(t, m, "data", PersistOptions{})
	if !rep.Recovered || rep.Replayed != 2 || rep.Truncated != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Quarantined) != 1 || !strings.HasSuffix(rep.Quarantined[0], ".corrupt") {
		t.Fatalf("quarantined: %v", rep.Quarantined)
	}
	if s2.Generation() != wantGen {
		t.Fatalf("generation %d, want %d", s2.Generation(), wantGen)
	}
	if got := identifyBytes(t, s2.Handler()); !bytes.Equal(got, wantBytes) {
		t.Fatal("identify diverged after torn-tail recovery")
	}
	// The quarantined file still exists under its .corrupt name, bytes intact.
	q, err := diskfault.ReadFile(m, filepath.Join("data", rep.Quarantined[0]))
	if err != nil {
		t.Fatalf("quarantined file unreadable: %v", err)
	}
	if len(q) == 0 {
		t.Fatal("quarantined file is empty")
	}
}

// A corrupt newest snapshot falls back to the older retained one plus its
// WAL; the unreachable newer WAL is quarantined, not deleted.
func TestRecoverFallsBackAcrossSnapshots(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	applyN(t, s, 2)                // gens 2,3 in wal-1
	if _, err := s.SwapRules(nil); err != nil { // checkpoint at gen 4
		t.Fatal(err)
	}
	applyN(t, s, 1) // gen 5 in wal-4
	if !m.CorruptDurable(filepath.Join("data", "snap-0000000000000004.gpsnap"), 100) {
		t.Fatal("corrupt failed")
	}
	m.Crash()
	m.Reboot()

	s2, rep := recoveredServer(t, m, "data", PersistOptions{})
	if !rep.Recovered {
		t.Fatalf("report: %+v", rep)
	}
	// Falls back to snap-1, replays gens 2,3 from wal-1; the swap at gen 4
	// is not in any WAL, so wal-4's record (gen 5) is unreachable.
	if rep.Snapshot != "snap-0000000000000001.gpsnap" || rep.Replayed != 2 || rep.Truncated != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if s2.Generation() != 3 {
		t.Fatalf("generation %d, want 3", s2.Generation())
	}
	// Both the corrupt snapshot and the unreachable WAL are quarantined.
	if len(rep.Quarantined) != 2 {
		t.Fatalf("quarantined: %v", rep.Quarantined)
	}
	for _, n := range dirNames(t, m, "data") {
		if strings.HasSuffix(n, ".corrupt") {
			continue
		}
		if strings.Contains(n, "0000000000000004") {
			t.Fatalf("generation-4 file survived unquarantined: %v", dirNames(t, m, "data"))
		}
	}
}

// A directory whose snapshots are all unreadable is a typed error — the
// server refuses to silently start fresh over data it cannot read.
func TestRecoverRefusesAllCorrupt(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	applyN(t, s, 1)
	for _, n := range dirNames(t, m, "data") {
		if strings.HasSuffix(n, ".gpsnap") {
			if !m.CorruptDurable(filepath.Join("data", n), 50) {
				t.Fatalf("corrupt %s failed", n)
			}
		}
	}
	m.Crash()
	m.Reboot()

	s2 := New(Config{Workers: 2})
	if err := s2.EnablePersistence(PersistOptions{Dir: "data", FS: m}); err != nil {
		t.Fatal(err)
	}
	_, err := s2.Recover()
	var re *RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("Recover: %v, want *RecoveryError", err)
	}
	if len(re.Quarantined) != 1 {
		t.Fatalf("quarantined: %v", re.Quarantined)
	}
	if s2.Snapshot() != nil {
		t.Fatal("a snapshot was served despite failed recovery")
	}
}

// An empty data directory is not an error: Recovered=false and the caller
// boots the ordinary way, which lays down the initial checkpoint.
func TestRecoverFreshDir(t *testing.T) {
	m := diskfault.NewMemFS()
	s := New(Config{Workers: 2})
	if err := s.EnablePersistence(PersistOptions{Dir: "data", FS: m}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Recover()
	if err != nil || rep.Recovered {
		t.Fatalf("fresh dir: %+v, %v", rep, err)
	}
	g, pred, rules := fixture(t)
	if err := s.LoadSnapshot(g, pred, rules); err != nil {
		t.Fatal(err)
	}
	if got := dirNames(t, m, "data"); len(got) != 2 {
		t.Fatalf("after first load: %v", got)
	}
}

// Compaction checkpoints like any other swap, and recovery across one
// resumes the exact generation numbering.
func TestRecoverAfterCompaction(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{})
	applyN(t, s, 2)
	if _, did, err := s.Compact(); err != nil || !did {
		t.Fatalf("Compact: %v %v", did, err)
	}
	applyN(t, s, 1)
	wantBytes := identifyBytes(t, s.Handler())
	wantGen := s.Generation() // 1 load + 2 deltas + 1 compact + 1 delta = 5
	m.Crash()
	m.Reboot()

	s2, rep := recoveredServer(t, m, "data", PersistOptions{})
	if !rep.Recovered || rep.Snapshot != "snap-0000000000000004.gpsnap" || rep.Replayed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if s2.Generation() != wantGen {
		t.Fatalf("generation %d, want %d", s2.Generation(), wantGen)
	}
	if got := identifyBytes(t, s2.Handler()); !bytes.Equal(got, wantBytes) {
		t.Fatal("identify diverged after compaction recovery")
	}
}

// Under SyncNone, records the OS never flushed vanish in a crash — but the
// WAL frame boundary keeps the loss clean: recovery serves the durable
// prefix, never a mangled generation.
func TestRecoverSyncNoneLosesOnlyTail(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{Sync: SyncNone})
	applyN(t, s, 3) // unsynced: volatile only
	m.Crash()
	m.Reboot()
	s2, rep := recoveredServer(t, m, "data", PersistOptions{})
	if !rep.Recovered || rep.Replayed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation %d, want the checkpointed 1", s2.Generation())
	}
}

// Shutdown flushes the WAL tail even under SyncNone, so a clean stop loses
// nothing.
func TestShutdownFlushesWAL(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{Sync: SyncNone})
	applyN(t, s, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	m.Crash()
	m.Reboot()
	_, rep := recoveredServer(t, m, "data", PersistOptions{})
	if !rep.Recovered || rep.Replayed != 3 {
		t.Fatalf("report after clean stop: %+v", rep)
	}
}

// /stats exposes the persistence block and /healthz the durability field.
func TestPersistenceSurfacedInStats(t *testing.T) {
	m := diskfault.NewMemFS()
	s := newPersistedServer(t, m, "data", PersistOptions{Sync: SyncInterval, SyncInterval: time.Hour})
	applyN(t, s, 2)
	var stats StatsResponse
	rec := doLocal(t, s.Handler(), "GET", "/stats", nil, &stats)
	if rec != 200 {
		t.Fatalf("stats: %d", rec)
	}
	p := stats.Persistence
	if p == nil || p.WALRecords != 2 || p.FsyncPolicy != "interval" || p.LastCheckpointGeneration != 1 {
		t.Fatalf("persistence block: %+v", p)
	}
	var health map[string]any
	if code := doLocal(t, s.Handler(), "GET", "/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health["durability"] != "interval" {
		t.Fatalf("durability: %v", health["durability"])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// Full persistence lifecycles — enable (with the interval flusher), load,
// deltas, stop, recover — leave no goroutines behind.
func TestNoGoroutineLeakAcrossRecoverCycles(t *testing.T) {
	m := diskfault.NewMemFS()
	cycle := func(i int) {
		opts := PersistOptions{Sync: SyncInterval, SyncInterval: time.Millisecond}
		var s *Server
		if i == 0 {
			s = newPersistedServer(t, m, "data", opts)
		} else {
			var rep *RecoveryReport
			s, rep = recoveredServer(t, m, "data", opts)
			if !rep.Recovered {
				t.Fatalf("cycle %d: %+v", i, rep)
			}
		}
		applyN(t, s, 2)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("cycle %d shutdown: %v", i, err)
		}
	}
	cycle(0) // warm up lazy runtime state

	before := runtime.NumGoroutine()
	for i := 1; i <= 4; i++ {
		cycle(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across recover cycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// FuzzWALReplay hammers the WAL reader with mutated files: it must never
// panic, always return a consistent valid prefix, and parsing must be a
// fixed point — re-encoding the parsed records yields a file that parses
// to the same records.
func FuzzWALReplay(f *testing.F) {
	m := diskfault.NewMemFS()
	w, err := createWAL(m, "w", 7)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		req := DeltaRequest{Ops: []DeltaOpSpec{{Op: "addNode", Label: "cust"}}}
		if err := w.append(uint64(8+i), req, true); err != nil {
			f.Fatal(err)
		}
	}
	seed, err := diskfault.ReadFile(m, "w")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte("GPWL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := diskfault.NewMemFS()
		writeBytes(t, fs, "in", data)
		base, recs, _ := readWAL(fs, "in")

		// Round-trip the accepted prefix through the writer.
		w, err := createWAL(fs, "out", base)
		if err != nil {
			t.Fatalf("createWAL: %v", err)
		}
		for _, r := range recs {
			if err := w.append(r.Gen, r.Req, false); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		base2, recs2, err := readWAL(fs, "out")
		if err != nil {
			t.Fatalf("re-read of re-encoded WAL failed: %v", err)
		}
		if base2 != base || len(recs2) != len(recs) {
			t.Fatalf("round trip: base %d→%d, %d→%d records", base, base2, len(recs), len(recs2))
		}
		for i := range recs {
			if recs2[i].Gen != recs[i].Gen || !reflect.DeepEqual(recs2[i].Req, recs[i].Req) {
				t.Fatalf("record %d mutated in round trip", i)
			}
		}
	})
}

func writeBytes(t *testing.T, fs diskfault.FS, path string, data []byte) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWALAppend measures the per-batch durability cost on a real
// filesystem under both fsync policies.
func BenchmarkWALAppend(b *testing.B) {
	req := DeltaRequest{Ops: []DeltaOpSpec{
		{Op: "addNode", Label: "cust"},
		{Op: "addEdge", From: 0, To: 1, Label: "friend"},
		{Op: "setLabel", Node: 2, Label: "cust"},
	}}
	for _, sync := range []bool{true, false} {
		name := "fsync=always"
		if !sync {
			name = "fsync=none"
		}
		b.Run(name, func(b *testing.B) {
			fs := diskfault.OS()
			w, err := createWAL(fs, filepath.Join(b.TempDir(), "bench.wal"), 1)
			if err != nil {
				b.Fatal(err)
			}
			defer w.close()
			rec, _ := encodeWALRecord(1, req)
			b.SetBytes(int64(len(rec)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.append(uint64(2+i), req, sync); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
