package serve

import "container/list"

// lru is the shared bounded-LRU core of the serving caches (the match-set
// Cache and the MineContextCache): recency list + key index + the counter
// set CacheStats reports. It is not locked — each wrapping cache holds its
// own mutex around these methods, because their hit semantics differ (the
// mine cache, for instance, must release its lock before blocking on an
// in-flight build).
type lru[K comparable, V any] struct {
	cap   int
	ll    *list.List // front = most recently used
	byKey map[K]*list.Element

	hits      int64
	misses    int64
	evictions int64
	purges    int64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRU returns a core bounded to capacity entries (minimum 1).
func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K, V]{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[K]*list.Element),
	}
}

// get returns the value for key, marking it most recently used and
// counting the hit or miss.
func (l *lru[K, V]) get(key K) (V, bool) {
	el, ok := l.byKey[key]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// put inserts or refreshes key, evicting the least recently used entries
// while over capacity.
func (l *lru[K, V]) put(key K, val V) {
	if el, ok := l.byKey[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		l.ll.MoveToFront(el)
		return
	}
	l.byKey[key] = l.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	for l.ll.Len() > l.cap {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.byKey, oldest.Value.(*lruEntry[K, V]).key)
		l.evictions++
	}
}

// contains reports whether key is resident, without touching recency or
// the hit/miss counters (a liveness probe, not an access).
func (l *lru[K, V]) contains(key K) bool {
	_, ok := l.byKey[key]
	return ok
}

// remove drops key's entry if present, counting an eviction, and reports
// whether an entry was dropped.
func (l *lru[K, V]) remove(key K) bool {
	if el, ok := l.byKey[key]; ok {
		l.ll.Remove(el)
		delete(l.byKey, key)
		l.evictions++
		return true
	}
	return false
}

// carry renames oldKey's entry to newKey, keeping its recency position and
// leaving every counter alone — it is a rename, not an access, an eviction
// or an insertion, so hit/miss arithmetic stays meaningful across it. It
// reports whether an entry was carried; an existing newKey entry is
// replaced.
func (l *lru[K, V]) carry(oldKey, newKey K) bool {
	el, ok := l.byKey[oldKey]
	if !ok {
		return false
	}
	if old, ok := l.byKey[newKey]; ok {
		l.ll.Remove(old)
		delete(l.byKey, newKey)
	}
	delete(l.byKey, oldKey)
	el.Value.(*lruEntry[K, V]).key = newKey
	l.byKey[newKey] = el
	return true
}

// shrink evicts up to n least-recently-used entries, returning how many
// were dropped. Unlike purge it preserves the hot end — the memory-pressure
// ladder halves caches rather than emptying them, so the working set that
// is still earning its keep survives.
func (l *lru[K, V]) shrink(n int) int {
	dropped := 0
	for dropped < n && l.ll.Len() > 0 {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.byKey, oldest.Value.(*lruEntry[K, V]).key)
		l.evictions++
		dropped++
	}
	return dropped
}

// purge drops every entry and returns how many were dropped.
func (l *lru[K, V]) purge() int {
	n := l.ll.Len()
	l.ll.Init()
	l.byKey = make(map[K]*list.Element)
	if n > 0 {
		l.purges++
	}
	return n
}

// stats returns the current counter snapshot.
func (l *lru[K, V]) stats() CacheStats {
	return CacheStats{
		Entries:   l.ll.Len(),
		Capacity:  l.cap,
		Hits:      l.hits,
		Misses:    l.misses,
		Evictions: l.evictions,
		Purges:    l.purges,
	}
}
