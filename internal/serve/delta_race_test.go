package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeltaRaceStress drives concurrent delta ingest, identify traffic, and
// mine jobs across background compaction hot-swaps. Run under -race it pins
// the locking story: mutation and swap serialize on swapMu, readers load
// the snapshot atomically and finish on whatever generation they started.
func TestDeltaRaceStress(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2, CompactThreshold: 4})

	const batches = 25
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 256)

	// Single writer: always-valid batches (a fresh cust node wired to node
	// 0), so every 409 is a real bug. Node IDs are dense: the fixture ends
	// at 10, batch i adds node 11+i.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < batches; i++ {
			body := fmt.Sprintf(`{"ops":[
				{"op":"addNode","label":"cust"},
				{"op":"addEdge","from":%d,"to":0,"label":"friend"}]}`, 11+i)
			var dr DeltaResponse
			if code := doJSON(t, "POST", ts.URL+"/v1/graph/delta", []byte(body), &dr); code != http.StatusAccepted {
				errs <- fmt.Errorf("batch %d: status %d", i, code)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Two identify readers and a stats poller run until the writer stops.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				var idr IdentifyResponse
				if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), &idr); code != 200 {
					errs <- fmt.Errorf("identify: status %d", code)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if code := doJSON(t, "GET", ts.URL+"/stats", nil, &StatsResponse{}); code != 200 {
				errs <- fmt.Errorf("stats: status %d", code)
				return
			}
		}
	}()

	// Mine jobs ride along, racing the generation swaps underneath them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			job, err := s.StartMine(MineParams{
				XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
				K: 2, Sigma: 1, D: 2, MaxEdges: 1, Cap: 10,
			})
			if err != nil {
				errs <- fmt.Errorf("StartMine %d: %v", i, err)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				j, _ := s.jobs.Get(job.ID)
				if terminal(j.Status) {
					if j.Status != JobDone {
						errs <- fmt.Errorf("job %s: %s (%s)", j.ID, j.Status, j.Error)
					}
					break
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("job %s stuck in %s", j.ID, j.Status)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Settle: fold any remaining overlay down, then verify the server still
	// answers and the compaction machinery actually fired along the way.
	if _, _, err := s.Compact(); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	if s.Snapshot().G.Overlaid() {
		t.Error("overlay still live after final compaction")
	}
	var idr IdentifyResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/identify", []byte(`{}`), &idr); code != 200 {
		t.Fatalf("final identify: %d", code)
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Delta.Batches != batches {
		t.Errorf("applied %d batches, want %d", st.Delta.Batches, batches)
	}
	if st.Delta.Compactions < 1 {
		t.Errorf("no compaction in %d batches over threshold %d: %+v",
			batches, s.cfg.CompactThreshold, st.Delta)
	}
	if st.Graph.Nodes != 11+batches {
		t.Errorf("final node count %d, want %d", st.Graph.Nodes, 11+batches)
	}
}
