package serve

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpar/internal/mine"
)

// waitJob polls the registry until the job leaves the running states.
func waitJob(t *testing.T, s *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		job, ok := s.jobs.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.Status == JobDone || job.Status == JobFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mineFixtureParams is the fixture predicate as mine-job parameters.
func mineFixtureParams() MineParams {
	return MineParams{
		XLabel: "cust", EdgeLabel: "visit", YLabel: "restaurant",
		K: 3, Sigma: 1, D: 2, MaxEdges: 1, Workers: 2, Cap: 20,
	}
}

// TestMineContextCacheUnit exercises the LRU mechanics directly: hit on a
// repeated key, miss and separate builds across distinct keys, and
// eviction of the least recently used context.
func TestMineContextCacheUnit(t *testing.T) {
	c := NewMineContextCache(2)
	var builds atomic.Int64
	build := func() *mine.Context {
		builds.Add(1)
		return nil // the cache never dereferences contexts
	}

	k1 := MineCtxKey{Gen: 1, XLabel: 3, D: 2, N: 4}
	k2 := MineCtxKey{Gen: 1, XLabel: 3, D: 3, N: 4} // differing d
	k3 := MineCtxKey{Gen: 1, XLabel: 5, D: 2, N: 4} // differing xLabel

	if _, hit := c.GetOrBuild(k1, build); hit {
		t.Fatal("first lookup reported a hit")
	}
	if _, hit := c.GetOrBuild(k1, build); !hit {
		t.Fatal("repeat lookup missed")
	}
	if _, hit := c.GetOrBuild(k2, build); hit {
		t.Fatal("differing d hit k1's context")
	}
	if _, hit := c.GetOrBuild(k3, build); hit {
		t.Fatal("differing xLabel hit a cached context")
	}
	// Capacity 2: inserting k3 must have evicted the LRU entry (k1 — it
	// was touched before k2).
	if _, hit := c.GetOrBuild(k1, build); hit {
		t.Fatal("evicted key still reported a hit")
	}
	st := c.Stats()
	if st.Evictions < 2 || st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want hits=1 misses=4 evictions>=2", st)
	}
	if got := builds.Load(); got != 4 {
		t.Fatalf("build ran %d times, want 4", got)
	}
	// Discard (the stale-generation path of runMine) drops one entry and
	// is a no-op for absent keys.
	c.Discard(k1)
	if _, hit := c.GetOrBuild(k1, build); hit {
		t.Fatal("discarded key still reported a hit")
	}
	c.Discard(MineCtxKey{Gen: 99})
	if n := c.Purge(); n != 2 {
		t.Fatalf("Purge dropped %d entries, want 2", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Purges != 1 {
		t.Fatalf("post-purge stats = %+v", st)
	}
}

// TestMineJobContextReuse is the serving-level lifecycle test: an
// identical repeated mine job hits the context cache (and returns the
// byte-identical rule set), jobs with differing (d, n) miss, and a
// snapshot hot-swap invalidates everything.
func TestMineJobContextReuse(t *testing.T) {
	s, _, rules := newTestServer(t, Config{Workers: 2})

	p := mineFixtureParams()
	run := func(p MineParams) Job {
		job, err := s.StartMine(p)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		done := waitJob(t, s, job.ID)
		if done.Status != JobDone {
			t.Fatalf("job failed: %s", done.Error)
		}
		return done
	}

	first := run(p)
	if first.ContextCached {
		t.Error("first job reported a cached context")
	}
	second := run(p)
	if !second.ContextCached {
		t.Error("repeated job did not reuse the cached context")
	}
	if !reflect.DeepEqual(first.RuleKeys, second.RuleKeys) {
		t.Fatalf("cached run mined different rules:\n%v\nvs\n%v", first.RuleKeys, second.RuleKeys)
	}
	if st := s.mineCtx.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("mine cache stats = %+v, want hits=1 misses=1", st)
	}

	// Differing fragmentation parameters are distinct preambles.
	pd := p
	pd.D = 1
	if job := run(pd); job.ContextCached {
		t.Error("job with differing d reused a context")
	}
	pn := p
	pn.Workers = 1
	if job := run(pn); job.ContextCached {
		t.Error("job with differing worker count reused a context")
	}

	// A snapshot hot-swap purges the cache and bumps the generation, so
	// even the original parameters build afresh.
	entriesBefore := s.mineCtx.Stats().Entries
	if entriesBefore == 0 {
		t.Fatal("no cached contexts before swap")
	}
	if _, err := s.SwapRules(rules); err != nil {
		t.Fatalf("SwapRules: %v", err)
	}
	st := s.mineCtx.Stats()
	if st.Entries != 0 || st.Purges == 0 {
		t.Fatalf("swap did not purge the mine-context cache: %+v", st)
	}
	if job := run(p); job.ContextCached {
		t.Error("post-swap job reused a stale context")
	}
}

// TestConcurrentMineJobsShareOneContext is the -race stress test of the
// single-flight build: a stampede of identical mine jobs must build the
// context exactly once, share it, and all mine the identical rule set.
func TestConcurrentMineJobsShareOneContext(t *testing.T) {
	s, _, _ := newTestServer(t, Config{Workers: 2})

	const jobs = 8
	p := mineFixtureParams()
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := s.StartMine(p)
			if err != nil {
				t.Errorf("StartMine %d: %v", i, err)
				return
			}
			ids[i] = job.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var keys []string
	hits := 0
	for i, id := range ids {
		job := waitJob(t, s, id)
		if job.Status != JobDone {
			t.Fatalf("job %d failed: %s", i, job.Error)
		}
		if keys == nil {
			keys = job.RuleKeys
		} else if !reflect.DeepEqual(keys, job.RuleKeys) {
			t.Fatalf("job %d mined %v, others mined %v", i, job.RuleKeys, keys)
		}
		if job.ContextCached {
			hits++
		}
	}
	st := s.mineCtx.Stats()
	if st.Misses != 1 || st.Hits != int64(jobs-1) || hits != jobs-1 {
		t.Fatalf("stats = %+v with %d cached jobs; want exactly one build for %d jobs",
			st, hits, jobs)
	}
}

// TestStatsExposesMineCache checks the /stats wiring end to end.
func TestStatsExposesMineCache(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 2})
	p := mineFixtureParams()
	for i := 0; i < 2; i++ {
		job, err := s.StartMine(p)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		waitJob(t, s, job.ID)
	}
	var st StatsResponse
	if code := doJSON(t, "GET", ts.URL+"/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if st.MineCache.Hits != 1 || st.MineCache.Misses != 1 || st.MineCache.Entries != 1 {
		t.Fatalf("stats.mineCache = %+v, want hits=1 misses=1 entries=1", st.MineCache)
	}
	if st.MineCache.Capacity != 4 {
		t.Fatalf("default mine-cache capacity = %d, want 4", st.MineCache.Capacity)
	}
}
