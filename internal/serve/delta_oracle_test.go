// The serve-level mutation differential oracle: a server fed randomized
// delta batches through ApplyDelta must answer identify requests — and
// mine Σ — byte-identically to a server loaded from scratch with a graph
// rebuilt to the same logical content. This pins the whole incremental
// path at once: the graph overlay, DeriveDeltaSnapshot's unguided
// fragments (vs BuildSnapshot's guided ones), selective cache carry, and
// compaction's hot swap.
package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// wireModel is the oracle's reference state, mutated in lockstep with the
// live server via the same wire-level ops. It shares the live graph's
// symbol table, so a rebuilt graph renders identical rule keys.
type wireModel struct {
	syms   *graph.Symbols
	labels []graph.Label
	edges  map[[3]int32]bool // (from, to, label)
}

func newWireModel(g *graph.Graph) *wireModel {
	m := &wireModel{syms: g.Symbols(), edges: make(map[[3]int32]bool)}
	for v := 0; v < g.NumNodes(); v++ {
		m.labels = append(m.labels, g.Label(graph.NodeID(v)))
		for _, e := range g.Out(graph.NodeID(v)) {
			m.edges[[3]int32{int32(v), int32(e.To), int32(e.Label)}] = true
		}
	}
	return m
}

func (m *wireModel) apply(ops []DeltaOpSpec) {
	for _, op := range ops {
		l := int32(m.syms.Lookup(op.Label))
		switch op.Op {
		case "addNode":
			m.labels = append(m.labels, graph.Label(l))
		case "addEdge":
			m.edges[[3]int32{op.From, op.To, l}] = true
		case "delEdge":
			delete(m.edges, [3]int32{op.From, op.To, l})
		case "setLabel":
			m.labels[op.Node] = graph.Label(l)
		}
	}
}

// rebuild constructs a fresh graph with the model's exact logical content.
func (m *wireModel) rebuild() *graph.Graph {
	g := graph.New(m.syms)
	for _, l := range m.labels {
		g.AddNodeL(l)
	}
	for k := range m.edges {
		g.AddEdgeL(graph.NodeID(k[0]), graph.NodeID(k[1]), graph.Label(k[2]))
	}
	return g
}

// randBatch generates 2..6 always-valid wire ops against the model's
// current state, mutating it as it goes so intra-batch references line up
// with the server's dense ID assignment.
func (m *wireModel) randBatch(rng *rand.Rand, nodeLabels, edgeLabels []string) []DeltaOpSpec {
	n := 2 + rng.Intn(5)
	ops := make([]DeltaOpSpec, 0, n)
	for len(ops) < n {
		var op DeltaOpSpec
		switch rng.Intn(10) {
		case 0: // add node
			op = DeltaOpSpec{Op: "addNode", Label: nodeLabels[rng.Intn(len(nodeLabels))]}
		case 1, 2: // relabel
			op = DeltaOpSpec{Op: "setLabel",
				Node:  int32(rng.Intn(len(m.labels))),
				Label: nodeLabels[rng.Intn(len(nodeLabels))]}
		case 3, 4, 5: // delete a random existing edge
			if len(m.edges) == 0 {
				continue
			}
			i, target := rng.Intn(len(m.edges)), [3]int32{}
			for k := range m.edges {
				if i == 0 {
					target = k
					break
				}
				i--
			}
			op = DeltaOpSpec{Op: "delEdge", From: target[0], To: target[1],
				Label: m.syms.Name(graph.Label(target[2]))}
		default: // add a fresh edge
			from := int32(rng.Intn(len(m.labels)))
			to := int32(rng.Intn(len(m.labels)))
			name := edgeLabels[rng.Intn(len(edgeLabels))]
			if m.edges[[3]int32{from, to, int32(m.syms.Lookup(name))}] {
				continue
			}
			op = DeltaOpSpec{Op: "addEdge", From: from, To: to, Label: name}
		}
		m.apply([]DeltaOpSpec{op})
		ops = append(ops, op)
	}
	return ops
}

// identifyBytes runs a full includeMatches identify against a handler and
// returns the response with its volatile fields (generation, timing, cache
// provenance) normalized, re-marshaled for byte comparison.
func identifyBytes(t *testing.T, h http.Handler) []byte {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/identify",
		strings.NewReader(`{"eta":1.0,"includeMatches":true}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("identify: %d (%s)", rec.Code, rec.Body.Bytes())
	}
	var idr IdentifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &idr); err != nil {
		t.Fatalf("identify body: %v", err)
	}
	idr.Generation = 0
	idr.ElapsedMs = 0
	for i := range idr.Rules {
		idr.Rules[i].Cached = false
		idr.Rules[i].Coalesced = false
	}
	out, err := json.Marshal(idr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sigma summarizes a DMine result for equality checks: the search
// trajectory counters plus every retained rule key in order.
type sigma struct {
	f                       float64
	rounds, generated, kept int
	topK, all               []string
}

func sigmaOf(res *mine.Result) sigma {
	s := sigma{f: res.F, rounds: res.Rounds, generated: res.Generated, kept: res.Kept}
	for _, mm := range res.TopK {
		s.topK = append(s.topK, mm.Rule.Key())
	}
	for _, mm := range res.All {
		s.all = append(s.all, mm.Rule.Key())
	}
	return s
}

func TestDeltaServeOracle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		n := n
		t.Run(string(rune('0'+n))+"-workers", func(t *testing.T) {
			t.Parallel()
			syms := graph.NewSymbols()
			g := gen.Pokec(syms, gen.DefaultPokec(120, 1))
			var pred core.Predicate
			for _, p := range gen.PokecPredicates(syms) {
				if len(core.Pq(g, p)) > 0 {
					pred = p
					break
				}
			}
			if pred.XLabel == graph.NoLabel {
				t.Fatal("no supported predicate in generated graph")
			}
			rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 3, VP: 3, EP: 3, Seed: 1})
			if len(rules) == 0 {
				t.Fatal("no rules generated")
			}
			model := newWireModel(g)

			live := New(Config{Workers: n})
			if err := live.LoadSnapshot(g, pred, rules); err != nil {
				t.Fatalf("LoadSnapshot: %v", err)
			}
			liveH := live.Handler()

			// The op vocabulary: every node and edge label name the
			// generator used, read back from the base graph.
			nodeLabels := map[string]bool{}
			edgeLabels := map[string]bool{}
			for v := 0; v < g.NumNodes(); v++ {
				nodeLabels[g.LabelName(graph.NodeID(v))] = true
				for _, e := range g.Out(graph.NodeID(v)) {
					edgeLabels[syms.Name(e.Label)] = true
				}
			}
			var nodeNames, edgeNames []string
			for name := range nodeLabels {
				nodeNames = append(nodeNames, name)
			}
			for name := range edgeLabels {
				edgeNames = append(edgeNames, name)
			}

			// compare rebuilds the reference server from the model and
			// checks the identify response byte-for-byte.
			compare := func(step int) *graph.Graph {
				t.Helper()
				refG := model.rebuild()
				ref := New(Config{Workers: n})
				if err := ref.LoadSnapshot(refG, pred, rules); err != nil {
					t.Fatalf("step %d: reference LoadSnapshot: %v", step, err)
				}
				liveBytes := identifyBytes(t, liveH)
				refBytes := identifyBytes(t, ref.Handler())
				if !bytes.Equal(liveBytes, refBytes) {
					t.Fatalf("step %d: identify diverged from rebuild\nlive: %s\nref:  %s",
						step, liveBytes, refBytes)
				}
				return refG
			}

			mineOpts := mine.Options{
				K: 3, Sigma: 1, D: 2, MaxEdges: 2, N: n, MaxCandidatesPerRound: 20,
			}.WithOptimizations()

			rng := rand.New(rand.NewSource(int64(7 * n)))
			const steps = 8
			for step := 1; step <= steps; step++ {
				batch := model.randBatch(rng, nodeNames, edgeNames)
				if _, err := live.ApplyDelta(DeltaRequest{Ops: batch}); err != nil {
					t.Fatalf("step %d: ApplyDelta: %v", step, err)
				}
				refG := compare(step)

				// Mid-sequence and at the end: DMine Σ over the overlay
				// graph must equal Σ over the rebuilt graph, with the
				// round arenas both on and off.
				if step == steps/2 || step == steps {
					for _, arenasOff := range []bool{false, true} {
						opts := mineOpts
						opts.DisableArenas = arenasOff
						liveSigma := sigmaOf(mine.DMine(live.Snapshot().G, pred, opts))
						refSigma := sigmaOf(mine.DMine(refG, pred, opts))
						if !reflect.DeepEqual(liveSigma, refSigma) {
							t.Fatalf("step %d (arenasOff=%v): Σ diverged\nlive: %+v\nref:  %+v",
								step, arenasOff, liveSigma, refSigma)
						}
					}
				}

				// Every third step, fold the overlay down and re-compare:
				// compaction must be invisible to readers.
				if step%3 == 0 {
					if _, did, err := live.Compact(); err != nil || !did {
						t.Fatalf("step %d: Compact: did=%v err=%v", step, did, err)
					}
					compare(step)
				}
			}
		})
	}
}
