package serve

import (
	"sync"
	"time"
)

// Breaker states, as exposed on /stats and /healthz.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerStats is a point-in-time view of the fleet circuit breaker.
type BreakerStats struct {
	State string `json:"state"`
	// ConsecutiveFailures is the current run of failed fleet jobs (reset by
	// any success).
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// Trips counts closed/half-open → open transitions over the server's
	// lifetime.
	Trips int64 `json:"trips"`
	// Skips counts fleet-eligible jobs short-circuited straight to
	// in-process mining because the breaker was open.
	Skips int64 `json:"skips"`
	// RetryInSec, while open, is how long until the next half-open probe is
	// admitted (0 when one is already due or the breaker is not open).
	RetryInSec float64 `json:"retryInSec,omitempty"`
}

// breaker is a consecutive-failure circuit breaker over the worker fleet.
// Closed: every fleet-eligible job may try the fleet. After threshold
// consecutive failures it opens: jobs skip the fleet (and its dial+retry
// latency) and mine in-process immediately. After cooldown, exactly one
// job is admitted as the half-open probe; its success closes the breaker,
// its failure re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	mu       sync.Mutex
	state    string
	consec   int
	openedAt time.Time
	probing  bool // a half-open probe job is in flight
	trips    int64
	skips    int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// allow reports whether a fleet attempt may proceed. While open it returns
// false until the cooldown elapses; then the first caller becomes the
// half-open probe and later callers keep skipping until the probe resolves.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.skips++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			b.skips++
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// success records a fleet job that completed; it closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.probing = false
	b.state = BreakerClosed
}

// failure records a fleet job that exhausted its retries. A half-open
// probe's failure re-opens immediately; otherwise the consecutive-failure
// count must reach the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	wasProbe := b.state == BreakerHalfOpen && b.probing
	b.probing = false
	if wasProbe || (b.state == BreakerClosed && b.consec >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// stats snapshots the breaker.
func (b *breaker) stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:               b.state,
		ConsecutiveFailures: b.consec,
		Trips:               b.trips,
		Skips:               b.skips,
	}
	if b.state == BreakerOpen {
		if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
			st.RetryInSec = rem.Seconds()
		}
	}
	return st
}
