package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBatcherCoalescesConcurrentCalls(t *testing.T) {
	b := NewBatcher[int](0)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (int, error) {
		calls.Add(1)
		close(started)
		<-release
		return 42, nil
	}

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	shared := make([]bool, n)
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		results[0], shared[0], _ = b.Do("k", fn)
	}()
	<-started // fn is in flight; everyone below must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shared[i], _ = b.Do("k", func() (int, error) {
				t.Error("follower executed fn")
				return 0, nil
			})
		}(i)
	}
	// Give followers time to enqueue, then let the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, r := range results {
		if r != 42 {
			t.Errorf("caller %d got %d, want 42", i, r)
		}
		if i > 0 && !shared[i] {
			t.Errorf("caller %d not marked shared", i)
		}
	}
	if shared[0] {
		t.Error("leader marked shared")
	}
	st := b.Stats()
	if st.Executions != 1 || st.Coalesced != n-1 {
		t.Errorf("stats %+v, want 1 execution, %d coalesced", st, n-1)
	}
}

func TestBatcherDistinctKeysRunIndependently(t *testing.T) {
	b := NewBatcher[string](0)
	a, sharedA, _ := b.Do("a", func() (string, error) { return "va", nil })
	c, sharedC, _ := b.Do("c", func() (string, error) { return "vc", nil })
	if a != "va" || c != "vc" || sharedA || sharedC {
		t.Fatalf("got (%q,%v) (%q,%v)", a, sharedA, c, sharedC)
	}
	if st := b.Stats(); st.Executions != 2 || st.Coalesced != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestBatcherPropagatesErrors(t *testing.T) {
	b := NewBatcher[int](0)
	boom := errors.New("boom")
	_, _, err := b.Do("k", func() (int, error) { return 0, boom })
	if err != boom {
		t.Fatalf("err %v, want boom", err)
	}
	// The failed call is not pinned: a later call re-executes.
	v, shared, err := b.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || shared || err != nil {
		t.Fatalf("retry got (%d,%v,%v)", v, shared, err)
	}
}

func TestBatcherWindowCollectsLateArrivals(t *testing.T) {
	b := NewBatcher[int](30 * time.Millisecond)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * time.Millisecond) // staggered arrivals
			v, _, _ := b.Do("k", func() (int, error) {
				calls.Add(1)
				return 1, nil
			})
			if v != 1 {
				t.Errorf("caller %d got %d", i, v)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1 (window should absorb staggered arrivals)", got)
	}
}
