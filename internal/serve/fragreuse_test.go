package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/pattern"
)

// mustMine unwraps a (result, error) mining pair; the differentials below
// never expect errors.
func mustMine(res *mine.Result, err error) *mine.Result {
	if err != nil {
		panic(err)
	}
	return res
}

// resultFingerprint serializes the exported surface of a mining result so
// the fragment-sharing differential can compare byte-for-byte.
func resultFingerprint(res *mine.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d generated=%d kept=%d pruned=%d F=%.17g\n",
		res.Rounds, res.Generated, res.Kept, res.Pruned, res.F)
	dump := func(name string, ms []mine.Mined) {
		fmt.Fprintf(&b, "%s %d\n", name, len(ms))
		for _, mm := range ms {
			fmt.Fprintf(&b, "  %s %s stats=%+v conf=%.17g set=%v\n",
				mm.Key(), mm.Rule, mm.Stats, mm.Conf, mm.Set)
		}
	}
	dump("topk", res.TopK)
	dump("all", res.All)
	return b.String()
}

// fragReuseFixture builds a Pokec-like graph plus a radius-2 rule, so a
// snapshot built from it partitions with d = 2 — the same layout a default
// mine job over the predicate asks for.
func fragReuseFixture(t testing.TB) (*graph.Graph, core.Predicate, *core.Rule) {
	t.Helper()
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(300, 7))
	pred := gen.PokecPredicates(syms)[0]
	q := pattern.New(syms)
	x := q.AddNode("user")
	friend := q.AddNode("user")
	m := q.AddNode("music:Disco")
	q.AddEdge(x, friend, "follow")
	q.AddEdge(friend, m, "like_music")
	q.X = x
	rule := &core.Rule{Q: q, Pred: pred}
	if err := rule.Validate(); err != nil {
		t.Fatalf("fixture rule: %v", err)
	}
	return g, pred, rule
}

// TestSnapshotFragmentReuseIdentity is the differential half of the
// snapshot↔mine-context fragment-sharing invariant: a context borrowed
// from the serving snapshot's fragments must mine byte-identically to a
// context that partitions the graph itself.
func TestSnapshotFragmentReuseIdentity(t *testing.T) {
	g, pred, rule := fragReuseFixture(t)
	snap, err := BuildSnapshot(g, pred, []*core.Rule{rule}, Config{Workers: 3})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	opts := mine.Options{
		K: 5, Sigma: 2, D: snap.D, Lambda: 0.5, N: len(snap.frags), MaxEdges: 2,
	}.WithOptimizations().Defaults()

	fresh := mine.NewContext(g, pred.XLabel, opts)
	borrowed := mine.ContextFromFragments(snap.G, pred.XLabel, snap.D, len(snap.frags), snap.fragmentList())
	if fresh.Borrowed() || !borrowed.Borrowed() {
		t.Fatalf("Borrowed() flags wrong: fresh=%v borrowed=%v", fresh.Borrowed(), borrowed.Borrowed())
	}
	want := resultFingerprint(mustMine(mine.DMineCtx(fresh, pred, opts)))
	got := resultFingerprint(mustMine(mine.DMineCtx(borrowed, pred, opts)))
	if got != want {
		t.Fatalf("mining on snapshot fragments differs from fresh partition:\n--- fresh ---\n%s--- borrowed ---\n%s",
			want, got)
	}
}

// TestMinePoolRoundReuse is the round-reuse stress of the accumulator pool:
// two sequential mine jobs over one recycled worker set — the second run
// inherits the first's grown arenas, memoized probes and intern tables —
// must both match a fresh run. CI runs this package under -race, which
// additionally asserts the park/acquire handoff is clean.
func TestMinePoolRoundReuse(t *testing.T) {
	g, pred, rule := fragReuseFixture(t)
	snap, err := BuildSnapshot(g, pred, []*core.Rule{rule}, Config{Workers: 2})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	opts := mine.Options{
		K: 5, Sigma: 2, D: snap.D, Lambda: 0.5, N: len(snap.frags), MaxEdges: 2,
	}.WithOptimizations().Defaults()
	ctx := mine.ContextFromFragments(snap.G, pred.XLabel, snap.D, len(snap.frags), snap.fragmentList())
	want := resultFingerprint(mustMine(mine.DMineCtx(ctx, pred, opts)))

	pool := newMinePool(2)
	sh, ep1 := pool.acquire(ctx)
	if got := resultFingerprint(mustMine(sh.DMine(pred, opts))); got != want {
		t.Fatalf("first pooled job differs from fresh run:\n%s\nvs\n%s", got, want)
	}
	pool.park(sh, ep1, true)
	sh2, ep2 := pool.acquire(ctx)
	if sh2 != sh {
		t.Fatal("second job did not reuse the parked worker set")
	}
	if got := resultFingerprint(mustMine(sh2.DMine(pred, opts))); got != want {
		t.Fatalf("recycled-worker-set job differs from fresh run:\n%s\nvs\n%s", got, want)
	}
	pool.park(sh2, ep2, true)
	if st := pool.stats(); st.Gets != 2 || st.Reuses != 1 || st.Parked != 1 {
		t.Fatalf("pool stats: %+v", st)
	}
	// A purge (snapshot swap) must drop the parked set — and a job that was
	// in flight across the purge must not re-insert its set (stale epoch),
	// nor may a job whose context the LRU evicted (live=false).
	sh3, ep3 := pool.acquire(ctx)
	pool.purge()
	if st := pool.stats(); st.Parked != 0 {
		t.Fatalf("parked sets survive purge: %+v", st)
	}
	pool.park(sh3, ep3, true)
	if st := pool.stats(); st.Parked != 0 {
		t.Fatalf("stale-epoch park was accepted: %+v", st)
	}
	sh4, ep4 := pool.acquire(ctx)
	pool.park(sh4, ep4, false)
	if st := pool.stats(); st.Parked != 0 {
		t.Fatalf("park of an evicted context was accepted: %+v", st)
	}
}

// TestMineJobFragmentReuseReported drives the full job path: a mine job
// whose (xLabel, d, n) matches the serving snapshot must report
// fragmentsReused on /v1/jobs/{id} from its very first run (cold context
// cache), a repeat must additionally report contextCached, and /stats must
// count both forms of reuse plus the CPU budget split.
func TestMineJobFragmentReuseReported(t *testing.T) {
	g, pred, rule := fragReuseFixture(t)
	s := New(Config{Workers: 4})
	if err := s.LoadSnapshot(g, pred, []*core.Rule{rule}); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if snap := s.Snapshot(); snap.D != 2 {
		t.Fatalf("fixture snapshot has d=%d, want 2", snap.D)
	}

	params := MineParams{
		XLabel: "user", EdgeLabel: "like_music", YLabel: "music:Disco",
		K: 5, Sigma: 2, D: 2, MaxEdges: 1, Workers: 4,
	}
	runJob := func() Job {
		t.Helper()
		job, err := s.StartMine(params)
		if err != nil {
			t.Fatalf("StartMine: %v", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, ok := s.jobs.Get(job.ID)
			if !ok {
				t.Fatalf("job %s vanished", job.ID)
			}
			if st.Status == JobDone {
				return st
			}
			if st.Status == JobFailed {
				t.Fatalf("job failed: %s", st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in %s", st.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	first := runJob()
	if !first.FragmentsReused {
		t.Fatalf("first matching job did not reuse snapshot fragments: %+v", first)
	}
	if first.ContextCached {
		t.Fatalf("first job claims a warm context cache: %+v", first)
	}
	second := runJob()
	if !second.FragmentsReused || !second.ContextCached {
		t.Fatalf("repeat job lost reuse: %+v", second)
	}
	if len(first.RuleKeys) == 0 || fmt.Sprint(first.RuleKeys) != fmt.Sprint(second.RuleKeys) {
		t.Fatalf("reused-fragment jobs disagree: %v vs %v", first.RuleKeys, second.RuleKeys)
	}

	// A job with a different d partitions its own fragments.
	mismatch := params
	mismatch.D = 1
	saved := params
	params = mismatch
	other := runJob()
	params = saved
	if other.FragmentsReused {
		t.Fatalf("d-mismatched job claims fragment reuse: %+v", other)
	}

	rec := doStats(t, s)
	if rec.MineFragReuses < 2 {
		t.Fatalf("stats mineFragReuses = %d, want >= 2", rec.MineFragReuses)
	}
	if rec.MinePool.Gets < 3 || rec.MinePool.Reuses < 1 {
		t.Fatalf("stats minePool = %+v", rec.MinePool)
	}
	if rec.CPUBudget.Procs < 1 || rec.CPUBudget.MineProcs < 1 || rec.CPUBudget.PoolSize < 1 ||
		rec.CPUBudget.MineShare <= 0 || rec.CPUBudget.MineShare > 1 {
		t.Fatalf("stats cpuBudget = %+v", rec.CPUBudget)
	}
}

// doStats fetches /stats through the real handler.
func doStats(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	req, err := http.NewRequest("GET", "/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	var resp StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	return resp
}
