package serve

import (
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/pattern"
)

// mineJobBenchInput builds the seeded workload shared by the warm/cold
// mine-job benchmarks: the same Pokec-like graph as BenchmarkDMine, mined
// with a single-round budget so the partition + freeze preamble — the part
// the context cache removes — is a visible share of each job. Recorded in
// BENCH_mine.json by `make bench`.
func mineJobBenchInput(b *testing.B) (*graph.Graph, core.Predicate, mine.Options) {
	b.Helper()
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(500, 7))
	g.Freeze()
	pred := gen.PokecPredicates(syms)[0]
	opts := mine.Options{
		K: 10, Sigma: 5, D: 2, Lambda: 0.5, N: 4, MaxEdges: 1,
	}.WithOptimizations().Defaults()
	return g, pred, opts
}

// BenchmarkMineJobCold is a mine job against an empty context cache: every
// iteration pays the full preamble (candidate collection, partition,
// fragment freeze) before mining.
func BenchmarkMineJobCold(b *testing.B) {
	g, pred, opts := mineJobBenchInput(b)
	key := MineCtxKey{Gen: 1, XLabel: pred.XLabel, D: opts.D, N: opts.N}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := NewMineContextCache(4)
		ctx, hit := cache.GetOrBuild(key, func() *mine.Context {
			return mine.NewContext(g, pred.XLabel, opts)
		})
		if hit {
			b.Fatal("cold job hit the cache")
		}
		if res, err := mine.DMineCtx(ctx, pred, opts); err != nil || len(res.TopK) == 0 {
			b.Fatalf("no rules mined (err=%v)", err)
		}
	}
}

// BenchmarkMineJobWarm is the repeated-job steady state: the context is
// already resident, so every iteration skips partition + freeze entirely.
// The gap to BenchmarkMineJobCold is the preamble cost the cache removes.
func BenchmarkMineJobWarm(b *testing.B) {
	g, pred, opts := mineJobBenchInput(b)
	key := MineCtxKey{Gen: 1, XLabel: pred.XLabel, D: opts.D, N: opts.N}
	cache := NewMineContextCache(4)
	cache.GetOrBuild(key, func() *mine.Context {
		return mine.NewContext(g, pred.XLabel, opts)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, hit := cache.GetOrBuild(key, func() *mine.Context {
			b.Fatal("warm job rebuilt the context")
			return nil
		})
		if !hit {
			b.Fatal("warm job missed the cache")
		}
		if res, err := mine.DMineCtx(ctx, pred, opts); err != nil || len(res.TopK) == 0 {
			b.Fatalf("no rules mined (err=%v)", err)
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Hits == 0 {
		b.Fatalf("warm benchmark recorded no cache hits: %+v", st)
	}
}

// BenchmarkMineJobSnapshotReuse is the full serve-side steady state of a
// repeated mine job whose (xLabel, d, n) matches the serving snapshot: the
// context was built from the snapshot's own frozen fragments (zero
// partition + zero Freeze, even for the generation's first job), the
// context cache is warm, and the worker set comes from the accumulator
// pool with its round arenas already grown. The gap to BenchmarkMineJobWarm
// is the remaining per-job scratch the pool removes.
func BenchmarkMineJobSnapshotReuse(b *testing.B) {
	g, pred, opts := mineJobBenchInput(b)
	// A radius-2 rule pins the snapshot partition radius to the mine job's
	// d, so the layouts coincide and the fragments are shared.
	syms := g.Symbols()
	q := pattern.New(syms)
	x := q.AddNode("user")
	friend := q.AddNode("user")
	m := q.AddNode("music:Disco")
	q.AddEdge(x, friend, "follow")
	q.AddEdge(friend, m, "like_music")
	q.X = x
	rule := &core.Rule{Q: q, Pred: pred}
	snap, err := BuildSnapshot(g, pred, []*core.Rule{rule}, Config{Workers: opts.N})
	if err != nil {
		b.Fatalf("BuildSnapshot: %v", err)
	}
	if snap.D != opts.D || len(snap.frags) != opts.N {
		b.Fatalf("snapshot layout (d=%d, n=%d) does not match job (d=%d, n=%d)",
			snap.D, len(snap.frags), opts.D, opts.N)
	}
	key := MineCtxKey{Gen: 1, XLabel: pred.XLabel, D: opts.D, N: opts.N}
	cache := NewMineContextCache(4)
	pool := newMinePool(2)
	cache.GetOrBuild(key, func() *mine.Context {
		return mine.ContextFromFragments(snap.G, pred.XLabel, opts.D, opts.N, snap.fragmentList())
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, hit := cache.GetOrBuild(key, func() *mine.Context {
			b.Fatal("steady-state job rebuilt the context")
			return nil
		})
		if !hit || !ctx.Borrowed() {
			b.Fatal("job did not reuse the snapshot fragments")
		}
		sh, epoch := pool.acquire(ctx)
		if res, err := sh.DMine(pred, opts); err != nil || len(res.TopK) == 0 {
			b.Fatalf("no rules mined (err=%v)", err)
		}
		pool.park(sh, epoch, true)
	}
	b.StopTimer()
	if st := pool.stats(); b.N > 1 && st.Reuses == 0 {
		b.Fatalf("no accumulator reuse recorded: %+v", st)
	}
}
