package serve

import (
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// mineJobBenchInput builds the seeded workload shared by the warm/cold
// mine-job benchmarks: the same Pokec-like graph as BenchmarkDMine, mined
// with a single-round budget so the partition + freeze preamble — the part
// the context cache removes — is a visible share of each job. Recorded in
// BENCH_mine.json by `make bench`.
func mineJobBenchInput(b *testing.B) (*graph.Graph, core.Predicate, mine.Options) {
	b.Helper()
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(500, 7))
	g.Freeze()
	pred := gen.PokecPredicates(syms)[0]
	opts := mine.Options{
		K: 10, Sigma: 5, D: 2, Lambda: 0.5, N: 4, MaxEdges: 1,
	}.WithOptimizations().Defaults()
	return g, pred, opts
}

// BenchmarkMineJobCold is a mine job against an empty context cache: every
// iteration pays the full preamble (candidate collection, partition,
// fragment freeze) before mining.
func BenchmarkMineJobCold(b *testing.B) {
	g, pred, opts := mineJobBenchInput(b)
	key := MineCtxKey{Gen: 1, XLabel: pred.XLabel, D: opts.D, N: opts.N}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := NewMineContextCache(4)
		ctx, hit := cache.GetOrBuild(key, func() *mine.Context {
			return mine.NewContext(g, pred.XLabel, opts)
		})
		if hit {
			b.Fatal("cold job hit the cache")
		}
		if res := mine.DMineCtx(ctx, pred, opts); len(res.TopK) == 0 {
			b.Fatal("no rules mined")
		}
	}
}

// BenchmarkMineJobWarm is the repeated-job steady state: the context is
// already resident, so every iteration skips partition + freeze entirely.
// The gap to BenchmarkMineJobCold is the preamble cost the cache removes.
func BenchmarkMineJobWarm(b *testing.B) {
	g, pred, opts := mineJobBenchInput(b)
	key := MineCtxKey{Gen: 1, XLabel: pred.XLabel, D: opts.D, N: opts.N}
	cache := NewMineContextCache(4)
	cache.GetOrBuild(key, func() *mine.Context {
		return mine.NewContext(g, pred.XLabel, opts)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, hit := cache.GetOrBuild(key, func() *mine.Context {
			b.Fatal("warm job rebuilt the context")
			return nil
		})
		if !hit {
			b.Fatal("warm job missed the cache")
		}
		if res := mine.DMineCtx(ctx, pred, opts); len(res.TopK) == 0 {
			b.Fatal("no rules mined")
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Hits == 0 {
		b.Fatalf("warm benchmark recorded no cache hits: %+v", st)
	}
}
