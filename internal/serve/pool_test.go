package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	var cur, peak, ran atomic.Int64
	task := func() {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // busy work to overlap tasks
			_ = i * i
		}
		ran.Add(1)
		cur.Add(-1)
	}
	tasks := make([]func(), 20)
	for i := range tasks {
		tasks[i] = task
	}
	p.Do(tasks...)
	if ran.Load() != 20 {
		t.Fatalf("ran %d tasks, want 20", ran.Load())
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d exceeds pool size 2", peak.Load())
	}
}

func TestPoolSharedAcrossCallers(t *testing.T) {
	// Two goroutines fanning out through the same pool stay jointly bounded.
	p := NewPool(3)
	var cur, peak atomic.Int64
	task := func() {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		for i := 0; i < 500; i++ {
			_ = i * i
		}
		cur.Add(-1)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]func(), 10)
			for i := range tasks {
				tasks[i] = task
			}
			p.Do(tasks...)
		}()
	}
	wg.Wait()
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds shared pool size 3", peak.Load())
	}
}

func TestPoolEmptyAndSingle(t *testing.T) {
	p := NewPool(0) // clamps to 1
	if p.Size() != 1 {
		t.Fatalf("size %d, want 1", p.Size())
	}
	p.Do() // no tasks: must not block
	done := false
	p.Do(func() { done = true })
	if !done {
		t.Error("single task did not run")
	}
}
