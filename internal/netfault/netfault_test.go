package netfault

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// frame renders one wire-shaped frame: [u32 len][u8 type][payload].
func frame(typ byte, payload []byte) []byte {
	out := make([]byte, 4, 5+len(payload))
	binary.BigEndian.PutUint32(out, uint32(1+len(payload)))
	out = append(out, typ)
	return append(out, payload...)
}

// pair returns two ends of a TCP connection on loopback.
func pair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			ch <- c
		}
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-ch
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// readAll drains the reader until EOF/error with a deadline guard.
func readAll(t *testing.T, c net.Conn) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	b, _ := io.ReadAll(c)
	return b
}

func TestPassThroughAndSkipBytes(t *testing.T) {
	client, server := pair(t)
	fc := WrapConn(server, &Script{SkipBytes: 5})

	preamble := []byte("GPWK\x02")
	f1 := frame(1, []byte("hello"))
	f2 := frame(2, nil)
	var sent []byte
	sent = append(sent, preamble...)
	sent = append(sent, f1...)
	sent = append(sent, f2...)
	go func() {
		// Dribble the stream in awkward chunk sizes: the framer must not
		// care how writes are batched.
		for i := 0; i < len(sent); i += 3 {
			end := min(i+3, len(sent))
			if _, err := fc.Write(sent[i:end]); err != nil {
				return
			}
		}
		fc.Close()
	}()
	if got := readAll(t, client); !bytes.Equal(got, sent) {
		t.Fatalf("pass-through mangled the stream:\ngot  %x\nwant %x", got, sent)
	}
}

func TestCloseAtFrame(t *testing.T) {
	client, server := pair(t)
	fc := WrapConn(server, &Script{CloseAtFrame: 2})

	f1 := frame(1, []byte("ok"))
	if _, err := fc.Write(f1); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	_, err := fc.Write(frame(2, []byte("never")))
	if err == nil || !strings.Contains(err.Error(), "disconnect at frame 2") {
		t.Fatalf("frame 2 error = %v, want injected disconnect", err)
	}
	// The peer sees frame 1 whole, then EOF — nothing of frame 2.
	if got := readAll(t, client); !bytes.Equal(got, f1) {
		t.Fatalf("peer read %x, want exactly frame 1 %x", got, f1)
	}
}

func TestTruncateAtFrame(t *testing.T) {
	client, server := pair(t)
	fc := WrapConn(server, &Script{TruncateAtFrame: 1})

	f := frame(3, []byte("0123456789"))
	_, err := fc.Write(f)
	if err == nil || !strings.Contains(err.Error(), "truncation at frame 1") {
		t.Fatalf("err = %v, want injected truncation", err)
	}
	got := readAll(t, client)
	want := (len(f)) / 2
	if len(got) != want || !bytes.Equal(got, f[:want]) {
		t.Fatalf("peer read %d bytes %x, want the first %d of %x", len(got), got, want, f)
	}
}

func TestCorruptLength(t *testing.T) {
	client, server := pair(t)
	fc := WrapConn(server, &Script{CorruptAtFrame: 1})

	f := frame(1, []byte("abc"))
	if _, err := fc.Write(f); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	got := readAll(t, client)
	if len(got) != len(f) {
		t.Fatalf("read %d bytes, want %d", len(got), len(f))
	}
	wantLen := binary.BigEndian.Uint32(f) | 0x80000000
	if gotLen := binary.BigEndian.Uint32(got); gotLen != wantLen {
		t.Fatalf("length prefix = %#x, want top bit flipped %#x", gotLen, wantLen)
	}
	if !bytes.Equal(got[4:], f[4:]) {
		t.Fatal("corrupt-length damaged the body too")
	}
}

func TestCorruptPayload(t *testing.T) {
	client, server := pair(t)
	fc := WrapConn(server, &Script{CorruptAtFrame: 1, CorruptKind: CorruptPayload})

	f := frame(1, []byte("0123456789"))
	if _, err := fc.Write(f); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	got := readAll(t, client)
	if len(got) != len(f) {
		t.Fatalf("read %d bytes, want %d", len(got), len(f))
	}
	diff := 0
	at := -1
	for i := range f {
		if got[i] != f[i] {
			diff++
			at = i
		}
	}
	if diff != 1 || at < 5 || got[at] != f[at]^0x80 {
		t.Fatalf("want exactly one bit-flipped payload byte, got %d diffs (last at %d)", diff, at)
	}
}

func TestStallUnblocksOnClose(t *testing.T) {
	_, server := pair(t)
	fc := WrapConn(server, &Script{StallAtFrame: 1})

	errc := make(chan error, 1)
	go func() {
		_, err := fc.Write(frame(1, []byte("stuck")))
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "stall at frame 1") {
			t.Fatalf("unblocked write err = %v, want injected stall", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the stalled write")
	}
}

func TestListenerRefuseAndClose(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Connection 0 is refused; connection 1 stalls its first frame.
	l := Wrap(inner, func(i int) *Script {
		if i == 0 {
			return &Script{RefuseDial: true}
		}
		return &Script{StallAtFrame: 1}
	})
	defer l.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	// The refused dial connects at TCP level but dies before any byte: a
	// read on it hits EOF/reset, and Accept never surfaces it.
	c0, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c0.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c0.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused connection delivered bytes")
	}

	c1, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	var sc net.Conn
	select {
	case sc = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("second connection never accepted")
	}

	// Its server side stalls writing frame 1 — and closing the LISTENER
	// (not the conn) must unblock it, so tests cannot leak goroutines.
	errc := make(chan error, 1)
	go func() {
		_, err := sc.Write(frame(1, nil))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stalled write returned nil after listener close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("listener Close did not unblock the stalled conn")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	_, server := pair(t)
	fc := WrapConn(server, &Script{})
	fc.Close()
	if _, err := fc.Write(frame(1, nil)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close = %v, want net.ErrClosed", err)
	}
}
