// Package netfault injects deterministic, scripted faults into net
// connections for resilience testing: refused or delayed accepts, per-frame
// write delays and stalls, disconnects, mid-frame truncation and byte
// corruption. The wrapper understands the wire package's length-prefixed
// [u32 len][u8 type][payload] framing, so faults land on exact frame
// boundaries no matter how the wrapped endpoint batches its writes —
// "stall instead of answering the second frame" is expressible from any
// test, against any component that speaks the protocol.
//
// Faults apply to what the wrapped endpoint WRITES. Wrapping a worker
// listener (the usual arrangement) therefore injects faults into
// worker→coordinator traffic, with the unframed handshake bytes passed
// through via Script.SkipBytes; wrapping a dialed connection with WrapConn
// injects faults into the dialer's requests instead.
//
// Outcome guarantees: StallAtFrame blocks until the connection is closed
// (the peer's deadline is what unwedges the exchange — exactly the
// production shape), CloseAtFrame and TruncateAtFrame surface as read
// errors on the peer, and CorruptAtFrame in its default CorruptLength mode
// flips the top bit of the length prefix so the peer's frame-size guard
// rejects it with a typed error. CorruptPayload flips a bit mid-payload and
// is only guaranteed to surface where the protocol validates content
// (flag bytes, trailing-byte checks, fragment content hashes).
package netfault

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// CorruptMode selects what CorruptAtFrame damages.
type CorruptMode int

const (
	// CorruptLength flips the top bit of the frame's length prefix: the
	// reader's max-frame guard rejects the absurd size with a typed error.
	// This is the default because it is deterministic for every frame.
	CorruptLength CorruptMode = iota
	// CorruptPayload flips one bit in the middle of the frame body (the
	// type byte when the payload is empty). Whether the peer notices
	// depends on the payload's own validation.
	CorruptPayload
)

// Script is one connection's fault plan. The zero value is a transparent
// pass-through. Frame indexes are 1-based and count frames the wrapped
// endpoint writes, after SkipBytes of unframed preamble.
type Script struct {
	// RefuseDial closes the connection immediately on accept, before any
	// byte moves — the dialer sees a reset during its handshake.
	RefuseDial bool
	// AcceptDelay pauses the accept loop before handing the connection out.
	AcceptDelay time.Duration
	// SkipBytes is the length of the unframed preamble (the protocol
	// handshake) passed through before frame parsing starts.
	SkipBytes int
	// WriteDelay is added before each frame is forwarded.
	WriteDelay time.Duration
	// StallAtFrame blocks instead of writing frame N, until the connection
	// is closed (by the peer's deadline or the listener's teardown).
	StallAtFrame int
	// CloseAtFrame drops the connection instead of writing frame N.
	CloseAtFrame int
	// TruncateAtFrame writes only the first half of frame N, then drops the
	// connection — the peer reads a mid-frame EOF.
	TruncateAtFrame int
	// CorruptAtFrame damages frame N per CorruptKind.
	CorruptAtFrame int
	// CorruptKind selects the corruption (default CorruptLength).
	CorruptKind CorruptMode
}

// Listener wraps an inner listener, applying a per-connection Script to
// each accepted connection. Closing the Listener also closes every scripted
// connection it handed out, which unblocks any stalled writes — tests that
// close the listener in cleanup never leak a stalled goroutine.
type Listener struct {
	inner net.Listener
	// scriptFor returns the script for the i-th accepted connection
	// (0-based, counting refused ones); nil means pass-through.
	scriptFor func(i int) *Script

	mu    sync.Mutex
	n     int
	conns []*Conn
}

// Wrap returns a chaos listener over l. scriptFor picks the fault plan per
// accepted connection (by 0-based index); returning nil passes the
// connection through untouched.
func Wrap(l net.Listener, scriptFor func(i int) *Script) *Listener {
	return &Listener{inner: l, scriptFor: scriptFor}
}

// Accept implements net.Listener. Refused connections are closed
// immediately (consuming their script index) and the next connection is
// awaited.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.n
		l.n++
		l.mu.Unlock()
		var s *Script
		if l.scriptFor != nil {
			s = l.scriptFor(i)
		}
		if s == nil {
			return c, nil
		}
		if s.AcceptDelay > 0 {
			time.Sleep(s.AcceptDelay)
		}
		if s.RefuseDial {
			c.Close()
			continue
		}
		fc := WrapConn(c, s)
		l.mu.Lock()
		l.conns = append(l.conns, fc)
		l.mu.Unlock()
		return fc, nil
	}
}

// Close closes the inner listener and every scripted connection, unblocking
// stalled writes.
func (l *Listener) Close() error {
	err := l.inner.Close()
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Conn applies a Script to the bytes the wrapped endpoint writes. Reads
// pass through untouched.
type Conn struct {
	net.Conn
	script Script

	closeOnce sync.Once
	closed    chan struct{}

	mu        sync.Mutex
	skip      int     // unframed preamble bytes still to pass through
	hdr       [4]byte // partially accumulated length prefix
	hdrN      int
	frame     int // 1-based index of the frame currently being forwarded
	remaining int // body bytes (type + payload) of the current frame left
	budget    int // body bytes allowed before a truncation close (-1: all)
	corrupt   int // body offset of the byte to bit-flip (-1: none)
}

// WrapConn wraps one connection with a fault script (see Conn).
func WrapConn(c net.Conn, s *Script) *Conn {
	fc := &Conn{Conn: c, script: *s, closed: make(chan struct{})}
	fc.skip = s.SkipBytes
	fc.budget = -1
	fc.corrupt = -1
	return fc
}

// errInjected is the error the wrapped endpoint's Write observes when its
// own script killed the connection.
func errInjected(what string, frame int) error {
	return fmt.Errorf("netfault: %s at frame %d", what, frame)
}

// Close implements net.Conn; it also unblocks a stalled Write.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *Conn) isClosed() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

// sleep pauses, abandoning the wait when the connection closes. It reports
// whether the connection is still alive.
func (c *Conn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

// Write implements net.Conn, parsing the write stream into frames and
// applying the script. It reports all consumed bytes as written even when a
// fault swallowed part of them — the wrapped endpoint is meant to believe
// its write succeeded until the connection dies.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	written := 0
	for len(b) > 0 {
		if c.isClosed() {
			return written, net.ErrClosed
		}
		switch {
		case c.skip > 0: // unframed preamble
			n := min(c.skip, len(b))
			k, err := c.Conn.Write(b[:n])
			written += k
			c.skip -= k
			if err != nil {
				return written, err
			}
			b = b[n:]

		case c.remaining > 0: // mid-frame body
			n := min(c.remaining, len(b))
			if c.budget >= 0 && n > c.budget {
				n = c.budget
			}
			chunk := b[:n]
			if c.corrupt >= 0 {
				if c.corrupt < n {
					chunk = append([]byte(nil), chunk...)
					chunk[c.corrupt] ^= 0x80
					c.corrupt = -1
				} else {
					c.corrupt -= n
				}
			}
			k, err := c.Conn.Write(chunk)
			written += k
			c.remaining -= k
			if c.budget >= 0 {
				c.budget -= k
			}
			if err != nil {
				return written, err
			}
			// The caller's bytes are consumed even if a truncation cut the
			// forwarded chunk short.
			written += n - k
			b = b[n:]
			if c.budget == 0 && c.remaining > 0 {
				c.Close()
				return written, errInjected("mid-frame truncation", c.frame)
			}

		default: // accumulating the next length prefix
			n := min(4-c.hdrN, len(b))
			copy(c.hdr[c.hdrN:], b[:n])
			c.hdrN += n
			written += n
			b = b[n:]
			if c.hdrN < 4 {
				continue
			}
			c.hdrN = 0
			c.frame++
			if err := c.beginFrame(); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// beginFrame decides and applies the current frame's fate now that its
// length prefix is known, forwarding (or damaging, or withholding) the
// prefix itself.
func (c *Conn) beginFrame() error {
	f := c.frame
	length := int(binary.BigEndian.Uint32(c.hdr[:]))
	if c.script.WriteDelay > 0 && !c.sleep(c.script.WriteDelay) {
		return net.ErrClosed
	}
	if f == c.script.StallAtFrame {
		<-c.closed
		return errInjected("stall", f)
	}
	if f == c.script.CloseAtFrame {
		c.Close()
		return errInjected("disconnect", f)
	}
	hdr := c.hdr
	if f == c.script.CorruptAtFrame && c.script.CorruptKind == CorruptLength {
		hdr[0] ^= 0x80
	}
	c.budget = -1
	c.corrupt = -1
	if f == c.script.TruncateAtFrame {
		allow := (4 + length) / 2 // strictly mid-frame: every frame is ≥ 5 bytes
		if allow <= 4 {
			if _, err := c.Conn.Write(hdr[:allow]); err != nil {
				return err
			}
			c.Close()
			return errInjected("mid-frame truncation", f)
		}
		c.budget = allow - 4
	}
	if _, err := c.Conn.Write(hdr[:]); err != nil {
		return err
	}
	if f == c.script.CorruptAtFrame && c.script.CorruptKind == CorruptPayload {
		c.corrupt = 1 + (length-1)/2 // mid-payload; the type byte if empty
		if length <= 1 {
			c.corrupt = 0
		}
	}
	c.remaining = length
	return nil
}
