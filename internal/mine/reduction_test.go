package mine

import (
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// TestReductionRulesFireAndPreserveTopK: on a graph large enough to produce
// many candidates, the Lemma 3 rules must prune some of Σ/∆E while leaving
// the objective value of the result intact (they only remove rules that can
// never contribute to Lk).
func TestReductionRulesFireAndPreserveTopK(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(400, 21))
	pred := gen.PokecPredicates(syms)[0]
	base := Options{
		K: 4, Sigma: 3, D: 2, Lambda: 0.5, N: 3,
		MaxEdges: 3, MaxCandidatesPerRound: 40,
	}

	with := base.WithOptimizations()
	without := with
	without.Reduction = false

	a := DMine(g, pred, with)
	b := DMine(g, pred, without)
	if a.Pruned == 0 {
		t.Log("reduction rules never fired on this workload (acceptable but weak)")
	}
	if a.F < b.F-1e-9 {
		t.Errorf("reduction lowered the objective: %v vs %v", a.F, b.F)
	}
}
