package mine

import "gpar/internal/graph"

// This file holds the per-worker round arenas of the mining loop. A BSP
// round produces thousands of short-lived []graph.NodeID center sets — the
// four lanes of every <R, conf, flag> message, the per-group union buffers
// of the assembly shards, and the next round's per-rule center frontiers.
// All of them share one lifecycle: born inside one phase of a round, read
// until the matching phase of the next round starts, then dead. A nodeArena
// exploits that: each lane is a flat recycled backing store, individual
// sets are offset-length views carved from it, and resetting the lane at
// its phase boundary reclaims everything at once. After the first round
// has grown the backing stores, a steady-state round allocates nothing.
//
// Ownership discipline (see DESIGN.md, "Arena round lifecycle"):
//
//   - message lanes (q, r, qqb, usupp) are reset by localMine at the start
//     of the generate phase; their views live in messages, which assemble
//     consumes in the same round;
//   - the assembly shard arena is reset by asmScratch.merge; its views live
//     in groups, which assemble consumes before returning — any set that
//     survives into Σ (Mined.Set, Mined.qCenters) is cloned out;
//   - the frontier lane is reset by diversifyAndFilter; its views live in
//     worker.centersFor, which the next round's localMine consumes.
//
// No view ever escapes a run: everything reachable from a Result is cloned.

// nodeArena is a recycled flat backing store for node-ID sets. Views are
// carved with mark/take; reset reclaims the whole store in O(1) while the
// retained capacity keeps future rounds allocation-free.
//
// When noRecycle is set the arena degrades to plain allocation: take copies
// the region out and rewinds the store, so every returned set is an
// independent heap slice exactly as the pre-arena implementation produced.
// This is the arenas-off mode behind Options.DisableArenas; the
// differential tests pin byte-identical mining results in both modes, so
// any aliasing or lifetime bug in the arena discipline shows up as a diff.
type nodeArena struct {
	buf       []graph.NodeID
	noRecycle bool
}

// reset reclaims the whole store, keeping capacity.
func (a *nodeArena) reset() { a.buf = a.buf[:0] }

// mark returns the current fill point; the caller passes it to take after
// pushing one set's elements.
func (a *nodeArena) mark() int { return len(a.buf) }

// push appends one element to the set being built.
func (a *nodeArena) push(v graph.NodeID) { a.buf = append(a.buf, v) }

// pushAll appends a whole slice to the set being built.
func (a *nodeArena) pushAll(vs []graph.NodeID) { a.buf = append(a.buf, vs...) }

// take finalizes the set started at mark and returns it. The view is
// capacity-capped so a later append by a confused caller copies out instead
// of clobbering the neighboring set. Growth between mark and take may have
// reallocated the backing store; earlier views then point into the old
// store, which is correct (they are read-only from birth) — only the
// capacity is wasted until the next reset.
func (a *nodeArena) take(mark int) []graph.NodeID {
	view := a.buf[mark:len(a.buf):len(a.buf)]
	if a.noRecycle {
		if len(view) == 0 {
			a.buf = a.buf[:mark]
			return nil
		}
		out := append([]graph.NodeID(nil), view...)
		a.buf = a.buf[:mark]
		return out
	}
	if len(view) == 0 {
		return nil
	}
	return view
}

// takeSortedDedup sorts the set started at mark, removes duplicates in
// place, rewinds the store to the deduplicated length and returns the set.
func (a *nodeArena) takeSortedDedup(mark int) []graph.NodeID {
	region := sortDedup(a.buf[mark:])
	a.buf = a.buf[:mark+len(region)]
	return a.take(mark)
}

// unionInto merges two sorted deduplicated sets into a new set carved from
// the arena. As an optimization it returns the non-empty input unchanged
// when the other is empty; inputs are read-only so aliasing is safe.
func (a *nodeArena) unionInto(x, y []graph.NodeID) []graph.NodeID {
	if len(y) == 0 {
		return x
	}
	if len(x) == 0 {
		return y
	}
	mark := a.mark()
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			a.push(x[i])
			i++
			j++
		case x[i] < y[j]:
			a.push(x[i])
			i++
		default:
			a.push(y[j])
			j++
		}
	}
	a.pushAll(x[i:])
	a.pushAll(y[j:])
	return a.take(mark)
}

// roundArenas is one worker's set of recycled lanes. The four message lanes
// reset together at the start of generate; the frontier lane resets at the
// start of diversifyAndFilter (by which point the previous round's frontier
// views have all been consumed by localMine).
type roundArenas struct {
	q, r, qqb, usupp nodeArena // message center-set lanes
	frontier         nodeArena // next-round per-rule center lists
}

// resetMessages reclaims the four message lanes (start of a generate phase).
func (ar *roundArenas) resetMessages() {
	ar.q.reset()
	ar.r.reset()
	ar.qqb.reset()
	ar.usupp.reset()
}

// setMode flips every lane between recycling and plain-allocation mode.
func (ar *roundArenas) setMode(noRecycle bool) {
	ar.q.noRecycle = noRecycle
	ar.r.noRecycle = noRecycle
	ar.qqb.noRecycle = noRecycle
	ar.usupp.noRecycle = noRecycle
	ar.frontier.noRecycle = noRecycle
}

// Gate bounds how many mining worker goroutines execute simultaneously
// across any number of runs sharing it. Fragment count N fixes the mining
// *results* (and is part of the context identity); the gate fixes only how
// much CPU those N workers may occupy at once, so a server can cap all
// mine jobs collectively to a share of GOMAXPROCS while identify traffic
// keeps the rest. A nil *Gate means unbounded (one goroutine per worker).
type Gate struct {
	sem chan struct{}
}

// NewGate returns a gate admitting at most n concurrent workers (minimum 1).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{sem: make(chan struct{}, n)}
}

// Size reports the concurrency bound.
func (g *Gate) Size() int { return cap(g.sem) }

func (g *Gate) acquire() { g.sem <- struct{}{} }
func (g *Gate) release() { <-g.sem }

// Acquire blocks until a worker slot is free and takes it. It lets a caller
// that shares the gate with mining runs charge its own work against the same
// CPU budget (or deliberately saturate the gate, parking every run at its
// next superstep — the serving layer's tests open deterministic cancellation
// windows this way). Pair with Release.
func (g *Gate) Acquire() { g.acquire() }

// Release returns a slot taken by Acquire.
func (g *Gate) Release() { g.release() }
