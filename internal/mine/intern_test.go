package mine

import (
	"math/rand"
	"testing"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// TestExtCodeMatchesLegacyKey: the packed uint64 extension code used by the
// discovery accumulator collides iff the legacy Key() string collides —
// over in-range extensions, deliberately out-of-range ones (overflow
// interning), and mixtures of the two.
func TestExtCodeMatchesLegacyKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := &worker{}
	mk := func() pattern.Extension {
		e := pattern.Extension{
			Src:      rng.Intn(5),
			Outgoing: rng.Intn(2) == 0,
		}
		if rng.Intn(8) == 0 {
			// Out of packed range: forces the overflow-interner path.
			e.EdgeLabel = graph.Label(1<<23 + rng.Intn(3))
		} else {
			e.EdgeLabel = graph.Label(rng.Intn(4))
		}
		if rng.Intn(2) == 0 {
			e.Close = rng.Intn(4)
		} else {
			e.Close = pattern.NoNode
			e.NewLabel = graph.Label(rng.Intn(4))
			e.AsY = rng.Intn(4) == 0
		}
		return e
	}
	for i := 0; i < 20000; i++ {
		a, b := mk(), mk()
		codeEq := w.extCode(a) == w.extCode(b)
		keyEq := a.Key() == b.Key()
		if codeEq != keyEq {
			t.Fatalf("code/key identity mismatch: %+v vs %+v: code=%v key=%v",
				a, b, codeEq, keyEq)
		}
	}
}

// TestRuleIDBoundaryForm pins the printable boundary form of interned rule
// ids, including the seed.
func TestRuleIDBoundaryForm(t *testing.T) {
	if got := seedID.String(); got != "seed" {
		t.Errorf("seed id renders %q", got)
	}
	if got := ruleID(7).String(); got != "R00007" {
		t.Errorf("ruleID(7) renders %q", got)
	}
}
