package mine

import (
	"sort"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// generate is the parallel GPAR-generation superstep (procedure localMine of
// Fig. 4): every worker extends each frontier rule by one edge discovered in
// the data around its owned centers, verifies local supports, and emits one
// message per candidate extension.
func (m *miner) generate(frontier []*Mined) []message {
	results := make([][]message, len(m.workers))
	m.parallel(func(w *worker) {
		results[w.id] = w.localMine(m, frontier)
	})
	var msgs []message
	for _, r := range results {
		msgs = append(msgs, r...)
	}
	// Deterministic processing order at the coordinator. The sort keys were
	// computed once at emission; rebuilding ext.Key() inside the comparator
	// would cost O(M log M) string builds per round.
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].parentKey != msgs[j].parentKey {
			return msgs[i].parentKey < msgs[j].parentKey
		}
		if msgs[i].extKey != msgs[j].extKey {
			return msgs[i].extKey < msgs[j].extKey
		}
		return msgs[i].worker < msgs[j].worker
	})
	return msgs
}

// extAcc accumulates one candidate extension's local evidence at a worker.
type extAcc struct {
	ext     pattern.Extension
	centers []graph.NodeID // local owned centers supporting the extended Q
	seen    map[graph.NodeID]bool
}

// localMine extends every frontier rule at this worker and verifies local
// support. The returned messages use global node IDs.
func (w *worker) localMine(m *miner, frontier []*Mined) []message {
	var out []message
	opts := match.Options{}
	for _, parent := range frontier {
		centers := w.centersFor[parent.key]
		if len(centers) == 0 {
			continue
		}
		accs := w.discoverExtensions(m, parent, centers, opts)
		// Deterministic order of candidate emission.
		keys := make([]string, 0, len(accs))
		for k := range accs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			acc := accs[k]
			child := parent.Rule.Clone()
			child.Q = parent.Rule.Q.Apply(acc.ext)
			if child.Q == nil {
				continue
			}
			if !m.admissible(child) {
				continue
			}
			msg := message{
				worker:    w.id,
				parentKey: parent.key,
				ext:       acc.ext,
				extKey:    k,
				rule:      child,
			}
			// One pooled matcher per child rule, reused across all centers.
			prm := match.NewMatcher(child.PR(), w.frag.G, opts)
			radius := child.Q.RadiusAt(child.Q.X)
			sort.Slice(acc.centers, func(i, j int) bool { return acc.centers[i] < acc.centers[j] })
			for _, c := range acc.centers {
				msg.qCenters = append(msg.qCenters, w.frag.Global(c))
				if w.pqbar[c] {
					msg.qqbCenters = append(msg.qqbCenters, w.frag.Global(c))
				}
				if w.pq[c] {
					w.ops++
					if prm.HasMatchAt(c) {
						msg.rSet = append(msg.rSet, w.frag.Global(c))
						// Usupp_i: PR matches that still have room to grow.
						if w.hasNodeAtDistance(c, radius+1) {
							msg.usuppCenters = append(msg.usuppCenters, w.frag.Global(c))
						}
					}
				}
			}
			prm.Release()
			msg.flag = len(msg.qCenters) > 0
			out = append(out, msg)
		}
	}
	return out
}

// discoverExtensions enumerates, for each owned center still matching the
// parent antecedent, the single-edge extensions realized by actual data
// edges around its embeddings ("expand Q by including a new edge", Section
// 4.2). Injectivity and the radius bound are respected; the supporting
// centers of each extension are collected exactly (up to EmbedCap embeddings
// per center).
func (w *worker) discoverExtensions(m *miner, parent *Mined, centers []graph.NodeID, opts match.Options) map[string]*extAcc {
	q := parent.Rule.Q
	distX := q.DistancesFrom(q.X)
	accs := make(map[string]*extAcc)
	add := func(ext pattern.Extension, vx graph.NodeID) {
		key := ext.Key()
		acc := accs[key]
		if acc == nil {
			acc = &extAcc{ext: ext, seen: make(map[graph.NodeID]bool)}
			accs[key] = acc
		}
		if !acc.seen[vx] {
			acc.seen[vx] = true
			acc.centers = append(acc.centers, vx)
		}
	}
	embedOpts := opts
	embedOpts.MaxMatches = m.opts.EmbedCap
	for _, vx := range centers {
		w.ops++
		w.enumerateAnchored(q, vx, embedOpts, func(asgn []graph.NodeID) {
			inv := make(map[graph.NodeID]int, len(asgn))
			for u, dv := range asgn {
				inv[dv] = u
			}
			for u, dv := range asgn {
				// The new node would sit at distance distX[u]+1 from x;
				// enforce the antecedent radius bound r(Q, x) <= d.
				canGrow := distX[u] >= 0 && distX[u]+1 <= m.opts.D
				for _, e := range w.frag.G.Out(dv) {
					if u2, ok := inv[e.To]; ok {
						if !q.HasEdge(u, u2, e.Label) {
							add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, Close: u2}, vx)
						}
						continue
					}
					if !canGrow {
						continue
					}
					l := w.frag.G.Label(e.To)
					add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode}, vx)
					if q.Y == pattern.NoNode && l == m.pred.YLabel {
						add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode, AsY: true}, vx)
					}
				}
				for _, e := range w.frag.G.In(dv) {
					if u2, ok := inv[e.To]; ok {
						if !q.HasEdge(u2, u, e.Label) {
							add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, Close: u2}, vx)
						}
						continue
					}
					if !canGrow {
						continue
					}
					l := w.frag.G.Label(e.To)
					add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode}, vx)
					if q.Y == pattern.NoNode && l == m.pred.YLabel {
						add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode, AsY: true}, vx)
					}
				}
			}
		})
	}
	return accs
}

// enumerateAnchored enumerates embeddings of q anchored at vx (h(x) = vx),
// invoking fn for each. The empty seed pattern (single node x, no edges)
// yields exactly one embedding.
func (w *worker) enumerateAnchored(q *pattern.Pattern, vx graph.NodeID, opts match.Options, fn func(asgn []graph.NodeID)) {
	count := 0
	match.EnumerateAnchored(q, w.frag.G, vx, opts, func(asgn []graph.NodeID) bool {
		fn(asgn)
		count++
		w.ops++
		return opts.MaxMatches == 0 || count < opts.MaxMatches
	})
}

// admissible applies the structural constraints a candidate must meet
// before being sent to the coordinator: the radius bound r(PR,x) ≤ d and
// "q(x,y) does not appear in Q".
func (m *miner) admissible(r *core.Rule) bool {
	q := r.Q
	if q.Y != pattern.NoNode && q.HasEdge(q.X, q.Y, m.pred.EdgeLabel) {
		return false
	}
	pr := r.PR()
	rad := pr.RadiusAt(pr.X)
	return rad >= 0 && rad <= m.opts.D
}
