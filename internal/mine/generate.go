package mine

import (
	"slices"
	"sort"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// generate is the parallel GPAR-generation superstep (procedure localMine of
// Fig. 4): every worker extends each frontier rule by one edge discovered in
// the data around its owned centers, verifies local supports, and emits one
// message per candidate extension.
//
// No coordinator-side sort is needed: each worker emits in deterministic
// (frontier, extension) order, the concatenation below is by worker id, and
// the sharded assembly re-establishes a global deterministic group order in
// its reduce.
func (m *miner) generate(frontier []*Mined) []message {
	results := make([][]message, len(m.workers))
	m.parallel(func(w *worker) {
		results[w.id] = w.localMine(m, frontier)
	})
	var msgs []message
	for _, r := range results {
		msgs = append(msgs, r...)
	}
	return msgs
}

// extAcc accumulates one candidate extension's local evidence at a worker.
// Accumulators are pooled on the worker and recycled every parent.
type extAcc struct {
	ext     pattern.Extension
	centers []graph.NodeID // local owned centers supporting the extended Q
	// lastVx deduplicates center appends: a center's embeddings are
	// enumerated consecutively, so "already counted vx" is just "the last
	// center appended is vx" — no per-accumulator seen map.
	lastVx graph.NodeID
}

// localMine extends every frontier rule at this worker and verifies local
// support. The returned messages use global node IDs.
func (w *worker) localMine(m *miner, frontier []*Mined) []message {
	var out []message
	opts := match.Options{}
	for _, parent := range frontier {
		centers := w.centersFor[parent.id]
		if len(centers) == 0 {
			continue
		}
		// Keep the frontier sorted ascending once, so every accumulator's
		// center list is built already sorted.
		slices.Sort(centers)
		accs := w.discoverExtensions(m, parent, centers, opts)
		for _, acc := range accs {
			child := &core.Rule{Q: parent.Rule.Q.Apply(acc.ext), Pred: parent.Rule.Pred}
			if child.Q == nil {
				continue
			}
			// PR is cloned once and reused for the admissibility check, the
			// radius and the matcher (it used to be built three times).
			pr := child.PR()
			if !admissible(m.pred, child.Q, pr, m.opts.D) {
				continue
			}
			msg := message{
				worker: w.id,
				parent: parent.id,
				ext:    acc.ext,
				rule:   child,
				// Every supporting center lands in qCenters, so its
				// capacity is exact; the three subset slices stay nil and
				// grow on demand (presizing them to the upper bound would
				// triple the memory pinned until the round's assembly).
				qCenters: make([]graph.NodeID, 0, len(acc.centers)),
			}
			// One pooled matcher per child rule, reused across all centers.
			prm := match.NewMatcher(pr, w.frag.G, opts)
			radius := child.Q.RadiusAt(child.Q.X)
			for _, c := range acc.centers {
				msg.qCenters = append(msg.qCenters, w.frag.Global(c))
				if w.pqbar[c] {
					msg.qqbCenters = append(msg.qqbCenters, w.frag.Global(c))
				}
				if w.pq[c] {
					w.ops++
					if prm.HasMatchAt(c) {
						msg.rSet = append(msg.rSet, w.frag.Global(c))
						// Usupp_i: PR matches that still have room to grow.
						if w.hasNodeAtDistance(w.frag.Global(c), radius+1) {
							msg.usuppCenters = append(msg.usuppCenters, w.frag.Global(c))
						}
					}
				}
			}
			prm.Release()
			msg.flag = len(msg.qCenters) > 0
			out = append(out, msg)
		}
	}
	return out
}

// discoverExtensions enumerates, for each owned center still matching the
// parent antecedent, the single-edge extensions realized by actual data
// edges around its embeddings ("expand Q by including a new edge", Section
// 4.2). Injectivity and the radius bound are respected; the supporting
// centers of each extension are collected exactly (up to EmbedCap embeddings
// per center).
//
// The returned accumulators are sorted by Extension.Compare and owned by
// the worker: they are recycled on the next call.
func (w *worker) discoverExtensions(m *miner, parent *Mined, centers []graph.NodeID, opts match.Options) []*extAcc {
	q := parent.Rule.Q
	distX := q.DistancesFrom(q.X)
	w.resetAccs()
	if n := w.frag.G.NumNodes(); len(w.invEpoch) < n {
		w.inv = make([]int32, n)
		w.invEpoch = make([]uint32, n)
		w.epoch = 0
	}
	curVx := graph.NodeID(-1)
	add := func(ext pattern.Extension) {
		code := w.extCode(ext)
		acc := w.accs[code]
		if acc == nil {
			acc = w.newAcc(code, ext)
		}
		if acc.lastVx != curVx {
			acc.lastVx = curVx
			acc.centers = append(acc.centers, curVx)
		}
	}
	embedOpts := opts
	embedOpts.MaxMatches = m.opts.EmbedCap
	for _, vx := range centers {
		w.ops++
		curVx = vx
		w.enumerateAnchored(q, vx, embedOpts, func(asgn []graph.NodeID) {
			// Stamp the inverse embedding into the epoch scratch: one
			// epoch bump invalidates the previous embedding's entries.
			w.epoch++
			if w.epoch == 0 { // uint32 wraparound: rewind the stamps
				clear(w.invEpoch)
				w.epoch = 1
			}
			epoch := w.epoch
			for u, dv := range asgn {
				w.inv[dv] = int32(u)
				w.invEpoch[dv] = epoch
			}
			for u, dv := range asgn {
				// The new node would sit at distance distX[u]+1 from x;
				// enforce the antecedent radius bound r(Q, x) <= d.
				canGrow := distX[u] >= 0 && distX[u]+1 <= m.opts.D
				for _, e := range w.frag.G.Out(dv) {
					if w.invEpoch[e.To] == epoch {
						u2 := int(w.inv[e.To])
						if !q.HasEdge(u, u2, e.Label) {
							add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, Close: u2})
						}
						continue
					}
					if !canGrow {
						continue
					}
					l := w.frag.G.Label(e.To)
					add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode})
					if q.Y == pattern.NoNode && l == m.pred.YLabel {
						add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode, AsY: true})
					}
				}
				for _, e := range w.frag.G.In(dv) {
					if w.invEpoch[e.To] == epoch {
						u2 := int(w.inv[e.To])
						if !q.HasEdge(u2, u, e.Label) {
							add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, Close: u2})
						}
						continue
					}
					if !canGrow {
						continue
					}
					l := w.frag.G.Label(e.To)
					add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode})
					if q.Y == pattern.NoNode && l == m.pred.YLabel {
						add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode, AsY: true})
					}
				}
			}
		})
	}
	// Deterministic order of candidate emission.
	sort.Slice(w.accList, func(i, j int) bool {
		return w.accList[i].ext.Compare(w.accList[j].ext) < 0
	})
	return w.accList
}

// resetAccs recycles the previous call's accumulators into the pool.
func (w *worker) resetAccs() {
	if w.accs == nil {
		w.accs = make(map[uint64]*extAcc)
		return
	}
	clear(w.accs)
	w.accPool = append(w.accPool, w.accList...)
	w.accList = w.accList[:0]
}

// newAcc takes an accumulator from the pool (or allocates one), registers
// it under the packed code and returns it.
func (w *worker) newAcc(code uint64, ext pattern.Extension) *extAcc {
	var acc *extAcc
	if n := len(w.accPool); n > 0 {
		acc = w.accPool[n-1]
		w.accPool = w.accPool[:n-1]
		acc.centers = acc.centers[:0]
	} else {
		acc = &extAcc{}
	}
	acc.ext = ext
	acc.lastVx = -1
	w.accs[code] = acc
	w.accList = append(w.accList, acc)
	return acc
}

// enumerateAnchored enumerates embeddings of q anchored at vx (h(x) = vx),
// invoking fn for each. The empty seed pattern (single node x, no edges)
// yields exactly one embedding.
func (w *worker) enumerateAnchored(q *pattern.Pattern, vx graph.NodeID, opts match.Options, fn func(asgn []graph.NodeID)) {
	count := 0
	match.EnumerateAnchored(q, w.frag.G, vx, opts, func(asgn []graph.NodeID) bool {
		fn(asgn)
		count++
		w.ops++
		return opts.MaxMatches == 0 || count < opts.MaxMatches
	})
}

// admissible applies the structural constraints a candidate must meet
// before being sent to the coordinator: the radius bound r(PR,x) ≤ d and
// "q(x,y) does not appear in Q". The caller passes the already-built PR.
func admissible(pred core.Predicate, q, pr *pattern.Pattern, d int) bool {
	if q.Y != pattern.NoNode && q.HasEdge(q.X, q.Y, pred.EdgeLabel) {
		return false
	}
	rad := pr.RadiusAt(pr.X)
	return rad >= 0 && rad <= d
}
