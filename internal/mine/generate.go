package mine

import (
	"slices"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// This file is the parallel GPAR-generation superstep (procedure localMine
// of Fig. 4): every worker extends each frontier rule by one edge discovered
// in the data around its owned centers, verifies local supports, and emits
// one message per candidate extension.
//
// No coordinator-side sort is needed: each worker emits in deterministic
// (frontier, extension) order, the engines concatenate by worker id, and
// the sharded assembly re-establishes a global deterministic group order in
// its reduce.

// generate runs one generate superstep on the engine; a method so the round
// benchmark can measure the steady-state superstep in isolation.
func (m *miner) generate(frontier []*Mined) []message {
	msgs, err := m.eng.generate(m, frontier)
	if err != nil {
		panic(err) // local engine only; it cannot fail
	}
	return msgs
}

// extAcc accumulates one candidate extension's local evidence at a worker.
// Accumulators are pooled on the worker and recycled every parent.
type extAcc struct {
	ext     pattern.Extension
	centers []graph.NodeID // local owned centers supporting the extended Q
	// lastVx deduplicates center appends: a center's embeddings are
	// enumerated consecutively, so "already counted vx" is just "the last
	// center appended is vx" — no per-accumulator seen map.
	lastVx graph.NodeID
}

// localMine extends every frontier rule at this worker and verifies local
// support, leaving the round's messages in w.msgs (global node IDs, views
// into the worker's message lanes). Candidate rules are materialized into
// per-worker scratch patterns — only the coordinator materializes one
// heap rule per distinct candidate, at assembly.
func (w *worker) localMine(lp localParams, frontier []localRule) {
	out := w.msgs[:0]
	w.ar.resetMessages()
	if w.qScratch == nil {
		w.qScratch = pattern.New(lp.syms)
		w.prScratch = pattern.New(lp.syms)
	}
	opts := match.Options{}
	for _, parent := range frontier {
		centers := w.centersFor[parent.id]
		if len(centers) == 0 {
			continue
		}
		// Keep the frontier sorted ascending once, so every accumulator's
		// center list is built already sorted.
		slices.Sort(centers)
		accs := w.discoverExtensions(lp, parent.q, centers, opts)
		for _, acc := range accs {
			// Materialize the candidate into recycled scratch (fresh heap
			// copies under DisableArenas); the scratch is dead once the
			// matcher below releases.
			var q, pr *pattern.Pattern
			if w.noRecycle {
				q = parent.q.Apply(acc.ext)
			} else {
				q = parent.q.ApplyInto(w.qScratch, acc.ext)
			}
			if q == nil {
				continue
			}
			child := core.Rule{Q: q, Pred: lp.pred}
			if w.noRecycle {
				pr = child.PR()
			} else {
				pr = child.PRInto(w.prScratch)
			}
			// Admissibility: q(x,y) ∉ Q and the radius bound r(PR, x) ≤ d.
			if q.Y != pattern.NoNode && q.HasEdge(q.X, q.Y, lp.pred.EdgeLabel) {
				continue
			}
			w.distBuf = pr.DistancesInto(w.distBuf, pr.X)
			if rad := radiusFrom(w.distBuf); rad < 0 || rad > lp.d {
				continue
			}
			w.distBuf = q.DistancesInto(w.distBuf, q.X)
			radius := radiusFrom(w.distBuf)

			msg := message{worker: w.id, parent: parent.id, ext: acc.ext}
			mq, mr, mqb, mu := w.ar.q.mark(), w.ar.r.mark(), w.ar.qqb.mark(), w.ar.usupp.mark()
			// One pooled matcher per child rule, reused across all centers.
			prm := match.NewMatcher(pr, w.frag.G, opts)
			for _, c := range acc.centers {
				gv := w.frag.Global(c)
				w.ar.q.push(gv)
				if w.pqbar[c] {
					w.ar.qqb.push(gv)
				}
				if w.pq[c] {
					w.ops++
					if prm.HasMatchAt(c) {
						w.ar.r.push(gv)
						// Usupp_i: PR matches that still have room to grow.
						if w.extendable(c, gv, radius+1) {
							w.ar.usupp.push(gv)
						}
					}
				}
			}
			prm.Release()
			msg.qCenters = w.ar.q.take(mq)
			msg.rSet = w.ar.r.take(mr)
			msg.qqbCenters = w.ar.qqb.take(mqb)
			msg.usuppCenters = w.ar.usupp.take(mu)
			msg.flag = len(msg.qCenters) > 0
			out = append(out, msg)
		}
	}
	w.msgs = out
}

// admissible applies the structural constraints a candidate must meet
// before being sent to the coordinator: the radius bound r(PR,x) ≤ d and
// "q(x,y) does not appear in Q". localMine inlines the same checks on its
// recycled distance buffer; this standalone form serves callers without
// scratch.
func admissible(pred core.Predicate, q, pr *pattern.Pattern, d int) bool {
	if q.Y != pattern.NoNode && q.HasEdge(q.X, q.Y, pred.EdgeLabel) {
		return false
	}
	rad := pr.RadiusAt(pr.X)
	return rad >= 0 && rad <= d
}

// radiusFrom reduces a DistancesInto result to the pattern radius, with the
// RadiusAt convention: -1 when some node is unreachable.
func radiusFrom(dist []int) int {
	r := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if d > r {
			r = d
		}
	}
	return r
}

// discoverExtensions enumerates, for each owned center still matching the
// parent antecedent, the single-edge extensions realized by actual data
// edges around its embeddings ("expand Q by including a new edge", Section
// 4.2). Injectivity and the radius bound are respected; the supporting
// centers of each extension are collected exactly (up to EmbedCap embeddings
// per center). Embeddings are enumerated canonically (match.Options.
// Canonical over the fragment's globally sorted node order), so EmbedCap
// truncation sees the same embeddings on every fragment layout.
//
// The returned accumulators are sorted by Extension.Compare and owned by
// the worker: they are recycled on the next call.
func (w *worker) discoverExtensions(lp localParams, q *pattern.Pattern, centers []graph.NodeID, opts match.Options) []*extAcc {
	w.distXBuf = q.DistancesInto(w.distXBuf, q.X)
	distX := w.distXBuf
	w.resetAccs()
	if n := w.frag.G.NumNodes(); len(w.invEpoch) < n {
		w.inv = make([]int32, n)
		w.invEpoch = make([]uint32, n)
		w.epoch = 0
	}
	curVx := graph.NodeID(-1)
	add := func(ext pattern.Extension) {
		code := w.extCode(ext)
		acc := w.accs[code]
		if acc == nil {
			acc = w.newAcc(code, ext)
		}
		if acc.lastVx != curVx {
			acc.lastVx = curVx
			acc.centers = append(acc.centers, curVx)
		}
	}
	embedOpts := opts
	embedOpts.MaxMatches = lp.embedCap
	embedOpts.Canonical = true
	for _, vx := range centers {
		w.ops++
		curVx = vx
		w.enumerateAnchored(q, vx, embedOpts, func(asgn []graph.NodeID) {
			// Stamp the inverse embedding into the epoch scratch: one
			// epoch bump invalidates the previous embedding's entries.
			w.epoch++
			if w.epoch == 0 { // uint32 wraparound: rewind the stamps
				clear(w.invEpoch)
				w.epoch = 1
			}
			epoch := w.epoch
			for u, dv := range asgn {
				w.inv[dv] = int32(u)
				w.invEpoch[dv] = epoch
			}
			for u, dv := range asgn {
				// The new node would sit at distance distX[u]+1 from x;
				// enforce the antecedent radius bound r(Q, x) <= d.
				canGrow := distX[u] >= 0 && distX[u]+1 <= lp.d
				for _, e := range w.frag.G.Out(dv) {
					if w.invEpoch[e.To] == epoch {
						u2 := int(w.inv[e.To])
						if !q.HasEdge(u, u2, e.Label) {
							add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, Close: u2})
						}
						continue
					}
					if !canGrow {
						continue
					}
					l := w.frag.G.Label(e.To)
					add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode})
					if q.Y == pattern.NoNode && l == lp.pred.YLabel {
						add(pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode, AsY: true})
					}
				}
				for _, e := range w.frag.G.In(dv) {
					if w.invEpoch[e.To] == epoch {
						u2 := int(w.inv[e.To])
						if !q.HasEdge(u2, u, e.Label) {
							add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, Close: u2})
						}
						continue
					}
					if !canGrow {
						continue
					}
					l := w.frag.G.Label(e.To)
					add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode})
					if q.Y == pattern.NoNode && l == lp.pred.YLabel {
						add(pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: l, Close: pattern.NoNode, AsY: true})
					}
				}
			}
		})
	}
	// Deterministic order of candidate emission.
	slices.SortFunc(w.accList, func(a, b *extAcc) int { return a.ext.Compare(b.ext) })
	return w.accList
}

// resetAccs recycles the previous call's accumulators into the pool.
func (w *worker) resetAccs() {
	if w.accs == nil {
		w.accs = make(map[uint64]*extAcc)
		return
	}
	clear(w.accs)
	w.accPool = append(w.accPool, w.accList...)
	w.accList = w.accList[:0]
}

// newAcc takes an accumulator from the pool (or allocates one), registers
// it under the packed code and returns it.
func (w *worker) newAcc(code uint64, ext pattern.Extension) *extAcc {
	var acc *extAcc
	if n := len(w.accPool); n > 0 {
		acc = w.accPool[n-1]
		w.accPool = w.accPool[:n-1]
		acc.centers = acc.centers[:0]
	} else {
		acc = &extAcc{}
	}
	acc.ext = ext
	acc.lastVx = -1
	w.accs[code] = acc
	w.accList = append(w.accList, acc)
	return acc
}

// enumerateAnchored enumerates embeddings of q anchored at vx (h(x) = vx),
// invoking fn for each. The empty seed pattern (single node x, no edges)
// yields exactly one embedding.
func (w *worker) enumerateAnchored(q *pattern.Pattern, vx graph.NodeID, opts match.Options, fn func(asgn []graph.NodeID)) {
	count := 0
	match.EnumerateAnchored(q, w.frag.G, vx, opts, func(asgn []graph.NodeID) bool {
		fn(asgn)
		count++
		w.ops++
		return opts.MaxMatches == 0 || count < opts.MaxMatches
	})
}
