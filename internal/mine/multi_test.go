package mine

import (
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
)

func TestFrequentPredicates(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	preds := FrequentPredicates(f.G, 5, graph.NoLabel)
	if len(preds) != 5 {
		t.Fatalf("got %d predicates want 5", len(preds))
	}
	// The most frequent predicate by distinct sources on G1 is
	// in(French restaurant, city): all 8 French restaurants point at a
	// city. like(cust, French restaurant) (5 sources) must also rank.
	top := preds[0]
	if syms.Name(top.EdgeLabel) != gen.EIn {
		t.Errorf("top predicate = %s want in(French restaurant, city)", top.String(syms))
	}
	foundLike := false
	for _, p := range preds {
		if syms.Name(p.EdgeLabel) == gen.ELike && syms.Name(p.XLabel) == gen.LCust {
			foundLike = true
		}
	}
	if !foundLike {
		t.Errorf("like(cust, French restaurant) missing from top 5: %v", preds)
	}
	// Filtering by edge label restricts the alphabet.
	visit := syms.Lookup(gen.EVisit)
	for _, p := range FrequentPredicates(f.G, 0, visit) {
		if p.EdgeLabel != visit {
			t.Errorf("filter leaked predicate %s", p.String(syms))
		}
	}
}

func TestDMineMulti(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	visit := gen.VisitPredicate(syms)
	like := core.Predicate{
		XLabel:    syms.Intern(gen.LCust),
		EdgeLabel: syms.Intern(gen.ELike),
		YLabel:    syms.Intern(gen.LFrench),
	}
	// Duplicates collapse.
	res := must(DMineMulti(f.G, []core.Predicate{visit, like, visit}, baseOpts()))
	if len(res) != 2 {
		t.Fatalf("got %d results want 2 (dup collapsed)", len(res))
	}
	if res[0].Pred != visit || res[1].Pred != like {
		t.Error("result order does not preserve first occurrence")
	}
	for _, r := range res {
		if r.Result == nil {
			t.Fatal("nil result")
		}
		for _, mm := range r.Result.TopK {
			if mm.Rule.Pred != r.Pred {
				t.Errorf("rule mined for wrong predicate")
			}
		}
	}
}

func TestDMineAuto(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	res := must(DMineAuto(f.G, 2, baseOpts()))
	if len(res) != 2 {
		t.Fatalf("got %d results want 2", len(res))
	}
	// The auto-selected predicates must have support in G.
	for _, r := range res {
		if len(core.Pq(f.G, r.Pred)) == 0 {
			t.Errorf("auto predicate %s has no support", r.Pred.String(syms))
		}
	}
}
