package mine

import (
	"context"
	"errors"
	"fmt"
)

// This file is the cancellation layer of the mining engine. A DMine run is
// a BSP computation: supersteps are the natural abort points, because
// between them the coordinator holds no partially-reduced state — Σ, the
// diversification queue and every arena are consistent at a superstep
// boundary. Cancellation therefore polls Options.Ctx once per superstep
// (and workers check it per round inside the engines), abandons the run
// without installing anything, and lets the deferred engine close return
// every worker and arena to its pool. A canceled-then-rerun job is
// byte-identical to a clean run — pinned by the parity tests — because
// nothing a canceled run touched survives in a result-bearing structure.

// CanceledError is the typed failure of a canceled or deadline-expired
// mining run: which BSP superstep the coordinator had reached (0 = the
// setup/classification superstep, r ≥ 1 = mining round r) and the context's
// verdict. Unwrap exposes the latter, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) distinguish an explicit
// cancel from an expired deadline.
type CanceledError struct {
	Superstep int   // BSP superstep reached when the run was abandoned
	Err       error // context.Canceled or context.DeadlineExceeded
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("mine: run canceled at superstep %d: %v", e.Superstep, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// canceled polls the run context at a superstep boundary. It reads Err()
// rather than selecting on Done() so that tests can drive deterministic
// cancel points with a context whose Err flips after a counted number of
// polls (Done may be nil for such contexts).
func (m *miner) canceled(step int) error {
	if m.opts.Ctx == nil {
		return nil
	}
	if err := m.opts.Ctx.Err(); err != nil {
		return &CanceledError{Superstep: step, Err: err}
	}
	return nil
}

// wrapCanceled maps an engine error observed under a done context to the
// typed *CanceledError. A cancel mid-superstep surfaces indirectly — a
// remote worker whose connection was deliberately unwedged reports a
// *WorkerError, a local engine reports the context error — and in either
// case the caller asked for the abort, so the cancellation is the truth and
// the transport casualty is incidental.
func (m *miner) wrapCanceled(err error, step int) error {
	var ce *CanceledError
	if errors.As(err, &ce) {
		return err
	}
	if m.opts.Ctx != nil {
		if cerr := m.opts.Ctx.Err(); cerr != nil {
			return &CanceledError{Superstep: step, Err: cerr}
		}
	}
	return err
}

// acquireCtx is acquire with cancellation: it returns the context's error
// instead of a slot once ctx is done. With a nil context (or one whose Done
// channel is nil) it degrades to a plain blocking acquire.
func (g *Gate) acquireCtx(ctx context.Context) error {
	if ctx == nil {
		g.sem <- struct{}{}
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// InUse reports how many worker slots are currently held — the mine-gate
// occupancy a server surfaces as a saturation signal.
func (g *Gate) InUse() int { return len(g.sem) }
