package mine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// must unwraps a (value, error) pair, panicking on error — panic rather
// than t.Fatal so it is usable inside test goroutines.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// pollCtx is a deterministic cancellable context: Err returns nil for the
// first allow polls and context.Canceled (stickily) forever after. Done is
// nil, so nothing in the engine can observe the cancel except the counted
// Err polls — which makes the superstep at which a run aborts a pure
// function of the poll budget, not of goroutine scheduling.
type pollCtx struct {
	remaining atomic.Int64
}

func newPollCtx(allow int) *pollCtx {
	c := &pollCtx{}
	c.remaining.Store(int64(allow))
	return c
}

func (c *pollCtx) Deadline() (deadline time.Time, ok bool) { return }
func (c *pollCtx) Done() <-chan struct{}                   { return nil }
func (c *pollCtx) Value(key any) any                       { return nil }
func (c *pollCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestDMineCtxCanceledBeforeStart pins the fastest abort: a context that is
// already done cancels the run at superstep 0 with the typed error, before
// any mining work happens.
func TestDMineCtxCanceledBeforeStart(t *testing.T) {
	g, preds, opts := contextFixture(t)
	pred := preds[0]
	ctx := NewContext(g, pred.XLabel, opts)
	done, cancel := context.WithCancel(context.Background())
	cancel()
	o := opts
	o.Ctx = done
	res, err := DMineCtx(ctx, pred, o)
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *CanceledError", err, err)
	}
	if ce.Superstep != 0 {
		t.Fatalf("Superstep = %d, want 0", ce.Superstep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestDMineCtxDeadlineExceeded pins the deadline flavor: an expired
// deadline surfaces as *CanceledError unwrapping context.DeadlineExceeded,
// which is what the serving layer maps to the deadline_exceeded job state.
func TestDMineCtxDeadlineExceeded(t *testing.T) {
	g, preds, opts := contextFixture(t)
	pred := preds[0]
	ctx := NewContext(g, pred.XLabel, opts)
	expired, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	o := opts
	o.Ctx = expired
	if _, err := DMineCtx(ctx, pred, o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
}

// TestCancelThenRerunParityLocal is the cancellation parity pin for the
// in-process engine: cancel a run at an arbitrary superstep (driven by a
// counted poll budget), then rerun clean on the same shared accumulator —
// the rerun must be byte-identical to a fresh DMine, for every worker
// count and both arena modes. This is what makes cancel safe for the
// serving layer's pooled accumulators: nothing a canceled run touched
// survives in a result-bearing structure.
func TestCancelThenRerunParityLocal(t *testing.T) {
	g, preds, base := contextFixture(t)
	pred := preds[0]
	for _, disable := range []bool{false, true} {
		for _, n := range []int{1, 2, 3, 8} {
			o := base
			o.N = n
			o.DisableArenas = disable
			t.Run(fmt.Sprintf("arenasOff=%v/n=%d", disable, n), func(t *testing.T) {
				want := fingerprint(DMine(g, pred, o))
				sh := NewShared(NewContext(g, pred.XLabel, o))
				completed := false
				for _, allow := range []int{0, 1, 3, 7, 15, 40, 200} {
					co := o
					co.Ctx = newPollCtx(allow)
					res, err := sh.DMine(pred, co)
					if err == nil {
						// Budget outlasted the run: it finished normally and
						// must match, cancellable context or not.
						if got := fingerprint(res); got != want {
							t.Fatalf("allow=%d: uncanceled run differs from fresh DMine", allow)
						}
						completed = true
						continue
					}
					var ce *CanceledError
					if !errors.As(err, &ce) {
						t.Fatalf("allow=%d: error %T (%v), want *CanceledError", allow, err, err)
					}
					if res != nil {
						t.Fatalf("allow=%d: canceled run returned a result", allow)
					}
					if got := fingerprint(must(sh.DMine(pred, o))); got != want {
						t.Fatalf("allow=%d: rerun after cancel at superstep %d differs from clean run:\n--- clean ---\n%s--- rerun ---\n%s",
							allow, ce.Superstep, want, got)
					}
				}
				if !completed {
					t.Fatal("no poll budget outlasted the run; raise the largest allow")
				}
			})
		}
	}
}

// TestCancelThenRerunParityDistributed extends the parity pin across the
// wire codec: cancel a distributed run at a counted superstep boundary,
// then rerun clean over fresh loopback workers — byte-identical to the
// local result for every worker count.
func TestCancelThenRerunParityDistributed(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(200, 9))
	pred := gen.PokecPredicates(syms)[0]
	base := Options{
		K: 6, Sigma: 2, D: 2, Lambda: 0.5,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations()
	for _, n := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			o := base
			o.N = n
			o = o.Defaults()
			ctx := NewContext(g, pred.XLabel, o)
			want := fingerprint(must(DMineCtx(ctx, pred, o)))
			completed := false
			for _, allow := range []int{0, 1, 2, 3, 5, 9} {
				co := o
				co.Ctx = newPollCtx(allow)
				res, err := DMineDistributed(ctx, pred, co, loopbackConns(n))
				if err == nil {
					if got := fingerprint(res); got != want {
						t.Fatalf("allow=%d: uncanceled distributed run differs from local", allow)
					}
					completed = true
					continue
				}
				var ce *CanceledError
				if !errors.As(err, &ce) {
					t.Fatalf("allow=%d: error %T (%v), want *CanceledError", allow, err, err)
				}
				if res != nil {
					t.Fatalf("allow=%d: canceled run returned a result", allow)
				}
				got := fingerprint(must(DMineDistributed(ctx, pred, o, loopbackConns(n))))
				if got != want {
					t.Fatalf("allow=%d: distributed rerun after cancel at superstep %d differs:\n%s\nvs\n%s",
						allow, ce.Superstep, want, got)
				}
			}
			if !completed {
				t.Fatal("no poll budget outlasted the run; raise the largest allow")
			}
		})
	}
}

// TestCancelReleasesGate pins the no-leak property the server relies on: a
// canceled run must return every Gate slot, whether workers were queued on
// the gate or already running when the context went dead.
func TestCancelReleasesGate(t *testing.T) {
	g, preds, opts := contextFixture(t)
	pred := preds[0]
	ctx := NewContext(g, pred.XLabel, opts)
	for _, allow := range []int{0, 2, 5, 11} {
		gate := NewGate(2)
		o := opts
		o.Gate = gate
		o.Ctx = newPollCtx(allow)
		_, err := DMineCtx(ctx, pred, o)
		if err != nil {
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("allow=%d: error %T (%v), want *CanceledError", allow, err, err)
			}
		}
		if inUse := gate.InUse(); inUse != 0 {
			t.Fatalf("allow=%d: gate occupancy %d after run, want 0", allow, inUse)
		}
	}
}
