package mine

import (
	"encoding/binary"
	"fmt"

	"gpar/internal/bisim"
	"gpar/internal/pattern"
)

// This file holds the per-run identity interning of the mining loop. The
// levelwise BSP computation used to address everything by strings — rule
// keys "R%05d", extension keys "src|o3|7|-1", bisimulation buckets rendered
// as hex — built and hashed millions of times per run. All of those are now
// compact comparable values; the string forms survive only at API
// boundaries (Mined.Key, serve's cache keys, logs).

// ruleID identifies one candidate rule within a single DMine run. IDs are
// dense: the coordinator assigns them in deterministic discovery order, so
// Σ, Uconf and the diversifier index by them directly. 0 is the seed rule
// (the empty antecedent), never reported.
type ruleID uint32

const seedID ruleID = 0

// String renders the legacy boundary form.
func (id ruleID) String() string {
	if id == seedID {
		return "seed"
	}
	return fmt.Sprintf("R%05d", uint32(id))
}

// groupKey identifies one candidate rule of a round structurally: the
// parent it grew from plus the extension applied. pattern.Extension is
// comparable with equality matching Extension.Key() equality, so the pair
// is directly usable as a map key and as the shard-assignment hash input.
type groupKey struct {
	parent ruleID
	ext    pattern.Extension
}

// compare orders group keys deterministically: by parent ID, then by the
// extension's total order. The sharded assembly sorts the merged groups
// with it, which is what keeps results independent of the shard count.
func (k groupKey) compare(o groupKey) int {
	if k.parent != o.parent {
		if k.parent < o.parent {
			return -1
		}
		return 1
	}
	return k.ext.Compare(o.ext)
}

// hash maps the key to an assembly shard. Any deterministic function works
// (the reduce re-sorts), but FNV-1a spreads the dense parent IDs well.
func (k groupKey) hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime32
		}
	}
	mix(uint32(k.parent))
	mix(uint32(k.ext.Src))
	v := uint32(k.ext.EdgeLabel)<<2 | uint32(k.ext.NewLabel)<<12 // cheap fold; exactness irrelevant
	if k.ext.Outgoing {
		v |= 1
	}
	if k.ext.AsY {
		v |= 2
	}
	mix(v)
	mix(uint32(int32(k.ext.Close)))
	return h
}

// bucketID is an interned Lemma 4 bisimulation bucket. 0 means "no bucket"
// — the value every rule gets when the prefilter is off, so all candidates
// land in one bucket exactly like the legacy "" key.
type bucketID uint32

// bucketInterner assigns dense IDs to distinct bisimulation summaries. The
// miner interns at the sequential reduce, so no locking; the scratch buffer
// makes the common hit path allocation-free (map lookup on string([]byte)
// does not allocate).
type bucketInterner struct {
	ids map[string]bucketID
	buf []byte
}

func (bi *bucketInterner) intern(sum bisim.Summary) bucketID {
	if bi.ids == nil {
		bi.ids = make(map[string]bucketID)
	}
	bi.buf = bi.buf[:0]
	for _, w := range sum {
		bi.buf = binary.LittleEndian.AppendUint64(bi.buf, w)
	}
	if id, ok := bi.ids[string(bi.buf)]; ok {
		return id
	}
	id := bucketID(len(bi.ids) + 1)
	bi.ids[string(bi.buf)] = id
	return id
}
