// Package mine implements DMP, the diversified GPAR mining problem of
// Section 4 of "Association Rules with Graph Patterns" (PVLDB 2015), via
// algorithm DMine: a bulk-synchronous coordinator/worker computation that
// grows GPAR antecedents levelwise from the consequent predicate q(x,y),
// assembles fragment-local support and confidence messages, incrementally
// maintains a diversified top-k set (procedure incDiv), and prunes the
// search with the Lemma 3 reduction rules and the Lemma 4 bisimulation
// prefilter.
//
// Workers are goroutines over graph fragments (partition.Partition); each
// round they exchange <R, conf, flag> messages with the coordinator exactly
// as in Fig. 4 of the paper.
//
// One interpretation choice: the paper grows patterns "by including at
// least one new edge that is at hop r from vx" over d rounds, yet its own
// Example 9 produces radius-2 rules in round 1 and adds hop-1 edges in
// round 2. We therefore run Options.MaxEdges rounds, each adding one edge
// anywhere within the radius bound d (checked on PR at x), which realizes
// the same levelwise search space without the ambiguity.
package mine

import (
	"cmp"
	"context"
	"runtime"
	"slices"
	"sync"

	"gpar/internal/core"
	"gpar/internal/diversify"
	"gpar/internal/graph"
	"gpar/internal/partition"
	"gpar/internal/pattern"
)

// Options configures a DMine run. The zero value is not usable; call
// Defaults or fill in K, Sigma, D.
type Options struct {
	K      int     // top-k size
	Sigma  int     // support threshold σ on supp(R,G)
	D      int     // radius bound d on r(PR, x)
	Lambda float64 // diversification balance λ ∈ [0,1]
	N      int     // number of workers (fragments); coordinator is extra

	// Ctx, when non-nil, makes the run cancellable: the coordinator polls it
	// at every BSP superstep boundary (and the engines check it per worker
	// round), abandoning the run with a *CanceledError once the context is
	// done. Nothing partial is ever returned or installed, and every arena,
	// worker and pool entry is released cleanly — a canceled-then-rerun job
	// is byte-identical to a clean run (pinned by the parity tests). A nil
	// Ctx means the run cannot be canceled; the error-free entry points
	// (DMine, DMineNo) require it to be nil.
	Ctx context.Context

	MaxEdges int // antecedent edge budget; also the number of BSP rounds
	EmbedCap int // cap on embeddings enumerated per center when discovering
	// extensions (0 = 64); a safety valve on dense neighborhoods. A
	// center's embeddings are enumerated in a canonical global-ID order
	// (match.Options.Canonical over partition's globally sorted fragment
	// node order), so even when the cap bites, which embeddings are seen —
	// and therefore the mining result — is identical for every fragment
	// layout and worker count.

	// Gate, when non-nil, bounds how many of the N worker goroutines (and
	// assembly shards) execute simultaneously. Runs sharing one Gate — e.g.
	// every mine job of a server — collectively respect its bound, so
	// mining coexists with serve traffic instead of oversubscribing
	// GOMAXPROCS. Results are independent of the gate.
	Gate *Gate

	// DisableArenas turns off the per-worker round arenas and scratch
	// recycling: every message center set, assembly union buffer and
	// frontier list is then a fresh heap allocation, as before the arena
	// rewrite. Results are byte-identical either way (pinned by the
	// differential tests); the switch exists for those tests and for
	// debugging suspected arena-lifetime bugs.
	DisableArenas bool

	// Optimization toggles — the three DMine optimizations of Section 6
	// ("incremental, reductions and bisimilarity checking"). DMine sets all
	// true; DMineNo all false.
	Incremental bool // incDiv incremental queue vs from-scratch greedy
	Reduction   bool // Lemma 3 upper-bound filtering of Σ and ∆E
	BisimFilter bool // Lemma 4 prefilter before isomorphism grouping

	// MaxCandidatesPerRound caps |∆E| per round, keeping dense graphs
	// tractable; 0 means unlimited. Candidates are kept by support.
	MaxCandidatesPerRound int
}

// Defaults fills unset tunables. N defaults to the machine's parallelism —
// mining results are deterministic across worker counts, so using every
// core is free.
func (o Options) Defaults() Options {
	if o.N <= 0 {
		o.N = runtime.GOMAXPROCS(0)
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 2 * o.D
	}
	if o.EmbedCap <= 0 {
		o.EmbedCap = 64
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.D <= 0 {
		o.D = 2
	}
	return o
}

// WithOptimizations returns o with all three DMine optimizations enabled.
func (o Options) WithOptimizations() Options {
	o.Incremental = true
	o.Reduction = true
	o.BisimFilter = true
	return o
}

// Mined is one discovered GPAR with its graph-wide statistics.
type Mined struct {
	Rule  *core.Rule
	Stats core.Stats
	Conf  float64
	// Set is PR(x,G): the distinct matches of x, as global node IDs,
	// sorted. It feeds diff() and is the rule's "social group".
	Set []graph.NodeID
	// id identifies the rule across rounds within this run.
	id ruleID
	// bits is Set in popcount form, built once and shared with every
	// diversify.Entry the rule appears in.
	bits diversify.Bits
	// extendable mirrors the flag of the rule's assembled message.
	extendable bool
	// qCenters is Q(x,G) over the mining frontier (global IDs, sorted); it
	// seeds the workers' next-round center lists.
	qCenters []graph.NodeID
	// parent and ext record the growth step that produced the rule: the
	// parent's id and the extension applied to it. The distributed engine
	// ships frontier rules structurally as (id, parent, ext, qCenters) and
	// remote workers rebuild Q as parentQ.Apply(ext) — Apply is
	// deterministic, so the rebuilt pattern is byte-identical to the
	// coordinator's materialization.
	parent ruleID
	ext    pattern.Extension
}

// Key returns the rule's stable identity within one run, in the printable
// "R%05d" boundary form.
func (m *Mined) Key() string { return m.id.String() }

// Result is the outcome of a DMine run.
type Result struct {
	TopK []Mined
	F    float64 // objective value of TopK
	// All is the full retained candidate set Σ, sorted by descending
	// confidence; it feeds the Exp-2 precision study, which ranks Σ under
	// different confidence metrics.
	All []Mined

	Rounds      int
	Generated   int     // candidate GPARs generated (before support filter)
	Kept        int     // |Σ| retained
	Pruned      int     // removed by the Lemma 3 reduction rules
	IsoChecks   int     // exact isomorphism tests performed
	BisimSkips  int     // pairs rejected by the bisimulation prefilter
	WorkerOps   []int64 // per-worker match-operation counts (work proxy)
	MaxWorkerOp int64   // max over WorkerOps, the O(t/n) proxy
}

// DMine mines diversified top-k GPARs for pred on g. It implements Fig. 4
// of the paper with all optimizations per opts. The partition + freeze
// preamble is built from scratch; callers that mine repeatedly over the
// same graph should build a Context once and use DMineCtx (or, across the
// predicates of one job, Shared.DMine) — results are byte-identical.
// Options.Ctx must be nil here: this entry point has no error return, so
// cancellable runs go through DMineCtx/Shared.DMine/DMineDistributed.
func DMine(g *graph.Graph, pred core.Predicate, opts Options) *Result {
	opts = opts.Defaults()
	m := newMiner(NewContext(g, pred.XLabel, opts), pred, opts, nil)
	return m.run()
}

// DMineNo is the unoptimized baseline of Section 6: identical search, but
// no incremental diversification, no reduction rules, no bisimulation
// prefilter and no guided matching.
func DMineNo(g *graph.Graph, pred core.Predicate, opts Options) *Result {
	opts = opts.Defaults()
	opts.Incremental = false
	opts.Reduction = false
	opts.BisimFilter = false
	m := newMiner(NewContext(g, pred.XLabel, opts), pred, opts, nil)
	return m.run()
}

// ---------------------------------------------------------------------------
// Worker state

// worker holds one fragment plus its per-round caches and scratch. All
// scratch is owned by the worker goroutine; nothing here is shared.
type worker struct {
	id   int
	frag *partition.Fragment
	g    *graph.Graph // the whole graph, read-only (extendability probes); nil on remote workers

	pq     []bool // pq[local] : center is in Pq(x,Fi)
	pqbar  []bool // pqbar[local] : center is in the q̄ set
	npq    int    // |Pq(x,Fi)|
	npqbar int    // local q̄ count
	// centersFor caches, per rule, the owned centers (local IDs, sorted)
	// whose Q still matches — the mining frontier.
	centersFor map[ruleID][]graph.NodeID

	ops       int64  // match operations (work accounting)
	centerSet []bool // centerSet[local] : node is an owned candidate center

	// Round arenas and recycled scratch (see arena.go). msgs is the
	// worker's reusable message slice; qScratch/prScratch are the candidate
	// patterns localMine materializes per discovered extension; distBuf is
	// the radius-probe distance buffer. noRecycle mirrors
	// Options.DisableArenas for the current run.
	ar        roundArenas
	asm       asmScratch
	msgs      []message
	qScratch  *pattern.Pattern
	prScratch *pattern.Pattern
	distBuf   []int
	distXBuf  []int
	noRecycle bool

	// distCache memoizes hasNodeAtDistance per (global center, dist): the
	// same extendability probe recurs across rules and rounds. Owned
	// centers are disjoint across workers, so caches never duplicate work.
	distCache map[distKey]bool

	// ecc, when non-nil, replaces the whole-graph extendability probe: a
	// remote worker has no whole graph, so the coordinator ships each owned
	// center's whole-graph eccentricity capped at MaxEdges+1 (indexed by
	// local node ID; non-centers are never probed). BFS levels are
	// contiguous, so HasNodeAtDistance(v, d) ⟺ d ≤ ecc(v), and every probe
	// distance is ≤ MaxEdges+1 — the table answers exactly what the global
	// graph would.
	ecc []int32

	// Extension-discovery scratch (discoverExtensions): an epoch-stamped
	// dense inverse-embedding index in the style of the matcher's used-set
	// — bumping the epoch invalidates the whole array in O(1), so no map
	// is allocated per embedding — plus a pooled extension-accumulator set
	// reused across parents and rounds.
	inv      []int32  // inv[local data node] = pattern node, iff stamped
	invEpoch []uint32 // invEpoch[local data node] == epoch ⇒ inv is valid
	epoch    uint32
	accs     map[uint64]*extAcc // keyed by packed extension code
	accList  []*extAcc          // discovery order; re-sorted deterministically
	accPool  []*extAcc          // recycled accumulators
	// extOverflow interns the (pathological) extensions whose fields do not
	// fit the packed code: huge label spaces or patterns beyond 127 nodes.
	extOverflow map[pattern.Extension]uint64
}

// extCode packs an extension into a uint64 key for the accumulator map —
// two orders of magnitude cheaper to hash than the struct. Equal codes ⟺
// equal extensions: in-range extensions pack injectively (disjoint bit
// fields, bit 63 clear); out-of-range ones are interned with bit 63 set.
func (w *worker) extCode(e pattern.Extension) uint64 {
	src, cl := uint64(e.Src), uint64(int64(e.Close)+1)
	el, nl := uint64(e.EdgeLabel), uint64(e.NewLabel)
	if src < 1<<7 && cl < 1<<7 && el < 1<<23 && nl < 1<<23 {
		v := src | cl<<7 | el<<14 | nl<<37
		if e.Outgoing {
			v |= 1 << 60
		}
		if e.AsY {
			v |= 1 << 61
		}
		return v
	}
	if w.extOverflow == nil {
		w.extOverflow = make(map[pattern.Extension]uint64)
	}
	id, ok := w.extOverflow[e]
	if !ok {
		id = uint64(len(w.extOverflow)) | 1<<63
		w.extOverflow[e] = id
	}
	return id
}

type distKey struct {
	v graph.NodeID
	d int
}

// hasNodeAtDistance is a memoized graph.HasNodeAtDistance on the whole
// graph, keyed by global node ID. Probing the whole graph rather than the
// fragment matters for determinism: a fragment holds the d-neighborhoods
// of its own centers, so a radius-d probe at distance d+1 would see more
// or fewer nodes depending on which other centers share the fragment —
// i.e. on the worker count. The global answer is the same for every
// partitioning (and is the tighter reading of the Lemma 3 upper bound).
// extendable is the Usupp probe of Lemma 3: does the whole graph still have
// a node at distance d from center c (local) / gv (global)? Local workers
// answer from the memoized whole-graph probe; remote workers answer from the
// shipped capped-eccentricity table — the two are equal for every probe
// distance the miner issues (≤ MaxEdges+1, the table's cap).
func (w *worker) extendable(c, gv graph.NodeID, d int) bool {
	if w.ecc != nil {
		return d <= int(w.ecc[c])
	}
	return w.hasNodeAtDistance(gv, d)
}

func (w *worker) hasNodeAtDistance(gv graph.NodeID, d int) bool {
	if w.distCache == nil {
		w.distCache = make(map[distKey]bool)
	}
	k := distKey{gv, d}
	if r, ok := w.distCache[k]; ok {
		return r
	}
	r := w.g.HasNodeAtDistance(gv, d)
	w.distCache[k] = r
	return r
}

// ownsCenter reports whether the local node is one of this worker's owned
// candidate centers.
func (w *worker) ownsCenter(v graph.NodeID) bool {
	if w.centerSet == nil {
		w.centerSet = make([]bool, w.frag.G.NumNodes())
		for _, c := range w.frag.Centers {
			w.centerSet[c] = true
		}
	}
	return w.centerSet[v]
}

// message is the <R, conf, flag> triple of Fig. 4, extended with the data
// DMine's coordinator needs: local support counters and the local match
// sets whose union forms PR(x,G) and the extension frontier. The candidate
// itself travels structurally as (parent, ext) — workers verify it on
// recycled scratch patterns and the assembly materializes one rule per
// distinct candidate — and the center sets are views into the emitting
// worker's round arena, dead once the round's assembly completes.
type message struct {
	worker int
	parent ruleID
	ext    pattern.Extension

	qCenters   []graph.NodeID // global IDs: owned centers matching the new Q
	rSet       []graph.NodeID // global IDs: owned centers matching PR
	qqbCenters []graph.NodeID // global IDs: Q-matching centers in the q̄ set
	// usuppCenters realizes Usupp_i(R, Fi): PR-matching centers that can
	// still be extended (have nodes at the next hop), feeding Uconf+
	// (Lemma 3).
	usuppCenters []graph.NodeID
	flag         bool // extendable at this worker
}

// miner is the coordinator.
type miner struct {
	ctx  *Context
	g    *graph.Graph
	pred core.Predicate
	opts Options
	// eng places the workers: goroutines over in-process fragments
	// (localEngine) or remote worker services (remoteEngine). The
	// coordinator's reduce below is identical either way.
	eng engine

	suppQ1  int // supp(q,G)
	suppQbr int // supp(q̄,G)

	// sigma is Σ, all retained rules indexed by ruleID (nil = never kept,
	// or pruned by the reduction rules). Index 0 is the seed slot.
	sigma []*Mined
	// uconf tracks Uconf+(R) per extendable candidate (Lemma 3), indexed
	// like sigma.
	uconf        []float64
	sigmaBuckets map[bucketID][]ruleID // Lemma 4 bucket -> Σ ids
	queue        *diversify.Queue
	params       diversify.Params
	buckets      *bucketInterner
	lastID       ruleID
	res          *Result

	// Per-round coordinator scratch, recycled across rounds: the frontier
	// lookup assembly shards materialize group rules from, the shard
	// assignment index, the concatenated group list, and the arena backing
	// the cross-path union merges of assemble's step 2.
	parents    map[ruleID]*Mined
	shardIdx   [][]int32
	allGroups  []*group
	mergeArena nodeArena

	// Recycled diversifier-entry buffers: allEntries (Σ) and entriesOf (∆E)
	// rebuild these each round instead of allocating. The queue copies what
	// it keeps (pairs hold Entry values), so reuse is aliasing-safe. Fresh
	// allocations under Options.DisableArenas.
	sigmaEntries []diversify.Entry
	deltaEntries []diversify.Entry
}

// newMiner wires a coordinator over a prebuilt context. With a Shared
// accumulator, the interning tables come from it (and outlive this run);
// otherwise they are fresh.
func newMiner(ctx *Context, pred core.Predicate, opts Options, sh *Shared) *miner {
	m := &miner{
		ctx:   ctx,
		g:     ctx.g,
		pred:  pred,
		opts:  opts,
		eng:   &localEngine{shared: sh},
		sigma: make([]*Mined, 1), // slot 0: seed
		uconf: make([]float64, 1),
		res:   &Result{},
	}
	if sh != nil {
		m.buckets = &sh.buckets
	} else {
		m.buckets = new(bucketInterner)
	}
	return m
}

// newRuleID appends a fresh Σ/uconf slot and returns its id.
func (m *miner) newRuleID() ruleID {
	m.lastID++
	m.sigma = append(m.sigma, nil)
	m.uconf = append(m.uconf, 0)
	return m.lastID
}

// run drives runE for runs that cannot fail: the local engine with a nil
// Options.Ctx. The non-cancellable entry points (DMine, DMineNo) route
// here and must not be handed a Ctx — a cancellation would surface as a
// panic, because they have no error to return it through.
func (m *miner) run() *Result {
	res, err := m.runE()
	if err != nil {
		// Only the remote engine and a set Options.Ctx produce errors, and
		// their entry points call runE directly; an error here is a
		// programming bug.
		panic(err)
	}
	return res
}

// runE is the coordinator loop of Fig. 4, engine-agnostic: prepare (round
// 0), then per round one generate superstep, the deterministic assemble
// reduce, and the diversify/filter/distribute step. Errors are remote
// worker failures or a done Options.Ctx (a *CanceledError stamped with the
// superstep reached); the deferred close releases workers on every exit
// path, so a failed or canceled run never leaks (and never installs a
// partial Σ — the Result is simply not returned).
func (m *miner) runE() (*Result, error) {
	defer m.eng.close(m)
	if err := m.canceled(0); err != nil {
		return nil, err
	}
	frontier, err := m.prepare()
	if err != nil {
		return nil, m.wrapCanceled(err, 0)
	}
	if frontier == nil {
		// Trivial case 1: q(x,y) specifies no user in G.
		return m.res, nil
	}
	for r := 1; r <= m.opts.MaxEdges && len(frontier) > 0; r++ {
		if err := m.canceled(r); err != nil {
			return nil, err
		}
		m.res.Rounds = r
		msgs, err := m.eng.generate(m, frontier)
		if err != nil {
			return nil, m.wrapCanceled(err, r)
		}
		deltaE := m.assemble(frontier, msgs)
		frontier, err = m.diversifyAndFilter(deltaE, r)
		if err != nil {
			return nil, m.wrapCanceled(err, r)
		}
	}

	m.finish()
	return m.res, nil
}

// prepare attaches the workers, classifies every owned center against the
// predicate (round 0 — Pq, q̄ and their supports never change), and returns
// the seed frontier. It returns nil when the predicate is trivial on the
// graph. Factored out of run so the round benchmark can measure a single
// steady-state generate superstep.
func (m *miner) prepare() ([]*Mined, error) {
	m.mergeArena.noRecycle = m.opts.DisableArenas
	npq, npqbar, err := m.eng.attach(m)
	if err != nil {
		return nil, err
	}
	for i := range npq {
		m.suppQ1 += npq[i]
		m.suppQbr += npqbar[i]
	}
	if m.suppQ1 == 0 {
		return nil, nil
	}
	m.params = diversify.Params{
		K:      m.opts.K,
		Lambda: m.opts.Lambda,
		N:      float64(m.suppQ1) * float64(m.suppQbr),
	}
	m.queue = diversify.NewQueue(m.params)
	m.queue.NoRecycle = m.opts.DisableArenas

	// Seed: the bare rule with an empty antecedent (just x, and y when the
	// predicate's y participates in Q growth). It is never reported (it is
	// trivial) but its extensions are round 1's candidates.
	seedQ := pattern.New(m.g.Symbols())
	seedQ.X = seedQ.AddNodeL(m.pred.XLabel)
	seed := &Mined{
		Rule: &core.Rule{Q: seedQ, Pred: m.pred},
		id:   seedID,
	}
	if err := m.eng.seedFrontier(m); err != nil {
		return nil, err
	}
	return []*Mined{seed}, nil
}

// setRecycleMode flips the worker between arena recycling and the plain
// allocation mode of Options.DisableArenas.
func (w *worker) setRecycleMode(disable bool) {
	w.noRecycle = disable
	w.ar.setMode(disable)
	w.asm.arena.noRecycle = disable
}

// workerPool recycles standalone workers across runs. What survives in the
// pool is exclusively graph-agnostic capacity — round arenas, message
// slices, extension accumulators, assembly scratch, scratch patterns, the
// epoch-stamped discovery arrays (safe across graphs because the epoch
// only moves forward). Everything whose *content* depends on the bound
// graph is reset in acquireWorker.
var workerPool = sync.Pool{New: func() any { return new(worker) }}

// acquireWorker binds pooled worker scratch to one fragment of this run.
func acquireWorker(id int, frag *partition.Fragment, g *graph.Graph) *worker {
	w := workerPool.Get().(*worker)
	w.id, w.frag, w.g = id, frag, g
	if w.centersFor == nil {
		w.centersFor = make(map[ruleID][]graph.NodeID)
	} else {
		clear(w.centersFor)
	}
	w.npq, w.npqbar = 0, 0
	w.ops = 0
	w.centerSet = nil // fragment-specific; rebuilt lazily by ownsCenter
	w.ecc = nil       // a pooled worker may have last served a remote runtime
	if w.distCache != nil {
		clear(w.distCache) // memoizes a property of the previous graph
	}
	if w.extOverflow != nil {
		clear(w.extOverflow)
	}
	return w
}

// release parks the worker in the pool, dropping its references into the
// graph so the pool never pins a retired snapshot.
func (w *worker) release() {
	w.frag, w.g = nil, nil
	workerPool.Put(w)
}

// finish materializes the final top-k list and objective value.
func (m *miner) finish() {
	var entries []diversify.Entry
	if m.opts.Incremental {
		entries = m.queue.Entries()
	} else {
		entries = diversify.Greedy(m.allEntries(), m.params)
	}
	for _, e := range entries {
		if mined := m.sigmaByID(ruleID(e.ID)); mined != nil {
			m.res.TopK = append(m.res.TopK, *mined)
		}
	}
	slices.SortFunc(m.res.TopK, byConfThenID)
	m.res.F = diversify.F(entries, m.params)
	for id := seedID + 1; id <= m.lastID; id++ {
		if mined := m.sigma[id]; mined != nil {
			m.res.Kept++
			m.res.All = append(m.res.All, *mined)
		}
	}
	slices.SortFunc(m.res.All, byConfThenID)
	m.res.WorkerOps = m.eng.ops()
	for _, op := range m.res.WorkerOps {
		if op > m.res.MaxWorkerOp {
			m.res.MaxWorkerOp = op
		}
	}
}

// byConfThenID orders result lists by descending confidence, ties broken by
// discovery id. slices.SortFunc keeps the hot path reflection- and
// allocation-free where sort.Slice was neither.
func byConfThenID(a, b Mined) int {
	if a.Conf != b.Conf {
		return cmp.Compare(b.Conf, a.Conf)
	}
	return cmp.Compare(a.id, b.id)
}

// sigmaByID returns the Σ member with the given id, or nil.
func (m *miner) sigmaByID(id ruleID) *Mined {
	if int(id) >= len(m.sigma) {
		return nil
	}
	return m.sigma[id]
}

// allEntries lists Σ as diversifier entries in ascending id order. The
// returned slice is the miner's recycled buffer — valid until the next call.
func (m *miner) allEntries() []diversify.Entry {
	out := m.sigmaEntries[:0]
	if m.opts.DisableArenas || out == nil {
		out = make([]diversify.Entry, 0, len(m.sigma))
	}
	for id := seedID + 1; id <= m.lastID; id++ {
		mm := m.sigma[id]
		if mm == nil {
			continue
		}
		out = append(out, diversify.Entry{ID: uint32(id), Conf: mm.Conf, Set: mm.Set, B: mm.bits})
	}
	m.sigmaEntries = out
	return out
}
