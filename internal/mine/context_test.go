package mine

import (
	"sync"
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
)

// contextFixture is the shared differential workload: a seeded Pokec-like
// graph and every Pokec predicate (all over the same x-label "user"), so
// the shared-accumulator path is exercised across multiple predicates.
func contextFixture(t testing.TB) (*graph.Graph, []core.Predicate, Options) {
	t.Helper()
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(250, 11))
	opts := Options{
		K: 5, Sigma: 2, D: 2, Lambda: 0.5, N: 3,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations()
	preds := gen.PokecPredicates(syms)
	if len(preds) < 2 {
		t.Fatal("fixture needs at least two predicates")
	}
	return g, preds, opts
}

// TestDMineCtxMatchesDMine is the differential half of the mine-context
// cache contract: a run on a prebuilt (cached) Context must be
// byte-identical to a fresh DMine, and the same Context must be reusable
// for repeated runs without drift — exactly what the serving cache does
// when the same mine job is posted twice.
func TestDMineCtxMatchesDMine(t *testing.T) {
	g, preds, opts := contextFixture(t)
	for _, pred := range preds[:2] {
		want := fingerprint(DMine(g, pred, opts))
		ctx := NewContext(g, pred.XLabel, opts)
		for run := 0; run < 2; run++ {
			got := fingerprint(must(DMineCtx(ctx, pred, opts)))
			if got != want {
				t.Fatalf("run %d on cached context differs from fresh DMine:\n--- fresh ---\n%s--- cached ---\n%s",
					run, want, got)
			}
		}
	}
}

// TestSharedAccumulatorByteIdentical pins the cross-predicate half: mining
// a sequence of predicates through one Shared accumulator (reused workers,
// extendability memos, interning tables) must match mining each predicate
// independently from scratch.
func TestSharedAccumulatorByteIdentical(t *testing.T) {
	g, preds, opts := contextFixture(t)
	xl := preds[0].XLabel
	sh := NewShared(NewContext(g, xl, opts))
	for i, pred := range preds {
		if pred.XLabel != xl {
			continue
		}
		want := fingerprint(DMine(g, pred, opts))
		got := fingerprint(must(sh.DMine(pred, opts)))
		if got != want {
			t.Fatalf("predicate %d: shared-accumulator result differs from fresh DMine:\n--- fresh ---\n%s--- shared ---\n%s",
				i, want, got)
		}
	}
}

// TestDMineMultiMatchesIndependentRuns checks DMineMulti end to end: the
// per-x-label context + accumulator sharing must not change any result
// relative to independent DMine calls, and the result list must still
// deduplicate predicates preserving first-occurrence order.
func TestDMineMultiMatchesIndependentRuns(t *testing.T) {
	g, preds, opts := contextFixture(t)
	// Duplicate the first predicate to exercise the dedup path too.
	input := append(append([]core.Predicate(nil), preds...), preds[0])

	got := must(DMineMulti(g, input, opts))
	var wantOrder []core.Predicate
	seen := map[core.Predicate]bool{}
	for _, p := range input {
		if !seen[p] {
			seen[p] = true
			wantOrder = append(wantOrder, p)
		}
	}
	if len(got) != len(wantOrder) {
		t.Fatalf("DMineMulti returned %d results, want %d", len(got), len(wantOrder))
	}
	for i, mr := range got {
		if mr.Pred != wantOrder[i] {
			t.Fatalf("result %d is for %+v, want %+v", i, mr.Pred, wantOrder[i])
		}
		want := fingerprint(DMine(g, mr.Pred, opts))
		if fp := fingerprint(mr.Result); fp != want {
			t.Fatalf("DMineMulti result %d differs from independent DMine:\n--- independent ---\n%s--- multi ---\n%s",
				i, want, fp)
		}
	}
}

// TestConcurrentDMineSharedContext stresses the Context immutability
// contract: many concurrent DMineCtx runs over one shared Context (each
// with its own miner state) must all produce the byte-identical result.
// CI runs this package under -race, which is the real assertion.
func TestConcurrentDMineSharedContext(t *testing.T) {
	g, preds, opts := contextFixture(t)
	pred := preds[0]
	want := fingerprint(DMine(g, pred, opts))
	ctx := NewContext(g, pred.XLabel, opts)

	const goroutines = 8
	results := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fingerprint(must(DMineCtx(ctx, pred, opts)))
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != want {
			t.Fatalf("goroutine %d result differs from fresh DMine", i)
		}
	}
}

// TestDMineCtxRejectsMismatchedContext pins the guard: running against a
// context built for different parameters is a programming error, reported
// as an error (never a partial result).
func TestDMineCtxRejectsMismatchedContext(t *testing.T) {
	g, preds, opts := contextFixture(t)
	pred := preds[0]
	ctx := NewContext(g, pred.XLabel, opts)
	bad := opts
	bad.D = opts.D + 1
	res, err := DMineCtx(ctx, pred, bad)
	if err == nil {
		t.Fatal("DMineCtx with mismatched d did not error")
	}
	if res != nil {
		t.Fatal("DMineCtx with mismatched d returned a result")
	}
}

// TestContextAccessors covers the read-only surface the serving layer and
// its stats rely on.
func TestContextAccessors(t *testing.T) {
	g, preds, opts := contextFixture(t)
	pred := preds[0]
	ctx := NewContext(g, pred.XLabel, opts)
	if ctx.Graph() != g {
		t.Error("Graph() is not the input graph")
	}
	if ctx.XLabel() != pred.XLabel {
		t.Errorf("XLabel() = %d, want %d", ctx.XLabel(), pred.XLabel)
	}
	if ctx.D() != opts.D || ctx.N() != opts.N {
		t.Errorf("(D, N) = (%d, %d), want (%d, %d)", ctx.D(), ctx.N(), opts.D, opts.N)
	}
	if want := len(g.NodesWithLabel(pred.XLabel)); ctx.NumCandidates() != want {
		t.Errorf("NumCandidates() = %d, want %d", ctx.NumCandidates(), want)
	}
	if sh := NewShared(ctx); sh.Context() != ctx {
		t.Error("Shared.Context() does not round-trip")
	}
}
