package mine

import (
	"errors"
	"fmt"
	"slices"
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine/wire"
)

// loopbackConn drives a WorkerRuntime through the full wire codec path —
// every frame is encoded to bytes and decoded back, exactly as over a
// socket — without a socket. The TCP layer on top of this is
// internal/mine/remote; this pins the protocol and runtime semantics.
type loopbackConn struct {
	rt *WorkerRuntime
}

func (c *loopbackConn) Setup(s *wire.JobSetup) (*wire.SetupAck, error) {
	dec, err := wire.DecodeJobSetup(s.Append(nil))
	if err != nil {
		return nil, err
	}
	rt, ack, err := NewWorkerRuntime(dec)
	if err != nil {
		return nil, err
	}
	c.rt = rt
	return wire.DecodeSetupAck(ack.Append(nil))
}

func (c *loopbackConn) Mine(rd *wire.Round) (*wire.Messages, error) {
	dec, err := wire.DecodeRound(rd.Append(nil))
	if err != nil {
		return nil, err
	}
	ms, err := c.rt.Round(dec)
	if err != nil {
		return nil, err
	}
	// Encoding before returning is the contract: the reply aliases
	// runtime-owned storage the next Round overwrites.
	return wire.DecodeMessages(ms.Append(nil))
}

func (c *loopbackConn) Finish() error {
	if c.rt != nil {
		c.rt.Close()
		c.rt = nil
	}
	return nil
}

func loopbackConns(n int) []WorkerConn {
	conns := make([]WorkerConn, n)
	for i := range conns {
		conns[i] = &loopbackConn{}
	}
	return conns
}

// TestDMineDistributedMatchesLocal is the distributed engine's differential
// contract: for every worker count, mining over wire-decoded remote
// runtimes is byte-identical — result fingerprint and per-worker op counts
// — to the in-process engine on the same context.
func TestDMineDistributedMatchesLocal(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(300, 5))
	pred := gen.PokecPredicates(syms)[0]
	base := Options{
		K: 6, Sigma: 3, D: 2, Lambda: 0.5,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations()

	for _, n := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			o := base
			o.N = n
			o = o.Defaults()
			ctx := NewContext(g, pred.XLabel, o)
			want := must(DMineCtx(ctx, pred, o))

			got, err := DMineDistributed(ctx, pred, o, loopbackConns(n))
			if err != nil {
				t.Fatal(err)
			}
			if fw, fg := fingerprint(want), fingerprint(got); fw != fg {
				t.Fatalf("distributed result differs from local:\n--- local ---\n%s--- distributed ---\n%s", fw, fg)
			}
			if !slices.Equal(want.WorkerOps, got.WorkerOps) {
				t.Fatalf("WorkerOps = %v, want %v", got.WorkerOps, want.WorkerOps)
			}
		})
	}
}

// TestDMineDistributedArenasOff pins the DisableArenas switch across the
// wire: the flag ships in JobSetup and the remote rounds must still be
// byte-identical to the local arenas-off run.
func TestDMineDistributedArenasOff(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(200, 9))
	pred := gen.PokecPredicates(syms)[0]
	o := Options{
		K: 6, Sigma: 2, D: 2, Lambda: 0.5, N: 3,
		MaxEdges: 2, EmbedCap: 1 << 20, DisableArenas: true,
	}.WithOptimizations().Defaults()
	ctx := NewContext(g, pred.XLabel, o)
	want := fingerprint(must(DMineCtx(ctx, pred, o)))
	got, err := DMineDistributed(ctx, pred, o, loopbackConns(3))
	if err != nil {
		t.Fatal(err)
	}
	if fg := fingerprint(got); fg != want {
		t.Fatalf("arenas-off distributed result differs from local:\n%s\nvs\n%s", want, fg)
	}
}

// TestDMineDistributedEmbedCap covers the truncating EmbedCap path: remote
// workers enumerate embeddings canonically from their decoded fragments,
// so even a cap of 1 keeps results layout- and transport-independent.
func TestDMineDistributedEmbedCap(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(200, 9))
	pred := gen.PokecPredicates(syms)[0]
	o := Options{
		K: 6, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1,
	}.WithOptimizations().Defaults()
	ctx := NewContext(g, pred.XLabel, o)
	want := fingerprint(must(DMineCtx(ctx, pred, o)))
	got, err := DMineDistributed(ctx, pred, o, loopbackConns(2))
	if err != nil {
		t.Fatal(err)
	}
	if fg := fingerprint(got); fg != want {
		t.Fatal("EmbedCap=1 distributed result differs from local")
	}
}

// failingConn fails every call after a configurable number of successful
// Mine supersteps.
type failingConn struct {
	inner    loopbackConn
	mineOK   int
	failWith error
}

func (c *failingConn) Setup(s *wire.JobSetup) (*wire.SetupAck, error) {
	if c.mineOK < 0 {
		return nil, c.failWith
	}
	return c.inner.Setup(s)
}

func (c *failingConn) Mine(rd *wire.Round) (*wire.Messages, error) {
	if c.mineOK == 0 {
		return nil, c.failWith
	}
	c.mineOK--
	return c.inner.Mine(rd)
}

func (c *failingConn) Finish() error { return c.inner.Finish() }

// TestDMineDistributedWorkerFailure pins the failure contract: a worker
// failing mid-run surfaces as a *WorkerError naming that worker, the run
// returns no result, and no panic or hang occurs. Setup-phase and
// superstep-phase failures both count.
func TestDMineDistributedWorkerFailure(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(200, 9))
	pred := gen.PokecPredicates(syms)[0]
	o := Options{
		K: 6, Sigma: 2, D: 2, Lambda: 0.5, N: 3,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := NewContext(g, pred.XLabel, o)

	for _, tc := range []struct {
		name   string
		mineOK int
	}{
		{"setup", -1},
		{"first superstep", 0},
		{"second superstep", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cause := errors.New("connection reset")
			conns := loopbackConns(3)
			conns[1] = &failingConn{mineOK: tc.mineOK, failWith: cause}
			res, err := DMineDistributed(ctx, pred, o, conns)
			if res != nil {
				t.Fatal("failed run returned a result")
			}
			var we *WorkerError
			if !errors.As(err, &we) {
				t.Fatalf("error %T (%v), want *WorkerError", err, err)
			}
			if we.Worker != 1 {
				t.Fatalf("failure attributed to worker %d, want 1", we.Worker)
			}
			if !errors.Is(err, cause) {
				t.Fatalf("error chain %v does not unwrap to the cause", err)
			}
		})
	}
}

// TestDMineDistributedConnCountMismatch: the connection count must match
// the context's fragment count exactly.
func TestDMineDistributedConnCountMismatch(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	o := baseOpts()
	o.N = 2
	o = o.Defaults()
	ctx := NewContext(f.G, pred.XLabel, o)
	if _, err := DMineDistributed(ctx, pred, o, loopbackConns(3)); err == nil {
		t.Fatal("mismatched connection count accepted")
	}
}
