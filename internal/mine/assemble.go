package mine

import (
	"cmp"
	"slices"
	"sync"

	"gpar/internal/bisim"
	"gpar/internal/core"
	"gpar/internal/diversify"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// group accumulates the cross-worker evidence of one candidate rule. The
// sets are sorted deduplicated global node IDs carved from the owning
// shard's arena; rule points at the shard's pooled materialization. A group
// lives exactly one assemble call — anything that survives into Σ is cloned
// out in step 3.
type group struct {
	key    groupKey
	rule   *core.Rule
	msgIdx []int32        // message indices contributing to this group
	q      []graph.NodeID // Q(x,·) over owned frontier centers
	r      []graph.NodeID // PR(x,·)
	qqb    []graph.NodeID // Q(x,·) ∩ q̄
	usupp  []graph.NodeID // extendable PR matches (Usupp)
	flag   bool
	sum    bisim.Summary // Lemma 4 summary (nil when the prefilter is off)
	bucket bucketID      // interned at the reduce; 0 when prefilter is off
}

// asmScratch is one assembly shard's recycled state: the per-round group
// map and list, a pool of retired group structs, pooled rule
// materializations (pattern storage reused round over round), the arena
// backing every group's four union lanes, the flat buffer bisimulation
// summaries are appended to, and the scratch pattern PR summaries are built
// from. Shard s is owned by worker s, so the memory survives exactly as
// long as the worker does — including across the runs of a Shared
// accumulator and across the jobs of a serving worker-set pool.
type asmScratch struct {
	gm        map[groupKey]*group
	order     []*group
	pool      []*group
	rules     []*core.Rule
	arena     nodeArena
	sums      []uint64
	prScratch *pattern.Pattern
}

// assemble is the coordinator's barrier-synchronization phase (lines 4-7 of
// Fig. 4): merge the fragment messages, group automorphic GPARs (with the
// Lemma 4 bisimulation prefilter when enabled), compute graph-wide supports
// and confidence, filter by σ and triviality, and register survivors in Σ.
//
// Step 1 (structural merge by (parent, extension)) and the bisimulation
// summaries are computed in parallel shards; steps 2-4 run as one
// deterministic sequential reduce over the shard results, re-sorted by
// group key — so the output is byte-identical for any worker count.
func (m *miner) assemble(frontier []*Mined, msgs []message) []*Mined {
	order := m.mergeShards(frontier, msgs)
	m.res.Generated += len(order)
	m.mergeArena.reset()

	// Step 2: group automorphic GPARs across generation paths and against
	// rules already in Σ, bucketing by bisimulation summary first (Lemma 4).
	buckets := make(map[bucketID][]*group) // this round's representatives
	var uniq []*group
	for _, gr := range order {
		if m.opts.BisimFilter {
			gr.bucket = m.buckets.intern(gr.sum)
		}
		dup := false
		// Against this round's reps. With the prefilter off every group
		// has bucket 0, i.e. one shared bucket, exactly like the legacy
		// "" key.
		cands := buckets[gr.bucket]
		m.res.BisimSkips += m.bisimSkipped(len(uniq), len(cands))
		for _, other := range cands {
			m.res.IsoChecks++
			if gr.rule.Q.IsomorphicTo(other.rule.Q) {
				// Same rule: merge evidence into the representative.
				other.q = m.mergeArena.unionInto(other.q, gr.q)
				other.r = m.mergeArena.unionInto(other.r, gr.r)
				other.qqb = m.mergeArena.unionInto(other.qqb, gr.qqb)
				other.usupp = m.mergeArena.unionInto(other.usupp, gr.usupp)
				other.flag = other.flag || gr.flag
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Against Σ (rules discovered in earlier rounds).
		if m.inSigma(gr) {
			continue
		}
		buckets[gr.bucket] = append(buckets[gr.bucket], gr)
		uniq = append(uniq, gr)
	}

	// Step 3: graph-wide stats, σ and triviality filters. Survivors escape
	// the round (into Σ and ultimately the Result), so their rule and sets
	// are cloned out of the round-recycled storage here.
	var deltaE []*Mined
	for _, gr := range uniq {
		stats := core.Stats{
			SuppR:    len(gr.r),
			SuppQ:    len(gr.q),
			SuppQqb:  len(gr.qqb),
			SuppQ1:   m.suppQ1,
			SuppQbar: m.suppQbr,
		}
		if stats.SuppR < m.opts.Sigma {
			continue
		}
		if trivial, _ := stats.Trivial(); trivial {
			// "if an extension leads to supp(Qq̄) = 0, Sc removes R" (§4.2).
			continue
		}
		id := m.newRuleID()
		set := slices.Clone(gr.r)
		mined := &Mined{
			Rule:   &core.Rule{Q: gr.rule.Q.Clone(), Pred: gr.rule.Pred},
			Stats:  stats,
			Conf:   stats.Conf(),
			Set:    set,
			id:     id,
			bits:   diversify.MakeBits(set),
			parent: gr.key.parent,
			ext:    gr.key.ext,
		}
		// Uconf+(R) = Σ Usupp_i(R,Fi) · supp(q̄,G) / supp(q,G) (Lemma 3).
		if gr.flag {
			m.uconf[id] = float64(len(gr.usupp)) * float64(m.suppQbr) / float64(m.suppQ1)
		}
		mined.extendable = gr.flag
		mined.qCenters = slices.Clone(gr.q)
		deltaE = append(deltaE, mined)
		m.registerBucket(gr.bucket, id)
	}

	// Step 4: optional per-round cap, keeping the highest-support rules.
	if limit := m.opts.MaxCandidatesPerRound; limit > 0 && len(deltaE) > limit {
		slices.SortStableFunc(deltaE, func(a, b *Mined) int {
			if a.Stats.SuppR != b.Stats.SuppR {
				return cmp.Compare(b.Stats.SuppR, a.Stats.SuppR)
			}
			return cmp.Compare(a.id, b.id)
		})
		deltaE = deltaE[:limit]
	}

	for _, mined := range deltaE {
		m.sigma[mined.id] = mined
	}
	return deltaE
}

// mergeShards is assemble's parallel phase: messages are sharded by group
// key hash, each shard merges its messages by (parent, extension) — the
// same rule produced at different workers, so the sets union directly —
// materializes one rule per group (the workers only ship (parent, ext)
// plus center sets; scratch patterns never cross the wire), and summarizes
// its groups for the Lemma 4 prefilter. The concatenated result is sorted
// by group key, which erases both the shard assignment and the shard count
// from everything downstream.
func (m *miner) mergeShards(frontier []*Mined, msgs []message) []*group {
	if len(msgs) == 0 {
		return nil
	}
	// Frontier lookup for materializing group rules at the reduce side.
	if m.parents == nil {
		m.parents = make(map[ruleID]*Mined, len(frontier))
	}
	clear(m.parents)
	for _, p := range frontier {
		m.parents[p.id] = p
	}

	nsh := m.eng.numWorkers()
	if nsh > len(msgs) {
		nsh = len(msgs)
	}
	if cap(m.shardIdx) < nsh {
		m.shardIdx = make([][]int32, nsh)
	}
	shardMsgs := m.shardIdx[:nsh]
	for s := range shardMsgs {
		shardMsgs[s] = shardMsgs[s][:0]
	}
	for i := range msgs {
		s := int(groupKey{msgs[i].parent, msgs[i].ext}.hash() % uint32(nsh))
		shardMsgs[s] = append(shardMsgs[s], int32(i))
	}
	var wg sync.WaitGroup
	gate := m.opts.Gate
	for s := 0; s < nsh; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if gate != nil {
				gate.acquire()
				defer gate.release()
			}
			m.eng.shard(s).merge(m, msgs, shardMsgs[s])
		}(s)
	}
	wg.Wait()
	all := m.allGroups[:0]
	for s := 0; s < nsh; s++ {
		all = append(all, m.eng.shard(s).order...)
	}
	slices.SortFunc(all, func(a, b *group) int { return a.key.compare(b.key) })
	m.allGroups = all
	return all
}

// merge builds one shard's groups: pass 1 buckets message indices by group
// key; pass 2 materializes each group's rule, builds its four union lanes
// contiguously in the shard arena, and appends its bisimulation summary to
// the shard's summary buffer. Everything is recycled from the previous
// round — in steady state the only allocations are map growth on
// first-seen group keys.
func (s *asmScratch) merge(m *miner, msgs []message, idx []int32) {
	s.pool = append(s.pool, s.order...)
	s.order = s.order[:0]
	s.arena.reset()
	s.sums = s.sums[:0]
	if s.gm == nil {
		s.gm = make(map[groupKey]*group)
	}
	clear(s.gm)

	for _, i := range idx {
		msg := &msgs[i]
		k := groupKey{msg.parent, msg.ext}
		gr := s.gm[k]
		if gr == nil {
			gr = s.newGroup(k)
		}
		gr.msgIdx = append(gr.msgIdx, i)
		gr.flag = gr.flag || msg.flag
	}

	noRecycle := m.opts.DisableArenas
	for gi, gr := range s.order {
		gr.rule = s.materialize(m, gr.key, gi, noRecycle)
		gr.q = s.lane(msgs, gr.msgIdx, msgQ)
		gr.r = s.lane(msgs, gr.msgIdx, msgR)
		gr.qqb = s.lane(msgs, gr.msgIdx, msgQqb)
		gr.usupp = s.lane(msgs, gr.msgIdx, msgUsupp)
		if m.opts.BisimFilter {
			if noRecycle {
				gr.sum = bisim.Summarize(gr.rule.PR())
			} else {
				if s.prScratch == nil {
					s.prScratch = pattern.New(gr.rule.Q.Symbols())
				}
				pr := gr.rule.PRInto(s.prScratch)
				mark := len(s.sums)
				s.sums = bisim.AppendSummary(s.sums, pr)
				gr.sum = bisim.Summary(s.sums[mark:len(s.sums):len(s.sums)])
			}
		}
	}
}

// Message lane selectors, named (not closures) so lane calls don't allocate.
func msgQ(msg *message) []graph.NodeID     { return msg.qCenters }
func msgR(msg *message) []graph.NodeID     { return msg.rSet }
func msgQqb(msg *message) []graph.NodeID   { return msg.qqbCenters }
func msgUsupp(msg *message) []graph.NodeID { return msg.usuppCenters }

// lane builds one group's sorted deduplicated union of one message field,
// carved contiguously from the shard arena.
func (s *asmScratch) lane(msgs []message, idx []int32, get func(*message) []graph.NodeID) []graph.NodeID {
	mark := s.arena.mark()
	for _, i := range idx {
		s.arena.pushAll(get(&msgs[i]))
	}
	return s.arena.takeSortedDedup(mark)
}

// newGroup takes a group from the pool (or allocates one), resets it and
// registers it under the key.
func (s *asmScratch) newGroup(k groupKey) *group {
	var gr *group
	if n := len(s.pool); n > 0 {
		gr = s.pool[n-1]
		s.pool = s.pool[:n-1]
	} else {
		gr = &group{}
	}
	*gr = group{key: k, msgIdx: gr.msgIdx[:0]}
	s.gm[k] = gr
	s.order = append(s.order, gr)
	return gr
}

// materialize produces the group's candidate rule, parent.Q ⊕ ext. Workers
// only emit messages for extensions they successfully applied, and Apply is
// deterministic, so the application cannot fail here. With arenas on, the
// pattern storage is pooled per shard ordinal and recycled every round;
// survivors are cloned out of it in assemble's step 3.
func (s *asmScratch) materialize(m *miner, k groupKey, gi int, noRecycle bool) *core.Rule {
	parent := m.parents[k.parent]
	if parent == nil {
		panic("mine: assembled message references a rule outside the frontier")
	}
	if noRecycle {
		q := parent.Rule.Q.Apply(k.ext)
		if q == nil {
			panic("mine: extension inapplicable at assembly")
		}
		return &core.Rule{Q: q, Pred: parent.Rule.Pred}
	}
	for len(s.rules) <= gi {
		s.rules = append(s.rules, &core.Rule{Q: pattern.New(parent.Rule.Q.Symbols())})
	}
	r := s.rules[gi]
	q := parent.Rule.Q.ApplyInto(r.Q, k.ext)
	if q == nil {
		panic("mine: extension inapplicable at assembly")
	}
	r.Q, r.Pred = q, parent.Rule.Pred
	return r
}

// bisimSkipped accounts for the pairwise comparisons the prefilter avoided.
func (m *miner) bisimSkipped(totalReps, bucketReps int) int {
	if !m.opts.BisimFilter {
		return 0
	}
	if totalReps > bucketReps {
		return totalReps - bucketReps
	}
	return 0
}

// inSigma reports whether the candidate duplicates a rule already in Σ
// (discovered in an earlier round via a different growth path).
func (m *miner) inSigma(gr *group) bool {
	if m.opts.BisimFilter {
		for _, id := range m.sigmaBuckets[gr.bucket] {
			old := m.sigma[id]
			if old == nil {
				continue // pruned by the reduction rules
			}
			m.res.IsoChecks++
			if gr.rule.Q.IsomorphicTo(old.Rule.Q) {
				return true
			}
		}
		return false
	}
	for id := seedID + 1; id <= m.lastID; id++ {
		old := m.sigma[id]
		if old == nil {
			continue
		}
		m.res.IsoChecks++
		if gr.rule.Q.IsomorphicTo(old.Rule.Q) {
			return true
		}
	}
	return false
}

// registerBucket records a new Σ member in the bucket index.
func (m *miner) registerBucket(bucket bucketID, id ruleID) {
	if m.sigmaBuckets == nil {
		m.sigmaBuckets = make(map[bucketID][]ruleID)
	}
	m.sigmaBuckets[bucket] = append(m.sigmaBuckets[bucket], id)
}

// diversifyAndFilter is lines 8-11 of Fig. 4: update the top-k structure,
// apply the Lemma 3 reduction rules, pick the rules to extend next round,
// and hand each worker its refreshed center frontier through the engine
// (carved from the worker's frontier lane, whose previous round's views
// localMine has already consumed).
func (m *miner) diversifyAndFilter(deltaE []*Mined, round int) ([]*Mined, error) {
	if m.opts.Incremental {
		m.queue.Update(m.entriesOf(deltaE), m.allEntries())
	} else {
		// DMineNo recomputes the diversification from scratch every round.
		_ = diversify.Greedy(m.allEntries(), m.params)
	}

	extendable := make(map[ruleID]bool, len(deltaE))
	for _, mined := range deltaE {
		extendable[mined.id] = mined.extendable
	}
	if m.opts.Reduction && m.opts.Incremental {
		m.applyReductionRules(deltaE, extendable)
	}

	var frontier []*Mined
	for _, mined := range deltaE {
		if !extendable[mined.id] {
			continue
		}
		frontier = append(frontier, mined)
	}
	if err := m.eng.distribute(m, frontier); err != nil {
		return nil, err
	}
	return frontier, nil
}

// applyReductionRules repeatedly applies the two rules of Lemma 3 until no
// more GPARs can be removed from Σ or stopped from extension.
func (m *miner) applyReductionRules(deltaE []*Mined, extendable map[ruleID]bool) {
	fm := m.queue.MinF()
	confW, divW := reductionWeights(m.params)
	for {
		changed := false
		maxU := 0.0
		for _, mined := range deltaE {
			if extendable[mined.id] && m.uconf[mined.id] > maxU {
				maxU = m.uconf[mined.id]
			}
		}
		maxConf := 0.0
		for id := seedID + 1; id <= m.lastID; id++ {
			if mm := m.sigma[id]; mm != nil && mm.Conf > maxConf {
				maxConf = mm.Conf
			}
		}
		// Rule 1: Σ members that can never enter Lk.
		for id := seedID + 1; id <= m.lastID; id++ {
			mm := m.sigma[id]
			if mm == nil || m.queue.Contains(uint32(id)) {
				continue
			}
			if confW*(mm.Conf+maxU)+divW <= fm {
				m.sigma[id] = nil
				m.res.Pruned++
				changed = true
			}
		}
		// Rule 2: ∆E members whose extensions can never enter Lk.
		for _, mined := range deltaE {
			if !extendable[mined.id] {
				continue
			}
			if confW*(m.uconf[mined.id]+maxConf)+divW <= fm {
				extendable[mined.id] = false
				m.res.Pruned++
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// reductionWeights returns (1-λ)/(N(k-1)) and 2λ/(k-1) with the same guards
// as the diversify package.
func reductionWeights(p diversify.Params) (confW, divW float64) {
	n := p.N
	if n <= 0 {
		n = 1
	}
	km1 := float64(p.K - 1)
	if km1 <= 0 {
		km1 = 1
	}
	return (1 - p.Lambda) / (n * km1), 2 * p.Lambda / km1
}

// entriesOf lists ∆E as diversifier entries, in the miner's recycled buffer
// (valid until the next call; fresh under DisableArenas).
func (m *miner) entriesOf(deltaE []*Mined) []diversify.Entry {
	out := m.deltaEntries[:0]
	if m.opts.DisableArenas || out == nil {
		out = make([]diversify.Entry, 0, len(deltaE))
	}
	for _, mm := range deltaE {
		out = append(out, diversify.Entry{ID: uint32(mm.id), Conf: mm.Conf, Set: mm.Set, B: mm.bits})
	}
	m.deltaEntries = out
	return out
}

// sortDedup sorts s ascending and removes duplicates in place.
func sortDedup(s []graph.NodeID) []graph.NodeID {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
