package mine

import (
	"slices"
	"sort"
	"sync"

	"gpar/internal/bisim"
	"gpar/internal/core"
	"gpar/internal/diversify"
	"gpar/internal/graph"
)

// group accumulates the cross-worker evidence of one candidate rule. The
// sets are sorted deduplicated global node IDs, built once at shard-merge
// time — no per-group hash sets.
type group struct {
	key    groupKey
	rule   *core.Rule
	q      []graph.NodeID // Q(x,·) over owned frontier centers
	r      []graph.NodeID // PR(x,·)
	qqb    []graph.NodeID // Q(x,·) ∩ q̄
	usupp  []graph.NodeID // extendable PR matches (Usupp)
	flag   bool
	sum    bisim.Summary // Lemma 4 summary (nil when the prefilter is off)
	bucket bucketID      // interned at the reduce; 0 when prefilter is off
}

// assemble is the coordinator's barrier-synchronization phase (lines 4-7 of
// Fig. 4): merge the fragment messages, group automorphic GPARs (with the
// Lemma 4 bisimulation prefilter when enabled), compute graph-wide supports
// and confidence, filter by σ and triviality, and register survivors in Σ.
//
// Step 1 (structural merge by (parent, extension)) and the bisimulation
// summaries are computed in parallel shards; steps 2-4 run as one
// deterministic sequential reduce over the shard results, re-sorted by
// group key — so the output is byte-identical for any worker count.
func (m *miner) assemble(msgs []message) []*Mined {
	order := m.mergeShards(msgs)
	m.res.Generated += len(order)

	// Step 2: group automorphic GPARs across generation paths and against
	// rules already in Σ, bucketing by bisimulation summary first (Lemma 4).
	buckets := make(map[bucketID][]*group) // this round's representatives
	var uniq []*group
	for _, gr := range order {
		if m.opts.BisimFilter {
			gr.bucket = m.buckets.intern(gr.sum)
		}
		dup := false
		// Against this round's reps. With the prefilter off every group
		// has bucket 0, i.e. one shared bucket, exactly like the legacy
		// "" key.
		cands := buckets[gr.bucket]
		m.res.BisimSkips += m.bisimSkipped(len(uniq), len(cands))
		for _, other := range cands {
			m.res.IsoChecks++
			if gr.rule.Q.IsomorphicTo(other.rule.Q) {
				// Same rule: merge evidence into the representative.
				other.q = unionSorted(other.q, gr.q)
				other.r = unionSorted(other.r, gr.r)
				other.qqb = unionSorted(other.qqb, gr.qqb)
				other.usupp = unionSorted(other.usupp, gr.usupp)
				other.flag = other.flag || gr.flag
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Against Σ (rules discovered in earlier rounds).
		if m.inSigma(gr) {
			continue
		}
		buckets[gr.bucket] = append(buckets[gr.bucket], gr)
		uniq = append(uniq, gr)
	}

	// Step 3: graph-wide stats, σ and triviality filters.
	var deltaE []*Mined
	for _, gr := range uniq {
		stats := core.Stats{
			SuppR:    len(gr.r),
			SuppQ:    len(gr.q),
			SuppQqb:  len(gr.qqb),
			SuppQ1:   m.suppQ1,
			SuppQbar: m.suppQbr,
		}
		if stats.SuppR < m.opts.Sigma {
			continue
		}
		if trivial, _ := stats.Trivial(); trivial {
			// "if an extension leads to supp(Qq̄) = 0, Sc removes R" (§4.2).
			continue
		}
		id := m.newRuleID()
		mined := &Mined{
			Rule:  gr.rule,
			Stats: stats,
			Conf:  stats.Conf(),
			Set:   gr.r,
			id:    id,
			bits:  diversify.MakeBits(gr.r),
		}
		// Uconf+(R) = Σ Usupp_i(R,Fi) · supp(q̄,G) / supp(q,G) (Lemma 3).
		if gr.flag {
			m.uconf[id] = float64(len(gr.usupp)) * float64(m.suppQbr) / float64(m.suppQ1)
		}
		mined.extendable = gr.flag
		mined.qCenters = gr.q
		deltaE = append(deltaE, mined)
		m.registerBucket(gr.bucket, id)
	}

	// Step 4: optional per-round cap, keeping the highest-support rules.
	if limit := m.opts.MaxCandidatesPerRound; limit > 0 && len(deltaE) > limit {
		sort.SliceStable(deltaE, func(i, j int) bool {
			if deltaE[i].Stats.SuppR != deltaE[j].Stats.SuppR {
				return deltaE[i].Stats.SuppR > deltaE[j].Stats.SuppR
			}
			return deltaE[i].id < deltaE[j].id
		})
		deltaE = deltaE[:limit]
	}

	for _, mined := range deltaE {
		m.sigma[mined.id] = mined
	}
	return deltaE
}

// mergeShards is assemble's parallel phase: messages are sharded by group
// key hash, each shard merges its messages by (parent, extension) — the
// same rule produced at different workers, so the sets union directly —
// and summarizes its groups for the Lemma 4 prefilter. The concatenated
// result is sorted by group key, which erases both the shard assignment
// and the shard count from everything downstream.
func (m *miner) mergeShards(msgs []message) []*group {
	if len(msgs) == 0 {
		return nil
	}
	nsh := len(m.workers)
	if nsh > len(msgs) {
		nsh = len(msgs)
	}
	shardMsgs := make([][]int32, nsh)
	for i := range msgs {
		s := int(groupKey{msgs[i].parent, msgs[i].ext}.hash() % uint32(nsh))
		shardMsgs[s] = append(shardMsgs[s], int32(i))
	}
	shardGroups := make([][]*group, nsh)
	var wg sync.WaitGroup
	for s := 0; s < nsh; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			gm := make(map[groupKey]*group)
			var order []*group
			for _, i := range shardMsgs[s] {
				msg := &msgs[i]
				k := groupKey{msg.parent, msg.ext}
				gr := gm[k]
				if gr == nil {
					// Any message's rule serves as the materialization:
					// all of them are parent.Q ⊕ ext, built identically.
					gr = &group{key: k, rule: msg.rule}
					gm[k] = gr
					order = append(order, gr)
				}
				gr.q = append(gr.q, msg.qCenters...)
				gr.r = append(gr.r, msg.rSet...)
				gr.qqb = append(gr.qqb, msg.qqbCenters...)
				gr.usupp = append(gr.usupp, msg.usuppCenters...)
				gr.flag = gr.flag || msg.flag
			}
			for _, gr := range order {
				gr.q = sortDedup(gr.q)
				gr.r = sortDedup(gr.r)
				gr.qqb = sortDedup(gr.qqb)
				gr.usupp = sortDedup(gr.usupp)
				if m.opts.BisimFilter {
					rule := gr.rule
					gr.sum = m.bisims.SummaryOf(rule.Q.Signature(), rule.PR)
				}
			}
			shardGroups[s] = order
		}(s)
	}
	wg.Wait()
	var all []*group
	for _, sg := range shardGroups {
		all = append(all, sg...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key.less(all[j].key) })
	return all
}

// bisimSkipped accounts for the pairwise comparisons the prefilter avoided.
func (m *miner) bisimSkipped(totalReps, bucketReps int) int {
	if !m.opts.BisimFilter {
		return 0
	}
	if totalReps > bucketReps {
		return totalReps - bucketReps
	}
	return 0
}

// inSigma reports whether the candidate duplicates a rule already in Σ
// (discovered in an earlier round via a different growth path).
func (m *miner) inSigma(gr *group) bool {
	if m.opts.BisimFilter {
		for _, id := range m.sigmaBuckets[gr.bucket] {
			old := m.sigma[id]
			if old == nil {
				continue // pruned by the reduction rules
			}
			m.res.IsoChecks++
			if gr.rule.Q.IsomorphicTo(old.Rule.Q) {
				return true
			}
		}
		return false
	}
	for id := seedID + 1; id <= m.lastID; id++ {
		old := m.sigma[id]
		if old == nil {
			continue
		}
		m.res.IsoChecks++
		if gr.rule.Q.IsomorphicTo(old.Rule.Q) {
			return true
		}
	}
	return false
}

// registerBucket records a new Σ member in the bucket index.
func (m *miner) registerBucket(bucket bucketID, id ruleID) {
	if m.sigmaBuckets == nil {
		m.sigmaBuckets = make(map[bucketID][]ruleID)
	}
	m.sigmaBuckets[bucket] = append(m.sigmaBuckets[bucket], id)
}

// diversifyAndFilter is lines 8-11 of Fig. 4: update the top-k structure,
// apply the Lemma 3 reduction rules, pick the rules to extend next round,
// and hand each worker its refreshed center frontier.
func (m *miner) diversifyAndFilter(deltaE []*Mined, round int) []*Mined {
	if m.opts.Incremental {
		m.queue.Update(entriesOf(deltaE), m.allEntries())
	} else {
		// DMineNo recomputes the diversification from scratch every round.
		_ = diversify.Greedy(m.allEntries(), m.params)
	}

	extendable := make(map[ruleID]bool, len(deltaE))
	for _, mined := range deltaE {
		extendable[mined.id] = mined.extendable
	}
	if m.opts.Reduction && m.opts.Incremental {
		m.applyReductionRules(deltaE, extendable)
	}

	var frontier []*Mined
	for _, mined := range deltaE {
		if !extendable[mined.id] {
			continue
		}
		frontier = append(frontier, mined)
	}
	// Hand the frontier's Q-match centers back to the workers.
	m.parallel(func(w *worker) {
		for _, mined := range frontier {
			var locals []graph.NodeID
			for _, gv := range mined.qCenters {
				if lv, ok := w.frag.Local(gv); ok && w.ownsCenter(lv) {
					locals = append(locals, lv)
				}
			}
			w.centersFor[mined.id] = locals
		}
	})
	return frontier
}

// applyReductionRules repeatedly applies the two rules of Lemma 3 until no
// more GPARs can be removed from Σ or stopped from extension.
func (m *miner) applyReductionRules(deltaE []*Mined, extendable map[ruleID]bool) {
	fm := m.queue.MinF()
	confW, divW := reductionWeights(m.params)
	for {
		changed := false
		maxU := 0.0
		for _, mined := range deltaE {
			if extendable[mined.id] && m.uconf[mined.id] > maxU {
				maxU = m.uconf[mined.id]
			}
		}
		maxConf := 0.0
		for id := seedID + 1; id <= m.lastID; id++ {
			if mm := m.sigma[id]; mm != nil && mm.Conf > maxConf {
				maxConf = mm.Conf
			}
		}
		// Rule 1: Σ members that can never enter Lk.
		for id := seedID + 1; id <= m.lastID; id++ {
			mm := m.sigma[id]
			if mm == nil || m.queue.Contains(uint32(id)) {
				continue
			}
			if confW*(mm.Conf+maxU)+divW <= fm {
				m.sigma[id] = nil
				m.res.Pruned++
				changed = true
			}
		}
		// Rule 2: ∆E members whose extensions can never enter Lk.
		for _, mined := range deltaE {
			if !extendable[mined.id] {
				continue
			}
			if confW*(m.uconf[mined.id]+maxConf)+divW <= fm {
				extendable[mined.id] = false
				m.res.Pruned++
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// reductionWeights returns (1-λ)/(N(k-1)) and 2λ/(k-1) with the same guards
// as the diversify package.
func reductionWeights(p diversify.Params) (confW, divW float64) {
	n := p.N
	if n <= 0 {
		n = 1
	}
	km1 := float64(p.K - 1)
	if km1 <= 0 {
		km1 = 1
	}
	return (1 - p.Lambda) / (n * km1), 2 * p.Lambda / km1
}

func entriesOf(deltaE []*Mined) []diversify.Entry {
	out := make([]diversify.Entry, 0, len(deltaE))
	for _, mm := range deltaE {
		out = append(out, diversify.Entry{ID: uint32(mm.id), Conf: mm.Conf, Set: mm.Set, B: mm.bits})
	}
	return out
}

// sortDedup sorts s ascending and removes duplicates in place.
func sortDedup(s []graph.NodeID) []graph.NodeID {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// unionSorted merges two sorted deduplicated slices into a new sorted
// deduplicated slice.
func unionSorted(a, b []graph.NodeID) []graph.NodeID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]graph.NodeID(nil), b...)
	}
	out := make([]graph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
