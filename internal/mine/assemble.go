package mine

import (
	"fmt"
	"sort"

	"gpar/internal/core"
	"gpar/internal/diversify"
	"gpar/internal/graph"
)

// group accumulates the cross-worker evidence of one candidate rule.
type group struct {
	rule   *core.Rule
	q      map[graph.NodeID]bool // Q(x,·) over owned frontier centers
	r      map[graph.NodeID]bool // PR(x,·)
	qqb    map[graph.NodeID]bool // Q(x,·) ∩ q̄
	usupp  map[graph.NodeID]bool // extendable PR matches (Usupp)
	flag   bool
	bucket string // bisimulation bucket (or "" when the prefilter is off)
}

// assemble is the coordinator's barrier-synchronization phase (lines 4-7 of
// Fig. 4): merge the fragment messages, group automorphic GPARs (with the
// Lemma 4 bisimulation prefilter when enabled), compute graph-wide supports
// and confidence, filter by σ and triviality, and register survivors in Σ.
func (m *miner) assemble(msgs []message) []*Mined {
	// Step 1: merge messages by (parent, extension) — those are the same
	// rule produced at different workers, so sets union directly.
	groups := make(map[string]*group)
	var order []string
	for i := range msgs {
		msg := &msgs[i]
		gk := msg.parentKey + "|" + msg.extKey
		gr := groups[gk]
		if gr == nil {
			gr = &group{
				rule:  msg.rule,
				q:     make(map[graph.NodeID]bool),
				r:     make(map[graph.NodeID]bool),
				qqb:   make(map[graph.NodeID]bool),
				usupp: make(map[graph.NodeID]bool),
			}
			groups[gk] = gr
			order = append(order, gk)
		}
		for _, v := range msg.qCenters {
			gr.q[v] = true
		}
		for _, v := range msg.rSet {
			gr.r[v] = true
		}
		for _, v := range msg.qqbCenters {
			gr.qqb[v] = true
		}
		for _, v := range msg.usuppCenters {
			gr.usupp[v] = true
		}
		gr.flag = gr.flag || msg.flag
	}
	m.res.Generated += len(order)

	// Step 2: group automorphic GPARs across generation paths and against
	// rules already in Σ, bucketing by bisimulation summary first (Lemma 4).
	type rep struct {
		gk string // group key of the representative ("" when it lives in Σ)
	}
	buckets := make(map[string][]rep) // this round's representatives
	var uniq []string
	for _, gk := range order {
		gr := groups[gk]
		gr.bucket = m.bucketKey(gr.rule)
		dup := false
		// Against this round's reps.
		cands := buckets[gr.bucket]
		if !m.opts.BisimFilter {
			cands = buckets[""]
		}
		m.res.BisimSkips += m.bisimSkipped(len(uniq), len(cands))
		for _, rp := range cands {
			other := groups[rp.gk]
			m.res.IsoChecks++
			if gr.rule.Q.IsomorphicTo(other.rule.Q) {
				// Same rule: merge evidence into the representative.
				for v := range gr.q {
					other.q[v] = true
				}
				for v := range gr.r {
					other.r[v] = true
				}
				for v := range gr.qqb {
					other.qqb[v] = true
				}
				for v := range gr.usupp {
					other.usupp[v] = true
				}
				other.flag = other.flag || gr.flag
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Against Σ (rules discovered in earlier rounds).
		if m.inSigma(gr) {
			continue
		}
		buckets[gr.bucket] = append(buckets[gr.bucket], rep{gk: gk})
		uniq = append(uniq, gk)
	}

	// Step 3: graph-wide stats, σ and triviality filters.
	var deltaE []*Mined
	for _, gk := range uniq {
		gr := groups[gk]
		stats := core.Stats{
			SuppR:    len(gr.r),
			SuppQ:    len(gr.q),
			SuppQqb:  len(gr.qqb),
			SuppQ1:   m.suppQ1,
			SuppQbar: m.suppQbr,
		}
		if stats.SuppR < m.opts.Sigma {
			continue
		}
		if trivial, _ := stats.Trivial(); trivial {
			// "if an extension leads to supp(Qq̄) = 0, Sc removes R" (§4.2).
			continue
		}
		m.keySeq++
		key := fmt.Sprintf("R%05d", m.keySeq)
		mined := &Mined{
			Rule:  gr.rule,
			Stats: stats,
			Conf:  stats.Conf(),
			Set:   setToSorted(gr.r),
			key:   key,
		}
		// Uconf+(R) = Σ Usupp_i(R,Fi) · supp(q̄,G) / supp(q,G) (Lemma 3).
		m.uconf[key] = float64(len(gr.usupp)) * float64(m.suppQbr) / float64(m.suppQ1)
		if !gr.flag {
			m.uconf[key] = 0
		}
		mined.extendable = gr.flag
		mined.qCenters = setToSorted(gr.q)
		deltaE = append(deltaE, mined)
		m.registerBucket(gr.bucket, mined)
	}

	// Step 4: optional per-round cap, keeping the highest-support rules.
	if limit := m.opts.MaxCandidatesPerRound; limit > 0 && len(deltaE) > limit {
		sort.SliceStable(deltaE, func(i, j int) bool {
			if deltaE[i].Stats.SuppR != deltaE[j].Stats.SuppR {
				return deltaE[i].Stats.SuppR > deltaE[j].Stats.SuppR
			}
			return deltaE[i].key < deltaE[j].key
		})
		deltaE = deltaE[:limit]
	}

	for _, mined := range deltaE {
		m.sigma[mined.key] = mined
	}
	return deltaE
}

// bisimSkipped accounts for the pairwise comparisons the prefilter avoided.
func (m *miner) bisimSkipped(totalReps, bucketReps int) int {
	if !m.opts.BisimFilter {
		return 0
	}
	if totalReps > bucketReps {
		return totalReps - bucketReps
	}
	return 0
}

// inSigma reports whether the candidate duplicates a rule already in Σ
// (discovered in an earlier round via a different growth path).
func (m *miner) inSigma(gr *group) bool {
	keys := m.sigmaBuckets[gr.bucket]
	if !m.opts.BisimFilter {
		keys = m.allSigmaKeys()
	}
	for _, k := range keys {
		old, ok := m.sigma[k]
		if !ok {
			continue // pruned by the reduction rules
		}
		m.res.IsoChecks++
		if gr.rule.Q.IsomorphicTo(old.Rule.Q) {
			return true
		}
	}
	return false
}

func (m *miner) allSigmaKeys() []string {
	keys := make([]string, 0, len(m.sigma))
	for k := range m.sigma {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bucketKey computes the Lemma 4 bucket for a rule's pattern PR.
func (m *miner) bucketKey(r *core.Rule) string {
	if !m.opts.BisimFilter {
		return ""
	}
	sum := m.bisims.Summary(r.Q.Signature(), r.PR())
	return fmt.Sprintf("%x", sum)
}

// registerBucket records a new Σ member in the bucket index.
func (m *miner) registerBucket(bucket string, mined *Mined) {
	if m.sigmaBuckets == nil {
		m.sigmaBuckets = make(map[string][]string)
	}
	m.sigmaBuckets[bucket] = append(m.sigmaBuckets[bucket], mined.key)
}

// diversifyAndFilter is lines 8-11 of Fig. 4: update the top-k structure,
// apply the Lemma 3 reduction rules, pick the rules to extend next round,
// and hand each worker its refreshed center frontier.
func (m *miner) diversifyAndFilter(deltaE []*Mined, round int) []*Mined {
	if m.opts.Incremental {
		m.queue.Update(entriesOf(deltaE), m.allEntries())
	} else {
		// DMineNo recomputes the diversification from scratch every round.
		_ = diversify.Greedy(m.allEntries(), m.params)
	}

	extendable := make(map[string]bool, len(deltaE))
	for _, mined := range deltaE {
		extendable[mined.key] = mined.extendable
	}
	if m.opts.Reduction && m.opts.Incremental {
		m.applyReductionRules(deltaE, extendable)
	}

	var frontier []*Mined
	for _, mined := range deltaE {
		if !extendable[mined.key] {
			continue
		}
		frontier = append(frontier, mined)
	}
	// Hand the frontier's Q-match centers back to the workers.
	m.parallel(func(w *worker) {
		for _, mined := range frontier {
			var locals []graph.NodeID
			for _, gv := range mined.qCenters {
				if lv, ok := w.frag.Local(gv); ok && w.ownsCenter(lv) {
					locals = append(locals, lv)
				}
			}
			w.centersFor[mined.key] = locals
		}
	})
	return frontier
}

// applyReductionRules repeatedly applies the two rules of Lemma 3 until no
// more GPARs can be removed from Σ or stopped from extension.
func (m *miner) applyReductionRules(deltaE []*Mined, extendable map[string]bool) {
	fm := m.queue.MinF()
	confW, divW := reductionWeights(m.params)
	for {
		changed := false
		maxU := 0.0
		for _, mined := range deltaE {
			if extendable[mined.key] && m.uconf[mined.key] > maxU {
				maxU = m.uconf[mined.key]
			}
		}
		maxConf := 0.0
		for _, mm := range m.sigma {
			if mm.Conf > maxConf {
				maxConf = mm.Conf
			}
		}
		// Rule 1: Σ members that can never enter Lk.
		for _, k := range m.allSigmaKeys() {
			mm := m.sigma[k]
			if m.queue.Contains(k) {
				continue
			}
			if confW*(mm.Conf+maxU)+divW <= fm {
				delete(m.sigma, k)
				m.res.Pruned++
				changed = true
			}
		}
		// Rule 2: ∆E members whose extensions can never enter Lk.
		for _, mined := range deltaE {
			if !extendable[mined.key] {
				continue
			}
			if confW*(m.uconf[mined.key]+maxConf)+divW <= fm {
				extendable[mined.key] = false
				m.res.Pruned++
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// reductionWeights returns (1-λ)/(N(k-1)) and 2λ/(k-1) with the same guards
// as the diversify package.
func reductionWeights(p diversify.Params) (confW, divW float64) {
	n := p.N
	if n <= 0 {
		n = 1
	}
	km1 := float64(p.K - 1)
	if km1 <= 0 {
		km1 = 1
	}
	return (1 - p.Lambda) / (n * km1), 2 * p.Lambda / km1
}

func entriesOf(deltaE []*Mined) []diversify.Entry {
	out := make([]diversify.Entry, 0, len(deltaE))
	for _, mm := range deltaE {
		out = append(out, diversify.Entry{ID: mm.key, Conf: mm.Conf, Set: mm.Set})
	}
	return out
}

func setToSorted(s map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
