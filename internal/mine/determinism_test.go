package mine

import (
	"fmt"
	"strings"
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// fingerprint serializes everything a caller can observe about a result —
// rounds, counters, objective, and for every rule its key, stats, conf and
// full match set — so two results compare byte-identically.
func fingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d generated=%d kept=%d pruned=%d F=%.17g\n",
		res.Rounds, res.Generated, res.Kept, res.Pruned, res.F)
	dump := func(name string, ms []Mined) {
		fmt.Fprintf(&b, "%s %d\n", name, len(ms))
		for _, mm := range ms {
			fmt.Fprintf(&b, "  %s stats=%+v conf=%.17g set=%v q=%v ext=%v\n",
				mm.Key(), mm.Stats, mm.Conf, mm.Set, mm.qCenters, mm.extendable)
		}
	}
	dump("topk", res.TopK)
	dump("all", res.All)
	return b.String()
}

// TestDMineDeterministicAcrossWorkerCounts is the safety net for the
// sharded-assembly refactor: on fixed seeds, DMine must return byte-
// identical results — keys, stats, sets, rounds — for any worker count.
// EmbedCap is raised beyond every center's embedding count so this test
// isolates the assembly path; TestEmbedCapDeterministicAcrossWorkerCounts
// covers the truncating case.
func TestDMineDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, wl := range []struct {
		name  string
		users int
		seed  int64
		sigma int
	}{
		{"pokec-300-seed5", 300, 5, 3},
		{"pokec-200-seed9", 200, 9, 2},
	} {
		t.Run(wl.name, func(t *testing.T) {
			syms := graph.NewSymbols()
			g := gen.Pokec(syms, gen.DefaultPokec(wl.users, wl.seed))
			pred := gen.PokecPredicates(syms)[0]
			opts := Options{
				K: 6, Sigma: wl.sigma, D: 2, Lambda: 0.5,
				MaxEdges: 2, EmbedCap: 1 << 20,
			}.WithOptimizations()

			var base string
			for _, n := range []int{1, 2, 3, 8} {
				o := opts
				o.N = n
				got := fingerprint(DMine(g, pred, o))
				if n == 1 {
					base = got
					continue
				}
				if got != base {
					t.Fatalf("N=%d result differs from N=1:\n--- N=1 ---\n%s--- N=%d ---\n%s",
						n, base, n, got)
				}
			}
			// DMineNo must be equally deterministic across worker counts.
			var noBase string
			for _, n := range []int{1, 3} {
				o := opts
				o.N = n
				got := fingerprint(DMineNo(g, pred, o))
				if n == 1 {
					noBase = got
				} else if got != noBase {
					t.Fatalf("DMineNo N=%d result differs from N=1", n)
				}
			}
		})
	}
}

// TestDMineDeterministicAcrossWorkerCountsG1 covers the paper's restaurant
// fixture with the same cross-N contract.
func TestDMineDeterministicAcrossWorkerCountsG1(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opts := baseOpts()
	opts.EmbedCap = 1 << 20
	var base string
	for _, n := range []int{1, 2, 3, 8} {
		o := opts
		o.N = n
		got := fingerprint(DMine(f.G, pred, o))
		if n == 1 {
			base = got
		} else if got != base {
			t.Fatalf("N=%d result differs from N=1:\n%s\nvs\n%s", n, base, got)
		}
	}
}
