package mine

import (
	"sort"

	"gpar/internal/core"
	"gpar/internal/graph"
)

// This file implements the two adaptations of the §4.2 Remark: mining for a
// set of predicates, and mining with no predicate given at all (collect the
// most frequent edge predicates first).

// MultiResult maps each predicate to its mining result.
type MultiResult struct {
	Pred   core.Predicate
	Result *Result
}

// DMineMulti groups the given predicates and iteratively mines GPARs for
// each distinct q(x,y), as the paper's remark prescribes. Duplicate
// predicates are collapsed; results preserve the input order of their first
// occurrence.
//
// Predicates over the same x-label share one mining Context (the candidate
// centers, partition and fragment freeze are built once, not per predicate)
// and one Shared accumulator, so worker scratch, extendability memos and
// interning tables survive across the runs. Results are byte-identical to
// mining each predicate independently with DMine.
//
// A set Options.Ctx cancels the whole job with a *CanceledError: completed
// predicates are discarded along with the in-flight one, so a multi-mine
// either delivers every result or none.
func DMineMulti(g *graph.Graph, preds []core.Predicate, opts Options) ([]MultiResult, error) {
	opts = opts.Defaults()
	seen := make(map[core.Predicate]bool, len(preds))
	shared := make(map[graph.Label]*Shared)
	var out []MultiResult
	for _, p := range preds {
		if seen[p] {
			continue
		}
		seen[p] = true
		sh := shared[p.XLabel]
		if sh == nil {
			sh = NewShared(NewContext(g, p.XLabel, opts))
			shared[p.XLabel] = sh
		}
		res, err := sh.DMine(p, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, MultiResult{Pred: p, Result: res})
	}
	return out, nil
}

// FrequentPredicates collects the topN most frequent edge predicates of g —
// single-edge patterns (xLabel, edgeLabel, yLabel) ranked by the number of
// distinct source nodes, the seed-selection strategy of the paper's second
// remark ("when no specific q(x,y) is given ... most frequent edges").
// An optional edge-label filter restricts to one relation (pass NoLabel for
// all).
func FrequentPredicates(g *graph.Graph, topN int, edgeLabel graph.Label) []core.Predicate {
	type key = core.Predicate
	srcs := make(map[key]map[graph.NodeID]bool)
	for v := 0; v < g.NumNodes(); v++ {
		from := graph.NodeID(v)
		for _, e := range g.Out(from) {
			if edgeLabel != graph.NoLabel && e.Label != edgeLabel {
				continue
			}
			k := key{XLabel: g.Label(from), EdgeLabel: e.Label, YLabel: g.Label(e.To)}
			s := srcs[k]
			if s == nil {
				s = make(map[graph.NodeID]bool)
				srcs[k] = s
			}
			s[from] = true
		}
	}
	type ranked struct {
		p core.Predicate
		n int
	}
	rs := make([]ranked, 0, len(srcs))
	for p, s := range srcs {
		rs = append(rs, ranked{p, len(s)})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].n != rs[j].n {
			return rs[i].n > rs[j].n
		}
		a, b := rs[i].p, rs[j].p
		if a.XLabel != b.XLabel {
			return a.XLabel < b.XLabel
		}
		if a.EdgeLabel != b.EdgeLabel {
			return a.EdgeLabel < b.EdgeLabel
		}
		return a.YLabel < b.YLabel
	})
	if topN > 0 && len(rs) > topN {
		rs = rs[:topN]
	}
	out := make([]core.Predicate, len(rs))
	for i, r := range rs {
		out[i] = r.p
	}
	return out
}

// DMineAuto mines without a user-given predicate: it collects the topN most
// frequent edge predicates and mines GPARs for each.
func DMineAuto(g *graph.Graph, topN int, opts Options) ([]MultiResult, error) {
	return DMineMulti(g, FrequentPredicates(g, topN, graph.NoLabel), opts)
}
