package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"gpar/internal/mine"
	"gpar/internal/netfault"
)

// Worker-written frame indexes on a cold v2 connection under MineFleet
// (which health-probes before the job), for targeting netfault scripts.
// The 5-byte handshake reply travels before frame parsing (SkipBytes).
const (
	frPingEcho = 1 // Ping echo from the health probe
	frFragNeed = 2 // cold fragment cache asks for the body
	frSetupAck = 3 // setup acknowledged
	frRound1   = 4 // first superstep's message reply
)

// chaosFleet brings up n worker services, each behind a netfault listener.
// scriptFor(worker, conn) picks the fault plan for that worker's conn-th
// accepted connection (0-based, counting refused ones); nil passes through.
func chaosFleet(t *testing.T, n int, opts ServerOptions, scriptFor func(worker, conn int) *netfault.Script) ([]string, []*Service) {
	t.Helper()
	addrs := make([]string, n)
	svs := make([]*Service, n)
	for w := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fl := netfault.Wrap(l, func(i int) *netfault.Script { return scriptFor(w, i) })
		t.Cleanup(func() { fl.Close() })
		sv := NewService(opts)
		svs[w] = sv
		go sv.Serve(fl)
		addrs[w] = l.Addr().String()
	}
	return addrs, svs
}

// noSleep is the chaos-test retry policy: real attempt budget, no waiting.
func noSleep(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, Sleep: func(time.Duration) {}}
}

// TestChaosFaultClassesRetriedJobMatchesClean is the per-fault-class
// differential: each injected fault — refused dial, setup stall, mid-round
// disconnect, mid-frame truncation, corrupted length prefix — fails the
// first attempt with a typed error, the retry re-dials and succeeds, and
// the retried job's result is byte-identical to a clean in-process run.
func TestChaosFaultClassesRetriedJobMatchesClean(t *testing.T) {
	g, pred := pokecFixture(200, 11)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)
	want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

	cases := []struct {
		name string
		// script faults worker 0's conn-th connection.
		script    func(conn int) *netfault.Script
		dialFails bool // the fault lands in the dial/probe phase
	}{
		{
			// A refusal closes the connection before any byte — which reads
			// exactly like a legacy v1 peer slamming an unknown hello, so the
			// dialer burns its downgrade redial (conn 1) before the attempt
			// fails. Refusing both exercises the full dial-phase failure.
			name: "refused-dial",
			script: func(conn int) *netfault.Script {
				if conn < 2 {
					return &netfault.Script{RefuseDial: true}
				}
				return nil
			},
			dialFails: true,
		},
		{
			name: "stall-setup",
			script: func(conn int) *netfault.Script {
				if conn == 0 {
					return &netfault.Script{SkipBytes: 5, StallAtFrame: frSetupAck}
				}
				return nil
			},
		},
		{
			name: "disconnect-mid-round",
			script: func(conn int) *netfault.Script {
				if conn == 0 {
					return &netfault.Script{SkipBytes: 5, CloseAtFrame: frRound1}
				}
				return nil
			},
		},
		{
			name: "truncate-mid-frame",
			script: func(conn int) *netfault.Script {
				if conn == 0 {
					return &netfault.Script{SkipBytes: 5, TruncateAtFrame: frSetupAck}
				}
				return nil
			},
		},
		{
			name: "corrupt-length",
			script: func(conn int) *netfault.Script {
				if conn == 0 {
					return &netfault.Script{SkipBytes: 5, CorruptAtFrame: frRound1}
				}
				return nil
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs, _ := chaosFleet(t, 2, ServerOptions{}, func(worker, conn int) *netfault.Script {
				if worker == 0 {
					return tc.script(conn)
				}
				return nil
			})
			start := time.Now()
			res, rep, err := MineFleet(ctx, pred, o, addrs,
				DialOptions{StepTimeout: time.Second}, noSleep(3), nil)
			if err != nil {
				t.Fatalf("retried job failed: %v (report %+v)", err, rep)
			}
			if rep.Attempts != 2 {
				t.Fatalf("attempts = %d, want 2 (one faulted, one clean)", rep.Attempts)
			}
			if tc.dialFails && rep.DialFailures != 1 {
				t.Fatalf("dial failures = %d, want 1 (report %+v)", rep.DialFailures, rep)
			}
			if !tc.dialFails && rep.WorkerFailures != 1 {
				t.Fatalf("worker failures = %d, want 1 (report %+v)", rep.WorkerFailures, rep)
			}
			if got := fingerprint(res); got != want {
				t.Fatalf("retried result differs from clean run:\n--- clean ---\n%s--- retried ---\n%s", want, got)
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("chaos retry took %v", elapsed)
			}
		})
	}
}

// TestChaosRetriedByteIdentityAcrossWorkerCounts pins retried-vs-clean byte
// identity for every acceptance worker count: for each N the last worker's
// first connection dies mid-round, the retry succeeds, and the result
// matches the single-process run exactly.
func TestChaosRetriedByteIdentityAcrossWorkerCounts(t *testing.T) {
	g, pred := pokecFixture(200, 5)
	base := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations()

	for _, n := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			o := base
			o.N = n
			o = o.Defaults()
			ctx := mine.NewContext(g, pred.XLabel, o)
			want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

			addrs, _ := chaosFleet(t, n, ServerOptions{}, func(worker, conn int) *netfault.Script {
				if worker == n-1 && conn == 0 {
					return &netfault.Script{SkipBytes: 5, CloseAtFrame: frRound1}
				}
				return nil
			})
			res, rep, err := MineFleet(ctx, pred, o, addrs,
				DialOptions{StepTimeout: time.Second}, noSleep(3), nil)
			if err != nil {
				t.Fatalf("retried job failed: %v (report %+v)", err, rep)
			}
			if rep.Attempts != 2 || rep.WorkerFailures != 1 {
				t.Fatalf("report %+v, want exactly one failed attempt", rep)
			}
			if got := fingerprint(res); got != want {
				t.Fatalf("n=%d retried result differs from clean run", n)
			}
		})
	}
}

// TestChaosExhaustedRetriesTypedError: when every attempt fails (all
// connections stall right after the health probe), MineFleet returns the
// typed mid-job error after exactly the policy's attempt budget, bounded in
// time by the step deadline — no hang.
func TestChaosExhaustedRetriesTypedError(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)

	addrs, _ := chaosFleet(t, 2, ServerOptions{}, func(worker, conn int) *netfault.Script {
		return &netfault.Script{SkipBytes: 5, StallAtFrame: frFragNeed}
	})
	start := time.Now()
	res, rep, err := MineFleet(ctx, pred, o, addrs,
		DialOptions{StepTimeout: 300 * time.Millisecond}, noSleep(2), nil)
	elapsed := time.Since(start)
	if res != nil {
		t.Fatal("exhausted retries returned a result")
	}
	var we *mine.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error %T (%v), want *mine.WorkerError", err, err)
	}
	if rep.Attempts != 2 || rep.WorkerFailures != 2 {
		t.Fatalf("report %+v, want 2 attempts, 2 worker failures", rep)
	}
	if elapsed > 15*time.Second {
		t.Fatalf("exhausted retries took %v", elapsed)
	}
}

// TestChaosAllDialsRefusedFleetUnavailable: a fleet that refuses every
// connection exhausts the dial phase with ErrFleetUnavailable and counts
// every attempt as a dial failure.
func TestChaosAllDialsRefusedFleetUnavailable(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)

	addrs, _ := chaosFleet(t, 2, ServerOptions{}, func(worker, conn int) *netfault.Script {
		return &netfault.Script{RefuseDial: true}
	})
	res, rep, err := MineFleet(ctx, pred, o, addrs,
		DialOptions{StepTimeout: time.Second, DialTimeout: time.Second}, noSleep(2), nil)
	if res != nil {
		t.Fatal("refused fleet returned a result")
	}
	if !errors.Is(err, ErrFleetUnavailable) {
		t.Fatalf("error %v, want ErrFleetUnavailable", err)
	}
	if rep.Attempts != 2 || rep.DialFailures != 2 {
		t.Fatalf("report %+v, want 2 attempts, 2 dial failures", rep)
	}
}

// TestChaosStopAbandonsRetries: the stop hook (a draining server) ends the
// retry loop before the second attempt, returning the first attempt's error
// without sleeping out the backoff.
func TestChaosStopAbandonsRetries(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 1,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)

	addrs, _ := chaosFleet(t, 1, ServerOptions{}, func(worker, conn int) *netfault.Script {
		return &netfault.Script{RefuseDial: true}
	})
	res, rep, err := MineFleet(ctx, pred, o, addrs,
		DialOptions{StepTimeout: time.Second, DialTimeout: time.Second},
		RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { t.Fatal("slept despite stop") }},
		func() bool { return true })
	if res != nil || err == nil {
		t.Fatal("abandoned job returned a result")
	}
	if rep.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (stop before the first retry)", rep.Attempts)
	}
}

// TestChaosCancelAgainstStalledWorker is the cancellation liveness pin: a
// coordinator-side cancel fired while a worker is stalled mid-superstep
// (its round reply never arrives, and the step deadline is a full minute
// away) must unwedge the blocked exchange immediately, return a typed
// *mine.CanceledError without retrying, and leak no goroutines. Both the
// v3 path (idle peers get a Cancel frame) and a v2-capped fleet (deadline
// slam only) must behave identically from the coordinator's side. CI runs
// this under -race.
func TestChaosCancelAgainstStalledWorker(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	mctx := mine.NewContext(g, pred.XLabel, o)

	for _, tc := range []struct {
		name       string
		maxVersion int // server-side protocol cap; 0 = current
	}{
		{"v3-cancel-frame", 0},
		{"v2-deadline-only", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addrs, _ := chaosFleet(t, 2, ServerOptions{MaxVersion: tc.maxVersion},
				func(worker, conn int) *netfault.Script {
					if worker == 0 {
						return &netfault.Script{SkipBytes: 5, StallAtFrame: frRound1}
					}
					return nil
				})
			before := runtime.NumGoroutine()
			runCtx, cancel := context.WithCancel(context.Background())
			defer cancel()
			co := o
			co.Ctx = runCtx
			timer := time.AfterFunc(150*time.Millisecond, cancel)
			defer timer.Stop()

			type outcome struct {
				res *mine.Result
				rep JobReport
				err error
			}
			done := make(chan outcome, 1)
			start := time.Now()
			go func() {
				res, rep, err := MineFleet(mctx, pred, co, addrs,
					DialOptions{StepTimeout: time.Minute}, noSleep(3), nil)
				done <- outcome{res, rep, err}
			}()
			var out outcome
			select {
			case out = <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("cancel against a stalled worker hung past the watchdog")
			}
			if out.res != nil {
				t.Fatal("canceled job returned a result")
			}
			var ce *mine.CanceledError
			if !errors.As(out.err, &ce) {
				t.Fatalf("error %T (%v), want *mine.CanceledError", out.err, out.err)
			}
			if !errors.Is(out.err, context.Canceled) {
				t.Fatalf("error %v does not unwrap to context.Canceled", out.err)
			}
			if out.rep.Attempts != 1 {
				t.Fatalf("attempts = %d, want 1 (a canceled job must not retry)", out.rep.Attempts)
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("cancel took %v; the one-minute step deadline must not be what fired", elapsed)
			}
			// Leak check: everything MineFleet spawned (dials, watcher, the
			// stalled exchange) must wind down once the fleet is closed. The
			// worker services' accept loops predate `before`, so the count
			// settles back to it; allow brief scheduler noise.
			settleBy := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before+2 {
				if time.Now().After(settleBy) {
					t.Fatalf("goroutine leak after cancel: %d before, %d after", before, runtime.NumGoroutine())
				}
				time.Sleep(50 * time.Millisecond)
			}
		})
	}
}

// TestChaosPreCanceledJobNeverDials: a run context that is already dead
// ends MineFleet before any attempt touches the network.
func TestChaosPreCanceledJobNeverDials(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 1,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	mctx := mine.NewContext(g, pred.XLabel, o)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	o.Ctx = dead
	// No listener behind this address: a dial attempt would fail loudly
	// rather than hang, but the point is it must not happen at all.
	res, _, err := MineFleet(mctx, pred, o, []string{"127.0.0.1:1"},
		DialOptions{DialTimeout: time.Second}, noSleep(3), nil)
	if res != nil {
		t.Fatal("pre-canceled job returned a result")
	}
	var ce *mine.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *mine.CanceledError", err, err)
	}
}

// TestChaosFragmentShipsOncePerWorker: repeat jobs over re-dialed
// connections ship each worker's fragment exactly once — the first job
// pays one FragShip per worker, every later job (and every retry) is all
// cache hits, visible on both the coordinator's JobReport and the worker
// services' own stats.
func TestChaosFragmentShipsOncePerWorker(t *testing.T) {
	g, pred := pokecFixture(200, 11)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)
	want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

	addrs, svs := chaosFleet(t, 2, ServerOptions{}, func(worker, conn int) *netfault.Script {
		return nil
	})
	policy := noSleep(2)
	dopts := DialOptions{StepTimeout: 30 * time.Second}

	res, rep, err := MineFleet(ctx, pred, o, addrs, dopts, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FragShips != 2 || rep.FragHits != 0 {
		t.Fatalf("first job report %+v, want 2 ships, 0 hits", rep)
	}
	if got := fingerprint(res); got != want {
		t.Fatal("first job result differs from clean run")
	}

	// Same context, fresh connections: the fragment must not travel again.
	for i := 0; i < 2; i++ {
		res, rep, err = MineFleet(ctx, pred, o, addrs, dopts, policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FragShips != 0 || rep.FragHits != 2 {
			t.Fatalf("repeat job %d report %+v, want 0 ships, 2 hits", i, rep)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("repeat job %d result differs", i)
		}
	}
	for w, sv := range svs {
		st := sv.Stats()
		if st.FragCache.Misses != 1 || st.FragCache.Hits != 2 || st.FragCache.Entries != 1 {
			t.Fatalf("worker %d cache stats %+v, want 1 miss, 2 hits, 1 entry", w, st.FragCache)
		}
		if st.Jobs != 3 {
			t.Fatalf("worker %d served %d jobs, want 3", w, st.Jobs)
		}
	}
}

// TestChaosRetryWarmCacheSkipsShip: a job whose first attempt dies AFTER
// the fragment landed retries against a warm cache — the fragment travels
// once even though the job ran twice.
func TestChaosRetryWarmCacheSkipsShip(t *testing.T) {
	g, pred := pokecFixture(200, 11)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)

	addrs, svs := chaosFleet(t, 2, ServerOptions{}, func(worker, conn int) *netfault.Script {
		if worker == 0 && conn == 0 {
			// The fragment arrives during setup (before SetupAck); dying on
			// the first round reply leaves the cache warm.
			return &netfault.Script{SkipBytes: 5, CloseAtFrame: frRound1}
		}
		return nil
	})
	res, rep, err := MineFleet(ctx, pred, o, addrs,
		DialOptions{StepTimeout: time.Second}, noSleep(3), nil)
	if err != nil || res == nil {
		t.Fatalf("retried job failed: %v", err)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rep.Attempts)
	}
	// The winning attempt hit both caches: worker 0's was warmed by the
	// failed attempt, worker 1's by its own completed setup.
	if rep.FragShips != 0 || rep.FragHits != 2 {
		t.Fatalf("winning attempt report %+v, want 0 ships, 2 hits", rep)
	}
	for w, sv := range svs {
		if st := sv.Stats(); st.FragCache.Misses != 1 {
			t.Fatalf("worker %d shipped the fragment %d times, want once", w, st.FragCache.Misses)
		}
	}
}
