package remote

import (
	"sync"

	"gpar/internal/partition"
)

// fragCache is the worker-side content-addressed fragment cache: decoded,
// frozen fragments keyed by the SHA-256 of their binary encoding,
// LRU-evicted at a small entry cap. It is process-wide (owned by the
// Service, not a connection), so a coordinator that re-dials after a
// failure — or a fresh job over the same graph — skips the fragment ship
// and the decode+freeze. Cached fragments are read-only and may back
// concurrent jobs.
type fragCache struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*partition.Fragment
	order []string // LRU order, oldest first

	hits, misses, evictions int64
}

// FragCacheStats is a point-in-time snapshot of the cache counters.
type FragCacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func newFragCache(cap int) *fragCache {
	if cap < 0 {
		cap = 0
	}
	return &fragCache{cap: cap, byKey: make(map[string]*partition.Fragment)}
}

// get looks a fragment up by content hash, counting a hit or a miss.
func (fc *fragCache) get(hash []byte) (*partition.Fragment, bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	f, ok := fc.byKey[string(hash)]
	if !ok {
		fc.misses++
		return nil, false
	}
	fc.hits++
	fc.touch(string(hash))
	return f, true
}

// put inserts a decoded fragment, evicting the least recently used entry
// beyond the cap. The caller has verified hash against the fragment bytes.
func (fc *fragCache) put(hash []byte, f *partition.Fragment) {
	if fc.cap == 0 {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	key := string(hash)
	if _, ok := fc.byKey[key]; ok {
		fc.touch(key)
		return
	}
	fc.byKey[key] = f
	fc.order = append(fc.order, key)
	for len(fc.byKey) > fc.cap {
		oldest := fc.order[0]
		fc.order = fc.order[1:]
		delete(fc.byKey, oldest)
		fc.evictions++
	}
}

// touch moves key to the most-recent end; callers hold mu.
func (fc *fragCache) touch(key string) {
	for i, k := range fc.order {
		if k == key {
			copy(fc.order[i:], fc.order[i+1:])
			fc.order[len(fc.order)-1] = key
			return
		}
	}
}

func (fc *fragCache) stats() FragCacheStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return FragCacheStats{
		Entries:   len(fc.byKey),
		Hits:      fc.hits,
		Misses:    fc.misses,
		Evictions: fc.evictions,
	}
}
