package remote

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gpar/internal/mine"
	"gpar/internal/mine/wire"
)

// strictV1Conn emulates a legacy v1 worker's handshake behavior in front of
// a real service: a hello proposing anything newer than v1 is answered the
// way old binaries answer it — the connection is slammed shut before any
// reply. A v1 hello passes through untouched.
type strictV1Conn struct {
	net.Conn
	mu      sync.Mutex
	checked bool
	buf     []byte
}

func (c *strictV1Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.checked {
		hello := make([]byte, 5)
		if _, err := io.ReadFull(c.Conn, hello); err != nil {
			return 0, err
		}
		if hello[4] != 1 {
			c.Conn.Close()
			return 0, io.EOF
		}
		c.checked = true
		c.buf = hello
	}
	if len(c.buf) > 0 {
		n := copy(p, c.buf)
		c.buf = c.buf[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

type strictV1Listener struct{ net.Listener }

func (l strictV1Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &strictV1Conn{Conn: c}, nil
}

// compatJob runs one fleet job against addr (plus a plain v2 worker when
// n == 2) and returns the negotiated versions and the result fingerprint.
func compatMine(t *testing.T, addrs []string) ([]int, string) {
	t.Helper()
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: len(addrs),
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)
	want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)
	versions := make([]int, len(conns))
	for i, c := range conns {
		versions[i] = c.Version()
		if err := c.Ping(); err != nil {
			t.Fatalf("ping worker %d (v%d): %v", i, c.Version(), err)
		}
	}
	res, err := Mine(ctx, pred, o, conns)
	if err != nil {
		t.Fatal(err)
	}
	got := fingerprint(res)
	if got != want {
		t.Fatal("compat job result differs from clean in-process run")
	}
	return versions, got
}

// TestCompatLegacySlamDowngrade: a legacy worker that slams modern hellos
// still interoperates — the dialer redials proposing v1, the job runs the
// inline-fragment v1 path, and the result matches, even mixed with a
// current-version worker in the same fleet.
func TestCompatLegacySlamDowngrade(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	go NewService(ServerOptions{}).Serve(strictV1Listener{inner})
	legacy := inner.Addr().String()
	modern := startWorkers(t, 1, ServerOptions{})[0]

	versions, _ := compatMine(t, []string{legacy, modern})
	if versions[0] != 1 || versions[1] != wire.Version {
		t.Fatalf("negotiated versions = %v, want [1 %d]", versions, wire.Version)
	}
}

// TestCompatV1CappedService: a worker capped at protocol v1
// (ServerOptions.MaxVersion) negotiates v1 with a modern dialer in one
// round trip — no slam, no redial — and serves the inline-fragment path.
func TestCompatV1CappedService(t *testing.T) {
	addrs := startWorkers(t, 2, ServerOptions{MaxVersion: 1})
	versions, _ := compatMine(t, addrs)
	for i, v := range versions {
		if v != 1 {
			t.Fatalf("worker %d negotiated v%d, want 1", i, v)
		}
	}
}

// TestCompatV1CappedDialer: a coordinator capped at v1 (DialOptions.
// MaxVersion) against modern workers negotiates v1 and never uses the
// fragment-cache frames.
func TestCompatV1CappedDialer(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)
	want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

	addrs := startWorkers(t, 2, ServerOptions{})
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 30 * time.Second, MaxVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)
	for i, c := range conns {
		if c.Version() != 1 {
			t.Fatalf("worker %d negotiated v%d, want 1", i, c.Version())
		}
	}
	res, err := Mine(ctx, pred, o, conns)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(res) != want {
		t.Fatal("v1-capped job result differs from clean run")
	}
	for i, c := range conns {
		if hits, ships := c.FragStats(); hits != 0 || ships != 0 {
			t.Fatalf("v1 conn %d recorded fragment-cache traffic: hits=%d ships=%d", i, hits, ships)
		}
	}
}

// TestSlowlorisHandshakeDropped: a client that connects and never speaks is
// dropped within the handshake timeout even when IdleTimeout is 0 — it
// cannot pin a worker goroutine.
func TestSlowlorisHandshakeDropped(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	sv := NewService(ServerOptions{IdleTimeout: 0, HandshakeTimeout: 100 * time.Millisecond})
	go sv.Serve(l)

	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Write nothing. The service must close the connection on its own.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent connection received bytes")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("service never dropped the silent connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("silent connection lingered %v past the handshake timeout", elapsed)
	}
	if got := sv.Stats().ActiveConns; got != 0 {
		t.Fatalf("activeConns = %d after drop, want 0", got)
	}
}
