package remote

import (
	"bytes"
	"net"
	"sync/atomic"
	"time"

	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/mine/wire"
	"gpar/internal/partition"
)

// ServerOptions tunes a worker service. The zero value means defaults.
type ServerOptions struct {
	// MaxFrame bounds accepted frame sizes (default wire.DefaultMaxFrame).
	MaxFrame int
	// IdleTimeout, when positive, bounds how long a connection may sit
	// without traffic — between jobs or mid-job — before the worker drops
	// it, so a dead coordinator cannot pin worker state forever. 0 means
	// no deadline.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may take to
	// complete the protocol handshake, even when IdleTimeout is 0 — a
	// client that connects and never speaks cannot pin a goroutine
	// (slowloris). Default 10s; negative disables.
	HandshakeTimeout time.Duration
	// MaxVersion caps the negotiated protocol version (0 or out of range
	// means wire.Version). Capping at 1 yields a pure v1 worker.
	MaxVersion int
	// FragCacheCap bounds the content-addressed fragment cache in entries
	// (decoded, frozen fragments keyed by the SHA-256 of their binary
	// encoding, LRU-evicted). 0 means the default (8); negative disables
	// caching.
	FragCacheCap int
	// Logf, when non-nil, receives one line per connection-level event
	// (accepted, job started, failed, closed).
	Logf func(format string, args ...any)
}

func (o ServerOptions) defaults() ServerOptions {
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.MaxVersion < wire.MinVersion || o.MaxVersion > wire.Version {
		o.MaxVersion = wire.Version
	}
	if o.FragCacheCap == 0 {
		o.FragCacheCap = 8
	}
	return o
}

func (o *ServerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Service is one worker process's shared state: the options, the
// content-addressed fragment cache that survives across connections (so a
// coordinator that re-dials after a failure, or a new job over the same
// graph, skips the fragment ship), and the counters behind Stats.
type Service struct {
	opts  ServerOptions
	frags *fragCache

	conns       atomic.Int64 // accepted, lifetime
	activeConns atomic.Int64
	jobs        atomic.Int64
	pings       atomic.Int64
	cancels     atomic.Int64 // jobs dropped by a coordinator Cancel frame
}

// NewService builds a worker service.
func NewService(opts ServerOptions) *Service {
	opts = opts.defaults()
	return &Service{opts: opts, frags: newFragCache(opts.FragCacheCap)}
}

// ServiceStats is a point-in-time snapshot of a worker's counters.
type ServiceStats struct {
	ActiveConns int64          `json:"activeConns"`
	TotalConns  int64          `json:"totalConns"`
	Jobs        int64          `json:"jobs"`
	Pings       int64          `json:"pings"`
	Cancels     int64          `json:"cancels"`
	FragCache   FragCacheStats `json:"fragCache"`
}

// Stats snapshots the service counters.
func (sv *Service) Stats() ServiceStats {
	return ServiceStats{
		ActiveConns: sv.activeConns.Load(),
		TotalConns:  sv.conns.Load(),
		Jobs:        sv.jobs.Load(),
		Pings:       sv.pings.Load(),
		Cancels:     sv.cancels.Load(),
		FragCache:   sv.frags.stats(),
	}
}

// Serve accepts coordinator connections on l and hosts mining jobs until
// the listener closes (the Accept error is returned). Each connection runs
// its own goroutine and serves jobs sequentially: JobSetup → Rounds →
// Finish, repeated. Any job-level failure is reported in an Error frame and
// the connection is closed — a broken job never limps along.
func (sv *Service) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go sv.serveConn(conn)
	}
}

// Serve runs a one-off service over l (see Service.Serve).
func Serve(l net.Listener, opts ServerOptions) error {
	return NewService(opts).Serve(l)
}

// serveConn is one coordinator connection's lifetime.
func (sv *Service) serveConn(conn net.Conn) {
	defer conn.Close()
	opts := &sv.opts
	peer := conn.RemoteAddr()
	opts.logf("remote: %v connected", peer)
	sv.conns.Add(1)
	sv.activeConns.Add(1)

	var rt *mine.WorkerRuntime
	defer func() {
		if rt != nil {
			rt.Close()
		}
		sv.activeConns.Add(-1)
		opts.logf("remote: %v closed", peer)
	}()

	deadline := func() bool {
		var t time.Time
		if opts.IdleTimeout > 0 {
			t = time.Now().Add(opts.IdleTimeout)
		}
		return conn.SetDeadline(t) == nil
	}
	// The coordinator (dialer) proposes first; reply with min(proposal,
	// ours). The handshake always runs under a deadline — even with no idle
	// timeout, a silent client cannot pin this goroutine.
	hsDeadline := opts.HandshakeTimeout
	if hsDeadline < 0 {
		hsDeadline = 0
	}
	if opts.IdleTimeout > 0 && (hsDeadline == 0 || opts.IdleTimeout < hsDeadline) {
		hsDeadline = opts.IdleTimeout
	}
	var hsAt time.Time
	if hsDeadline > 0 {
		hsAt = time.Now().Add(hsDeadline)
	}
	if conn.SetDeadline(hsAt) != nil {
		return
	}
	negotiated, err := wire.AnswerHandshake(conn, byte(opts.MaxVersion))
	if err != nil {
		opts.logf("remote: %v: %v", peer, err)
		return
	}
	version := int(negotiated)

	fail := func(err error) {
		opts.logf("remote: %v: %v", peer, err)
		ef := wire.ErrorFrame{Msg: err.Error()}
		_ = wire.WriteFrame(conn, wire.TypeError, ef.Append(nil))
	}

	var buf, enc []byte
	for {
		if !deadline() {
			return
		}
		typ, payload, newBuf, err := wire.ReadFrame(conn, buf, opts.MaxFrame)
		if err != nil {
			return // peer gone or protocol breakdown; nothing to answer
		}
		buf = newBuf
		switch typ {
		case wire.TypePing:
			if version < 2 || rt != nil {
				fail(protocolErr("unexpected ping"))
				return
			}
			sv.pings.Add(1)
			if wire.WriteFrame(conn, wire.TypePing, nil) != nil {
				return
			}
		case wire.TypeJobSetup:
			if rt != nil {
				fail(protocolErr("job setup while a job is active"))
				return
			}
			setup, err := wire.DecodeJobSetupV(payload, version)
			if err != nil {
				fail(err)
				return
			}
			frag, err := sv.resolveFragment(conn, version, setup, deadline, &buf, &enc)
			if err != nil {
				fail(err)
				return
			}
			newRT, ack, err := mine.NewWorkerRuntimeFragment(setup, frag)
			if err != nil {
				fail(err)
				return
			}
			rt = newRT
			sv.jobs.Add(1)
			opts.logf("remote: %v: job %d as worker %d", peer, setup.JobID, setup.Worker)
			enc = ack.Append(enc[:0])
			if wire.WriteFrame(conn, wire.TypeSetupAck, enc) != nil {
				return
			}
		case wire.TypeRound:
			if rt == nil {
				fail(protocolErr("round frame outside a job"))
				return
			}
			rd, err := wire.DecodeRound(payload)
			if err != nil {
				fail(err)
				return
			}
			ms, err := rt.Round(rd)
			if err != nil {
				fail(err)
				return
			}
			// Encode before the next frame read: the reply aliases
			// runtime-owned storage the next Round overwrites.
			enc = ms.Append(enc[:0])
			if wire.WriteFrame(conn, wire.TypeMessages, enc) != nil {
				return
			}
		case wire.TypeFinish:
			if rt != nil {
				rt.Close()
				rt = nil
			}
			if wire.WriteFrame(conn, wire.TypeFinish, nil) != nil {
				return
			}
		case wire.TypeCancel:
			// v3+: the coordinator abandoned the job. Drop the runtime (its
			// arenas return to the pool) and answer nothing — the coordinator
			// has already stopped listening for this job; the connection stays
			// up for the next JobSetup. Legal between jobs too (a cancel can
			// race a job's natural end).
			if version < 3 {
				fail(protocolErr("cancel frame on a pre-v3 connection"))
				return
			}
			if rt != nil {
				rt.Close()
				rt = nil
				sv.cancels.Add(1)
				opts.logf("remote: %v: job canceled by coordinator", peer)
			}
		default:
			fail(protocolErr("unexpected frame type"))
			return
		}
	}
}

// resolveFragment turns a job setup into a decoded, frozen fragment: from
// the inline body when the setup carries one, from the content-addressed
// cache when it carries only a hash, or — on a cache miss — by asking the
// coordinator for the body with a FragNeed/FragHave exchange. Every path
// that decodes a body also caches it, so a v1 coordinator's repeat jobs
// still skip the decode+freeze.
func (sv *Service) resolveFragment(conn net.Conn, version int, setup *wire.JobSetup, deadline func() bool, buf, enc *[]byte) (*partition.Fragment, error) {
	hash := setup.FragHash
	if len(setup.Fragment) > 0 {
		if len(hash) == 0 {
			hash = wire.HashFragment(setup.Fragment)
		} else if !bytes.Equal(hash, wire.HashFragment(setup.Fragment)) {
			return nil, protocolErr("setup fragment does not match its content hash")
		}
		if frag, ok := sv.frags.get(hash); ok {
			return frag, nil
		}
		return sv.decodeAndCache(setup, hash, setup.Fragment)
	}
	if len(hash) == 0 {
		return nil, protocolErr("setup carries neither fragment nor content hash")
	}
	if frag, ok := sv.frags.get(hash); ok {
		return frag, nil
	}
	if version < 2 {
		return nil, protocolErr("hash-only setup on a v1 connection")
	}
	need := wire.FragNeed{Hash: hash}
	*enc = need.Append((*enc)[:0])
	if err := wire.WriteFrame(conn, wire.TypeFragNeed, *enc); err != nil {
		return nil, err
	}
	if !deadline() {
		return nil, protocolErr("setting fragment exchange deadline")
	}
	typ, payload, newBuf, err := wire.ReadFrame(conn, *buf, sv.opts.MaxFrame)
	*buf = newBuf
	if err != nil {
		return nil, err
	}
	if typ != wire.TypeFragHave {
		return nil, protocolErr("expected fragment body after cache miss")
	}
	have, err := wire.DecodeFragHave(payload)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(have.Hash, hash) {
		return nil, protocolErr("fragment body for the wrong hash")
	}
	if !bytes.Equal(wire.HashFragment(have.Fragment), hash) {
		return nil, protocolErr("fragment body does not match its content hash")
	}
	return sv.decodeAndCache(setup, hash, have.Fragment)
}

// decodeAndCache decodes one fragment body and inserts it into the cache.
// The decode interns the job's symbol table, but the fragment itself is
// symbol-independent (labels are raw IDs), so reuse across jobs with grown
// symbol tables is sound.
func (sv *Service) decodeAndCache(setup *wire.JobSetup, hash, body []byte) (*partition.Fragment, error) {
	syms := graph.NewSymbols()
	for _, name := range setup.Symbols {
		syms.Intern(name)
	}
	frag, rest, err := partition.DecodeFragment(body, syms)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, protocolErr("trailing bytes after fragment body")
	}
	sv.frags.put(hash, frag)
	return frag, nil
}

// protocolErr builds the worker-side protocol violation error.
func protocolErr(msg string) error { return &wire.FrameError{Msg: msg} }
