package remote

import (
	"net"
	"time"

	"gpar/internal/mine"
	"gpar/internal/mine/wire"
)

// ServerOptions tunes a worker service. The zero value means defaults.
type ServerOptions struct {
	// MaxFrame bounds accepted frame sizes (default wire.DefaultMaxFrame).
	MaxFrame int
	// IdleTimeout, when positive, bounds how long a connection may sit
	// without traffic — between jobs or mid-job — before the worker drops
	// it, so a dead coordinator cannot pin worker state forever. 0 means
	// no deadline.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives one line per connection-level event
	// (accepted, job started, failed, closed).
	Logf func(format string, args ...any)
}

func (o ServerOptions) defaults() ServerOptions {
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	return o
}

func (o *ServerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on l and hosts mining jobs until
// the listener closes (the Accept error is returned). Each connection runs
// its own goroutine and serves jobs sequentially: JobSetup → Rounds →
// Finish, repeated. Any job-level failure is reported in an Error frame and
// the connection is closed — a broken job never limps along.
func Serve(l net.Listener, opts ServerOptions) error {
	opts = opts.defaults()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, &opts)
	}
}

// serveConn is one coordinator connection's lifetime.
func serveConn(conn net.Conn, opts *ServerOptions) {
	defer conn.Close()
	peer := conn.RemoteAddr()
	opts.logf("remote: %v connected", peer)

	var rt *mine.WorkerRuntime
	defer func() {
		if rt != nil {
			rt.Close()
		}
		opts.logf("remote: %v closed", peer)
	}()

	deadline := func() bool {
		var t time.Time
		if opts.IdleTimeout > 0 {
			t = time.Now().Add(opts.IdleTimeout)
		}
		return conn.SetDeadline(t) == nil
	}
	// The coordinator (dialer) speaks first; both directions are validated.
	if !deadline() || wire.ReadHandshake(conn) != nil || wire.WriteHandshake(conn) != nil {
		return
	}

	fail := func(err error) {
		opts.logf("remote: %v: %v", peer, err)
		ef := wire.ErrorFrame{Msg: err.Error()}
		_ = wire.WriteFrame(conn, wire.TypeError, ef.Append(nil))
	}

	var buf, enc []byte
	for {
		if !deadline() {
			return
		}
		typ, payload, newBuf, err := wire.ReadFrame(conn, buf, opts.MaxFrame)
		if err != nil {
			return // peer gone or protocol breakdown; nothing to answer
		}
		buf = newBuf
		switch typ {
		case wire.TypeJobSetup:
			if rt != nil {
				fail(protocolErr("job setup while a job is active"))
				return
			}
			setup, err := wire.DecodeJobSetup(payload)
			if err != nil {
				fail(err)
				return
			}
			newRT, ack, err := mine.NewWorkerRuntime(setup)
			if err != nil {
				fail(err)
				return
			}
			rt = newRT
			opts.logf("remote: %v: job %d as worker %d", peer, setup.JobID, setup.Worker)
			enc = ack.Append(enc[:0])
			if wire.WriteFrame(conn, wire.TypeSetupAck, enc) != nil {
				return
			}
		case wire.TypeRound:
			if rt == nil {
				fail(protocolErr("round frame outside a job"))
				return
			}
			rd, err := wire.DecodeRound(payload)
			if err != nil {
				fail(err)
				return
			}
			ms, err := rt.Round(rd)
			if err != nil {
				fail(err)
				return
			}
			// Encode before the next frame read: the reply aliases
			// runtime-owned storage the next Round overwrites.
			enc = ms.Append(enc[:0])
			if wire.WriteFrame(conn, wire.TypeMessages, enc) != nil {
				return
			}
		case wire.TypeFinish:
			if rt != nil {
				rt.Close()
				rt = nil
			}
			if wire.WriteFrame(conn, wire.TypeFinish, nil) != nil {
				return
			}
		default:
			fail(protocolErr("unexpected frame type"))
			return
		}
	}
}

// protocolErr builds the worker-side protocol violation error.
func protocolErr(msg string) error { return &wire.FrameError{Msg: msg} }
