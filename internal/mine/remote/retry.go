package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"gpar/internal/core"
	"gpar/internal/mine"
)

// RetryPolicy bounds how hard the coordinator tries to run a job on the
// fleet before giving up: total attempts, exponential backoff between them,
// and bounded jitter so a fleet of coordinators does not retry in lockstep.
// The zero value means defaults.
type RetryPolicy struct {
	// Attempts is the total number of tries, the first included (default 3).
	Attempts int
	// BaseBackoff is the pause after the first failure; it doubles per
	// failure (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
	// Jitter in [0,1) shaves a uniformly random share off each pause
	// (default 0.5: sleep between half and all of the nominal backoff).
	Jitter float64
	// Sleep replaces time.Sleep when non-nil (tests pin backoff schedules
	// without waiting them out).
	Sleep func(time.Duration)
}

func (p RetryPolicy) defaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.5
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff returns the pause after the n-th failure (1-based): BaseBackoff
// doubled per failure, capped at MaxBackoff, minus a random share up to
// Jitter.
func (p RetryPolicy) Backoff(n int) time.Duration {
	p = p.defaults()
	d := p.BaseBackoff
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		d -= time.Duration(p.Jitter * rand.Float64() * float64(d))
	}
	return d
}

// JobReport is the attempt accounting of one MineFleet call, for the
// serving layer's per-job bookkeeping.
type JobReport struct {
	// Attempts is how many fleet cycles ran (1 on a clean first try).
	Attempts int
	// DialFailures counts attempts that died before any worker held job
	// state (connect, handshake, or health-probe failures).
	DialFailures int
	// WorkerFailures counts attempts that died mid-job (stall past the
	// step deadline, disconnect, protocol violation, worker-reported
	// error).
	WorkerFailures int
	// FragHits and FragShips are the successful attempt's fragment-cache
	// telemetry, summed over the fleet: setups acked straight from worker
	// caches versus setups that shipped the fragment body.
	FragHits  int
	FragShips int
}

// PingAll health-probes every connection in parallel; the first failure is
// returned. A probe failure poisons only that connection (its error is
// sticky) — callers retry with a fresh fleet.
func PingAll(conns []*Conn) error {
	errs := make([]error, len(conns))
	done := make(chan struct{}, len(conns))
	for i, c := range conns {
		go func(i int, c *Conn) {
			errs[i] = c.Ping()
			done <- struct{}{}
		}(i, c)
	}
	for range conns {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	return nil
}

// MineFleet is the resilient fleet entry point: dial every worker,
// health-probe them, run one distributed mining job, and on any failure —
// refused dial, handshake breakdown, a stall past the step deadline, a
// disconnect, a protocol violation — close the fleet, back off, and retry
// the whole cycle on fresh connections, up to policy.Attempts. Jobs are
// repeatable by construction (workers hold no state across Finish, and Σ
// installs only on success), so a retried job's result is byte-identical to
// a clean run's.
//
// On success the report carries the attempt count and the fragment-cache
// telemetry of the winning attempt. On exhaustion the last error is
// returned (dial-phase failures wrap ErrFleetUnavailable; mid-job failures
// are *mine.WorkerError) and the caller owns the fallback decision. stop,
// when non-nil, is consulted before each retry so a draining server can
// abandon the fleet promptly instead of sleeping through backoffs.
func MineFleet(ctx *mine.Context, pred core.Predicate, opts mine.Options, addrs []string, dopts DialOptions, policy RetryPolicy, stop func() bool) (*mine.Result, JobReport, error) {
	policy = policy.defaults()
	var rep JobReport
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			if stop != nil && stop() {
				break
			}
			policy.Sleep(policy.Backoff(attempt - 1))
			if stop != nil && stop() {
				break
			}
		}
		// A run context that died between attempts ends the job with the same
		// typed error an in-flight cancel produces.
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return nil, rep, &mine.CanceledError{Superstep: 0, Err: cerr}
			}
		}
		rep.Attempts = attempt
		conns, err := DialFleet(addrs, dopts)
		if err != nil {
			rep.DialFailures++
			lastErr = err
			continue
		}
		if err := PingAll(conns); err != nil {
			CloseAll(conns)
			rep.DialFailures++
			lastErr = fmt.Errorf("%w: health probe: %v", ErrFleetUnavailable, err)
			continue
		}
		res, err := Mine(ctx, pred, opts, conns)
		hits, ships := 0, 0
		for _, c := range conns {
			h, s := c.FragStats()
			hits += h
			ships += s
		}
		CloseAll(conns)
		if err != nil {
			// A canceled run is not a fleet failure: the caller asked for the
			// abort, so retrying would defy it. Surface the typed error as is.
			var ce *mine.CanceledError
			if errors.As(err, &ce) {
				return nil, rep, err
			}
			rep.WorkerFailures++
			lastErr = err
			continue
		}
		rep.FragHits, rep.FragShips = hits, ships
		return res, rep, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: job abandoned before any attempt completed", ErrFleetUnavailable)
	}
	return nil, rep, lastErr
}
