package remote

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"strings"
	"testing"
	"time"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/mine/wire"
)

// startWorkers brings up n worker services on loopback TCP and returns
// their addresses. Listeners close on test cleanup, which ends each Serve
// loop.
func startWorkers(t testing.TB, n int, opts ServerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go Serve(l, opts)
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// mustMine / mustMulti unwrap (value, error) mining pairs; the
// differentials below never expect the local reference runs to fail.
func mustMine(res *mine.Result, err error) *mine.Result {
	if err != nil {
		panic(err)
	}
	return res
}

func mustMulti(res []mine.MultiResult, err error) []mine.MultiResult {
	if err != nil {
		panic(err)
	}
	return res
}

// fingerprint serializes every exported field of a Result — including the
// per-worker op counts, which must survive the wire — so local and
// distributed runs compare byte-identically.
func fingerprint(res *mine.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d generated=%d kept=%d pruned=%d iso=%d bisim=%d F=%.17g\n",
		res.Rounds, res.Generated, res.Kept, res.Pruned, res.IsoChecks, res.BisimSkips, res.F)
	fmt.Fprintf(&b, "ops=%v max=%d\n", res.WorkerOps, res.MaxWorkerOp)
	dump := func(name string, ms []mine.Mined) {
		fmt.Fprintf(&b, "%s %d\n", name, len(ms))
		for _, mm := range ms {
			fmt.Fprintf(&b, "  %s rule=%v stats=%+v conf=%.17g set=%v\n",
				mm.Key(), mm.Rule.Q, mm.Stats, mm.Conf, mm.Set)
		}
	}
	dump("topk", res.TopK)
	dump("all", res.All)
	return b.String()
}

func pokecFixture(users int, seed int64) (*graph.Graph, core.Predicate) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(users, seed))
	return g, gen.PokecPredicates(syms)[0]
}

// TestMineMatchesLocalTCP is the acceptance differential: byte-identical
// distributed results over loopback TCP vs single-process DMineCtx for
// every worker count.
func TestMineMatchesLocalTCP(t *testing.T) {
	g, pred := pokecFixture(300, 5)
	base := mine.Options{
		K: 6, Sigma: 3, D: 2, Lambda: 0.5,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations()

	for _, n := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			o := base
			o.N = n
			o = o.Defaults()
			ctx := mine.NewContext(g, pred.XLabel, o)
			want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

			addrs := startWorkers(t, n, ServerOptions{})
			conns, err := DialFleet(addrs, DialOptions{StepTimeout: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer CloseAll(conns)
			res, err := Mine(ctx, pred, o, conns)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(res); got != want {
				t.Fatalf("distributed result differs from local:\n--- local ---\n%s--- distributed ---\n%s", want, got)
			}
		})
	}
}

// TestMineMultiJobReuse runs several predicates' jobs back to back over one
// fleet — the DMineMulti shape — pinning both connection reuse across jobs
// and per-predicate byte-identity with the in-process engine.
func TestMineMultiJobReuse(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(250, 7))
	preds := gen.PokecPredicates(syms)
	if len(preds) > 3 {
		preds = preds[:3]
	}
	o := mine.Options{
		K: 6, Sigma: 2, D: 2, Lambda: 0.5, N: 3,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()

	want := mustMulti(mine.DMineMulti(g, preds, o))

	addrs := startWorkers(t, 3, ServerOptions{})
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)

	ctxs := make(map[graph.Label]*mine.Context)
	for i, mr := range want {
		ctx := ctxs[mr.Pred.XLabel]
		if ctx == nil {
			ctx = mine.NewContext(g, mr.Pred.XLabel, o)
			ctxs[mr.Pred.XLabel] = ctx
		}
		res, err := Mine(ctx, mr.Pred, o, conns)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if fw, fg := fingerprint(mr.Result), fingerprint(res); fw != fg {
			t.Fatalf("job %d differs from DMineMulti:\n%s\nvs\n%s", i, fw, fg)
		}
	}
}

// stalledWorker accepts one connection, completes the handshake, then reads
// frames forever without ever answering — the pathological peer the
// coordinator's step deadline exists for.
func stalledWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.AnswerHandshake(conn, wire.Version); err != nil {
			return
		}
		var buf []byte
		for {
			if _, _, nb, err := wire.ReadFrame(conn, buf, 0); err != nil {
				return
			} else {
				buf = nb
			}
		}
	}()
	return l.Addr().String()
}

// TestStalledWorkerTimesOut: a worker that accepts the job but never
// answers must fail the run with a typed *mine.WorkerError within the
// configured step deadline — no hang, no partial result.
func TestStalledWorkerTimesOut(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)

	addrs := startWorkers(t, 1, ServerOptions{})
	addrs = append(addrs, stalledWorker(t))
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)

	start := time.Now()
	res, err := Mine(ctx, pred, o, conns)
	elapsed := time.Since(start)
	if res != nil {
		t.Fatal("stalled run returned a result")
	}
	var we *mine.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error %T (%v), want *mine.WorkerError", err, err)
	}
	if we.Worker != 1 {
		t.Fatalf("failure attributed to worker %d, want the stalled worker 1", we.Worker)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("cause %v is not a timeout", err)
	}
	// Well within the deadline plus slack: the close path's Finish also
	// fails fast on the sticky error.
	if elapsed > 5*time.Second {
		t.Fatalf("stalled run took %v to fail", elapsed)
	}
}

// droppingWorker serves the handshake and the setup exchange, then cuts the
// connection on the first Round frame — a mid-superstep crash.
func droppingWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Answer as a v1 peer so the setup arrives with its fragment inline.
		if _, err := wire.AnswerHandshake(conn, 1); err != nil {
			return
		}
		var buf []byte
		for {
			typ, payload, nb, err := wire.ReadFrame(conn, buf, 0)
			if err != nil {
				return
			}
			buf = nb
			if typ != wire.TypeJobSetup {
				return // first Round frame: drop the connection mid-superstep
			}
			setup, err := wire.DecodeJobSetup(payload)
			if err != nil {
				return
			}
			rt, ack, err := mine.NewWorkerRuntime(setup)
			if err != nil {
				return
			}
			defer rt.Close()
			if wire.WriteFrame(conn, wire.TypeSetupAck, ack.Append(nil)) != nil {
				return
			}
		}
	}()
	return l.Addr().String()
}

// TestMidSuperstepDisconnect: a worker dying between setup and its first
// superstep reply fails the job cleanly and promptly with a typed error.
func TestMidSuperstepDisconnect(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)

	addrs := []string{startWorkers(t, 1, ServerOptions{})[0], droppingWorker(t)}
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)

	res, err := Mine(ctx, pred, o, conns)
	if res != nil {
		t.Fatal("disconnected run returned a result")
	}
	var we *mine.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error %T (%v), want *mine.WorkerError", err, err)
	}
	if we.Worker != 1 {
		t.Fatalf("failure attributed to worker %d, want the dropped worker 1", we.Worker)
	}
}

// TestDialFleetUnavailable: any unreachable worker makes the whole fleet
// unavailable, typed so callers can fall back to in-process mining.
func TestDialFleetUnavailable(t *testing.T) {
	good := startWorkers(t, 1, ServerOptions{})
	// A listener that is closed immediately: connection refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	conns, err := DialFleet(append(good, dead), DialOptions{DialTimeout: time.Second})
	if err == nil {
		CloseAll(conns)
		t.Fatal("partial fleet dialed successfully")
	}
	if !errors.Is(err, ErrFleetUnavailable) {
		t.Fatalf("error %v does not wrap ErrFleetUnavailable", err)
	}
}

// TestWorkerIdleTimeout: a service with an idle deadline drops a silent
// connection, and the coordinator sees the break on its next call.
func TestWorkerIdleTimeout(t *testing.T) {
	addrs := startWorkers(t, 1, ServerOptions{IdleTimeout: 100 * time.Millisecond})
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)
	time.Sleep(400 * time.Millisecond)
	if err := conns[0].Finish(); err == nil {
		t.Fatal("call on an idle-dropped connection succeeded")
	}
}

// TestArenasOffTCP pins the DisableArenas differential over real TCP for
// good measure: the flag rides JobSetup and must not change results.
func TestArenasOffTCP(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20, DisableArenas: true,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)
	want := fingerprint(mustMine(mine.DMineCtx(ctx, pred, o)))

	addrs := startWorkers(t, 2, ServerOptions{})
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)
	res, err := Mine(ctx, pred, o, conns)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(res); got != want {
		t.Fatal("arenas-off distributed result differs from local")
	}
}

// workerOpsEqual guards the ops lane: a quick sanity check that WorkerOps
// really crossed the wire (non-zero on a non-trivial run).
func TestWorkerOpsCrossWire(t *testing.T) {
	g, pred := pokecFixture(150, 3)
	o := mine.Options{
		K: 4, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations().Defaults()
	ctx := mine.NewContext(g, pred.XLabel, o)
	addrs := startWorkers(t, 2, ServerOptions{})
	conns, err := DialFleet(addrs, DialOptions{StepTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(conns)
	res, err := Mine(ctx, pred, o, conns)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerOps) != 2 || slices.Max(res.WorkerOps) == 0 {
		t.Fatalf("WorkerOps = %v, want two non-zero counts", res.WorkerOps)
	}
}
