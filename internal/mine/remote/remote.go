// Package remote runs distributed DMine over TCP: a worker service (Serve)
// that hosts mine.WorkerRuntime jobs behind the wire protocol, and the
// coordinator's client side — Conn, a mine.WorkerConn over one TCP
// connection, DialFleet to bring up a full worker fleet, and Mine as the
// one-call entry point.
//
// Failure semantics are strict and typed: dial-phase failures wrap
// ErrFleetUnavailable (the caller can fall back to in-process mining,
// nothing has started); any failure after setup — a worker crash, a stall
// past the per-step deadline, a protocol violation — surfaces from Mine as
// a *mine.WorkerError naming the worker, the job installs nothing, and the
// connection is dead (a Conn's error is sticky). Connections that complete
// a job stay open and serve subsequent jobs.
package remote

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/mine"
	"gpar/internal/mine/wire"
)

// ErrFleetUnavailable marks dial-phase failures: no worker has been touched,
// so falling back to in-process mining is safe and clean.
var ErrFleetUnavailable = errors.New("remote: fleet unavailable")

// RemoteError is a failure the worker itself reported in an Error frame
// (fragment decode failure, inapplicable extension, job-state violation) —
// as opposed to transport errors, which arrive as net or wire errors.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "remote: worker reported: " + e.Msg }

// DialOptions tunes the coordinator's client side. The zero value means
// defaults.
type DialOptions struct {
	// DialTimeout bounds TCP connect plus handshake per worker (default 5s).
	DialTimeout time.Duration
	// StepTimeout bounds each request/reply exchange: one superstep of one
	// worker must answer within it or the job fails (default 2m). This is
	// the stalled-worker guillotine the coordinator relies on.
	StepTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default wire.DefaultMaxFrame).
	MaxFrame int
	// MaxVersion caps the proposed protocol version (0 or out of range
	// means wire.Version). Capping at 1 disables the fragment-cache
	// exchange: every setup ships its fragment body inline.
	MaxVersion int
}

func (o DialOptions) defaults() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 2 * time.Minute
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.MaxVersion < wire.MinVersion || o.MaxVersion > wire.Version {
		o.MaxVersion = wire.Version
	}
	return o
}

// Conn is one worker connection as the coordinator drives it. It implements
// mine.WorkerConn; calls are sequential per Conn (the distributed engine
// guarantees it). Errors are sticky: after any failure every later call
// fails immediately, so a broken worker cannot half-participate in a
// subsequent job. Cancel is the one concurrent entry point — it may be
// called from any goroutine while an exchange is in flight.
type Conn struct {
	c       net.Conn
	opts    DialOptions
	version int    // negotiated protocol version
	buf     []byte // frame read buffer, reused
	enc     []byte // payload encode buffer, reused
	err     error  // sticky failure; written only by the driving goroutine

	fragHits  int // setups the worker acked straight from its cache
	fragShips int // setups that needed the fragment body shipped

	// cancelMu guards the cancellation handshake between the driving
	// goroutine and a concurrent Cancel: the canceled flag, the inflight
	// flag, and — critically — every SetDeadline call, so a send/recv
	// arming a fresh step deadline can never overwrite Cancel's immediate
	// one and resurrect a stall.
	cancelMu sync.Mutex
	canceled bool
	inflight bool // an exchange holds the socket (send sent, reply pending)
}

// errCanceled is the sticky verdict of a canceled connection. The
// coordinator maps any engine failure under a done context to
// *mine.CanceledError, so callers rarely see this directly.
var errCanceled = errors.New("remote: job canceled")

// Dial connects to one worker and negotiates the protocol version. A
// legacy v1 worker that slams the connection on an unknown hello (instead
// of answering it) is redialed proposing version 1, so a mixed-version
// fleet still comes up.
func Dial(addr string, opts DialOptions) (*Conn, error) {
	opts = opts.defaults()
	c, err := dialVersion(addr, opts, byte(opts.MaxVersion))
	if err != nil && opts.MaxVersion > wire.MinVersion {
		var fe *wire.FrameError
		if errors.As(err, &fe) {
			c, err = dialVersion(addr, opts, wire.MinVersion)
		}
	}
	return c, err
}

// dialVersion connects and proposes one version. TCP connect failures come
// back as net errors; handshake breakdowns as *wire.FrameError (the
// downgrade-redial trigger).
func dialVersion(addr string, opts DialOptions, propose byte) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	var version byte
	err = nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	if err == nil {
		version, err = wire.ProposeHandshake(nc, propose)
	}
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("%s: %w", addr, err)
	}
	return &Conn{c: nc, opts: opts, version: int(version)}, nil
}

// Version reports the negotiated protocol version.
func (c *Conn) Version() int { return c.version }

// FragStats reports how many job setups on this connection were served
// from the worker's fragment cache (hits) versus needed the fragment body
// shipped (ships). v1 connections ship inline and count neither.
func (c *Conn) FragStats() (hits, ships int) { return c.fragHits, c.fragShips }

// fail records a sticky failure and returns it.
func (c *Conn) fail(err error) error {
	c.err = err
	return err
}

// armDeadline sets a fresh step deadline and marks an exchange in flight,
// refusing once the connection has been canceled — a canceled connection's
// immediate deadline must never be re-armed.
func (c *Conn) armDeadline() error {
	c.cancelMu.Lock()
	defer c.cancelMu.Unlock()
	if c.canceled {
		return errCanceled
	}
	c.inflight = true
	return c.c.SetDeadline(time.Now().Add(c.opts.StepTimeout))
}

// endExchange marks the socket idle again (a Cancel arriving now sends the
// wire frame instead of slamming the deadline mid-read).
func (c *Conn) endExchange() {
	c.cancelMu.Lock()
	c.inflight = false
	c.cancelMu.Unlock()
}

// send writes one frame under a fresh step deadline.
func (c *Conn) send(typ byte, payload []byte) error {
	if c.err != nil {
		return c.err
	}
	if err := c.armDeadline(); err != nil {
		return c.fail(err)
	}
	if err := wire.WriteFrame(c.c, typ, payload); err != nil {
		return c.fail(err)
	}
	return nil
}

// recv reads one frame under a fresh step deadline, translating
// worker-reported Error frames. The payload aliases the connection's read
// buffer — consume it before the next recv.
func (c *Conn) recv() (byte, []byte, error) {
	if c.err != nil {
		return 0, nil, c.err
	}
	if err := c.armDeadline(); err != nil {
		return 0, nil, c.fail(err)
	}
	typ, reply, buf, err := wire.ReadFrame(c.c, c.buf, c.opts.MaxFrame)
	c.buf = buf
	c.endExchange()
	if err != nil {
		return 0, nil, c.fail(err)
	}
	if typ == wire.TypeError {
		ef, derr := wire.DecodeError(reply)
		if derr != nil {
			return 0, nil, c.fail(derr)
		}
		return 0, nil, c.fail(&RemoteError{Msg: ef.Msg})
	}
	return typ, reply, nil
}

// roundTrip sends one frame and reads the reply, which must have the given
// type.
func (c *Conn) roundTrip(reqType byte, payload []byte, wantType byte) ([]byte, error) {
	if err := c.send(reqType, payload); err != nil {
		return nil, err
	}
	typ, reply, err := c.recv()
	if err != nil {
		return nil, err
	}
	if typ != wantType {
		return nil, c.fail(fmt.Errorf("remote: reply frame type %d, want %d", typ, wantType))
	}
	return reply, nil
}

// Setup implements mine.WorkerConn. On v2 connections the fragment body is
// withheld: the setup carries only its content hash, and the body is
// shipped in a FragHave frame only when the worker answers FragNeed (a
// cache miss). v1 connections ship the body inline as always.
func (c *Conn) Setup(s *wire.JobSetup) (*wire.SetupAck, error) {
	if c.version < 2 {
		c.enc = s.Append(c.enc[:0])
		reply, err := c.roundTrip(wire.TypeJobSetup, c.enc, wire.TypeSetupAck)
		if err != nil {
			return nil, err
		}
		return c.decodeAck(reply)
	}
	hash := s.FragHash
	if len(hash) == 0 {
		hash = wire.HashFragment(s.Fragment)
	}
	hashOnly := *s
	hashOnly.Fragment = nil
	hashOnly.FragHash = hash
	c.enc = hashOnly.AppendV(c.enc[:0], c.version)
	if err := c.send(wire.TypeJobSetup, c.enc); err != nil {
		return nil, err
	}
	typ, reply, err := c.recv()
	if err != nil {
		return nil, err
	}
	if typ == wire.TypeFragNeed {
		need, derr := wire.DecodeFragNeed(reply)
		if derr != nil {
			return nil, c.fail(derr)
		}
		if !bytes.Equal(need.Hash, hash) {
			return nil, c.fail(fmt.Errorf("remote: worker requested fragment %x, offered %x", need.Hash, hash))
		}
		c.fragShips++
		have := wire.FragHave{Hash: hash, Fragment: s.Fragment}
		c.enc = have.Append(c.enc[:0])
		if err := c.send(wire.TypeFragHave, c.enc); err != nil {
			return nil, err
		}
		if typ, reply, err = c.recv(); err != nil {
			return nil, err
		}
	} else {
		c.fragHits++
	}
	if typ != wire.TypeSetupAck {
		return nil, c.fail(fmt.Errorf("remote: setup reply frame type %d, want %d", typ, wire.TypeSetupAck))
	}
	return c.decodeAck(reply)
}

func (c *Conn) decodeAck(reply []byte) (*wire.SetupAck, error) {
	ack, err := wire.DecodeSetupAck(reply)
	if err != nil {
		return nil, c.fail(err)
	}
	return ack, nil
}

// Ping round-trips a health probe. On v2 connections this is the dedicated
// Ping frame; v1 predates it, so an idle Finish exchange (a no-op between
// jobs) stands in. Only legal between jobs on either version.
func (c *Conn) Ping() error {
	if c.version < 2 {
		_, err := c.roundTrip(wire.TypeFinish, nil, wire.TypeFinish)
		return err
	}
	_, err := c.roundTrip(wire.TypePing, nil, wire.TypePing)
	return err
}

// Mine implements mine.WorkerConn.
func (c *Conn) Mine(rd *wire.Round) (*wire.Messages, error) {
	c.enc = rd.Append(c.enc[:0])
	reply, err := c.roundTrip(wire.TypeRound, c.enc, wire.TypeMessages)
	if err != nil {
		return nil, err
	}
	ms, err := wire.DecodeMessages(reply)
	if err != nil {
		c.err = err
		return nil, err
	}
	return ms, nil
}

// Finish implements mine.WorkerConn: it ends the job and leaves the
// connection ready for the next one (the worker echoes the frame).
func (c *Conn) Finish() error {
	_, err := c.roundTrip(wire.TypeFinish, nil, wire.TypeFinish)
	return err
}

// Cancel implements mine.CancelableConn: it abandons whatever job is in
// flight on this connection, from any goroutine. If an exchange holds the
// socket, the deadline is slammed to now so the blocked read or write
// returns immediately (the worker notices the dead connection via its own
// read deadline); if the socket is idle and the peer speaks v3, a Cancel
// frame is sent first so the worker drops its job state promptly. Either
// way the connection is finished: send and recv refuse to re-arm the
// deadline once canceled, so the failure is sticky and the coordinator —
// which asked for the abort — reports it as a *mine.CanceledError.
func (c *Conn) Cancel() {
	c.cancelMu.Lock()
	defer c.cancelMu.Unlock()
	if c.canceled {
		return
	}
	c.canceled = true
	if !c.inflight && c.version >= 3 {
		// Best-effort: a short write deadline keeps a wedged socket from
		// blocking the canceler, and a failure just means the worker waits
		// out its read deadline instead.
		if c.c.SetDeadline(time.Now().Add(time.Second)) == nil {
			_ = wire.WriteFrame(c.c, wire.TypeCancel, nil)
		}
	}
	_ = c.c.SetDeadline(time.Now())
}

// Close tears the connection down. Safe after errors.
func (c *Conn) Close() error {
	if c.err == nil {
		c.err = errors.New("remote: connection closed")
	}
	return c.c.Close()
}

// DialFleet connects to every worker address in parallel. On any failure it
// closes whatever connected and returns an error wrapping
// ErrFleetUnavailable — all-or-nothing, so a partial fleet never mines.
func DialFleet(addrs []string, opts DialOptions) ([]*Conn, error) {
	conns := make([]*Conn, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			conns[i], errs[i] = Dial(addr, opts)
		}(i, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			CloseAll(conns)
			return nil, fmt.Errorf("%w: %v", ErrFleetUnavailable, err)
		}
	}
	return conns, nil
}

// CloseAll closes every non-nil connection.
func CloseAll(conns []*Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// Mine runs one distributed mining job over an established fleet: it is
// mine.DMineDistributed with the []*Conn plumbing. The fleet remains usable
// for further jobs when the returned error is nil.
func Mine(ctx *mine.Context, pred core.Predicate, opts mine.Options, conns []*Conn) (*mine.Result, error) {
	wcs := make([]mine.WorkerConn, len(conns))
	for i, c := range conns {
		wcs[i] = c
	}
	return mine.DMineDistributed(ctx, pred, opts, wcs)
}
