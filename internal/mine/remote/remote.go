// Package remote runs distributed DMine over TCP: a worker service (Serve)
// that hosts mine.WorkerRuntime jobs behind the wire protocol, and the
// coordinator's client side — Conn, a mine.WorkerConn over one TCP
// connection, DialFleet to bring up a full worker fleet, and Mine as the
// one-call entry point.
//
// Failure semantics are strict and typed: dial-phase failures wrap
// ErrFleetUnavailable (the caller can fall back to in-process mining,
// nothing has started); any failure after setup — a worker crash, a stall
// past the per-step deadline, a protocol violation — surfaces from Mine as
// a *mine.WorkerError naming the worker, the job installs nothing, and the
// connection is dead (a Conn's error is sticky). Connections that complete
// a job stay open and serve subsequent jobs.
package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/mine"
	"gpar/internal/mine/wire"
)

// ErrFleetUnavailable marks dial-phase failures: no worker has been touched,
// so falling back to in-process mining is safe and clean.
var ErrFleetUnavailable = errors.New("remote: fleet unavailable")

// RemoteError is a failure the worker itself reported in an Error frame
// (fragment decode failure, inapplicable extension, job-state violation) —
// as opposed to transport errors, which arrive as net or wire errors.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "remote: worker reported: " + e.Msg }

// DialOptions tunes the coordinator's client side. The zero value means
// defaults.
type DialOptions struct {
	// DialTimeout bounds TCP connect plus handshake per worker (default 5s).
	DialTimeout time.Duration
	// StepTimeout bounds each request/reply exchange: one superstep of one
	// worker must answer within it or the job fails (default 2m). This is
	// the stalled-worker guillotine the coordinator relies on.
	StepTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default wire.DefaultMaxFrame).
	MaxFrame int
}

func (o DialOptions) defaults() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 2 * time.Minute
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	return o
}

// Conn is one worker connection as the coordinator drives it. It implements
// mine.WorkerConn; calls are sequential per Conn (the distributed engine
// guarantees it). Errors are sticky: after any failure every later call
// fails immediately, so a broken worker cannot half-participate in a
// subsequent job.
type Conn struct {
	c    net.Conn
	opts DialOptions
	buf  []byte // frame read buffer, reused
	enc  []byte // payload encode buffer, reused
	err  error  // sticky failure
}

// Dial connects to one worker and completes the protocol handshake.
func Dial(addr string, opts DialOptions) (*Conn, error) {
	opts = opts.defaults()
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(opts.DialTimeout)); err == nil {
		err = wire.WriteHandshake(nc)
		if err == nil {
			err = wire.ReadHandshake(nc)
		}
	}
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("%s: %w", addr, err)
	}
	return &Conn{c: nc, opts: opts}, nil
}

// roundTrip sends one frame and reads the typed reply under the step
// deadline, translating worker-reported Error frames and recording any
// failure as sticky.
func (c *Conn) roundTrip(reqType byte, payload []byte, wantType byte) ([]byte, error) {
	if c.err != nil {
		return nil, c.err
	}
	fail := func(err error) ([]byte, error) {
		c.err = err
		return nil, err
	}
	if err := c.c.SetDeadline(time.Now().Add(c.opts.StepTimeout)); err != nil {
		return fail(err)
	}
	if err := wire.WriteFrame(c.c, reqType, payload); err != nil {
		return fail(err)
	}
	typ, reply, buf, err := wire.ReadFrame(c.c, c.buf, c.opts.MaxFrame)
	c.buf = buf
	if err != nil {
		return fail(err)
	}
	if typ == wire.TypeError {
		ef, derr := wire.DecodeError(reply)
		if derr != nil {
			return fail(derr)
		}
		return fail(&RemoteError{Msg: ef.Msg})
	}
	if typ != wantType {
		return fail(fmt.Errorf("remote: reply frame type %d, want %d", typ, wantType))
	}
	return reply, nil
}

// Setup implements mine.WorkerConn.
func (c *Conn) Setup(s *wire.JobSetup) (*wire.SetupAck, error) {
	c.enc = s.Append(c.enc[:0])
	reply, err := c.roundTrip(wire.TypeJobSetup, c.enc, wire.TypeSetupAck)
	if err != nil {
		return nil, err
	}
	ack, err := wire.DecodeSetupAck(reply)
	if err != nil {
		c.err = err
		return nil, err
	}
	return ack, nil
}

// Mine implements mine.WorkerConn.
func (c *Conn) Mine(rd *wire.Round) (*wire.Messages, error) {
	c.enc = rd.Append(c.enc[:0])
	reply, err := c.roundTrip(wire.TypeRound, c.enc, wire.TypeMessages)
	if err != nil {
		return nil, err
	}
	ms, err := wire.DecodeMessages(reply)
	if err != nil {
		c.err = err
		return nil, err
	}
	return ms, nil
}

// Finish implements mine.WorkerConn: it ends the job and leaves the
// connection ready for the next one (the worker echoes the frame).
func (c *Conn) Finish() error {
	_, err := c.roundTrip(wire.TypeFinish, nil, wire.TypeFinish)
	return err
}

// Close tears the connection down. Safe after errors.
func (c *Conn) Close() error {
	if c.err == nil {
		c.err = errors.New("remote: connection closed")
	}
	return c.c.Close()
}

// DialFleet connects to every worker address in parallel. On any failure it
// closes whatever connected and returns an error wrapping
// ErrFleetUnavailable — all-or-nothing, so a partial fleet never mines.
func DialFleet(addrs []string, opts DialOptions) ([]*Conn, error) {
	conns := make([]*Conn, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			conns[i], errs[i] = Dial(addr, opts)
		}(i, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			CloseAll(conns)
			return nil, fmt.Errorf("%w: %v", ErrFleetUnavailable, err)
		}
	}
	return conns, nil
}

// CloseAll closes every non-nil connection.
func CloseAll(conns []*Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// Mine runs one distributed mining job over an established fleet: it is
// mine.DMineDistributed with the []*Conn plumbing. The fleet remains usable
// for further jobs when the returned error is nil.
func Mine(ctx *mine.Context, pred core.Predicate, opts mine.Options, conns []*Conn) (*mine.Result, error) {
	wcs := make([]mine.WorkerConn, len(conns))
	for i, c := range conns {
		wcs[i] = c
	}
	return mine.DMineDistributed(ctx, pred, opts, wcs)
}
