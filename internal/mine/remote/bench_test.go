package remote

import (
	"net"
	"testing"
	"time"

	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// benchFleet runs one distributed mining job per iteration over a 4-worker
// loopback-TCP fleet dialed with dopts.
func benchFleet(b *testing.B, dopts DialOptions) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(500, 7))
	pred := gen.PokecPredicates(syms)[0]
	opts := mine.Options{K: 10, Sigma: 5, D: 2, Lambda: 0.5, N: 4, MaxEdges: 2}.
		WithOptimizations().Defaults()

	addrs := make([]string, opts.N)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		go Serve(l, ServerOptions{})
		addrs[i] = l.Addr().String()
	}
	conns, err := DialFleet(addrs, dopts)
	if err != nil {
		b.Fatal(err)
	}
	defer CloseAll(conns)
	ctx := mine.NewContext(g, pred.XLabel, opts)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Mine(ctx, pred, opts, conns)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.TopK) == 0 {
			b.Fatal("no rules mined")
		}
	}
}

// BenchmarkDMineDistributed times one full distributed mining job over a
// 4-worker loopback-TCP fleet: per-worker job setup (fragment encode, ship,
// decode), the BSP supersteps with their frame round trips, and the
// coordinator's assemble/diversify reduce. Pinned to protocol v1 so every
// job ships its fragment inline — the workload the recorded baseline
// measured. The in-process equivalent of this workload is BenchmarkDMine
// (internal/mine); the gap between the two is the wire overhead. Recorded
// in BENCH_mine.json by `make bench`.
func BenchmarkDMineDistributed(b *testing.B) {
	benchFleet(b, DialOptions{StepTimeout: time.Minute, MaxVersion: 1})
}

// BenchmarkDMineDistributedCachedFragment is the same job over protocol v2
// with the workers' content-addressed fragment caches warm: after the first
// iteration every setup is a hash-only frame answered from cache, so the
// gap to BenchmarkDMineDistributed is the per-job fragment encode+ship+
// decode the cache saves. Recorded in BENCH_mine.json by `make bench`.
func BenchmarkDMineDistributedCachedFragment(b *testing.B) {
	benchFleet(b, DialOptions{StepTimeout: time.Minute})
}
