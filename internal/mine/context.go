package mine

import (
	"fmt"
	"slices"
	"sync"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/mine/wire"
	"gpar/internal/partition"
)

// This file implements the reusable mining preamble. Every DMine run over
// the same graph with the same x-label and fragmentation parameters repeats
// the same expensive prefix — collect the candidate centers, partition the
// graph into d-neighborhood-preserving fragments, Freeze() each fragment
// into CSR form — before any predicate-specific work happens. Context
// captures that prefix once; DMineCtx runs on top of it, and Shared extends
// the reuse across the predicates of one DMineMulti job (the factorised-
// engine move of sharing common substructure across queries).

// Context is the immutable, predicate-independent preamble of a DMine run:
// the candidate centers of one x-label and the partitioned, frozen
// fragments covering their d-neighborhoods. A Context is read-only after
// NewContext returns and is safe to share between any number of concurrent
// DMineCtx runs — the serving subsystem caches Contexts per snapshot
// generation and hands one to every mine job with matching (xLabel, d, n).
type Context struct {
	g      *graph.Graph
	xLabel graph.Label
	d, n   int
	cands  []graph.NodeID
	frags  []*partition.Fragment
	// borrowed marks a context built over caller-owned fragments
	// (ContextFromFragments) rather than a fresh partition — the serving
	// layer surfaces it as the "fragment reuse" bit of a mine job.
	borrowed bool

	// wireOnce guards the lazily-built wire encodings below: distributed
	// jobs (and their retries) over one context encode and hash each
	// fragment exactly once.
	wireOnce   sync.Once
	wireFrags  [][]byte
	wireHashes [][]byte
}

// WireFragment returns fragment i's canonical binary encoding and its
// content hash (wire.HashFragment over those bytes). Both are computed once
// per context and cached, so repeat and retried distributed jobs skip the
// re-encode, and the hash keys the workers' fragment caches stably.
func (c *Context) WireFragment(i int) (data, hash []byte) {
	c.wireOnce.Do(func() {
		c.wireFrags = make([][]byte, len(c.frags))
		c.wireHashes = make([][]byte, len(c.frags))
		for j, f := range c.frags {
			b := f.AppendBinary(nil)
			c.wireFrags[j] = b
			c.wireHashes[j] = wire.HashFragment(b)
		}
	})
	return c.wireFrags[i], c.wireHashes[i]
}

// NewContext builds the mining preamble for x-label candidates on g with
// opts' fragmentation parameters (only N and D are read; both are defaulted
// first, so pass the same Options the subsequent DMineCtx calls will use).
// The graph is frozen — all later access is read-only — and so is every
// fragment.
func NewContext(g *graph.Graph, xLabel graph.Label, opts Options) *Context {
	opts = opts.Defaults()
	g.Freeze()
	cands := g.NodesWithLabel(xLabel)
	frags := partition.Partition(g, cands, opts.N, opts.D)
	for _, f := range frags {
		f.G.Freeze()
	}
	return &Context{g: g, xLabel: xLabel, d: opts.D, n: opts.N, cands: cands, frags: frags}
}

// ContextFromFragments builds a Context over fragments the caller already
// owns — the zero-partition, zero-Freeze path of "mine once, match many":
// when a serving snapshot's partition layout coincides with a mine job's
// (xLabel, d, n), the snapshot's frozen fragments serve both and the whole
// mining preamble disappears.
//
// The caller guarantees the sharing invariant: frags must be exactly what
// partition.Partition(g, g.NodesWithLabel(xLabel), n, d) would return for
// the frozen g — same fragment count, same owned-center assignment, same
// canonical node order — and every fragment graph must already be frozen.
// partition.Partition is deterministic, so any fragments produced from the
// same (g, xLabel, n, d) satisfy this by construction; the differential
// tests in internal/serve pin byte-identical mining results against a
// freshly partitioned context.
func ContextFromFragments(g *graph.Graph, xLabel graph.Label, d, n int, frags []*partition.Fragment) *Context {
	if len(frags) != n {
		panic(fmt.Sprintf("mine: ContextFromFragments got %d fragments for n=%d", len(frags), n))
	}
	g.Freeze()
	cands := g.NodesWithLabel(xLabel)
	return &Context{g: g, xLabel: xLabel, d: d, n: n, cands: cands, frags: frags, borrowed: true}
}

// Borrowed reports whether the context shares caller-owned fragments
// (ContextFromFragments) instead of a private partition.
func (c *Context) Borrowed() bool { return c.borrowed }

// Graph returns the (frozen) data graph the context was built over.
func (c *Context) Graph() *graph.Graph { return c.g }

// XLabel returns the candidate x-label the context was built for.
func (c *Context) XLabel() graph.Label { return c.xLabel }

// D returns the partition radius the fragments preserve.
func (c *Context) D() int { return c.d }

// N returns the fragment (worker) count.
func (c *Context) N() int { return c.n }

// NumCandidates reports how many candidate centers the context covers.
func (c *Context) NumCandidates() int { return len(c.cands) }

// check verifies that the context's preamble matches the run parameters;
// a mismatched context would silently mine with the wrong radius or
// fragment layout, so this is a hard programming error.
func (c *Context) check(pred core.Predicate, opts Options) error {
	if pred.XLabel != c.xLabel {
		return fmt.Errorf("mine: context built for x-label %d, predicate has %d", c.xLabel, pred.XLabel)
	}
	if opts.D != c.d || opts.N != c.n {
		return fmt.Errorf("mine: context built for (d=%d, n=%d), options want (d=%d, n=%d)",
			c.d, c.n, opts.D, opts.N)
	}
	return nil
}

// DMineCtx is DMine running on a prebuilt Context: identical results (the
// differential tests pin byte-identity), but the partition + freeze
// preamble is skipped. It errors if the context was built for a different
// x-label or different (d, n) than pred/opts ask for, or — as a typed
// *CanceledError — when a set Options.Ctx cancels the run.
func DMineCtx(ctx *Context, pred core.Predicate, opts Options) (*Result, error) {
	opts = opts.Defaults()
	if err := ctx.check(pred, opts); err != nil {
		return nil, err
	}
	m := newMiner(ctx, pred, opts, nil)
	return m.runE()
}

// Shared is the cross-predicate accumulator of DMineMulti: everything that
// is a pure function of the graph and the fragment layout — the worker
// goroutine states with their memoized extendability probes (distCache),
// owned-center sets, epoch-stamped discovery scratch, extension intern
// tables and round arenas, the pre-sorted seed frontiers, and the
// bisimulation-bucket interner — survives from one predicate's run to the
// next instead of being rebuilt per predicate. The serving layer also pools
// Shared values across mine jobs, so a steady stream of jobs over one
// snapshot reuses the same grown arenas round after round.
//
// Sharing is determinism-safe: every retained structure is either a memo
// of a pure function (distCache) or an interning table whose concrete IDs
// never influence results (bucket IDs only group equal summaries;
// extension-overflow codes only key accumulators that are re-sorted by the
// extension's total order), and the arenas are reset at their phase
// boundaries. The differential tests pin byte-identity against fresh runs.
//
// A Shared belongs to one mining job at a time: unlike Context it is
// mutable and must not be used by concurrent runs. Concurrent jobs share
// an immutable Context and bring their own Shared (or none).
type Shared struct {
	ctx     *Context
	workers []*worker
	seeds   [][]graph.NodeID // per-worker owned centers, sorted once: every run's seed frontier
	buckets bucketInterner
}

// NewShared returns an empty accumulator over ctx.
func NewShared(ctx *Context) *Shared {
	return &Shared{ctx: ctx}
}

// Context returns the context the accumulator mines over.
func (sh *Shared) Context() *Context { return sh.ctx }

// DMine mines pred reusing the accumulator's context and every run-to-run
// survivable structure. Results are byte-identical to DMine(g, pred, opts).
// Errors are a context/options mismatch or, for a set Options.Ctx, the
// typed *CanceledError; a canceled accumulator is reusable — the next run
// resets every per-run structure, byte-identically to a fresh one.
func (sh *Shared) DMine(pred core.Predicate, opts Options) (*Result, error) {
	opts = opts.Defaults()
	if err := sh.ctx.check(pred, opts); err != nil {
		return nil, err
	}
	m := newMiner(sh.ctx, pred, opts, sh)
	return m.runE()
}

// attachWorkers returns the per-fragment workers, creating them on first
// use and resetting per-run state on every call.
func (sh *Shared) attachWorkers() []*worker {
	if sh.workers == nil {
		sh.workers = make([]*worker, len(sh.ctx.frags))
		sh.seeds = make([][]graph.NodeID, len(sh.ctx.frags))
		for i, f := range sh.ctx.frags {
			sh.workers[i] = &worker{
				id:         i,
				frag:       f,
				g:          sh.ctx.g,
				centersFor: make(map[ruleID][]graph.NodeID),
			}
			seed := append([]graph.NodeID(nil), f.Centers...)
			slices.Sort(seed)
			sh.seeds[i] = seed
		}
	}
	for _, w := range sh.workers {
		w.resetRun()
	}
	return sh.workers
}

// seed returns worker i's seed frontier: all owned centers, pre-sorted.
// localMine sorts frontiers in place before use, so handing the shared
// slice out (instead of a fresh copy per predicate) is safe — it is only
// ever re-sorted, never appended to or shrunk.
func (sh *Shared) seed(i int) []graph.NodeID { return sh.seeds[i] }

// resetRun clears a worker's per-predicate state. Graph-dependent
// memoization — distCache, centerSet, the discovery scratch and the
// extension intern table — survives: it depends only on the fragment
// layout, which the shared Context fixes.
func (w *worker) resetRun() {
	w.npq, w.npqbar = 0, 0
	w.ops = 0
	clear(w.centersFor)
}
