package mine

import (
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// arenaFixture is the differential workload for the arena on/off tests: a
// seeded Pokec-like graph with enough structure that every arena lane (all
// four message lanes, assembly unions, frontier lists) carries real data
// over multiple rounds.
func arenaFixture(t testing.TB) (*graph.Graph, []Options) {
	t.Helper()
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(250, 11))
	base := Options{
		K: 6, Sigma: 2, D: 2, Lambda: 0.5,
		MaxEdges: 2, EmbedCap: 1 << 20,
	}.WithOptimizations()
	var opts []Options
	for _, n := range []int{1, 2, 3, 8} {
		o := base
		o.N = n
		opts = append(opts, o)
	}
	return g, opts
}

// TestDMineArenasOnOffIdentity is the differential half of the arena
// rewrite's contract: with Options.DisableArenas every center set is a
// fresh heap slice (the pre-arena behavior), so any aliasing or premature
// reset in the recycled lanes shows up as a result diff. Byte-identity must
// hold for every worker count.
func TestDMineArenasOnOffIdentity(t *testing.T) {
	g, optsList := arenaFixture(t)
	pred := gen.PokecPredicates(g.Symbols())[0]
	for _, on := range optsList {
		off := on
		off.DisableArenas = true
		want := fingerprint(DMine(g, pred, off))
		got := fingerprint(DMine(g, pred, on))
		if got != want {
			t.Fatalf("N=%d: arena result differs from arenas-off:\n--- arenas off ---\n%s--- arenas on ---\n%s",
				on.N, want, got)
		}
	}
}

// TestDMineMultiArenasOnOffIdentity extends the differential to DMineMulti:
// the shared accumulator reuses one worker set (arenas and all) across
// predicates, which is exactly the lifetime the recycling discipline must
// survive.
func TestDMineMultiArenasOnOffIdentity(t *testing.T) {
	g, optsList := arenaFixture(t)
	preds := gen.PokecPredicates(g.Symbols())
	on := optsList[1] // N=2: sharded assembly and real message traffic
	off := on
	off.DisableArenas = true
	wants := must(DMineMulti(g, preds, off))
	gots := must(DMineMulti(g, preds, on))
	if len(wants) != len(gots) {
		t.Fatalf("result count differs: %d vs %d", len(wants), len(gots))
	}
	for i := range wants {
		if w, g := fingerprint(wants[i].Result), fingerprint(gots[i].Result); w != g {
			t.Fatalf("predicate %d: arena result differs from arenas-off:\n--- off ---\n%s--- on ---\n%s",
				i, w, g)
		}
	}
}

// TestEmbedCapDeterministicAcrossWorkerCounts pins the EmbedCap-
// independence contract: embeddings are enumerated in a canonical global-ID
// order (match.Options.Canonical over partition's sorted fragment node
// order), so even a cap of 1 embedding per center — which aggressively
// truncates discovery — must see the same embeddings, and produce the same
// result, on every fragment layout.
func TestEmbedCapDeterministicAcrossWorkerCounts(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(300, 5))
	pred := gen.PokecPredicates(syms)[0]
	base := Options{
		K: 6, Sigma: 3, D: 2, Lambda: 0.5, MaxEdges: 2, EmbedCap: 1,
	}.WithOptimizations()

	// Evidence the cap actually bites on this workload: uncapped mining
	// must see strictly more candidates. Without this the test would pass
	// vacuously.
	uncapped := base
	uncapped.EmbedCap = 1 << 20
	uncapped.N = 1
	first := base
	first.N = 1
	capRes := DMine(g, pred, first)
	if full := DMine(g, pred, uncapped); full.Generated <= capRes.Generated {
		t.Fatalf("EmbedCap=1 did not truncate discovery (capped %d vs uncapped %d candidates)",
			capRes.Generated, full.Generated)
	}

	want := fingerprint(capRes)
	for _, n := range []int{2, 8} {
		o := base
		o.N = n
		if got := fingerprint(DMine(g, pred, o)); got != want {
			t.Fatalf("EmbedCap=1, N=%d differs from N=1:\n--- N=1 ---\n%s--- N=%d ---\n%s",
				n, want, n, got)
		}
	}
}
