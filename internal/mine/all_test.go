package mine

import (
	"math"
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// TestResultAll: the full candidate set Σ is exposed sorted by descending
// confidence, is a superset of the top-k, and contains no trivial rules.
func TestResultAll(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	res := DMine(f.G, gen.VisitPredicate(syms), baseOpts())
	if len(res.All) < len(res.TopK) {
		t.Fatalf("|All| = %d < |TopK| = %d", len(res.All), len(res.TopK))
	}
	if len(res.All) != res.Kept {
		t.Errorf("|All| = %d but Kept = %d", len(res.All), res.Kept)
	}
	for i := 1; i < len(res.All); i++ {
		if res.All[i].Conf > res.All[i-1].Conf+1e-12 {
			t.Fatal("All not sorted by descending confidence")
		}
	}
	topKeys := map[string]bool{}
	for _, mm := range res.TopK {
		topKeys[mm.Key()] = true
	}
	found := 0
	for _, mm := range res.All {
		if topKeys[mm.Key()] {
			found++
		}
		if math.IsNaN(mm.Conf) {
			t.Errorf("NaN confidence in Σ: %s", mm.Rule)
		}
		if trivial, why := mm.Stats.Trivial(); trivial {
			t.Errorf("trivial rule kept in Σ (%s): %s", why, mm.Rule)
		}
	}
	if found != len(res.TopK) {
		t.Errorf("only %d of %d top-k rules present in All", found, len(res.TopK))
	}
}

// TestWorkerOpsAccounting: ops are recorded for every worker and their max
// matches MaxWorkerOp.
func TestWorkerOpsAccounting(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	opts := baseOpts()
	opts.N = 4
	res := DMine(f.G, gen.VisitPredicate(syms), opts)
	if len(res.WorkerOps) != 4 {
		t.Fatalf("WorkerOps = %v", res.WorkerOps)
	}
	var max int64
	for _, o := range res.WorkerOps {
		if o > max {
			max = o
		}
	}
	if max != res.MaxWorkerOp {
		t.Errorf("MaxWorkerOp = %d want %d", res.MaxWorkerOp, max)
	}
}
