// Package wire is the binary protocol of distributed DMine: versioned,
// length-prefixed frames carrying the BSP superstep traffic between the
// mining coordinator and its remote workers — job setup (symbols, options,
// the worker's fragment and extendability table), per-round frontier
// hand-offs, the workers' <R, conf, flag> message streams, and job
// teardown.
//
// Everything on the wire is structural: a candidate GPAR travels as its
// (parent ruleID, extension) pair plus four flat center lanes of global
// node IDs, exactly the shape the in-process engine passes between its
// phases, so the coordinator's deterministic assembly reduce consumes
// remote and local messages identically. Integers are unsigned varints
// (signed varints where a sentinel -1 is legal); frames are [u32 length]
// [u8 type][payload] with a configurable length guard on the read side.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol identity. The handshake is exchanged once per connection; every
// frame after it is versioned implicitly by the negotiated version.
//
// Version negotiation: the dialer speaks first, proposing the highest
// version it supports; the answerer replies with min(proposed, own), and
// the dialer accepts any reply not above its proposal. Version 1 peers
// predate negotiation — they slam the connection on an unknown hello
// instead of answering — so a v2 dialer that loses its handshake mid-read
// redials proposing version 1 (see the remote package).
const (
	// Magic opens the handshake: "GPWK" followed by a version byte.
	Magic = "GPWK"
	// Version is the highest protocol version this package speaks.
	// Version 2 adds health probes (TypePing) and the content-addressed
	// fragment exchange (JobSetup.FragHash, TypeFragNeed, TypeFragHave).
	// Version 3 adds cooperative job cancellation (TypeCancel). (The issue
	// that introduced cancellation called for it to ride on "v2"; version 2
	// was already taken by the fragment exchange, so it ships as version 3 —
	// same negotiation mechanics, older peers simply never see the frame and
	// rely on step deadlines instead.)
	Version = 3
	// MinVersion is the oldest version this package interoperates with.
	MinVersion = 1
)

// Frame types.
const (
	// TypeJobSetup: coordinator → worker. Everything one worker needs for a
	// mining job: symbols, predicate, options, its fragment, its
	// extendability table.
	TypeJobSetup byte = 1
	// TypeSetupAck: worker → coordinator. Round-0 classification counts.
	TypeSetupAck byte = 2
	// TypeRound: coordinator → worker. One superstep's frontier; the worker
	// answers with TypeMessages.
	TypeRound byte = 3
	// TypeMessages: worker → coordinator. The superstep's candidate
	// messages plus the worker's cumulative op count.
	TypeMessages byte = 4
	// TypeFinish: coordinator → worker, ending the job; the worker echoes
	// it and awaits the next TypeJobSetup on the same connection.
	TypeFinish byte = 5
	// TypeError: either direction. A typed failure; the job is dead.
	TypeError byte = 6
	// TypePing: coordinator → worker health probe, echoed verbatim. v2+,
	// and only legal between jobs.
	TypePing byte = 7
	// TypeFragNeed: worker → coordinator reply to a hash-only JobSetup
	// whose fragment is not in the worker's cache; carries the hash. v2+.
	TypeFragNeed byte = 8
	// TypeFragHave: coordinator → worker reply to TypeFragNeed: the
	// fragment body for the named content hash. v2+.
	TypeFragHave byte = 9
	// TypeCancel: coordinator → worker. The in-flight job is abandoned; the
	// worker drops its runtime and awaits the next TypeJobSetup on the same
	// connection. No reply — the coordinator has already stopped listening
	// for this job, and the empty-payload frame exists only so the worker
	// can release resources promptly instead of holding them until its read
	// deadline. v3+.
	TypeCancel byte = 10
)

// DefaultMaxFrame bounds how large a frame the read side accepts by
// default: large enough for any realistic fragment or message batch, small
// enough that a corrupt length prefix cannot OOM the process.
const DefaultMaxFrame = 1 << 28 // 256 MiB

// FrameError is the typed error for every protocol-level failure: bad
// magic, version mismatch, oversized or truncated frames, and malformed
// payloads.
type FrameError struct{ Msg string }

func (e *FrameError) Error() string { return "wire: " + e.Msg }

func errorf(format string, args ...any) error {
	return &FrameError{Msg: fmt.Sprintf(format, args...)}
}

// WriteHello sends one handshake hello: the protocol magic and a version
// byte.
func WriteHello(w io.Writer, version byte) error {
	var hs [len(Magic) + 1]byte
	copy(hs[:], Magic)
	hs[len(Magic)] = version
	_, err := w.Write(hs[:])
	return err
}

// ReadHello consumes one hello, validating the magic, and returns the
// peer's version byte. Version validation is the caller's (the two
// negotiation sides accept different ranges).
func ReadHello(r io.Reader) (byte, error) {
	var hs [len(Magic) + 1]byte
	if _, err := io.ReadFull(r, hs[:]); err != nil {
		return 0, errorf("handshake: %v", err)
	}
	if string(hs[:len(Magic)]) != Magic {
		return 0, errorf("handshake: bad magic %q", hs[:len(Magic)])
	}
	return hs[len(Magic)], nil
}

// ProposeHandshake runs the dialer side of version negotiation: propose a
// version, accept any reply in [MinVersion, propose]. The agreed version is
// returned. A v1 answerer that predates negotiation replies with exactly
// version 1, which this accepts; a peer that closes instead of replying
// surfaces as a FrameError wrapping the read failure.
func ProposeHandshake(rw io.ReadWriter, propose byte) (byte, error) {
	if propose < MinVersion || propose > Version {
		return 0, errorf("handshake: cannot propose version %d (speak %d..%d)", propose, MinVersion, Version)
	}
	if err := WriteHello(rw, propose); err != nil {
		return 0, errorf("handshake: %v", err)
	}
	v, err := ReadHello(rw)
	if err != nil {
		return 0, err
	}
	if v < MinVersion || v > propose {
		return 0, errorf("handshake: peer answered version %d to proposal %d", v, propose)
	}
	return v, nil
}

// AnswerHandshake runs the answerer side of version negotiation: read the
// dialer's proposal and reply with min(proposed, max). The agreed version
// is returned. max is clamped into [MinVersion, Version].
func AnswerHandshake(rw io.ReadWriter, max byte) (byte, error) {
	if max < MinVersion || max > Version {
		max = Version
	}
	v, err := ReadHello(rw)
	if err != nil {
		return 0, err
	}
	if v < MinVersion {
		return 0, errorf("handshake: peer speaks version %d, want at least %d", v, MinVersion)
	}
	agreed := min(v, max)
	if err := WriteHello(rw, agreed); err != nil {
		return 0, errorf("handshake: %v", err)
	}
	return agreed, nil
}

// WriteFrame writes one [u32 length][u8 type][payload] frame. The length
// covers the type byte plus the payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf for the payload when it is large
// enough. maxFrame guards the length prefix (0 means DefaultMaxFrame); a
// frame beyond it is a protocol error, not an allocation.
func ReadFrame(r io.Reader, buf []byte, maxFrame int) (typ byte, payload, newBuf []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, buf, errorf("zero-length frame")
	}
	if int64(n) > int64(maxFrame) {
		return 0, nil, buf, errorf("frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	typ = hdr[4]
	body := int(n) - 1
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	payload = buf[:body]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, errorf("truncated frame: %v", err)
	}
	return typ, payload, buf, nil
}

// ---------------------------------------------------------------------------
// Varint primitives shared by the payload codecs.

// reader decodes varints with a sticky error, so payload decoders read
// linearly and check once at the end.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = errorf(format, args...)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Uvarint(r.buf)
	if k <= 0 {
		r.fail("truncated payload reading %s", what)
		return 0
	}
	r.buf = r.buf[k:]
	return v
}

func (r *reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Varint(r.buf)
	if k <= 0 {
		r.fail("truncated payload reading %s", what)
		return 0
	}
	r.buf = r.buf[k:]
	return v
}

// intf decodes a uvarint that must fit a non-negative int32-sized int
// (node IDs, labels, counts).
func (r *reader) intf(what string) int {
	v := r.uvarint(what)
	if r.err == nil && v > uint64(int32(^uint32(0)>>1)) {
		r.fail("%s %d overflows int32", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) bool(what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) == 0 {
		r.fail("truncated payload reading %s", what)
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	if b > 1 {
		r.fail("%s byte is %d, want 0 or 1", what, b)
		return false
	}
	return b == 1
}

func (r *reader) bytes(what string) []byte {
	n := r.intf(what)
	if r.err != nil {
		return nil
	}
	if n > len(r.buf) {
		r.fail("truncated payload reading %s (%d of %d bytes)", what, len(r.buf), n)
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) string(what string) string { return string(r.bytes(what)) }

// done asserts the payload was fully consumed.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return errorf("%d trailing bytes after payload", len(r.buf))
	}
	return nil
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytesField(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}
