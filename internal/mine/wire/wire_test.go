package wire

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// rw glues independent reader and writer halves into an io.ReadWriter so
// one negotiation side can run against canned peer bytes.
type rw struct {
	io.Reader
	io.Writer
}

// negotiate runs both negotiation sides over an in-memory pipe.
func negotiate(t *testing.T, propose, max byte) (cliV, srvV byte) {
	t.Helper()
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	var srvErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		srvV, srvErr = AnswerHandshake(srv, max)
	}()
	cliV, cliErr := ProposeHandshake(cli, propose)
	<-done
	if cliErr != nil || srvErr != nil {
		t.Fatalf("propose %d vs max %d: client err %v, server err %v", propose, max, cliErr, srvErr)
	}
	return cliV, srvV
}

func TestHandshakeNegotiation(t *testing.T) {
	cases := []struct {
		propose, max, want byte
	}{
		{2, 2, 2}, // both current
		{2, 1, 1}, // old worker clamps down
		{1, 2, 1}, // old coordinator stays at 1
		{1, 1, 1},
	}
	for _, tc := range cases {
		cliV, srvV := negotiate(t, tc.propose, tc.max)
		if cliV != tc.want || srvV != tc.want {
			t.Errorf("propose %d vs max %d: agreed (%d, %d), want %d", tc.propose, tc.max, cliV, srvV, tc.want)
		}
	}
}

func TestHandshakeErrors(t *testing.T) {
	frameErr := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: handshake accepted, want error", name)
		} else if _, ok := err.(*FrameError); !ok {
			t.Errorf("%s: error type %T, want *FrameError", name, err)
		}
	}
	for _, tc := range []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"short", "GP"},
		{"bad magic", "NOPE\x01"},
	} {
		_, err := ReadHello(strings.NewReader(tc.data))
		frameErr(tc.name, err)
	}
	// An answerer must reject version 0.
	_, err := AnswerHandshake(&rw{strings.NewReader("GPWK\x00"), io.Discard}, Version)
	frameErr("answer version 0", err)
	// A proposer must reject a reply above its proposal, and a reply of 0.
	_, err = ProposeHandshake(&rw{strings.NewReader("GPWK\x63"), io.Discard}, Version)
	frameErr("reply above proposal", err)
	_, err = ProposeHandshake(&rw{strings.NewReader("GPWK\x00"), io.Discard}, Version)
	frameErr("reply version 0", err)
	// Proposals outside the speakable range are caller bugs, caught early.
	_, err = ProposeHandshake(&rw{strings.NewReader("GPWK\x02"), io.Discard}, Version+1)
	frameErr("proposal out of range", err)
	// A peer that slams the connection instead of answering (the legacy v1
	// behavior on an unknown hello) surfaces as a FrameError — the signal
	// the remote dialer downgrades on.
	_, err = ProposeHandshake(&rw{strings.NewReader(""), io.Discard}, Version)
	frameErr("peer closed during handshake", err)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0xaa}, bytes.Repeat([]byte{7}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, p := range payloads {
		typ, got, newBuf, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = newBuf
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %x, want %x", i, got, p)
		}
	}
	if _, _, _, err := ReadFrame(&buf, scratch, 0); err != io.EOF {
		t.Fatalf("read past last frame: %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// A frame larger than the limit must be rejected without allocation.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeRound, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFrame(&buf, nil, 50); err == nil {
		t.Fatal("oversized frame accepted")
	} else if _, ok := err.(*FrameError); !ok {
		t.Fatalf("oversized frame error type %T, want *FrameError", err)
	}

	// Zero-length frames are a protocol error (the type byte is mandatory).
	if _, _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil, 0); err == nil {
		t.Fatal("zero-length frame accepted")
	}

	// Truncated body.
	trunc := []byte{0, 0, 0, 5, TypeRound, 1, 2}
	if _, _, _, err := ReadFrame(bytes.NewReader(trunc), nil, 0); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// extensions covers the extension shape space: open/closing, both
// directions, Y-flagged, sentinel labels, and max-size ordinals.
func extensions() []pattern.Extension {
	return []pattern.Extension{
		{},
		{Src: 0, Outgoing: true, EdgeLabel: 3, NewLabel: 7, Close: pattern.NoNode},
		{Src: 2, Outgoing: false, EdgeLabel: 0, NewLabel: 0, Close: 1},
		{Src: 1, Outgoing: true, EdgeLabel: 5, NewLabel: 2, Close: pattern.NoNode, AsY: true},
		{Src: math.MaxInt32, Outgoing: true, EdgeLabel: math.MaxInt32, NewLabel: math.MaxInt32, Close: math.MaxInt32},
		{Src: 0, EdgeLabel: graph.NoLabel, NewLabel: graph.NoLabel, Close: pattern.NoNode},
	}
}

func lanes() [][]graph.NodeID {
	return [][]graph.NodeID{
		nil,
		{},
		{0},
		{1, 5, 9, 1 << 30},
		func() []graph.NodeID {
			l := make([]graph.NodeID, 500)
			for i := range l {
				l[i] = graph.NodeID(i * 3)
			}
			return l
		}(),
	}
}

// roundTrip encodes with enc, decodes the bytes with dec, and asserts deep
// equality. Empty non-nil slices normalize to nil on decode, so the caller
// passes want with that normalization applied.
func roundTrip[T any](t *testing.T, enc func([]byte) []byte, dec func([]byte) (*T, error), want *T) {
	t.Helper()
	b := enc(nil)
	got, err := dec(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Every prefix truncation must fail cleanly with a *FrameError.
	for i := 0; i < len(b); i++ {
		if _, err := dec(b[:i]); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", i, len(b))
		} else if _, ok := err.(*FrameError); !ok {
			t.Fatalf("truncation error type %T, want *FrameError", err)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := dec(append(b, 0)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

func TestJobSetupRoundTrip(t *testing.T) {
	s := &JobSetup{
		JobID:         1<<60 + 17,
		Worker:        3,
		D:             2,
		EmbedCap:      64,
		DisableArenas: true,
		XLabel:        4,
		EdgeLabel:     0,
		YLabel:        graph.NoLabel,
		Symbols:       []string{"person", "", "likes", "page"},
		EccCap:        3,
		CenterEcc:     []int32{0, 1, 3, 2},
		Fragment:      []byte("GPFRfragmentbytes"),
	}
	roundTrip(t, s.Append, DecodeJobSetup, s)

	// Minimal setup: no symbols, no centers, empty fragment.
	min := &JobSetup{}
	roundTrip(t, min.Append, DecodeJobSetup, min)
}

func TestJobSetupV2RoundTrip(t *testing.T) {
	decV2 := func(p []byte) (*JobSetup, error) { return DecodeJobSetupV(p, 2) }
	// The hash-only shape the v2 coordinator actually sends.
	s := &JobSetup{
		JobID:     7,
		Worker:    1,
		D:         2,
		EmbedCap:  8,
		XLabel:    1,
		EdgeLabel: 2,
		YLabel:    3,
		Symbols:   []string{"a", "b"},
		EccCap:    3,
		CenterEcc: []int32{1, 2},
		FragHash:  HashFragment([]byte("GPFRfragmentbytes")),
	}
	roundTrip(t, func(dst []byte) []byte { return s.AppendV(dst, 2) }, decV2, s)

	// Inline fragment plus hash (legal; the worker verifies agreement).
	both := &JobSetup{Fragment: []byte("GPFRx"), FragHash: HashFragment([]byte("GPFRx"))}
	roundTrip(t, func(dst []byte) []byte { return both.AppendV(dst, 2) }, decV2, both)

	// v2 decode of a hashless setup (the v1 shape re-encoded under v2).
	min := &JobSetup{}
	roundTrip(t, func(dst []byte) []byte { return min.AppendV(dst, 2) }, decV2, min)

	// A hash of the wrong size is a typed error, not a short hash.
	bad := &JobSetup{FragHash: []byte("short")}
	if _, err := DecodeJobSetupV(bad.AppendV(nil, 2), 2); err == nil {
		t.Fatal("undersized fragment hash accepted")
	} else if _, ok := err.(*FrameError); !ok {
		t.Fatalf("undersized hash error type %T, want *FrameError", err)
	}

	// Version 1 decoding ignores the hash field by construction: the v1
	// layout simply never carries one.
	v1 := s
	got, err := DecodeJobSetupV(v1.Append(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.FragHash != nil {
		t.Fatalf("v1 decode produced a fragment hash: %x", got.FragHash)
	}
}

func TestFragNeedRoundTrip(t *testing.T) {
	f := &FragNeed{Hash: HashFragment([]byte("some fragment"))}
	roundTrip(t, f.Append, DecodeFragNeed, f)

	// Hashes must be exactly HashSize bytes.
	for _, n := range []int{0, 1, HashSize - 1, HashSize + 1} {
		bad := &FragNeed{Hash: bytes.Repeat([]byte{0xab}, n)}
		if _, err := DecodeFragNeed(bad.Append(nil)); err == nil {
			t.Fatalf("%d-byte hash accepted", n)
		} else if _, ok := err.(*FrameError); !ok {
			t.Fatalf("%d-byte hash error type %T, want *FrameError", n, err)
		}
	}
}

func TestFragHaveRoundTrip(t *testing.T) {
	body := []byte("GPFRfragmentbody")
	f := &FragHave{Hash: HashFragment(body), Fragment: body}
	roundTrip(t, f.Append, DecodeFragHave, f)

	empty := &FragHave{Hash: HashFragment(nil)}
	roundTrip(t, empty.Append, DecodeFragHave, empty)

	bad := &FragHave{Hash: []byte{1, 2, 3}, Fragment: body}
	if _, err := DecodeFragHave(bad.Append(nil)); err == nil {
		t.Fatal("undersized hash accepted")
	} else if _, ok := err.(*FrameError); !ok {
		t.Fatalf("undersized hash error type %T, want *FrameError", err)
	}
}

func TestSetupAckRoundTrip(t *testing.T) {
	a := &SetupAck{JobID: 9, NPq: 12345, NPqbar: 0}
	roundTrip(t, a.Append, DecodeSetupAck, a)
	zero := &SetupAck{}
	roundTrip(t, zero.Append, DecodeSetupAck, zero)
}

func TestRoundRoundTrip(t *testing.T) {
	exts := extensions()
	ls := lanes()
	rd := &Round{Round: 4}
	for i, e := range exts {
		fe := FrontierEntry{ID: uint32(i), Parent: uint32(i / 2), Ext: e}
		if l := ls[i%len(ls)]; len(l) > 0 {
			fe.QCenters = l
		}
		rd.Frontier = append(rd.Frontier, fe)
	}
	roundTrip(t, rd.Append, DecodeRound, rd)

	empty := &Round{Round: 1}
	roundTrip(t, empty.Append, DecodeRound, empty)
}

func TestMessagesRoundTrip(t *testing.T) {
	exts := extensions()
	ls := lanes()
	ms := &Messages{Round: 2, Ops: -5}
	for i, e := range exts {
		m := Msg{Parent: uint32(i * 7), Ext: e, Flag: i%2 == 0}
		pick := func(k int) []graph.NodeID {
			if l := ls[(i+k)%len(ls)]; len(l) > 0 {
				return l
			}
			return nil
		}
		m.QCenters, m.RSet, m.QqbCenters, m.UsuppCenters = pick(0), pick(1), pick(2), pick(3)
		ms.Msgs = append(ms.Msgs, m)
	}
	roundTrip(t, ms.Append, DecodeMessages, ms)

	// The all-lanes-empty message exercises the zero-length lane encoding.
	empty := &Messages{Round: 1, Ops: 1 << 40, Msgs: []Msg{{Parent: 0}}}
	roundTrip(t, empty.Append, DecodeMessages, empty)

	none := &Messages{Round: 3}
	roundTrip(t, none.Append, DecodeMessages, none)
}

func TestErrorFrameRoundTrip(t *testing.T) {
	e := &ErrorFrame{Msg: "worker 2: fragment decode failed"}
	roundTrip(t, e.Append, DecodeError, e)
	empty := &ErrorFrame{}
	roundTrip(t, empty.Append, DecodeError, empty)
}

// TestDecodeFuzzish throws random bytes at every payload decoder: errors are
// fine, panics are not.
func TestDecodeFuzzish(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeJobSetup(b); return err },
		func(b []byte) error { _, err := DecodeJobSetupV(b, 2); return err },
		func(b []byte) error { _, err := DecodeSetupAck(b); return err },
		func(b []byte) error { _, err := DecodeRound(b); return err },
		func(b []byte) error { _, err := DecodeMessages(b); return err },
		func(b []byte) error { _, err := DecodeError(b); return err },
		func(b []byte) error { _, err := DecodeFragNeed(b); return err },
		func(b []byte) error { _, err := DecodeFragHave(b); return err },
	}
	for trial := 0; trial < 2000; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		for _, dec := range decoders {
			if err := dec(b); err != nil {
				if _, ok := err.(*FrameError); !ok {
					t.Fatalf("decoder returned %T (%v), want *FrameError", err, err)
				}
			}
		}
	}
}
