package wire

import (
	"crypto/sha256"
	"encoding/binary"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// HashSize is the length of a fragment content hash on the wire.
const HashSize = sha256.Size

// HashFragment returns the content hash keying the worker-side fragment
// cache: SHA-256 over the fragment's canonical binary encoding. Symbols are
// deliberately excluded — labels travel as raw IDs inside the fragment
// bytes and the symbol table rides separately per job, so symbol-table
// growth between jobs cannot invalidate (or poison) cached fragments.
func HashFragment(frag []byte) []byte {
	h := sha256.Sum256(frag)
	return h[:]
}

// JobSetup is the coordinator → worker job preamble: the run parameters a
// localMine superstep needs, the label symbol table (names in label-ID
// order, so decoded fragments and patterns speak the coordinator's label
// IDs), the worker's fragment in its canonical binary form, and the
// extendability table — each owned center's whole-graph eccentricity capped
// at EccCap, which lets a fragment-only worker answer the Lemma 3
// whole-graph probe exactly.
type JobSetup struct {
	JobID         uint64
	Worker        int // this worker's index (message attribution)
	D             int
	EmbedCap      int
	DisableArenas bool

	XLabel, EdgeLabel, YLabel graph.Label

	Symbols   []string
	EccCap    int
	CenterEcc []int32 // parallel to the fragment's Centers
	Fragment  []byte  // partition.Fragment.AppendBinary encoding
	// FragHash (v2+) is HashFragment of the fragment encoding. When the
	// setup carries a hash and no fragment body, the worker resolves the
	// body from its content-addressed cache, answering TypeFragNeed on a
	// miss; the coordinator then ships the body once in TypeFragHave.
	FragHash []byte
}

// Append encodes the setup into dst in the version-1 layout (no FragHash).
func (s *JobSetup) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, s.JobID)
	dst = binary.AppendUvarint(dst, uint64(s.Worker))
	dst = binary.AppendUvarint(dst, uint64(s.D))
	dst = binary.AppendUvarint(dst, uint64(s.EmbedCap))
	dst = appendBool(dst, s.DisableArenas)
	dst = binary.AppendVarint(dst, int64(s.XLabel))
	dst = binary.AppendVarint(dst, int64(s.EdgeLabel))
	dst = binary.AppendVarint(dst, int64(s.YLabel))
	dst = binary.AppendUvarint(dst, uint64(len(s.Symbols)))
	for _, name := range s.Symbols {
		dst = appendString(dst, name)
	}
	dst = binary.AppendUvarint(dst, uint64(s.EccCap))
	dst = binary.AppendUvarint(dst, uint64(len(s.CenterEcc)))
	for _, e := range s.CenterEcc {
		dst = binary.AppendUvarint(dst, uint64(e))
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Fragment)))
	dst = append(dst, s.Fragment...)
	return dst
}

// AppendV encodes the setup into dst in the layout of the given negotiated
// protocol version: version 2 appends FragHash after the v1 fields.
func (s *JobSetup) AppendV(dst []byte, version int) []byte {
	dst = s.Append(dst)
	if version >= 2 {
		dst = appendBytesField(dst, s.FragHash)
	}
	return dst
}

// DecodeJobSetup decodes a TypeJobSetup payload in the version-1 layout.
func DecodeJobSetup(p []byte) (*JobSetup, error) {
	r := reader{buf: p}
	s := decodeJobSetupV1(&r)
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeJobSetupV1 reads the fields common to every setup layout.
func decodeJobSetupV1(r *reader) *JobSetup {
	s := &JobSetup{
		JobID:         r.uvarint("jobID"),
		Worker:        r.intf("worker index"),
		D:             r.intf("d"),
		EmbedCap:      r.intf("embedCap"),
		DisableArenas: r.bool("disableArenas"),
		XLabel:        graph.Label(r.varint("xLabel")),
		EdgeLabel:     graph.Label(r.varint("edgeLabel")),
		YLabel:        graph.Label(r.varint("yLabel")),
	}
	nsym := r.intf("symbol count")
	for i := 0; i < nsym && r.err == nil; i++ {
		s.Symbols = append(s.Symbols, r.string("symbol"))
	}
	s.EccCap = r.intf("eccCap")
	necc := r.intf("eccentricity count")
	for i := 0; i < necc && r.err == nil; i++ {
		s.CenterEcc = append(s.CenterEcc, int32(r.intf("eccentricity")))
	}
	if frag := r.bytes("fragment"); r.err == nil {
		s.Fragment = append([]byte(nil), frag...)
	}
	return s
}

// DecodeJobSetupV decodes a TypeJobSetup payload in the layout of the given
// negotiated protocol version.
func DecodeJobSetupV(p []byte, version int) (*JobSetup, error) {
	if version < 2 {
		return DecodeJobSetup(p)
	}
	r := reader{buf: p}
	s := decodeJobSetupV1(&r)
	if hash := r.bytes("fragment hash"); r.err == nil && len(hash) > 0 {
		if len(hash) != HashSize {
			return nil, errorf("fragment hash is %d bytes, want %d", len(hash), HashSize)
		}
		s.FragHash = append([]byte(nil), hash...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetupAck is the worker → coordinator reply to JobSetup: the round-0
// classification counts |Pq(x, Fi)| and |q̄ ∩ Fi|, whose sums are the
// graph-wide supports every confidence below divides by.
type SetupAck struct {
	JobID       uint64
	NPq, NPqbar int
}

// Append encodes the ack into dst.
func (a *SetupAck) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, a.JobID)
	dst = binary.AppendUvarint(dst, uint64(a.NPq))
	dst = binary.AppendUvarint(dst, uint64(a.NPqbar))
	return dst
}

// DecodeSetupAck decodes a TypeSetupAck payload.
func DecodeSetupAck(p []byte) (*SetupAck, error) {
	r := reader{buf: p}
	a := &SetupAck{
		JobID:  r.uvarint("jobID"),
		NPq:    r.intf("npq"),
		NPqbar: r.intf("npqbar"),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// FrontierEntry ships one frontier rule structurally: its run-wide id, the
// growth step (parent id + extension) the worker replays to rebuild the
// antecedent pattern — pattern.Apply is deterministic, so the rebuilt Q is
// byte-identical to the coordinator's — and the rule's graph-wide Q-match
// centers, which the worker filters down to the ones it owns. ID 0 is the
// seed rule: empty antecedent, every owned center matches, Ext/QCenters
// empty.
type FrontierEntry struct {
	ID       uint32
	Parent   uint32
	Ext      pattern.Extension
	QCenters []graph.NodeID
}

// Round is the coordinator → worker superstep request: install the frontier
// and run localMine over it. The worker answers with Messages for the same
// round number.
type Round struct {
	Round    int
	Frontier []FrontierEntry
}

// Append encodes the round into dst.
func (rd *Round) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(rd.Round))
	dst = binary.AppendUvarint(dst, uint64(len(rd.Frontier)))
	for i := range rd.Frontier {
		fe := &rd.Frontier[i]
		dst = binary.AppendUvarint(dst, uint64(fe.ID))
		dst = binary.AppendUvarint(dst, uint64(fe.Parent))
		dst = appendExtension(dst, fe.Ext)
		dst = appendLane(dst, fe.QCenters)
	}
	return dst
}

// DecodeRound decodes a TypeRound payload.
func DecodeRound(p []byte) (*Round, error) {
	r := reader{buf: p}
	rd := &Round{Round: r.intf("round")}
	n := r.intf("frontier size")
	for i := 0; i < n && r.err == nil; i++ {
		fe := FrontierEntry{
			ID:     uint32(r.intf("rule id")),
			Parent: uint32(r.intf("parent id")),
			Ext:    readExtension(&r),
		}
		fe.QCenters = readLane(&r, "qCenters")
		rd.Frontier = append(rd.Frontier, fe)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rd, nil
}

// Msg is one candidate message of Fig. 4 as it crosses the wire: the
// structural (parent, extension) identity plus the four support lanes of
// global node IDs and the extendability flag.
type Msg struct {
	Parent       uint32
	Ext          pattern.Extension
	QCenters     []graph.NodeID
	RSet         []graph.NodeID
	QqbCenters   []graph.NodeID
	UsuppCenters []graph.NodeID
	Flag         bool
}

// Messages is the worker → coordinator superstep reply: the round's
// candidate messages in the worker's deterministic emission order, plus the
// worker's cumulative match-operation count (the O(t/n) work proxy,
// piggybacked so the coordinator always holds the latest).
type Messages struct {
	Round int
	Ops   int64
	Msgs  []Msg
}

// Append encodes the messages into dst.
func (ms *Messages) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(ms.Round))
	dst = binary.AppendVarint(dst, ms.Ops)
	dst = binary.AppendUvarint(dst, uint64(len(ms.Msgs)))
	for i := range ms.Msgs {
		m := &ms.Msgs[i]
		dst = binary.AppendUvarint(dst, uint64(m.Parent))
		dst = appendExtension(dst, m.Ext)
		dst = appendLane(dst, m.QCenters)
		dst = appendLane(dst, m.RSet)
		dst = appendLane(dst, m.QqbCenters)
		dst = appendLane(dst, m.UsuppCenters)
		dst = appendBool(dst, m.Flag)
	}
	return dst
}

// DecodeMessages decodes a TypeMessages payload.
func DecodeMessages(p []byte) (*Messages, error) {
	r := reader{buf: p}
	ms := &Messages{
		Round: r.intf("round"),
		Ops:   r.varint("ops"),
	}
	n := r.intf("message count")
	for i := 0; i < n && r.err == nil; i++ {
		m := Msg{
			Parent: uint32(r.intf("parent id")),
			Ext:    readExtension(&r),
		}
		m.QCenters = readLane(&r, "qCenters")
		m.RSet = readLane(&r, "rSet")
		m.QqbCenters = readLane(&r, "qqbCenters")
		m.UsuppCenters = readLane(&r, "usuppCenters")
		m.Flag = r.bool("flag")
		ms.Msgs = append(ms.Msgs, m)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ms, nil
}

// ErrorFrame is a typed failure in either direction; the job it belongs to
// is dead, but the connection may serve a future job.
type ErrorFrame struct {
	Msg string
}

// Append encodes the error into dst.
func (e *ErrorFrame) Append(dst []byte) []byte {
	return appendString(dst, e.Msg)
}

// DecodeError decodes a TypeError payload.
func DecodeError(p []byte) (*ErrorFrame, error) {
	r := reader{buf: p}
	e := &ErrorFrame{Msg: r.string("error message")}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}

// FragNeed is the worker → coordinator cache-miss reply to a hash-only
// JobSetup: the worker does not hold the fragment with this content hash
// and needs the body before it can ack the setup. v2+.
type FragNeed struct {
	Hash []byte
}

// Append encodes the request into dst.
func (f *FragNeed) Append(dst []byte) []byte {
	return appendBytesField(dst, f.Hash)
}

// DecodeFragNeed decodes a TypeFragNeed payload.
func DecodeFragNeed(p []byte) (*FragNeed, error) {
	r := reader{buf: p}
	f := &FragNeed{}
	if hash := r.bytes("fragment hash"); r.err == nil {
		f.Hash = append([]byte(nil), hash...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(f.Hash) != HashSize {
		return nil, errorf("fragment hash is %d bytes, want %d", len(f.Hash), HashSize)
	}
	return f, nil
}

// FragHave is the coordinator → worker answer to FragNeed: the fragment
// body for the named content hash. The worker verifies the hash over the
// received bytes before caching — a corrupt body is a typed error, never a
// poisoned cache entry. v2+.
type FragHave struct {
	Hash     []byte
	Fragment []byte
}

// Append encodes the reply into dst.
func (f *FragHave) Append(dst []byte) []byte {
	dst = appendBytesField(dst, f.Hash)
	return appendBytesField(dst, f.Fragment)
}

// DecodeFragHave decodes a TypeFragHave payload.
func DecodeFragHave(p []byte) (*FragHave, error) {
	r := reader{buf: p}
	f := &FragHave{}
	if hash := r.bytes("fragment hash"); r.err == nil {
		f.Hash = append([]byte(nil), hash...)
	}
	if frag := r.bytes("fragment"); r.err == nil {
		f.Fragment = append([]byte(nil), frag...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(f.Hash) != HashSize {
		return nil, errorf("fragment hash is %d bytes, want %d", len(f.Hash), HashSize)
	}
	return f, nil
}

// appendExtension encodes a pattern extension. Src and Close are node
// ordinals within the pattern (Close may be the NoNode sentinel -1, hence
// signed); labels are encoded signed for uniformity with Close, at a cost
// of one bit that varints absorb.
func appendExtension(dst []byte, e pattern.Extension) []byte {
	dst = binary.AppendVarint(dst, int64(e.Src))
	var flags byte
	if e.Outgoing {
		flags |= 1
	}
	if e.AsY {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, int64(e.EdgeLabel))
	dst = binary.AppendVarint(dst, int64(e.NewLabel))
	dst = binary.AppendVarint(dst, int64(e.Close))
	return dst
}

func readExtension(r *reader) pattern.Extension {
	var e pattern.Extension
	e.Src = int(r.varint("ext src"))
	if r.err == nil {
		if len(r.buf) == 0 {
			r.fail("truncated payload reading ext flags")
		} else {
			flags := r.buf[0]
			r.buf = r.buf[1:]
			if flags > 3 {
				r.fail("ext flags byte is %d, want 0-3", flags)
			}
			e.Outgoing = flags&1 != 0
			e.AsY = flags&2 != 0
		}
	}
	e.EdgeLabel = graph.Label(r.varint("ext edge label"))
	e.NewLabel = graph.Label(r.varint("ext new label"))
	e.Close = int(r.varint("ext close"))
	return e
}

// appendLane encodes one center lane: count, then node IDs as uvarints.
func appendLane(dst []byte, lane []graph.NodeID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(lane)))
	for _, v := range lane {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

func readLane(r *reader, what string) []graph.NodeID {
	n := r.intf(what)
	if r.err != nil || n == 0 {
		return nil
	}
	lane := make([]graph.NodeID, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		lane = append(lane, graph.NodeID(r.intf(what)))
	}
	return lane
}
