package mine

import (
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/partition"
	"gpar/internal/pattern"
)

// dmineBenchInput builds the seeded Pokec-like workload shared by the DMine
// benchmarks: fixed seed and a fixed worker count, so per-op numbers are
// comparable across commits (they feed BENCH_mine.json).
func dmineBenchInput() (*graph.Graph, core.Predicate, Options) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(500, 7))
	pred := gen.PokecPredicates(syms)[0]
	opts := Options{K: 10, Sigma: 5, D: 2, Lambda: 0.5, N: 4, MaxEdges: 2}.WithOptimizations()
	return g, pred, opts
}

// BenchmarkDMine times the full optimized BSP mining loop end to end:
// partitioning, levelwise generation, assembly, diversification.
func BenchmarkDMine(b *testing.B) {
	g, pred, opts := dmineBenchInput()
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := DMine(g, pred, opts)
		if len(res.TopK) == 0 {
			b.Fatal("no rules mined")
		}
	}
}

// BenchmarkDMineNo times the unoptimized Section-6 baseline on the same
// workload (no incDiv, no reduction rules, no bisimulation prefilter).
func BenchmarkDMineNo(b *testing.B) {
	g, pred, opts := dmineBenchInput()
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := DMineNo(g, pred, opts)
		if len(res.TopK) == 0 {
			b.Fatal("no rules mined")
		}
	}
}

// BenchmarkLocalMineRound measures one steady-state generate superstep —
// the arena-backed message lifecycle of the mining loop — over a prebuilt
// context: every worker extends the seed frontier, verifies local supports
// on recycled scratch and emits its messages into recycled round arenas.
// Near-zero allocs/op is the acceptance criterion of the arena rewrite
// (the residue is the superstep's goroutine fan-out).
func BenchmarkLocalMineRound(b *testing.B) {
	g, pred, opts := dmineBenchInput()
	opts = opts.Defaults()
	g.Freeze()
	m := newMiner(NewContext(g, pred.XLabel, opts), pred, opts, nil)
	frontier, err := m.prepare()
	if err != nil {
		b.Fatal(err)
	}
	if frontier == nil {
		b.Fatal("trivial workload")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if msgs := m.generate(frontier); len(msgs) == 0 {
			b.Fatal("no messages generated")
		}
	}
}

// BenchmarkDiscoverExtensions isolates the extension-discovery hot loop of
// localMine: enumerate embeddings around every owned center and accumulate
// the distinct single-edge extensions with their supporting centers.
func BenchmarkDiscoverExtensions(b *testing.B) {
	g, pred, opts := dmineBenchInput()
	g.Freeze()
	m := newMiner(NewContext(g, pred.XLabel, opts), pred, opts.Defaults(), nil)
	lp := m.localParams()
	cands := g.NodesWithLabel(pred.XLabel)
	frag := partition.Whole(g, cands)
	frag.G.Freeze()
	w := &worker{id: 0, frag: frag}
	seedQ := pattern.New(g.Symbols())
	seedQ.X = seedQ.AddNodeL(pred.XLabel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accs := w.discoverExtensions(lp, seedQ, frag.Centers, match.Options{})
		if len(accs) == 0 {
			b.Fatal("no extensions discovered")
		}
	}
}
