package mine

import (
	"sync"
	"sync/atomic"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// engine abstracts where the N mining workers execute. The coordinator loop
// (miner.runE) is engine-agnostic: it drives BSP supersteps and runs the
// deterministic assemble/diversify reduce, while the engine owns worker
// placement — goroutines over in-process fragments (localEngine) or remote
// worker services reached over connections (remoteEngine). Both produce the
// same message stream in the same order, so results are byte-identical by
// construction; the differential tests pin it.
//
// Engine errors only occur on the remote path (a worker connection failing
// mid-superstep); the local engine never fails.
type engine interface {
	// attach binds the run's workers, classifies every owned center against
	// the predicate (round 0 — Pq, q̄ and their supports never change), and
	// returns the per-worker (|Pq(x,Fi)|, |q̄ ∩ Fi|) counts.
	attach(m *miner) (npq, npqbar []int, err error)
	// seedFrontier installs the round-1 frontier on every worker: all owned
	// centers match the seed rule's empty antecedent.
	seedFrontier(m *miner) error
	// generate runs the localMine superstep over the frontier on every
	// worker and returns the messages concatenated in worker order.
	generate(m *miner, frontier []*Mined) ([]message, error)
	// distribute hands each frontier rule's Q-match centers back to the
	// workers that own them, for the next round's localMine.
	distribute(m *miner, frontier []*Mined) error
	// numWorkers is the fragment/worker count N.
	numWorkers() int
	// shard exposes assembly shard i's recycled scratch; the coordinator's
	// merge phase runs on these regardless of where the workers execute.
	shard(i int) *asmScratch
	// ops returns the cumulative per-worker match-operation counts.
	ops() []int64
	// close releases worker resources. It is idempotent; runE defers it so
	// workers are returned on every exit path, including errors.
	close(m *miner)
}

// localParams is the slice of coordinator state localMine actually reads —
// extracted from *miner so the same verification code runs inside a remote
// worker service, which has no coordinator.
type localParams struct {
	pred     core.Predicate
	d        int
	embedCap int
	syms     *graph.Symbols
}

// localParams bundles the run parameters a localMine superstep needs.
func (m *miner) localParams() localParams {
	return localParams{pred: m.pred, d: m.opts.D, embedCap: m.opts.EmbedCap, syms: m.g.Symbols()}
}

// localRule is a frontier rule as localMine sees it: its run-wide id and its
// antecedent pattern. Coordinator-side bookkeeping (stats, diversification
// bits) never reaches the workers.
type localRule struct {
	id ruleID
	q  *pattern.Pattern
}

// localEngine runs the workers as goroutines over in-process fragments —
// the single-process mode of DMine/DMineCtx/Shared.DMine.
type localEngine struct {
	// shared is the cross-predicate accumulator, nil for standalone runs
	// (which draw workers from the global pool instead).
	shared  *Shared
	workers []*worker
	msgBuf  []message   // recycled concatenation buffer (generate)
	lrBuf   []localRule // recycled frontier projection (generate)
	closed  bool
}

func (e *localEngine) attach(m *miner) ([]int, []int, error) {
	// The partition + freeze preamble lives on the context; a cached or
	// shared context skips it entirely. Standalone runs draw workers from
	// the global pool (close returns them), so even a cold DMine reuses
	// previously grown arenas and scratch.
	if e.shared != nil {
		e.workers = e.shared.attachWorkers()
	} else {
		e.workers = make([]*worker, len(m.ctx.frags))
		for i, f := range m.ctx.frags {
			e.workers[i] = acquireWorker(i, f, m.g)
		}
	}
	// Arena mode is per run (shared workers may alternate between modes).
	for _, w := range e.workers {
		w.setRecycleMode(m.opts.DisableArenas)
	}
	pred := m.pred
	if err := e.parallel(m, func(w *worker) { w.classify(pred) }); err != nil {
		return nil, nil, err
	}
	npq := make([]int, len(e.workers))
	npqbar := make([]int, len(e.workers))
	for i, w := range e.workers {
		npq[i], npqbar[i] = w.npq, w.npqbar
	}
	return npq, npqbar, nil
}

func (e *localEngine) seedFrontier(m *miner) error {
	for i, w := range e.workers {
		// All owned centers match the empty antecedent. With a shared
		// accumulator the pre-sorted seed frontier is reused across
		// predicates; localMine only ever re-sorts it in place.
		if e.shared != nil {
			w.centersFor[seedID] = e.shared.seed(i)
		} else {
			w.centersFor[seedID] = append([]graph.NodeID(nil), w.frag.Centers...)
		}
	}
	return nil
}

func (e *localEngine) generate(m *miner, frontier []*Mined) ([]message, error) {
	lr := e.lrBuf[:0]
	for _, p := range frontier {
		lr = append(lr, localRule{id: p.id, q: p.Rule.Q})
	}
	e.lrBuf = lr
	lp := m.localParams()
	if err := e.parallel(m, func(w *worker) { w.localMine(lp, lr) }); err != nil {
		return nil, err
	}
	msgs := e.msgBuf[:0]
	for _, w := range e.workers {
		msgs = append(msgs, w.msgs...)
	}
	e.msgBuf = msgs
	return msgs, nil
}

func (e *localEngine) distribute(m *miner, frontier []*Mined) error {
	return e.parallel(m, func(w *worker) {
		w.beginFrontier()
		for _, mined := range frontier {
			w.setFrontierCenters(mined.id, mined.qCenters)
		}
	})
}

func (e *localEngine) numWorkers() int         { return len(e.workers) }
func (e *localEngine) shard(i int) *asmScratch { return &e.workers[i].asm }

func (e *localEngine) ops() []int64 {
	out := make([]int64, 0, len(e.workers))
	for _, w := range e.workers {
		out = append(out, w.ops)
	}
	return out
}

func (e *localEngine) close(m *miner) {
	if e.closed {
		return
	}
	e.closed = true
	// Standalone workers return to the pool; a Shared accumulator keeps its
	// workers (their memoized probes are part of the cross-run reuse).
	if e.shared == nil {
		for _, w := range e.workers {
			w.release()
		}
	}
	e.workers = nil
}

// parallel runs fn on every worker concurrently and waits (one BSP
// superstep). A configured Gate bounds how many run at once; results never
// depend on the interleaving, only on the per-worker outputs. A done
// Options.Ctx makes workers skip fn — both while queued on the gate and
// once scheduled — and the superstep reports the context error: a partial
// superstep (some workers ran, some skipped) must never reach assembly, so
// the coordinator abandons the round entirely.
func (e *localEngine) parallel(m *miner, fn func(w *worker)) error {
	ctx, gate := m.opts.Ctx, m.opts.Gate
	var skipped atomic.Bool
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if gate != nil {
				if err := gate.acquireCtx(ctx); err != nil {
					skipped.Store(true)
					return
				}
				defer gate.release()
			}
			if ctx != nil && ctx.Err() != nil {
				skipped.Store(true)
				return
			}
			fn(w)
		}(w)
	}
	wg.Wait()
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}

// classify computes Pq, q̄ and their supports over the worker's owned
// centers (round 0 — they never change for the run). The q-edge scan walks
// the frozen fragment's CSR label range for the predicate's edge label
// instead of the full out-adjacency.
func (w *worker) classify(pred core.Predicate) {
	n := w.frag.G.NumNodes()
	if len(w.pq) == n { // shared worker: reuse the classification buffers
		clear(w.pq)
		clear(w.pqbar)
	} else {
		w.pq = make([]bool, n)
		w.pqbar = make([]bool, n)
	}
	for _, c := range w.frag.Centers {
		qEdges := w.frag.G.OutRangeL(c, pred.EdgeLabel)
		hasMatch := false
		for _, e := range qEdges {
			if w.frag.G.Label(e.To) == pred.YLabel {
				hasMatch = true
				break
			}
		}
		if hasMatch {
			w.pq[c] = true
			w.npq++
		} else if len(qEdges) > 0 {
			w.pqbar[c] = true
			w.npqbar++
		}
	}
}

// beginFrontier starts a new frontier hand-off: previous entries are
// dropped (they would otherwise alias the recycled lane and pin the map
// forever) and the frontier lane is reclaimed — by this point the previous
// round's frontier views have all been consumed by localMine.
func (w *worker) beginFrontier() {
	clear(w.centersFor)
	w.ar.frontier.reset()
}

// setFrontierCenters installs one frontier rule's next-round center list:
// the subset of its Q-match centers (global IDs) this worker owns, as local
// IDs carved from the frontier lane.
func (w *worker) setFrontierCenters(id ruleID, qCenters []graph.NodeID) {
	mark := w.ar.frontier.mark()
	for _, gv := range qCenters {
		if lv, ok := w.frag.Local(gv); ok && w.ownsCenter(lv) {
			w.ar.frontier.push(lv)
		}
	}
	w.centersFor[id] = w.ar.frontier.take(mark)
}
