package mine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/mine/wire"
	"gpar/internal/partition"
	"gpar/internal/pattern"
)

// This file is distributed DMine: the same coordinator loop (miner.runE)
// driving workers that live in other processes. The remoteEngine implements
// the engine interface over wire-protocol connections — job setup ships
// each worker its fragment, symbols and extendability table; every
// superstep ships the frontier structurally (id, parent, extension,
// Q-centers) and receives the worker's candidate messages back — and the
// WorkerRuntime is the other end: the per-job state a worker service keeps
// between frames, running the unmodified localMine over a decoded fragment.
//
// Determinism carries over wire boundaries by construction: workers emit in
// the same (frontier, extension) order as in-process goroutines, frames
// preserve that order, and the coordinator's assemble reduce re-sorts by
// group key exactly as before — so distributed results are byte-identical
// to DMineCtx on the same context. The differential tests in
// internal/mine/remote pin it over real TCP.

// WorkerConn is one remote worker as the coordinator sees it: a blocking
// request/reply channel for the three job phases. Implementations own
// transport concerns — framing, deadlines, connection reuse; the canonical
// one is internal/mine/remote's TCP client. Calls on different WorkerConns
// happen concurrently (one goroutine per worker), calls on one WorkerConn
// are sequential.
type WorkerConn interface {
	// Setup starts a job on the worker and blocks for its classification
	// counts.
	Setup(s *wire.JobSetup) (*wire.SetupAck, error)
	// Mine runs one superstep: the worker installs the frontier, runs
	// localMine, and replies with its messages.
	Mine(rd *wire.Round) (*wire.Messages, error)
	// Finish ends the job, leaving the connection ready for the next one.
	Finish() error
}

// CancelableConn is the optional WorkerConn extension the coordinator uses
// to abandon a superstep that is already in flight: Cancel must unwedge any
// blocked exchange promptly (the subsequent call on the connection fails
// instead of waiting out its deadline) and may notify the worker so it
// drops the job state early. Connections without it are simply left to
// their per-step deadline, which bounds the hang either way.
type CancelableConn interface {
	Cancel()
}

// WorkerError is the typed failure of a distributed run: which worker broke
// the superstep, and how. The job fails cleanly — no partial Σ is ever
// installed, because the coordinator returns before diversification — but
// other workers may still carry the dead job until their deadline fires;
// the remote package's connections are single-job, so abandoning them is
// the cleanup.
type WorkerError struct {
	Worker int
	Err    error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("mine: worker %d: %v", e.Worker, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// jobIDs distinguishes concurrent distributed jobs in logs and frames; IDs
// are process-local and never influence results.
var jobIDs atomic.Uint64

// DMineDistributed mines pred over ctx's fragments placed on remote
// workers, one per connection (len(conns) must equal opts.N and the
// context's fragment count). The coordinator keeps the whole graph — it
// partitions, ships fragments, and runs the deterministic assemble and
// diversification — while generate supersteps run on the workers. The
// result is byte-identical to DMineCtx(ctx, pred, opts); the error is a
// *WorkerError as soon as any worker fails a superstep.
func DMineDistributed(ctx *Context, pred core.Predicate, opts Options, conns []WorkerConn) (*Result, error) {
	opts = opts.Defaults()
	if err := ctx.check(pred, opts); err != nil {
		return nil, err
	}
	if len(conns) != ctx.n {
		return nil, fmt.Errorf("mine: %d worker connections for %d fragments", len(conns), ctx.n)
	}
	m := newMiner(ctx, pred, opts, nil)
	m.eng = &remoteEngine{conns: conns, jobID: jobIDs.Add(1)}
	return m.runE()
}

// remoteEngine drives the BSP supersteps over worker connections. Assembly
// shards — coordinator work — live here, one per worker, so mergeShards
// parallelism is unchanged; the per-worker ops slice mirrors the latest
// cumulative counts piggybacked on each Messages frame.
type remoteEngine struct {
	conns []WorkerConn
	jobID uint64

	shards  []asmScratch
	workOps []int64
	round   int

	frontBuf []wire.FrontierEntry // recycled Round frame scratch
	msgBuf   []message            // recycled concatenation buffer
	setupBuf []byte               // recycled frame encode buffer
	closed   bool
}

// fanOut runs fn per worker concurrently and returns the lowest-indexed
// failure wrapped as a *WorkerError (lowest-indexed so the reported error
// does not depend on goroutine scheduling).
func (e *remoteEngine) fanOut(fn func(i int, c WorkerConn) error) error {
	errs := make([]error, len(e.conns))
	var wg sync.WaitGroup
	for i, c := range e.conns {
		wg.Add(1)
		go func(i int, c WorkerConn) {
			defer wg.Done()
			errs[i] = fn(i, c)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if _, ok := err.(*WorkerError); ok {
				return err
			}
			return &WorkerError{Worker: i, Err: err}
		}
	}
	return nil
}

// fanOutCtx is fanOut with mid-superstep cancellation: while the fan-out is
// in flight, a watcher cancels every CancelableConn as soon as ctx is done,
// so a superstep blocked on a stalled worker unwedges immediately instead
// of waiting out its step deadline. The coordinator maps the resulting
// transport error back to a *CanceledError (miner.wrapCanceled). Contexts
// with a nil Done channel (the poll-only test contexts) fall back to the
// coordinator's superstep-boundary polls.
func (e *remoteEngine) fanOutCtx(ctx context.Context, fn func(i int, c WorkerConn) error) error {
	if ctx == nil || ctx.Done() == nil {
		return e.fanOut(fn)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			for _, c := range e.conns {
				if cc, ok := c.(CancelableConn); ok {
					cc.Cancel()
				}
			}
		case <-stop:
		}
	}()
	err := e.fanOut(fn)
	close(stop)
	<-done
	return err
}

func (e *remoteEngine) attach(m *miner) ([]int, []int, error) {
	e.shards = make([]asmScratch, len(e.conns))
	for i := range e.shards {
		e.shards[i].arena.noRecycle = m.opts.DisableArenas
	}
	e.workOps = make([]int64, len(e.conns))
	syms := m.g.Symbols().Names()
	eccCap := m.opts.MaxEdges + 1
	npq := make([]int, len(e.conns))
	npqbar := make([]int, len(e.conns))
	err := e.fanOutCtx(m.opts.Ctx, func(i int, c WorkerConn) error {
		frag := m.ctx.frags[i]
		// Per-center whole-graph eccentricities, capped at the deepest
		// probe the run can issue — the worker's substitute for the whole
		// graph in the Lemma 3 extendability check.
		ecc := make([]int32, len(frag.Centers))
		for j, lc := range frag.Centers {
			ecc[j] = int32(m.g.EccentricityCapped(frag.Global(lc), eccCap))
		}
		fragBytes, fragHash := m.ctx.WireFragment(i)
		setup := &wire.JobSetup{
			JobID:         e.jobID,
			Worker:        i,
			D:             m.opts.D,
			EmbedCap:      m.opts.EmbedCap,
			DisableArenas: m.opts.DisableArenas,
			XLabel:        m.pred.XLabel,
			EdgeLabel:     m.pred.EdgeLabel,
			YLabel:        m.pred.YLabel,
			Symbols:       syms,
			EccCap:        eccCap,
			CenterEcc:     ecc,
			Fragment:      fragBytes,
			FragHash:      fragHash,
		}
		ack, err := c.Setup(setup)
		if err != nil {
			return err
		}
		if ack.JobID != e.jobID {
			return fmt.Errorf("setup ack for job %d, want %d", ack.JobID, e.jobID)
		}
		npq[i], npqbar[i] = ack.NPq, ack.NPqbar
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return npq, npqbar, nil
}

// seedFrontier is a no-op: the seed travels as frontier entry 0 of the
// first Round frame, and workers know entry 0 means "all owned centers".
func (e *remoteEngine) seedFrontier(m *miner) error { return nil }

func (e *remoteEngine) generate(m *miner, frontier []*Mined) ([]message, error) {
	e.round++
	entries := e.frontBuf[:0]
	for _, p := range frontier {
		entries = append(entries, wire.FrontierEntry{
			ID:       uint32(p.id),
			Parent:   uint32(p.parent),
			Ext:      p.ext,
			QCenters: p.qCenters,
		})
	}
	e.frontBuf = entries
	rd := &wire.Round{Round: e.round, Frontier: entries}
	replies := make([]*wire.Messages, len(e.conns))
	err := e.fanOutCtx(m.opts.Ctx, func(i int, c WorkerConn) error {
		ms, err := c.Mine(rd)
		if err != nil {
			return err
		}
		if ms.Round != e.round {
			return fmt.Errorf("messages for round %d, want %d", ms.Round, e.round)
		}
		replies[i] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	msgs := e.msgBuf[:0]
	for i, ms := range replies {
		e.workOps[i] = ms.Ops
		for j := range ms.Msgs {
			wm := &ms.Msgs[j]
			msgs = append(msgs, message{
				worker:       i,
				parent:       ruleID(wm.Parent),
				ext:          wm.Ext,
				qCenters:     wm.QCenters,
				rSet:         wm.RSet,
				qqbCenters:   wm.QqbCenters,
				usuppCenters: wm.UsuppCenters,
				flag:         wm.Flag,
			})
		}
	}
	e.msgBuf = msgs
	return msgs, nil
}

// distribute is a no-op: the frontier hand-off piggybacks on the next
// round's Round frame (generate receives the same frontier distribute
// would ship), halving the superstep round trips.
func (e *remoteEngine) distribute(m *miner, frontier []*Mined) error { return nil }

func (e *remoteEngine) numWorkers() int         { return len(e.conns) }
func (e *remoteEngine) shard(i int) *asmScratch { return &e.shards[i] }

func (e *remoteEngine) ops() []int64 {
	out := make([]int64, len(e.workOps))
	copy(out, e.workOps)
	return out
}

// close ends the job on every worker, best-effort: on the error path some
// connections are already broken and their Finish just fails fast.
func (e *remoteEngine) close(m *miner) {
	if e.closed {
		return
	}
	e.closed = true
	_ = e.fanOut(func(i int, c WorkerConn) error { return c.Finish() })
}

// ---------------------------------------------------------------------------
// Worker side

// WorkerRuntime is one mining job on a remote worker: the decoded fragment
// bound to a fresh worker state, the job's parameters, and the frontier
// pattern table the superstep loop rotates. A runtime serves exactly one
// job; the service layer (internal/mine/remote) creates one per JobSetup
// frame and drives it with Round frames until Finish.
//
// Patterns are rebuilt structurally: entry 0 is the seed (single x node),
// and every other frontier entry names a parent in the previous round's
// frontier plus the extension to apply — pattern.Apply is deterministic, so
// the rebuilt antecedents equal the coordinator's materializations.
type WorkerRuntime struct {
	w    *worker
	lp   localParams
	seed *pattern.Pattern

	rules map[uint32]*pattern.Pattern // previous round's frontier patterns
	next  map[uint32]*pattern.Pattern
	lr    []localRule // recycled frontier projection
	round int
	out   wire.Messages // recycled reply
}

// NewWorkerRuntime builds the job state from a setup frame and returns the
// ack the coordinator is waiting for (the round-0 classification counts).
func NewWorkerRuntime(s *wire.JobSetup) (*WorkerRuntime, *wire.SetupAck, error) {
	syms := graph.NewSymbols()
	for _, name := range s.Symbols {
		syms.Intern(name)
	}
	frag, rest, err := partition.DecodeFragment(s.Fragment, syms)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("mine: %d trailing bytes after fragment", len(rest))
	}
	return newWorkerRuntime(s, frag, syms)
}

// NewWorkerRuntimeFragment builds the job state over an already-decoded
// fragment — the worker-side fragment cache path, which skips the
// decode+freeze entirely. The fragment must be the decode of the bytes the
// setup's content hash names; it is read read-only, so one cached fragment
// may back concurrent runtimes.
func NewWorkerRuntimeFragment(s *wire.JobSetup, frag *partition.Fragment) (*WorkerRuntime, *wire.SetupAck, error) {
	syms := graph.NewSymbols()
	for _, name := range s.Symbols {
		syms.Intern(name)
	}
	return newWorkerRuntime(s, frag, syms)
}

func newWorkerRuntime(s *wire.JobSetup, frag *partition.Fragment, syms *graph.Symbols) (*WorkerRuntime, *wire.SetupAck, error) {
	if len(s.CenterEcc) != len(frag.Centers) {
		return nil, nil, fmt.Errorf("mine: %d eccentricities for %d centers", len(s.CenterEcc), len(frag.Centers))
	}
	// The eccentricity table is indexed by local node ID; installing it
	// (even empty) switches every extendability probe off the whole graph,
	// which a remote worker does not have.
	ecc := make([]int32, frag.G.NumNodes())
	for j, lc := range frag.Centers {
		ecc[lc] = s.CenterEcc[j]
	}
	pred := core.Predicate{XLabel: s.XLabel, EdgeLabel: s.EdgeLabel, YLabel: s.YLabel}
	w := acquireWorker(s.Worker, frag, nil)
	w.ecc = ecc
	w.setRecycleMode(s.DisableArenas)
	w.classify(pred)

	seedQ := pattern.New(syms)
	seedQ.X = seedQ.AddNodeL(s.XLabel)
	rt := &WorkerRuntime{
		w:     w,
		lp:    localParams{pred: pred, d: s.D, embedCap: s.EmbedCap, syms: syms},
		seed:  seedQ,
		rules: make(map[uint32]*pattern.Pattern),
		next:  make(map[uint32]*pattern.Pattern),
	}
	return rt, &wire.SetupAck{JobID: s.JobID, NPq: w.npq, NPqbar: w.npqbar}, nil
}

// Round runs one superstep: install the frame's frontier (rebuilding each
// antecedent from its parent + extension), run localMine, and return the
// reply frame. The returned Messages aliases runtime-owned storage that the
// next Round call overwrites; callers encode it before continuing.
func (rt *WorkerRuntime) Round(rd *wire.Round) (*wire.Messages, error) {
	rt.round++
	if rd.Round != rt.round {
		return nil, fmt.Errorf("mine: round frame %d, want %d", rd.Round, rt.round)
	}
	w := rt.w
	w.beginFrontier()
	// Rotate the pattern table: parents always sit in the previous round's
	// frontier (or are the seed), so only that generation is retained.
	rt.rules, rt.next = rt.next, rt.rules
	clear(rt.next)
	lr := rt.lr[:0]
	for i := range rd.Frontier {
		fe := &rd.Frontier[i]
		var q *pattern.Pattern
		if fe.ID == uint32(seedID) {
			// The seed's frontier is every owned center; its centers lane
			// never crosses the wire.
			q = rt.seed
			w.centersFor[seedID] = append(w.centersFor[seedID][:0], w.frag.Centers...)
		} else {
			parent := rt.rules[fe.Parent]
			if fe.Parent == uint32(seedID) {
				parent = rt.seed
			}
			if parent == nil {
				return nil, fmt.Errorf("mine: frontier rule %d names unknown parent %d", fe.ID, fe.Parent)
			}
			q = parent.Apply(fe.Ext)
			if q == nil {
				return nil, fmt.Errorf("mine: frontier rule %d: extension inapplicable to parent %d", fe.ID, fe.Parent)
			}
			w.setFrontierCenters(ruleID(fe.ID), fe.QCenters)
		}
		rt.next[fe.ID] = q
		lr = append(lr, localRule{id: ruleID(fe.ID), q: q})
	}
	rt.lr = lr
	w.localMine(rt.lp, lr)

	out := &rt.out
	out.Round = rd.Round
	out.Ops = w.ops
	out.Msgs = out.Msgs[:0]
	for i := range w.msgs {
		msg := &w.msgs[i]
		out.Msgs = append(out.Msgs, wire.Msg{
			Parent:       uint32(msg.parent),
			Ext:          msg.ext,
			QCenters:     msg.qCenters,
			RSet:         msg.rSet,
			QqbCenters:   msg.qqbCenters,
			UsuppCenters: msg.usuppCenters,
			Flag:         msg.flag,
		})
	}
	return out, nil
}

// Close releases the runtime's worker back to the pool. The runtime is dead
// afterwards.
func (rt *WorkerRuntime) Close() {
	if rt.w != nil {
		rt.w.ecc = nil
		rt.w.release()
		rt.w = nil
	}
}
