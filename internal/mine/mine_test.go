package mine

import (
	"math"
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

func baseOpts() Options {
	return Options{
		K:        4,
		Sigma:    1,
		D:        2,
		Lambda:   0.5,
		N:        3,
		MaxEdges: 3,
	}.WithOptimizations()
}

// TestDMineFindsRulesOnG1 mines the paper's restaurant graph and checks the
// structural guarantees of the DMP problem statement: every reported rule is
// nontrivial, has supp ≥ σ, r(PR,x) ≤ d, and its reported statistics agree
// with the sequential reference evaluation.
func TestDMineFindsRulesOnG1(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	res := DMine(f.G, pred, baseOpts())
	if len(res.TopK) == 0 {
		t.Fatal("DMine found no rules on G1")
	}
	if len(res.TopK) > 4 {
		t.Fatalf("TopK larger than k: %d", len(res.TopK))
	}
	for _, mm := range res.TopK {
		if !mm.Rule.Nontrivial() {
			t.Errorf("trivial rule reported: %s", mm.Rule)
		}
		if mm.Stats.SuppR < 1 {
			t.Errorf("rule below σ: %s supp=%d", mm.Rule, mm.Stats.SuppR)
		}
		if r := mm.Rule.Radius(); r > 2 {
			t.Errorf("radius bound violated: %d for %s", r, mm.Rule)
		}
		// Re-evaluate sequentially and compare.
		ref := core.Eval(f.G, mm.Rule, match.Options{}, false)
		if ref.Stats.SuppR != mm.Stats.SuppR {
			t.Errorf("%s: mined supp(R)=%d reference=%d", mm.Rule, mm.Stats.SuppR, ref.Stats.SuppR)
		}
		if ref.Stats.SuppQqb != mm.Stats.SuppQqb {
			t.Errorf("%s: mined supp(Qq̄)=%d reference=%d", mm.Rule, mm.Stats.SuppQqb, ref.Stats.SuppQqb)
		}
		if got, want := mm.Conf, ref.Stats.Conf(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: mined conf=%v reference=%v", mm.Rule, got, want)
		}
	}
	if res.Rounds == 0 || res.Generated == 0 {
		t.Error("no rounds or candidates recorded")
	}
	if len(res.WorkerOps) != 3 {
		t.Errorf("WorkerOps = %v want 3 workers", res.WorkerOps)
	}
}

// TestDMineDiscoversHighConfidenceFriendRule: on G1, the rule "x friend x',
// x' visits y" predicts visits with BF confidence 1.0 (all five q-matches
// satisfy it, and the one q̄ node matches its antecedent). With λ = 0 the
// objective is pure confidence, so the top-k must contain a conf-1.0 rule.
func TestDMineDiscoversHighConfidenceFriendRule(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opts := baseOpts()
	opts.K = 2
	opts.Lambda = 0
	res := DMine(f.G, pred, opts)
	best := 0.0
	for _, mm := range res.TopK {
		if mm.Conf > best {
			best = mm.Conf
		}
	}
	if best < 1.0-1e-9 {
		t.Errorf("best confidence %v; expected a conf-1.0 rule in top-k", best)
	}
}

// TestDMineDeterministic: identical inputs yield identical outputs.
func TestDMineDeterministic(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	r1 := DMine(f.G, pred, baseOpts())
	r2 := DMine(f.G, pred, baseOpts())
	if r1.F != r2.F || len(r1.TopK) != len(r2.TopK) {
		t.Fatalf("nondeterministic: F %v vs %v, k %d vs %d", r1.F, r2.F, len(r1.TopK), len(r2.TopK))
	}
	for i := range r1.TopK {
		if !r1.TopK[i].Rule.Q.IsomorphicTo(r2.TopK[i].Rule.Q) {
			t.Errorf("rule %d differs across runs", i)
		}
	}
}

// TestDMineNoAgreesOnQuality: the unoptimized baseline must reach an
// objective value in the same approximation band (both are 2-approximations
// of the same optimum), and DMine must do no more isomorphism checks.
func TestDMineNoAgreesOnQuality(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opt := DMine(f.G, pred, baseOpts())
	no := DMineNo(f.G, pred, baseOpts())
	if no.F <= 0 || opt.F <= 0 {
		t.Fatalf("objectives: DMine %v DMineNo %v", opt.F, no.F)
	}
	if opt.F < no.F/2-1e-9 || no.F < opt.F/2-1e-9 {
		t.Errorf("objectives outside mutual 2-approx band: %v vs %v", opt.F, no.F)
	}
	if opt.BisimSkips == 0 {
		t.Error("bisim prefilter never fired on DMine")
	}
	if no.BisimSkips != 0 {
		t.Error("DMineNo should not use the prefilter")
	}
}

// TestDMineSigmaFilters: raising σ above the graph's best support yields no
// rules; σ is applied to supp(R,G).
func TestDMineSigmaFilters(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opts := baseOpts()
	opts.Sigma = 100
	res := DMine(f.G, pred, opts)
	if len(res.TopK) != 0 {
		t.Errorf("σ=100 should filter everything, got %d rules", len(res.TopK))
	}
	// σ = 5 keeps only rules with full-support: the friend/visit rule has
	// supp 5.
	opts.Sigma = 5
	res = DMine(f.G, pred, opts)
	for _, mm := range res.TopK {
		if mm.Stats.SuppR < 5 {
			t.Errorf("rule below σ=5: supp=%d", mm.Stats.SuppR)
		}
	}
}

// TestDMineTrivialPredicate: a predicate with no support in G returns an
// empty result (trivial case 1 of Section 3).
func TestDMineTrivialPredicate(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := core.Predicate{
		XLabel:    syms.Intern(gen.LCust),
		EdgeLabel: syms.Intern("never"),
		YLabel:    syms.Intern(gen.LFrench),
	}
	res := DMine(f.G, pred, baseOpts())
	if len(res.TopK) != 0 {
		t.Errorf("trivial predicate mined %d rules", len(res.TopK))
	}
}

// TestDMineRadiusBound: with d=1 every mined rule has radius ≤ 1.
func TestDMineRadiusBound(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opts := baseOpts()
	opts.D = 1
	res := DMine(f.G, pred, opts)
	for _, mm := range res.TopK {
		if r := mm.Rule.Radius(); r > 1 {
			t.Errorf("d=1 violated: radius %d for %s", r, mm.Rule)
		}
	}
}

// TestDMineWorkerCounts: more workers means the max per-worker load drops
// or stays equal (the O(t/n) shape on a work-count proxy).
func TestDMineWorkerLoadSplits(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opts := baseOpts()
	opts.N = 1
	one := DMine(f.G, pred, opts)
	opts.N = 3
	three := DMine(f.G, pred, opts)
	if three.MaxWorkerOp > one.MaxWorkerOp {
		t.Errorf("max worker load grew with more workers: %d -> %d",
			one.MaxWorkerOp, three.MaxWorkerOp)
	}
	// Results must agree regardless of n.
	if math.Abs(one.F-three.F) > 1e-9 {
		t.Errorf("F differs across worker counts: %v vs %v", one.F, three.F)
	}
}

// TestDMineEcuador reproduces the Example 6/7 scenario end to end: mining
// like(person, Shakira album) must discover the "lives in Ecuador" rule
// with BF confidence 1 under the LCWA.
func TestDMineEcuador(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	ec := g.AddNode("Ecuador")
	shak := g.AddNode("Shakira album")
	mj := g.AddNode("MJ album")
	v1 := g.AddNode("person")
	v2 := g.AddNode("person")
	v3 := g.AddNode("person")
	for _, v := range []graph.NodeID{v1, v2, v3} {
		g.AddEdge(v, ec, "live_in")
	}
	g.AddEdge(v1, shak, "like")
	g.AddEdge(v2, mj, "like")

	pred := core.Predicate{
		XLabel:    syms.Intern("person"),
		EdgeLabel: syms.Intern("like"),
		YLabel:    syms.Intern("Shakira album"),
	}
	opts := baseOpts()
	opts.K = 2
	res := DMine(g, pred, opts)
	if len(res.TopK) == 0 {
		t.Fatal("no rules found")
	}
	found := false
	for _, mm := range res.TopK {
		for _, e := range mm.Rule.Q.Edges() {
			if mm.Rule.Q.Symbols().Name(e.Label) == "live_in" && mm.Conf == 1.0 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected a conf-1 live_in rule; got %v", describe(res))
	}
}

func describe(res *Result) []string {
	var out []string
	for _, mm := range res.TopK {
		out = append(out, mm.Rule.String())
	}
	return out
}

// TestSeedFrontierHandling: a graph with zero candidates for x still
// terminates cleanly.
func TestDMineNoCandidates(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	g.AddNode("city")
	pred := core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("rest"),
	}
	res := DMine(g, pred, baseOpts())
	if len(res.TopK) != 0 {
		t.Error("rules mined from an empty candidate set")
	}
}

// TestMaxCandidatesPerRound: the cap keeps the highest-support candidates.
func TestMaxCandidatesPerRound(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)
	opts := baseOpts()
	opts.MaxCandidatesPerRound = 2
	res := DMine(f.G, pred, opts)
	if res.Kept > 2*opts.MaxEdges {
		t.Errorf("cap not applied: kept %d", res.Kept)
	}
}

// TestMinedAccessors covers Key and the seed pattern plumbing.
func TestMinedAccessors(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	res := DMine(f.G, gen.VisitPredicate(syms), baseOpts())
	if len(res.TopK) == 0 {
		t.Skip("no rules")
	}
	if res.TopK[0].Key() == "" {
		t.Error("empty rule key")
	}
}

// TestAdmissibleRejectsConsequentInQ: growth must never produce an
// antecedent containing q(x,y) itself.
func TestAdmissibleRejectsConsequentInQ(t *testing.T) {
	syms := graph.NewSymbols()
	pred := core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("rest"),
	}
	q := pattern.New(syms)
	x := q.AddNode("cust")
	y := q.AddNode("rest")
	q.AddEdge(x, y, "visit")
	q.X, q.Y = x, y
	r := &core.Rule{Q: q, Pred: pred}
	if admissible(pred, q, r.PR(), baseOpts().D) {
		t.Error("rule with q(x,y) in Q admitted")
	}
}
