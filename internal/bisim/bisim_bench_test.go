package bisim

import (
	"math/rand"
	"testing"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// Micro-benchmark backing Lemma 4's point: the bisimulation summary is far
// cheaper than an exact isomorphism test, so using it as a prefilter saves
// work whenever patterns differ.

func randomPatterns(n int) []*pattern.Pattern {
	rng := rand.New(rand.NewSource(1))
	syms := graph.NewSymbols()
	labels := []string{"a", "b", "c", "d"}
	out := make([]*pattern.Pattern, n)
	for i := range out {
		p := pattern.New(syms)
		k := 4 + rng.Intn(4)
		for j := 0; j < k; j++ {
			p.AddNode(labels[rng.Intn(4)])
			if j > 0 {
				p.AddEdge(rng.Intn(j), j, "e")
			}
		}
		p.X = 0
		out[i] = p
	}
	return out
}

func BenchmarkSummarize(b *testing.B) {
	ps := randomPatterns(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(ps[i%len(ps)])
	}
}

func BenchmarkPairwiseBisimVsIso(b *testing.B) {
	ps := randomPatterns(32)
	b.Run("bisim-prefilter", func(b *testing.B) {
		sums := make([]Summary, len(ps))
		for i, p := range ps {
			sums[i] = Summarize(p)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for a := 0; a < len(ps); a++ {
				for c := a + 1; c < len(ps); c++ {
					if sums[a].Equal(sums[c]) {
						ps[a].IsomorphicTo(ps[c])
					}
				}
			}
		}
	})
	b.Run("exact-iso-always", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for a := 0; a < len(ps); a++ {
				for c := a + 1; c < len(ps); c++ {
					ps[a].IsomorphicTo(ps[c])
				}
			}
		}
	})
}
