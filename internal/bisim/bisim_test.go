package bisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

func twoNode(syms *graph.Symbols, la, lb, le string) *pattern.Pattern {
	p := pattern.New(syms)
	a := p.AddNode(la)
	b := p.AddNode(lb)
	p.AddEdge(a, b, le)
	p.X = a
	return p
}

func TestIdenticalPatternsBisimilar(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "b", "e")
	q := twoNode(syms, "a", "b", "e")
	if !Bisimilar(p, q) {
		t.Error("identical patterns not bisimilar")
	}
}

func TestDifferentLabelsNotBisimilar(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "b", "e")
	q := twoNode(syms, "a", "c", "e")
	r := twoNode(syms, "a", "b", "f")
	if Bisimilar(p, q) {
		t.Error("node-label difference not detected")
	}
	if Bisimilar(p, r) {
		t.Error("edge-label difference not detected")
	}
}

func TestDesignationMatters(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "a", "e")
	q := twoNode(syms, "a", "a", "e")
	q.X = 1 // designate the other endpoint
	if Bisimilar(p, q) {
		t.Error("x designation difference not detected")
	}
}

// TestBisimilarButNotIsomorphic exercises the one-way nature of Lemma 4: a
// 2-cycle and a 4-cycle of identical labels are bisimilar but not
// isomorphic, so the prefilter passes them and exact isomorphism rejects.
func TestBisimilarButNotIsomorphic(t *testing.T) {
	syms := graph.NewSymbols()
	mkCycle := func(n int) *pattern.Pattern {
		p := pattern.New(syms)
		for i := 0; i < n; i++ {
			p.AddNode("a")
		}
		for i := 0; i < n; i++ {
			p.AddEdge(i, (i+1)%n, "e")
		}
		return p
	}
	c2, c4 := mkCycle(2), mkCycle(4)
	if !Bisimilar(c2, c4) {
		t.Error("uniform cycles should be bisimilar")
	}
	if c2.IsomorphicTo(c4) {
		t.Error("different-size cycles reported isomorphic")
	}
}

// TestLemma4Soundness: isomorphic patterns are always bisimilar — the
// contrapositive of Lemma 4 that makes the prefilter safe.
func TestLemma4Soundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := graph.NewSymbols()
		labels := []string{"a", "b", "c"}
		n := 2 + rng.Intn(5)
		p := pattern.New(syms)
		for i := 0; i < n; i++ {
			p.AddNode(labels[rng.Intn(3)])
			if i > 0 {
				p.AddEdge(rng.Intn(i), i, "e")
			}
		}
		p.X = 0
		// Build an isomorphic copy by permuting node order.
		perm := rng.Perm(n)
		inv := make([]int, n)
		for ni, oi := range perm {
			inv[oi] = ni
		}
		q := pattern.New(syms)
		lab := make([]graph.Label, n)
		for old := 0; old < n; old++ {
			lab[inv[old]] = p.Label(old)
		}
		for _, l := range lab {
			q.AddNodeL(l)
		}
		for _, e := range p.Edges() {
			q.AddEdgeL(inv[e.From], inv[e.To], e.Label)
		}
		q.X = inv[p.X]
		return Bisimilar(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSummaryCache(t *testing.T) {
	syms := graph.NewSymbols()
	c := NewCache()
	p := twoNode(syms, "a", "b", "e")
	s1 := c.Summary("k1", p)
	s2 := c.Summary("k1", p)
	if &s1[0] != &s2[0] {
		t.Error("cache did not return the memoized summary")
	}
	if c.Len() != 1 {
		t.Errorf("cache Len = %d want 1", c.Len())
	}
	q := twoNode(syms, "a", "c", "e")
	if c.Summary("k2", q).Equal(s1) {
		t.Error("different patterns share a summary")
	}
	if c.Len() != 2 {
		t.Errorf("cache Len = %d want 2", c.Len())
	}
}

func TestSummaryEqualLengthMismatch(t *testing.T) {
	a := Summary{1, 2}
	b := Summary{1}
	if a.Equal(b) || b.Equal(a) {
		t.Error("length-mismatched summaries reported equal")
	}
	if !a.Equal(Summary{1, 2}) {
		t.Error("equal summaries reported unequal")
	}
}

func TestMultiplicityCollapsesInSummary(t *testing.T) {
	// Bisimulation cannot distinguish k parallel copies; the prefilter must
	// still pass such pairs to exact isomorphism, not reject them.
	syms := graph.NewSymbols()
	mk := func(k int) *pattern.Pattern {
		p := pattern.New(syms)
		x := p.AddNode("cust")
		fr := p.AddNode("rest")
		p.SetMult(fr, k)
		p.AddEdge(x, fr, "like")
		p.X = x
		return p
	}
	p2, p3 := mk(2), mk(3)
	if !Bisimilar(p2, p3) {
		t.Error("copies of a bisimilar node should collapse")
	}
	if p2.IsomorphicTo(p3) {
		t.Error("different multiplicities reported isomorphic")
	}
}
