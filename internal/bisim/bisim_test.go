package bisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

func twoNode(syms *graph.Symbols, la, lb, le string) *pattern.Pattern {
	p := pattern.New(syms)
	a := p.AddNode(la)
	b := p.AddNode(lb)
	p.AddEdge(a, b, le)
	p.X = a
	return p
}

func TestIdenticalPatternsBisimilar(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "b", "e")
	q := twoNode(syms, "a", "b", "e")
	if !Bisimilar(p, q) {
		t.Error("identical patterns not bisimilar")
	}
}

func TestDifferentLabelsNotBisimilar(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "b", "e")
	q := twoNode(syms, "a", "c", "e")
	r := twoNode(syms, "a", "b", "f")
	if Bisimilar(p, q) {
		t.Error("node-label difference not detected")
	}
	if Bisimilar(p, r) {
		t.Error("edge-label difference not detected")
	}
}

func TestDesignationMatters(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "a", "e")
	q := twoNode(syms, "a", "a", "e")
	q.X = 1 // designate the other endpoint
	if Bisimilar(p, q) {
		t.Error("x designation difference not detected")
	}
}

// TestBisimilarButNotIsomorphic exercises the one-way nature of Lemma 4: a
// 2-cycle and a 4-cycle of identical labels are bisimilar but not
// isomorphic, so the prefilter passes them and exact isomorphism rejects.
func TestBisimilarButNotIsomorphic(t *testing.T) {
	syms := graph.NewSymbols()
	mkCycle := func(n int) *pattern.Pattern {
		p := pattern.New(syms)
		for i := 0; i < n; i++ {
			p.AddNode("a")
		}
		for i := 0; i < n; i++ {
			p.AddEdge(i, (i+1)%n, "e")
		}
		return p
	}
	c2, c4 := mkCycle(2), mkCycle(4)
	if !Bisimilar(c2, c4) {
		t.Error("uniform cycles should be bisimilar")
	}
	if c2.IsomorphicTo(c4) {
		t.Error("different-size cycles reported isomorphic")
	}
}

// TestLemma4Soundness: isomorphic patterns are always bisimilar — the
// contrapositive of Lemma 4 that makes the prefilter safe.
func TestLemma4Soundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := graph.NewSymbols()
		labels := []string{"a", "b", "c"}
		n := 2 + rng.Intn(5)
		p := pattern.New(syms)
		for i := 0; i < n; i++ {
			p.AddNode(labels[rng.Intn(3)])
			if i > 0 {
				p.AddEdge(rng.Intn(i), i, "e")
			}
		}
		p.X = 0
		// Build an isomorphic copy by permuting node order.
		perm := rng.Perm(n)
		inv := make([]int, n)
		for ni, oi := range perm {
			inv[oi] = ni
		}
		q := pattern.New(syms)
		lab := make([]graph.Label, n)
		for old := 0; old < n; old++ {
			lab[inv[old]] = p.Label(old)
		}
		for _, l := range lab {
			q.AddNodeL(l)
		}
		for _, e := range p.Edges() {
			q.AddEdgeL(inv[e.From], inv[e.To], e.Label)
		}
		q.X = inv[p.X]
		return Bisimilar(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAppendSummary(t *testing.T) {
	syms := graph.NewSymbols()
	p := twoNode(syms, "a", "b", "e")
	q := twoNode(syms, "a", "c", "e")
	// Appending into one recycled buffer must produce the same summaries
	// as standalone Summarize calls, as independent regions.
	var buf Summary
	m1 := len(buf)
	buf = AppendSummary(buf, p)
	s1 := buf[m1:len(buf):len(buf)]
	m2 := len(buf)
	buf = AppendSummary(buf, q)
	s2 := buf[m2:len(buf):len(buf)]
	if !s1.Equal(Summarize(p)) || !s2.Equal(Summarize(q)) {
		t.Error("appended summaries differ from standalone Summarize")
	}
	if s1.Equal(s2) {
		t.Error("different patterns share a summary")
	}
}

func TestSummaryEqualLengthMismatch(t *testing.T) {
	a := Summary{1, 2}
	b := Summary{1}
	if a.Equal(b) || b.Equal(a) {
		t.Error("length-mismatched summaries reported equal")
	}
	if !a.Equal(Summary{1, 2}) {
		t.Error("equal summaries reported unequal")
	}
}

func TestMultiplicityCollapsesInSummary(t *testing.T) {
	// Bisimulation cannot distinguish k parallel copies; the prefilter must
	// still pass such pairs to exact isomorphism, not reject them.
	syms := graph.NewSymbols()
	mk := func(k int) *pattern.Pattern {
		p := pattern.New(syms)
		x := p.AddNode("cust")
		fr := p.AddNode("rest")
		p.SetMult(fr, k)
		p.AddEdge(x, fr, "like")
		p.X = x
		return p
	}
	p2, p3 := mk(2), mk(3)
	if !Bisimilar(p2, p3) {
		t.Error("copies of a bisimilar node should collapse")
	}
	if p2.IsomorphicTo(p3) {
		t.Error("different multiplicities reported isomorphic")
	}
}
