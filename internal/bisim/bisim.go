// Package bisim implements the bisimulation test used by algorithm DMine to
// cheaply prefilter automorphism (pattern-isomorphism) checks — Lemma 4 of
// "Association Rules with Graph Patterns" (PVLDB 2015): if pattern PR1 is
// not bisimilar to PR2, then R1 is not an automorphism of R2. Only patterns
// that pass the bisimulation test are handed to the exact isomorphism test.
//
// The implementation computes, for each pattern node, the limit coloring of
// forward bisimulation by iterated signature refinement (in the style of the
// fast partition-refinement algorithms of Dovier, Piazza and Policriti).
// Because the coloring is canonical, it can be computed once per pattern and
// cached — this is the "incrementally maintained" relation of Section 4.2:
// adding a new pattern to a collection requires one summary computation, not
// a re-run over all pairs.
package bisim

import (
	"hash/fnv"
	"sort"

	"gpar/internal/pattern"
)

// refineDepth is the fixed number of refinement rounds; see Summarize.
const refineDepth = 24

// Summary is a canonical bisimulation fingerprint of one pattern: the sorted
// set of limit node colors. Two patterns are bisimilar (in the sense of
// Section 4.2: every node of one has a bisimilar partner in the other, and
// edges can be mutually simulated) if and only if their Summaries are equal,
// up to hash collisions, which only ever cause a wasted exact isomorphism
// test, never a wrong answer.
type Summary []uint64

// Equal reports whether two summaries are identical.
func (s Summary) Equal(t Summary) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Summarize computes the bisimulation summary of p. Multiplicities are
// expanded first; bisimulation ignores copy counts beyond one by definition
// (bisimilar copies collapse into one color), so the expansion does not
// change the answer but keeps the semantics aligned with matching.
func Summarize(p *pattern.Pattern) Summary {
	pe := p.Expand()
	n := pe.NumNodes()
	colors := make([]uint64, n)
	for u := 0; u < n; u++ {
		colors[u] = hash1(uint64(pe.Label(u)), markDesignated(pe, u))
	}
	// Out-adjacency with edge labels.
	type half struct {
		label uint64
		to    int
	}
	out := make([][]half, n)
	for _, e := range pe.Edges() {
		out[e.From] = append(out[e.From], half{uint64(e.Label), e.To})
	}
	// Refine for a fixed number of rounds. The round count must be the same
	// for every pattern: the color of a node after round r is its depth-r
	// unfolding signature, and bisimilar nodes in different patterns have
	// equal signatures only at equal depths. refineDepth bounds the
	// distinguishing depth of any pair of mining-scale patterns; if a pair
	// of larger non-bisimilar patterns were ever to collide, the only cost
	// is one wasted exact isomorphism test (the filter stays sound).
	next := make([]uint64, n)
	for round := 0; round < refineDepth; round++ {
		for u := 0; u < n; u++ {
			sig := make([]uint64, 0, len(out[u]))
			for _, h := range out[u] {
				sig = append(sig, hash1(h.label, colors[h.to]))
			}
			sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
			c := colors[u]
			var prev uint64
			for i, s := range sig {
				// Bisimulation has set semantics: k edges into one
				// equivalence class count once, so duplicate successor
				// signatures are folded a single time.
				if i > 0 && s == prev {
					continue
				}
				c = hash1(c, s)
				prev = s
			}
			next[u] = c
		}
		colors, next = next, colors
	}
	set := make(map[uint64]bool, n)
	for _, c := range colors {
		set[c] = true
	}
	sum := make(Summary, 0, len(set))
	for c := range set {
		sum = append(sum, c)
	}
	sort.Slice(sum, func(i, j int) bool { return sum[i] < sum[j] })
	return sum
}

// markDesignated folds the x/y designation into the initial color so that
// rules differing only in which node is designated do not collapse.
func markDesignated(p *pattern.Pattern, u int) uint64 {
	switch {
	case u == p.X:
		return 1
	case u == p.Y:
		return 2
	default:
		return 0
	}
}

// Bisimilar reports whether p and q pass the Lemma 4 prefilter. Callers that
// test one pattern against many should use a Cache instead.
func Bisimilar(p, q *pattern.Pattern) bool {
	return Summarize(p).Equal(Summarize(q))
}

// Cache memoizes summaries by caller-chosen key, supporting the incremental
// maintenance of the bisimulation relation as new GPARs are discovered.
type Cache struct {
	sums map[string]Summary
}

// NewCache returns an empty summary cache.
func NewCache() *Cache {
	return &Cache{sums: make(map[string]Summary)}
}

// Summary returns the cached summary for key, computing it from p on a miss.
func (c *Cache) Summary(key string, p *pattern.Pattern) Summary {
	if s, ok := c.sums[key]; ok {
		return s
	}
	s := Summarize(p)
	c.sums[key] = s
	return s
}

// Len reports the number of cached summaries.
func (c *Cache) Len() int { return len(c.sums) }

func hash1(a, b uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(a >> (8 * i))
		buf[8+i] = byte(b >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}
