// Package bisim implements the bisimulation test used by algorithm DMine to
// cheaply prefilter automorphism (pattern-isomorphism) checks — Lemma 4 of
// "Association Rules with Graph Patterns" (PVLDB 2015): if pattern PR1 is
// not bisimilar to PR2, then R1 is not an automorphism of R2. Only patterns
// that pass the bisimulation test are handed to the exact isomorphism test.
//
// The implementation computes, for each pattern node, the limit coloring of
// forward bisimulation by iterated signature refinement (in the style of the
// fast partition-refinement algorithms of Dovier, Piazza and Policriti).
// Because the coloring is canonical, it can be computed once per pattern and
// cached — this is the "incrementally maintained" relation of Section 4.2:
// adding a new pattern to a collection requires one summary computation, not
// a re-run over all pairs.
package bisim

import (
	"slices"
	"sync"

	"gpar/internal/pattern"
)

// refineDepth is the fixed number of refinement rounds; see Summarize.
const refineDepth = 24

// Summary is a canonical bisimulation fingerprint of one pattern: the sorted
// set of limit node colors. Two patterns are bisimilar (in the sense of
// Section 4.2: every node of one has a bisimilar partner in the other, and
// edges can be mutually simulated) if and only if their Summaries are equal,
// up to hash collisions, which only ever cause a wasted exact isomorphism
// test, never a wrong answer.
type Summary []uint64

// Equal reports whether two summaries are identical.
func (s Summary) Equal(t Summary) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// sumScratch is pooled Summarize state. DMine summarizes every candidate
// group of every round (in parallel shards), so the refinement must not
// allocate per call: only the returned Summary escapes.
type sumScratch struct {
	colors, next, sig []uint64
	halfLabel         []uint64 // flat out-adjacency: edge label ...
	halfTo            []int32  // ... and target, per edge
	halfOff           []int32  // per-node offsets into halfLabel/halfTo
	fill              []int32  // arena fill cursors while building
}

var sumPool = sync.Pool{New: func() any { return new(sumScratch) }}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Summarize computes the bisimulation summary of p. Multiplicities are
// expanded first; bisimulation ignores copy counts beyond one by definition
// (bisimilar copies collapse into one color), so the expansion does not
// change the answer but keeps the semantics aligned with matching.
func Summarize(p *pattern.Pattern) Summary {
	return AppendSummary(nil, p)
}

// AppendSummary computes p's summary and appends it to dst, returning the
// extended slice. Callers that summarize one pattern per candidate group
// (DMine's assembly shards) carve each summary as a view of one recycled
// buffer instead of allocating a fresh slice per group.
func AppendSummary(dst Summary, p *pattern.Pattern) Summary {
	pe := p.Expand()
	n := pe.NumNodes()
	s := sumPool.Get().(*sumScratch)
	defer sumPool.Put(s)
	s.colors = grow(s.colors, n)
	s.next = grow(s.next, n)
	colors, next := s.colors, s.next
	for u := 0; u < n; u++ {
		colors[u] = hash1(uint64(pe.Label(u)), markDesignated(pe, u))
	}
	// Out-adjacency with edge labels, in flat CSR form.
	edges := pe.Edges()
	s.halfOff = grow(s.halfOff, n+1)
	clear(s.halfOff)
	for _, e := range edges {
		s.halfOff[e.From+1]++
	}
	for u := 0; u < n; u++ {
		s.halfOff[u+1] += s.halfOff[u]
	}
	s.halfLabel = grow(s.halfLabel, len(edges))
	s.halfTo = grow(s.halfTo, len(edges))
	s.fill = grow(s.fill, n)
	copy(s.fill, s.halfOff[:n])
	for _, e := range edges {
		i := s.fill[e.From]
		s.fill[e.From]++
		s.halfLabel[i] = uint64(e.Label)
		s.halfTo[i] = int32(e.To)
	}
	// Refine for a fixed number of rounds. The round count must be the same
	// for every pattern: the color of a node after round r is its depth-r
	// unfolding signature, and bisimilar nodes in different patterns have
	// equal signatures only at equal depths. refineDepth bounds the
	// distinguishing depth of any pair of mining-scale patterns; if a pair
	// of larger non-bisimilar patterns were ever to collide, the only cost
	// is one wasted exact isomorphism test (the filter stays sound).
	for round := 0; round < refineDepth; round++ {
		for u := 0; u < n; u++ {
			sig := s.sig[:0]
			for i := s.halfOff[u]; i < s.halfOff[u+1]; i++ {
				sig = append(sig, hash1(s.halfLabel[i], colors[s.halfTo[i]]))
			}
			s.sig = sig
			slices.Sort(sig)
			c := colors[u]
			var prev uint64
			for i, sv := range sig {
				// Bisimulation has set semantics: k edges into one
				// equivalence class count once, so duplicate successor
				// signatures are folded a single time.
				if i > 0 && sv == prev {
					continue
				}
				c = hash1(c, sv)
				prev = sv
			}
			next[u] = c
		}
		colors, next = next, colors
	}
	// Sorted distinct colors; only the appended region escapes.
	start := len(dst)
	dst = append(dst, colors[:n]...)
	region := dst[start:]
	slices.Sort(region)
	region = slices.Compact(region)
	return dst[:start+len(region)]
}

// markDesignated folds the x/y designation into the initial color so that
// rules differing only in which node is designated do not collapse.
func markDesignated(p *pattern.Pattern, u int) uint64 {
	switch {
	case u == p.X:
		return 1
	case u == p.Y:
		return 2
	default:
		return 0
	}
}

// Bisimilar reports whether p and q pass the Lemma 4 prefilter. Callers
// that test one pattern against many should compute each Summary once and
// compare the results (DMine appends them to a recycled buffer with
// AppendSummary); an earlier string-keyed summary cache cost more in key
// rendering than recomputation and was removed.
func Bisimilar(p, q *pattern.Pattern) bool {
	return Summarize(p).Equal(Summarize(q))
}

// hash1 is FNV-1a over the 16 little-endian bytes of (a, b), computed
// inline: byte-for-byte identical to hash/fnv on the same buffer, but with
// no hasher or buffer allocation — it runs n·refineDepth·deg times per
// Summarize, squarely on the mining hot path.
func hash1(a, b uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (a >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}
