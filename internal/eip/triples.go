package eip

import (
	"sort"

	"gpar/internal/core"
	"gpar/internal/graph"
)

// triple is one labeled edge shape (source label, edge label, target label).
// Rule antecedents decompose into triples; a candidate whose d-neighborhood
// lacks a required triple can be rejected for every rule needing it without
// any isomorphism search. Because the summary is computed once per candidate
// and consulted by all rules, it serves as the multi-query common-subpattern
// optimization of Section 5.2 ("extract common sub-patterns of GPARs in Σ",
// after [32]).
type triple struct {
	src, edge, dst graph.Label
}

// ruleTriples returns the distinct edge triples of a rule's pattern PR.
func ruleTriples(r *core.Rule) []triple {
	p := r.PR().Expand()
	set := make(map[triple]bool)
	for _, e := range p.Edges() {
		set[triple{p.Label(e.From), e.Label, p.Label(e.To)}] = true
	}
	out := make([]triple, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		if out[i].edge != out[j].edge {
			return out[i].edge < out[j].edge
		}
		return out[i].dst < out[j].dst
	})
	return out
}

// tripleIndex summarizes, per fragment, which edge triples exist anywhere in
// the fragment graph. Fragments are built from the candidates'
// d-neighborhoods, so "present in the fragment" over-approximates "present
// in Gd(vx)" — a sound filter (it can only skip impossible matches).
type tripleIndex struct {
	present map[triple]bool
}

func newTripleIndex(g *graph.Graph) *tripleIndex {
	ix := &tripleIndex{present: make(map[triple]bool)}
	for v := 0; v < g.NumNodes(); v++ {
		from := graph.NodeID(v)
		for _, e := range g.Out(from) {
			ix.present[triple{g.Label(from), e.Label, g.Label(e.To)}] = true
		}
	}
	return ix
}

// covers reports whether every required triple exists in the fragment.
func (ix *tripleIndex) covers(_ graph.NodeID, need []triple) bool {
	for _, t := range need {
		if !ix.present[t] {
			return false
		}
	}
	return true
}
