package eip

import (
	"sort"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// Triple is one labeled edge shape (source label, edge label, target label).
// Rule antecedents decompose into triples; a candidate whose d-neighborhood
// lacks a required triple can be rejected for every rule needing it without
// any isomorphism search. Because the summary is computed once per candidate
// and consulted by all rules, it serves as the multi-query common-subpattern
// optimization of Section 5.2 ("extract common sub-patterns of GPARs in Σ",
// after [32]). Exported so the serving snapshot (internal/serve) can
// prefilter per-rule candidate lists at build time.
type Triple struct {
	Src, Edge, Dst graph.Label
}

// RuleTriples returns the distinct edge triples of a rule's pattern PR —
// including the consequent edge, so it gates PR checks only. Q-only checks
// must gate on PatternTriples(r.Q): a fragment whose centers all lack the
// consequent (the q̄ and unknown classes) can be missing the consequent
// triple while Q still matches there.
func RuleTriples(r *core.Rule) []Triple {
	return PatternTriples(r.PR().Expand())
}

// PatternTriples returns the distinct edge triples of one pattern.
func PatternTriples(p *pattern.Pattern) []Triple {
	p = p.Expand()
	set := make(map[Triple]bool)
	for _, e := range p.Edges() {
		set[Triple{p.Label(e.From), e.Label, p.Label(e.To)}] = true
	}
	out := make([]Triple, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Edge != out[j].Edge {
			return out[i].Edge < out[j].Edge
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// TripleIndex summarizes, per fragment, which edge triples exist anywhere in
// the fragment graph. Fragments are built from the candidates'
// d-neighborhoods, so "present in the fragment" over-approximates "present
// in Gd(vx)" — a sound filter (it can only skip impossible matches).
type TripleIndex struct {
	present map[Triple]bool
}

// NewTripleIndex summarizes the edge triples of g.
func NewTripleIndex(g *graph.Graph) *TripleIndex {
	ix := &TripleIndex{present: make(map[Triple]bool)}
	for v := 0; v < g.NumNodes(); v++ {
		from := graph.NodeID(v)
		for _, e := range g.Out(from) {
			ix.present[Triple{g.Label(from), e.Label, g.Label(e.To)}] = true
		}
	}
	return ix
}

// Covers reports whether every required triple exists in the fragment.
func (ix *TripleIndex) Covers(need []Triple) bool {
	for _, t := range need {
		if !ix.present[t] {
			return false
		}
	}
	return true
}
