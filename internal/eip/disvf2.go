package eip

import (
	"sort"
	"sync"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
)

// DisVF2 computes Σ(x,G,η) the naive way the paper benchmarks against: for
// each GPAR, run two full-enumeration isomorphism sweeps over the whole
// graph (one for PR, one for Q), with no per-candidate locality, no early
// termination and no guidance. Rules are distributed over n workers.
func DisVF2(g *graph.Graph, rules []*core.Rule, opts Options) (*Result, error) {
	if err := validate(rules); err != nil {
		return nil, err
	}
	opts = opts.Defaults()
	pred := rules[0].Pred
	// Workers share g; freeze it before they start so the matcher's lazy
	// Freeze never races.
	g.Freeze()

	// Global LCWA classification (computed once; it is per-predicate).
	pqSet := make(map[graph.NodeID]bool)
	qbarSet := make(map[graph.NodeID]bool)
	for _, v := range core.Pq(g, pred) {
		pqSet[v] = true
	}
	for _, v := range core.Pqbar(g, pred) {
		qbarSet[v] = true
	}

	type ruleRes struct {
		qSet map[graph.NodeID]bool
		rSet map[graph.NodeID]bool
		ops  int64
	}
	results := make([]ruleRes, len(rules))
	// Distribute rules round-robin over workers.
	var wg sync.WaitGroup
	workerOps := make([]int64, opts.N)
	for w := 0; w < opts.N; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ri := w; ri < len(rules); ri += opts.N {
				r := rules[ri]
				rr := ruleRes{
					qSet: make(map[graph.NodeID]bool),
					rSet: make(map[graph.NodeID]bool),
				}
				// Full enumeration of Q's matches: x images.
				qx := r.Q.Expand().X
				rr.ops += int64(match.Enumerate(r.Q, g, match.Options{}, func(asgn []graph.NodeID) bool {
					rr.qSet[asgn[qx]] = true
					return true
				}))
				pr := r.PR()
				px := pr.Expand().X
				rr.ops += int64(match.Enumerate(pr, g, match.Options{}, func(asgn []graph.NodeID) bool {
					rr.rSet[asgn[px]] = true
					return true
				}))
				results[ri] = rr
				workerOps[w] += rr.ops
			}
		}(w)
	}
	wg.Wait()

	res := &Result{WorkerOps: workerOps}
	for _, ops := range workerOps {
		if ops > res.MaxWorkerOp {
			res.MaxWorkerOp = ops
		}
	}
	identified := make(map[graph.NodeID]bool)
	for ri, r := range rules {
		rr := results[ri]
		out := RuleOutcome{Rule: r}
		for v := range rr.qSet {
			out.QSet = append(out.QSet, v)
			if qbarSet[v] {
				out.Stats.SuppQqb++
			}
		}
		sort.Slice(out.QSet, func(i, j int) bool { return out.QSet[i] < out.QSet[j] })
		out.Stats.SuppQ = len(out.QSet)
		out.Stats.SuppR = len(rr.rSet)
		out.Stats.SuppQ1 = len(pqSet)
		out.Stats.SuppQbar = len(qbarSet)
		out.Conf = out.Stats.Conf()
		out.Applied = out.Conf >= opts.Eta
		if out.Applied {
			for _, v := range out.QSet {
				identified[v] = true
			}
		}
		res.PerRule = append(res.PerRule, out)
	}
	for v := range identified {
		res.Identified = append(res.Identified, v)
	}
	sort.Slice(res.Identified, func(i, j int) bool { return res.Identified[i] < res.Identified[j] })
	return res, nil
}
