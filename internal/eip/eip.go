// Package eip solves the entity identification problem (EIP) of Section 5
// of "Association Rules with Graph Patterns" (PVLDB 2015): given a set Σ of
// GPARs pertaining to the same predicate q(x,y), a graph G and a confidence
// bound η, compute Σ(x,G,η) — the potential customers vx ∈ Q(x,G) for some
// R: Q ⇒ q in Σ with conf(R,G) ≥ η.
//
// Three algorithms are provided, mirroring Section 6's comparison:
//
//   - Matchc: the parallel scalable baseline of Theorem 6 — partition by
//     d-neighborhood data locality, per-candidate local matching, parallel
//     assembly — but with full per-candidate match enumeration and no
//     guidance.
//   - Match: Matchc plus the Section 5.2 optimizations — early termination
//     (stop at the first embedding), guided search over k-hop sketches, the
//     PR ⇒ Q containment reuse of Example 10, and a shared neighborhood
//     triple summary standing in for multi-query common-subpattern sharing.
//   - DisVF2: a parallel full-enumeration VF2 over the whole graph with two
//     isomorphism sweeps per rule (PR and Q), the naive baseline.
package eip

import (
	"fmt"
	"sort"
	"sync"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/partition"
	"gpar/internal/sketch"
)

// Options configures an EIP run.
type Options struct {
	N   int     // number of workers
	Eta float64 // confidence bound η

	// SketchK is the sketch depth for guided search (Match only); 0 = 2.
	SketchK int
}

// Defaults fills unset tunables.
func (o Options) Defaults() Options {
	if o.N <= 0 {
		o.N = 4
	}
	if o.SketchK <= 0 {
		o.SketchK = 2
	}
	return o
}

// RuleOutcome is one rule's graph-wide evaluation.
type RuleOutcome struct {
	Rule    *core.Rule
	Stats   core.Stats
	Conf    float64
	QSet    []graph.NodeID // Q(x,G): the rule's potential customers
	Applied bool           // conf ≥ η
}

// Result is the outcome of an EIP run.
type Result struct {
	// Identified is Σ(x,G,η), sorted.
	Identified []graph.NodeID
	PerRule    []RuleOutcome

	WorkerOps   []int64
	MaxWorkerOp int64
}

// validate checks that all rules pertain to the same predicate, as the EIP
// problem statement requires.
func validate(rules []*core.Rule) error {
	if len(rules) == 0 {
		return fmt.Errorf("eip: empty rule set")
	}
	pred := rules[0].Pred
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("eip: rule %d: %w", i, err)
		}
		if r.Pred != pred {
			return fmt.Errorf("eip: rule %d pertains to a different predicate", i)
		}
	}
	return nil
}

// MaxRadius returns the partitioning radius for a rule set: the largest
// r(Q,x) or r(PR,x) over Σ (minimum 1), so every per-candidate check is
// local to its fragment. Shared with the serving snapshot build
// (internal/serve).
func MaxRadius(rules []*core.Rule) int {
	d := 1
	for _, r := range rules {
		if rq := r.Q.RadiusAt(r.Q.X); rq > d {
			d = rq
		}
		if rp := r.Radius(); rp > d {
			d = rp
		}
	}
	return d
}

// ClassifyCenters splits candidate centers into the three LCWA classes of
// Section 3 with respect to pred: pq (an outgoing pred edge to a
// YLabel-labeled node exists), pqbar (pred edges exist, none to YLabel —
// the q̄ set), and other (no pred edge at all, the unknown cases). It is
// shared by the batch algorithms here and the serving snapshot build
// (internal/serve).
func ClassifyCenters(g *graph.Graph, centers []graph.NodeID, pred core.Predicate) (pq, pqbar, other []graph.NodeID) {
	for _, c := range centers {
		hasQ, hasMatch := false, false
		for _, e := range g.Out(c) {
			if e.Label != pred.EdgeLabel {
				continue
			}
			hasQ = true
			if g.Label(e.To) == pred.YLabel {
				hasMatch = true
				break
			}
		}
		switch {
		case hasMatch:
			pq = append(pq, c)
		case hasQ:
			pqbar = append(pqbar, c)
		default:
			other = append(other, c)
		}
	}
	return pq, pqbar, other
}

// mode selects the per-candidate strategy.
type mode int

const (
	modeMatchc mode = iota
	modeMatch
)

// Matchc computes Σ(x,G,η) with the parallel scalable baseline algorithm of
// Section 5.1.
func Matchc(g *graph.Graph, rules []*core.Rule, opts Options) (*Result, error) {
	return run(g, rules, opts.Defaults(), modeMatchc)
}

// Match computes Σ(x,G,η) with all Section 5.2 optimizations.
func Match(g *graph.Graph, rules []*core.Rule, opts Options) (*Result, error) {
	return run(g, rules, opts.Defaults(), modeMatch)
}

// fragState is one worker's slice of the computation.
type fragState struct {
	frag  *partition.Fragment
	pq    []graph.NodeID // owned centers in Pq (local IDs)
	pqbar []graph.NodeID
	other []graph.NodeID // owned centers in neither (unknown cases)
	// per rule: local Q matches, PR matches, Qq̄ counts (global IDs).
	qSets  [][]graph.NodeID
	rSets  [][]graph.NodeID
	qqbCnt []int
	ops    int64
}

func run(g *graph.Graph, rules []*core.Rule, opts Options, md mode) (*Result, error) {
	if err := validate(rules); err != nil {
		return nil, err
	}
	pred := rules[0].Pred
	d := MaxRadius(rules)
	cands := g.NodesWithLabel(pred.XLabel)
	frags := partition.Partition(g, cands, opts.N, d)
	for _, f := range frags {
		f.G.Freeze() // one worker per fragment, frozen before they start
	}

	// Per-rule triple requirements depend only on the rule; compute once,
	// shared by all fragment workers (read-only).
	var needQ, needPR [][]Triple
	if md == modeMatch {
		needQ = make([][]Triple, len(rules))
		needPR = make([][]Triple, len(rules))
		for i, r := range rules {
			needQ[i] = PatternTriples(r.Q)
			needPR[i] = RuleTriples(r)
		}
	}

	states := make([]*fragState, len(frags))
	var wg sync.WaitGroup
	for i, f := range frags {
		wg.Add(1)
		go func(i int, f *partition.Fragment) {
			defer wg.Done()
			states[i] = processFragment(f, rules, needQ, needPR, pred, opts, md)
		}(i, f)
	}
	wg.Wait()
	return assemble(rules, states, opts), nil
}

// processFragment runs the per-candidate checks for all rules on one
// fragment (step 2 of Matchc).
func processFragment(f *partition.Fragment, rules []*core.Rule, needQ, needPR [][]Triple, pred core.Predicate, opts Options, md mode) *fragState {
	st := &fragState{
		frag:   f,
		qSets:  make([][]graph.NodeID, len(rules)),
		rSets:  make([][]graph.NodeID, len(rules)),
		qqbCnt: make([]int, len(rules)),
	}
	// LCWA classification of owned centers (once, shared by all rules).
	st.pq, st.pqbar, st.other = ClassifyCenters(f.G, f.Centers, pred)

	mopts := match.Options{}
	var triples *TripleIndex
	if md == modeMatch {
		mopts.Guided = true
		mopts.Sketches = sketch.NewIndex(f.G, opts.SketchK)
		triples = NewTripleIndex(f.G)
	}

	for ri, r := range rules {
		if md == modeMatch && !triples.Covers(needQ[ri]) {
			// The fragment lacks a triple Q itself requires: no center can
			// match Q — and PR ⊇ Q, so none can match PR either. Skip the
			// rule without building matchers, charging the same per-
			// candidate check ops the loops below would have (Pq members
			// run both the PR and the Q check).
			st.ops += int64(2*len(st.pq) + len(st.pqbar) + len(st.other))
			continue
		}
		// The PR gate additionally requires the consequent triple; when it
		// fails, PR checks short-circuit but Q checks still run.
		skipPR := md == modeMatch && !triples.Covers(needPR[ri])
		pr := r.PR()
		// One pooled matcher per pattern, reused across every candidate of
		// the fragment: the per-candidate hot loop allocates nothing.
		qm := match.NewMatcher(r.Q, f.G, mopts)
		var prm *match.Matcher
		if !skipPR {
			prm = match.NewMatcher(pr, f.G, mopts)
		}
		checkQ := func(c graph.NodeID) bool {
			st.ops++
			if md == modeMatch {
				return qm.HasMatchAt(c)
			}
			// Matchc: full enumeration, no early termination; every visited
			// embedding counts as work.
			n := qm.EnumerateAnchored(c, nil)
			st.ops += int64(n)
			return n > 0
		}
		checkPR := func(c graph.NodeID) bool {
			st.ops++
			if md == modeMatch {
				if skipPR {
					return false
				}
				return prm.HasMatchAt(c)
			}
			n := prm.EnumerateAnchored(c, nil)
			st.ops += int64(n)
			return n > 0
		}

		// Pq members: PR first; a PR match is a Q match (Example 10's
		// containment reuse) so Match skips the second check.
		for _, c := range st.pq {
			inR := checkPR(c)
			if inR {
				st.rSets[ri] = append(st.rSets[ri], f.Global(c))
				st.qSets[ri] = append(st.qSets[ri], f.Global(c))
				continue
			}
			if checkQ(c) {
				st.qSets[ri] = append(st.qSets[ri], f.Global(c))
			}
		}
		// q̄ members: Q matches here count for supp(Qq̄) and as customers.
		for _, c := range st.pqbar {
			if checkQ(c) {
				st.qqbCnt[ri]++
				st.qSets[ri] = append(st.qSets[ri], f.Global(c))
			}
		}
		// Unknown cases: still potential customers when Q matches.
		for _, c := range st.other {
			if checkQ(c) {
				st.qSets[ri] = append(st.qSets[ri], f.Global(c))
			}
		}
		qm.Release()
		if prm != nil {
			prm.Release()
		}
	}
	return st
}

// assemble is step 3 of Matchc: sum the per-fragment partial supports,
// compute conf(R,G) per rule, and emit Σ(x,G,η).
func assemble(rules []*core.Rule, states []*fragState, opts Options) *Result {
	res := &Result{}
	suppQ1, suppQbar := 0, 0
	for _, st := range states {
		suppQ1 += len(st.pq)
		suppQbar += len(st.pqbar)
		res.WorkerOps = append(res.WorkerOps, st.ops)
		if st.ops > res.MaxWorkerOp {
			res.MaxWorkerOp = st.ops
		}
	}
	identified := make(map[graph.NodeID]bool)
	for ri, r := range rules {
		out := RuleOutcome{Rule: r}
		for _, st := range states {
			out.QSet = append(out.QSet, st.qSets[ri]...)
			out.Stats.SuppR += len(st.rSets[ri])
			out.Stats.SuppQqb += st.qqbCnt[ri]
		}
		sort.Slice(out.QSet, func(i, j int) bool { return out.QSet[i] < out.QSet[j] })
		out.Stats.SuppQ = len(out.QSet)
		out.Stats.SuppQ1 = suppQ1
		out.Stats.SuppQbar = suppQbar
		out.Conf = out.Stats.Conf()
		out.Applied = out.Conf >= opts.Eta
		if out.Applied {
			for _, v := range out.QSet {
				identified[v] = true
			}
		}
		res.PerRule = append(res.PerRule, out)
	}
	for v := range identified {
		res.Identified = append(res.Identified, v)
	}
	sort.Slice(res.Identified, func(i, j int) bool { return res.Identified[i] < res.Identified[j] })
	return res
}
