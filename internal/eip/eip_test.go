package eip

import (
	"math"
	"testing"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
)

func g1Rules(syms *graph.Symbols) []*core.Rule {
	return []*core.Rule{gen.R1(syms), gen.R5(syms), gen.R6(syms), gen.R7(syms), gen.R8(syms)}
}

func equalIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllThreeAlgorithmsAgree: Match, Matchc and DisVF2 must produce the
// identical Σ(x,G,η) and per-rule statistics — they differ only in cost.
func TestAllThreeAlgorithmsAgree(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	rules := g1Rules(syms)
	for _, eta := range []float64{0.3, 0.5, 0.7, 1.5} {
		opts := Options{N: 3, Eta: eta}
		a, err := Match(f.G, rules, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Matchc(f.G, rules, opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := DisVF2(f.G, rules, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a.Identified, b.Identified) {
			t.Errorf("η=%v: Match %v vs Matchc %v", eta, a.Identified, b.Identified)
		}
		if !equalIDs(a.Identified, c.Identified) {
			t.Errorf("η=%v: Match %v vs DisVF2 %v", eta, a.Identified, c.Identified)
		}
		for i := range rules {
			if a.PerRule[i].Stats != b.PerRule[i].Stats || a.PerRule[i].Stats != c.PerRule[i].Stats {
				t.Errorf("η=%v rule %d stats disagree: %+v / %+v / %+v",
					eta, i, a.PerRule[i].Stats, b.PerRule[i].Stats, c.PerRule[i].Stats)
			}
		}
	}
}

// TestEIPPaperNumbers: with the Fig. 3 rules on G1, per-rule confidences
// must equal Example 8's values and Σ(x,G,η) must respect η.
func TestEIPPaperNumbers(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	rules := g1Rules(syms)
	res, err := Match(f.G, rules, Options{N: 2, Eta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantConf := []float64{0.6, 0.8, 0.4, 0.6, 0.2}
	for i, w := range wantConf {
		if got := res.PerRule[i].Conf; math.Abs(got-w) > 1e-9 {
			t.Errorf("rule %d conf = %v want %v", i, got, w)
		}
	}
	// η=0.5 applies R1 (0.6), R5 (0.8), R7 (0.6); their potential
	// customers are the union of Q-matches: Q1 gives cust1-3,5; Q5 gives
	// cust1-4 plus cust5 (q̄) and cust6; Q7 gives cust1-3,5.
	applied := 0
	for _, pr := range res.PerRule {
		if pr.Applied {
			applied++
		}
	}
	if applied != 3 {
		t.Errorf("applied rules = %d want 3", applied)
	}
	if len(res.Identified) == 0 {
		t.Fatal("no entities identified")
	}
	// cust5 matches Q1 and is a potential customer under η=0.5.
	found := false
	for _, v := range res.Identified {
		if v == f.Cust[5] {
			found = true
		}
	}
	if !found {
		t.Errorf("cust5 missing from Σ(x,G,0.5): %v", res.Identified)
	}
	// η above every confidence identifies nobody.
	res2, _ := Match(f.G, rules, Options{N: 2, Eta: 10})
	if len(res2.Identified) != 0 {
		t.Errorf("η=10 identified %v", res2.Identified)
	}
}

// TestEIPQSetMatchesReference: the per-rule potential-customer sets agree
// with the sequential evaluator's full-Q computation.
func TestEIPQSetMatchesReference(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	rules := g1Rules(syms)
	res, err := Match(f.G, rules, Options{N: 3, Eta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rules {
		ref := core.Eval(f.G, r, match.Options{}, true)
		if res.PerRule[i].Stats.SuppQ != ref.Stats.SuppQ {
			t.Errorf("rule %d: SuppQ %d want %d", i, res.PerRule[i].Stats.SuppQ, ref.Stats.SuppQ)
		}
		if res.PerRule[i].Stats.SuppR != ref.Stats.SuppR {
			t.Errorf("rule %d: SuppR %d want %d", i, res.PerRule[i].Stats.SuppR, ref.Stats.SuppR)
		}
	}
}

// TestWorkerCountInvariance: results do not depend on n.
func TestWorkerCountInvariance(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	rules := g1Rules(syms)
	var prev *Result
	for _, n := range []int{1, 2, 5} {
		res, err := Match(f.G, rules, Options{N: n, Eta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !equalIDs(prev.Identified, res.Identified) {
			t.Errorf("n=%d changed the answer: %v vs %v", n, res.Identified, prev.Identified)
		}
		prev = res
		if len(res.WorkerOps) != n {
			t.Errorf("n=%d: WorkerOps=%v", n, res.WorkerOps)
		}
	}
}

// TestMatchCheaperThanMatchc: early termination must never do more match
// operations, and DisVF2 must do the most enumeration work.
func TestCostOrdering(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	rules := g1Rules(syms)
	opts := Options{N: 1, Eta: 0.5}
	a, _ := Match(f.G, rules, opts)
	b, _ := Matchc(f.G, rules, opts)
	if a.MaxWorkerOp > b.MaxWorkerOp {
		t.Errorf("Match ops %d > Matchc ops %d", a.MaxWorkerOp, b.MaxWorkerOp)
	}
}

// TestG2FakeAccounts: EIP identifies the fake-account suspects of Fig. 1(d)
// on G2. conf(R4) is +Inf (logic rule), so any η applies it.
func TestG2FakeAccounts(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G2(syms)
	rules := []*core.Rule{gen.R4(syms)}
	res, err := Match(f.G, rules, Options{N: 2, Eta: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.NodeID{f.Acct[1], f.Acct[2], f.Acct[3]}
	if !equalIDs(res.Identified, want) {
		t.Errorf("Σ = %v want %v", res.Identified, want)
	}
}

// TestValidation: empty and mixed-predicate rule sets are rejected.
func TestValidation(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	if _, err := Match(f.G, nil, Options{N: 1, Eta: 1}); err == nil {
		t.Error("empty Σ accepted")
	}
	mixed := []*core.Rule{gen.R5(syms), gen.R4(syms)}
	if _, err := Match(f.G, mixed, Options{N: 1, Eta: 1}); err == nil {
		t.Error("mixed predicates accepted")
	}
	if _, err := DisVF2(f.G, nil, Options{N: 1, Eta: 1}); err == nil {
		t.Error("DisVF2 accepted empty Σ")
	}
}

// TestTripleFilterSoundness: the triple prefilter never changes the answer
// (covered by TestAllThreeAlgorithmsAgree) and RuleTriples is stable.
func TestRuleTriples(t *testing.T) {
	syms := graph.NewSymbols()
	r1 := gen.R1(syms)
	a := RuleTriples(r1)
	b := RuleTriples(r1)
	if len(a) == 0 {
		t.Fatal("no triples for R1")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("RuleTriples not deterministic")
		}
	}
}
