package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

func TestWhole(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cands := f.G.NodesWithLabel(syms.Lookup(gen.LCust))
	w := Whole(f.G, cands)
	if w.G != f.G {
		t.Error("Whole should wrap the original graph")
	}
	if len(w.Centers) != 6 {
		t.Errorf("Centers = %d want 6", len(w.Centers))
	}
	if w.Global(w.Centers[0]) != cands[0] {
		t.Error("Whole mapping broken")
	}
	if lv, ok := w.Local(cands[1]); !ok || lv != cands[1] {
		t.Error("Whole Local should be identity")
	}
}

func TestPartitionCoversNeighborhoods(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cands := f.G.NodesWithLabel(syms.Lookup(gen.LCust))
	const d = 2
	frags := Partition(f.G, cands, 3, d)
	if len(frags) != 3 {
		t.Fatalf("fragments = %d want 3", len(frags))
	}
	// Every candidate owned exactly once.
	owned := map[graph.NodeID]int{}
	for _, fr := range frags {
		for _, c := range fr.Centers {
			owned[fr.Global(c)]++
		}
	}
	if len(owned) != len(cands) {
		t.Errorf("owned %d candidates want %d", len(owned), len(cands))
	}
	for v, n := range owned {
		if n != 1 {
			t.Errorf("candidate %d owned %d times", v, n)
		}
	}
	// Each owned candidate's d-neighborhood is fully inside its fragment.
	for _, fr := range frags {
		for _, c := range fr.Centers {
			gv := fr.Global(c)
			for _, u := range f.G.Neighborhood(gv, d) {
				if _, ok := fr.Local(u); !ok {
					t.Errorf("node %d of Gd(%d) missing from fragment", u, gv)
				}
			}
		}
	}
}

// TestPartitionPreservesAnchoredMatching is the data-locality property the
// paper's algorithms rely on: vx ∈ PR(x,G) iff vx ∈ PR(x,Gd(vx)), so
// matching inside the owning fragment agrees with matching on the whole
// graph for any pattern of radius ≤ d.
func TestPartitionPreservesAnchoredMatching(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cands := f.G.NodesWithLabel(syms.Lookup(gen.LCust))
	frags := Partition(f.G, cands, 3, 2)
	patterns := []struct {
		name string
		pr   *pattern.Pattern
	}{
		{"R1", gen.R1(syms).PR()},
		{"R5", gen.R5(syms).PR()},
		{"R6", gen.R6(syms).PR()},
		{"R7", gen.R7(syms).PR()},
		{"R8", gen.R8(syms).PR()},
	}
	for _, fr := range frags {
		for _, c := range fr.Centers {
			gv := fr.Global(c)
			for _, pc := range patterns {
				local := match.HasMatchAt(pc.pr, fr.G, c, match.Options{})
				global := match.HasMatchAt(pc.pr, f.G, gv, match.Options{})
				if local != global {
					t.Errorf("%s locality violated at node %d: local %v global %v", pc.name, gv, local, global)
				}
			}
		}
	}
}

func TestBalance(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cands := f.G.NodesWithLabel(syms.Lookup(gen.LCust))
	frags := Partition(f.G, cands, 2, 1)
	maxS, minS, skew := Balance(frags)
	if maxS < minS {
		t.Errorf("max %d < min %d", maxS, minS)
	}
	if skew < 0 {
		t.Errorf("skew = %v", skew)
	}
	if m, n, s := Balance(nil); m != 0 || n != 0 || s != 0 {
		t.Error("Balance(nil) should be zeros")
	}
}

func TestPartitionPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partition(n=0) did not panic")
		}
	}()
	Partition(graph.New(nil), nil, 0, 1)
}

// TestQuickPartitionInvariants: on random graphs, every candidate is owned
// once and its d-neighborhood is present in the owning fragment.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b"}
		n := 15 + rng.Intn(15)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(2)])
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		cands := g.NodesWithLabel(g.Symbols().Lookup("a"))
		d := 1 + rng.Intn(2)
		nf := 1 + rng.Intn(4)
		frags := Partition(g, cands, nf, d)
		ownCount := map[graph.NodeID]int{}
		for _, fr := range frags {
			for _, c := range fr.Centers {
				gv := fr.Global(c)
				ownCount[gv]++
				if fr.G.Label(c) != g.Label(gv) {
					return false
				}
				for _, u := range g.Neighborhood(gv, d) {
					if _, ok := fr.Local(u); !ok {
						return false
					}
				}
			}
		}
		if len(ownCount) != len(cands) {
			return false
		}
		for _, c := range ownCount {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cands := f.G.NodesWithLabel(syms.Lookup(gen.LCust))
	for _, n := range []int{1, 2, 3, 8} {
		frags := Split(f.G, cands, n)
		if len(frags) != n {
			t.Fatalf("n=%d: got %d fragments", n, len(frags))
		}
		var owned []graph.NodeID
		for _, fr := range frags {
			if fr.G != f.G {
				t.Fatalf("n=%d: Split fragment must wrap the original graph", n)
			}
			for _, c := range fr.Centers {
				// Identity mapping both ways.
				if fr.Global(c) != c {
					t.Fatalf("n=%d: Global(%d) = %d", n, c, fr.Global(c))
				}
				if lv, ok := fr.Local(c); !ok || lv != c {
					t.Fatalf("n=%d: Local(%d) = %d, %v", n, c, lv, ok)
				}
				owned = append(owned, c)
			}
		}
		// Every candidate owned exactly once, in order (contiguous chunks).
		if len(owned) != len(cands) {
			t.Fatalf("n=%d: owned %d of %d candidates", n, len(owned), len(cands))
		}
		for i := range owned {
			if owned[i] != cands[i] {
				t.Fatalf("n=%d: owned[%d] = %d, want %d", n, i, owned[i], cands[i])
			}
		}
	}
}

func TestSplitPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(0) should panic")
		}
	}()
	Split(graph.New(nil), nil, 0)
}
