package partition

import (
	"bytes"
	"encoding/hex"
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// codecFixture partitions a seeded Pokec-like graph into n fragments, the
// exact shape the distributed coordinator ships.
func codecFixture(t testing.TB, users int, n int) (*graph.Graph, []*Fragment) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(users, 11))
	g.Freeze()
	pred := gen.PokecPredicates(syms)[0]
	cands := g.NodesWithLabel(pred.XLabel)
	frags := Partition(g, cands, n, 2)
	for _, f := range frags {
		f.G.Freeze()
	}
	return g, frags
}

// sameFragment asserts structural equality of two fragments: graph shape,
// centers, both ID mappings, and the canonical re-encoding.
func sameFragment(t *testing.T, want, got *Fragment) {
	t.Helper()
	if got.G.NumNodes() != want.G.NumNodes() || got.G.NumEdges() != want.G.NumEdges() {
		t.Fatalf("decoded graph %d nodes/%d edges, want %d/%d",
			got.G.NumNodes(), got.G.NumEdges(), want.G.NumNodes(), want.G.NumEdges())
	}
	for v := 0; v < want.G.NumNodes(); v++ {
		lv := graph.NodeID(v)
		if got.G.Label(lv) != want.G.Label(lv) {
			t.Fatalf("node %d label %d, want %d", v, got.G.Label(lv), want.G.Label(lv))
		}
		wantOut, gotOut := want.G.Out(lv), got.G.Out(lv)
		if len(wantOut) != len(gotOut) {
			t.Fatalf("node %d out-degree %d, want %d", v, len(gotOut), len(wantOut))
		}
		for i := range wantOut {
			if wantOut[i] != gotOut[i] {
				t.Fatalf("node %d edge %d = %+v, want %+v", v, i, gotOut[i], wantOut[i])
			}
		}
	}
	if len(got.Centers) != len(want.Centers) {
		t.Fatalf("centers %d, want %d", len(got.Centers), len(want.Centers))
	}
	for i := range want.Centers {
		if got.Centers[i] != want.Centers[i] {
			t.Fatalf("center %d = %d, want %d", i, got.Centers[i], want.Centers[i])
		}
	}
	for i := range want.ToGlobal {
		if got.ToGlobal[i] != want.ToGlobal[i] {
			t.Fatalf("toGlobal %d = %d, want %d", i, got.ToGlobal[i], want.ToGlobal[i])
		}
	}
	for lv, gv := range want.ToGlobal {
		back, ok := got.Local(gv)
		if !ok || back != graph.NodeID(lv) {
			t.Fatalf("Local(%d) = (%d, %v), want (%d, true)", gv, back, ok, lv)
		}
	}
	if _, ok := got.Local(graph.NodeID(got.numGlobal - 1)); ok != func() bool {
		_, w := want.Local(graph.NodeID(want.numGlobal - 1))
		return w
	}() {
		t.Fatal("Local() disagrees on an absent node")
	}
}

func TestFragmentCodecRoundTrip(t *testing.T) {
	g, frags := codecFixture(t, 300, 3)
	syms := g.Symbols()
	for i, f := range frags {
		enc := f.AppendBinary(nil)
		dec, rest, err := DecodeFragment(enc, syms)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("fragment %d: %d trailing bytes", i, len(rest))
		}
		sameFragment(t, f, dec)
		// Canonical: the decoded fragment re-encodes byte-identically.
		if re := dec.AppendBinary(nil); !bytes.Equal(re, enc) {
			t.Fatalf("fragment %d: re-encoding differs (%d vs %d bytes)", i, len(re), len(enc))
		}
	}
}

// TestFragmentCodecStream checks the self-delimiting property: multiple
// fragments concatenate into one buffer and decode back in order.
func TestFragmentCodecStream(t *testing.T) {
	g, frags := codecFixture(t, 200, 4)
	var buf []byte
	for _, f := range frags {
		buf = f.AppendBinary(buf)
	}
	rest := buf
	for i, f := range frags {
		var dec *Fragment
		var err error
		dec, rest, err = DecodeFragment(rest, g.Symbols())
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		sameFragment(t, f, dec)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all fragments", len(rest))
	}
}

// TestFragmentCodecGolden pins the first bytes of a fixed fragment's
// encoding, so any format change — field order, varint width, a new field —
// fails loudly and forces a version bump instead of silent drift.
func TestFragmentCodecGolden(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	a := g.AddNode("person")
	b := g.AddNode("person")
	c := g.AddNode("page")
	g.AddEdge(a, b, "follows")
	g.AddEdge(b, a, "follows")
	g.AddEdge(a, c, "likes")
	g.Freeze()
	f := Whole(g, []graph.NodeID{a, b})
	enc := f.AppendBinary(nil)

	const golden = "47504652010303010102020100030104020300020001000102"
	if got := hex.EncodeToString(enc); got != golden {
		t.Fatalf("fragment encoding drifted:\n got %s\nwant %s", got, golden)
	}
	dec, _, err := DecodeFragment(enc, syms)
	if err != nil {
		t.Fatal(err)
	}
	sameFragment(t, f, dec)
}

func TestFragmentCodecErrors(t *testing.T) {
	_, frags := codecFixture(t, 100, 2)
	enc := frags[0].AppendBinary(nil)
	syms := frags[0].G.Symbols()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE\x01\x00")},
		{"bad version", append([]byte("GPFR"), 99)},
		{"truncated header", enc[:6]},
		{"truncated mid-stream", enc[:len(enc)/2]},
		{"truncated tail", enc[:len(enc)-1]},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFragment(tc.data, syms); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		} else if _, ok := err.(*codecError); !ok {
			t.Errorf("%s: error type %T, want *codecError", tc.name, err)
		}
	}
}

// FuzzFragmentDecode throws arbitrary bytes at the decoder: it must either
// return an error or produce a fragment that re-encodes canonically — and
// never panic or hang. Valid encodings are seeded so the fuzzer starts from
// the interesting region of the input space.
func FuzzFragmentDecode(f *testing.F) {
	_, frags := codecFixture(f, 120, 2)
	syms := frags[0].G.Symbols()
	for _, fr := range frags {
		f.Add(fr.AppendBinary(nil))
	}
	f.Add([]byte("GPFR\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, _, err := DecodeFragment(data, syms)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to a decodable encoding.
		re := dec.AppendBinary(nil)
		if _, _, err := DecodeFragment(re, syms); err != nil {
			t.Fatalf("re-encoding of a decoded fragment does not decode: %v", err)
		}
	})
}
