package partition

import (
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// The serving subsystem (internal/serve) builds fragments once per
// snapshot and reuses them across requests, which leans on the degenerate
// corners of this package: n = 1 partitions, empty candidate lists, and
// Balance over skeletal fragments.

// TestWholeVsPartitionN1 checks that a one-fragment partition is
// observationally equivalent to Whole for anchored matching: same owned
// centers and the full d-neighborhood of every center present.
func TestWholeVsPartitionN1(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Synthetic(syms, 200, 500, 3)
	label := g.NodeLabels()[0]
	cands := g.NodesWithLabel(label)
	if len(cands) == 0 {
		t.Fatal("fixture has no candidates")
	}
	const d = 2

	whole := Whole(g, cands)
	frags := Partition(g, cands, 1, d)
	if len(frags) != 1 {
		t.Fatalf("n=1 partition produced %d fragments", len(frags))
	}
	f := frags[0]

	if len(f.Centers) != len(whole.Centers) {
		t.Fatalf("centers: %d, whole has %d", len(f.Centers), len(whole.Centers))
	}
	got := make(map[graph.NodeID]bool, len(f.Centers))
	for _, c := range f.Centers {
		got[f.Global(c)] = true
	}
	for _, c := range cands {
		if !got[c] {
			t.Errorf("candidate %d not owned by the single fragment", c)
		}
	}
	// Every center's d-neighborhood is preserved node-for-node.
	for _, vx := range cands {
		lv, ok := f.Local(vx)
		if !ok {
			t.Fatalf("candidate %d missing from fragment", vx)
		}
		want := g.Neighborhood(vx, d)
		gotHood := f.G.Neighborhood(lv, d)
		if len(gotHood) != len(want) {
			t.Errorf("candidate %d: neighborhood %d nodes, want %d", vx, len(gotHood), len(want))
		}
	}
	// Whole keeps the original IDs; its Local must be the identity.
	for _, c := range whole.Centers {
		if lv, ok := whole.Local(c); !ok || lv != c {
			t.Errorf("Whole.Local(%d) = (%d,%v), want identity", c, lv, ok)
		}
	}
}

// TestPartitionEmptyCandidates: no candidates still yields n well-formed,
// empty fragments (the serve-then-mine startup path).
func TestPartitionEmptyCandidates(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Synthetic(syms, 50, 100, 1)
	frags := Partition(g, nil, 3, 2)
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	for i, f := range frags {
		if len(f.Centers) != 0 || f.G.NumNodes() != 0 || f.Size() != 0 {
			t.Errorf("fragment %d not empty: centers=%d size=%d", i, len(f.Centers), f.Size())
		}
		if _, ok := f.Local(0); ok {
			t.Errorf("fragment %d resolves a node it does not contain", i)
		}
	}
	maxS, minS, skew := Balance(frags)
	if maxS != 0 || minS != 0 || skew != 0 {
		t.Errorf("Balance on empty fragments = (%d,%d,%v), want zeros", maxS, minS, skew)
	}
}

// TestWholeEmptyCandidates: Whole with no candidates owns nothing but
// still wraps the full graph.
func TestWholeEmptyCandidates(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Synthetic(syms, 30, 60, 2)
	f := Whole(g, nil)
	if len(f.Centers) != 0 {
		t.Errorf("centers %d, want 0", len(f.Centers))
	}
	if f.Size() != g.Size() {
		t.Errorf("size %d, want %d", f.Size(), g.Size())
	}
}

// TestBalanceDegenerate covers the no-fragments and single-fragment paths.
func TestBalanceDegenerate(t *testing.T) {
	if maxS, minS, skew := Balance(nil); maxS != 0 || minS != 0 || skew != 0 {
		t.Errorf("Balance(nil) = (%d,%d,%v)", maxS, minS, skew)
	}
	syms := graph.NewSymbols()
	g := gen.Synthetic(syms, 40, 80, 4)
	cands := g.NodesWithLabel(g.NodeLabels()[0])
	frags := Partition(g, cands, 1, 1)
	maxS, minS, skew := Balance(frags)
	if maxS != minS || skew != 0 {
		t.Errorf("single fragment Balance = (%d,%d,%v), want max=min, skew 0", maxS, minS, skew)
	}
}

// TestBalanceSkewOnDegenerateFragments: one loaded fragment among empty
// ones produces the maximal (max-min)/mean skew, not a division blowup.
func TestBalanceSkewOnDegenerateFragments(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Synthetic(syms, 60, 120, 5)
	label := g.NodeLabels()[0]
	one := g.NodesWithLabel(label)[:1]
	// n far exceeds the candidate count: all but one fragment stay empty.
	frags := Partition(g, one, 4, 2)
	nonEmpty := 0
	for _, f := range frags {
		if f.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("%d non-empty fragments, want 1", nonEmpty)
	}
	maxS, minS, skew := Balance(frags)
	if minS != 0 || maxS == 0 {
		t.Fatalf("Balance = (%d,%d,%v)", maxS, minS, skew)
	}
	mean := float64(maxS) / 4
	want := float64(maxS) / mean // (max-0)/mean = 4
	if skew != want {
		t.Errorf("skew %v, want %v", skew, want)
	}
}
