package partition

import (
	"encoding/binary"
	"fmt"

	"gpar/internal/graph"
)

// This file is the fragment wire format: a deterministic binary encoding of
// a Fragment, so a distributed DMine coordinator can ship each worker its
// share of the graph. The format is versioned and self-delimiting
// (length-prefixed lists), and the encoding is canonical: edges are written
// in the frozen CSR (Label, To) order, so encode(decode(b)) == b and two
// fragments with equal frozen graphs encode to equal bytes. Node labels
// travel as raw label IDs; the symbol table itself is shipped separately
// (once per job, not per fragment) and decoded fragments bind to it.
//
// Layout (uv = unsigned varint):
//
//	magic   "GPFR"                      4 bytes
//	version 0x01                        1 byte
//	numGlobal  uv                       original graph's node count
//	numNodes   uv                       fragment node count
//	labels     numNodes × uv            node labels, local-ID order
//	degrees    numNodes × uv            out-degree per node
//	edges      Σdegrees × (uv, uv)      (label, to) per edge, CSR order
//	numCenters uv
//	centers    numCenters × uv          owned centers, local IDs
//	toGlobal   numNodes × uv            local → original node IDs
const (
	fragMagic   = "GPFR"
	fragVersion = 1
)

// codecError is the typed error every fragment decode failure returns.
type codecError struct{ msg string }

func (e *codecError) Error() string { return "partition: " + e.msg }

func codecErrorf(format string, args ...any) error {
	return &codecError{msg: fmt.Sprintf(format, args...)}
}

// AppendBinary appends the fragment's canonical binary encoding to dst and
// returns the extended slice. It freezes the fragment graph if the caller
// has not already (the CSR edge order is the canonical one; every fragment
// a Context hands out is frozen anyway).
func (f *Fragment) AppendBinary(dst []byte) []byte {
	f.G.Freeze()
	dst = append(dst, fragMagic...)
	dst = append(dst, fragVersion)
	dst = binary.AppendUvarint(dst, uint64(f.numGlobal))
	n := f.G.NumNodes()
	dst = binary.AppendUvarint(dst, uint64(n))
	for v := 0; v < n; v++ {
		dst = binary.AppendUvarint(dst, uint64(f.G.Label(graph.NodeID(v))))
	}
	for v := 0; v < n; v++ {
		dst = binary.AppendUvarint(dst, uint64(len(f.G.Out(graph.NodeID(v)))))
	}
	for v := 0; v < n; v++ {
		for _, e := range f.G.Out(graph.NodeID(v)) {
			dst = binary.AppendUvarint(dst, uint64(e.Label))
			dst = binary.AppendUvarint(dst, uint64(e.To))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Centers)))
	for _, c := range f.Centers {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	for _, gv := range f.ToGlobal {
		dst = binary.AppendUvarint(dst, uint64(gv))
	}
	return dst
}

// DecodeFragment decodes one fragment from data, binding its graph to syms
// (the job's symbol table; labels in the encoding are IDs into it). The
// decoded fragment graph is frozen, and — because the encoder wrote edges
// in frozen CSR order and Freeze re-derives exactly that order — re-encoding
// it reproduces data byte for byte. The remainder of data after the
// fragment is returned.
func DecodeFragment(data []byte, syms *graph.Symbols) (*Fragment, []byte, error) {
	d := fragDecoder{buf: data}
	if len(d.buf) < len(fragMagic)+1 || string(d.buf[:len(fragMagic)]) != fragMagic {
		return nil, nil, codecErrorf("fragment encoding lacks %q magic", fragMagic)
	}
	d.buf = d.buf[len(fragMagic):]
	if v := d.buf[0]; v != fragVersion {
		return nil, nil, codecErrorf("fragment encoding version %d, want %d", v, fragVersion)
	}
	d.buf = d.buf[1:]

	numGlobal := d.intf("numGlobal")
	n := d.intf("numNodes")
	if d.err != nil {
		return nil, nil, d.err
	}
	if n > numGlobal {
		return nil, nil, codecErrorf("fragment has %d nodes but the original graph only %d", n, numGlobal)
	}
	g := graph.New(syms)
	for v := 0; v < n && d.err == nil; v++ {
		g.AddNodeL(graph.Label(d.intf("node label")))
	}
	degs := make([]int, n)
	for v := 0; v < n && d.err == nil; v++ {
		degs[v] = d.intf("out-degree")
	}
	for v := 0; v < n && d.err == nil; v++ {
		for k := 0; k < degs[v] && d.err == nil; k++ {
			l := graph.Label(d.intf("edge label"))
			to := d.intf("edge target")
			if d.err != nil {
				break
			}
			if to >= n {
				return nil, nil, codecErrorf("edge target %d out of range (fragment has %d nodes)", to, n)
			}
			g.AddEdgeL(graph.NodeID(v), graph.NodeID(to), l)
		}
	}
	nc := d.intf("numCenters")
	if d.err == nil && nc > n {
		return nil, nil, codecErrorf("fragment claims %d centers over %d nodes", nc, n)
	}
	centers := make([]graph.NodeID, 0, nc)
	for i := 0; i < nc && d.err == nil; i++ {
		c := d.intf("center")
		if c >= n {
			return nil, nil, codecErrorf("center %d out of range (fragment has %d nodes)", c, n)
		}
		centers = append(centers, graph.NodeID(c))
	}
	toGlobal := make([]graph.NodeID, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		gv := d.intf("toGlobal entry")
		if gv >= numGlobal {
			return nil, nil, codecErrorf("global node %d out of range (graph has %d nodes)", gv, numGlobal)
		}
		toGlobal = append(toGlobal, graph.NodeID(gv))
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	g.Freeze()
	f := &Fragment{G: g, Centers: centers, ToGlobal: toGlobal}
	var m map[graph.NodeID]graph.NodeID
	if len(toGlobal)*16 < numGlobal { // mirror setToLocal's dense/sparse split
		m = make(map[graph.NodeID]graph.NodeID, len(toGlobal))
		for lv, gv := range toGlobal {
			m[gv] = graph.NodeID(lv)
		}
	}
	f.setToLocal(numGlobal, toGlobal, m)
	return f, d.buf, nil
}

// fragDecoder reads uvarints with sticky error handling, so the decode
// above reads linearly without per-field error plumbing.
type fragDecoder struct {
	buf []byte
	err error
}

// intf decodes one uvarint as a non-negative int, recording a descriptive
// sticky error on truncation or overflow.
func (d *fragDecoder) intf(what string) int {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.buf)
	if k <= 0 {
		d.err = codecErrorf("truncated fragment encoding reading %s", what)
		return 0
	}
	if v > uint64(int32(^uint32(0)>>1)) { // node IDs and labels are int32
		d.err = codecErrorf("%s %d overflows int32", what, v)
		return 0
	}
	d.buf = d.buf[k:]
	return int(v)
}
