// Package partition divides a data graph into the fragments used by the
// parallel algorithms DMine and Match of "Association Rules with Graph
// Patterns" (PVLDB 2015), Sections 4.2 and 5.1: graph G is split into n
// fragments (F1, ..., Fn) such that (a) for each candidate node vx the whole
// d-neighborhood Gd(vx) lies inside the fragment that owns vx, and (b) the
// fragments have roughly even size. Candidates are assigned greedily to the
// least-loaded fragment (a deterministic stand-in for the Ja-be-Ja-style
// balanced partitioner the paper revises).
//
// Every candidate is owned by exactly one fragment; fragment graphs may
// replicate non-owned neighborhood nodes, which is safe because all support
// counting in the paper's algorithms runs over owned centers only.
package partition

import (
	"fmt"
	"slices"

	"gpar/internal/graph"
)

// Fragment is one worker's share of the graph.
type Fragment struct {
	// G is the fragment graph: the subgraph of the original induced by the
	// union of the owned candidates' d-neighborhoods.
	G *graph.Graph
	// Centers lists the owned candidate nodes as local IDs in G.
	Centers []graph.NodeID
	// ToGlobal maps local node IDs back to the original graph.
	ToGlobal []graph.NodeID

	// The inverse of ToGlobal. The miner translates every frontier center
	// every round, so fragments covering a meaningful share of the graph
	// (the common DMine shape: d-neighborhood closures overlap heavily)
	// use a dense array over the original ID space (-1 = absent); tiny
	// fragments of huge graphs fall back to a map so that n workers never
	// pin O(n·|V|) memory for the lifetime of a serving snapshot.
	toLocalDense []graph.NodeID
	toLocalMap   map[graph.NodeID]graph.NodeID
	// numGlobal is the original graph's node count — the domain of Local()
	// and the dense/sparse decision above. Recorded so a fragment decoded
	// from the wire rebuilds the same inverse and re-encodes identically.
	numGlobal int
}

// Global translates a local node ID to the original graph's ID.
func (f *Fragment) Global(v graph.NodeID) graph.NodeID { return f.ToGlobal[v] }

// Local translates an original-graph ID to this fragment's local ID. The
// second result is false when the node is not present in the fragment.
func (f *Fragment) Local(v graph.NodeID) (graph.NodeID, bool) {
	if f.toLocalDense != nil {
		if int(v) >= len(f.toLocalDense) || f.toLocalDense[v] < 0 {
			return 0, false
		}
		return f.toLocalDense[v], true
	}
	lv, ok := f.toLocalMap[v]
	return lv, ok
}

// setToLocal installs the inverse mapping, choosing dense form when the
// fragment holds at least 1/16 of the original graph's nodes.
func (f *Fragment) setToLocal(n int, toGlobal []graph.NodeID, m map[graph.NodeID]graph.NodeID) {
	f.numGlobal = n
	if len(toGlobal)*16 < n {
		f.toLocalMap = m
		return
	}
	inv := make([]graph.NodeID, n)
	for i := range inv {
		inv[i] = -1
	}
	for lv, gv := range toGlobal {
		inv[gv] = graph.NodeID(lv)
	}
	f.toLocalDense = inv
}

// Size reports |F| = |V| + |E| of the fragment graph.
func (f *Fragment) Size() int { return f.G.Size() }

// Partition splits g into n fragments covering the d-neighborhoods of the
// given candidate nodes. It panics if n < 1. Candidates are processed in
// input order and greedily assigned to the least-loaded fragment, measured
// by the accumulated d-neighborhood size, so the result is deterministic.
//
// Fragment node order is canonical: local IDs ascend in global-ID order,
// so any iteration that is sorted locally (frozen CSR ranges, the label
// candidate index) is also sorted globally. Match enumeration order over a
// fragment is then a pure function of the global graph — the property
// mine.Options.EmbedCap needs for layout-independent truncation.
func Partition(g *graph.Graph, cands []graph.NodeID, n, d int) []*Fragment {
	if n < 1 {
		panic(fmt.Sprintf("partition: n = %d", n))
	}
	// Bucket candidates by load.
	type bucket struct {
		cands []graph.NodeID
		seen  []bool
		order []graph.NodeID // fragment nodes in first-seen order
	}
	buckets := make([]*bucket, n)
	for i := range buckets {
		buckets[i] = &bucket{seen: make([]bool, g.NumNodes())}
	}
	var hood []graph.NodeID // recycled across candidates
	for _, vx := range cands {
		hood = g.AppendNeighborhood(hood[:0], vx, d)
		// Least-loaded fragment; ties broken by index for determinism.
		best := 0
		for i := 1; i < n; i++ {
			if len(buckets[i].order) < len(buckets[best].order) {
				best = i
			}
		}
		b := buckets[best]
		b.cands = append(b.cands, vx)
		for _, u := range hood {
			if !b.seen[u] {
				b.seen[u] = true
				b.order = append(b.order, u)
			}
		}
	}
	frags := make([]*Fragment, n)
	for i, b := range buckets {
		// Canonical local IDs: global-ID ascending, not first-seen order.
		slices.Sort(b.order)
		sub, toLocal, toGlobal := g.InducedSubgraph(b.order)
		f := &Fragment{G: sub, ToGlobal: toGlobal}
		f.setToLocal(g.NumNodes(), toGlobal, toLocal)
		for _, vx := range b.cands {
			f.Centers = append(f.Centers, toLocal[vx])
		}
		frags[i] = f
	}
	return frags
}

// Whole wraps g itself as a single fragment owning all the given candidates
// (the n = 1 degenerate case, used by sequential baselines).
func Whole(g *graph.Graph, cands []graph.NodeID) *Fragment {
	toGlobal := make([]graph.NodeID, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		toGlobal[v] = graph.NodeID(v)
	}
	f := &Fragment{
		G:        g,
		Centers:  append([]graph.NodeID(nil), cands...),
		ToGlobal: toGlobal,
	}
	f.setToLocal(g.NumNodes(), toGlobal, nil)
	return f
}

// Split wraps g itself as n fragments that each own a contiguous chunk of
// the candidates, with shared identity local/global mappings. Unlike
// Partition it induces no subgraphs — every fragment reads the one shared
// graph — so it is O(|V| + |cands|) regardless of neighborhood overlap.
// The serving layer uses it for delta-overlay snapshots, where fragment
// subgraphs would have to be rebuilt on every mutation batch; correctness
// only needs owned-center disjointness, which chunking gives directly.
// It panics if n < 1.
func Split(g *graph.Graph, cands []graph.NodeID, n int) []*Fragment {
	if n < 1 {
		panic(fmt.Sprintf("partition: n = %d", n))
	}
	identity := make([]graph.NodeID, g.NumNodes())
	for v := range identity {
		identity[v] = graph.NodeID(v)
	}
	frags := make([]*Fragment, n)
	for i := range frags {
		lo, hi := i*len(cands)/n, (i+1)*len(cands)/n
		frags[i] = &Fragment{
			G:            g,
			Centers:      append([]graph.NodeID(nil), cands[lo:hi]...),
			ToGlobal:     identity,
			toLocalDense: identity,
			numGlobal:    g.NumNodes(),
		}
	}
	return frags
}

// Balance reports the max/min/mean fragment sizes and the skew
// (max-min)/mean, the metric the paper's experimental setup reports for its
// partitioner.
func Balance(frags []*Fragment) (maxSize, minSize int, skew float64) {
	if len(frags) == 0 {
		return 0, 0, 0
	}
	maxSize, minSize = frags[0].Size(), frags[0].Size()
	total := 0
	for _, f := range frags {
		s := f.Size()
		total += s
		if s > maxSize {
			maxSize = s
		}
		if s < minSize {
			minSize = s
		}
	}
	mean := float64(total) / float64(len(frags))
	if mean == 0 {
		return maxSize, minSize, 0
	}
	return maxSize, minSize, float64(maxSize-minSize) / mean
}
