package diskfault

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func writeAll(t *testing.T, fsys FS, path string, data []byte) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return f
}

func readAll(t *testing.T, fsys FS, path string) []byte {
	t.Helper()
	b, err := ReadFile(fsys, path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

// Unsynced writes do not survive a crash; synced ones do.
func TestCrashDropsUnsynced(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "d/a", []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" volatile")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if !m.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := ReadFile(m, "d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: %v", err)
	}
	m.Reboot()
	if got := readAll(t, m, "d/a"); string(got) != "durable" {
		t.Fatalf("after crash: %q", got)
	}
}

// A kill-point fault tears the write at an exact byte offset: ShortWrite
// bytes land in the volatile view and KeepTail of the unsynced tail
// survives the crash.
func TestTornWriteKillPoint(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "wal", []byte("base"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Inject(Fault{Op: OpWrite, Path: "wal", ShortWrite: 3, Kill: true, KeepTail: 2})
	_, err := f.Write([]byte("record"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	m.Reboot()
	// 3 bytes of "record" were applied volatile; 2 of those survived.
	if got := readAll(t, m, "wal"); string(got) != "basere" {
		t.Fatalf("after torn write: %q", got)
	}
}

// Countdown fires the fault on the Nth matching call.
func TestCountdown(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "x", nil)
	m.Inject(Fault{Op: OpWrite, Path: "x", Countdown: 2, Err: ErrInjected})
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("a")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: %v", err)
	}
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("fault not spent: %v", err)
	}
}

// An ignored fsync reports success but leaves the bytes volatile.
func TestIgnoredSync(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "x", []byte("data"))
	m.Inject(Fault{Op: OpSync, IgnoreSync: true})
	if err := f.Sync(); err != nil {
		t.Fatalf("ignored sync returned %v", err)
	}
	m.Crash()
	m.Reboot()
	if got := readAll(t, m, "x"); len(got) != 0 {
		t.Fatalf("lying fsync persisted %q", got)
	}
}

// A failed fsync returns its error and leaves the bytes volatile.
func TestFailedSync(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "x", []byte("data"))
	m.Inject(Fault{Op: OpSync, Err: ErrInjected})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: %v", err)
	}
	m.Crash()
	m.Reboot()
	if got := readAll(t, m, "x"); len(got) != 0 {
		t.Fatalf("failed fsync persisted %q", got)
	}
}

// CorruptDurable flips a bit in the durable image.
func TestCorruptDurable(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "x", []byte{0x10, 0x20})
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if !m.CorruptDurable("x", 1) {
		t.Fatal("corrupt failed")
	}
	if got := readAll(t, m, "x"); !bytes.Equal(got, []byte{0x10, 0x21}) {
		t.Fatalf("got % x", got)
	}
	if m.CorruptDurable("x", 99) || m.CorruptDurable("missing", 0) {
		t.Fatal("out-of-range corrupt reported success")
	}
}

// Rename replaces the target and ReadDir lists what exists.
func TestRenameAndReadDir(t *testing.T) {
	m := NewMemFS()
	writeAll(t, m, "d/tmp1", []byte("new"))
	writeAll(t, m, "d/final", []byte("old"))
	if err := m.Rename("d/tmp1", "d/final"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "d/final"); string(got) != "new" {
		t.Fatalf("rename target: %q", got)
	}
	names, err := m.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "final" {
		t.Fatalf("readdir: %v", names)
	}
	if _, err := m.ReadDir("nope"); !IsNotExist(err) {
		t.Fatalf("missing dir: %v", err)
	}
}

// Reopening an existing file for write without O_TRUNC appends.
func TestReopenAppends(t *testing.T) {
	m := NewMemFS()
	f := writeAll(t, m, "x", []byte("ab"))
	f.Close()
	g, err := m.OpenFile("x", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("cd")); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "x"); string(got) != "abcd" {
		t.Fatalf("got %q", got)
	}
	if n, err := g.Size(); err != nil || n != 4 {
		t.Fatalf("size %d, %v", n, err)
	}
}

// The OS implementation round-trips through a real temp dir.
func TestOSRoundTrip(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	if err := fsys.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f := writeAll(t, fsys, dir+"/sub/a.tmp", []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fsys.Rename(dir+"/sub/a.tmp", dir+"/sub/a"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fsys, dir+"/sub/a"); string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	names, err := fsys.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("readdir: %v, %v", names, err)
	}
	if err := fsys.Remove(dir + "/sub/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(fsys, dir+"/sub/a"); !IsNotExist(err) {
		t.Fatalf("after remove: %v", err)
	}
	rf, err := fsys.OpenFile(dir+"/sub/missing", os.O_RDONLY, 0)
	if err == nil {
		rf.Close()
		t.Fatal("open missing succeeded")
	}
}
