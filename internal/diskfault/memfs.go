package diskfault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the error scripted faults return when they fail an
// operation without crashing the filesystem.
var ErrInjected = errors.New("diskfault: injected fault")

// ErrCrashed is returned by every operation on a MemFS that has crashed
// (scripted kill-point or explicit Crash) until Reboot is called. The
// process under test treats it like the machine losing power: nothing
// else it does reaches the disk.
var ErrCrashed = errors.New("diskfault: filesystem crashed")

// Op selects which filesystem operation a scripted fault intercepts.
type Op int

// The interceptable operations.
const (
	OpWrite Op = iota + 1 // File.Write / File.WriteAt
	OpSync                // File.Sync
	OpRename
	OpRemove
	OpOpen
)

// String names the op for test logs.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpOpen:
		return "open"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Fault scripts one fault. Path is a substring match against the file path
// ("" matches every path); Countdown skips that many matching calls before
// firing (0 = fire on the first). Exactly one fault fires per matching
// call; fired faults are spent and removed.
type Fault struct {
	Op        Op
	Path      string
	Countdown int

	// ShortWrite, for OpWrite, controls how much of the payload is applied
	// before the fault takes effect: 0 (the zero value) applies it all,
	// n > 0 applies only the first n bytes (torn write at an exact byte
	// offset), and negative applies nothing.
	ShortWrite int
	// Err, when non-nil, is returned from the operation (after any partial
	// effect). ENOSPC-style failures use this without Kill.
	Err error
	// Kill crashes the filesystem after the (partial) operation: all
	// unsynced bytes of every file are lost, except KeepTail bytes of this
	// file's unsynced tail (simulating the page cache having flushed part
	// of it). Every subsequent operation returns ErrCrashed until Reboot.
	Kill bool
	// KeepTail, with Kill on an OpWrite fault, preserves this many bytes of
	// the written file's unsynced tail across the crash.
	KeepTail int
	// IgnoreSync, for OpSync, reports success without making anything
	// durable — the lying-disk case. Bit flips (silent media corruption)
	// are scripted separately with MemFS.CorruptDurable, which edits the
	// durable image directly between process lifetimes.
	IgnoreSync bool
}

// memFile is one file: durable is what survives a crash, data is the live
// (volatile) view every open handle reads and writes.
type memFile struct {
	data    []byte
	durable []byte
}

// MemFS is the in-memory crash-simulating filesystem. Safe for concurrent
// use; fault scripting is typically done before the code under test runs.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	faults  []Fault
	crashed bool

	writes int // total Write/WriteAt calls observed, for WriteCount
	syncs  int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// Inject schedules a scripted fault. Faults fire at most once, in the
// order injected among those matching the same call.
func (m *MemFS) Inject(f Fault) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults = append(m.faults, f)
}

// ClearFaults drops all pending faults.
func (m *MemFS) ClearFaults() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults = nil
}

// Crash simulates power loss: every file reverts to its durable bytes.
// Operations fail with ErrCrashed until Reboot.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashLocked(nil, 0)
}

// Reboot clears the crashed state, as if the machine restarted. File
// contents are whatever the crash preserved.
func (m *MemFS) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
}

// Crashed reports whether the filesystem is in the post-crash state.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// WriteCount reports the total number of Write/WriteAt calls observed, so
// a test can first count a run's write operations and then re-run it with
// a kill-point at every index.
func (m *MemFS) WriteCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// SyncCount reports the total number of Sync calls observed.
func (m *MemFS) SyncCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// CorruptDurable XORs bit 0 of the durable byte at off in the file at
// path, returning false if the file does not exist or is shorter. It
// models silent media corruption between process lifetimes.
func (m *MemFS) CorruptDurable(path string, off int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[Clean(path)]
	if !ok || off < 0 || off >= int64(len(f.durable)) {
		return false
	}
	f.durable[off] ^= 1
	// The live view mirrors the durable image when nothing volatile is
	// pending; corrupt it too so a reader that never crashed also sees it.
	if off < int64(len(f.data)) {
		f.data[off] ^= 1
	}
	return true
}

// DurableLen reports the durable byte count of path (-1 if absent).
func (m *MemFS) DurableLen(path string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[Clean(path)]
	if !ok {
		return -1
	}
	return int64(len(f.durable))
}

// crashLocked reverts every file to durable bytes. keepFile, when non-nil,
// additionally keeps keep bytes of that file's unsynced tail.
func (m *MemFS) crashLocked(keepFile *memFile, keep int) {
	for _, f := range m.files {
		if f == keepFile && keep > 0 {
			n := len(f.durable) + keep
			if n > len(f.data) {
				n = len(f.data)
			}
			f.durable = append([]byte(nil), f.data[:n]...)
		}
		f.data = append([]byte(nil), f.durable...)
	}
	m.crashed = true
}

// takeFault pops the first pending fault matching (op, path), honoring
// countdowns. Caller holds mu.
func (m *MemFS) takeFault(op Op, path string) *Fault {
	for i := range m.faults {
		f := &m.faults[i]
		if f.Op != op || !strings.Contains(path, f.Path) {
			continue
		}
		if f.Countdown > 0 {
			f.Countdown--
			return nil
		}
		fired := *f
		m.faults = append(m.faults[:i], m.faults[i+1:]...)
		return &fired
	}
	return nil
}

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if f := m.takeFault(OpOpen, name); f != nil {
		if f.Kill {
			m.crashLocked(nil, 0)
			return nil, ErrCrashed
		}
		if f.Err != nil {
			return nil, f.Err
		}
	}
	mf, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		mf = &memFile{}
		m.files[name] = mf
		m.dirs[filepath.Dir(name)] = true
	} else if flag&os.O_TRUNC != 0 {
		mf.data = nil
	}
	h := &memHandle{fs: m, f: mf, path: name}
	if flag&os.O_APPEND != 0 || flag&os.O_WRONLY != 0 && flag&os.O_TRUNC == 0 && ok {
		h.pos = int64(len(mf.data))
	}
	return h, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = Clean(oldname), Clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if f := m.takeFault(OpRename, oldname); f != nil {
		if f.Kill {
			m.crashLocked(nil, 0)
			return ErrCrashed
		}
		if f.Err != nil {
			return f.Err
		}
	}
	mf, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = mf
	m.dirs[filepath.Dir(newname)] = true
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if f := m.takeFault(OpRemove, name); f != nil {
		if f.Kill {
			m.crashLocked(nil, 0)
			return ErrCrashed
		}
		if f.Err != nil {
			return f.Err
		}
	}
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	dir = Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	var names []string
	for p := range m.files {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	if names == nil && !m.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) MkdirAll(dir string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[Clean(dir)] = true
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil // renames are modeled as immediately durable
}

// memHandle is one open descriptor: a position over a memFile.
type memHandle struct {
	fs   *MemFS
	f    *memFile
	path string
	pos  int64
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n, err := h.writeAtLocked(p, h.pos)
	h.pos += int64(n)
	return n, err
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.writeAtLocked(p, off)
}

// writeAtLocked performs the write with fault interception. Caller holds
// fs.mu.
func (h *memHandle) writeAtLocked(p []byte, off int64) (int, error) {
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	h.fs.writes++
	var fault *Fault
	n := len(p)
	if f := h.fs.takeFault(OpWrite, h.path); f != nil {
		fault = f
		switch {
		case f.ShortWrite < 0:
			n = 0
		case f.ShortWrite > 0 && f.ShortWrite < n:
			n = f.ShortWrite
		}
	}
	end := off + int64(n)
	if end > int64(len(h.f.data)) {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[off:end], p[:n])
	if fault == nil {
		return n, nil
	}
	if fault.Kill {
		h.fs.crashLocked(h.f, fault.KeepTail)
		return n, ErrCrashed
	}
	if fault.Err != nil {
		return n, fault.Err
	}
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	h.fs.syncs++
	if f := h.fs.takeFault(OpSync, h.path); f != nil {
		if f.Kill {
			h.fs.crashLocked(nil, 0)
			return ErrCrashed
		}
		if f.IgnoreSync {
			return nil
		}
		if f.Err != nil {
			return f.Err
		}
	}
	h.f.durable = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Close() error { return nil }

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	return int64(len(h.f.data)), nil
}
