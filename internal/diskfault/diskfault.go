// Package diskfault abstracts the file operations the persistence layer
// performs (append, write-at, fsync, atomic rename, directory listing) behind
// an injectable FS interface, and provides two implementations: the real
// operating-system filesystem, and an in-memory filesystem with
// crash-consistency semantics and scripted fault injection.
//
// The in-memory model is a caricature of a disk behind a volatile page
// cache: every write lands in a volatile view first, Sync makes the file's
// current bytes durable, and a crash (scripted kill-point or explicit
// Crash call) discards everything volatile — optionally keeping an exact
// byte-count prefix of the unsynced tail, which is how torn writes at
// precise offsets are produced. Scripted faults can also short-circuit a
// write after N bytes, fail an fsync, silently ignore an fsync (the
// lying-disk case), or flip a bit in already-durable data. This is the
// disk-side sibling of internal/netfault: the crash-recovery differential
// oracle in internal/serve drives randomized delta sequences into a server
// persisting through a MemFS, kills it at every injection point, recovers,
// and requires byte-identical serving state or a typed quarantine.
//
// Renames and removes are modeled as immediately durable (no directory-
// entry loss window); the interesting torn states all live in file data,
// and the write paths under test order content-fsync before rename anyway.
package diskfault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the per-file surface the persistence layer uses. WriteAt exists
// for future in-place formats; the snapshot and WAL writers only append.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Sync makes all bytes written so far durable: they survive a crash.
	Sync() error
	// Size reports the file's current length in bytes.
	Size() (int64, error)
}

// FS is the filesystem surface the persistence layer uses.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags used
	// here: os.O_RDONLY, and os.O_CREATE|os.O_WRONLY (truncate or append).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making renames durable.
	SyncDir(dir string) error
}

// OS returns the real operating-system filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir opens the directory and fsyncs it, which is how a rename is made
// durable on POSIX filesystems.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads the whole file at name through fs.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// IsNotExist reports whether err means the file does not exist, for either
// implementation.
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist) || errors.Is(err, os.ErrNotExist)
}

// Clean normalizes a path the way both implementations key files.
func Clean(p string) string { return filepath.Clean(p) }
