package fsm

import (
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
)

func TestMineOnG1(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cust := syms.Lookup(gen.LCust)
	out := Mine(f.G, cust, Options{MinSupport: 3, MaxEdges: 2})
	if len(out) == 0 {
		t.Fatal("no frequent patterns on G1")
	}
	for _, fr := range out {
		if fr.Support < 3 {
			t.Errorf("pattern below min support: %d %s", fr.Support, fr.P)
		}
		// Verify the reported support.
		got := len(match.MatchSet(fr.P, f.G, nil, match.Options{}))
		if got != fr.Support {
			t.Errorf("support mismatch: reported %d actual %d for %s", fr.Support, got, fr.P)
		}
	}
	// Supports are sorted descending.
	for i := 1; i < len(out); i++ {
		if out[i].Support > out[i-1].Support {
			t.Error("results not sorted by support")
		}
	}
}

func TestMineAntiMonotone(t *testing.T) {
	// "x likes a French restaurant" has support 5 on G1; it must appear
	// before (or with equal support as) any of its extensions.
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cust := syms.Lookup(gen.LCust)
	out := Mine(f.G, cust, Options{MinSupport: 5, MaxEdges: 2})
	for _, fr := range out {
		if fr.Support < 5 {
			t.Errorf("min support violated: %d", fr.Support)
		}
	}
}

func TestMineMaxPatterns(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	cust := syms.Lookup(gen.LCust)
	out := Mine(f.G, cust, Options{MinSupport: 1, MaxEdges: 2, MaxPatterns: 3})
	if len(out) != 3 {
		t.Errorf("MaxPatterns: got %d want 3", len(out))
	}
}

func TestMineBelowSupportRoots(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	city := syms.Lookup(gen.LCity)
	// Only 2 cities; min support 5 can never be met.
	if out := Mine(f.G, city, Options{MinSupport: 5, MaxEdges: 2}); out != nil {
		t.Errorf("mined %d patterns with unreachable support", len(out))
	}
}

func TestMineDeterministic(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(150, 3))
	user := syms.Lookup("user")
	a := Mine(g, user, Options{MinSupport: 20, MaxEdges: 2, MaxPatterns: 10})
	b := Mine(g, user, Options{MinSupport: 20, MaxEdges: 2, MaxPatterns: 10})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Support != b[i].Support || !a[i].P.IsomorphicTo(b[i].P) {
			t.Errorf("pattern %d differs across runs", i)
		}
	}
}
