// Package fsm is a single-graph frequent subgraph miner, the stand-in for
// GRAMI in the paper's Exp-2 comparison (Section 6): it mines frequent
// patterns by levelwise growth with an anti-monotonic support (distinct
// images of a designated root node, the measure of Bringmann and Nijssen
// that the paper's own support revises), but knows nothing about
// consequents or confidence. The case-study harness contrasts its output —
// frequent but association-free patterns — with the GPARs DMine discovers.
package fsm

import (
	"sort"

	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// Options controls a mining run.
type Options struct {
	MinSupport  int // σ on distinct root images
	MaxEdges    int // pattern edge budget
	MaxPatterns int // cap on returned patterns (0 = all)
	EmbedCap    int // embeddings per root when discovering extensions
}

// Frequent is one mined pattern with its support.
type Frequent struct {
	P       *pattern.Pattern
	Support int
}

// Mine returns the frequent patterns rooted at nodes labeled rootLabel,
// ordered by descending support then ascending size.
func Mine(g *graph.Graph, rootLabel graph.Label, opts Options) []Frequent {
	if opts.MaxEdges <= 0 {
		opts.MaxEdges = 3
	}
	if opts.EmbedCap <= 0 {
		opts.EmbedCap = 32
	}
	roots := g.NodesWithLabel(rootLabel)
	if len(roots) < opts.MinSupport {
		return nil
	}

	seed := pattern.New(g.Symbols())
	seed.X = seed.AddNodeL(rootLabel)

	type cand struct {
		p       *pattern.Pattern
		support []graph.NodeID // matching roots
	}
	frontier := []cand{{p: seed, support: roots}}
	var out []Frequent
	seen := map[string][]*pattern.Pattern{} // signature -> patterns (iso dedup)

	for round := 1; round <= opts.MaxEdges && len(frontier) > 0; round++ {
		var next []cand
		for _, c := range frontier {
			for _, ext := range discover(g, c.p, c.support, opts.EmbedCap) {
				child := c.p.Apply(ext)
				if child == nil {
					continue
				}
				sig := child.Signature()
				dup := false
				for _, old := range seen[sig] {
					if child.IsomorphicTo(old) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				var supp []graph.NodeID
				for _, v := range c.support {
					if match.HasMatchAt(child, g, v, match.Options{}) {
						supp = append(supp, v)
					}
				}
				if len(supp) < opts.MinSupport {
					continue
				}
				seen[sig] = append(seen[sig], child)
				out = append(out, Frequent{P: child, Support: len(supp)})
				next = append(next, cand{p: child, support: supp})
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].P.Size() != out[j].P.Size() {
			return out[i].P.Size() < out[j].P.Size()
		}
		return out[i].P.Signature() < out[j].P.Signature()
	})
	if opts.MaxPatterns > 0 && len(out) > opts.MaxPatterns {
		out = out[:opts.MaxPatterns]
	}
	return out
}

// discover enumerates single-edge extensions realized around the supporting
// roots, like the GPAR miner but without consequent bookkeeping.
func discover(g *graph.Graph, p *pattern.Pattern, roots []graph.NodeID, embedCap int) []pattern.Extension {
	seen := map[pattern.Extension]bool{}
	mopts := match.Options{MaxMatches: embedCap}
	for _, vx := range roots {
		match.EnumerateAnchored(p, g, vx, mopts, func(asgn []graph.NodeID) bool {
			inv := make(map[graph.NodeID]int, len(asgn))
			for u, dv := range asgn {
				inv[dv] = u
			}
			for u, dv := range asgn {
				for _, e := range g.Out(dv) {
					if u2, ok := inv[e.To]; ok {
						if !p.HasEdge(u, u2, e.Label) {
							seen[pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, Close: u2}] = true
						}
						continue
					}
					seen[pattern.Extension{Src: u, Outgoing: true, EdgeLabel: e.Label, NewLabel: g.Label(e.To), Close: pattern.NoNode}] = true
				}
				for _, e := range g.In(dv) {
					if u2, ok := inv[e.To]; ok {
						if !p.HasEdge(u2, u, e.Label) {
							seen[pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, Close: u2}] = true
						}
						continue
					}
					seen[pattern.Extension{Src: u, Outgoing: false, EdgeLabel: e.Label, NewLabel: g.Label(e.To), Close: pattern.NoNode}] = true
				}
			}
			return true
		})
	}
	out := make([]pattern.Extension, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
