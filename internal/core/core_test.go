package core_test

import (
	"math"
	"testing"

	. "gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// TestExample5And8Numbers pins the paper's Examples 5 and 8 on G1:
// supp(q,G1)=5, supp(q̄,G1)=1, and the confidences of R1 and R5-R8.
func TestExample5And8Numbers(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	pred := gen.VisitPredicate(syms)

	if got := len(Pq(f.G, pred)); got != 5 {
		t.Errorf("supp(q,G1) = %d want 5", got)
	}
	qb := Pqbar(f.G, pred)
	if len(qb) != 1 || qb[0] != f.Cust[5] {
		t.Errorf("q̄ set = %v want [cust5=%d]", qb, f.Cust[5])
	}

	cases := []struct {
		name    string
		rule    *Rule
		suppR   int
		suppQqb int
		conf    float64
		stdConf float64
	}{
		{"R1", gen.R1(syms), 3, 1, 0.6, 0.75},
		{"R5", gen.R5(syms), 4, 1, 0.8, 0.8},
		{"R6", gen.R6(syms), 2, 1, 0.4, 2.0 / 3.0},
		{"R7", gen.R7(syms), 3, 1, 0.6, 0.75},
		{"R8", gen.R8(syms), 1, 1, 0.2, 0.5},
	}
	for _, c := range cases {
		res := Eval(f.G, c.rule, match.Options{}, false)
		if res.Stats.SuppR != c.suppR {
			t.Errorf("%s: supp(R) = %d want %d", c.name, res.Stats.SuppR, c.suppR)
		}
		if res.Stats.SuppQqb != c.suppQqb {
			t.Errorf("%s: supp(Qq̄) = %d want %d", c.name, res.Stats.SuppQqb, c.suppQqb)
		}
		if got := res.Stats.Conf(); math.Abs(got-c.conf) > 1e-9 {
			t.Errorf("%s: conf = %v want %v", c.name, got, c.conf)
		}
	}
	// Example 5/Q1: supp(Q1,G1) = 4.
	res := Eval(f.G, gen.R1(syms), match.Options{}, true)
	if res.Stats.SuppQ != 4 {
		t.Errorf("supp(Q1,G1) = %d want 4", res.Stats.SuppQ)
	}
	// Conventional confidence of R1 would be 3/4 (Section 3's critique).
	if got := res.Stats.StdConf(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("StdConf(R1) = %v want 0.75", got)
	}
}

// TestExample7LCWA reproduces Example 6/7: three Ecuador residents where
// v1 likes the album (positive), v2 likes only another album (negative) and
// v3 has no like edge (unknown). BF confidence is 1; conventional
// confidence would be 1/3.
func TestExample7LCWA(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	ec := g.AddNode("Ecuador")
	shak := g.AddNode("Shakira album")
	mj := g.AddNode("MJ album")
	v1 := g.AddNode("person")
	v2 := g.AddNode("person")
	v3 := g.AddNode("person")
	for _, v := range []graph.NodeID{v1, v2, v3} {
		g.AddEdge(v, ec, "live_in")
	}
	g.AddEdge(v1, shak, "like")
	g.AddEdge(v2, mj, "like")

	p := pattern.New(syms)
	x := p.AddNode("person")
	c := p.AddNode("Ecuador")
	p.AddEdge(x, c, "live_in")
	p.X = x
	r := &Rule{Q: p, Pred: Predicate{
		XLabel:    syms.Intern("person"),
		EdgeLabel: syms.Intern("like"),
		YLabel:    syms.Intern("Shakira album"),
	}}
	res := Eval(g, r, match.Options{}, true)
	s := res.Stats
	if s.SuppR != 1 || s.SuppQbar != 1 || s.SuppQqb != 1 || s.SuppQ1 != 1 {
		t.Fatalf("stats = %+v want 1,1,1,1", s)
	}
	if got := s.Conf(); got != 1 {
		t.Errorf("conf = %v want 1 (LCWA removes the unknown case)", got)
	}
	if got := s.StdConf(); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("StdConf = %v want 1/3", got)
	}
}

func TestTrivialCases(t *testing.T) {
	// supp(Qq̄) = 0: logic rule on G2 (every fake-suspect already is fake).
	syms := graph.NewSymbols()
	f := gen.G2(syms)
	r4 := gen.R4(syms)
	res := Eval(f.G, r4, match.Options{}, false)
	if res.Stats.SuppR != 3 {
		t.Errorf("supp(R4,G2) = %d want 3", res.Stats.SuppR)
	}
	trivial, reason := res.Stats.Trivial()
	if !trivial {
		t.Error("R4 on G2 should be trivial (supp(Qq̄)=0)")
	}
	if reason == "" {
		t.Error("missing triviality reason")
	}
	if !math.IsInf(res.Stats.Conf(), 1) {
		t.Errorf("conf should be +Inf for a logic rule, got %v", res.Stats.Conf())
	}

	// supp(q) = 0: predicate names a label no edge points to.
	bad := &Rule{Q: r4.Q, Pred: Predicate{
		XLabel:    syms.Intern(gen.LAcct),
		EdgeLabel: syms.Intern("nonexistent"),
		YLabel:    syms.Intern(gen.LFake),
	}}
	res2 := Eval(f.G, bad, match.Options{}, false)
	if trivial, _ := res2.Stats.Trivial(); !trivial {
		t.Error("supp(q)=0 should be trivial")
	}
	if !math.IsNaN(res2.Stats.Conf()) {
		t.Errorf("conf should be NaN when supp(q)=0, got %v", res2.Stats.Conf())
	}
}

func TestPRConstruction(t *testing.T) {
	syms := graph.NewSymbols()
	r1 := gen.R1(syms)
	pr := r1.PR()
	// PR adds exactly one edge (x already has y in Q1).
	if pr.NumEdges() != r1.Q.NumEdges()+1 {
		t.Errorf("PR edges = %d want %d", pr.NumEdges(), r1.Q.NumEdges()+1)
	}
	if pr.NumNodes() != r1.Q.NumNodes() {
		t.Errorf("PR should not add nodes when Q has y")
	}
	if !pr.HasEdge(pr.X, pr.Y, r1.Pred.EdgeLabel) {
		t.Error("PR lacks the consequent edge")
	}
	// A rule whose Q has no y gets a fresh y node.
	p := pattern.New(syms)
	x := p.AddNode(gen.LCust)
	x2 := p.AddNode(gen.LCust)
	p.AddEdge(x, x2, gen.EFriend)
	p.X = x
	r := &Rule{Q: p, Pred: gen.VisitPredicate(syms)}
	pr2 := r.PR()
	if pr2.NumNodes() != 3 || pr2.Y == pattern.NoNode {
		t.Errorf("fresh y not added: %d nodes, Y=%d", pr2.NumNodes(), pr2.Y)
	}
}

func TestRadiusAndNontrivial(t *testing.T) {
	syms := graph.NewSymbols()
	r1 := gen.R1(syms)
	// The consequent edge visit(x,y) pulls y to distance 1 of x, so PR1 has
	// radius 1 even though the antecedent Q1 has radius 2.
	if r := r1.Radius(); r != 1 {
		t.Errorf("r(PR1, x) = %d want 1", r)
	}
	if r := r1.Q.RadiusAt(r1.Q.X); r != 2 {
		t.Errorf("r(Q1, x) = %d want 2", r)
	}
	if !r1.Nontrivial() {
		t.Error("R1 should be nontrivial")
	}
	// Empty antecedent is trivial.
	p := pattern.New(syms)
	p.X = p.AddNode(gen.LCust)
	r := &Rule{Q: p, Pred: gen.VisitPredicate(syms)}
	if r.Nontrivial() {
		t.Error("empty-Q rule should be trivial")
	}
	// q(x,y) inside Q is trivial.
	p2 := pattern.New(syms)
	x := p2.AddNode(gen.LCust)
	y := p2.AddNode(gen.LFrench)
	p2.AddEdge(x, y, gen.EVisit)
	p2.X, p2.Y = x, y
	r2 := &Rule{Q: p2, Pred: gen.VisitPredicate(syms)}
	if r2.Nontrivial() {
		t.Error("rule with q(x,y) in Q should be trivial")
	}
}

func TestValidate(t *testing.T) {
	syms := graph.NewSymbols()
	r1 := gen.R1(syms)
	if err := r1.Validate(); err != nil {
		t.Errorf("R1 should validate: %v", err)
	}
	bad := &Rule{Q: nil, Pred: r1.Pred}
	if bad.Validate() == nil {
		t.Error("nil Q validated")
	}
	p := pattern.New(syms)
	p.AddNode(gen.LCity)
	r := &Rule{Q: p, Pred: r1.Pred}
	if r.Validate() == nil {
		t.Error("rule without x validated")
	}
	p.X = 0 // city-labeled x vs cust predicate
	if r.Validate() == nil {
		t.Error("x label mismatch validated")
	}
}

func TestStatsAddAndMaxConf(t *testing.T) {
	a := Stats{SuppR: 1, SuppQ: 2, SuppQqb: 3, SuppQ1: 4, SuppQbar: 5}
	b := Stats{SuppR: 10, SuppQ: 20, SuppQqb: 30, SuppQ1: 40, SuppQbar: 50}
	a.Add(b)
	if a.SuppR != 11 || a.SuppQ != 22 || a.SuppQqb != 33 || a.SuppQ1 != 44 || a.SuppQbar != 55 {
		t.Errorf("Add = %+v", a)
	}
	if got := (Stats{SuppR: 3, SuppQbar: 2}).MaxConf(); got != 6 {
		t.Errorf("MaxConf = %v want 6", got)
	}
}

func TestPCAConf(t *testing.T) {
	s := Stats{SuppR: 3, SuppQqb: 2}
	if got := s.PCAConf(); got != 1.5 {
		t.Errorf("PCAConf = %v want 1.5", got)
	}
	if !math.IsInf(Stats{SuppR: 1}.PCAConf(), 1) {
		t.Error("PCAConf with zero denominator should be +Inf")
	}
}

func TestIConf(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	// IConf of R5: image-based supp(R) <= supp(R); denominator identical.
	r5 := gen.R5(syms)
	bf := Eval(f.G, r5, match.Options{}, false).Stats.Conf()
	ic := IConf(f.G, r5, match.Options{})
	if math.IsNaN(ic) {
		t.Fatal("IConf returned NaN on a well-defined rule")
	}
	if ic > bf+1e-9 {
		t.Errorf("IConf %v should not exceed BF conf %v (min-image <= distinct-x)", ic, bf)
	}
	// Predicate with no support.
	bad := &Rule{Q: r5.Q, Pred: Predicate{
		XLabel:    syms.Intern(gen.LCust),
		EdgeLabel: syms.Intern("zzz"),
		YLabel:    syms.Intern(gen.LFrench),
	}}
	if !math.IsNaN(IConf(f.G, bad, match.Options{})) {
		t.Error("IConf should be NaN when supp(q)=0")
	}
}

func TestEvalFullQEqualsRestrictedOnPaperRules(t *testing.T) {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	for _, r := range []*Rule{gen.R1(syms), gen.R5(syms), gen.R6(syms), gen.R7(syms), gen.R8(syms)} {
		fast := Eval(f.G, r, match.Options{}, false).Stats
		full := Eval(f.G, r, match.Options{}, true).Stats
		// All counters except SuppQ must agree; SuppQ(full) >= SuppQ(fast).
		if fast.SuppR != full.SuppR || fast.SuppQqb != full.SuppQqb ||
			fast.SuppQ1 != full.SuppQ1 || fast.SuppQbar != full.SuppQbar {
			t.Errorf("fast vs full stats disagree: %+v vs %+v", fast, full)
		}
		if full.SuppQ < fast.SuppQ {
			t.Errorf("full SuppQ %d < restricted %d", full.SuppQ, fast.SuppQ)
		}
	}
}

func TestCloneAndString(t *testing.T) {
	syms := graph.NewSymbols()
	r1 := gen.R1(syms)
	c := r1.Clone()
	c.Q.AddEdge(0, 1, "extra")
	if r1.Q.NumEdges() == c.Q.NumEdges() {
		t.Error("Clone shares the antecedent")
	}
	if r1.String() == "" || r1.Size() != r1.Q.Size() {
		t.Error("String/Size broken")
	}
}
