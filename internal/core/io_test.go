package core_test

import (
	"bytes"
	"strings"
	"testing"

	. "gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
)

func TestRuleIORoundTrip(t *testing.T) {
	syms := graph.NewSymbols()
	rules := []*Rule{gen.R1(syms), gen.R4(syms), gen.R5(syms)}
	var buf bytes.Buffer
	if err := WriteRules(&buf, rules); err != nil {
		t.Fatalf("WriteRules: %v", err)
	}
	got, err := ReadRules(&buf, graph.NewSymbols())
	if err != nil {
		t.Fatalf("ReadRules: %v", err)
	}
	if len(got) != len(rules) {
		t.Fatalf("round trip count: %d want %d", len(got), len(rules))
	}
	for i := range rules {
		a, b := rules[i], got[i]
		if a.Q.NumNodes() != b.Q.NumNodes() || a.Q.NumEdges() != b.Q.NumEdges() {
			t.Errorf("rule %d shape changed: (%d,%d) vs (%d,%d)", i,
				a.Q.NumNodes(), a.Q.NumEdges(), b.Q.NumNodes(), b.Q.NumEdges())
		}
		if a.Q.Symbols().Name(a.Pred.EdgeLabel) != b.Q.Symbols().Name(b.Pred.EdgeLabel) {
			t.Errorf("rule %d predicate changed", i)
		}
		// Multiplicity survives (R1 has the French restaurant^3 node).
		for u := 0; u < a.Q.NumNodes(); u++ {
			if a.Q.Mult(u) != b.Q.Mult(u) {
				t.Errorf("rule %d node %d mult %d vs %d", i, u, a.Q.Mult(u), b.Q.Mult(u))
			}
		}
		// Designations survive.
		if (a.Q.X < 0) != (b.Q.X < 0) || (a.Q.Y < 0) != (b.Q.Y < 0) {
			t.Errorf("rule %d designations changed", i)
		}
	}
}

func TestReadRulesErrors(t *testing.T) {
	cases := []string{
		"end",                           // end without rule
		"rule\nrule\n",                  // nested
		"rule\npred \"a\" \"b\"\nend",   // bad pred arity
		"rule\nnode 5 \"a\" 1 -\nend",   // non-dense node id
		"rule\nnode 0 \"a\" 1 q\nend",   // bad role
		"rule\nedge 0 1 \"e\"\nend",     // edge before nodes
		"rule\npred \"a\" \"b\" \"c\"",  // unterminated
		"bogus",                         // unknown record
		"rule\nnode 0 \"a\" one -\nend", // bad mult
	}
	for _, c := range cases {
		if _, err := ReadRules(strings.NewReader(c), nil); err == nil {
			t.Errorf("ReadRules(%q) succeeded, want error", c)
		}
	}
	// Comments and blank lines pass.
	ok := "# comment\n\nrule\npred \"cust\" \"visit\" \"rest\"\nnode 0 \"cust\" 1 x\nnode 1 \"rest\" 1 y\nedge 0 1 \"like\"\nend\n"
	rules, err := ReadRules(strings.NewReader(ok), nil)
	if err != nil || len(rules) != 1 {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestReadRulesValidates(t *testing.T) {
	// x label must match the predicate's x label.
	bad := "rule\npred \"cust\" \"visit\" \"rest\"\nnode 0 \"city\" 1 x\nnode 1 \"rest\" 1 -\nedge 0 1 \"e\"\nend\n"
	if _, err := ReadRules(strings.NewReader(bad), nil); err == nil {
		t.Error("mismatched x label accepted")
	}
}

func TestRuleKeyStability(t *testing.T) {
	// Identical rules share a key across symbol tables; the key survives a
	// serialization round trip (internal/serve caches by it).
	a := gen.R1(graph.NewSymbols())
	b := gen.R1(graph.NewSymbols())
	if a.Key() != b.Key() {
		t.Errorf("identical rules: keys %s vs %s", a.Key(), b.Key())
	}
	var buf bytes.Buffer
	if err := WriteRules(&buf, []*Rule{a}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRules(&buf, graph.NewSymbols())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Key() != a.Key() {
		t.Errorf("round trip changed key: %s vs %s", got[0].Key(), a.Key())
	}
	if c := gen.R5(graph.NewSymbols()); c.Key() == a.Key() {
		t.Errorf("distinct rules share key %s", a.Key())
	}
}
