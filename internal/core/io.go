package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// Rule serialization format (line oriented, labels quoted):
//
//	rule
//	pred <xlabel> <edgelabel> <ylabel>
//	node <i> <label> <mult> [x|y|-]
//	edge <from> <to> <label>
//	end
//
// Multiple rules concatenate. Blank lines and # comments are ignored.

// Key returns a stable identity for the rule: a digest of its canonical
// serialization (WriteRules of just this rule). Two structurally identical
// rules over the same label names share a key across processes, which makes
// it usable as a cache key (internal/serve keys its match-set cache by rule
// Key + graph generation). Isomorphic-but-reordered rules get distinct keys;
// that is conservative for caching. Key renders label names, so it must not
// race with Symbols.Intern on the shared table.
func (r *Rule) Key() string {
	var b strings.Builder
	// strings.Builder never fails; WriteRules only returns writer errors.
	_ = WriteRules(&b, []*Rule{r})
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:12])
}

// WriteRules serializes rules to w.
func WriteRules(w io.Writer, rules []*Rule) error {
	bw := bufio.NewWriter(w)
	for _, r := range rules {
		syms := r.Q.Symbols()
		fmt.Fprintf(bw, "rule\n")
		fmt.Fprintf(bw, "pred %s %s %s\n",
			strconv.Quote(syms.Name(r.Pred.XLabel)),
			strconv.Quote(syms.Name(r.Pred.EdgeLabel)),
			strconv.Quote(syms.Name(r.Pred.YLabel)))
		for u := 0; u < r.Q.NumNodes(); u++ {
			role := "-"
			switch u {
			case r.Q.X:
				role = "x"
			case r.Q.Y:
				role = "y"
			}
			fmt.Fprintf(bw, "node %d %s %d %s\n", u, strconv.Quote(r.Q.LabelName(u)), r.Q.Mult(u), role)
		}
		for _, e := range r.Q.Edges() {
			fmt.Fprintf(bw, "edge %d %d %s\n", e.From, e.To, strconv.Quote(syms.Name(e.Label)))
		}
		fmt.Fprintf(bw, "end\n")
	}
	return bw.Flush()
}

// ReadRules parses rules written by WriteRules, interning labels into syms.
func ReadRules(r io.Reader, syms *graph.Symbols) ([]*Rule, error) {
	if syms == nil {
		syms = graph.NewSymbols()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var rules []*Rule
	var cur *Rule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "rule":
			if cur != nil {
				return nil, fmt.Errorf("core: line %d: nested rule", lineNo)
			}
			cur = &Rule{Q: pattern.New(syms)}
		case "pred":
			if cur == nil || len(fields) != 4 {
				return nil, fmt.Errorf("core: line %d: bad pred", lineNo)
			}
			cur.Pred = Predicate{
				XLabel:    syms.Intern(fields[1]),
				EdgeLabel: syms.Intern(fields[2]),
				YLabel:    syms.Intern(fields[3]),
			}
		case "node":
			if cur == nil || len(fields) != 5 {
				return nil, fmt.Errorf("core: line %d: bad node", lineNo)
			}
			id, err1 := strconv.Atoi(fields[1])
			mult, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("core: line %d: bad node numbers", lineNo)
			}
			got := cur.Q.AddNode(fields[2])
			if got != id {
				return nil, fmt.Errorf("core: line %d: node ids must be dense (got %d want %d)", lineNo, id, got)
			}
			if mult > 1 {
				cur.Q.SetMult(got, mult)
			}
			switch fields[4] {
			case "x":
				cur.Q.X = got
			case "y":
				cur.Q.Y = got
			case "-":
			default:
				return nil, fmt.Errorf("core: line %d: bad role %q", lineNo, fields[4])
			}
		case "edge":
			if cur == nil || len(fields) != 4 {
				return nil, fmt.Errorf("core: line %d: bad edge", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || from < 0 || to < 0 ||
				from >= cur.Q.NumNodes() || to >= cur.Q.NumNodes() {
				return nil, fmt.Errorf("core: line %d: bad edge endpoints", lineNo)
			}
			cur.Q.AddEdge(from, to, fields[3])
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("core: line %d: end without rule", lineNo)
			}
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("core: line %d: %w", lineNo, err)
			}
			rules = append(rules, cur)
			cur = nil
		default:
			return nil, fmt.Errorf("core: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("core: unterminated rule")
	}
	return rules, nil
}

// splitQuoted splits a line into fields where quoted fields may contain
// spaces.
func splitQuoted(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, err
			}
			out = append(out, s)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}
