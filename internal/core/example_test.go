package core_test

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// ExampleEval evaluates the paper's Example 6/7 scenario: BF confidence
// under the local closed world assumption ignores unknown cases.
func ExampleEval() {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	ecuador := g.AddNode("Ecuador")
	album := g.AddNode("Shakira album")
	other := g.AddNode("MJ album")
	v1 := g.AddNode("person")
	v2 := g.AddNode("person")
	v3 := g.AddNode("person")
	for _, v := range []graph.NodeID{v1, v2, v3} {
		g.AddEdge(v, ecuador, "live_in")
	}
	g.AddEdge(v1, album, "like") // positive
	g.AddEdge(v2, other, "like") // negative under LCWA
	// v3 has no like edge at all: unknown, not a counterexample.

	q := pattern.New(syms)
	x := q.AddNode("person")
	c := q.AddNode("Ecuador")
	q.AddEdge(x, c, "live_in")
	q.X = x
	rule := &core.Rule{Q: q, Pred: core.Predicate{
		XLabel:    syms.Intern("person"),
		EdgeLabel: syms.Intern("like"),
		YLabel:    syms.Intern("Shakira album"),
	}}

	res := core.Eval(g, rule, match.Options{}, true)
	fmt.Printf("BF conf = %v, conventional = %.2f\n",
		res.Stats.Conf(), res.Stats.StdConf())
	// Output: BF conf = 1, conventional = 0.33
}

// ExampleRule_PR shows how the consequent edge extends the antecedent.
func ExampleRule_PR() {
	syms := graph.NewSymbols()
	q := pattern.New(syms)
	x := q.AddNode("cust")
	x2 := q.AddNode("cust")
	q.AddEdge(x, x2, "friend")
	q.X = x
	rule := &core.Rule{Q: q, Pred: core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("restaurant"),
	}}
	pr := rule.PR()
	fmt.Printf("Q: %d nodes %d edges; PR: %d nodes %d edges\n",
		q.NumNodes(), q.NumEdges(), pr.NumNodes(), pr.NumEdges())
	// Output: Q: 2 nodes 1 edges; PR: 3 nodes 2 edges
}
