// Package core defines graph-pattern association rules (GPARs) and their
// topological support and confidence metrics — the primary contribution of
// "Association Rules with Graph Patterns" (Fan, Wang, Wu, Xu; PVLDB 2015),
// Sections 2.2 and 3.
//
// A GPAR R(x,y): Q(x,y) ⇒ q(x,y) pairs an antecedent graph pattern Q with a
// consequent edge predicate q. Support counts distinct matches of the
// designated node x (anti-monotonic), and confidence is a Bayes-Factor
// style measure under the local closed world assumption (LCWA), with the
// paper's two alternatives (PCA confidence, minimum-image-based confidence)
// also provided.
package core

import (
	"fmt"
	"math"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// Predicate is the consequent q(x, y): an edge labeled EdgeLabel from a node
// labeled XLabel to a node labeled YLabel. Value bindings (e.g. y = fake)
// are expressed by YLabel being a constant-valued label.
type Predicate struct {
	XLabel    graph.Label
	EdgeLabel graph.Label
	YLabel    graph.Label
}

// String renders the predicate using the symbol table.
func (p Predicate) String(syms *graph.Symbols) string {
	return fmt.Sprintf("%s(%s, %s)", syms.Name(p.EdgeLabel), syms.Name(p.XLabel), syms.Name(p.YLabel))
}

// Rule is a GPAR R(x,y): Q(x,y) ⇒ q(x,y). Q.X must be set and labeled
// Pred.XLabel. Q.Y is either pattern.NoNode (the consequent's y is a fresh
// node) or a node labeled Pred.YLabel.
type Rule struct {
	Q    *pattern.Pattern
	Pred Predicate
}

// PR returns the pattern PR of Section 2.2: Q extended with the consequent
// edge q(x, y). When Q has no designated y, a fresh y node is appended.
func (r *Rule) PR() *pattern.Pattern {
	return r.PRInto(pattern.New(r.Q.Symbols()))
}

// PRInto is PR building into dst (reusing its storage), for hot paths that
// probe PR per candidate and recycle the scratch pattern. dst must not
// alias r.Q.
func (r *Rule) PRInto(dst *pattern.Pattern) *pattern.Pattern {
	p := r.Q.CloneInto(dst)
	y := p.Y
	if y == pattern.NoNode {
		y = p.AddNodeL(r.Pred.YLabel)
		p.Y = y
	}
	p.AddEdgeL(p.X, y, r.Pred.EdgeLabel)
	return p
}

// Radius returns r(PR, x), the radius the DMP bound d constrains.
func (r *Rule) Radius() int {
	return r.PR().RadiusAt(r.Q.X)
}

// Nontrivial reports whether the rule satisfies the three conditions of
// Section 2.2: PR is connected, Q has at least one edge, and q(x,y) does
// not already appear in Q.
func (r *Rule) Nontrivial() bool {
	if r.Q.NumEdges() == 0 {
		return false
	}
	if r.Q.Y != pattern.NoNode && r.Q.HasEdge(r.Q.X, r.Q.Y, r.Pred.EdgeLabel) {
		return false
	}
	return r.PR().Connected()
}

// Validate checks structural well-formedness and returns a descriptive
// error for malformed rules (missing x, label mismatches).
func (r *Rule) Validate() error {
	if r.Q == nil {
		return fmt.Errorf("core: rule has nil antecedent")
	}
	if r.Q.X == pattern.NoNode {
		return fmt.Errorf("core: antecedent has no designated x")
	}
	if r.Q.Label(r.Q.X) != r.Pred.XLabel {
		return fmt.Errorf("core: x label %d does not match predicate x label %d", r.Q.Label(r.Q.X), r.Pred.XLabel)
	}
	if r.Q.Y != pattern.NoNode && r.Q.Label(r.Q.Y) != r.Pred.YLabel {
		return fmt.Errorf("core: y label %d does not match predicate y label %d", r.Q.Label(r.Q.Y), r.Pred.YLabel)
	}
	return nil
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	return &Rule{Q: r.Q.Clone(), Pred: r.Pred}
}

// Size returns |Q| = |Vp| + |Ep| of the antecedent (before expansion).
func (r *Rule) Size() int { return r.Q.Size() }

// String renders the rule for logs and the case-study output.
func (r *Rule) String() string {
	return fmt.Sprintf("%s => %s", r.Q.String(), r.Pred.String(r.Q.Symbols()))
}

// Stats carries the five counters of Section 3 for one rule on one graph
// (or one fragment — the counters are summable across center-disjoint
// fragments, which is what DMine's message assembly does).
type Stats struct {
	SuppR    int // supp(R,G)  = ||PR(x,G)||
	SuppQ    int // supp(Q,G)  = ||Q(x,G)||
	SuppQqb  int // supp(Qq̄,G) = ||Q(x,G) ∩ Pq̄(x,G)||
	SuppQ1   int // supp(q,G)  = ||Pq(x,G)||
	SuppQbar int // supp(q̄,G)
}

// Add accumulates fragment-local stats (message assembly, lines 4-7 of
// algorithm DMine).
func (s *Stats) Add(t Stats) {
	s.SuppR += t.SuppR
	s.SuppQ += t.SuppQ
	s.SuppQqb += t.SuppQqb
	s.SuppQ1 += t.SuppQ1
	s.SuppQbar += t.SuppQbar
}

// Trivial classifies the two degenerate cases of Section 3. It returns
// (true, reason) when the rule is trivial on this graph.
func (s Stats) Trivial() (bool, string) {
	if s.SuppQ1 == 0 {
		return true, "supp(q,G) = 0: q(x,y) specifies no user in G"
	}
	if s.SuppQqb == 0 {
		return true, "supp(Qq̄,G) = 0: R holds as a logic rule on G"
	}
	return false, ""
}

// Conf returns the revised Bayes Factor confidence of Section 3:
//
//	conf(R,G) = supp(R,G)·supp(q̄,G) / (supp(Qq̄,G)·supp(q,G))
//
// The two trivial cases return +Inf (logic rule: supp(Qq̄) = 0 with
// non-zero numerator) and NaN (supp(q) = 0, an uninteresting rule the
// mining process discards).
func (s Stats) Conf() float64 {
	if s.SuppQ1 == 0 {
		return math.NaN()
	}
	num := float64(s.SuppR) * float64(s.SuppQbar)
	den := float64(s.SuppQqb) * float64(s.SuppQ1)
	if den == 0 {
		// supp(Qq̄) = 0: no antecedent match contradicts the rule — the
		// "logic rule" trivial case, regardless of the numerator.
		return math.Inf(1)
	}
	return num / den
}

// PCAConf returns the PCA confidence alternative evaluated in Section 6:
// supp(R,G) / supp(Qq̄,G) under the LCWA.
func (s Stats) PCAConf() float64 {
	if s.SuppQqb == 0 {
		return math.Inf(1)
	}
	return float64(s.SuppR) / float64(s.SuppQqb)
}

// StdConf returns the conventional association-rule confidence
// supp(R,G)/supp(Q,G), which Section 3 argues is blind to unknown cases.
func (s Stats) StdConf() float64 {
	if s.SuppQ == 0 {
		return 0
	}
	return float64(s.SuppR) / float64(s.SuppQ)
}

// MaxConf is the upper end of the nontrivial confidence range
// [0, supp(R,G)·supp(q̄,G)] noted in Section 4.1.
func (s Stats) MaxConf() float64 {
	return float64(s.SuppR) * float64(s.SuppQbar)
}
