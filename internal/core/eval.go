package core

import (
	"math"

	"gpar/internal/graph"
	"gpar/internal/match"
)

// Pq returns Pq(x,G): nodes labeled XLabel with at least one EdgeLabel edge
// to a node labeled YLabel — the "positive" base of the LCWA (Section 3).
func Pq(g *graph.Graph, pred Predicate) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.NodesWithLabel(pred.XLabel) {
		for _, e := range g.Out(v) {
			if e.Label == pred.EdgeLabel && g.Label(e.To) == pred.YLabel {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// Pqbar returns the q̄ set: nodes labeled XLabel that have at least one edge
// of type EdgeLabel but are not in Pq(x,G) — the "negative" cases of the
// LCWA. Nodes with no EdgeLabel edge at all are "unknown" and appear in
// neither set.
func Pqbar(g *graph.Graph, pred Predicate) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.NodesWithLabel(pred.XLabel) {
		hasQ := false
		hasMatch := false
		for _, e := range g.Out(v) {
			if e.Label != pred.EdgeLabel {
				continue
			}
			hasQ = true
			if g.Label(e.To) == pred.YLabel {
				hasMatch = true
				break
			}
		}
		if hasQ && !hasMatch {
			out = append(out, v)
		}
	}
	return out
}

// EvalResult bundles the stats and the witness sets produced by Eval.
type EvalResult struct {
	Stats Stats
	// RSet is PR(x,G): the potential customers identified by the rule.
	RSet []graph.NodeID
	// QSet is Q(x,G) restricted to the candidates Eval examined (Pq ∪ Pq̄
	// plus, when full is requested, all x-labeled nodes).
	QSet []graph.NodeID
}

// Eval computes the Section 3 statistics of rule r on the whole graph g
// sequentially. It is the reference implementation the parallel algorithms
// (DMine, Match) are tested against. opts configures the matcher.
//
// When fullQ is true, supp(Q,G) is computed over every x-labeled node;
// otherwise Q is only matched on Pq ∪ Pq̄ (all that Conf, PCAConf and the
// EIP need), and SuppQ covers just those candidates.
func Eval(g *graph.Graph, r *Rule, opts match.Options, fullQ bool) EvalResult {
	var res EvalResult
	pq := Pq(g, r.Pred)
	pqb := Pqbar(g, r.Pred)
	res.Stats.SuppQ1 = len(pq)
	res.Stats.SuppQbar = len(pqb)

	pr := r.PR()
	// PR requires an x ->q y edge, so only Pq members can match. An empty
	// candidate slice must stay empty: MatchSet treats nil as "all nodes".
	if len(pq) > 0 {
		res.RSet = match.MatchSet(pr, g, pq, opts)
	}
	res.Stats.SuppR = len(res.RSet)

	// supp(Qq̄): antecedent matches among the negative cases.
	var qOnQbar []graph.NodeID
	if len(pqb) > 0 {
		qOnQbar = match.MatchSet(r.Q, g, pqb, opts)
	}
	res.Stats.SuppQqb = len(qOnQbar)

	if fullQ {
		res.QSet = match.MatchSet(r.Q, g, nil, opts)
	} else {
		// Every PR match is a Q match (PR ⊒ Q); only the remaining Pq
		// members and the q̄ matches need checking.
		inR := make(map[graph.NodeID]bool, len(res.RSet))
		for _, v := range res.RSet {
			inR[v] = true
		}
		res.QSet = append(res.QSet, res.RSet...)
		for _, v := range pq {
			if !inR[v] && match.HasMatchAt(r.Q, g, v, opts) {
				res.QSet = append(res.QSet, v)
			}
		}
		res.QSet = append(res.QSet, qOnQbar...)
	}
	res.Stats.SuppQ = len(res.QSet)
	return res
}

// IConf computes the image-based confidence alternative of Section 6: the
// Bayes Factor formula with every support replaced by the minimum
// image-based support of Bringmann and Nijssen. opts.MaxMatches bounds the
// underlying enumerations.
func IConf(g *graph.Graph, r *Rule, opts match.Options) float64 {
	pq := Pq(g, r.Pred)
	pqb := Pqbar(g, r.Pred)
	if len(pq) == 0 {
		return math.NaN()
	}
	suppR := match.MinImageSupport(r.PR(), g, opts)
	// Image-based supp(Qq̄): distinct q̄ nodes with a Q match.
	var suppQqb int
	if len(pqb) > 0 {
		suppQqb = len(match.MatchSet(r.Q, g, pqb, opts))
	}
	if suppQqb == 0 {
		return math.Inf(1)
	}
	return float64(suppR) * float64(len(pqb)) / (float64(suppQqb) * float64(len(pq)))
}
