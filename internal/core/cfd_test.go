package core_test

import (
	"testing"

	. "gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

// TestCFDEmbeddedRule reproduces Fig. 1(c) of the paper: GPARs subsume
// conditional functional dependencies via value bindings. The rule states:
// if the addresses of x and x' share country code "44" and the same zip,
// and x' shops at a Tesco store y with that zip, then x may shop at y.
func TestCFDEmbeddedRule(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)

	// Value-binding nodes: the country code constant and two zip values.
	cc44 := g.AddNode(`"44"`)
	zipA := g.AddNode("ZIP")
	zipB := g.AddNode("ZIP")

	mk := func() graph.NodeID { return g.AddNode("cust") }
	x1, x2, x3 := mk(), mk(), mk()
	tescoA := g.AddNode("Tesco")
	tescoB := g.AddNode("Tesco")

	for _, c := range []graph.NodeID{x1, x2, x3} {
		g.AddEdge(c, cc44, "CC")
	}
	// x1 and x2 share zipA; x3 lives in zipB.
	g.AddEdge(x1, zipA, "zip")
	g.AddEdge(x2, zipA, "zip")
	g.AddEdge(x3, zipB, "zip")
	// Stores carry the zip of their location.
	g.AddEdge(tescoA, zipA, "zip")
	g.AddEdge(tescoB, zipB, "zip")
	// x2 shops at the zipA Tesco; x3 shops at the zipB one.
	g.AddEdge(x2, tescoA, "shop")
	g.AddEdge(x3, tescoB, "shop")

	// Pattern Q3: x, x' with CC "44" and a shared zip; x' shops at Tesco y
	// in the same zip.
	q := pattern.New(syms)
	px := q.AddNode("cust")
	px2 := q.AddNode("cust")
	pcc := q.AddNode(`"44"`)
	pzip := q.AddNode("ZIP")
	py := q.AddNode("Tesco")
	q.X, q.Y = px, py
	q.AddEdge(px, pcc, "CC")
	q.AddEdge(px2, pcc, "CC")
	q.AddEdge(px, pzip, "zip")
	q.AddEdge(px2, pzip, "zip")
	q.AddEdge(py, pzip, "zip")
	q.AddEdge(px2, py, "shop")

	rule := &Rule{Q: q, Pred: Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("shop"),
		YLabel:    syms.Intern("Tesco"),
	}}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Only x1 matches the antecedent (shares zipA with shopper x2); x3's
	// zip has no second customer.
	got := match.MatchSet(rule.Q, g, nil, match.Options{})
	if len(got) != 1 || got[0] != x1 {
		t.Errorf("Q3(x,G) = %v want [x1=%d]", got, x1)
	}
	// The consequent predicts x1 shops at the same-zip Tesco; since x1 has
	// no shop edge yet, it is an "unknown" case (supp(R) = 0 but x1 is a
	// potential customer, not a counterexample).
	res := Eval(g, rule, match.Options{}, false)
	if res.Stats.SuppR != 0 {
		t.Errorf("supp(R) = %d want 0", res.Stats.SuppR)
	}
	if res.Stats.SuppQqb != 0 {
		t.Errorf("supp(Qq̄) = %d want 0 (x1 has no shop edge: unknown, not negative)", res.Stats.SuppQqb)
	}
}
