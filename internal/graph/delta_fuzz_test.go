package graph_test

import (
	"errors"
	"slices"
	"testing"

	"gpar/internal/graph"
)

// fuzzFixture builds the small frozen base graph every fuzz input mutates.
func fuzzFixture() (*graph.Graph, []graph.Label, []graph.Label) {
	g := graph.New(nil)
	s := g.Symbols()
	var nodeLabels, edgeLabels []graph.Label
	for _, n := range []string{"A", "B", "C"} {
		nodeLabels = append(nodeLabels, s.Intern(n))
	}
	for _, n := range []string{"x", "y"} {
		edgeLabels = append(edgeLabels, s.Intern(n))
	}
	for i := 0; i < 8; i++ {
		g.AddNodeL(nodeLabels[i%len(nodeLabels)])
	}
	for i := 0; i < 8; i++ {
		g.AddEdgeL(graph.NodeID(i), graph.NodeID((i+3)%8), edgeLabels[i%len(edgeLabels)])
	}
	g.Freeze()
	return g, nodeLabels, edgeLabels
}

// decodeDeltaOps maps arbitrary bytes onto a delta batch, 5 bytes per op.
// Signed narrowing deliberately produces negative IDs and labels, and kind
// values outside the valid range, so the decoder reaches every rejection
// path as well as every apply path.
func decodeDeltaOps(data []byte) []graph.DeltaOp {
	var ops []graph.DeltaOp
	for len(data) >= 5 && len(ops) < 64 {
		ops = append(ops, graph.DeltaOp{
			Kind:  graph.DeltaOpKind(data[0] % 6),
			Node:  graph.NodeID(int8(data[1])),
			From:  graph.NodeID(int8(data[2])),
			To:    graph.NodeID(int8(data[3])),
			Label: graph.Label(int8(data[4])),
		})
		data = data[5:]
	}
	return ops
}

// FuzzApplyDelta pins the delta batch contract: any byte-derived batch
// either fails with a typed *DeltaError and zero effect on the base graph,
// or yields an overlay graph observationally identical to a from-scratch
// rebuild — never a panic, never a silent partial application.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1})                               // add-node A
	f.Add([]byte{2, 0, 0, 1, 4, 3, 0, 0, 3, 4})                // add-edge, del-edge
	f.Add([]byte{4, 2, 0, 0, 2, 1, 0, 0, 0, 3, 2, 0, 8, 0, 4}) // relabel, add-node, edge to new node
	f.Add([]byte{0, 0, 0, 0, 0, 5, 255, 255, 255, 255})        // invalid kinds and IDs
	f.Fuzz(func(t *testing.T, data []byte) {
		base, _, _ := fuzzFixture()
		nodes, edges := base.NumNodes(), base.NumEdges()
		ops := decodeDeltaOps(data)

		d, err := base.ApplyDelta(ops)
		if base.NumNodes() != nodes || base.NumEdges() != edges || base.Overlaid() {
			t.Fatalf("ApplyDelta mutated the base graph")
		}
		if err != nil {
			var de *graph.DeltaError
			if !errors.As(err, &de) {
				t.Fatalf("error is %T (%v), want *DeltaError", err, err)
			}
			if de.Index < 0 || de.Index >= len(ops) {
				t.Fatalf("error index %d out of batch range %d", de.Index, len(ops))
			}
			if d != nil {
				t.Fatalf("failed batch still produced a graph")
			}
			return
		}

		// Success: the overlay must match a from-scratch rebuild and keep
		// every structural invariant.
		m := newDeltaModel(base)
		m.apply(ops)
		compareGraphs(t, "fuzz", d, m.rebuild())
		for v := graph.NodeID(0); int(v) < d.NumNodes(); v++ {
			if !slices.IsSortedFunc(d.Out(v), func(a, b graph.Edge) int {
				if a.Label != b.Label {
					return int(a.Label) - int(b.Label)
				}
				return int(a.To) - int(b.To)
			}) {
				t.Fatalf("Out(%d) not (Label,To)-sorted: %v", v, d.Out(v))
			}
		}
	})
}
