package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymbolsIntern(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("cust")
	b := s.Intern("visit")
	if a == b {
		t.Fatalf("distinct names interned to same label %d", a)
	}
	if got := s.Intern("cust"); got != a {
		t.Errorf("re-intern: got %d want %d", got, a)
	}
	if got := s.Name(a); got != "cust" {
		t.Errorf("Name(%d) = %q want %q", a, got, "cust")
	}
	if got := s.Lookup("missing"); got != NoLabel {
		t.Errorf("Lookup(missing) = %d want NoLabel", got)
	}
	if got := s.Name(NoLabel); got != "" {
		t.Errorf("Name(NoLabel) = %q want empty", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d want 2", s.Len())
	}
}

func TestSymbolsSortedNames(t *testing.T) {
	s := NewSymbols()
	for _, n := range []string{"zebra", "apple", "mid"} {
		s.Intern(n)
	}
	got := s.SortedNames()
	want := []string{"apple", "mid", "zebra"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedNames = %v want %v", got, want)
	}
}

func TestAddNodeEdge(t *testing.T) {
	g := New(nil)
	a := g.AddNode("cust")
	b := g.AddNode("restaurant")
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d want 2", g.NumNodes())
	}
	if !g.AddEdge(a, b, "visit") {
		t.Fatal("AddEdge returned false for new edge")
	}
	if g.AddEdge(a, b, "visit") {
		t.Error("AddEdge returned true for duplicate edge")
	}
	if !g.AddEdge(a, b, "like") {
		t.Error("AddEdge returned false for parallel edge with new label")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d want 2", g.NumEdges())
	}
	if g.Size() != 4 {
		t.Errorf("Size = %d want 4", g.Size())
	}
	visit := g.Symbols().Lookup("visit")
	if !g.HasEdge(a, b, visit) {
		t.Error("HasEdge(a,b,visit) = false")
	}
	if g.HasEdge(b, a, visit) {
		t.Error("HasEdge(b,a,visit) = true; edges are directed")
	}
	labels := g.EdgeLabels(a, b)
	if len(labels) != 2 {
		t.Errorf("EdgeLabels = %v want 2 labels", labels)
	}
}

func TestLabelIndex(t *testing.T) {
	g := New(nil)
	c1 := g.AddNode("cust")
	g.AddNode("city")
	c2 := g.AddNode("cust")
	cust := g.Symbols().Lookup("cust")
	got := g.NodesWithLabel(cust)
	want := []NodeID{c1, c2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NodesWithLabel(cust) = %v want %v", got, want)
	}
	if g.CountLabel(cust) != 2 {
		t.Errorf("CountLabel = %d want 2", g.CountLabel(cust))
	}
	// Index must refresh after mutation.
	c3 := g.AddNode("cust")
	if got := g.NodesWithLabel(cust); len(got) != 3 || got[2] != c3 {
		t.Errorf("after AddNode, NodesWithLabel = %v", got)
	}
	if len(g.NodeLabels()) != 2 {
		t.Errorf("NodeLabels = %v want 2 distinct", g.NodeLabels())
	}
}

// path builds a directed path v0 -> v1 -> ... -> vn-1 with "e" edges.
func path(n int) (*Graph, []NodeID) {
	g := New(nil)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode("v")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ids[i], ids[i+1], "e")
	}
	return g, ids
}

func TestNeighborhood(t *testing.T) {
	g, ids := path(6)
	for r := 0; r < 6; r++ {
		got := g.Neighborhood(ids[0], r)
		want := r + 1
		if want > 6 {
			want = 6
		}
		if len(got) != want {
			t.Errorf("Neighborhood(v0, %d) has %d nodes, want %d", r, len(got), want)
		}
	}
	// Neighborhood is undirected: from the middle both directions count.
	got := g.Neighborhood(ids[3], 1)
	if len(got) != 3 {
		t.Errorf("Neighborhood(v3, 1) = %v want 3 nodes (v2, v3, v4)", got)
	}
	if g.Neighborhood(ids[0], -1) != nil {
		t.Error("Neighborhood with negative radius should be nil")
	}
}

func TestHasNodeAtDistance(t *testing.T) {
	g, ids := path(4) // v0->v1->v2->v3
	tests := []struct {
		v    NodeID
		dist int
		want bool
	}{
		{ids[0], 0, true},
		{ids[0], 1, true},
		{ids[0], 3, true},
		{ids[0], 4, false},
		{ids[3], 3, true}, // undirected
		{ids[1], 3, false},
		{ids[1], 2, true},
	}
	for _, tt := range tests {
		if got := g.HasNodeAtDistance(tt.v, tt.dist); got != tt.want {
			t.Errorf("HasNodeAtDistance(%d, %d) = %v want %v", tt.v, tt.dist, got, tt.want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(nil)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, "ab")
	g.AddEdge(b, c, "bc")
	g.AddEdge(a, c, "ac")

	sub, toLocal, toGlobal := g.InducedSubgraph([]NodeID{a, b})
	if sub.NumNodes() != 2 {
		t.Fatalf("sub nodes = %d want 2", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("sub edges = %d want 1 (only a->b)", sub.NumEdges())
	}
	if sub.LabelName(toLocal[a]) != "a" || sub.LabelName(toLocal[b]) != "b" {
		t.Error("subgraph node labels wrong")
	}
	if toGlobal[toLocal[a]] != a {
		t.Error("toGlobal does not invert toLocal")
	}
	// Duplicate input nodes are deduplicated.
	sub2, _, _ := g.InducedSubgraph([]NodeID{a, a, b})
	if sub2.NumNodes() != 2 {
		t.Errorf("dup nodes: NumNodes = %d want 2", sub2.NumNodes())
	}
}

func TestDNeighborhoodGraph(t *testing.T) {
	g, ids := path(5)
	sub, center, toGlobal := g.DNeighborhoodGraph(ids[2], 1)
	if sub.NumNodes() != 3 {
		t.Fatalf("Gd nodes = %d want 3", sub.NumNodes())
	}
	if toGlobal[center] != ids[2] {
		t.Error("center does not map back to original node")
	}
	if sub.NumEdges() != 2 {
		t.Errorf("Gd edges = %d want 2", sub.NumEdges())
	}
}

func TestDescendants(t *testing.T) {
	g := New(nil)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(d, a, "e")
	got := g.Descendants(a)
	want := []NodeID{b, c}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Descendants(a) = %v want %v", got, want)
	}
	if len(g.Descendants(c)) != 0 {
		t.Errorf("Descendants(sink) = %v want empty", g.Descendants(c))
	}
	// Cycle: a node on a cycle is its own descendant.
	g.AddEdge(c, a, "e")
	got = g.Descendants(a)
	if len(got) != 3 {
		t.Errorf("Descendants(a) with cycle = %v want {a,b,c}", got)
	}
}

func TestHasOutLabelAndOutTo(t *testing.T) {
	g := New(nil)
	a := g.AddNode("cust")
	r1 := g.AddNode("rest")
	r2 := g.AddNode("rest")
	g.AddEdge(a, r1, "visit")
	g.AddEdge(a, r2, "visit")
	g.AddEdge(a, r1, "like")
	visit := g.Symbols().Lookup("visit")
	like := g.Symbols().Lookup("like")
	if !g.HasOutLabel(a, visit) || !g.HasOutLabel(a, like) {
		t.Error("HasOutLabel missed existing labels")
	}
	if g.HasOutLabel(r1, visit) {
		t.Error("HasOutLabel found label on wrong node")
	}
	got := g.OutTo(a, visit)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []NodeID{r1, r2}) {
		t.Errorf("OutTo = %v want [%d %d]", got, r1, r2)
	}
}

func TestClone(t *testing.T) {
	g, ids := path(3)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	c.AddEdge(ids[2], ids[0], "back")
	if g.NumEdges() == c.NumEdges() {
		t.Error("mutating clone affected original")
	}
}

func TestRoundTripIO(t *testing.T) {
	g := New(nil)
	a := g.AddNode("cust one") // label with a space
	b := g.AddNode(`quote"label`)
	g.AddEdge(a, b, "visit")
	g.AddEdge(b, a, "friend of")

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf, nil)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size: got (%d,%d) want (%d,%d)",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if got.LabelName(0) != "cust one" || got.LabelName(1) != `quote"label` {
		t.Error("round trip labels corrupted")
	}
	visit := got.Symbols().Lookup("visit")
	if !got.HasEdge(0, 1, visit) {
		t.Error("round trip lost edge")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"n 5 \"a\"",          // non-dense id
		"e 0 1 \"x\"",        // edge before nodes
		"bogus line",         // unknown record
		"n 0 notquoted",      // unquoted label
		"graph one two",      // bad header
		"n 0 \"a\"\ne 0 9 x", // endpoint out of range
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c), nil); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
	// Header mismatch.
	if _, err := Read(bytes.NewBufferString("graph 2 0\nn 0 \"a\"\n"), nil); err == nil {
		t.Error("Read with wrong node count succeeded")
	}
	// Comments and blank lines are fine.
	if _, err := Read(bytes.NewBufferString("# comment\n\nn 0 \"a\"\n"), nil); err != nil {
		t.Errorf("Read with comment: %v", err)
	}
}

// randomGraph builds a reproducible random graph for property tests.
func randomGraph(rng *rand.Rand, n, e int) *Graph {
	g := New(nil)
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < e; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		g.AddEdge(from, to, labels[rng.Intn(len(labels))])
	}
	return g
}

func TestQuickNeighborhoodMonotone(t *testing.T) {
	// Property: Nr(v) ⊆ Nr+1(v), and |Nr| is non-decreasing in r.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 40)
		v := NodeID(rng.Intn(20))
		prev := map[NodeID]bool{}
		for r := 0; r <= 4; r++ {
			cur := map[NodeID]bool{}
			for _, u := range g.Neighborhood(v, r) {
				cur[u] = true
			}
			for u := range prev {
				if !cur[u] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickIORoundTrip(t *testing.T) {
	// Property: serialize/deserialize preserves node labels and all edges.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15, 30)
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		h, err := Read(&buf, nil)
		if err != nil {
			return false
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.LabelName(NodeID(v)) != h.LabelName(NodeID(v)) {
				return false
			}
			for _, e := range g.Out(NodeID(v)) {
				if !h.HasEdge(NodeID(v), e.To, h.Symbols().Lookup(g.Symbols().Name(e.Label))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickInducedSubgraphEdges(t *testing.T) {
	// Property: the induced subgraph has exactly the edges with both
	// endpoints inside the node set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 50)
		var nodes []NodeID
		inSet := map[NodeID]bool{}
		for v := 0; v < g.NumNodes(); v++ {
			if rng.Intn(2) == 0 {
				nodes = append(nodes, NodeID(v))
				inSet[NodeID(v)] = true
			}
		}
		sub, toLocal, _ := g.InducedSubgraph(nodes)
		want := 0
		for v := 0; v < g.NumNodes(); v++ {
			if !inSet[NodeID(v)] {
				continue
			}
			for _, e := range g.Out(NodeID(v)) {
				if inSet[e.To] {
					want++
					if !sub.HasEdge(toLocal[NodeID(v)], toLocal[e.To], e.Label) {
						return false
					}
				}
			}
		}
		return sub.NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
