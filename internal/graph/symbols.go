// Package graph provides the labeled directed multigraph substrate used by
// every other package in this repository: interned labels, adjacency in both
// directions, a label index, breadth-first search, d-neighborhood extraction
// and (de)serialization.
//
// It is the "social graph" G = (V, E, L) of Section 2.1 of the paper
// "Association Rules with Graph Patterns" (Fan, Wang, Wu, Xu; PVLDB 2015):
// every node and every edge carries a label, and matching elsewhere compares
// labels for equality.
package graph

import (
	"fmt"
	"sort"
)

// Label is an interned node or edge label. The zero value NoLabel is never a
// valid label; it is used to mean "absent".
type Label int32

// NoLabel is the invalid label. Symbols never returns it for a real name.
const NoLabel Label = 0

// Symbols interns label strings so that graphs and patterns can compare
// labels as integers. A single Symbols instance is shared by a graph and all
// patterns matched against it.
type Symbols struct {
	byName map[string]Label
	names  []string // names[l] is the name of label l; names[0] = ""
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{
		byName: make(map[string]Label),
		names:  []string{""},
	}
}

// Intern returns the label for name, creating it if necessary.
func (s *Symbols) Intern(name string) Label {
	if l, ok := s.byName[name]; ok {
		return l
	}
	l := Label(len(s.names))
	s.names = append(s.names, name)
	s.byName[name] = l
	return l
}

// Lookup returns the label for name, or NoLabel if name was never interned.
func (s *Symbols) Lookup(name string) Label {
	return s.byName[name]
}

// Name returns the string for a label. It returns "" for NoLabel and for
// labels not produced by this table.
func (s *Symbols) Name(l Label) string {
	if l <= 0 || int(l) >= len(s.names) {
		return ""
	}
	return s.names[l]
}

// Len reports the number of interned labels.
func (s *Symbols) Len() int { return len(s.names) - 1 }

// Names returns all interned names in label order.
func (s *Symbols) Names() []string {
	out := make([]string, 0, s.Len())
	out = append(out, s.names[1:]...)
	return out
}

// SortedNames returns all interned names sorted lexicographically.
func (s *Symbols) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}

// String implements fmt.Stringer for debugging.
func (s *Symbols) String() string {
	return fmt.Sprintf("Symbols(%d labels)", s.Len())
}
