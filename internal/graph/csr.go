package graph

import "slices"

// csrIndex is the frozen flat representation of a graph: one contiguous
// edge arena per direction with per-node offsets (classic CSR), a per-node
// distinct-edge-label index giving the contiguous arena range of every
// (node, direction, edge label) triple, and a flat node-label candidate
// index. It is built once by Freeze and is immutable afterwards, so any
// number of matchers can read it concurrently without coordination.
//
// Within one node's arena range, edges are sorted by (Label, To). That makes
// the edges of one label a contiguous run (found by binary search over the
// node's distinct labels) and lets HasEdge binary-search the full range.
type csrIndex struct {
	outE, inE     []Edge  // edge arenas; one entry per edge per direction
	outOff, inOff []int32 // len n+1; node v's edges are arena[off[v]:off[v+1]]

	// Distinct-label index: labels of node v's edges are
	// lab[labOff[v]:labOff[v+1]] (sorted); the edges carrying lab[i] start
	// at arena index labStart[i] and end at labStart[i+1]. labStart has one
	// sentinel entry equal to len(arena), and because the arena is
	// contiguous across nodes, labStart[i+1] is correct even for the last
	// label of a node.
	outLab, inLab           []Label
	outLabOff, inLabOff     []int32
	outLabStart, inLabStart []int32

	// Node-label candidate index: nodes labeled l are
	// nodesByLabel[labelOff[l]:labelOff[l+1]], ascending. labelOff is
	// indexed directly by the (dense, interned) label value.
	nodesByLabel []NodeID
	labelOff     []int32
	labelsSorted []Label // distinct node labels present, ascending
}

// buildCSR flattens the mutable adjacency into a csrIndex.
func buildCSR(g *Graph) *csrIndex {
	c := &csrIndex{}
	c.outE, c.outOff, c.outLab, c.outLabOff, c.outLabStart = buildDirection(g.out, g.numE)
	c.inE, c.inOff, c.inLab, c.inLabOff, c.inLabStart = buildDirection(g.in, g.numE)

	// Node-label candidate index.
	maxL := Label(0)
	for _, l := range g.labels {
		if l > maxL {
			maxL = l
		}
	}
	c.labelOff = make([]int32, int(maxL)+2)
	for _, l := range g.labels {
		c.labelOff[int(l)+1]++
	}
	for i := 1; i < len(c.labelOff); i++ {
		c.labelOff[i] += c.labelOff[i-1]
	}
	c.nodesByLabel = make([]NodeID, len(g.labels))
	cur := make([]int32, int(maxL)+1)
	copy(cur, c.labelOff[:int(maxL)+1])
	for v, l := range g.labels {
		c.nodesByLabel[cur[l]] = NodeID(v)
		cur[l]++
	}
	for l := Label(1); l <= maxL; l++ {
		if c.labelOff[l] < c.labelOff[l+1] {
			c.labelsSorted = append(c.labelsSorted, l)
		}
	}
	return c
}

// buildDirection builds one direction's arena, offsets and label index.
func buildDirection(adj [][]Edge, numE int) (arena []Edge, off []int32, lab []Label, labOff, labStart []int32) {
	n := len(adj)
	off = make([]int32, n+1)
	arena = make([]Edge, 0, numE)
	labOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		labOff[v] = int32(len(lab))
		start := len(arena)
		arena = append(arena, adj[v]...)
		sortAdj(arena[start:])
		off[v+1] = int32(len(arena))
		for i := start; i < len(arena); i++ {
			if i == start || arena[i].Label != arena[i-1].Label {
				lab = append(lab, arena[i].Label)
				labStart = append(labStart, int32(i))
			}
		}
	}
	labOff[n] = int32(len(lab))
	labStart = append(labStart, int32(len(arena))) // sentinel
	return
}

// sortAdj orders one adjacency range by (Label, To), the frozen invariant.
func sortAdj(adj []Edge) {
	slices.SortFunc(adj, func(a, b Edge) int {
		if a.Label != b.Label {
			return int(a.Label) - int(b.Label)
		}
		return int(a.To) - int(b.To)
	})
}

// rangeL returns the contiguous arena run of node v's edges labeled l in
// one direction, or nil. O(log #distinct labels of v).
func rangeL(arena []Edge, lab []Label, labOff, labStart []int32, v NodeID, l Label) []Edge {
	lo, hi := labOff[v], labOff[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if lab[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < labOff[v+1] && lab[lo] == l {
		return arena[labStart[lo]:labStart[lo+1]]
	}
	return nil
}
