package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The serialization format is a line-oriented text format:
//
//	graph <numNodes> <numEdges>
//	n <id> <label>
//	e <from> <to> <label>
//
// Labels are quoted with strconv.Quote so they may contain spaces. Node
// lines must precede edge lines that reference them; WriteTo emits all node
// lines first.

// WriteTo serializes g. It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "graph %d %d\n", g.NumNodes(), g.NumEdges())); err != nil {
		return n, err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if err := count(fmt.Fprintf(bw, "n %d %s\n", v, strconv.Quote(g.LabelName(NodeID(v))))); err != nil {
			return n, err
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.out[v] {
			if err := count(fmt.Fprintf(bw, "e %d %d %s\n", v, e.To, strconv.Quote(g.syms.Name(e.Label)))); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read parses a graph in the WriteTo format, interning labels into syms
// (a fresh table if nil).
func Read(r io.Reader, syms *Symbols) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	g := New(syms)
	var declaredNodes, declaredEdges int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		switch fields[0] {
		case "graph":
			if _, err := fmt.Sscanf(line, "graph %d %d", &declaredNodes, &declaredEdges); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad header %q: %w", lineNo, line, err)
			}
		case "n":
			rest := fields[1]
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node line %q", lineNo, line)
			}
			id, err := strconv.Atoi(rest[:sp])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id: %w", lineNo, err)
			}
			label, err := strconv.Unquote(strings.TrimSpace(rest[sp+1:]))
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node label: %w", lineNo, err)
			}
			if got := g.AddNode(label); int(got) != id {
				return nil, fmt.Errorf("graph: line %d: node ids must be dense and ordered; got %d want %d", lineNo, id, got)
			}
		case "e":
			rest := fields[1]
			parts := strings.SplitN(rest, " ", 3)
			if len(parts) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			from, err1 := strconv.Atoi(parts[0])
			to, err2 := strconv.Atoi(parts[1])
			label, err3 := strconv.Unquote(strings.TrimSpace(parts[2]))
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: edge endpoint out of range", lineNo)
			}
			g.AddEdge(NodeID(from), NodeID(to), label)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declaredNodes != 0 && declaredNodes != g.NumNodes() {
		return nil, fmt.Errorf("graph: header declared %d nodes, found %d", declaredNodes, g.NumNodes())
	}
	if declaredEdges != 0 && declaredEdges != g.NumEdges() {
		return nil, fmt.Errorf("graph: header declared %d edges, found %d", declaredEdges, g.NumEdges())
	}
	return g, nil
}
