package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..NumNodes()-1.
type NodeID int32

// Edge is one directed labeled edge as seen from one endpoint's adjacency
// list: the other endpoint plus the edge label.
type Edge struct {
	To    NodeID
	Label Label
}

// Graph is a directed multigraph with labeled nodes and labeled edges.
// Multiple edges between the same pair of nodes are allowed as long as their
// labels differ; AddEdge deduplicates exact (from, to, label) triples.
//
// Concurrency contract: a Graph is not safe for concurrent mutation, and an
// unfrozen graph is not safe for concurrent reads that touch the lazy label
// index (NodesWithLabel, CountLabel, NodeLabels). Freeze the graph before
// sharing it: after Freeze returns, every read path — including further
// Freeze calls, which are then cheap atomic no-ops — is safe from any
// number of goroutines until the next mutation. Mutating a shared graph
// (which thaws it) requires external synchronization, exactly like any
// other write.
type Graph struct {
	syms   *Symbols
	labels []Label  // labels[v] is the node label of v
	out    [][]Edge // out[v] lists edges v -> w; frozen: views into csr.outE
	in     [][]Edge // in[v] lists edges w -> v as {To: w}; frozen: views into csr.inE
	numE   int

	byLabel map[Label][]NodeID // label index for unfrozen graphs; rebuilt lazily
	dirty   bool               // true when byLabel is stale

	// frozen publishes csr: buildCSR happens-before frozen.Store(true), so
	// any goroutine observing true may read csr without locks.
	frozen atomic.Bool
	csr    *csrIndex

	// ov, when non-nil on a frozen graph, marks this graph as a delta
	// overlay over csr (see delta.go): csr is shared with the base graph
	// and stale for the overlay's touched nodes, which the CSR-backed read
	// paths route around. Immutable once set, like csr.
	ov *overlay
}

// New returns an empty graph using the given symbol table. If syms is nil a
// fresh table is created.
func New(syms *Symbols) *Graph {
	if syms == nil {
		syms = NewSymbols()
	}
	return &Graph{
		syms:    syms,
		byLabel: make(map[Label][]NodeID),
	}
}

// Symbols returns the symbol table shared by this graph.
func (g *Graph) Symbols() *Symbols { return g.syms }

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return g.numE }

// Size reports |G| = |V| + |E| as defined in Section 2.1 of the paper.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// AddNode adds a node labeled name and returns its ID.
func (g *Graph) AddNode(name string) NodeID {
	return g.AddNodeL(g.syms.Intern(name))
}

// AddNodeL adds a node with an already-interned label.
func (g *Graph) AddNodeL(l Label) NodeID {
	g.thaw()
	v := NodeID(len(g.labels))
	g.labels = append(g.labels, l)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.dirty = true
	return v
}

// AddEdge adds edge from -> to labeled name. It returns false if the exact
// edge already exists (multigraph on labels, simple graph per label).
func (g *Graph) AddEdge(from, to NodeID, name string) bool {
	return g.AddEdgeL(from, to, g.syms.Intern(name))
}

// AddEdgeL adds an edge with an already-interned label.
func (g *Graph) AddEdgeL(from, to NodeID, l Label) bool {
	if g.hasEdge(from, to, l) {
		return false
	}
	g.thaw()
	g.out[from] = append(g.out[from], Edge{To: to, Label: l})
	g.in[to] = append(g.in[to], Edge{To: from, Label: l})
	g.numE++
	g.dirty = true
	return true
}

func (g *Graph) hasEdge(from, to NodeID, l Label) bool {
	if g.frozen.Load() {
		return searchEdge(g.out[from], to, l)
	}
	for _, e := range g.out[from] {
		if e.To == to && e.Label == l {
			return true
		}
	}
	return false
}

// searchEdge binary-searches a (Label, To)-sorted adjacency list.
func searchEdge(adj []Edge, to NodeID, l Label) bool {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		e := adj[mid]
		if e.Label < l || (e.Label == l && e.To < to) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo].Label == l && adj[lo].To == to
}

// Freeze compiles the graph into its flat CSR representation: contiguous
// per-direction edge arenas sorted by (Label, To) within each node, a
// per-node (direction, edge label) range index, and a flat node-label
// candidate index. After Freeze, HasEdge is a binary search, OutRangeL and
// InRangeL return label-contiguous arena subslices without allocating, and
// NodesWithLabel reads the precomputed index without mutating the graph.
//
// Freeze is idempotent and, once the graph is frozen, safe to call
// concurrently (it reduces to an atomic load) — matchers call it
// unconditionally. Freezing an *unfrozen* graph concurrently with any other
// access is a data race, like any mutation: freeze before sharing. Any
// later mutation thaws the graph back to its mutable representation.
func (g *Graph) Freeze() {
	if g.frozen.Load() {
		return
	}
	c := buildCSR(g)
	// Re-point adjacency at the arenas so every reader of Out/In iterates
	// cache-contiguous memory. The three-index slices cap each view at its
	// range end, so a post-thaw append copies out instead of clobbering the
	// next node's edges.
	for v := range g.out {
		g.out[v] = c.outE[c.outOff[v]:c.outOff[v+1]:c.outOff[v+1]]
		g.in[v] = c.inE[c.inOff[v]:c.inOff[v+1]:c.inOff[v+1]]
	}
	g.csr = c
	g.frozen.Store(true)
}

// Frozen reports whether the graph is currently in CSR form.
func (g *Graph) Frozen() bool { return g.frozen.Load() }

// thaw drops the CSR index before a mutation. Adjacency views stay valid
// (they point into the old arenas and copy out on append).
func (g *Graph) thaw() {
	if g.frozen.Load() {
		g.frozen.Store(false)
		g.csr = nil
		g.ov = nil
	}
}

// HasEdge reports whether edge from -> to with label l exists.
func (g *Graph) HasEdge(from, to NodeID, l Label) bool {
	if g.frozen.Load() {
		return searchEdge(g.out[from], to, l)
	}
	// Scan the shorter adjacency list.
	if len(g.out[from]) <= len(g.in[to]) {
		return g.hasEdge(from, to, l)
	}
	for _, e := range g.in[to] {
		if e.To == from && e.Label == l {
			return true
		}
	}
	return false
}

// OutRangeL returns v's outgoing edges labeled l. On a frozen graph this is
// a label-contiguous subslice of the CSR arena, found by binary search over
// v's distinct labels with no allocation; on an unfrozen graph it allocates
// a filtered copy. The caller must not mutate the result.
func (g *Graph) OutRangeL(v NodeID, l Label) []Edge {
	if g.frozen.Load() {
		if ov := g.ov; ov != nil && ov.bypass(v) {
			return labelRun(g.out[v], l)
		}
		c := g.csr
		return rangeL(c.outE, c.outLab, c.outLabOff, c.outLabStart, v, l)
	}
	var out []Edge
	for _, e := range g.out[v] {
		if e.Label == l {
			out = append(out, e)
		}
	}
	return out
}

// InRangeL is OutRangeL for incoming edges: each Edge's To field is the
// source node of an edge To -> v labeled l.
func (g *Graph) InRangeL(v NodeID, l Label) []Edge {
	if g.frozen.Load() {
		if ov := g.ov; ov != nil && ov.bypass(v) {
			return labelRun(g.in[v], l)
		}
		c := g.csr
		return rangeL(c.inE, c.inLab, c.inLabOff, c.inLabStart, v, l)
	}
	var out []Edge
	for _, e := range g.in[v] {
		if e.Label == l {
			out = append(out, e)
		}
	}
	return out
}

// EdgeLabels returns the labels of all edges from -> to, in insertion order.
func (g *Graph) EdgeLabels(from, to NodeID) []Label {
	var out []Label
	for _, e := range g.out[from] {
		if e.To == to {
			out = append(out, e.Label)
		}
	}
	return out
}

// Label returns the node label of v.
func (g *Graph) Label(v NodeID) Label { return g.labels[v] }

// LabelName returns the label string of v.
func (g *Graph) LabelName(v NodeID) string { return g.syms.Name(g.labels[v]) }

// Out returns the outgoing adjacency of v. The caller must not mutate it.
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the incoming adjacency of v ({To: source}). Read-only.
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// OutDegree reports the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree reports the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Degree reports the total (in+out) degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.out[v]) + len(g.in[v]) }

// HasOutLabel reports whether v has at least one outgoing edge labeled l.
// This is the "has at least one edge of type q" test of the local closed
// world assumption (Section 3).
func (g *Graph) HasOutLabel(v NodeID, l Label) bool {
	if g.frozen.Load() {
		return len(g.OutRangeL(v, l)) > 0
	}
	for _, e := range g.out[v] {
		if e.Label == l {
			return true
		}
	}
	return false
}

// OutTo returns the targets of v's outgoing edges labeled l.
func (g *Graph) OutTo(v NodeID, l Label) []NodeID {
	var out []NodeID
	if g.frozen.Load() {
		r := g.OutRangeL(v, l)
		if len(r) == 0 {
			return nil
		}
		out = make([]NodeID, len(r))
		for i, e := range r {
			out[i] = e.To
		}
		return out
	}
	for _, e := range g.out[v] {
		if e.Label == l {
			out = append(out, e.To)
		}
	}
	return out
}

// rebuild refreshes the label index.
func (g *Graph) rebuild() {
	if !g.dirty {
		return
	}
	g.byLabel = make(map[Label][]NodeID)
	for v, l := range g.labels {
		g.byLabel[l] = append(g.byLabel[l], NodeID(v))
	}
	g.dirty = false
}

// NodesWithLabel returns all nodes labeled l, in ID order. Read-only. On a
// frozen graph this is a subslice of the precomputed candidate index and
// never mutates the graph, so it is safe under concurrency.
func (g *Graph) NodesWithLabel(l Label) []NodeID {
	if g.frozen.Load() {
		if ov := g.ov; ov != nil {
			if nodes, ok := ov.nodesByLabel[l]; ok {
				return nodes
			}
		}
		c := g.csr
		if l < 0 || int(l)+1 >= len(c.labelOff) {
			return nil
		}
		return c.nodesByLabel[c.labelOff[l]:c.labelOff[l+1]]
	}
	g.rebuild()
	return g.byLabel[l]
}

// CountLabel reports the number of nodes labeled l.
func (g *Graph) CountLabel(l Label) int {
	return len(g.NodesWithLabel(l))
}

// NodeLabels returns the distinct node labels present, sorted. Read-only
// when the graph is frozen.
func (g *Graph) NodeLabels() []Label {
	if g.frozen.Load() {
		if ov := g.ov; ov != nil {
			return ov.labelsSorted
		}
		return g.csr.labelsSorted
	}
	g.rebuild()
	out := make([]Label, 0, len(g.byLabel))
	for l := range g.byLabel {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bfsScratch is pooled epoch-stamped BFS state: bumping the epoch clears
// the visited set in O(1), so undirected BFS over the graph allocates
// nothing in steady state. Partitioning calls Neighborhood once per
// candidate per DMine run, which made map-based visited sets a top-three
// cost of the whole mining loop.
type bfsScratch struct {
	stamp          []uint32
	epoch          uint32
	frontier, next []NodeID
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// acquireBFS returns scratch sized for g with a fresh epoch.
func acquireBFS(n int) *bfsScratch {
	s := bfsPool.Get().(*bfsScratch)
	if len(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	s.frontier = s.frontier[:0]
	s.next = s.next[:0]
	return s
}

// Neighborhood returns the set Nr(v) of all nodes within undirected radius r
// of v, including v itself, in BFS order (Section 2.1, notation (3)).
func (g *Graph) Neighborhood(v NodeID, r int) []NodeID {
	return g.AppendNeighborhood(nil, v, r)
}

// AppendNeighborhood is Neighborhood appending to dst, so callers that
// compute one neighborhood per candidate (the partitioner does this for
// every candidate on every mine-context build) can recycle one buffer
// instead of regrowing a fresh slice each time.
func (g *Graph) AppendNeighborhood(dst []NodeID, v NodeID, r int) []NodeID {
	if r < 0 {
		return dst
	}
	s := acquireBFS(g.NumNodes())
	defer bfsPool.Put(s)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier, v)
	order := append(dst, v)
	for depth := 0; depth < r && len(s.frontier) > 0; depth++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for _, e := range g.out[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					s.next = append(s.next, e.To)
					order = append(order, e.To)
				}
			}
			for _, e := range g.in[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					s.next = append(s.next, e.To)
					order = append(order, e.To)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
	}
	return order
}

// HasNodeAtDistance reports whether some node lies at exact undirected
// distance r+1 from v. It is the "extendable" test of algorithm DMine:
// whether a center node has edges at r+1 hops.
func (g *Graph) HasNodeAtDistance(v NodeID, dist int) bool {
	if dist == 0 {
		return true
	}
	s := acquireBFS(g.NumNodes())
	defer bfsPool.Put(s)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier, v)
	for depth := 0; depth < dist && len(s.frontier) > 0; depth++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for _, e := range g.out[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					s.next = append(s.next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					s.next = append(s.next, e.To)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		if depth == dist-1 {
			return len(s.frontier) > 0
		}
	}
	return false
}

// EccentricityCapped returns v's undirected eccentricity — the largest
// distance from v to any reachable node — capped at max: one BFS, stopped
// early once depth max is reached. BFS levels are contiguous, so for any
// d ≤ max, HasNodeAtDistance(v, d) ⟺ d ≤ EccentricityCapped(v, max):
// the capped eccentricity answers every bounded distance probe. DMine's
// distributed coordinator ships these per owned center so remote workers —
// which hold only their fragment — can evaluate the whole-graph
// extendability test of Lemma 3 exactly.
func (g *Graph) EccentricityCapped(v NodeID, max int) int {
	if max <= 0 {
		return 0
	}
	s := acquireBFS(g.NumNodes())
	defer bfsPool.Put(s)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier, v)
	ecc := 0
	for depth := 1; depth <= max && len(s.frontier) > 0; depth++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for _, e := range g.out[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					s.next = append(s.next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					s.next = append(s.next, e.To)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		if len(s.frontier) > 0 {
			ecc = depth
		}
	}
	return ecc
}

// InducedSubgraph returns the subgraph induced by nodes (Section 2.1): the
// nodes plus every edge of g whose endpoints are both in nodes. It also
// returns toLocal mapping original IDs to IDs in the new graph, and toGlobal
// for the reverse direction. The new graph shares g's symbol table.
func (g *Graph) InducedSubgraph(nodes []NodeID) (sub *Graph, toLocal map[NodeID]NodeID, toGlobal []NodeID) {
	sub = New(g.syms)
	toLocal = make(map[NodeID]NodeID, len(nodes))
	toGlobal = make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		if _, dup := toLocal[v]; dup {
			continue
		}
		lv := sub.AddNodeL(g.labels[v])
		toLocal[v] = lv
		toGlobal = append(toGlobal, v)
	}
	// Bulk-build the adjacency: count the induced degrees, carve both
	// directions out of two arenas, and fill. The source graph holds no
	// duplicate (from, to, label) triples, so neither does the subgraph —
	// no AddEdgeL dedup scans, no per-edge slice regrowth. DMine
	// partitions the graph on every run, so this is a mining hot path.
	n := len(toGlobal)
	inDeg := make([]int32, n)
	numE := 0
	for _, v := range toGlobal {
		for _, e := range g.out[v] {
			if lw, ok := toLocal[e.To]; ok {
				inDeg[lw]++
				numE++
			}
		}
	}
	outArena := make([]Edge, 0, numE)
	inArena := make([]Edge, numE)
	off := int32(0)
	for lv := 0; lv < n; lv++ {
		sub.in[lv] = inArena[off : off : off+inDeg[lv]]
		off += inDeg[lv]
	}
	for _, v := range toGlobal {
		lv := toLocal[v]
		start := len(outArena)
		for _, e := range g.out[v] {
			if lw, ok := toLocal[e.To]; ok {
				outArena = append(outArena, Edge{To: lw, Label: e.Label})
				sub.in[lw] = append(sub.in[lw], Edge{To: lv, Label: e.Label})
			}
		}
		sub.out[lv] = outArena[start:len(outArena):len(outArena)]
	}
	sub.numE = numE
	sub.dirty = true
	return sub, toLocal, toGlobal
}

// DNeighborhoodGraph returns Gd(v): the subgraph induced by Nd(v), plus the
// local ID of v in it (Section 4.2).
func (g *Graph) DNeighborhoodGraph(v NodeID, d int) (sub *Graph, center NodeID, toGlobal []NodeID) {
	nodes := g.Neighborhood(v, d)
	sub, toLocal, toGlobal := g.InducedSubgraph(nodes)
	return sub, toLocal[v], toGlobal
}

// Descendants returns all nodes reachable from v by directed paths, not
// including v unless it lies on a cycle through itself (Section 2.1,
// notation (5)).
func (g *Graph) Descendants(v NodeID) []NodeID {
	visited := make(map[NodeID]bool)
	stack := make([]NodeID, 0, len(g.out[v]))
	for _, e := range g.out[v] {
		stack = append(stack, e.To)
	}
	var out []NodeID
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[u] {
			continue
		}
		visited[u] = true
		out = append(out, u)
		for _, e := range g.out[u] {
			if !visited[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy sharing the symbol table.
func (g *Graph) Clone() *Graph {
	c := New(g.syms)
	c.labels = append([]Label(nil), g.labels...)
	c.out = make([][]Edge, len(g.out))
	c.in = make([][]Edge, len(g.in))
	for v := range g.out {
		c.out[v] = append([]Edge(nil), g.out[v]...)
		c.in[v] = append([]Edge(nil), g.in[v]...)
	}
	c.numE = g.numE
	c.dirty = true
	return c
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d, |E|=%d)", g.NumNodes(), g.NumEdges())
}
