package graph

import (
	"errors"
	"slices"
	"testing"
)

// deltaFixture builds a small frozen graph:
//
//	0:A -x-> 1:B -y-> 2:C
//	0:A -x-> 2:C
//	3:A (isolated)
func deltaFixture(t testing.TB) (*Graph, map[string]Label) {
	t.Helper()
	g := New(nil)
	s := g.Symbols()
	lbl := map[string]Label{}
	for _, n := range []string{"A", "B", "C", "x", "y", "z"} {
		lbl[n] = s.Intern(n)
	}
	g.AddNodeL(lbl["A"])
	g.AddNodeL(lbl["B"])
	g.AddNodeL(lbl["C"])
	g.AddNodeL(lbl["A"])
	g.AddEdgeL(0, 1, lbl["x"])
	g.AddEdgeL(1, 2, lbl["y"])
	g.AddEdgeL(0, 2, lbl["x"])
	g.Freeze()
	return g, lbl
}

func TestApplyDeltaBasic(t *testing.T) {
	g, lbl := deltaFixture(t)
	d, err := g.ApplyDelta([]DeltaOp{
		{Kind: DeltaAddNode, Label: lbl["B"]}, // node 4
		{Kind: DeltaAddEdge, From: 4, To: 2, Label: lbl["z"]},
		{Kind: DeltaDelEdge, From: 0, To: 2, Label: lbl["x"]},
		{Kind: DeltaSetLabel, Node: 3, Label: lbl["C"]},
	})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !d.Frozen() || !d.Overlaid() {
		t.Fatalf("derived graph should be frozen and overlaid")
	}
	if d.NumNodes() != 5 || d.NumEdges() != 3 {
		t.Fatalf("derived |V|=%d |E|=%d, want 5, 3", d.NumNodes(), d.NumEdges())
	}
	if d.Label(4) != lbl["B"] || d.Label(3) != lbl["C"] {
		t.Fatalf("derived labels wrong: node4=%v node3=%v", d.Label(4), d.Label(3))
	}
	if !d.HasEdge(4, 2, lbl["z"]) {
		t.Fatalf("added edge missing")
	}
	if d.HasEdge(0, 2, lbl["x"]) {
		t.Fatalf("deleted edge still present")
	}
	if got := d.OutRangeL(0, lbl["x"]); len(got) != 1 || got[0].To != 1 {
		t.Fatalf("OutRangeL(0,x) = %v, want [{1 x}]", got)
	}
	if got := d.InRangeL(2, lbl["z"]); len(got) != 1 || got[0].To != 4 {
		t.Fatalf("InRangeL(2,z) = %v, want [{4 z}]", got)
	}
	if got := d.NodesWithLabel(lbl["A"]); !slices.Equal(got, []NodeID{0}) {
		t.Fatalf("NodesWithLabel(A) = %v, want [0]", got)
	}
	if got := d.NodesWithLabel(lbl["C"]); !slices.Equal(got, []NodeID{2, 3}) {
		t.Fatalf("NodesWithLabel(C) = %v, want [2 3]", got)
	}
	if got := d.NodesWithLabel(lbl["B"]); !slices.Equal(got, []NodeID{1, 4}) {
		t.Fatalf("NodesWithLabel(B) = %v, want [1 4]", got)
	}

	// The base graph is untouched.
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("base mutated: |V|=%d |E|=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 2, lbl["x"]) || g.Label(3) != lbl["A"] {
		t.Fatalf("base mutated by delta")
	}
	if g.Overlaid() || g.OverlayOps() != 0 {
		t.Fatalf("base should not be overlaid")
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	g, lbl := deltaFixture(t)
	cases := []struct {
		name string
		ops  []DeltaOp
	}{
		{"bad node label", []DeltaOp{{Kind: DeltaAddNode, Label: 99}}},
		{"zero node label", []DeltaOp{{Kind: DeltaAddNode}}},
		{"unknown from", []DeltaOp{{Kind: DeltaAddEdge, From: 9, To: 0, Label: lbl["x"]}}},
		{"unknown to", []DeltaOp{{Kind: DeltaAddEdge, From: 0, To: 9, Label: lbl["x"]}}},
		{"negative node", []DeltaOp{{Kind: DeltaAddEdge, From: -1, To: 0, Label: lbl["x"]}}},
		{"bad edge label", []DeltaOp{{Kind: DeltaAddEdge, From: 0, To: 3, Label: -2}}},
		{"duplicate edge", []DeltaOp{{Kind: DeltaAddEdge, From: 0, To: 1, Label: lbl["x"]}}},
		{"dup within batch", []DeltaOp{
			{Kind: DeltaAddEdge, From: 3, To: 0, Label: lbl["y"]},
			{Kind: DeltaAddEdge, From: 3, To: 0, Label: lbl["y"]},
		}},
		{"missing edge", []DeltaOp{{Kind: DeltaDelEdge, From: 0, To: 1, Label: lbl["y"]}}},
		{"del unknown node", []DeltaOp{{Kind: DeltaDelEdge, From: 0, To: 42, Label: lbl["x"]}}},
		{"relabel unknown", []DeltaOp{{Kind: DeltaSetLabel, Node: 77, Label: lbl["A"]}}},
		{"relabel bad label", []DeltaOp{{Kind: DeltaSetLabel, Node: 0, Label: 99}}},
		{"unknown kind", []DeltaOp{{Kind: 42}}},
	}
	for _, tc := range cases {
		d, err := g.ApplyDelta(tc.ops)
		if err == nil || d != nil {
			t.Fatalf("%s: want error, got graph %v err %v", tc.name, d, err)
		}
		var de *DeltaError
		if !errors.As(err, &de) {
			t.Fatalf("%s: error is %T, want *DeltaError", tc.name, err)
		}
		if de.Index != len(tc.ops)-1 {
			t.Fatalf("%s: error at op %d, want %d", tc.name, de.Index, len(tc.ops)-1)
		}
		if de.Error() == "" {
			t.Fatalf("%s: empty error text", tc.name)
		}
	}
	// Atomicity: a failing batch with a valid prefix leaves no trace.
	_, err := g.ApplyDelta([]DeltaOp{
		{Kind: DeltaAddNode, Label: lbl["A"]},
		{Kind: DeltaAddEdge, From: 0, To: 3, Label: lbl["z"]},
		{Kind: DeltaAddEdge, From: 0, To: 99, Label: lbl["z"]},
	})
	if err == nil {
		t.Fatalf("want error")
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 || g.HasEdge(0, 3, lbl["z"]) {
		t.Fatalf("failed batch mutated base")
	}
}

func TestApplyDeltaStacking(t *testing.T) {
	g, lbl := deltaFixture(t)
	d1, err := g.ApplyDelta([]DeltaOp{{Kind: DeltaAddEdge, From: 3, To: 0, Label: lbl["y"]}})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d1.ApplyDelta([]DeltaOp{
		{Kind: DeltaDelEdge, From: 3, To: 0, Label: lbl["y"]},
		{Kind: DeltaAddEdge, From: 2, To: 3, Label: lbl["z"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.OverlayOps() != 3 {
		t.Fatalf("cumulative ops = %d, want 3", d2.OverlayOps())
	}
	if d2.HasEdge(3, 0, lbl["y"]) || !d2.HasEdge(2, 3, lbl["z"]) {
		t.Fatalf("stacked overlay reads wrong")
	}
	// d1 is itself immutable under d2's batch.
	if !d1.HasEdge(3, 0, lbl["y"]) || d1.HasEdge(2, 3, lbl["z"]) {
		t.Fatalf("stacking mutated intermediate overlay")
	}
	if got := d2.DeltaTouched(); !slices.Equal(got, []NodeID{0, 2, 3}) {
		t.Fatalf("DeltaTouched = %v, want [0 2 3]", got)
	}
}

func TestCompactCopy(t *testing.T) {
	g, lbl := deltaFixture(t)
	d, err := g.ApplyDelta([]DeltaOp{
		{Kind: DeltaAddNode, Label: lbl["C"]},
		{Kind: DeltaAddEdge, From: 4, To: 1, Label: lbl["x"]},
		{Kind: DeltaDelEdge, From: 1, To: 2, Label: lbl["y"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := d.CompactCopy()
	if !c.Frozen() || c.Overlaid() {
		t.Fatalf("compacted copy should be frozen with no overlay")
	}
	if c.NumNodes() != d.NumNodes() || c.NumEdges() != d.NumEdges() {
		t.Fatalf("compacted size differs")
	}
	for v := NodeID(0); int(v) < c.NumNodes(); v++ {
		if c.Label(v) != d.Label(v) {
			t.Fatalf("label mismatch at %d", v)
		}
		if !slices.Equal(c.Out(v), d.Out(v)) || !slices.Equal(c.In(v), d.In(v)) {
			t.Fatalf("adjacency mismatch at %d", v)
		}
	}
	for _, l := range d.NodeLabels() {
		if !slices.Equal(c.NodesWithLabel(l), d.NodesWithLabel(l)) {
			t.Fatalf("NodesWithLabel(%d) mismatch", l)
		}
	}
	if !slices.Equal(c.NodeLabels(), d.NodeLabels()) {
		t.Fatalf("NodeLabels mismatch")
	}
	// The copy is independent: thawing and mutating it leaves d intact.
	c.AddEdgeL(0, 3, lbl["z"])
	if d.HasEdge(0, 3, lbl["z"]) {
		t.Fatalf("compacted copy shares mutable state with overlay")
	}
}

func TestOverlayThawAndRefreeze(t *testing.T) {
	g, lbl := deltaFixture(t)
	d, err := g.ApplyDelta([]DeltaOp{{Kind: DeltaAddEdge, From: 2, To: 0, Label: lbl["z"]}})
	if err != nil {
		t.Fatal(err)
	}
	// A direct mutation thaws the overlay away; the graph must remain
	// self-consistent and refreezable.
	d.AddEdgeL(3, 1, lbl["x"])
	if d.Frozen() || d.Overlaid() {
		t.Fatalf("mutation should thaw the overlay")
	}
	d.Freeze()
	if d.Overlaid() {
		t.Fatalf("refreeze should leave no overlay")
	}
	if !d.HasEdge(2, 0, lbl["z"]) || !d.HasEdge(3, 1, lbl["x"]) {
		t.Fatalf("edges lost across thaw/refreeze")
	}
	if got := d.OutRangeL(2, lbl["z"]); len(got) != 1 || got[0].To != 0 {
		t.Fatalf("OutRangeL after refreeze = %v", got)
	}
	// The base graph never saw any of it.
	if g.NumEdges() != 3 {
		t.Fatalf("base mutated")
	}
}

func TestLabelWithinDistance(t *testing.T) {
	g, lbl := deltaFixture(t)
	// 0:A -x-> 1:B -y-> 2:C, 0 -x-> 2, 3:A isolated.
	cases := []struct {
		v    NodeID
		l    Label
		max  int
		want int
	}{
		{0, lbl["A"], 2, 0},
		{0, lbl["B"], 2, 1},
		{1, lbl["A"], 2, 1},
		{3, lbl["B"], 3, -1}, // isolated
		{1, lbl["C"], 0, -1}, // max too small
		{2, lbl["B"], 2, 1},  // via in-edge
	}
	for _, tc := range cases {
		if got := g.LabelWithinDistance(tc.v, tc.l, tc.max); got != tc.want {
			t.Fatalf("LabelWithinDistance(%d, %d, %d) = %d, want %d",
				tc.v, tc.l, tc.max, got, tc.want)
		}
	}
	// Overlay-aware: adding an edge brings the label closer.
	d, err := g.ApplyDelta([]DeltaOp{{Kind: DeltaAddEdge, From: 3, To: 1, Label: lbl["z"]}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.LabelWithinDistance(3, lbl["B"], 3); got != 1 {
		t.Fatalf("overlay LabelWithinDistance = %d, want 1", got)
	}
}
