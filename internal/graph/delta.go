// Delta overlays: applying a batch of mutations to a frozen graph without
// re-freezing it. ApplyDelta returns a new *Graph that shares the base
// graph's CSR arenas and symbol table, carries fresh merged adjacency only
// for the touched nodes, and routes the CSR-backed read paths (OutRangeL,
// InRangeL, NodesWithLabel, NodeLabels) around the stale index entries via
// a small overlay. Untouched nodes keep the frozen fast path bit for bit;
// the base graph is never mutated, so readers of the old generation are
// undisturbed — the serving layer installs the derived graph as a new
// snapshot generation. CompactCopy folds an overlay back into a fresh
// freeze when the overlay has grown past its welcome.

package graph

import (
	"fmt"
	"slices"
)

// DeltaOpKind enumerates the mutations a delta batch may carry.
type DeltaOpKind uint8

// The delta op kinds. Node deletion is deliberately absent: node IDs are
// dense and shared with every live snapshot, so a "removed" entity is
// modeled by deleting its edges (and, if desired, relabeling it).
const (
	DeltaAddNode  DeltaOpKind = iota + 1 // add a node labeled Label; IDs are assigned densely
	DeltaAddEdge                         // add edge From -> To labeled Label
	DeltaDelEdge                         // delete edge From -> To labeled Label
	DeltaSetLabel                        // relabel node Node to Label
)

// String names the kind for error messages and logs.
func (k DeltaOpKind) String() string {
	switch k {
	case DeltaAddNode:
		return "add-node"
	case DeltaAddEdge:
		return "add-edge"
	case DeltaDelEdge:
		return "del-edge"
	case DeltaSetLabel:
		return "set-label"
	default:
		return fmt.Sprintf("delta-op(%d)", uint8(k))
	}
}

// DeltaOp is one mutation in a delta batch. Which fields are meaningful
// depends on Kind: AddNode and SetLabel use Node (ignored for AddNode — the
// new ID is assigned densely) and Label as a node label; AddEdge and DelEdge
// use From, To and Label as an edge label. Ops within a batch apply in
// order, so later ops may reference nodes added earlier in the same batch.
type DeltaOp struct {
	Kind  DeltaOpKind
	Node  NodeID
	From  NodeID
	To    NodeID
	Label Label
}

// DeltaError reports why a delta batch was rejected. Application is atomic:
// a batch that fails validation at any op leaves the base graph untouched
// and produces no derived graph.
type DeltaError struct {
	Index  int     // position of the offending op within the batch
	Op     DeltaOp // the op itself
	Reason string
}

// Error implements error.
func (e *DeltaError) Error() string {
	return fmt.Sprintf("delta op %d (%s): %s", e.Index, e.Op.Kind, e.Reason)
}

// overlay is the per-derived-graph bookkeeping that routes reads around the
// shared (now partially stale) CSR index. All fields are immutable after
// ApplyDelta returns, so a derived graph is as read-shareable as a frozen
// one.
type overlay struct {
	csrN    int    // node count the shared csr was built for
	touched []bool // len csrN; true ⇒ adjacency or label differs from csr

	// nodesByLabel overrides the csr candidate index for every node label
	// whose membership changed since the last real freeze: the full, sorted
	// node list for that label. Labels absent from the map are served from
	// the csr.
	nodesByLabel map[Label][]NodeID
	labelsSorted []Label // distinct node labels of the overlaid graph, ascending

	ops          int      // cumulative op count since the last real freeze
	batchTouched []NodeID // nodes touched by the most recent batch, ascending
}

// bypass reports whether node v's CSR index entries are stale (or absent,
// for nodes newer than the freeze).
func (ov *overlay) bypass(v NodeID) bool {
	return int(v) >= ov.csrN || ov.touched[v]
}

// labelRun returns the contiguous run of edges labeled l within a
// (Label, To)-sorted adjacency list. It is rangeL for overlay-merged
// adjacency, which has no per-node label index.
func labelRun(adj []Edge, l Label) []Edge {
	lo := lowerBound(adj, l)
	hi := lo
	for hi < len(adj) && adj[hi].Label == l {
		hi++
	}
	if lo == hi {
		return nil
	}
	return adj[lo:hi]
}

// lowerBound returns the first index of adj whose Label is >= l.
func lowerBound(adj []Edge, l Label) int {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid].Label < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cmpEdge orders edges by (Label, To), the frozen adjacency invariant.
func cmpEdge(a, b Edge) int {
	if a.Label != b.Label {
		return int(a.Label) - int(b.Label)
	}
	return int(a.To) - int(b.To)
}

// ApplyDelta applies a batch of mutations to a frozen graph and returns the
// result as a new graph; g itself is never modified. The derived graph
// shares g's CSR arenas (touched nodes get fresh merged adjacency) and is
// immediately frozen-for-reading: every concurrent read path that is safe
// on a frozen graph is safe on it. Application is atomic — the first
// invalid op aborts the whole batch with a *DeltaError and no derived
// graph. Deltas stack: applying a batch to an already-overlaid graph
// accumulates into one overlay over the original freeze.
//
// Note that a derived graph reports Frozen() == true while Freeze remains a
// no-op on it; folding the overlay back into a real freeze is an explicit
// CompactCopy.
func (g *Graph) ApplyDelta(ops []DeltaOp) (*Graph, error) {
	g.Freeze()
	baseN := g.NumNodes()
	maxLabel := Label(g.syms.Len())

	labels := slices.Clone(g.labels)
	stagedOut := make(map[NodeID][]Edge)
	stagedIn := make(map[NodeID][]Edge)
	touched := make(map[NodeID]struct{})
	affected := make(map[Label]struct{}) // node labels whose membership changed
	numE := g.numE

	// stage returns the working adjacency of v as a mutable copy: staged if
	// an earlier op already touched it, cloned from the base otherwise. Both
	// are (Label, To)-sorted, the invariant every op maintains.
	stage := func(m map[NodeID][]Edge, base [][]Edge, v NodeID) []Edge {
		if a, ok := m[v]; ok {
			return a
		}
		var a []Edge
		if int(v) < baseN {
			a = slices.Clone(base[v])
		}
		m[v] = a
		return a
	}
	fail := func(i int, op DeltaOp, reason string) (*Graph, error) {
		return nil, &DeltaError{Index: i, Op: op, Reason: reason}
	}

	for i, op := range ops {
		switch op.Kind {
		case DeltaAddNode:
			if op.Label <= NoLabel || op.Label > maxLabel {
				return fail(i, op, "node label not interned")
			}
			v := NodeID(len(labels))
			labels = append(labels, op.Label)
			touched[v] = struct{}{}
			affected[op.Label] = struct{}{}

		case DeltaAddEdge:
			if int(op.From) < 0 || int(op.From) >= len(labels) {
				return fail(i, op, "unknown from node")
			}
			if int(op.To) < 0 || int(op.To) >= len(labels) {
				return fail(i, op, "unknown to node")
			}
			if op.Label <= NoLabel || op.Label > maxLabel {
				return fail(i, op, "edge label not interned")
			}
			e := Edge{To: op.To, Label: op.Label}
			out := stage(stagedOut, g.out, op.From)
			if pos, dup := slices.BinarySearchFunc(out, e, cmpEdge); dup {
				return fail(i, op, "edge already exists")
			} else {
				stagedOut[op.From] = slices.Insert(out, pos, e)
			}
			in := stage(stagedIn, g.in, op.To)
			re := Edge{To: op.From, Label: op.Label}
			pos, _ := slices.BinarySearchFunc(in, re, cmpEdge)
			stagedIn[op.To] = slices.Insert(in, pos, re)
			numE++
			touched[op.From] = struct{}{}
			touched[op.To] = struct{}{}

		case DeltaDelEdge:
			if int(op.From) < 0 || int(op.From) >= len(labels) {
				return fail(i, op, "unknown from node")
			}
			if int(op.To) < 0 || int(op.To) >= len(labels) {
				return fail(i, op, "unknown to node")
			}
			e := Edge{To: op.To, Label: op.Label}
			out := stage(stagedOut, g.out, op.From)
			pos, ok := slices.BinarySearchFunc(out, e, cmpEdge)
			if !ok {
				return fail(i, op, "no such edge")
			}
			stagedOut[op.From] = slices.Delete(out, pos, pos+1)
			in := stage(stagedIn, g.in, op.To)
			re := Edge{To: op.From, Label: op.Label}
			rpos, rok := slices.BinarySearchFunc(in, re, cmpEdge)
			if !rok {
				return fail(i, op, "adjacency desynchronized") // unreachable by construction
			}
			stagedIn[op.To] = slices.Delete(in, rpos, rpos+1)
			numE--
			touched[op.From] = struct{}{}
			touched[op.To] = struct{}{}

		case DeltaSetLabel:
			if int(op.Node) < 0 || int(op.Node) >= len(labels) {
				return fail(i, op, "unknown node")
			}
			if op.Label <= NoLabel || op.Label > maxLabel {
				return fail(i, op, "node label not interned")
			}
			old := labels[op.Node]
			labels[op.Node] = op.Label
			affected[old] = struct{}{}
			affected[op.Label] = struct{}{}
			touched[op.Node] = struct{}{}

		default:
			return fail(i, op, "unknown op kind")
		}
	}

	// Materialize the derived graph: cloned slice headers (O(V)), staged
	// merged adjacency for touched nodes, everything else aliased into the
	// base arenas.
	n := len(labels)
	out := make([][]Edge, n)
	in := make([][]Edge, n)
	copy(out, g.out)
	copy(in, g.in)
	for v, adj := range stagedOut {
		out[v] = slices.Clip(adj)
	}
	for v, adj := range stagedIn {
		in[v] = slices.Clip(adj)
	}
	d := &Graph{
		syms:    g.syms,
		labels:  labels,
		out:     out,
		in:      in,
		numE:    numE,
		byLabel: make(map[Label][]NodeID),
		dirty:   true,
	}

	// Build the cumulative overlay over the original freeze.
	csrN := baseN
	var prevTouched []bool
	var prevByLabel map[Label][]NodeID
	prevOps := 0
	if g.ov != nil {
		csrN = g.ov.csrN
		prevTouched = g.ov.touched
		prevByLabel = g.ov.nodesByLabel
		prevOps = g.ov.ops
	}
	ov := &overlay{csrN: csrN, ops: prevOps + len(ops)}
	ov.touched = make([]bool, csrN)
	copy(ov.touched, prevTouched)
	ov.batchTouched = make([]NodeID, 0, len(touched))
	for v := range touched {
		if int(v) < csrN {
			ov.touched[v] = true
		}
		ov.batchTouched = append(ov.batchTouched, v)
	}
	slices.Sort(ov.batchTouched)

	ov.nodesByLabel = make(map[Label][]NodeID, len(prevByLabel)+len(affected))
	for l, nodes := range prevByLabel {
		ov.nodesByLabel[l] = nodes
	}
	if len(affected) > 0 {
		for l := range affected {
			ov.nodesByLabel[l] = nil
		}
		// One scan rebuilds every affected label's candidate list, already
		// sorted because node IDs ascend.
		for v, l := range labels {
			if _, ok := affected[l]; ok {
				ov.nodesByLabel[l] = append(ov.nodesByLabel[l], NodeID(v))
			}
		}
	}
	for _, l := range g.NodeLabels() {
		if _, ok := affected[l]; !ok {
			ov.labelsSorted = append(ov.labelsSorted, l)
		}
	}
	for l := range affected {
		if len(ov.nodesByLabel[l]) > 0 {
			ov.labelsSorted = append(ov.labelsSorted, l)
		}
	}
	slices.Sort(ov.labelsSorted)

	d.csr = g.csr
	d.ov = ov
	d.frozen.Store(true)
	return d, nil
}

// CompactCopy folds the graph — overlay and all — into a freshly frozen
// copy with its own CSR arenas, sharing only the symbol table. The logical
// graph is unchanged, so readers of the copy observe exactly what readers
// of the original do; the copy simply has no overlay left to consult. It
// also works on plain graphs, where it is a frozen deep copy.
func (g *Graph) CompactCopy() *Graph {
	c := &Graph{
		syms:    g.syms,
		labels:  slices.Clone(g.labels),
		out:     slices.Clone(g.out),
		in:      slices.Clone(g.in),
		numE:    g.numE,
		byLabel: make(map[Label][]NodeID),
		dirty:   true,
	}
	// Freeze builds fresh arenas from the (cloned) adjacency headers and
	// re-points them; the original's arenas are only read.
	c.Freeze()
	return c
}

// Overlaid reports whether the graph is a frozen graph with a live delta
// overlay (i.e. produced by ApplyDelta and not yet compacted).
func (g *Graph) Overlaid() bool { return g.frozen.Load() && g.ov != nil }

// OverlayOps reports the cumulative number of delta ops applied since the
// last real freeze — the compaction trigger's input. Zero for non-overlaid
// graphs.
func (g *Graph) OverlayOps() int {
	if g.ov != nil {
		return g.ov.ops
	}
	return 0
}

// DeltaTouched returns the nodes touched by the most recent ApplyDelta
// batch (edge endpoints, relabeled nodes, added nodes), ascending. The
// serving layer's selective cache invalidation starts from this set. Nil
// for non-overlaid graphs; the caller must not mutate the result.
func (g *Graph) DeltaTouched() []NodeID {
	if g.ov != nil {
		return g.ov.batchTouched
	}
	return nil
}

// LabelWithinDistance returns the smallest undirected distance (0..max)
// from v to any node labeled l, or -1 if no such node lies within max hops.
// The serving layer uses it to decide whether a touched node can influence
// any rule anchored at label-l centers.
func (g *Graph) LabelWithinDistance(v NodeID, l Label, max int) int {
	if g.labels[v] == l {
		return 0
	}
	if max <= 0 {
		return -1
	}
	s := acquireBFS(g.NumNodes())
	defer bfsPool.Put(s)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier, v)
	for depth := 1; depth <= max && len(s.frontier) > 0; depth++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for _, e := range g.out[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					if g.labels[e.To] == l {
						return depth
					}
					s.next = append(s.next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if s.stamp[e.To] != s.epoch {
					s.stamp[e.To] = s.epoch
					if g.labels[e.To] == l {
						return depth
					}
					s.next = append(s.next, e.To)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
	}
	return -1
}
