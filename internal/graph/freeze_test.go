package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFreezePreservesHasEdge(t *testing.T) {
	g := New(nil)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, "e")
	g.AddEdge(a, c, "f")
	g.AddEdge(c, a, "e")

	e := g.Symbols().Lookup("e")
	f := g.Symbols().Lookup("f")
	if g.Frozen() {
		t.Fatal("graph frozen before Freeze")
	}
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not freeze")
	}
	if !g.HasEdge(a, b, e) || !g.HasEdge(a, c, f) || !g.HasEdge(c, a, e) {
		t.Error("frozen HasEdge lost edges")
	}
	if g.HasEdge(b, a, e) || g.HasEdge(a, b, f) {
		t.Error("frozen HasEdge found phantom edges")
	}
	// Freeze is idempotent.
	g.Freeze()
	if !g.HasEdge(a, b, e) {
		t.Error("second Freeze broke HasEdge")
	}
	// Mutation unfreezes; lookups still work.
	g.AddEdge(b, c, "e")
	if g.Frozen() {
		t.Error("AddEdge left the graph frozen")
	}
	if !g.HasEdge(b, c, e) || !g.HasEdge(a, b, e) {
		t.Error("post-mutation HasEdge wrong")
	}
}

// TestQuickFreezeEquivalence: frozen and unfrozen HasEdge agree on every
// (from, to, label) triple, present or absent.
func TestQuickFreezeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15, 60)
		// Record every answer unfrozen.
		type key struct {
			from, to NodeID
			l        Label
		}
		answers := map[key]bool{}
		labels := []Label{1, 2, 3, 4}
		for from := 0; from < g.NumNodes(); from++ {
			for to := 0; to < g.NumNodes(); to++ {
				for _, l := range labels {
					k := key{NodeID(from), NodeID(to), l}
					answers[k] = g.HasEdge(k.from, k.to, k.l)
				}
			}
		}
		g.Freeze()
		for k, want := range answers {
			if g.HasEdge(k.from, k.to, k.l) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFreezeDoesNotChangeDegreesOrLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 20, 80)
	type snap struct {
		out, in int
		l       Label
	}
	before := make([]snap, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		before[v] = snap{g.OutDegree(NodeID(v)), g.InDegree(NodeID(v)), g.Label(NodeID(v))}
	}
	g.Freeze()
	for v := 0; v < g.NumNodes(); v++ {
		after := snap{g.OutDegree(NodeID(v)), g.InDegree(NodeID(v)), g.Label(NodeID(v))}
		if after != before[v] {
			t.Fatalf("node %d changed by Freeze: %+v vs %+v", v, before[v], after)
		}
	}
}
