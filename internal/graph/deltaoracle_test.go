// The graph-level mutation differential oracle: randomized delta batches
// applied through the overlay must be observationally identical — across
// every exported read path — to a graph rebuilt from scratch with the same
// logical content. The serve-level oracle (internal/serve) pins the same
// property one layer up, for identify responses and DMine Σ.
package graph_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"gpar/internal/gen"
	"gpar/internal/graph"
)

// deltaModel is the reference state the oracle mutates in lockstep with the
// overlay: plain labels plus an edge set, from which a fresh frozen graph
// can be rebuilt at any step.
type deltaModel struct {
	syms   *graph.Symbols
	labels []graph.Label
	edges  map[[3]int32]bool // (from, to, label)
}

func newDeltaModel(g *graph.Graph) *deltaModel {
	m := &deltaModel{syms: g.Symbols(), edges: make(map[[3]int32]bool)}
	for v := 0; v < g.NumNodes(); v++ {
		m.labels = append(m.labels, g.Label(graph.NodeID(v)))
		for _, e := range g.Out(graph.NodeID(v)) {
			m.edges[[3]int32{int32(v), int32(e.To), int32(e.Label)}] = true
		}
	}
	return m
}

// apply mirrors ApplyDelta's semantics onto the model. Ops are pre-validated
// by the generator, so none may fail.
func (m *deltaModel) apply(ops []graph.DeltaOp) {
	for _, op := range ops {
		switch op.Kind {
		case graph.DeltaAddNode:
			m.labels = append(m.labels, op.Label)
		case graph.DeltaAddEdge:
			m.edges[[3]int32{int32(op.From), int32(op.To), int32(op.Label)}] = true
		case graph.DeltaDelEdge:
			delete(m.edges, [3]int32{int32(op.From), int32(op.To), int32(op.Label)})
		case graph.DeltaSetLabel:
			m.labels[op.Node] = op.Label
		}
	}
}

// rebuild constructs a fresh frozen graph with the model's exact content.
func (m *deltaModel) rebuild() *graph.Graph {
	g := graph.New(m.syms)
	for _, l := range m.labels {
		g.AddNodeL(l)
	}
	keys := make([][3]int32, 0, len(m.edges))
	for k := range m.edges {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b [3]int32) int {
		for i := range a {
			if a[i] != b[i] {
				return int(a[i]) - int(b[i])
			}
		}
		return 0
	})
	for _, k := range keys {
		g.AddEdgeL(graph.NodeID(k[0]), graph.NodeID(k[1]), graph.Label(k[2]))
	}
	g.Freeze()
	return g
}

// randBatch generates 1..8 valid ops against the model's current state,
// mutating the model as it goes so intra-batch references stay valid.
func (m *deltaModel) randBatch(rng *rand.Rand, nodeLabels, edgeLabels []graph.Label) []graph.DeltaOp {
	n := 1 + rng.Intn(8)
	ops := make([]graph.DeltaOp, 0, n)
	for len(ops) < n {
		var op graph.DeltaOp
		switch rng.Intn(10) {
		case 0: // add node
			op = graph.DeltaOp{Kind: graph.DeltaAddNode,
				Label: nodeLabels[rng.Intn(len(nodeLabels))]}
		case 1, 2: // relabel
			op = graph.DeltaOp{Kind: graph.DeltaSetLabel,
				Node:  graph.NodeID(rng.Intn(len(m.labels))),
				Label: nodeLabels[rng.Intn(len(nodeLabels))]}
		case 3, 4, 5: // delete a random existing edge
			if len(m.edges) == 0 {
				continue
			}
			i, target := rng.Intn(len(m.edges)), [3]int32{}
			for k := range m.edges {
				if i == 0 {
					target = k
					break
				}
				i--
			}
			op = graph.DeltaOp{Kind: graph.DeltaDelEdge,
				From:  graph.NodeID(target[0]),
				To:    graph.NodeID(target[1]),
				Label: graph.Label(target[2])}
		default: // add a fresh edge
			from := int32(rng.Intn(len(m.labels)))
			to := int32(rng.Intn(len(m.labels)))
			l := edgeLabels[rng.Intn(len(edgeLabels))]
			if m.edges[[3]int32{from, to, int32(l)}] {
				continue
			}
			op = graph.DeltaOp{Kind: graph.DeltaAddEdge,
				From: graph.NodeID(from), To: graph.NodeID(to), Label: l}
		}
		m.apply([]graph.DeltaOp{op})
		ops = append(ops, op)
	}
	return ops
}

// compareGraphs checks every exported read path agrees between the overlay
// graph and the rebuilt reference.
func compareGraphs(t *testing.T, tag string, got, want *graph.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: size |V|=%d/%d |E|=%d/%d", tag,
			got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges())
	}
	if !slices.Equal(got.NodeLabels(), want.NodeLabels()) {
		t.Fatalf("%s: NodeLabels %v != %v", tag, got.NodeLabels(), want.NodeLabels())
	}
	for _, l := range want.NodeLabels() {
		if !slices.Equal(got.NodesWithLabel(l), want.NodesWithLabel(l)) {
			t.Fatalf("%s: NodesWithLabel(%d) %v != %v", tag, l,
				got.NodesWithLabel(l), want.NodesWithLabel(l))
		}
	}
	edgeLabels := map[graph.Label]bool{}
	for v := graph.NodeID(0); int(v) < want.NumNodes(); v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("%s: Label(%d) %d != %d", tag, v, got.Label(v), want.Label(v))
		}
		if !slices.Equal(got.Out(v), want.Out(v)) {
			t.Fatalf("%s: Out(%d) %v != %v", tag, v, got.Out(v), want.Out(v))
		}
		if !slices.Equal(got.In(v), want.In(v)) {
			t.Fatalf("%s: In(%d) %v != %v", tag, v, got.In(v), want.In(v))
		}
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("%s: Degree(%d)", tag, v)
		}
		for _, e := range want.Out(v) {
			edgeLabels[e.Label] = true
			if !got.HasEdge(v, e.To, e.Label) {
				t.Fatalf("%s: HasEdge(%d,%d,%d) missing", tag, v, e.To, e.Label)
			}
		}
	}
	// Label-range iterators — the matcher's bread and butter — for every
	// (node, edge label) pair, plus an absent label.
	probe := append(slices.Collect(func(yield func(graph.Label) bool) {
		for l := range edgeLabels {
			if !yield(l) {
				return
			}
		}
	}), graph.Label(1))
	for v := graph.NodeID(0); int(v) < want.NumNodes(); v++ {
		for _, l := range probe {
			if !slices.Equal(got.OutRangeL(v, l), want.OutRangeL(v, l)) {
				t.Fatalf("%s: OutRangeL(%d,%d) %v != %v", tag, v, l,
					got.OutRangeL(v, l), want.OutRangeL(v, l))
			}
			if !slices.Equal(got.InRangeL(v, l), want.InRangeL(v, l)) {
				t.Fatalf("%s: InRangeL(%d,%d) %v != %v", tag, v, l,
					got.InRangeL(v, l), want.InRangeL(v, l))
			}
			if got.HasOutLabel(v, l) != want.HasOutLabel(v, l) {
				t.Fatalf("%s: HasOutLabel(%d,%d)", tag, v, l)
			}
		}
	}
	// BFS-backed paths on a sample of nodes.
	for v := graph.NodeID(0); int(v) < want.NumNodes(); v += 7 {
		for r := 1; r <= 3; r++ {
			gn, wn := got.Neighborhood(v, r), want.Neighborhood(v, r)
			slices.Sort(gn)
			slices.Sort(wn)
			if !slices.Equal(gn, wn) {
				t.Fatalf("%s: Neighborhood(%d,%d)", tag, v, r)
			}
			if got.HasNodeAtDistance(v, r) != want.HasNodeAtDistance(v, r) {
				t.Fatalf("%s: HasNodeAtDistance(%d,%d)", tag, v, r)
			}
		}
		if got.EccentricityCapped(v, 3) != want.EccentricityCapped(v, 3) {
			t.Fatalf("%s: EccentricityCapped(%d,3)", tag, v)
		}
		for _, l := range want.NodeLabels() {
			if got.LabelWithinDistance(v, l, 2) != want.LabelWithinDistance(v, l, 2) {
				t.Fatalf("%s: LabelWithinDistance(%d,%d,2)", tag, v, l)
			}
		}
	}
}

// TestDeltaGraphOracle drives randomized add/delete/relabel/compact
// sequences through the overlay and pins observational equality with a
// from-scratch rebuild after every batch.
func TestDeltaGraphOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			syms := graph.NewSymbols()
			base := gen.Synthetic(syms, 60, 150, seed)
			base.Freeze()
			var nodeLabels, edgeLabels []graph.Label
			for _, l := range base.NodeLabels() {
				nodeLabels = append(nodeLabels, l)
			}
			seen := map[graph.Label]bool{}
			for v := graph.NodeID(0); int(v) < base.NumNodes(); v++ {
				for _, e := range base.Out(v) {
					if !seen[e.Label] {
						seen[e.Label] = true
						edgeLabels = append(edgeLabels, e.Label)
					}
				}
			}
			// A label interned after the freeze exercises the new-label path.
			nodeLabels = append(nodeLabels, syms.Intern("late-label"))

			m := newDeltaModel(base)
			cur := base
			for step := 0; step < 12; step++ {
				ops := m.randBatch(rng, nodeLabels, edgeLabels)
				next, err := cur.ApplyDelta(ops)
				if err != nil {
					t.Fatalf("step %d: ApplyDelta: %v", step, err)
				}
				want := m.rebuild()
				compareGraphs(t, fmt.Sprintf("step %d overlay", step), next, want)
				if step%4 == 3 {
					compact := next.CompactCopy()
					compareGraphs(t, fmt.Sprintf("step %d compacted", step), compact, want)
					// Keep mining the overlay stack rather than restarting
					// from the compacted copy — deeper stacks, harder test.
				}
				cur = next
			}
		})
	}
}
