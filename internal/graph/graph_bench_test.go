package graph

import (
	"fmt"
	"testing"
)

func benchGraph(n int) *Graph {
	g := New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i*7+1)%n), "e")
		g.AddEdge(NodeID(i), NodeID((i*31+5)%n), "f")
		g.AddEdge(NodeID((i*13)%n), NodeID(i), "g")
	}
	return g
}

func BenchmarkNeighborhood(b *testing.B) {
	g := benchGraph(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Neighborhood(NodeID(i%g.NumNodes()), 2)
	}
}

func BenchmarkDNeighborhoodGraph(b *testing.B) {
	g := benchGraph(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DNeighborhoodGraph(NodeID(i%g.NumNodes()), 2)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(5000)
	e := g.Symbols().Lookup("e")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NodeID(i % g.NumNodes())
		g.HasEdge(v, NodeID((int(v)*7+1)%g.NumNodes()), e)
	}
}

func BenchmarkNodesWithLabel(b *testing.B) {
	g := benchGraph(5000)
	l := g.Symbols().Lookup("L3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NodesWithLabel(l)
	}
}
