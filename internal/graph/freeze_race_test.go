package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentFreezeOnFrozenGraph exercises the Freeze contract: once a
// graph is frozen, Freeze and every read path may be called from any number
// of goroutines. Matchers call Freeze unconditionally, so this is exactly
// the shape of concurrent rule evaluation over a shared snapshot graph.
// Run with -race.
func TestConcurrentFreezeOnFrozenGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 240)
	g.Freeze() // freeze-before-share: the one synchronized call

	labels := []Label{1, 2, 3, 4}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Freeze() // must be a safe no-op
				v := NodeID((w*31 + i) % g.NumNodes())
				u := NodeID((w*17 + 3*i) % g.NumNodes())
				l := labels[i%len(labels)]
				g.HasEdge(v, u, l)
				g.OutRangeL(v, l)
				g.InRangeL(u, l)
				g.NodesWithLabel(g.Label(v))
				g.NodeLabels()
				g.HasOutLabel(v, l)
				g.Neighborhood(v, 2)
			}
		}(w)
	}
	wg.Wait()
}

// TestRangeLMatchesScan: the frozen label-range lookups agree with a scan
// of the adjacency on random graphs, and thawing by mutation preserves all
// answers.
func TestRangeLMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 90)
		type key struct {
			v NodeID
			l Label
		}
		scan := func(adj []Edge, l Label) []Edge {
			var out []Edge
			for _, e := range adj {
				if e.Label == l {
					out = append(out, e)
				}
			}
			return out
		}
		wantOut := map[key][]Edge{}
		wantIn := map[key][]Edge{}
		labels := []Label{1, 2, 3, 4, 5}
		for v := 0; v < g.NumNodes(); v++ {
			for _, l := range labels {
				wantOut[key{NodeID(v), l}] = scan(g.Out(NodeID(v)), l)
				wantIn[key{NodeID(v), l}] = scan(g.In(NodeID(v)), l)
			}
		}
		g.Freeze()
		sameSet := func(a, b []Edge) bool {
			if len(a) != len(b) {
				return false
			}
			seen := map[Edge]int{}
			for _, e := range a {
				seen[e]++
			}
			for _, e := range b {
				if seen[e] == 0 {
					return false
				}
				seen[e]--
			}
			return true
		}
		for k, want := range wantOut {
			if got := g.OutRangeL(k.v, k.l); !sameSet(got, want) {
				t.Fatalf("seed %d: OutRangeL(%d,%d) = %v, want %v", seed, k.v, k.l, got, want)
			}
		}
		for k, want := range wantIn {
			if got := g.InRangeL(k.v, k.l); !sameSet(got, want) {
				t.Fatalf("seed %d: InRangeL(%d,%d) = %v, want %v", seed, k.v, k.l, got, want)
			}
		}
		// Thaw by mutation: answers must survive, plus the new edge.
		v := g.AddNodeL(1)
		if g.Frozen() {
			t.Fatal("AddNodeL left the graph frozen")
		}
		g.AddEdgeL(0, v, 2)
		if !g.HasEdge(0, v, 2) {
			t.Fatal("post-thaw edge missing")
		}
		for k, want := range wantOut {
			got := g.OutRangeL(k.v, k.l)
			if k.v == 0 && k.l == 2 {
				continue // gained the new edge
			}
			if !sameSet(got, want) {
				t.Fatalf("seed %d: post-thaw OutRangeL(%d,%d) = %v, want %v", seed, k.v, k.l, got, want)
			}
		}
	}
}
