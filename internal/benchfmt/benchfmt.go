// Package benchfmt defines the schema of the tracked BENCH_*.json
// artifacts, shared by cmd/benchjson (the writer) and cmd/benchguard (the
// CI regression gate) so the two cannot drift apart.
package benchfmt

// Measurement is one benchmark's -benchmem triple.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Entry is one benchmark joined against its recorded baseline.
type Entry struct {
	Name    string       `json:"name"`
	Current Measurement  `json:"current"`
	Base    *Measurement `json:"baseline,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (higher is
	// better); AllocReduction likewise for allocs/op, with a zero current
	// count treated as 1 so the ratio is a well-defined lower bound
	// (ZeroAllocs marks that case). Only present when a baseline is
	// recorded for the benchmark.
	Speedup        float64 `json:"speedup,omitempty"`
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
	ZeroAllocs     bool    `json:"zero_allocs,omitempty"`
}

// Report is one BENCH_*.json file.
type Report struct {
	GeneratedBy    string  `json:"generated_by"`
	BaselineCommit string  `json:"baseline_commit"`
	Benchmarks     []Entry `json:"benchmarks"`
}
