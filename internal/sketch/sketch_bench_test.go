package sketch

import (
	"testing"

	"gpar/internal/graph"
)

func socialGraph(n int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode([]string{"user", "item"}[i%2])
	}
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i*7+1)%n), "e")
		g.AddEdge(graph.NodeID(i), graph.NodeID((i*13+5)%n), "f")
	}
	return g
}

func BenchmarkSketchOf(b *testing.B) {
	g := socialGraph(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Of(g, graph.NodeID(i%g.NumNodes()), 2)
	}
}

func BenchmarkIndexWarm(b *testing.B) {
	g := socialGraph(2000)
	ix := NewIndex(g, 2)
	for v := 0; v < g.NumNodes(); v++ {
		ix.Sketch(graph.NodeID(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Sketch(graph.NodeID(i % g.NumNodes()))
	}
}

func BenchmarkScore(b *testing.B) {
	g := socialGraph(2000)
	data := Of(g, 0, 2)
	need := Sketch{{g.Symbols().Lookup("item"): 1}, {g.Symbols().Lookup("user"): 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(data, need)
	}
}
