package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

func star(nLeaves int) (*graph.Graph, graph.NodeID) {
	g := graph.New(nil)
	hub := g.AddNode("h")
	for i := 0; i < nLeaves; i++ {
		leaf := g.AddNode("l")
		g.AddEdge(hub, leaf, "e")
	}
	return g, hub
}

func TestOfStar(t *testing.T) {
	g, hub := star(4)
	sk := Of(g, hub, 2)
	l := g.Symbols().Lookup("l")
	if sk[0][l] != 4 {
		t.Errorf("hop1 l-count = %d want 4", sk[0][l])
	}
	// Cumulative: hop2 includes hop1.
	if sk[1][l] != 4 {
		t.Errorf("hop2 cumulative l-count = %d want 4", sk[1][l])
	}
	// Leaf sees the hub at hop 1 and siblings at hop 2.
	leafSk := Of(g, 1, 2)
	h := g.Symbols().Lookup("h")
	if leafSk[0][h] != 1 || leafSk[0][l] != 0 {
		t.Errorf("leaf hop1 = %v", leafSk[0])
	}
	if leafSk[1][l] != 3 {
		t.Errorf("leaf hop2 cumulative l = %d want 3 siblings", leafSk[1][l])
	}
}

func TestOfUndirected(t *testing.T) {
	// Incoming edges count for the neighborhood too.
	g := graph.New(nil)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(b, a, "e")
	sk := Of(g, a, 1)
	if sk[0][g.Symbols().Lookup("b")] != 1 {
		t.Error("incoming neighbor missing from sketch")
	}
}

func TestDominatesAndScore(t *testing.T) {
	g, hub := star(4)
	l := g.Symbols().Lookup("l")
	data := Of(g, hub, 2)
	need := Sketch{{l: 2}, {l: 2}}
	if !data.Dominates(need) {
		t.Error("4 leaves should dominate a need of 2")
	}
	s, ok := Score(data, need)
	if !ok {
		t.Fatal("Score infeasible on dominating sketch")
	}
	if s != (4-2)+(4-2) {
		t.Errorf("Score = %d want 4", s)
	}
	needTooMuch := Sketch{{l: 5}}
	if data.Dominates(needTooMuch) {
		t.Error("dominance over-approved")
	}
	if _, ok := Score(data, needTooMuch); ok {
		t.Error("Score feasible despite deficit")
	}
	// Need deeper than data sketch with nonzero requirement fails.
	deep := Sketch{{l: 1}, {l: 1}, {l: 1}}
	short := Sketch{{l: 1}}
	if short.Dominates(deep) {
		t.Error("short sketch dominated deeper requirement")
	}
}

func TestOfPattern(t *testing.T) {
	syms := graph.NewSymbols()
	p := pattern.New(syms)
	x := p.AddNode("cust")
	fr := p.AddNode("rest")
	p.SetMult(fr, 3)
	p.AddEdge(x, fr, "like")
	p.X = x
	sk := OfPattern(p, x, 2)
	rest := syms.Lookup("rest")
	if sk[0][rest] != 3 {
		t.Errorf("pattern hop1 rest = %d want 3 (multiplicity expanded)", sk[0][rest])
	}
	if sk[1][rest] != 3 {
		t.Errorf("pattern hop2 cumulative rest = %d want 3", sk[1][rest])
	}
}

func TestIndexCaching(t *testing.T) {
	g, hub := star(3)
	ix := NewIndex(g, 2)
	if ix.K() != 2 {
		t.Errorf("K = %d", ix.K())
	}
	_ = ix.Sketch(hub)
	_ = ix.Sketch(hub)
	if ix.CachedCount() != 1 {
		t.Errorf("CachedCount = %d want 1", ix.CachedCount())
	}
	_ = ix.Sketch(1)
	if ix.CachedCount() != 2 {
		t.Errorf("CachedCount = %d want 2", ix.CachedCount())
	}
}

func TestIndexConcurrentAccess(t *testing.T) {
	g, _ := star(50)
	ix := NewIndex(g, 2)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			for v := 0; v < g.NumNodes(); v++ {
				ix.Sketch(graph.NodeID(v))
			}
			done <- true
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if ix.CachedCount() != g.NumNodes() {
		t.Errorf("CachedCount = %d want %d", ix.CachedCount(), g.NumNodes())
	}
}

// TestQuickCumulative: sketches are cumulative (monotone per label across
// hops) and hop-i counts never exceed the total node count.
func TestQuickCumulative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := []string{"a", "b", "c"}
		n := 8 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(3)])
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "e")
		}
		v := graph.NodeID(rng.Intn(n))
		sk := Of(g, v, 3)
		for i := 1; i < len(sk); i++ {
			for l, c := range sk[i-1] {
				if sk[i][l] < c {
					return false
				}
			}
		}
		total := 0
		for _, c := range sk[len(sk)-1] {
			total += c
		}
		return total <= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickDominanceNecessary: if pattern p has a match at v, then v's data
// sketch dominates x's pattern sketch — the property guided search relies
// on for pruning. (Verified indirectly through match elsewhere; here we
// check Score feasibility implies Dominates and vice versa.)
func TestQuickScoreDominatesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Sketch {
			s := make(Sketch, 2)
			for i := range s {
				s[i] = map[graph.Label]int{}
				for l := graph.Label(1); l <= 3; l++ {
					s[i][l] = rng.Intn(4)
				}
			}
			// ensure cumulative
			for l := graph.Label(1); l <= 3; l++ {
				if s[1][l] < s[0][l] {
					s[1][l] = s[0][l]
				}
			}
			return s
		}
		a, b := mk(), mk()
		_, ok := Score(a, b)
		return ok == a.Dominates(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
