// Package sketch implements the k-hop neighborhood sketches K(v) of
// Section 5.2 of "Association Rules with Graph Patterns" (PVLDB 2015): for
// each node v, a list {(1, D1), ..., (k, Dk)} where Di is the distribution
// of node labels and their frequencies around v. Algorithm Match uses the
// sketches for guided search: a data node v' can only match pattern node u'
// if v's sketch dominates u's at every hop, and candidates are ranked by
// the total frequency slack f(u', v') = Σi (Di - D'i).
//
// Di here counts distinct nodes within distance <= i (cumulative), not at
// exactly hop i: under subgraph isomorphism, pattern distances can only
// shrink in the data (d_G(h(u), h(v)) <= d_Q(u, v)), so per-exact-hop
// dominance is not a necessary condition while cumulative dominance is.
package sketch

import (
	"sync"

	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// Sketch is a k-hop label-frequency sketch: Sketch[i] is the distribution of
// distinct nodes within undirected distance i+1, excluding the node itself.
type Sketch []map[graph.Label]int

// Dominates reports whether every cumulative label frequency in need is
// available in s at the same depth: the necessary condition "v' does not
// match u' if for some i, Di - D'i < 0".
func (s Sketch) Dominates(need Sketch) bool {
	for i := range need {
		var have map[graph.Label]int
		if i < len(s) {
			have = s[i]
		}
		for l, want := range need[i] {
			if have[l] < want {
				return false
			}
		}
	}
	return true
}

// Score returns f(u', v') = Σi Σlabels (Di(v') - D'i(u')), the total
// frequency slack over the labels the pattern requires, and whether the
// candidate is feasible at all. Larger scores rank earlier in guided search
// ("the larger the difference is, the more likely v' matches u'").
func Score(data, need Sketch) (score int, feasible bool) {
	for i := range need {
		for l, want := range need[i] {
			var have int
			if i < len(data) {
				have = data[i][l]
			}
			if have < want {
				return 0, false
			}
			score += have - want
		}
	}
	return score, true
}

// bfsScratch is the reusable state of one sketch BFS: an epoch-stamped
// visited array (no clearing between runs; bumping the epoch invalidates
// all stamps at once) and the two frontier buffers. On a frozen graph the
// BFS walks CSR arena views, so together with the scratch a cached-index
// miss allocates only the sketch maps it returns.
type bfsScratch struct {
	visited        []uint32
	epoch          uint32
	frontier, next []graph.NodeID
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// reset sizes the scratch for a graph of n nodes and opens a new epoch.
func (sc *bfsScratch) reset(n int) {
	if cap(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.visited = sc.visited[:n]
	sc.epoch++
	if sc.epoch == 0 { // wraparound: stale stamps could collide, clear once
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
}

// Of computes the k-hop sketch of node v in g.
func Of(g *graph.Graph, v graph.NodeID, k int) Sketch {
	sk := make(Sketch, k)
	sc := bfsPool.Get().(*bfsScratch)
	sc.reset(g.NumNodes())
	sc.visited[v] = sc.epoch
	frontier := append(sc.frontier[:0], v)
	next := sc.next[:0]
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		dist := make(map[graph.Label]int)
		if hop > 0 {
			for l, c := range sk[hop-1] {
				dist[l] = c
			}
		}
		next = next[:0]
		for _, u := range frontier {
			for _, e := range g.Out(u) {
				if sc.visited[e.To] != sc.epoch {
					sc.visited[e.To] = sc.epoch
					next = append(next, e.To)
					dist[g.Label(e.To)]++
				}
			}
			for _, e := range g.In(u) {
				if sc.visited[e.To] != sc.epoch {
					sc.visited[e.To] = sc.epoch
					next = append(next, e.To)
					dist[g.Label(e.To)]++
				}
			}
		}
		sk[hop] = dist
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier[:0], next[:0]
	bfsPool.Put(sc)
	fillCumulative(sk)
	return sk
}

// fillCumulative copies the last materialized level into any levels the BFS
// never reached (frontier exhausted early).
func fillCumulative(sk Sketch) {
	for i := range sk {
		if sk[i] == nil {
			if i == 0 {
				sk[i] = map[graph.Label]int{}
			} else {
				sk[i] = sk[i-1]
			}
		}
	}
}

// OfPattern computes the k-hop sketch of pattern node u (after multiplicity
// expansion), giving the minimum neighborhood a matching data node must
// offer.
func OfPattern(p *pattern.Pattern, u, k int) Sketch {
	pe := p.Expand()
	if pe != p {
		// Node indexes may shift during expansion only for nodes after an
		// expanded one; recompute u as the same designated node when
		// possible, otherwise map by identity which holds for nodes before
		// any multiplicity > 1. Callers pass designated nodes in practice.
		switch u {
		case p.X:
			u = pe.X
		case p.Y:
			u = pe.Y
		}
	}
	return ofExpanded(pe, patternAdj(pe), u, k)
}

// patternAdj builds the undirected adjacency of an expanded pattern.
func patternAdj(pe *pattern.Pattern) [][]int {
	adj := make([][]int, pe.NumNodes())
	for _, e := range pe.Edges() {
		adj[e.From] = append(adj[e.From], e.To)
		if e.From != e.To {
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	return adj
}

// ofExpanded computes the k-hop sketch of node u of an already-expanded
// pattern with prebuilt adjacency.
func ofExpanded(pe *pattern.Pattern, adj [][]int, u, k int) Sketch {
	sk := make(Sketch, k)
	n := pe.NumNodes()
	visited := make([]bool, n)
	visited[u] = true
	frontier := []int{u}
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		dist := make(map[graph.Label]int)
		if hop > 0 {
			for l, c := range sk[hop-1] {
				dist[l] = c
			}
		}
		var next []int
		for _, w := range frontier {
			for _, t := range adj[w] {
				if !visited[t] {
					visited[t] = true
					next = append(next, t)
					dist[pe.Label(t)]++
				}
			}
		}
		sk[hop] = dist
		frontier = next
	}
	fillCumulative(sk)
	return sk
}

// Index lazily computes and caches data-node sketches for one graph. It is
// safe for concurrent use.
type Index struct {
	g *graph.Graph
	k int

	mu    sync.Mutex
	cache map[graph.NodeID]Sketch

	pmu    sync.Mutex
	pcache map[*pattern.Pattern][]Sketch
}

// NewIndex returns a sketch index of depth k over g.
func NewIndex(g *graph.Graph, k int) *Index {
	return &Index{
		g:      g,
		k:      k,
		cache:  make(map[graph.NodeID]Sketch),
		pcache: make(map[*pattern.Pattern][]Sketch),
	}
}

// PatternSketches returns the k-hop sketches of every node of p's
// multiplicity expansion, indexed by expanded node index, cached by pattern
// identity. The matcher calls this once per binding, so repeated rule
// evaluations over a long-lived index (one per serving fragment) pay the
// pattern-sketch construction exactly once.
func (ix *Index) PatternSketches(p *pattern.Pattern) []Sketch {
	ix.pmu.Lock()
	sks, ok := ix.pcache[p]
	ix.pmu.Unlock()
	if ok {
		return sks
	}
	pe := p.Expand()
	adj := patternAdj(pe)
	sks = make([]Sketch, pe.NumNodes())
	for u := range sks {
		sks[u] = ofExpanded(pe, adj, u, ix.k)
	}
	ix.pmu.Lock()
	ix.pcache[p] = sks
	ix.pmu.Unlock()
	return sks
}

// K reports the sketch depth.
func (ix *Index) K() int { return ix.k }

// Sketch returns the (cached) sketch of v.
func (ix *Index) Sketch(v graph.NodeID) Sketch {
	ix.mu.Lock()
	s, ok := ix.cache[v]
	ix.mu.Unlock()
	if ok {
		return s
	}
	s = Of(ix.g, v, ix.k)
	ix.mu.Lock()
	ix.cache[v] = s
	ix.mu.Unlock()
	return s
}

// CachedCount reports how many sketches have been materialized (for tests
// and instrumentation).
func (ix *Index) CachedCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.cache)
}
