// Package snapfile is the on-disk snapshot format for a gpard serving
// state: one versioned file holding the symbol table, the frozen graph's
// CSR arenas, the predicate and the mined rule set Σ, each in its own
// checksummed section. It is the durable half of ROADMAP item 5: a daemon
// restarts by reading one file instead of re-ingesting and re-freezing,
// and snapshot files ship between mining fleets and serve nodes.
//
// Layout (all integers little-endian):
//
//	header   32 bytes  magic "GPSN", version u32, generation u64,
//	                   section count u32, reserved
//	table    n × 64    per section: type [4]byte, reserved u32,
//	                   offset u64, length u64, SHA-256 [32]byte, pad
//	sections           each starting at a 64-byte-aligned offset,
//	                   zero-padded between
//	trailer  8 bytes   CRC-32 (IEEE) of everything before it, stored
//	                   as u32 crc, u32 ^crc
//
// Sections (in file order):
//
//	SYMB  symbol table: count u32, then per name len u32 + bytes, in
//	      label order — re-interning in order reproduces identical IDs
//	GRPH  graph arenas: numNodes u32, numEdges u32, labels n×u32,
//	      out-degrees n×u32, edges numE×(label u32, to u32) in the
//	      frozen CSR (Label, To) order
//	PRED  predicate: xLabel, edgeLabel, yLabel as u32 label IDs
//	RULE  the rule set Σ in the core.WriteRules text format
//
// The GRPH section is fixed-width and 64-byte aligned so the arenas can
// later be mmapped in place; today Decode materializes a fresh graph.
// The encoding is canonical: edges are written in the frozen (Label, To)
// adjacency order — which delta overlays also maintain — so encoding a
// graph, decoding it, and encoding again is byte-identical, including
// across a delta overlay vs its compacted equivalent.
//
// Write lands the file crash-safely: temp file in the same directory,
// content fsync, atomic rename, directory fsync — through the
// diskfault.FS abstraction so the fault-injection harness can script
// every failure mode in between. Read verifies magic, version, the
// whole-file CRC, and every section digest before decoding, and returns
// *FormatError for any violation, so callers can quarantine rather than
// serve a partial state.
package snapfile

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"gpar/internal/core"
	"gpar/internal/diskfault"
	"gpar/internal/graph"
)

const (
	magic      = "GPSN"
	version    = 1
	headerLen  = 32
	tableEntry = 64
	align      = 64
	trailerLen = 8

	secSymbols = "SYMB"
	secGraph   = "GRPH"
	secPred    = "PRED"
	secRules   = "RULE"
)

// maxSections bounds the section table a reader will accept; the format
// defines 4, and a few spare keep the door open for additive versions.
const maxSections = 16

// FormatError describes why a snapshot file was rejected. Every decode
// failure is one of these, so recovery can distinguish corruption (to
// quarantine) from I/O errors (to surface).
type FormatError struct {
	Path    string // file path, "" when decoding from memory
	Section string // section type, "" for envelope-level failures
	Msg     string
}

// Error implements error.
func (e *FormatError) Error() string {
	where := "snapfile"
	if e.Path != "" {
		where += " " + e.Path
	}
	if e.Section != "" {
		where += " section " + e.Section
	}
	return where + ": " + e.Msg
}

func formatErrf(section, format string, args ...any) error {
	return &FormatError{Section: section, Msg: fmt.Sprintf(format, args...)}
}

// Data is the logical content of a snapshot file.
type Data struct {
	// Generation is the serving generation the snapshot captured.
	Generation uint64
	// Graph is the data graph; Decode returns it frozen with a fresh
	// symbol table.
	Graph *graph.Graph
	// Pred is the association predicate q(x, y) the serving state is for.
	Pred core.Predicate
	// Rules is the resident rule set Σ (may be empty).
	Rules []*core.Rule
}

// Encode renders d into the canonical snapshot file bytes.
func Encode(d *Data) []byte {
	d.Graph.Freeze()
	syms := d.Graph.Symbols()

	sections := []struct {
		typ     string
		payload []byte
	}{
		{secSymbols, encodeSymbols(syms)},
		{secGraph, encodeGraph(d.Graph)},
		{secPred, encodePred(d.Pred)},
		{secRules, encodeRules(d.Rules)},
	}

	var buf bytes.Buffer
	buf.WriteString(magic)
	le := binary.LittleEndian
	var u32 [4]byte
	var u64 [8]byte
	le.PutUint32(u32[:], version)
	buf.Write(u32[:])
	le.PutUint64(u64[:], d.Generation)
	buf.Write(u64[:])
	le.PutUint32(u32[:], uint32(len(sections)))
	buf.Write(u32[:])
	buf.Write(make([]byte, headerLen-buf.Len())) // reserved

	// Lay the sections out after the table, each 64-byte aligned.
	off := uint64(headerLen + len(sections)*tableEntry)
	type placed struct {
		off, n uint64
		sum    [32]byte
	}
	placements := make([]placed, len(sections))
	for i, s := range sections {
		off = (off + align - 1) / align * align
		placements[i] = placed{off: off, n: uint64(len(s.payload)), sum: sha256.Sum256(s.payload)}
		off += uint64(len(s.payload))
	}
	for i, s := range sections {
		p := placements[i]
		var ent [tableEntry]byte
		copy(ent[:4], s.typ)
		le.PutUint64(ent[8:], p.off)
		le.PutUint64(ent[16:], p.n)
		copy(ent[24:56], p.sum[:])
		buf.Write(ent[:])
	}
	for i, s := range sections {
		if pad := int(placements[i].off) - buf.Len(); pad > 0 {
			buf.Write(make([]byte, pad))
		}
		buf.Write(s.payload)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	le.PutUint32(u32[:], crc)
	buf.Write(u32[:])
	le.PutUint32(u32[:], ^crc)
	buf.Write(u32[:])
	return buf.Bytes()
}

// Decode parses snapshot file bytes, verifying the envelope CRC and every
// section digest before touching any payload. The returned graph is frozen
// and owns a fresh symbol table; rules and predicate are bound to it.
func Decode(data []byte) (*Data, error) {
	if len(data) < headerLen+trailerLen {
		return nil, formatErrf("", "file truncated: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return nil, formatErrf("", "bad magic %q", data[:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[4:]); v != version {
		return nil, formatErrf("", "unsupported version %d (want %d)", v, version)
	}
	body := data[:len(data)-trailerLen]
	crc := le.Uint32(data[len(data)-8:])
	inv := le.Uint32(data[len(data)-4:])
	if crc != ^inv {
		return nil, formatErrf("", "trailer mismatch: crc %08x vs complement %08x", crc, inv)
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, formatErrf("", "file CRC mismatch: computed %08x, stored %08x", got, crc)
	}

	gen := le.Uint64(data[8:])
	nsect := int(le.Uint32(data[16:]))
	if nsect > maxSections {
		return nil, formatErrf("", "section count %d exceeds limit %d", nsect, maxSections)
	}
	if headerLen+nsect*tableEntry > len(body) {
		return nil, formatErrf("", "section table truncated")
	}
	payloads := make(map[string][]byte, nsect)
	for i := 0; i < nsect; i++ {
		ent := data[headerLen+i*tableEntry:]
		typ := string(bytes.TrimRight(ent[:4], "\x00"))
		off := le.Uint64(ent[8:])
		n := le.Uint64(ent[16:])
		if off > uint64(len(body)) || n > uint64(len(body))-off {
			return nil, formatErrf(typ, "section [%d, +%d) outside file of %d bytes", off, n, len(body))
		}
		payload := body[off : off+n]
		var want [32]byte
		copy(want[:], ent[24:56])
		if sum := sha256.Sum256(payload); sum != want {
			return nil, formatErrf(typ, "section digest mismatch")
		}
		payloads[typ] = payload
	}
	for _, typ := range []string{secSymbols, secGraph, secPred, secRules} {
		if _, ok := payloads[typ]; !ok {
			return nil, formatErrf(typ, "section missing")
		}
	}

	syms, err := decodeSymbols(payloads[secSymbols])
	if err != nil {
		return nil, err
	}
	g, err := decodeGraph(payloads[secGraph], syms)
	if err != nil {
		return nil, err
	}
	pred, err := decodePred(payloads[secPred], syms)
	if err != nil {
		return nil, err
	}
	rules, err := decodeRules(payloads[secRules], syms)
	if err != nil {
		return nil, err
	}
	return &Data{Generation: gen, Graph: g, Pred: pred, Rules: rules}, nil
}

func encodeSymbols(syms *graph.Symbols) []byte {
	names := syms.Names()
	var buf bytes.Buffer
	var u32 [4]byte
	le := binary.LittleEndian
	le.PutUint32(u32[:], uint32(len(names)))
	buf.Write(u32[:])
	for _, n := range names {
		le.PutUint32(u32[:], uint32(len(n)))
		buf.Write(u32[:])
		buf.WriteString(n)
	}
	return buf.Bytes()
}

func decodeSymbols(b []byte) (*graph.Symbols, error) {
	le := binary.LittleEndian
	if len(b) < 4 {
		return nil, formatErrf(secSymbols, "truncated count")
	}
	count := int(le.Uint32(b))
	b = b[4:]
	syms := graph.NewSymbols()
	for i := 0; i < count; i++ {
		if len(b) < 4 {
			return nil, formatErrf(secSymbols, "truncated name %d length", i)
		}
		n := int(le.Uint32(b))
		b = b[4:]
		if n > len(b) {
			return nil, formatErrf(secSymbols, "name %d of %d bytes overruns section", i, n)
		}
		// Interning in stored order reassigns the identical label IDs.
		if got, want := syms.Intern(string(b[:n])), graph.Label(i+1); got != want {
			return nil, formatErrf(secSymbols, "duplicate name %q", b[:n])
		}
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, formatErrf(secSymbols, "%d trailing bytes", len(b))
	}
	return syms, nil
}

func encodeGraph(g *graph.Graph) []byte {
	n := g.NumNodes()
	numE := g.NumEdges()
	out := make([]byte, 0, 8+4*n*2+8*numE)
	le := binary.LittleEndian
	out = le.AppendUint32(out, uint32(n))
	out = le.AppendUint32(out, uint32(numE))
	for v := 0; v < n; v++ {
		out = le.AppendUint32(out, uint32(g.Label(graph.NodeID(v))))
	}
	for v := 0; v < n; v++ {
		out = le.AppendUint32(out, uint32(len(g.Out(graph.NodeID(v)))))
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			out = le.AppendUint32(out, uint32(e.Label))
			out = le.AppendUint32(out, uint32(e.To))
		}
	}
	return out
}

func decodeGraph(b []byte, syms *graph.Symbols) (*graph.Graph, error) {
	le := binary.LittleEndian
	if len(b) < 8 {
		return nil, formatErrf(secGraph, "truncated header")
	}
	n := int(le.Uint32(b))
	numE := int(le.Uint32(b[4:]))
	if n < 0 || numE < 0 {
		return nil, formatErrf(secGraph, "negative counts")
	}
	want := 8 + 4*2*n + 8*numE
	if len(b) != want {
		return nil, formatErrf(secGraph, "section is %d bytes, want %d for %d nodes / %d edges", len(b), want, n, numE)
	}
	labels := b[8 : 8+4*n]
	degs := b[8+4*n : 8+8*n]
	edges := b[8+8*n:]
	g := graph.New(syms)
	maxLabel := uint32(syms.Len())
	for v := 0; v < n; v++ {
		l := le.Uint32(labels[4*v:])
		if l == 0 || l > maxLabel {
			return nil, formatErrf(secGraph, "node %d label %d outside symbol table of %d", v, l, maxLabel)
		}
		g.AddNodeL(graph.Label(l))
	}
	total := 0
	ei := 0
	for v := 0; v < n; v++ {
		deg := int(le.Uint32(degs[4*v:]))
		total += deg
		if total > numE {
			return nil, formatErrf(secGraph, "degrees sum past edge count %d", numE)
		}
		for k := 0; k < deg; k++ {
			l := le.Uint32(edges[8*ei:])
			to := le.Uint32(edges[8*ei+4:])
			ei++
			if l == 0 || l > maxLabel {
				return nil, formatErrf(secGraph, "edge label %d outside symbol table of %d", l, maxLabel)
			}
			if int(to) >= n {
				return nil, formatErrf(secGraph, "edge target %d out of range (graph has %d nodes)", to, n)
			}
			if !g.AddEdgeL(graph.NodeID(v), graph.NodeID(to), graph.Label(l)) {
				return nil, formatErrf(secGraph, "duplicate edge %d->%d label %d", v, to, l)
			}
		}
	}
	if total != numE {
		return nil, formatErrf(secGraph, "degrees sum to %d, header says %d edges", total, numE)
	}
	g.Freeze()
	return g, nil
}

func encodePred(p core.Predicate) []byte {
	le := binary.LittleEndian
	out := make([]byte, 0, 12)
	out = le.AppendUint32(out, uint32(p.XLabel))
	out = le.AppendUint32(out, uint32(p.EdgeLabel))
	out = le.AppendUint32(out, uint32(p.YLabel))
	return out
}

func decodePred(b []byte, syms *graph.Symbols) (core.Predicate, error) {
	if len(b) != 12 {
		return core.Predicate{}, formatErrf(secPred, "section is %d bytes, want 12", len(b))
	}
	le := binary.LittleEndian
	var p core.Predicate
	labels := [3]*graph.Label{&p.XLabel, &p.EdgeLabel, &p.YLabel}
	for i, dst := range labels {
		l := le.Uint32(b[4*i:])
		if l == 0 || l > uint32(syms.Len()) {
			return core.Predicate{}, formatErrf(secPred, "label %d outside symbol table of %d", l, syms.Len())
		}
		*dst = graph.Label(l)
	}
	return p, nil
}

func encodeRules(rules []*core.Rule) []byte {
	var buf bytes.Buffer
	// strings in a bytes.Buffer never fail; WriteRules only returns writer errors.
	_ = core.WriteRules(&buf, rules)
	return buf.Bytes()
}

func decodeRules(b []byte, syms *graph.Symbols) ([]*core.Rule, error) {
	rules, err := core.ReadRules(bytes.NewReader(b), syms)
	if err != nil {
		return nil, formatErrf(secRules, "%v", err)
	}
	return rules, nil
}

// Write encodes d and lands it at path crash-safely through fsys: the
// bytes go to a temp file in the same directory, the file content is
// fsynced, the temp file is atomically renamed over path, and the
// directory is fsynced so the rename itself is durable. A crash at any
// point leaves either the old file or the new one, never a mix.
func Write(fsys diskfault.FS, path string, d *Data) error {
	data := Encode(d)
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapfile: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("snapfile: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapfile: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapfile: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapfile: rename %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapfile: sync dir %s: %w", dir, err)
	}
	return nil
}

// Read loads and decodes the snapshot at path. Decode failures carry the
// path in their *FormatError so callers can quarantine the file.
func Read(fsys diskfault.FS, path string) (*Data, error) {
	raw, err := diskfault.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(raw)
	if err != nil {
		var fe *FormatError
		if errors.As(err, &fe) {
			fe.Path = path
		}
		return nil, err
	}
	return d, nil
}
