package snapfile

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpar/internal/core"
	"gpar/internal/diskfault"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture builds a small deterministic serving state: a restaurant graph,
// the visit predicate and two rules.
func fixture(t testing.TB) *Data {
	t.Helper()
	syms := graph.NewSymbols()
	g := graph.New(syms)
	cust := make([]graph.NodeID, 6)
	for i := range cust {
		cust[i] = g.AddNode("cust")
	}
	bistro := g.AddNode("restaurant")
	bar := g.AddNode("bar")
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 1}, {3, 2}, {4, 1}, {5, 4}} {
		g.AddEdge(cust[e[0]], cust[e[1]], "friend")
	}
	for _, i := range []int{0, 1, 2} {
		g.AddEdge(cust[i], bistro, "visit")
	}
	g.AddEdge(cust[5], bar, "visit")
	pred := core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("restaurant"),
	}
	q := pattern.New(syms)
	x := q.AddNode("cust")
	q.X = x
	f := q.AddNode("cust")
	r := q.AddNode("restaurant")
	q.AddEdge(x, f, "friend")
	q.AddEdge(f, r, "visit")
	rule := &core.Rule{Q: q, Pred: pred}
	if err := rule.Validate(); err != nil {
		t.Fatalf("fixture rule: %v", err)
	}
	g.Freeze()
	return &Data{Generation: 7, Graph: g, Pred: pred, Rules: []*core.Rule{rule}}
}

// equalData asserts two snapshots describe the same logical state by
// comparing their canonical encodings.
func equalData(t *testing.T, a, b *Data) {
	t.Helper()
	ea, eb := Encode(a), Encode(b)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("snapshots differ: %d vs %d bytes", len(ea), len(eb))
	}
}

// The encoding is pinned byte-for-byte: any format change must be
// deliberate (bump the version, regenerate with -update).
func TestGoldenBytes(t *testing.T) {
	got := Encode(fixture(t))
	golden := filepath.Join("testdata", "fixture.gpsnap.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("encoding drifted from golden file: %d vs %d bytes, first difference at offset %d", len(got), len(want), i)
	}
}

// Encode → Decode → Encode is byte-identical, and the decoded state's
// labels resolve to the same names.
func TestRoundTrip(t *testing.T) {
	d := fixture(t)
	enc := Encode(d)
	d2, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d2.Generation != d.Generation {
		t.Fatalf("generation %d, want %d", d2.Generation, d.Generation)
	}
	if got := Encode(d2); !bytes.Equal(got, enc) {
		t.Fatal("re-encode is not byte-identical")
	}
	syms, syms2 := d.Graph.Symbols(), d2.Graph.Symbols()
	if syms2.Len() != syms.Len() {
		t.Fatalf("symbol count %d, want %d", syms2.Len(), syms.Len())
	}
	if syms2.Name(d2.Pred.XLabel) != "cust" || syms2.Name(d2.Pred.YLabel) != "restaurant" {
		t.Fatalf("pred decoded as %q/%q", syms2.Name(d2.Pred.XLabel), syms2.Name(d2.Pred.YLabel))
	}
	if len(d2.Rules) != 1 || d2.Rules[0].Key() != d.Rules[0].Key() {
		t.Fatalf("rules did not survive: %v", d2.Rules)
	}
	if d2.Graph.NumNodes() != d.Graph.NumNodes() || d2.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatalf("graph %v, want %v", d2.Graph, d.Graph)
	}
}

// A delta overlay encodes identically to its compacted copy: the snapshot
// captures the logical graph, not the physical representation.
func TestOverlayEncodesCanonically(t *testing.T) {
	d := fixture(t)
	syms := d.Graph.Symbols()
	ops := []graph.DeltaOp{
		{Kind: graph.DeltaAddNode, Label: syms.Lookup("cust")},
		{Kind: graph.DeltaAddEdge, From: 8, To: 0, Label: syms.Lookup("friend")},
		{Kind: graph.DeltaDelEdge, From: 5, To: 4, Label: syms.Lookup("friend")},
		{Kind: graph.DeltaSetLabel, Node: 7, Label: syms.Lookup("restaurant")},
	}
	over, err := d.Graph.ApplyDelta(ops)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	do := &Data{Generation: 8, Graph: over, Pred: d.Pred, Rules: d.Rules}
	dc := &Data{Generation: 8, Graph: over.CompactCopy(), Pred: d.Pred, Rules: d.Rules}
	equalData(t, do, dc)
}

// Every truncation of a valid file fails cleanly with a *FormatError —
// nothing panics, nothing half-decodes.
func TestTruncationSweep(t *testing.T) {
	enc := Encode(fixture(t))
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(enc))
		} else {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("truncation to %d: error is %T, want *FormatError", n, err)
			}
		}
	}
}

// Every single-bit flip is caught by the envelope CRC or a section digest.
func TestBitFlipSweep(t *testing.T) {
	enc := Encode(fixture(t))
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 1
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded successfully", off)
		}
	}
}

// Write is temp + fsync + rename: a crash before the content fsync leaves
// the previous file intact, and a crashed write never leaves a readable
// half-written snapshot under the final name.
func TestWriteCrashSafety(t *testing.T) {
	m := diskfault.NewMemFS()
	if err := m.MkdirAll("data", 0o755); err != nil {
		t.Fatal(err)
	}
	d := fixture(t)
	if err := Write(m, "data/snap.gpsnap", d); err != nil {
		t.Fatalf("first write: %v", err)
	}
	first, err := Read(m, "data/snap.gpsnap")
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	equalData(t, d, first)

	// Second write dies mid-content: only the temp file is affected.
	d2 := fixture(t)
	d2.Generation = 99
	m.Inject(diskfault.Fault{Op: diskfault.OpWrite, Path: ".tmp", ShortWrite: 40, Kill: true})
	if err := Write(m, "data/snap.gpsnap", d2); err == nil {
		t.Fatal("crashed write reported success")
	}
	m.Reboot()
	after, err := Read(m, "data/snap.gpsnap")
	if err != nil {
		t.Fatalf("survivor unreadable after crashed rewrite: %v", err)
	}
	if after.Generation != d.Generation {
		t.Fatalf("generation %d after crash, want the old %d", after.Generation, d.Generation)
	}

	// A lying fsync followed by a crash after rename: the renamed file's
	// content is lost, and Read must reject the empty husk, not serve it.
	m.Inject(diskfault.Fault{Op: diskfault.OpSync, Path: ".tmp", IgnoreSync: true})
	if err := Write(m, "data/snap.gpsnap", d2); err != nil {
		t.Fatalf("write with lying fsync: %v", err)
	}
	m.Crash()
	m.Reboot()
	if _, err := Read(m, "data/snap.gpsnap"); err == nil {
		t.Fatal("torn snapshot decoded successfully")
	}
}

func TestReadMissing(t *testing.T) {
	m := diskfault.NewMemFS()
	if _, err := Read(m, "nope/snap.gpsnap"); !diskfault.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
}

// FuzzSnapshotDecode hammers the decoder with mutated inputs: it must
// never panic, and any input it accepts must re-encode to a canonical
// fixed point.
func FuzzSnapshotDecode(f *testing.F) {
	enc := Encode(fixture(f))
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte("GPSN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		canon := Encode(d)
		d2, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if !bytes.Equal(Encode(d2), canon) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// BenchmarkSnapshotLoad measures the restart-critical path: decoding a
// Pokec-scale snapshot file back into a frozen graph + rules.
func BenchmarkSnapshotLoad(b *testing.B) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(2000, 1))
	pred := gen.PokecPredicates(syms)[0]
	rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 8, VP: 3, EP: 3, Seed: 1})
	g.Freeze()
	enc := Encode(&Data{Generation: 1, Graph: g, Pred: pred, Rules: rules})
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
