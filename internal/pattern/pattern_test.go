package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/graph"
)

// buildQ1 constructs pattern Q1 of Fig. 1(a): customers x, x' who are
// friends, live in the same city, both like 3 French restaurants in that
// city, and x' visits French restaurant y in the city.
func buildQ1(syms *graph.Symbols) *Pattern {
	p := New(syms)
	x := p.AddNode("cust")
	x2 := p.AddNode("cust")
	city := p.AddNode("city")
	fr3 := p.AddNode("French restaurant")
	p.SetMult(fr3, 3)
	y := p.AddNode("French restaurant")
	p.X, p.Y = x, y
	p.AddEdge(x, x2, "friend")
	p.AddEdge(x2, x, "friend")
	p.AddEdge(x, city, "live_in")
	p.AddEdge(x2, city, "live_in")
	p.AddEdge(x, fr3, "like")
	p.AddEdge(x2, fr3, "like")
	p.AddEdge(fr3, city, "in")
	p.AddEdge(y, city, "in")
	p.AddEdge(x2, y, "visit")
	return p
}

func TestBasicAccessors(t *testing.T) {
	p := New(nil)
	a := p.AddNode("cust")
	b := p.AddNode("city")
	p.AddEdge(a, b, "live_in")
	if p.NumNodes() != 2 || p.NumEdges() != 1 || p.Size() != 3 {
		t.Fatalf("sizes wrong: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if p.LabelName(a) != "cust" {
		t.Errorf("LabelName = %q", p.LabelName(a))
	}
	live := p.Symbols().Lookup("live_in")
	if !p.HasEdge(a, b, live) {
		t.Error("HasEdge missed added edge")
	}
	// Duplicate edges are ignored.
	p.AddEdge(a, b, "live_in")
	if p.NumEdges() != 1 {
		t.Errorf("duplicate edge added: %d edges", p.NumEdges())
	}
}

func TestExpandMultiplicity(t *testing.T) {
	p := buildQ1(nil)
	e := p.Expand()
	// Q1 has 5 declared nodes, one with multiplicity 3 => 7 expanded nodes.
	if e.NumNodes() != 7 {
		t.Fatalf("expanded nodes = %d want 7", e.NumNodes())
	}
	// Each copy keeps the incident edges: like(x,fr), like(x',fr), in(fr,city)
	// for each of the 3 copies => edges grow from 9 to 9 - 3 + 3*3 = 15.
	if e.NumEdges() != 15 {
		t.Errorf("expanded edges = %d want 15", e.NumEdges())
	}
	if e.Mult(5) != 1 {
		t.Error("expanded pattern still has multiplicities")
	}
	// Designated nodes survive expansion.
	if e.LabelName(e.X) != "cust" || e.LabelName(e.Y) != "French restaurant" {
		t.Errorf("designated labels: x=%q y=%q", e.LabelName(e.X), e.LabelName(e.Y))
	}
	// A pattern with no multiplicities expands to itself.
	q := New(nil)
	q.AddNode("a")
	if q.Expand() != q {
		t.Error("Expand copied a pattern with no multiplicities")
	}
	// Designated nodes are never expanded even if annotated.
	r := New(nil)
	n := r.AddNode("a")
	r.X = n
	r.SetMult(n, 5)
	if r.Expand().NumNodes() != 1 {
		t.Error("designated node was expanded")
	}
}

func TestConnectedAndRadius(t *testing.T) {
	p := buildQ1(nil)
	if !p.Connected() {
		t.Error("Q1 should be connected")
	}
	if r := p.RadiusAt(p.X); r != 2 {
		t.Errorf("r(Q1, x) = %d want 2", r)
	}
	// Disconnected pattern.
	q := New(nil)
	q.AddNode("a")
	q.AddNode("b")
	if q.Connected() {
		t.Error("two isolated nodes reported connected")
	}
	if q.RadiusAt(0) != -1 {
		t.Error("radius of disconnected pattern should be -1")
	}
	// Empty pattern is connected by convention.
	if !New(nil).Connected() {
		t.Error("empty pattern should be connected")
	}
}

func TestDistancesFrom(t *testing.T) {
	p := New(nil)
	a := p.AddNode("a")
	b := p.AddNode("b")
	c := p.AddNode("c")
	p.AddEdge(a, b, "e")
	p.AddEdge(c, b, "e") // direction ignored for distance
	d := p.DistancesFrom(a)
	if d[a] != 0 || d[b] != 1 || d[c] != 2 {
		t.Errorf("distances = %v", d)
	}
	if d := p.DistancesFrom(-1); d[0] != -1 {
		t.Error("out-of-range source should yield all -1")
	}
}

func TestSubsumedBy(t *testing.T) {
	syms := graph.NewSymbols()
	q := buildQ1(syms)
	// A prefix of Q1's nodes/edges is subsumed by Q1.
	p := New(syms)
	x := p.AddNode("cust")
	x2 := p.AddNode("cust")
	p.AddEdge(x, x2, "friend")
	p.X = x
	if !p.SubsumedBy(q) {
		t.Error("prefix pattern not subsumed by Q1")
	}
	if q.SubsumedBy(p) {
		t.Error("Q1 subsumed by a smaller pattern")
	}
	// Different label at same index breaks subsumption.
	r := New(syms)
	r.AddNode("city")
	if r.SubsumedBy(q) {
		t.Error("label-mismatched pattern subsumed")
	}
}

func TestEmbedsInto(t *testing.T) {
	syms := graph.NewSymbols()
	q := buildQ1(syms)
	// A single friend edge embeds into Q1 regardless of node order.
	p := New(syms)
	a := p.AddNode("cust")
	b := p.AddNode("cust")
	p.AddEdge(b, a, "friend")
	if !p.EmbedsInto(q) {
		t.Error("friend edge should embed into Q1")
	}
	// An edge with a label absent from Q1 does not.
	r := New(syms)
	c := r.AddNode("cust")
	d := r.AddNode("cust")
	r.AddEdge(c, d, "married")
	if r.EmbedsInto(q) {
		t.Error("married edge embedded into Q1")
	}
	// Larger pattern cannot embed into smaller.
	if q.EmbedsInto(p) {
		t.Error("Q1 embedded into a 2-node pattern")
	}
}

func TestIsomorphicTo(t *testing.T) {
	syms := graph.NewSymbols()
	p := buildQ1(syms)
	// Same pattern built with nodes in a different order.
	q := New(syms)
	y := q.AddNode("French restaurant")
	city := q.AddNode("city")
	x2 := q.AddNode("cust")
	x := q.AddNode("cust")
	fr3 := q.AddNode("French restaurant")
	q.SetMult(fr3, 3)
	q.X, q.Y = x, y
	q.AddEdge(x, x2, "friend")
	q.AddEdge(x2, x, "friend")
	q.AddEdge(x, city, "live_in")
	q.AddEdge(x2, city, "live_in")
	q.AddEdge(x, fr3, "like")
	q.AddEdge(x2, fr3, "like")
	q.AddEdge(fr3, city, "in")
	q.AddEdge(y, city, "in")
	q.AddEdge(x2, y, "visit")

	if !p.IsomorphicTo(q) {
		t.Error("reordered Q1 not recognized as isomorphic")
	}
	if p.Signature() != q.Signature() {
		t.Error("isomorphic patterns have different signatures")
	}
	// Dropping one edge breaks isomorphism.
	r := q.Clone()
	r.edges = r.edges[:len(r.edges)-1]
	if p.IsomorphicTo(r) {
		t.Error("patterns with different edge counts reported isomorphic")
	}
	// Swapping the designated node breaks it: x must map to x.
	s := q.Clone()
	s.Y = NoNode
	if p.IsomorphicTo(s) {
		t.Error("pattern without y reported isomorphic to pattern with y")
	}
}

func TestIsomorphismRespectsDirection(t *testing.T) {
	syms := graph.NewSymbols()
	p := New(syms)
	a := p.AddNode("a")
	b := p.AddNode("b")
	p.AddEdge(a, b, "e")
	p.X = a

	q := New(syms)
	c := q.AddNode("a")
	d := q.AddNode("b")
	q.AddEdge(d, c, "e") // reversed
	q.X = c

	if p.IsomorphicTo(q) {
		t.Error("direction-reversed patterns reported isomorphic")
	}
}

func TestApplyExtensionForward(t *testing.T) {
	syms := graph.NewSymbols()
	p := New(syms)
	x := p.AddNode("cust")
	p.X = x
	ext := Extension{
		Src:       x,
		Outgoing:  true,
		EdgeLabel: syms.Intern("friend"),
		NewLabel:  syms.Intern("cust"),
		Close:     NoNode,
	}
	q := p.Apply(ext)
	if q == nil {
		t.Fatal("Apply returned nil")
	}
	if q.NumNodes() != 2 || q.NumEdges() != 1 {
		t.Fatalf("extended pattern: %d nodes %d edges", q.NumNodes(), q.NumEdges())
	}
	if p.NumNodes() != 1 {
		t.Error("Apply mutated the original pattern")
	}
	// Incoming direction.
	r := p.Apply(Extension{Src: x, Outgoing: false, EdgeLabel: syms.Intern("follows"), NewLabel: syms.Intern("cust"), Close: NoNode})
	if r.Edges()[0].To != x {
		t.Error("incoming extension should point at Src")
	}
}

func TestApplyExtensionAsY(t *testing.T) {
	syms := graph.NewSymbols()
	p := New(syms)
	x := p.AddNode("cust")
	p.X = x
	ext := Extension{
		Src:       x,
		Outgoing:  true,
		EdgeLabel: syms.Intern("visit"),
		NewLabel:  syms.Intern("restaurant"),
		Close:     NoNode,
		AsY:       true,
	}
	q := p.Apply(ext)
	if q.Y == NoNode {
		t.Fatal("AsY extension did not set Y")
	}
	if q.LabelName(q.Y) != "restaurant" {
		t.Errorf("y label = %q", q.LabelName(q.Y))
	}
	// AsY is rejected when the pattern already has y.
	if q.Apply(ext) != nil {
		t.Error("AsY applied twice")
	}
}

func TestApplyExtensionClose(t *testing.T) {
	syms := graph.NewSymbols()
	p := New(syms)
	a := p.AddNode("a")
	b := p.AddNode("b")
	p.AddEdge(a, b, "e")
	q := p.Apply(Extension{Src: b, Outgoing: true, EdgeLabel: syms.Intern("back"), Close: a})
	if q == nil {
		t.Fatal("closing extension failed")
	}
	if q.NumNodes() != 2 || q.NumEdges() != 2 {
		t.Fatalf("closed pattern: %d nodes %d edges", q.NumNodes(), q.NumEdges())
	}
	// Closing an edge that already exists yields nil.
	if q.Apply(Extension{Src: b, Outgoing: true, EdgeLabel: syms.Intern("back"), Close: a}) != nil {
		t.Error("duplicate closing edge applied")
	}
	// Out-of-range source yields nil.
	if p.Apply(Extension{Src: 99, Outgoing: true, EdgeLabel: 1, Close: NoNode, NewLabel: 1}) != nil {
		t.Error("out-of-range Src applied")
	}
}

func TestExtensionKeyUniqueness(t *testing.T) {
	e1 := Extension{Src: 0, Outgoing: true, EdgeLabel: 1, NewLabel: 2, Close: NoNode}
	e2 := Extension{Src: 0, Outgoing: false, EdgeLabel: 1, NewLabel: 2, Close: NoNode}
	e3 := Extension{Src: 0, Outgoing: true, EdgeLabel: 1, NewLabel: 2, Close: 1}
	keys := map[string]bool{e1.Key(): true, e2.Key(): true, e3.Key(): true}
	if len(keys) != 3 {
		t.Errorf("extension keys collide: %v", keys)
	}
}

// randomPattern builds a connected random pattern for property tests.
func randomPattern(rng *rand.Rand, syms *graph.Symbols, n int) *Pattern {
	p := New(syms)
	labels := []string{"a", "b", "c"}
	elabels := []string{"e", "f"}
	for i := 0; i < n; i++ {
		p.AddNode(labels[rng.Intn(len(labels))])
		if i > 0 {
			// Attach to a random earlier node to stay connected.
			prev := rng.Intn(i)
			if rng.Intn(2) == 0 {
				p.AddEdge(prev, i, elabels[rng.Intn(2)])
			} else {
				p.AddEdge(i, prev, elabels[rng.Intn(2)])
			}
		}
	}
	p.X = 0
	return p
}

// shufflePattern returns an isomorphic copy with node indexes permuted.
func shufflePattern(rng *rand.Rand, p *Pattern) *Pattern {
	n := p.NumNodes()
	perm := rng.Perm(n)
	q := New(p.Symbols())
	inv := make([]int, n)
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = newIdx
	}
	// Add nodes in permuted order.
	ordered := make([]graph.Label, n)
	for old := 0; old < n; old++ {
		ordered[inv[old]] = p.Label(old)
	}
	for _, l := range ordered {
		q.AddNodeL(l)
	}
	for _, e := range p.Edges() {
		q.AddEdgeL(inv[e.From], inv[e.To], e.Label)
	}
	if p.X != NoNode {
		q.X = inv[p.X]
	}
	if p.Y != NoNode {
		q.Y = inv[p.Y]
	}
	return q
}

func TestQuickIsomorphismUnderPermutation(t *testing.T) {
	// Property: a pattern is always isomorphic to any node-permuted copy,
	// and the signatures agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := graph.NewSymbols()
		p := randomPattern(rng, syms, 2+rng.Intn(5))
		q := shufflePattern(rng, p)
		return p.IsomorphicTo(q) && p.Signature() == q.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickExtensionGrowsByOne(t *testing.T) {
	// Property: a forward extension adds exactly one node and one edge, and
	// the original embeds into the extension.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := graph.NewSymbols()
		p := randomPattern(rng, syms, 1+rng.Intn(4))
		ext := Extension{
			Src:       rng.Intn(p.NumNodes()),
			Outgoing:  rng.Intn(2) == 0,
			EdgeLabel: syms.Intern("e"),
			NewLabel:  syms.Intern("a"),
			Close:     NoNode,
		}
		q := p.Apply(ext)
		if q == nil {
			return false
		}
		return q.NumNodes() == p.NumNodes()+1 &&
			q.NumEdges() == p.NumEdges()+1 &&
			p.EmbedsInto(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRadiusMonotoneUnderExtension(t *testing.T) {
	// Property: extending with a forward edge never decreases the radius at
	// x, and increases it by at most 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := graph.NewSymbols()
		p := randomPattern(rng, syms, 1+rng.Intn(5))
		r0 := p.RadiusAt(p.X)
		q := p.Apply(Extension{
			Src:       rng.Intn(p.NumNodes()),
			Outgoing:  true,
			EdgeLabel: syms.Intern("e"),
			NewLabel:  syms.Intern("b"),
			Close:     NoNode,
		})
		r1 := q.RadiusAt(q.X)
		return r1 >= r0 && r1 <= r0+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	p := buildQ1(nil)
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"cust", "friend", "(x)", "(y)", "^3"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
