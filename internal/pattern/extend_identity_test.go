package pattern

import (
	"math/rand"
	"testing"

	"gpar/internal/graph"
)

// randExt draws extensions from a small enough space that collisions are
// common, so the ⟺ in the identity property is exercised in both
// directions.
func randExt(rng *rand.Rand) Extension {
	e := Extension{
		Src:       rng.Intn(4),
		Outgoing:  rng.Intn(2) == 0,
		EdgeLabel: graph.Label(rng.Intn(3)),
	}
	if rng.Intn(2) == 0 {
		e.Close = rng.Intn(3)
	} else {
		e.Close = NoNode
		e.NewLabel = graph.Label(rng.Intn(3))
		e.AsY = rng.Intn(4) == 0
	}
	return e
}

// TestExtensionIdentityMatchesKey is the interned-identity property test:
// the comparable struct (the mining loop's identity) collides exactly when
// the legacy Key() string collides, and Compare is a total order consistent
// with that identity.
func TestExtensionIdentityMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		a, b := randExt(rng), randExt(rng)
		structEq := a == b
		keyEq := a.Key() == b.Key()
		if structEq != keyEq {
			t.Fatalf("identity mismatch: %+v vs %+v: struct=%v key=%v (%q, %q)",
				a, b, structEq, keyEq, a.Key(), b.Key())
		}
		cab, cba := a.Compare(b), b.Compare(a)
		if (cab == 0) != structEq {
			t.Fatalf("Compare==0 disagrees with equality: %+v vs %+v -> %d", a, b, cab)
		}
		if cab != -cba && !(cab == 0 && cba == 0) {
			t.Fatalf("Compare not antisymmetric: %+v vs %+v -> %d, %d", a, b, cab, cba)
		}
	}
	// Transitivity spot check on a sorted sample.
	exts := make([]Extension, 300)
	for i := range exts {
		exts[i] = randExt(rng)
	}
	for i := 0; i < len(exts); i++ {
		for j := i + 1; j < len(exts); j++ {
			for k := j + 1; k < len(exts); k++ {
				a, b, c := exts[i], exts[j], exts[k]
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("Compare not transitive on %+v, %+v, %+v", a, b, c)
				}
			}
		}
	}
}

// TestApplyIntoMatchesApply is the scratch-reuse property test: applying a
// stream of random extensions into one recycled destination must render
// identically to Apply's fresh allocations, including the nil (inapplicable)
// cases, regardless of what the scratch held before.
func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	syms := graph.NewSymbols()
	base := New(syms)
	x := base.AddNodeL(1)
	a := base.AddNodeL(2)
	base.AddEdgeL(x, a, 1)
	base.X = x
	scratch := New(syms)
	for i := 0; i < 5000; i++ {
		ext := randExt(rng)
		fresh := base.Apply(ext)
		reused := base.ApplyInto(scratch, ext)
		switch {
		case (fresh == nil) != (reused == nil):
			t.Fatalf("ext %+v: Apply nil=%v but ApplyInto nil=%v", ext, fresh == nil, reused == nil)
		case fresh != nil && fresh.String() != reused.String():
			t.Fatalf("ext %+v: Apply %s != ApplyInto %s", ext, fresh, reused)
		}
		// Occasionally grow the base so scratch shrinks and grows too.
		if i%1000 == 999 {
			if grown := base.Apply(ext); grown != nil {
				base = grown
			}
		}
	}
}
