package pattern

import (
	"strconv"

	"gpar/internal/graph"
)

// Extension describes one way to grow a pattern by a single new edge, the
// unit of levelwise expansion in algorithm DMine (Section 4.2): "it expands
// Q by including at least one new edge that is at hop r from vx".
//
// The new edge touches existing node Src. If Close == NoNode the other
// endpoint is a fresh node labeled NewLabel; otherwise the edge closes onto
// the existing node Close.
//
// The struct is comparable and its field equality coincides exactly with
// Key() string equality, so hot paths use Extension values directly as map
// keys and order them with Compare; Key() survives only at boundaries that
// need a printable form.
type Extension struct {
	Src       int         // existing pattern node
	Outgoing  bool        // true: Src -> target; false: target -> Src
	EdgeLabel graph.Label // label of the new edge
	NewLabel  graph.Label // label of the fresh node (when Close == NoNode)
	Close     int         // existing node to close onto, or NoNode
	AsY       bool        // designate the fresh node as y (requires p.Y == NoNode)
}

// Key returns a dedup key unique per extension shape.
func (e Extension) Key() string {
	buf := make([]byte, 0, 32)
	buf = strconv.AppendInt(buf, int64(e.Src), 10)
	buf = append(buf, '|')
	if e.Outgoing {
		buf = append(buf, 'o')
	} else {
		buf = append(buf, 'i')
	}
	buf = strconv.AppendInt(buf, int64(e.EdgeLabel), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(e.NewLabel), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(e.Close), 10)
	if e.AsY {
		buf = append(buf, 'y')
	}
	return string(buf)
}

// Compare totally orders extensions by (Src, direction, EdgeLabel,
// NewLabel, Close, AsY), incoming before outgoing and plain before AsY.
// Compare(f) == 0 iff the structs are equal iff the Key strings are equal.
// The order is not the lexicographic order of Key() — it compares numeric
// fields numerically — but any fixed total order serves the deterministic
// processing the miner needs, without building a string per comparison.
func (e Extension) Compare(f Extension) int {
	if e.Src != f.Src {
		return cmpInt(e.Src, f.Src)
	}
	if e.Outgoing != f.Outgoing {
		if !e.Outgoing {
			return -1
		}
		return 1
	}
	if e.EdgeLabel != f.EdgeLabel {
		return cmpInt(int(e.EdgeLabel), int(f.EdgeLabel))
	}
	if e.NewLabel != f.NewLabel {
		return cmpInt(int(e.NewLabel), int(f.NewLabel))
	}
	if e.Close != f.Close {
		return cmpInt(e.Close, f.Close)
	}
	if e.AsY != f.AsY {
		if !e.AsY {
			return -1
		}
		return 1
	}
	return 0
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Apply returns a copy of p grown by the extension. It returns nil when the
// extension is inapplicable (closing edge already present, AsY on a pattern
// that already has y, or indexes out of range).
func (p *Pattern) Apply(ext Extension) *Pattern {
	return p.ApplyInto(New(p.syms), ext)
}

// ApplyInto is Apply building into dst (which must not alias p), reusing
// dst's storage. It returns dst, or nil when the extension is inapplicable
// (dst's contents are then unspecified). Workers in the mining loop apply
// every discovered extension to the same parent; recycling the destination
// makes candidate materialization allocation-free.
func (p *Pattern) ApplyInto(dst *Pattern, ext Extension) *Pattern {
	if ext.Src < 0 || ext.Src >= p.NumNodes() {
		return nil
	}
	out := p.CloneInto(dst)
	var target int
	if ext.Close != NoNode {
		if ext.Close < 0 || ext.Close >= p.NumNodes() || ext.AsY {
			return nil
		}
		target = ext.Close
		from, to := ext.Src, target
		if !ext.Outgoing {
			from, to = target, ext.Src
		}
		if out.HasEdge(from, to, ext.EdgeLabel) {
			return nil
		}
		out.AddEdgeL(from, to, ext.EdgeLabel)
		return out
	}
	if ext.AsY && p.Y != NoNode {
		return nil
	}
	target = out.AddNodeL(ext.NewLabel)
	if ext.AsY {
		out.Y = target
	}
	if ext.Outgoing {
		out.AddEdgeL(ext.Src, target, ext.EdgeLabel)
	} else {
		out.AddEdgeL(target, ext.Src, ext.EdgeLabel)
	}
	return out
}
