// Package pattern implements graph pattern queries Q = (Vp, Ep, f, C) from
// Section 2.1 of "Association Rules with Graph Patterns" (PVLDB 2015):
// small labeled graphs with two designated nodes x and y, optional node
// multiplicities C(u) = k (the "3 French restaurants" succinct notation),
// connectivity and radius computations, subsumption, isomorphism and the
// edge extensions used by the mining algorithm.
package pattern

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gpar/internal/graph"
)

// NoNode marks an absent designated node (a pattern whose y has not been
// introduced yet during mining).
const NoNode = -1

// Edge is one directed pattern edge between node indexes.
type Edge struct {
	From, To int
	Label    graph.Label
}

// Pattern is a graph pattern query. Node indexes are dense 0..NumNodes()-1.
// X is the designated node x (required for GPAR use); Y is the designated
// node y or NoNode.
type Pattern struct {
	syms   *graph.Symbols
	labels []graph.Label
	mult   []int // C(u); values < 2 mean a single copy
	edges  []Edge
	X, Y   int
}

// New returns an empty pattern over the symbol table.
func New(syms *graph.Symbols) *Pattern {
	if syms == nil {
		syms = graph.NewSymbols()
	}
	return &Pattern{syms: syms, X: NoNode, Y: NoNode}
}

// Symbols returns the shared symbol table.
func (p *Pattern) Symbols() *graph.Symbols { return p.syms }

// AddNode appends a node labeled name and returns its index.
func (p *Pattern) AddNode(name string) int {
	return p.AddNodeL(p.syms.Intern(name))
}

// AddNodeL appends a node with an interned label.
func (p *Pattern) AddNodeL(l graph.Label) int {
	p.labels = append(p.labels, l)
	p.mult = append(p.mult, 1)
	return len(p.labels) - 1
}

// AddEdge appends the edge from -> to labeled name.
func (p *Pattern) AddEdge(from, to int, name string) {
	p.AddEdgeL(from, to, p.syms.Intern(name))
}

// AddEdgeL appends an edge with an interned label. Duplicate edges are
// ignored.
func (p *Pattern) AddEdgeL(from, to int, l graph.Label) {
	if p.HasEdge(from, to, l) {
		return
	}
	p.edges = append(p.edges, Edge{From: from, To: to, Label: l})
}

// HasEdge reports whether the exact edge exists.
func (p *Pattern) HasEdge(from, to int, l graph.Label) bool {
	for _, e := range p.edges {
		if e.From == from && e.To == to && e.Label == l {
			return true
		}
	}
	return false
}

// SetMult sets C(u) = k, the succinct "k copies" annotation.
func (p *Pattern) SetMult(u, k int) { p.mult[u] = k }

// Mult returns C(u) (at least 1).
func (p *Pattern) Mult(u int) int {
	if p.mult[u] < 1 {
		return 1
	}
	return p.mult[u]
}

// NumNodes reports |Vp| before multiplicity expansion.
func (p *Pattern) NumNodes() int { return len(p.labels) }

// NumEdges reports |Ep| before multiplicity expansion.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Size reports |Vp| + |Ep|.
func (p *Pattern) Size() int { return len(p.labels) + len(p.edges) }

// Label returns the search-condition label of node u.
func (p *Pattern) Label(u int) graph.Label { return p.labels[u] }

// LabelName returns the label string of node u.
func (p *Pattern) LabelName(u int) string { return p.syms.Name(p.labels[u]) }

// Edges returns the edge list. Read-only.
func (p *Pattern) Edges() []Edge { return p.edges }

// Clone returns a deep copy sharing the symbol table.
func (p *Pattern) Clone() *Pattern {
	return p.CloneInto(New(p.syms))
}

// CloneInto copies p into dst, reusing dst's storage, and returns dst. The
// mining loop materializes thousands of short-lived candidate patterns per
// round; building them into recycled per-worker scratch is what keeps that
// path off the allocator. dst must not alias p.
func (p *Pattern) CloneInto(dst *Pattern) *Pattern {
	dst.syms = p.syms
	dst.labels = append(dst.labels[:0], p.labels...)
	dst.mult = append(dst.mult[:0], p.mult...)
	dst.edges = append(dst.edges[:0], p.edges...)
	dst.X, dst.Y = p.X, p.Y
	return dst
}

// Expand materializes multiplicities: a node u with C(u) = k is replaced by
// k nodes with the same label and the same incident edges in the common
// neighborhood (Section 2.1). Designated nodes are never expanded. The
// result has all multiplicities equal to 1.
func (p *Pattern) Expand() *Pattern {
	needs := false
	for u := range p.labels {
		if p.Mult(u) > 1 && u != p.X && u != p.Y {
			needs = true
		}
	}
	if !needs {
		return p
	}
	out := New(p.syms)
	out.X, out.Y = p.X, p.Y
	// copies[u] lists the expanded indexes of original node u.
	copies := make([][]int, len(p.labels))
	for u, l := range p.labels {
		k := p.Mult(u)
		if u == p.X || u == p.Y {
			k = 1
		}
		for i := 0; i < k; i++ {
			copies[u] = append(copies[u], out.AddNodeL(l))
		}
	}
	for _, e := range p.edges {
		for _, f := range copies[e.From] {
			for _, t := range copies[e.To] {
				out.AddEdgeL(f, t, e.Label)
			}
		}
	}
	// Designated indexes may have moved.
	if p.X != NoNode {
		out.X = copies[p.X][0]
	}
	if p.Y != NoNode {
		out.Y = copies[p.Y][0]
	}
	return out
}

// DistancesFrom returns undirected hop distances from u; unreachable nodes
// get -1. Patterns are tiny, so instead of materializing an adjacency list
// it relaxes the edge list to a fixpoint (at most |Vp| passes): one
// allocation — the result — on a path the miner hits once per candidate.
func (p *Pattern) DistancesFrom(u int) []int {
	return p.DistancesInto(nil, u)
}

// DistancesInto is DistancesFrom writing into dst (grown only when its
// capacity is too small), for callers that probe radii per candidate and
// recycle the buffer.
func (p *Pattern) DistancesInto(dst []int, u int) []int {
	n := len(p.labels)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dist := dst[:n]
	for i := range dist {
		dist[i] = -1
	}
	if u < 0 || u >= len(p.labels) {
		return dist
	}
	dist[u] = 0
	for changed := true; changed; {
		changed = false
		for _, e := range p.edges {
			df, dt := dist[e.From], dist[e.To]
			if df >= 0 && (dt < 0 || dt > df+1) {
				dist[e.To] = df + 1
				changed = true
			}
			if dt >= 0 && (df < 0 || df > dt+1) {
				dist[e.From] = dt + 1
				changed = true
			}
		}
	}
	return dist
}

// Connected reports whether the pattern is connected when treated as an
// undirected graph (Section 2.1, notation (2)). The empty pattern is
// considered connected.
func (p *Pattern) Connected() bool {
	if len(p.labels) == 0 {
		return true
	}
	dist := p.DistancesFrom(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// RadiusAt returns r(Q, x): the longest undirected distance from x to any
// node (Section 2.1, notation (1)). It returns -1 if some node is
// unreachable from x.
func (p *Pattern) RadiusAt(x int) int {
	dist := p.DistancesFrom(x)
	r := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if d > r {
			r = d
		}
	}
	return r
}

// SubsumedBy reports Q' ⊑ Q with identity node correspondence: p's nodes
// are a prefix-or-subset of q's by index, with equal labels, equal (or
// restricted) multiplicities and p's edges all present in q. This is the
// literal reading of Section 2.1 where (V'p, E'p) is a subgraph of
// (Vp, Ep). For structural (up to renaming) subsumption use EmbedsInto.
func (p *Pattern) SubsumedBy(q *Pattern) bool {
	if p.NumNodes() > q.NumNodes() || p.NumEdges() > q.NumEdges() {
		return false
	}
	for u := range p.labels {
		if p.labels[u] != q.labels[u] || p.Mult(u) != q.Mult(u) {
			return false
		}
	}
	for _, e := range p.edges {
		if !q.HasEdge(e.From, e.To, e.Label) {
			return false
		}
	}
	return true
}

// EmbedsInto reports whether there is an injective mapping of p's nodes
// into q's nodes preserving labels and all of p's edges. Designated nodes
// must map to designated nodes when both sides declare them.
func (p *Pattern) EmbedsInto(q *Pattern) bool {
	if p.NumNodes() > q.NumNodes() || p.NumEdges() > q.NumEdges() {
		return false
	}
	pe, qe := p.Expand(), q.Expand()
	m := make([]int, pe.NumNodes())
	for i := range m {
		m[i] = NoNode
	}
	used := make([]bool, qe.NumNodes())
	if pe.X != NoNode && qe.X != NoNode {
		if pe.labels[pe.X] != qe.labels[qe.X] {
			return false
		}
		m[pe.X] = qe.X
		used[qe.X] = true
	}
	if pe.Y != NoNode && qe.Y != NoNode {
		if pe.labels[pe.Y] != qe.labels[qe.Y] {
			return false
		}
		if m[pe.Y] == NoNode && !used[qe.Y] {
			m[pe.Y] = qe.Y
			used[qe.Y] = true
		}
	}
	return embed(pe, qe, m, used, 0)
}

func embed(p, q *Pattern, m []int, used []bool, next int) bool {
	for next < len(m) && m[next] != NoNode {
		next++
	}
	if next == len(m) {
		// All nodes mapped; verify edges.
		for _, e := range p.edges {
			if !q.HasEdge(m[e.From], m[e.To], e.Label) {
				return false
			}
		}
		return true
	}
	for cand := 0; cand < q.NumNodes(); cand++ {
		if used[cand] || q.labels[cand] != p.labels[next] {
			continue
		}
		m[next] = cand
		used[cand] = true
		ok := true
		// Incremental edge check against already-mapped nodes.
		for _, e := range p.edges {
			if m[e.From] != NoNode && m[e.To] != NoNode {
				if !q.HasEdge(m[e.From], m[e.To], e.Label) {
					ok = false
					break
				}
			}
		}
		if ok && embed(p, q, m, used, next+1) {
			return true
		}
		m[next] = NoNode
		used[cand] = false
	}
	return false
}

// IsomorphicTo reports whether p and q are the same pattern up to node
// renaming, with designated nodes corresponding (x to x, y to y). Two GPARs
// whose patterns are isomorphic this way are "automorphic" in the
// terminology of algorithm DMine (Section 4.2) and denote the same rule.
func (p *Pattern) IsomorphicTo(q *Pattern) bool {
	pe, qe := p.Expand(), q.Expand()
	if pe.NumNodes() != qe.NumNodes() || pe.NumEdges() != qe.NumEdges() {
		return false
	}
	if (pe.X == NoNode) != (qe.X == NoNode) || (pe.Y == NoNode) != (qe.Y == NoNode) {
		return false
	}
	if !equalLabelMultiset(pe, qe) {
		return false
	}
	m := make([]int, pe.NumNodes())
	for i := range m {
		m[i] = NoNode
	}
	used := make([]bool, qe.NumNodes())
	if pe.X != NoNode {
		if pe.labels[pe.X] != qe.labels[qe.X] {
			return false
		}
		m[pe.X] = qe.X
		used[qe.X] = true
	}
	if pe.Y != NoNode && m[pe.Y] == NoNode {
		if used[qe.Y] || pe.labels[pe.Y] != qe.labels[qe.Y] {
			return false
		}
		m[pe.Y] = qe.Y
		used[qe.Y] = true
	}
	// Degrees are invariant across the search; computing them once here
	// (instead of at every recursion level) keeps the iso check — run per
	// candidate group per mining round — to two allocations.
	return isoBacktrack(pe, qe, degrees(pe), degrees(qe), m, used, 0)
}

func isoBacktrack(p, q *Pattern, deg, qdeg []int, m []int, used []bool, next int) bool {
	for next < len(m) && m[next] != NoNode {
		next++
	}
	if next == len(m) {
		// Bijection complete; both directions must have identical edges.
		if len(p.edges) != len(q.edges) {
			return false
		}
		for _, e := range p.edges {
			if !q.HasEdge(m[e.From], m[e.To], e.Label) {
				return false
			}
		}
		return true
	}
	for cand := 0; cand < q.NumNodes(); cand++ {
		if used[cand] || q.labels[cand] != p.labels[next] || deg[next] != qdeg[cand] {
			continue
		}
		m[next] = cand
		used[cand] = true
		ok := true
		for _, e := range p.edges {
			if m[e.From] != NoNode && m[e.To] != NoNode && !q.HasEdge(m[e.From], m[e.To], e.Label) {
				ok = false
				break
			}
		}
		if ok && isoBacktrack(p, q, deg, qdeg, m, used, next+1) {
			return true
		}
		m[next] = NoNode
		used[cand] = false
	}
	return false
}

func degrees(p *Pattern) []int {
	d := make([]int, p.NumNodes())
	for _, e := range p.edges {
		d[e.From]++
		d[e.To]++
	}
	return d
}

// equalLabelMultiset reports whether two patterns use exactly the same node
// labels with the same multiplicities (a cheap isomorphism precondition).
// Patterns are tiny, so quadratic matching without allocation beats a map.
func equalLabelMultiset(p, q *Pattern) bool {
	n := len(p.labels)
	if n != len(q.labels) {
		return false
	}
	var usedArr [32]bool
	used := usedArr[:]
	if n > len(used) {
		used = make([]bool, n)
	}
	for _, l := range p.labels {
		found := false
		for j, m := range q.labels {
			if !used[j] && m == l {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Signature returns a cheap isomorphism-invariant string: two isomorphic
// patterns always share a signature, two patterns with different signatures
// are never isomorphic. Used to bucket candidates before the bisimulation /
// isomorphism tests of algorithm DMine.
func (p *Pattern) Signature() string {
	pe := p.Expand()
	buf := make([]byte, 0, 16+12*pe.NumNodes()+16*pe.NumEdges())
	num := func(prefix byte, vals ...int) {
		buf = append(buf, prefix)
		for i, v := range vals {
			if i > 0 {
				buf = append(buf, '.')
			}
			buf = strconv.AppendInt(buf, int64(v), 10)
		}
		buf = append(buf, ' ')
	}
	num('n', pe.NumNodes())
	num('e', pe.NumEdges())
	if pe.X != NoNode {
		num('x', int(pe.labels[pe.X]))
	}
	if pe.Y != NoNode {
		num('y', int(pe.labels[pe.Y]))
	}
	// Node descriptors: (label, outDeg, inDeg), sorted.
	type nd struct{ l, od, id int }
	nds := make([]nd, pe.NumNodes())
	for u := range nds {
		nds[u].l = int(pe.labels[u])
	}
	for _, e := range pe.edges {
		nds[e.From].od++
		nds[e.To].id++
	}
	sort.Slice(nds, func(i, j int) bool {
		if nds[i].l != nds[j].l {
			return nds[i].l < nds[j].l
		}
		if nds[i].od != nds[j].od {
			return nds[i].od < nds[j].od
		}
		return nds[i].id < nds[j].id
	})
	for _, n := range nds {
		num('v', n.l, n.od, n.id)
	}
	// Edge descriptors: (fromLabel, edgeLabel, toLabel), sorted.
	type ed struct{ f, l, t int }
	eds := make([]ed, 0, len(pe.edges))
	for _, e := range pe.edges {
		eds = append(eds, ed{int(pe.labels[e.From]), int(e.Label), int(pe.labels[e.To])})
	}
	sort.Slice(eds, func(i, j int) bool {
		if eds[i].f != eds[j].f {
			return eds[i].f < eds[j].f
		}
		if eds[i].l != eds[j].l {
			return eds[i].l < eds[j].l
		}
		return eds[i].t < eds[j].t
	})
	for _, e := range eds {
		num('E', e.f, e.l, e.t)
	}
	return string(buf)
}

// String renders the pattern for logs and the case-study output.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("Pattern{")
	for u := range p.labels {
		if u > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%s", u, p.LabelName(u))
		if p.Mult(u) > 1 {
			fmt.Fprintf(&b, "^%d", p.Mult(u))
		}
		if u == p.X {
			b.WriteString("(x)")
		}
		if u == p.Y {
			b.WriteString("(y)")
		}
	}
	b.WriteString("; ")
	for i, e := range p.edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d-%s->%d", e.From, p.syms.Name(e.Label), e.To)
	}
	b.WriteString("}")
	return b.String()
}
