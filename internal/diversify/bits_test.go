package diversify

import (
	"math/rand"
	"testing"

	"gpar/internal/graph"
)

// TestDiffBitsMatchesDiff is the bitset-vs-sorted-slice differential test:
// on random sets, DiffBits must return exactly the float64 Diff returns —
// the intersection and union counts are the same integers, so even the
// division must be bit-identical.
func TestDiffBitsMatchesDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(universe, density int) []graph.NodeID {
		var s []graph.NodeID
		for v := 0; v < universe; v++ {
			if rng.Intn(density) == 0 {
				s = append(s, graph.NodeID(v))
			}
		}
		return s
	}
	cases := 0
	for i := 0; i < 2000; i++ {
		universe := 1 + rng.Intn(300)
		a := mk(universe, 1+rng.Intn(4))
		b := mk(universe, 1+rng.Intn(4))
		slice := Diff(a, b)
		bits := DiffBits(MakeBits(a), MakeBits(b))
		if slice != bits {
			t.Fatalf("Diff=%v DiffBits=%v for a=%v b=%v", slice, bits, a, b)
		}
		cases++
	}
	if cases == 0 {
		t.Fatal("no cases exercised")
	}
	// Edge cases: both empty, one empty, identical.
	var empty []graph.NodeID
	one := []graph.NodeID{4}
	if got := DiffBits(MakeBits(empty), MakeBits(empty)); got != 0 {
		t.Errorf("two empty sets: DiffBits=%v want 0", got)
	}
	if got := DiffBits(MakeBits(one), MakeBits(empty)); got != 1 {
		t.Errorf("one empty set: DiffBits=%v want 1", got)
	}
	if got := DiffBits(MakeBits(one), MakeBits(one)); got != 0 {
		t.Errorf("identical sets: DiffBits=%v want 0", got)
	}
}

// TestMakeBitsDedup: MakeBits counts distinct members even on unsorted
// input with duplicates.
func TestMakeBitsDedup(t *testing.T) {
	b := MakeBits([]graph.NodeID{9, 2, 9, 2, 70})
	if !b.Valid() || b.Ones() != 3 {
		t.Fatalf("MakeBits ones=%d valid=%v want 3, true", b.Ones(), b.Valid())
	}
	var zero Bits
	if zero.Valid() {
		t.Error("zero Bits must be invalid (absent)")
	}
	// The sparse cutoff: a tiny set with a huge maximum ID must decline
	// the bitset form so diff falls back to the sorted-slice merge.
	if sparse := MakeBits([]graph.NodeID{5, 1 << 20}); sparse.Valid() {
		t.Error("MakeBits built a bitset for a pathologically sparse set")
	}
}

// TestEntryDiffFallback: entries without bitsets fall back to the slice
// implementation, mixed pairs too.
func TestEntryDiffFallback(t *testing.T) {
	a := Entry{ID: 1, Set: []graph.NodeID{1, 2, 3}}
	b := Entry{ID: 2, Set: []graph.NodeID{3, 4, 5}}
	want := Diff(a.Set, b.Set)
	if got := diff(&a, &b); got != want {
		t.Errorf("slice fallback diff=%v want %v", got, want)
	}
	a.B = MakeBits(a.Set)
	if got := diff(&a, &b); got != want {
		t.Errorf("mixed pair diff=%v want %v", got, want)
	}
	b.B = MakeBits(b.Set)
	if got := diff(&a, &b); got != want {
		t.Errorf("bitset diff=%v want %v", got, want)
	}
}
