package diversify

import (
	"math/rand"
	"reflect"
	"testing"

	"gpar/internal/graph"
)

// TestQueueRecycleParity drives two queues — one recycling its per-round
// structures (the default), one allocating fresh every round (NoRecycle) —
// through many randomized incDiv rounds and requires identical state after
// each: same pairs, same MinF, same flattened Lk. This pins that buffer
// reuse in Update/dedupe/memo never changes results.
func TestQueueRecycleParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Params{K: 4, Lambda: 0.5, N: 3}
	recycled := NewQueue(p)
	fresh := NewQueue(p)
	fresh.NoRecycle = true

	var sigma []Entry
	nextID := uint32(1)
	for round := 0; round < 25; round++ {
		// A round delivers 0..6 new rules; sigma accumulates them all.
		// Occasionally repeat an existing ID inside deltaE to exercise dedupe.
		var deltaE []Entry
		for i, n := 0, rng.Intn(7); i < n; i++ {
			set := make([]graph.NodeID, 0, 4)
			for v := 0; v < 8; v++ {
				if rng.Intn(2) == 0 {
					set = append(set, graph.NodeID(v))
				}
			}
			e := Entry{ID: nextID, Conf: rng.Float64(), Set: set}
			nextID++
			deltaE = append(deltaE, e)
			sigma = append(sigma, e)
			if rng.Intn(4) == 0 && len(sigma) > 1 {
				deltaE = append(deltaE, sigma[rng.Intn(len(sigma))])
			}
		}
		recycled.Update(deltaE, sigma)
		fresh.Update(deltaE, sigma)

		if recycled.Len() != fresh.Len() {
			t.Fatalf("round %d: Len %d (recycled) vs %d (fresh)", round, recycled.Len(), fresh.Len())
		}
		if recycled.MinF() != fresh.MinF() {
			t.Fatalf("round %d: MinF %v (recycled) vs %v (fresh)", round, recycled.MinF(), fresh.MinF())
		}
		if !reflect.DeepEqual(recycled.pairs, fresh.pairs) {
			t.Fatalf("round %d: pairs diverge:\nrecycled %+v\nfresh    %+v", round, recycled.pairs, fresh.pairs)
		}
		if !reflect.DeepEqual(recycled.Entries(), fresh.Entries()) {
			t.Fatalf("round %d: Entries diverge", round)
		}
	}
}

// TestQueueUpdateDoesNotRetainInputs pins the aliasing contract: the caller
// may overwrite the deltaE/sigma slices it passed once Update returns.
func TestQueueUpdateDoesNotRetainInputs(t *testing.T) {
	p := Params{K: 2, Lambda: 0.5, N: 5}
	q := NewQueue(p)
	r5 := Entry{ID: 5, Conf: 0.8, Set: ids(1, 2, 3, 4)}
	r6 := Entry{ID: 6, Conf: 0.4, Set: ids(4, 6)}
	deltaE := []Entry{r5, r6}
	sigma := []Entry{r5, r6}
	q.Update(deltaE, sigma)
	// Clobber the inputs; the queue must have copied what it kept.
	for i := range deltaE {
		deltaE[i] = Entry{ID: 999, Conf: -1}
	}
	for i := range sigma {
		sigma[i] = Entry{ID: 999, Conf: -1}
	}
	got := q.Entries()
	if len(got) != 2 || got[0].ID != 5 || got[1].ID != 6 {
		t.Fatalf("queue retained caller storage: Entries = %+v", got)
	}
}
