package diversify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpar/internal/graph"
)

func ids(vs ...graph.NodeID) []graph.NodeID { return vs }

func TestDiff(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want float64
	}{
		{ids(1, 2, 3), ids(1, 2, 3), 0},
		{ids(1, 2), ids(3, 4), 1},
		{ids(1, 2, 3), ids(3, 4, 5), 1 - 1.0/5.0},
		{nil, nil, 0},
		{ids(1), nil, 1},
	}
	for _, c := range cases {
		if got := Diff(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Diff(%v,%v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestExample8Objective pins Example 8: with λ=0.5, supp(q)=5, supp(q̄)=1,
// the top-2 set {R7, R8} has F = 0.5*0.8/5 + 1*1 = 1.08.
func TestExample8Objective(t *testing.T) {
	p := Params{K: 2, Lambda: 0.5, N: 5 * 1}
	r1 := Entry{ID: 1, Conf: 0.6, Set: ids(1, 2, 3)}
	r7 := Entry{ID: 7, Conf: 0.6, Set: ids(1, 2, 3)}
	r8 := Entry{ID: 8, Conf: 0.2, Set: ids(6)}

	if got := Diff(r1.Set, r7.Set); got != 0 {
		t.Errorf("diff(R1,R7) = %v want 0", got)
	}
	if got := Diff(r7.Set, r8.Set); got != 1 {
		t.Errorf("diff(R7,R8) = %v want 1", got)
	}
	f := F([]Entry{r7, r8}, p)
	if math.Abs(f-1.08) > 1e-9 {
		t.Errorf("F({R7,R8}) = %v want 1.08", f)
	}
	// F' of the same pair, per Example 9's round-2 computation.
	fp := FPrime(r7, r8, p)
	if math.Abs(fp-1.08) > 1e-9 {
		t.Errorf("F'(R7,R8) = %v want 1.08", fp)
	}
	// Greedy on {R1, R7, R8} must pick a diversified pair, value 1.08.
	got := Greedy([]Entry{r1, r7, r8}, p)
	if len(got) != 2 {
		t.Fatalf("Greedy returned %d entries", len(got))
	}
	if math.Abs(F(got, p)-1.08) > 1e-9 {
		t.Errorf("Greedy F = %v want 1.08", F(got, p))
	}
}

// TestExample9RoundOne pins Example 9's round 1: F'(R5,R6) = 0.92.
func TestExample9RoundOne(t *testing.T) {
	p := Params{K: 2, Lambda: 0.5, N: 5}
	r5 := Entry{ID: 5, Conf: 0.8, Set: ids(1, 2, 3, 4)}
	r6 := Entry{ID: 6, Conf: 0.4, Set: ids(4, 6)}
	// diff(R5,R6) = 1 - 1/5 = 0.8.
	if got := Diff(r5.Set, r6.Set); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("diff(R5,R6) = %v want 0.8", got)
	}
	if got := FPrime(r5, r6, p); math.Abs(got-0.92) > 1e-9 {
		t.Errorf("F'(R5,R6) = %v want 0.92", got)
	}
}

func TestGreedySmallInputs(t *testing.T) {
	p := Params{K: 4, Lambda: 0.5, N: 1}
	if Greedy(nil, p) != nil {
		t.Error("Greedy(nil) should be nil")
	}
	one := []Entry{{ID: 1, Conf: 1}}
	if got := Greedy(one, p); len(got) != 1 {
		t.Errorf("Greedy with fewer entries than k should return all, got %d", len(got))
	}
	if Greedy(one, Params{K: 0}) != nil {
		t.Error("k=0 should select nothing")
	}
}

func TestGreedyOddK(t *testing.T) {
	p := Params{K: 3, Lambda: 0.5, N: 1}
	var es []Entry
	for i := 0; i < 6; i++ {
		es = append(es, Entry{
			ID:   uint32(i),
			Conf: float64(i),
			Set:  ids(graph.NodeID(i)),
		})
	}
	got := Greedy(es, p)
	if len(got) != 3 {
		t.Errorf("odd k: got %d entries want 3", len(got))
	}
}

// TestGreedyApproximation: greedy achieves at least half the brute-force
// optimum (the paper's ratio-2 guarantee), on random instances.
func TestGreedyApproximation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(4)
		var es []Entry
		for i := 0; i < n; i++ {
			set := make([]graph.NodeID, 0)
			for v := 0; v < 8; v++ {
				if rng.Intn(2) == 0 {
					set = append(set, graph.NodeID(v))
				}
			}
			es = append(es, Entry{
				ID:   uint32(i),
				Conf: rng.Float64() * 3,
				Set:  set,
			})
		}
		p := Params{K: 4, Lambda: 0.5, N: 2}
		g := F(Greedy(es, p), p)
		opt := F(BruteForce(es, p), p)
		return g >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQueueFillAndReplace(t *testing.T) {
	p := Params{K: 2, Lambda: 0.5, N: 5}
	q := NewQueue(p)
	r5 := Entry{ID: 5, Conf: 0.8, Set: ids(1, 2, 3, 4)}
	r6 := Entry{ID: 6, Conf: 0.4, Set: ids(4, 6)}
	// Round 1 of Example 9: queue fills with (R5,R6), F' = 0.92.
	q.Update([]Entry{r5, r6}, []Entry{r5, r6})
	if q.Len() != 1 {
		t.Fatalf("queue pairs = %d want 1", q.Len())
	}
	if math.Abs(q.MinF()-0.92) > 1e-9 {
		t.Errorf("MinF = %v want 0.92", q.MinF())
	}
	// Round 2: R7, R8 arrive and displace (R5,R6), F' = 1.08.
	r7 := Entry{ID: 7, Conf: 0.6, Set: ids(1, 2, 3)}
	r8 := Entry{ID: 8, Conf: 0.2, Set: ids(6)}
	q.Update([]Entry{r7, r8}, []Entry{r5, r6, r7, r8})
	if math.Abs(q.MinF()-1.08) > 1e-9 {
		t.Errorf("after round 2 MinF = %v want 1.08", q.MinF())
	}
	got := q.Entries()
	if len(got) != 2 {
		t.Fatalf("Lk size = %d want 2", len(got))
	}
	names := map[uint32]bool{got[0].ID: true, got[1].ID: true}
	if !names[7] || !names[8] {
		t.Errorf("Lk = %v want {R7,R8}", names)
	}
	if !q.Contains(7) || q.Contains(5) {
		t.Error("Contains bookkeeping wrong after replacement")
	}
}

func TestQueueMinFStates(t *testing.T) {
	q := NewQueue(Params{K: 4, Lambda: 0.5, N: 1})
	if !math.IsInf(q.MinF(), -1) {
		t.Error("empty below-capacity queue should report -Inf (anything improves)")
	}
}

func TestQueueOddK(t *testing.T) {
	p := Params{K: 3, Lambda: 0.5, N: 1}
	q := NewQueue(p)
	var es []Entry
	for i := 0; i < 5; i++ {
		es = append(es, Entry{ID: uint32(i), Conf: float64(i), Set: ids(graph.NodeID(i))})
	}
	q.Update(es, es)
	if got := q.Entries(); len(got) != 3 {
		t.Errorf("odd-k queue Entries = %d want 3", len(got))
	}
}

// TestQueueMatchesGreedyOnSingleRound: when all rules arrive in one round,
// the incremental queue and the from-scratch greedy agree on F value.
func TestQueueMatchesGreedyOnSingleRound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		var es []Entry
		for i := 0; i < n; i++ {
			set := make([]graph.NodeID, 0)
			for v := 0; v < 6; v++ {
				if rng.Intn(2) == 0 {
					set = append(set, graph.NodeID(v))
				}
			}
			es = append(es, Entry{ID: uint32(i), Conf: rng.Float64(), Set: set})
		}
		p := Params{K: 4, Lambda: 0.5, N: 1}
		q := NewQueue(p)
		q.Update(es, es)
		return math.Abs(F(q.Entries(), p)-F(Greedy(es, p), p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiffMetric: diff is symmetric, bounded and zero on identity.
func TestQuickDiffMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []graph.NodeID {
			var s []graph.NodeID
			for v := 0; v < 10; v++ {
				if rng.Intn(2) == 0 {
					s = append(s, graph.NodeID(v))
				}
			}
			return s
		}
		a, b := mk(), mk()
		d1, d2 := Diff(a, b), Diff(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1 && Diff(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
