package diversify_test

import (
	"fmt"

	"gpar/internal/diversify"
	"gpar/internal/graph"
)

// ExampleF reproduces Example 8 of the paper: for λ = 0.5 and
// N = supp(q)·supp(q̄) = 5, the diversified top-2 set {R7, R8} scores
// F = 0.5·0.8/5 + 1·1 = 1.08.
func ExampleF() {
	r7 := diversify.Entry{ID: 7, Conf: 0.6, Set: []graph.NodeID{1, 2, 3}}
	r8 := diversify.Entry{ID: 8, Conf: 0.2, Set: []graph.NodeID{6}}
	p := diversify.Params{K: 2, Lambda: 0.5, N: 5}
	fmt.Printf("F({R7,R8}) = %.2f\n", diversify.F([]diversify.Entry{r7, r8}, p))
	// Output: F({R7,R8}) = 1.08
}

// ExampleDiff shows the Jaccard distance over match sets.
func ExampleDiff() {
	a := []graph.NodeID{1, 2, 3}
	b := []graph.NodeID{3, 4, 5}
	fmt.Printf("%.2f\n", diversify.Diff(a, b))
	// Output: 0.80
}
