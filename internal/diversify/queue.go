package diversify

import (
	"math"
	"sort"
)

// Queue is the incremental top-k structure of procedure incDiv (Section
// 4.2): a max priority queue of at most ⌈k/2⌉ pairwise-disjoint GPAR pairs,
// each scored by F'. Instead of recomputing the diversification from
// scratch each round (the DMineNo behaviour), the queue is improved
// incrementally as new rules arrive.
type Queue struct {
	p     Params
	pairs []qpair
	used  map[uint32]bool
	// memo caches pairwise diffs within one Update: bestFreePair re-scans
	// the same pool O(k) times and bestPartner once per new rule, so each
	// distinct pair's distance is computed once per round, not per scan.
	// The table is recycled (cleared, capacity kept) across rounds.
	memo map[uint64]float64

	// NoRecycle disables the per-round recycling of the Update working list,
	// the dedupe set and the memo table: every round then allocates fresh,
	// as before the pooling. Results are identical either way (pinned by
	// TestQueueRecycleParity); mining wires Options.DisableArenas here so
	// one switch covers every recycled structure of a run.
	NoRecycle bool

	entries []Entry         // recycled Update working list (deltaE ++ sigma)
	seen    map[uint32]bool // recycled dedupe set
}

type qpair struct {
	a, b Entry
	f    float64
}

// NewQueue returns an empty incDiv queue with the given objective
// parameters.
func NewQueue(p Params) *Queue {
	return &Queue{p: p, used: make(map[uint32]bool)}
}

// capPairs is ⌈k/2⌉.
func (q *Queue) capPairs() int { return (q.p.K + 1) / 2 }

// MinF returns F'm, the minimum F' over the queue's pairs (+Inf when the
// queue is empty, -Inf when it is not yet full — any pair improves it).
func (q *Queue) MinF() float64 {
	if len(q.pairs) < q.capPairs() {
		return math.Inf(-1)
	}
	minF := math.Inf(1)
	for _, pr := range q.pairs {
		if pr.f < minF {
			minF = pr.f
		}
	}
	return minF
}

// Contains reports whether the entry with the given ID sits in some pair.
func (q *Queue) Contains(id uint32) bool { return q.used[id] }

// Len reports the number of pairs currently held.
func (q *Queue) Len() int { return len(q.pairs) }

// pairDiff returns the memoized Jaccard distance of two entries. Entries
// are identified by ID, so the memo is only valid within one Update (sets
// are immutable per rule, but IDs are per-run).
func (q *Queue) pairDiff(a, b *Entry) float64 {
	lo, hi := a.ID, b.ID
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(lo)<<32 | uint64(hi)
	if d, ok := q.memo[key]; ok {
		return d
	}
	d := diff(a, b)
	q.memo[key] = d
	return d
}

func (q *Queue) fprime(a, b *Entry) float64 {
	return fprime(a, b, q.p, q.pairDiff(a, b))
}

// Update incorporates the round's newly discovered rules deltaE, choosing
// partners from sigma (all rules known so far, including deltaE). It
// implements the two phases of incDiv: fill the queue with the best disjoint
// pairs while below capacity, then replace minimum pairs whenever a new pair
// (R, R') with R ∈ ∆E scores higher.
func (q *Queue) Update(deltaE, sigma []Entry) {
	var all []Entry
	if q.NoRecycle {
		all = append(append([]Entry(nil), deltaE...), sigma...)
	} else {
		all = append(append(q.entries[:0], deltaE...), sigma...)
		q.entries = all
	}
	pool := q.dedupe(all)
	if q.NoRecycle || q.memo == nil {
		q.memo = make(map[uint64]float64)
	} else {
		clear(q.memo)
	}

	// Phase 1: fill while below capacity.
	for len(q.pairs) < q.capPairs() {
		a, b, f := q.bestFreePair(pool)
		if a < 0 {
			break
		}
		q.insert(pool[a], pool[b], f)
	}
	if len(q.pairs) < q.capPairs() {
		return
	}
	// Phase 2: try to improve the minimum pair with each new rule.
	for i := range deltaE {
		e := &deltaE[i]
		if q.used[e.ID] {
			continue
		}
		partner, f := q.bestPartner(e, pool)
		if partner < 0 {
			continue
		}
		minIx := q.minPairIx()
		if f > q.pairs[minIx].f {
			old := q.pairs[minIx]
			delete(q.used, old.a.ID)
			delete(q.used, old.b.ID)
			q.pairs[minIx] = qpair{a: *e, b: pool[partner], f: f}
			q.used[e.ID] = true
			q.used[pool[partner].ID] = true
		}
	}
}

// bestFreePair scans pool for the unused pair maximizing F'. Ties are
// broken by pool order for determinism.
func (q *Queue) bestFreePair(pool []Entry) (ai, bi int, f float64) {
	ai, bi, f = -1, -1, math.Inf(-1)
	for i := range pool {
		if q.used[pool[i].ID] {
			continue
		}
		for j := i + 1; j < len(pool); j++ {
			if q.used[pool[j].ID] {
				continue
			}
			if g := q.fprime(&pool[i], &pool[j]); g > f {
				f, ai, bi = g, i, j
			}
		}
	}
	return ai, bi, f
}

// bestPartner finds the unused pool entry (≠ e) maximizing F'(e, ·).
func (q *Queue) bestPartner(e *Entry, pool []Entry) (int, float64) {
	best, bf := -1, math.Inf(-1)
	for i := range pool {
		if pool[i].ID == e.ID || q.used[pool[i].ID] {
			continue
		}
		if g := q.fprime(e, &pool[i]); g > bf {
			bf, best = g, i
		}
	}
	return best, bf
}

func (q *Queue) minPairIx() int {
	minIx := 0
	for i := 1; i < len(q.pairs); i++ {
		if q.pairs[i].f < q.pairs[minIx].f {
			minIx = i
		}
	}
	return minIx
}

func (q *Queue) insert(a, b Entry, f float64) {
	q.pairs = append(q.pairs, qpair{a: a, b: b, f: f})
	q.used[a.ID] = true
	q.used[b.ID] = true
}

// Entries flattens the queue's pairs into Lk. For odd k (the queue holds
// k+1 rules) the lowest-contribution rule is dropped, as in Greedy.
func (q *Queue) Entries() []Entry {
	var out []Entry
	for _, pr := range q.pairs {
		out = append(out, pr.a, pr.b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) > q.p.K {
		picked := make([]int, len(out))
		for i := range picked {
			picked[i] = i
		}
		worst, worstIx := math.Inf(1), -1
		for i := range out {
			if c := contribution(out, picked, i, q.p); c < worst {
				worst, worstIx = c, i
			}
		}
		out = append(out[:worstIx], out[worstIx+1:]...)
	}
	return out
}

// dedupe keeps the first occurrence of each ID, preserving order. In
// recycling mode it compacts es in place (the queue owns es) and reuses the
// seen set; pairs only ever store Entry copies, so nothing outlives the
// round.
func (q *Queue) dedupe(es []Entry) []Entry {
	var seen map[uint32]bool
	var out []Entry
	if q.NoRecycle {
		seen = make(map[uint32]bool, len(es))
		out = es[:0:0]
	} else {
		if q.seen == nil {
			q.seen = make(map[uint32]bool, len(es))
		} else {
			clear(q.seen)
		}
		seen = q.seen
		out = es[:0]
	}
	for _, e := range es {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	return out
}
