package diversify

import (
	"math/rand"
	"testing"

	"gpar/internal/graph"
)

// benchRounds builds a fixed multi-round incDiv workload: each round
// delivers a batch of new entries with random (seeded) support sets over a
// dense center universe, mimicking DMine's per-round Queue.Update calls.
func benchRounds() [][]Entry {
	rng := rand.New(rand.NewSource(11))
	const (
		rounds   = 6
		perRound = 40
		universe = 4000
		supp     = 200
	)
	out := make([][]Entry, rounds)
	id := 0
	for r := range out {
		batch := make([]Entry, perRound)
		for i := range batch {
			set := make([]graph.NodeID, 0, supp)
			seen := make(map[graph.NodeID]bool, supp)
			for len(set) < supp {
				v := graph.NodeID(rng.Intn(universe))
				if !seen[v] {
					seen[v] = true
					set = append(set, v)
				}
			}
			id++
			e := Entry{ID: uint32(id), Conf: rng.Float64(), Set: SortSet(set)}
			e.B = MakeBits(e.Set)
			batch[i] = e
		}
		out[r] = batch
	}
	return out
}

// BenchmarkDiversifyUpdate times the incremental top-k maintenance across
// the pre-built rounds, including the pairwise diff computations that
// dominate bestFreePair/bestPartner.
func BenchmarkDiversifyUpdate(b *testing.B) {
	rounds := benchRounds()
	p := Params{K: 10, Lambda: 0.5, N: 1e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewQueue(p)
		var sigma []Entry
		for _, deltaE := range rounds {
			sigma = append(sigma, deltaE...)
			q.Update(deltaE, sigma)
		}
		if q.Len() == 0 {
			b.Fatal("empty queue")
		}
	}
}
