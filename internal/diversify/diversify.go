// Package diversify implements the diversification machinery of Section 4
// of "Association Rules with Graph Patterns" (PVLDB 2015): the Jaccard
// difference diff(R1,R2) over match sets, the bi-criteria objective F(Lk),
// the pairwise objective F'(R,R'), the greedy max-sum dispersion selection
// with approximation ratio 2, an exact brute-force oracle for tests, and the
// incremental top-k pair queue of procedure incDiv.
package diversify

import (
	"math"
	"sort"

	"gpar/internal/graph"
)

// Entry is one candidate rule as the diversifier sees it: an identity, a
// confidence, and the match set PR(x,G) it covers (sorted node IDs).
//
// IDs are compact per-run interned rule identifiers (DMine's keySeq); the
// printable "R%05d" form exists only at API boundaries. B optionally
// carries the match set in bitset form — when both sides of a comparison
// have one, the pairwise distance is computed by popcount instead of a
// slice merge, with bit-identical results.
type Entry struct {
	ID   uint32
	Conf float64
	Set  []graph.NodeID // must be sorted ascending
	B    Bits           // optional bitset form of Set
}

// SortSet sorts a match set in place so it can be used in an Entry.
func SortSet(s []graph.NodeID) []graph.NodeID {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// Diff returns the Jaccard distance 1 - |a∩b| / |a∪b| between two sorted
// match sets. Two empty sets have distance 0 (identical).
func Diff(a, b []graph.NodeID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}

// Params fixes the objective's constants: k, the user balance λ, and the
// normalizer N = supp(q,G) · supp(q̄,G) (a constant for a fixed predicate).
type Params struct {
	K      int
	Lambda float64
	N      float64
}

// norm guards against the degenerate N = 0 or k = 1 cases.
func (p Params) norm() (confW, divW float64) {
	n := p.N
	if n <= 0 {
		n = 1
	}
	km1 := float64(p.K - 1)
	if km1 <= 0 {
		km1 = 1
	}
	return (1 - p.Lambda) / n, 2 * p.Lambda / km1
}

// F computes the max-sum diversification objective of Section 4.1:
//
//	F(Lk) = (1-λ) Σ conf(Ri)/N + (2λ/(k-1)) Σ_{i<j} diff(Ri, Rj).
func F(entries []Entry, p Params) float64 {
	confW, divW := p.norm()
	var sum float64
	for i := range entries {
		sum += confW * entries[i].Conf
		for j := i + 1; j < len(entries); j++ {
			sum += divW * diff(&entries[i], &entries[j])
		}
	}
	return sum
}

// FPrime computes the revised pairwise objective of procedure incDiv:
//
//	F'(R,R') = (1-λ)/(N(k-1)) (conf(R)+conf(R')) + (2λ/(k-1)) diff(R,R').
func FPrime(a, b Entry, p Params) float64 {
	return fprime(&a, &b, p, diff(&a, &b))
}

// fprime is FPrime with the diff already in hand (the queue memoizes it).
func fprime(a, b *Entry, p Params, d float64) float64 {
	confW, divW := p.norm()
	km1 := float64(p.K - 1)
	if km1 <= 0 {
		km1 = 1
	}
	return confW/km1*(a.Conf+b.Conf) + divW*d
}

// Greedy selects up to k entries by the greedy max-sum dispersion strategy
// (Gollapudi & Sharma): repeatedly pick the unused pair maximizing F',
// ⌈k/2⌉ times, and return the union. For odd k the lowest-contribution
// element of the final selection is dropped. The result preserves no
// particular order. Approximation ratio 2 with respect to F.
func Greedy(entries []Entry, p Params) []Entry {
	if p.K <= 0 || len(entries) == 0 {
		return nil
	}
	if len(entries) <= p.K {
		return append([]Entry(nil), entries...)
	}
	used := make([]bool, len(entries))
	var picked []int
	pairs := (p.K + 1) / 2
	for pi := 0; pi < pairs; pi++ {
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := range entries {
			if used[i] {
				continue
			}
			for j := i + 1; j < len(entries); j++ {
				if used[j] {
					continue
				}
				if f := FPrime(entries[i], entries[j], p); f > best {
					best, bi, bj = f, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		used[bi], used[bj] = true, true
		picked = append(picked, bi, bj)
	}
	if len(picked) > p.K {
		// Drop the element whose removal reduces F the least.
		worst, worstIx := math.Inf(1), -1
		for pi, i := range picked {
			contrib := contribution(entries, picked, i, p)
			if contrib < worst {
				worst, worstIx = contrib, pi
			}
		}
		picked = append(picked[:worstIx], picked[worstIx+1:]...)
	}
	out := make([]Entry, 0, len(picked))
	for _, i := range picked {
		out = append(out, entries[i])
	}
	return out
}

// contribution measures entry i's marginal share of F within the selection.
func contribution(entries []Entry, picked []int, i int, p Params) float64 {
	confW, divW := p.norm()
	c := confW * entries[i].Conf
	for _, j := range picked {
		if j != i {
			c += divW * diff(&entries[i], &entries[j])
		}
	}
	return c
}

// BruteForce returns the exact F-maximizing subset of size ≤ k. It is
// exponential and intended as a test oracle on small inputs.
func BruteForce(entries []Entry, p Params) []Entry {
	n := len(entries)
	if p.K <= 0 || n == 0 {
		return nil
	}
	k := p.K
	if k > n {
		k = n
	}
	var best []Entry
	bestF := math.Inf(-1)
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sel := make([]Entry, k)
			for i, ix := range idx {
				sel[i] = entries[ix]
			}
			if f := F(sel, p); f > bestF {
				bestF = f
				best = sel
			}
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}
