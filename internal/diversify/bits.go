package diversify

import (
	mathbits "math/bits"

	"gpar/internal/graph"
)

// Bits is a support set PR(x,G) in popcount form: one bit per node ID over
// the dense ID space of one graph. DMine builds it once per retained rule
// (the ID space is shared by every rule of a run), after which the Jaccard
// distance of two rules is a word-wise AND plus popcounts instead of a
// sorted-slice merge — the FDB lesson of sharing support-set structure
// rather than rematerializing ID slices per comparison.
//
// The zero Bits is "absent": diff falls back to the sorted-slice Diff, so
// callers that never build bitsets keep working unchanged.
type Bits struct {
	words []uint64
	ones  int
	ok    bool
}

// MakeBits builds the bitset form of a set of node IDs. The slice does not
// need to be sorted or deduplicated; ones counts distinct members.
//
// The bitset spans the dense ID space up to the set's maximum, so a sparse
// set with a huge maximum ID would cost more to scan word-by-word than the
// sorted-slice merge it replaces. MakeBits therefore returns the absent
// zero Bits (diff falls back to the slice path) when the word count would
// exceed ~8× the set size — the popcount form only exists where it wins.
func MakeBits(set []graph.NodeID) Bits {
	b := Bits{ok: true}
	max := graph.NodeID(-1)
	for _, v := range set {
		if v > max {
			max = v
		}
	}
	if words := int(max)/64 + 1; max >= 0 && words > 8*len(set)+8 {
		return Bits{}
	}
	if max >= 0 {
		b.words = make([]uint64, int(max)/64+1)
	}
	for _, v := range set {
		w, bit := int(v)/64, uint(v)%64
		if b.words[w]&(1<<bit) == 0 {
			b.words[w] |= 1 << bit
			b.ones++
		}
	}
	return b
}

// Valid reports whether the bitset was built (as opposed to the zero value).
func (b Bits) Valid() bool { return b.ok }

// Ones returns the cardinality of the set.
func (b Bits) Ones() int { return b.ones }

// DiffBits is Diff on bitset form: 1 - |a∩b| / |a∪b|, with two empty sets
// at distance 0. It returns exactly the same float64 as Diff on the
// corresponding sorted slices (the intersection and union sizes are the
// same integers, so the division is bit-identical).
func DiffBits(a, b Bits) float64 {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	inter := 0
	for i := 0; i < n; i++ {
		inter += mathbits.OnesCount64(a.words[i] & b.words[i])
	}
	union := a.ones + b.ones - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// diff picks the fastest available representation: popcount when both
// entries carry bitsets, sorted-slice merge otherwise.
func diff(a, b *Entry) float64 {
	if a.B.ok && b.B.ok {
		return DiffBits(a.B, b.B)
	}
	return Diff(a.Set, b.Set)
}
