package bench

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// dmineOpts is the common DMine configuration of Exp-1 (k = 10, d = 2),
// with a per-round candidate cap that plays the role of the paper's "up to
// 300 patterns to be verified".
func dmineOpts(sigma, n, d int) mine.Options {
	return mine.Options{
		K:                     10,
		Sigma:                 sigma,
		D:                     d,
		Lambda:                0.5,
		N:                     n,
		MaxEdges:              3,
		MaxCandidatesPerRound: 60,
	}.WithOptimizations()
}

// dmineSweep runs DMine and DMineNo over a parameter sweep.
func dmineSweep(id, title, xAxis string, xs []string,
	run func(i int, optimized bool) *mine.Result) Figure {
	fig := Figure{ID: id, Title: title, XAxis: xAxis,
		Serie: []Series{{Name: "DMine"}, {Name: "DMineno"}}}
	for i, x := range xs {
		p := timeDMine(func() *mine.Result { return run(i, true) })
		p.X = x
		fig.Serie[0].Points = append(fig.Serie[0].Points, p)
		p = timeDMine(func() *mine.Result { return run(i, false) })
		p.X = x
		fig.Serie[1].Points = append(fig.Serie[1].Points, p)
	}
	return fig
}

func runDMine(g *graph.Graph, pred core.Predicate, opts mine.Options, optimized bool) *mine.Result {
	if optimized {
		return mine.DMine(g, pred, opts)
	}
	return mine.DMineNo(g, pred, opts)
}

// Fig5a: DMine varying n on the Pokec-like graph.
func Fig5a(sc Scale) Figure {
	g, syms := PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	sigma := sc.SigmaPokec[len(sc.SigmaPokec)/2]
	return dmineSweep("5a", "DMine: varying n (Pokec)", "n", intStrings(sc.Ns),
		func(i int, optimized bool) *mine.Result {
			return runDMine(g, pred, dmineOpts(sigma, sc.Ns[i], 2), optimized)
		})
}

// Fig5b: DMine varying n on the Google+-like graph.
func Fig5b(sc Scale) Figure {
	g, syms := GplusGraph(sc.GplusUsers, sc.Seed)
	pred := gen.GplusPredicates(syms)[0]
	sigma := sc.SigmaGplus[len(sc.SigmaGplus)/2]
	return dmineSweep("5b", "DMine: varying n (Google+)", "n", intStrings(sc.Ns),
		func(i int, optimized bool) *mine.Result {
			return runDMine(g, pred, dmineOpts(sigma, sc.Ns[i], 2), optimized)
		})
}

// Fig5c: DMine varying σ on the Pokec-like graph (n = 4).
func Fig5c(sc Scale) Figure {
	g, syms := PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	return dmineSweep("5c", "DMine: varying σ (Pokec)", "σ", intStrings(sc.SigmaPokec),
		func(i int, optimized bool) *mine.Result {
			return runDMine(g, pred, dmineOpts(sc.SigmaPokec[i], 4, 2), optimized)
		})
}

// Fig5d: DMine varying σ on the Google+-like graph (n = 4).
func Fig5d(sc Scale) Figure {
	g, syms := GplusGraph(sc.GplusUsers, sc.Seed)
	pred := gen.GplusPredicates(syms)[0]
	return dmineSweep("5d", "DMine: varying σ (Google+)", "σ", intStrings(sc.SigmaGplus),
		func(i int, optimized bool) *mine.Result {
			return runDMine(g, pred, dmineOpts(sc.SigmaGplus[i], 4, 2), optimized)
		})
}

// Fig5e: DMine varying n on the smallest synthetic graph.
func Fig5e(sc Scale) Figure {
	nv, ne := sc.SynSizes[0][0], sc.SynSizes[0][1]
	g, _ := SyntheticGraph(nv, ne, sc.Seed)
	pred := SyntheticPredicate(g)
	sigma := synSigma(g, pred)
	return dmineSweep("5e", "DMine: varying n (Synthetic)", "n", intStrings(sc.Ns),
		func(i int, optimized bool) *mine.Result {
			return runDMine(g, pred, dmineOpts(sigma, sc.Ns[i], 2), optimized)
		})
}

// Fig5f: DMine varying |G| on synthetic graphs (n = 16).
func Fig5f(sc Scale) Figure {
	xs := make([]string, len(sc.SynSizes))
	for i, s := range sc.SynSizes {
		xs[i] = fmt.Sprintf("(%d,%d)", s[0], s[1])
	}
	return dmineSweep("5f", "DMine: varying |G| (Synthetic)", "|G|", xs,
		func(i int, optimized bool) *mine.Result {
			g, _ := SyntheticGraph(sc.SynSizes[i][0], sc.SynSizes[i][1], sc.Seed)
			pred := SyntheticPredicate(g)
			return runDMine(g, pred, dmineOpts(synSigma(g, pred), 16, 2), optimized)
		})
}

// Fig5x: DMine varying d on a synthetic graph (the text-only result of
// Exp-1: both algorithms take longer with larger d, DMine less so).
func Fig5x(sc Scale) Figure {
	nv, ne := sc.SynSizes[0][0], sc.SynSizes[0][1]
	g, _ := SyntheticGraph(nv, ne, sc.Seed)
	pred := SyntheticPredicate(g)
	sigma := synSigma(g, pred)
	return dmineSweep("5x", "DMine: varying d (Synthetic)", "d", intStrings(sc.Ds),
		func(i int, optimized bool) *mine.Result {
			return runDMine(g, pred, dmineOpts(sigma, 8, sc.Ds[i]), optimized)
		})
}

// synSigma picks a σ proportional to the predicate's support so sweeps are
// comparable across graph sizes (the paper uses σ = 100 at 10M nodes).
func synSigma(g *graph.Graph, pred core.Predicate) int {
	s := len(core.Pq(g, pred)) / 10
	if s < 2 {
		s = 2
	}
	return s
}

func intStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
