package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/mine"
)

// PrecisionTable is the Exp-2 cross-validation table: average prediction
// precision of the top-N rules when ranked by each confidence metric.
type PrecisionTable struct {
	Tops    []int // the N values (the paper's 10/30/60)
	Metrics []string
	Values  [][]float64 // [metric][top]
}

// Format renders the table like the paper's.
func (t PrecisionTable) Format(w io.Writer) {
	fmt.Fprintf(w, "%-10s", "")
	for _, n := range t.Tops {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("top %d", n))
	}
	fmt.Fprintln(w)
	for mi, m := range t.Metrics {
		fmt.Fprintf(w, "%-10s", m)
		for ti := range t.Tops {
			fmt.Fprintf(w, "%10.3f", t.Values[mi][ti])
		}
		fmt.Fprintln(w)
	}
}

// Precision reproduces the Exp-2 study: split the Pokec-like graph into a
// training fragment F1 and a validation fragment F2, mine rules on F1 with
// λ = 0 for several predicates, rank Σ by conf / PCAconf / Iconf, and
// measure prec(R) = supp(R,F2) / supp(Q,F2) for the top-N rules of each
// ranking.
func Precision(sc Scale, tops []int) PrecisionTable {
	g, syms := PokecGraph(sc.PokecUsers, sc.Seed)
	f1, f2 := splitGraph(g, syms)

	preds := gen.PokecPredicates(syms)
	if len(preds) > 5 {
		preds = preds[:5]
	}
	type scored struct {
		rule             *core.Rule
		conf, pca, iconf float64
	}
	var pool []scored
	for _, pred := range preds {
		opts := mine.Options{
			K: 10, Sigma: 3, D: 2, Lambda: 0, N: 4,
			MaxEdges: 2, MaxCandidatesPerRound: 40,
		}.WithOptimizations()
		res := mine.DMine(f1, pred, opts)
		for _, mm := range res.All {
			if math.IsInf(mm.Conf, 0) || math.IsNaN(mm.Conf) {
				continue
			}
			sc := scored{rule: mm.Rule, conf: mm.Conf, pca: mm.Stats.PCAConf()}
			sc.iconf = core.IConf(f1, mm.Rule, match.Options{MaxMatches: 2000})
			if math.IsInf(sc.iconf, 0) || math.IsNaN(sc.iconf) {
				sc.iconf = 0
			}
			pool = append(pool, sc)
		}
	}

	metrics := []string{"PCAconf", "Iconf", "conf"}
	table := PrecisionTable{Tops: tops, Metrics: metrics}
	rank := func(key func(scored) float64) []scored {
		out := append([]scored(nil), pool...)
		sort.SliceStable(out, func(i, j int) bool { return key(out[i]) > key(out[j]) })
		return out
	}
	ranked := [][]scored{
		rank(func(s scored) float64 { return s.pca }),
		rank(func(s scored) float64 { return s.iconf }),
		rank(func(s scored) float64 { return s.conf }),
	}
	precCache := map[*core.Rule]float64{}
	for _, rs := range ranked {
		var row []float64
		for _, top := range tops {
			n := top
			if n > len(rs) {
				n = len(rs)
			}
			sum, cnt := 0.0, 0
			for _, s := range rs[:n] {
				p, ok := precCache[s.rule]
				if !ok {
					p = prec(f2, s.rule)
					precCache[s.rule] = p
				}
				if p >= 0 {
					sum += p
					cnt++
				}
			}
			if cnt > 0 {
				row = append(row, sum/float64(cnt))
			} else {
				row = append(row, 0)
			}
		}
		table.Values = append(table.Values, row)
	}
	return table
}

// prec computes prec(R) = supp(R,F2)/supp(Q,F2), or -1 when Q has no
// matches in the validation fragment.
func prec(f2 *graph.Graph, r *core.Rule) float64 {
	res := core.Eval(f2, r, match.Options{}, false)
	if res.Stats.SuppQ == 0 {
		return -1
	}
	return float64(res.Stats.SuppR) / float64(res.Stats.SuppQ)
}

// splitGraph partitions the users of a social graph into two halves; each
// half keeps all non-user attribute nodes (they carry no q edges). This is
// the paper's F1/F2 cross-validation split.
func splitGraph(g *graph.Graph, syms *graph.Symbols) (*graph.Graph, *graph.Graph) {
	user := syms.Lookup("user")
	var h1, h2 []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if g.Label(id) != user {
			h1 = append(h1, id)
			h2 = append(h2, id)
			continue
		}
		if v%2 == 0 {
			h1 = append(h1, id)
		} else {
			h2 = append(h2, id)
		}
	}
	f1, _, _ := g.InducedSubgraph(h1)
	f2, _, _ := g.InducedSubgraph(h2)
	return f1, f2
}
